#include <gtest/gtest.h>

#include "stats/histogram.h"
#include "stats/stats.h"
#include "stats/table.h"

namespace wompcm {
namespace {

TEST(LatencyStats, EmptyIsZero) {
  LatencyStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.min(), 0u);
  EXPECT_EQ(s.max(), 0u);
}

TEST(LatencyStats, Accumulates) {
  LatencyStats s;
  s.add(10);
  s.add(20);
  s.add(60);
  EXPECT_EQ(s.count(), 3u);
  EXPECT_DOUBLE_EQ(s.mean(), 30.0);
  EXPECT_EQ(s.min(), 10u);
  EXPECT_EQ(s.max(), 60u);
}

TEST(LatencyStats, Merge) {
  LatencyStats a, b;
  a.add(5);
  b.add(15);
  b.add(25);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.mean(), 15.0);
  EXPECT_EQ(a.min(), 5u);
  EXPECT_EQ(a.max(), 25u);
  LatencyStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 3u);
}

TEST(CounterSet, IncrementAndLookup) {
  CounterSet c;
  EXPECT_EQ(c.get("x"), 0u);
  c.inc("x");
  c.inc("x", 4);
  c.inc("y");
  EXPECT_EQ(c.get("x"), 5u);
  EXPECT_EQ(c.get("y"), 1u);
  EXPECT_EQ(c.all().size(), 2u);
}

TEST(CounterSet, Merge) {
  CounterSet a, b;
  a.inc("x", 2);
  b.inc("x", 3);
  b.inc("z", 1);
  a.merge(b);
  EXPECT_EQ(a.get("x"), 5u);
  EXPECT_EQ(a.get("z"), 1u);
}

TEST(SimStats, HitRateHelper) {
  SimStats s;
  EXPECT_DOUBLE_EQ(s.read_hit_rate("h", "m"), 0.0);
  s.counters.inc("h", 3);
  s.counters.inc("m", 1);
  EXPECT_DOUBLE_EQ(s.read_hit_rate("h", "m"), 0.75);
}

TEST(Log2Histogram, BucketBoundaries) {
  Log2Histogram h;
  h.add(0);
  h.add(1);
  h.add(2);
  h.add(3);
  h.add(4);
  h.add(1023);
  h.add(1024);
  EXPECT_EQ(h.total(), 7u);
  EXPECT_EQ(h.bucket(0), 2u);   // 0 and 1
  EXPECT_EQ(h.bucket(1), 2u);   // 2 and 3
  EXPECT_EQ(h.bucket(2), 1u);   // 4
  EXPECT_EQ(h.bucket(9), 1u);   // 1023
  EXPECT_EQ(h.bucket(10), 1u);  // 1024
  EXPECT_EQ(h.max_bucket(), 10u);
}

TEST(Log2Histogram, Percentile) {
  Log2Histogram h;
  for (int i = 0; i < 90; ++i) h.add(10);   // bucket 3, upper bound 16
  for (int i = 0; i < 10; ++i) h.add(1000);  // bucket 9, upper bound 1024
  EXPECT_EQ(h.percentile(0.5), 16u);
  EXPECT_EQ(h.percentile(0.99), 1024u);
  Log2Histogram empty;
  EXPECT_EQ(empty.percentile(0.5), 0u);
}

TEST(Log2Histogram, ToStringShowsNonEmptyBuckets) {
  Log2Histogram h;
  h.add(5);
  const std::string s = h.to_string();
  EXPECT_NE(s.find("[4, 8) 1"), std::string::npos);
}

TEST(TextTable, AlignedRendering) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22222"});
  const std::string s = t.to_text();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("-----"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.row(1)[1], "22222");
}

TEST(TextTable, CsvEscaping) {
  TextTable t({"a", "b"});
  t.add_row({"plain", "has,comma"});
  t.add_row({"has\"quote", "x"});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(csv.find("\"has\"\"quote\""), std::string::npos);
}

TEST(TextTable, FmtPrecision) {
  EXPECT_EQ(TextTable::fmt(0.5), "0.500");
  EXPECT_EQ(TextTable::fmt(1.23456, 2), "1.23");
  EXPECT_EQ(TextTable::fmt(10.0, 0), "10");
}

}  // namespace
}  // namespace wompcm

#include <gtest/gtest.h>

#include "pcm/energy.h"

namespace wompcm {
namespace {

TEST(EnergyCounters, StartsAtZero) {
  EnergyCounters e;
  EXPECT_DOUBLE_EQ(e.total_pj(), 0.0);
  EXPECT_EQ(e.set_pulses(), 0u);
  EXPECT_EQ(e.reset_pulses(), 0u);
}

TEST(EnergyCounters, ReadEnergy) {
  EnergyParams p;
  p.read_pj_per_bit = 2.0;
  EnergyCounters e(p);
  e.on_read(512);
  EXPECT_DOUBLE_EQ(e.read_pj(), 1024.0);
  EXPECT_DOUBLE_EQ(e.write_pj(), 0.0);
}

TEST(EnergyCounters, ResetOnlyWriteUsesOnlyResetPulses) {
  EnergyParams p;
  p.reset_pj_per_bit = 10.0;
  p.set_pj_per_bit = 100.0;
  EnergyCounters e(p);
  e.on_write(WriteClass::kResetOnly, 100);
  // Half the bits flip, all RESET.
  EXPECT_DOUBLE_EQ(e.write_pj(), 10.0 * 50.0);
  EXPECT_EQ(e.set_pulses(), 0u);
  EXPECT_EQ(e.reset_pulses(), 50u);
}

TEST(EnergyCounters, AlphaWriteUsesBothPulseKinds) {
  EnergyParams p;
  p.reset_pj_per_bit = 10.0;
  p.set_pj_per_bit = 20.0;
  EnergyCounters e(p);
  e.on_write(WriteClass::kAlpha, 100);
  EXPECT_DOUBLE_EQ(e.write_pj(), (10.0 + 20.0) * 50.0);
  EXPECT_EQ(e.set_pulses(), 50u);
  EXPECT_EQ(e.reset_pulses(), 50u);
}

TEST(EnergyCounters, RefreshIsReadPlusSetHalf) {
  EnergyParams p;
  p.read_pj_per_bit = 2.0;
  p.set_pj_per_bit = 20.0;
  EnergyCounters e(p);
  e.on_refresh(100);
  EXPECT_DOUBLE_EQ(e.refresh_pj(), 2.0 * 100.0 + 20.0 * 50.0);
}

TEST(EnergyCounters, ExactPulseInterface) {
  EnergyParams p;
  p.set_pj_per_bit = 3.0;
  p.reset_pj_per_bit = 2.0;
  EnergyCounters e(p);
  e.add_pulses(7, 11);
  EXPECT_EQ(e.set_pulses(), 7u);
  EXPECT_EQ(e.reset_pulses(), 11u);
  EXPECT_DOUBLE_EQ(e.write_pj(), 7 * 3.0 + 11 * 2.0);
}

TEST(EnergyCounters, TotalsAccumulate) {
  EnergyCounters e;
  e.on_read(64);
  e.on_write(WriteClass::kAlpha, 64);
  e.on_refresh(64);
  EXPECT_DOUBLE_EQ(e.total_pj(), e.read_pj() + e.write_pj() + e.refresh_pj());
  EXPECT_GT(e.total_pj(), 0.0);
}

TEST(EnergyCounters, AlphaWriteCostsMoreThanResetOnly) {
  EnergyCounters fast, slow;
  fast.on_write(WriteClass::kResetOnly, 512);
  slow.on_write(WriteClass::kAlpha, 512);
  EXPECT_GT(slow.write_pj(), fast.write_pj());
}

}  // namespace
}  // namespace wompcm

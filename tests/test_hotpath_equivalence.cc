// Optimized-vs-reference cross-check for the event-loop hot path.
//
// ScanMode::kIndexed layers bank-occupancy masks, the readiness bitmap,
// cached next-event dispatch, and memoized failed scans on top of the
// straight-line age-order scan that ScanMode::kReference still runs. The
// two modes must be observationally indistinguishable: every statistic of a
// run — counters, latency sums, histograms, per-bank utilization, energy
// and wear gauges — must match bit for bit. This suite runs both modes on
// the three reference platforms plus the scheduler/row-policy variants the
// indexed path special-cases, over multiple workloads and seeds.
#include <gtest/gtest.h>

#include <string>

#include "sim/experiment.h"

namespace wompcm {
namespace {

SimResult run_with_mode(SimConfig cfg, ScanMode mode,
                        const std::string& profile, std::uint64_t accesses,
                        std::uint64_t seed) {
  cfg.sched.scan_mode = mode;
  return run({cfg, TraceSpec::profile(*find_profile(profile), accesses),
              RunOptions::with_seed(seed)});
}

// Every deterministic field of two results must be identical. Phase
// counters are wall-clock and excluded by design.
void expect_identical(const SimResult& a, const SimResult& b) {
  EXPECT_EQ(a.arch_name, b.arch_name);
  EXPECT_EQ(a.end_time, b.end_time);
  EXPECT_EQ(a.injected_reads, b.injected_reads);
  EXPECT_EQ(a.injected_writes, b.injected_writes);
  EXPECT_EQ(a.deferred_injections, b.deferred_injections);
  EXPECT_EQ(a.refresh_commands, b.refresh_commands);
  EXPECT_EQ(a.refresh_rows, b.refresh_rows);

  auto expect_latency_eq = [](const LatencyStats& x, const LatencyStats& y,
                              const char* what) {
    EXPECT_EQ(x.count(), y.count()) << what;
    EXPECT_EQ(x.min(), y.min()) << what;
    EXPECT_EQ(x.max(), y.max()) << what;
    EXPECT_EQ(x.sum(), y.sum()) << what;  // bit-exact: same accumulation order
  };
  expect_latency_eq(a.stats.demand_read_latency, b.stats.demand_read_latency,
                    "demand read latency");
  expect_latency_eq(a.stats.demand_write_latency,
                    b.stats.demand_write_latency, "demand write latency");
  expect_latency_eq(a.stats.internal_write_latency,
                    b.stats.internal_write_latency, "internal write latency");

  for (std::size_t i = 0; i < Log2Histogram::kBuckets; ++i) {
    EXPECT_EQ(a.stats.read_latency_hist.bucket(i),
              b.stats.read_latency_hist.bucket(i))
        << "read hist bucket " << i;
    EXPECT_EQ(a.stats.write_latency_hist.bucket(i),
              b.stats.write_latency_hist.bucket(i))
        << "write hist bucket " << i;
  }

  EXPECT_EQ(a.stats.counters.all(), b.stats.counters.all());

  // The full metrics registry, name by name: catches any per-channel or
  // architecture scalar the convenience fields above do not surface.
  const auto& ma = a.metrics.all();
  const auto& mb = b.metrics.all();
  ASSERT_EQ(ma.size(), mb.size());
  auto ib = mb.begin();
  for (auto ia = ma.begin(); ia != ma.end(); ++ia, ++ib) {
    EXPECT_EQ(ia->first, ib->first);
    EXPECT_EQ(ia->second.kind, ib->second.kind) << ia->first;
    EXPECT_EQ(ia->second.count, ib->second.count) << ia->first;
    EXPECT_EQ(ia->second.value, ib->second.value) << ia->first;
  }

  ASSERT_EQ(a.banks.size(), b.banks.size());
  for (std::size_t i = 0; i < a.banks.size(); ++i) {
    EXPECT_EQ(a.banks[i].busy_time, b.banks[i].busy_time) << "bank " << i;
    EXPECT_EQ(a.banks[i].ops, b.banks[i].ops) << "bank " << i;
    EXPECT_EQ(a.banks[i].row_hits, b.banks[i].row_hits) << "bank " << i;
    EXPECT_EQ(a.banks[i].pauses, b.banks[i].pauses) << "bank " << i;
    EXPECT_EQ(a.banks[i].cache, b.banks[i].cache) << "bank " << i;
  }

  EXPECT_EQ(a.capacity_overhead, b.capacity_overhead);
  EXPECT_EQ(a.energy_read_pj, b.energy_read_pj);
  EXPECT_EQ(a.energy_write_pj, b.energy_write_pj);
  EXPECT_EQ(a.energy_refresh_pj, b.energy_refresh_pj);
  EXPECT_EQ(a.max_line_wear, b.max_line_wear);
  EXPECT_EQ(a.mean_line_wear, b.mean_line_wear);
  EXPECT_EQ(a.lifetime_years, b.lifetime_years);
}

void check(const SimConfig& cfg, const std::string& profile,
           std::uint64_t accesses, std::uint64_t seed) {
  SCOPED_TRACE("profile=" + profile + " seed=" + std::to_string(seed));
  const SimResult ref =
      run_with_mode(cfg, ScanMode::kReference, profile, accesses, seed);
  const SimResult idx =
      run_with_mode(cfg, ScanMode::kIndexed, profile, accesses, seed);
  expect_identical(ref, idx);
}

constexpr std::uint64_t kAccesses = 15000;

TEST(HotpathEquivalence, PaperRefreshPlatform) {
  SimConfig cfg = paper_config();
  cfg.arch.kind = ArchKind::kRefreshWomPcm;
  check(cfg, "401.bzip2", kAccesses, 42);
  check(cfg, "ocean", kAccesses, 7);
}

TEST(HotpathEquivalence, DualChannelPlatform) {
  SimConfig cfg = paper_config();
  cfg.geom.channels = 2;
  cfg.geom.ranks = 8;
  cfg.arch.kind = ArchKind::kRefreshWomPcm;
  check(cfg, "401.bzip2", kAccesses, 42);
  check(cfg, "462.libq", kAccesses, 11);
}

TEST(HotpathEquivalence, WcpcmPlatform) {
  // WCPCM exercises dynamic routing (cache arrays, RAT migration), the
  // spawned-transaction path, and the route-version memoization.
  SimConfig cfg = paper_config();
  cfg.arch.kind = ArchKind::kWcpcm;
  check(cfg, "401.bzip2", kAccesses, 42);
  check(cfg, "qsort", kAccesses, 3);
}

TEST(HotpathEquivalence, BaselineAndWomPcm) {
  SimConfig cfg = paper_config();
  cfg.arch.kind = ArchKind::kBaseline;
  check(cfg, "400.perlbench", kAccesses, 42);
  cfg.arch.kind = ArchKind::kWomPcm;
  check(cfg, "400.perlbench", kAccesses, 42);
}

TEST(HotpathEquivalence, ReadPriorityScheduling) {
  // The write-drain hysteresis flips the scanned queue mid-run; the indexed
  // scan must agree on every pick either way.
  SimConfig cfg = paper_config();
  cfg.arch.kind = ArchKind::kRefreshWomPcm;
  cfg.sched.policy = SchedulingPolicy::kReadPriority;
  check(cfg, "401.bzip2", kAccesses, 42);
}

TEST(HotpathEquivalence, ClosedPageOldestFirst) {
  // No row hits to prefer and no open rows to match: the degenerate
  // scheduling case where the indexed path must fall back to pure age order.
  SimConfig cfg = paper_config();
  cfg.arch.kind = ArchKind::kRefreshWomPcm;
  cfg.row_policy = RowPolicy::kClosed;
  cfg.sched.row_hit_first = false;
  check(cfg, "464.h264ref", kAccesses, 42);
}

TEST(HotpathEquivalence, NoReadForwardingSmallQueues) {
  // Small queues force back-pressure (deferred injections) and disabling
  // forwarding removes the contains_line fast-out — both affect which
  // events the cached next-event path must surface.
  SimConfig cfg = paper_config();
  cfg.arch.kind = ArchKind::kWcpcm;
  cfg.read_forwarding = false;
  cfg.queue_capacity = 8;
  check(cfg, "401.bzip2", kAccesses, 42);
}

}  // namespace
}  // namespace wompcm

// Determinism contract of the parallel sweep engine: for the paper
// configuration, the parallel and serial run_sweep produce identical
// SimResult stats in identical order, regardless of worker count.
#include <gtest/gtest.h>

#include <vector>

#include "sim/experiment.h"
#include "sim/parallel_sweep.h"

namespace wompcm {
namespace {

void expect_same_result(const SimResult& a, const SimResult& b) {
  EXPECT_EQ(a.arch_name, b.arch_name);
  EXPECT_EQ(a.end_time, b.end_time);
  EXPECT_EQ(a.injected_reads, b.injected_reads);
  EXPECT_EQ(a.injected_writes, b.injected_writes);
  EXPECT_EQ(a.deferred_injections, b.deferred_injections);
  EXPECT_EQ(a.refresh_commands, b.refresh_commands);
  EXPECT_EQ(a.refresh_rows, b.refresh_rows);

  EXPECT_EQ(a.stats.demand_read_latency.count(),
            b.stats.demand_read_latency.count());
  EXPECT_DOUBLE_EQ(a.stats.demand_read_latency.sum(),
                   b.stats.demand_read_latency.sum());
  EXPECT_EQ(a.stats.demand_read_latency.min(),
            b.stats.demand_read_latency.min());
  EXPECT_EQ(a.stats.demand_read_latency.max(),
            b.stats.demand_read_latency.max());
  EXPECT_EQ(a.stats.demand_write_latency.count(),
            b.stats.demand_write_latency.count());
  EXPECT_DOUBLE_EQ(a.stats.demand_write_latency.sum(),
                   b.stats.demand_write_latency.sum());
  EXPECT_EQ(a.stats.demand_write_latency.min(),
            b.stats.demand_write_latency.min());
  EXPECT_EQ(a.stats.demand_write_latency.max(),
            b.stats.demand_write_latency.max());

  EXPECT_EQ(a.stats.counters.all(), b.stats.counters.all());
  EXPECT_DOUBLE_EQ(a.energy_read_pj, b.energy_read_pj);
  EXPECT_DOUBLE_EQ(a.energy_write_pj, b.energy_write_pj);
  EXPECT_DOUBLE_EQ(a.energy_refresh_pj, b.energy_refresh_pj);
  EXPECT_DOUBLE_EQ(a.max_line_wear, b.max_line_wear);
  EXPECT_DOUBLE_EQ(a.mean_line_wear, b.mean_line_wear);
  EXPECT_DOUBLE_EQ(a.lifetime_years, b.lifetime_years);

  ASSERT_EQ(a.banks.size(), b.banks.size());
  for (std::size_t i = 0; i < a.banks.size(); ++i) {
    EXPECT_EQ(a.banks[i].busy_time, b.banks[i].busy_time);
    EXPECT_EQ(a.banks[i].ops, b.banks[i].ops);
    EXPECT_EQ(a.banks[i].row_hits, b.banks[i].row_hits);
    EXPECT_EQ(a.banks[i].pauses, b.banks[i].pauses);
  }
}

std::vector<WorkloadProfile> test_profiles() {
  // One profile per suite, covering the behavioural spread.
  return {*find_profile("401.bzip2"), *find_profile("464.h264ref"),
          *find_profile("qsort"), *find_profile("ocean")};
}

TEST(ParallelSweep, ParallelMatchesSerialBitForBit) {
  const auto archs = paper_architectures();
  const auto profiles = test_profiles();
  RunRequest req;
  req.config = paper_config();
  req.trace = TraceSpec::profile(WorkloadProfile{}, 2500);
  req.options.seed = 42;
  req.options.jobs = ParallelPolicy::serial();
  const auto serial = run_sweep(req, archs, profiles);
  req.options.jobs = ParallelPolicy::with_jobs(4);
  const auto parallel = run_sweep(req, archs, profiles);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    SCOPED_TRACE(serial[i].benchmark);
    EXPECT_EQ(serial[i].benchmark, parallel[i].benchmark);
    ASSERT_EQ(serial[i].results.size(), parallel[i].results.size());
    for (std::size_t j = 0; j < serial[i].results.size(); ++j) {
      SCOPED_TRACE(serial[i].results[j].arch_name);
      expect_same_result(serial[i].results[j], parallel[i].results[j]);
    }
  }
}

TEST(ParallelSweep, DefaultPolicyIsAutomatic) {
  const ParallelPolicy p;
  EXPECT_EQ(p.jobs, 0u);
  EXPECT_GE(p.resolved_jobs(), 1u);
  EXPECT_EQ(ParallelPolicy::serial().resolved_jobs(), 1u);
  EXPECT_EQ(ParallelPolicy::with_jobs(3).resolved_jobs(), 3u);
}

TEST(ParallelSweep, RunnerPreservesRowAndColumnOrder) {
  const auto archs = paper_architectures();
  const auto profiles = test_profiles();
  const ParallelSweepRunner runner(ParallelPolicy::with_jobs(3));
  EXPECT_EQ(runner.jobs(), 3u);
  const auto rows =
      runner.run(paper_config(), archs, profiles, 1500, 7);
  ASSERT_EQ(rows.size(), profiles.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(rows[i].benchmark, profiles[i].name);
    ASSERT_EQ(rows[i].results.size(), archs.size());
  }
  // Column order is the arch list order: baseline first, WCPCM last.
  EXPECT_EQ(rows[0].results[0].arch_name, "pcm");
  EXPECT_NE(rows[0].results[3].arch_name.find("wcpcm"), std::string::npos);
}

TEST(ParallelSweep, RejectsWarmupAtLeastTraceLength) {
  SimConfig cfg = paper_config();
  cfg.warmup_accesses = 1000;
  EXPECT_THROW(run({cfg, TraceSpec::profile(*find_profile("qsort"), 1000),
                    RunOptions::with_seed(1)}),
               std::invalid_argument);
  EXPECT_NO_THROW(run({cfg, TraceSpec::profile(*find_profile("qsort"), 1001),
                       RunOptions::with_seed(1)}));
}

}  // namespace
}  // namespace wompcm

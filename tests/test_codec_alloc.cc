// Allocation audit of the codec hot path.
//
// Lives in its own test binary (womcode_pcm_alloc_tests) because it
// replaces the global allocator with a counting wrapper: steady-state
// PageCodec::write must perform zero heap allocations per access, which is
// what keeps the energy ablations and functional sweeps off the allocator.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>

#include "arch/arch.h"
#include "common/rng.h"
#include "controller/controller.h"
#include "wom/page_codec.h"
#include "wom/registry.h"

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace wompcm {
namespace {

BitVec random_data(std::size_t bits, std::uint64_t seed) {
  Rng rng(seed);
  BitVec data(bits);
  for (std::size_t i = 0; i < bits; ++i) data.set(i, rng.next_bool(0.5));
  return data;
}

TEST(CodecAllocation, SteadyStateWriteIsAllocationFree) {
  constexpr std::size_t kBits = 4096;
  PageCodec page(make_code("rs23-inv"), kBits);
  // Two payloads so consecutive writes actually change wits; built before
  // the measured window.
  const BitVec a = random_data(kBits, 1);
  const BitVec b = random_data(kBits, 2);
  // Warm the scratch buffers and cross the first alpha-write so the window
  // covers true steady state (in-budget rewrites and alphas alike).
  for (int i = 0; i < 8; ++i) page.write((i & 1) ? b : a);

  const std::uint64_t before = g_allocations.load();
  for (int i = 0; i < 64; ++i) page.write((i & 1) ? b : a);
  const std::uint64_t after = g_allocations.load();
  EXPECT_EQ(after - before, 0u)
      << (after - before) << " allocations across 64 steady-state writes";
}

TEST(CodecAllocation, SteadyStateReadIntoIsAllocationFree) {
  constexpr std::size_t kBits = 4096;
  PageCodec page(make_code("rs23-inv"), kBits);
  const BitVec a = random_data(kBits, 3);
  page.write(a);
  BitVec out;
  page.read_into(out);  // sizes `out` once

  const std::uint64_t before = g_allocations.load();
  for (int i = 0; i < 64; ++i) page.read_into(out);
  const std::uint64_t after = g_allocations.load();
  EXPECT_EQ(after - before, 0u);
  EXPECT_EQ(out, a);
}

TEST(CodecAllocation, MarkerCodeWriteIsAllocationFree) {
  // A multi-write tabular code also has an encode table, so its steady
  // state is allocation-free too.
  constexpr std::size_t kBits = 1024;
  PageCodec page(make_code("marker-k2t4-inv"), kBits);
  const BitVec a = random_data(kBits, 4);
  const BitVec b = random_data(kBits, 5);
  for (int i = 0; i < 10; ++i) page.write((i & 1) ? b : a);

  const std::uint64_t before = g_allocations.load();
  for (int i = 0; i < 32; ++i) page.write((i & 1) ? b : a);
  const std::uint64_t after = g_allocations.load();
  EXPECT_EQ(after - before, 0u);
}

TEST(CodecAllocation, PolarSectionedWriteIsAllocationFree) {
  // The polar family takes the virtual encode path (no LUT at n = 128),
  // but encode_into works against caller-owned scratch with fixed-size
  // stack arrays, so the sectioned steady state stays off the allocator.
  constexpr std::size_t kBits = 512;
  PageCodec page(make_code("polar-m7-inv"), kBits);
  const BitVec a = random_data(kBits, 6);
  const BitVec b = random_data(kBits, 7);
  // Cross the first alpha re-init (t = 8) before the measured window.
  for (int i = 0; i < 10; ++i) page.write((i & 1) ? b : a);

  const std::uint64_t before = g_allocations.load();
  for (int i = 0; i < 32; ++i) page.write((i & 1) ? b : a);
  const std::uint64_t after = g_allocations.load();
  EXPECT_EQ(after - before, 0u)
      << (after - before) << " allocations across 32 polar writes";
}

TEST(CodecAllocation, TsConstrainedWriteAndReadAreAllocationFree) {
  // The time-space constrained codec layers replica selection over the
  // base code's LUT; its member scratch must keep the whole stack
  // allocation-free, reads included (decode is generation-aware).
  BlockCodecPtr codec = make_block_codec("tsc-rs23x4-inv");
  ASSERT_NE(codec, nullptr);
  const std::size_t bits = 8 * codec->section_data_bits();
  PageCodec page(std::move(codec), bits);
  const BitVec a = random_data(bits, 8);
  const BitVec b = random_data(bits, 9);
  // Cross the first alpha re-init (t = 8) before the measured window.
  for (int i = 0; i < 10; ++i) page.write((i & 1) ? b : a);
  BitVec out;
  page.read_into(out);

  const std::uint64_t before = g_allocations.load();
  for (int i = 0; i < 32; ++i) {
    page.write((i & 1) ? b : a);
    page.read_into(out);
  }
  const std::uint64_t after = g_allocations.load();
  EXPECT_EQ(after - before, 0u)
      << (after - before)
      << " allocations across 32 ts-constrained write/read pairs";
}

// The controller/queue steady state must be allocation-free per transaction
// too: the indexed queues, readiness bitmaps, event heap, counter slots,
// and the WOM/wear slab trackers all pre-reserve or bind on first touch, so
// once the working set is warm, enqueue -> schedule -> complete touches the
// allocator zero times. (WCPCM is exercised elsewhere; its victim
// write-backs spawn transactions, which is an allocation by design.)
TEST(ControllerAllocation, SteadyStateTransactionsAreAllocationFree) {
  MemoryGeometry geom;
  geom.channels = 1;
  geom.ranks = 2;
  geom.banks_per_rank = 2;
  geom.rows_per_bank = 16;
  geom.cols_per_row = 64;  // 8 lines/row

  ControllerConfig cfg;
  cfg.geom = geom;
  cfg.refresh.enabled = false;  // refresh bookkeeping is off the per-tx path
  ArchConfig acfg;
  acfg.kind = ArchKind::kWomPcm;

  SimStats stats;
  std::unique_ptr<Architecture> arch = make_architecture(acfg, geom, cfg.timing);
  MemoryController ctrl(cfg, *arch, stats);
  AddressMapper mapper(geom);

  std::uint64_t id = 1;
  Tick now = 0;
  // One pass: reads and writes over a fixed (bank, row, line) working set,
  // run to drain. DecodedAddr::col is line-granular.
  auto pass = [&] {
    for (unsigned rank = 0; rank < geom.ranks; ++rank) {
      for (unsigned bank = 0; bank < geom.banks_per_rank; ++bank) {
        for (unsigned i = 0; i < 8; ++i) {
          Transaction t;
          t.id = id++;
          t.dec = DecodedAddr{0, rank, bank, i % 4, i % 8};
          t.addr = mapper.encode(t.dec);
          t.arrival = now;
          t.type = (i & 1) ? AccessType::kWrite : AccessType::kRead;
          ctrl.enqueue(t);
        }
      }
    }
    ctrl.tick(now);
    for (;;) {
      const Tick t = ctrl.next_event_after(now);
      if (t == kNeverTick) break;
      now = t;
      ctrl.tick(now);
    }
    ASSERT_TRUE(ctrl.drained());
  };

  // Warmup: touch every row/line of the working set, cross the WOM rewrite
  // limit (alpha writes) several times so every counter slot, slab, queue
  // index, and event-heap high-water mark exists before the window.
  for (int i = 0; i < 16; ++i) pass();

  const std::uint64_t before = g_allocations.load();
  for (int i = 0; i < 8; ++i) pass();
  const std::uint64_t after = g_allocations.load();
  EXPECT_EQ(after - before, 0u)
      << (after - before) << " allocations across 8 steady-state passes";
}

}  // namespace
}  // namespace wompcm

// Allocation audit of the codec hot path.
//
// Lives in its own test binary (womcode_pcm_alloc_tests) because it
// replaces the global allocator with a counting wrapper: steady-state
// PageCodec::write must perform zero heap allocations per access, which is
// what keeps the energy ablations and functional sweeps off the allocator.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "common/rng.h"
#include "wom/page_codec.h"
#include "wom/registry.h"

namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace wompcm {
namespace {

BitVec random_data(std::size_t bits, std::uint64_t seed) {
  Rng rng(seed);
  BitVec data(bits);
  for (std::size_t i = 0; i < bits; ++i) data.set(i, rng.next_bool(0.5));
  return data;
}

TEST(CodecAllocation, SteadyStateWriteIsAllocationFree) {
  constexpr std::size_t kBits = 4096;
  PageCodec page(make_code("rs23-inv"), kBits);
  // Two payloads so consecutive writes actually change wits; built before
  // the measured window.
  const BitVec a = random_data(kBits, 1);
  const BitVec b = random_data(kBits, 2);
  // Warm the scratch buffers and cross the first alpha-write so the window
  // covers true steady state (in-budget rewrites and alphas alike).
  for (int i = 0; i < 8; ++i) page.write((i & 1) ? b : a);

  const std::uint64_t before = g_allocations.load();
  for (int i = 0; i < 64; ++i) page.write((i & 1) ? b : a);
  const std::uint64_t after = g_allocations.load();
  EXPECT_EQ(after - before, 0u)
      << (after - before) << " allocations across 64 steady-state writes";
}

TEST(CodecAllocation, SteadyStateReadIntoIsAllocationFree) {
  constexpr std::size_t kBits = 4096;
  PageCodec page(make_code("rs23-inv"), kBits);
  const BitVec a = random_data(kBits, 3);
  page.write(a);
  BitVec out;
  page.read_into(out);  // sizes `out` once

  const std::uint64_t before = g_allocations.load();
  for (int i = 0; i < 64; ++i) page.read_into(out);
  const std::uint64_t after = g_allocations.load();
  EXPECT_EQ(after - before, 0u);
  EXPECT_EQ(out, a);
}

TEST(CodecAllocation, MarkerCodeWriteIsAllocationFree) {
  // A multi-write tabular code also has an encode table, so its steady
  // state is allocation-free too.
  constexpr std::size_t kBits = 1024;
  PageCodec page(make_code("marker-k2t4-inv"), kBits);
  const BitVec a = random_data(kBits, 4);
  const BitVec b = random_data(kBits, 5);
  for (int i = 0; i < 10; ++i) page.write((i & 1) ? b : a);

  const std::uint64_t before = g_allocations.load();
  for (int i = 0; i < 32; ++i) page.write((i & 1) ? b : a);
  const std::uint64_t after = g_allocations.load();
  EXPECT_EQ(after - before, 0u);
}

}  // namespace
}  // namespace wompcm

// Tests of the experiment harness helpers.
#include <gtest/gtest.h>

#include "sim/experiment.h"

namespace wompcm {
namespace {

TEST(Experiment, PaperConfigMatchesPaperParameters) {
  const SimConfig cfg = paper_config();
  EXPECT_EQ(cfg.geom.ranks, 16u);
  EXPECT_EQ(cfg.geom.banks_per_rank, 32u);
  EXPECT_EQ(cfg.geom.rows_per_bank, 32768u);
  EXPECT_EQ(cfg.geom.cols_per_row, 2048u);
  EXPECT_EQ(cfg.geom.devices_per_rank, 16u);
  EXPECT_EQ(cfg.timing.row_read_ns, 27u);
  EXPECT_EQ(cfg.timing.row_write_ns, 150u);
  EXPECT_EQ(cfg.timing.reset_ns, 40u);
  EXPECT_EQ(cfg.timing.refresh_period_ns, 4000u);
  EXPECT_EQ(cfg.arch.code, "rs23-inv");
  EXPECT_FALSE(cfg.warmup_accesses.has_value());  // auto
}

TEST(Experiment, PaperArchitecturesInPresentationOrder) {
  const auto archs = paper_architectures();
  ASSERT_EQ(archs.size(), 4u);
  EXPECT_EQ(archs[0].kind, ArchKind::kBaseline);
  EXPECT_EQ(archs[1].kind, ArchKind::kWomPcm);
  EXPECT_EQ(archs[2].kind, ArchKind::kRefreshWomPcm);
  EXPECT_EQ(archs[3].kind, ArchKind::kWcpcm);
}

TEST(Experiment, RunBenchmarkIsDeterministic) {
  const auto p = *find_profile("456.hmmer");
  const SimConfig cfg = paper_config();
  const SimResult a =
      run({cfg, TraceSpec::profile(p, 5000), RunOptions::with_seed(7)});
  const SimResult b =
      run({cfg, TraceSpec::profile(p, 5000), RunOptions::with_seed(7)});
  EXPECT_DOUBLE_EQ(a.avg_write_ns(), b.avg_write_ns());
  EXPECT_DOUBLE_EQ(a.avg_read_ns(), b.avg_read_ns());
  const SimResult c =
      run({cfg, TraceSpec::profile(p, 5000), RunOptions::with_seed(8)});
  EXPECT_NE(a.avg_write_ns(), c.avg_write_ns());
}

TEST(Experiment, SeedsDifferAcrossBenchmarks) {
  // The benchmark name is folded into the seed, so two profiles with the
  // same parameters still draw different streams.
  const SimConfig cfg = paper_config();
  const SimResult a = run({cfg, TraceSpec::profile(*find_profile("water-ns"), 4000),
                           RunOptions::with_seed(7)});
  const SimResult b = run({cfg, TraceSpec::profile(*find_profile("water-sp"), 4000),
                           RunOptions::with_seed(7)});
  EXPECT_NE(a.avg_write_ns(), b.avg_write_ns());
}

TEST(Experiment, SweepShape) {
  const auto archs = paper_architectures();
  const std::vector<WorkloadProfile> profiles = {
      *find_profile("456.hmmer"), *find_profile("qsort")};
  RunRequest req;
  req.config = paper_config();
  req.trace = TraceSpec::profile(WorkloadProfile{}, 4000);
  req.options.seed = 3;
  const auto rows = run_sweep(req, archs, profiles);
  ASSERT_EQ(rows.size(), 2u);
  for (const SweepRow& row : rows) {
    EXPECT_EQ(row.results.size(), 4u);
    for (const SimResult& r : row.results) {
      EXPECT_GT(r.avg_write_ns(), 0.0);
      EXPECT_GT(r.avg_read_ns(), 0.0);
    }
  }
}

TEST(Experiment, NormalizeAgainstBaselineColumn) {
  SweepRow row;
  row.benchmark = "x";
  for (const double w : {200.0, 100.0, 50.0}) {
    SimResult r;
    for (int i = 0; i < 10; ++i) {
      r.stats.demand_write_latency.add(static_cast<Tick>(w));
    }
    row.results.push_back(r);
  }
  const auto norm = normalize(
      {row}, [](const SimResult& r) { return r.avg_write_ns(); });
  ASSERT_EQ(norm.size(), 1u);
  EXPECT_DOUBLE_EQ(norm[0][0], 1.0);
  EXPECT_DOUBLE_EQ(norm[0][1], 0.5);
  EXPECT_DOUBLE_EQ(norm[0][2], 0.25);
}

TEST(Experiment, ColumnMean) {
  const std::vector<std::vector<double>> m = {{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_DOUBLE_EQ(column_mean(m, 0), 2.0);
  EXPECT_DOUBLE_EQ(column_mean(m, 1), 3.0);
  EXPECT_DOUBLE_EQ(column_mean({}, 0), 0.0);
}

}  // namespace
}  // namespace wompcm

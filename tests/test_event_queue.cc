// Tests of the shared event kernel (common/event_queue.h): the EventQueue
// min-heap protocol and the monotone driving Clock.
#include <gtest/gtest.h>

#include "common/event_queue.h"

namespace wompcm {
namespace {

TEST(EventQueue, StartsEmptyAndQuiescent) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
  EXPECT_EQ(q.next_after(0), kNeverTick);
}

TEST(EventQueue, ReturnsEarliestFutureInstant) {
  EventQueue q;
  q.schedule(30);
  q.schedule(10);
  q.schedule(20);
  EXPECT_EQ(q.next_after(0), 10u);
  // Non-destructive for future instants: asking again gives the same answer.
  EXPECT_EQ(q.next_after(0), 10u);
}

TEST(EventQueue, DropsInstantsAtOrBeforeNow) {
  EventQueue q;
  q.schedule(10);
  q.schedule(20);
  q.schedule(30);
  EXPECT_EQ(q.next_after(10), 20u);  // 10 handled by the tick at 10
  EXPECT_EQ(q.next_after(25), 30u);
  EXPECT_EQ(q.next_after(30), kNeverTick);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, IgnoresNeverTick) {
  EventQueue q;
  q.schedule(kNeverTick);
  EXPECT_TRUE(q.empty());
  q.schedule(5);
  q.schedule(kNeverTick);
  EXPECT_EQ(q.size(), 1u);
  EXPECT_EQ(q.next_after(0), 5u);
}

TEST(EventQueue, DuplicateInstantsCollapseToOneAnswer) {
  EventQueue q;
  q.schedule(7);
  q.schedule(7);
  q.schedule(7);
  EXPECT_EQ(q.next_after(0), 7u);
  EXPECT_EQ(q.next_after(7), kNeverTick);
}

TEST(Earliest, NeverTickIsTheIdentity) {
  EXPECT_EQ(earliest(kNeverTick, 5), 5u);
  EXPECT_EQ(earliest(5, kNeverTick), 5u);
  EXPECT_EQ(earliest(kNeverTick, kNeverTick), kNeverTick);
  EXPECT_EQ(earliest(3, 5), 3u);
}

TEST(Clock, AdvancesToEarliestCandidate) {
  Clock c;
  EXPECT_EQ(c.now(), 0u);
  EXPECT_TRUE(c.advance({30, 10, kNeverTick}));
  EXPECT_EQ(c.now(), 10u);
  EXPECT_TRUE(c.advance({30, kNeverTick}));
  EXPECT_EQ(c.now(), 30u);
}

TEST(Clock, RefusesToAdvanceWhenQuiescent) {
  Clock c;
  EXPECT_TRUE(c.advance({42}));
  EXPECT_FALSE(c.advance({kNeverTick, kNeverTick}));
  EXPECT_EQ(c.now(), 42u);  // stays put
}

TEST(Clock, NeverMovesBackwards) {
  Clock c;
  EXPECT_TRUE(c.advance({100}));
  // A stale candidate earlier than now clamps to now.
  EXPECT_TRUE(c.advance({50}));
  EXPECT_EQ(c.now(), 100u);
}

}  // namespace
}  // namespace wompcm

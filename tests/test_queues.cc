#include <gtest/gtest.h>

#include <cstdint>
#include <deque>
#include <vector>

#include "controller/queues.h"

namespace wompcm {
namespace {

Transaction make_tx(std::uint64_t id, Addr addr, AccessType type,
                    Tick arrival) {
  Transaction tx;
  tx.id = id;
  tx.addr = addr;
  tx.type = type;
  tx.arrival = arrival;
  return tx;
}

// Live entry ids in age order via the first()/next() iteration.
std::vector<std::uint64_t> ids_in_order(const TransactionQueue& q) {
  std::vector<std::uint64_t> out;
  for (auto p = q.first(); p != TransactionQueue::kNoPos; p = q.next(p)) {
    out.push_back(q.at(p).id);
  }
  return out;
}

TEST(TransactionQueue, FifoOrderPreserved) {
  TransactionQueue q;
  EXPECT_TRUE(q.empty());
  q.push(make_tx(1, 0x100, AccessType::kRead, 10));
  q.push(make_tx(2, 0x200, AccessType::kRead, 20));
  q.push(make_tx(3, 0x300, AccessType::kRead, 30));
  ASSERT_EQ(q.size(), 3u);
  EXPECT_EQ(ids_in_order(q), (std::vector<std::uint64_t>{1, 2, 3}));
}

TEST(TransactionQueue, TakeRemovesByPosition) {
  TransactionQueue q;
  q.push(make_tx(1, 0, AccessType::kRead, 0));
  q.push(make_tx(2, 0, AccessType::kRead, 0));
  q.push(make_tx(3, 0, AccessType::kRead, 0));
  const auto middle = q.next(q.first());
  const Transaction t = q.take(middle);
  EXPECT_EQ(t.id, 2u);
  ASSERT_EQ(q.size(), 2u);
  EXPECT_EQ(ids_in_order(q), (std::vector<std::uint64_t>{1, 3}));
}

TEST(TransactionQueue, ContainsLineMatchesWholeLine) {
  TransactionQueue q;
  q.configure(64, 0, 8);
  q.push(make_tx(1, 0x1000, AccessType::kWrite, 0));
  EXPECT_TRUE(q.contains_line(0x1000, 64));
  EXPECT_TRUE(q.contains_line(0x103F, 64));  // same 64B line
  EXPECT_FALSE(q.contains_line(0x1040, 64));
  EXPECT_FALSE(q.contains_line(0x0FC0, 64));
  // Queries at a granularity the index is not keyed for still work.
  EXPECT_TRUE(q.contains_line(0x1100, 4096));
  EXPECT_FALSE(q.contains_line(0x2000, 4096));
}

TEST(TransactionQueue, ContainsLineSurvivesChurn) {
  TransactionQueue q;
  q.configure(64, 0, 4);
  // Several entries on the same line, interleaved with other lines, then
  // removed one by one: the line must stay visible until the last one goes.
  q.push(make_tx(1, 0x1000, AccessType::kWrite, 0));
  q.push(make_tx(2, 0x1020, AccessType::kWrite, 1));  // same line as 1
  q.push(make_tx(3, 0x2000, AccessType::kWrite, 2));
  EXPECT_TRUE(q.contains_line(0x1000, 64));
  q.take(q.first());  // removes id 1
  EXPECT_TRUE(q.contains_line(0x1000, 64));  // id 2 still covers the line
  q.take(q.first());  // removes id 2
  EXPECT_FALSE(q.contains_line(0x1000, 64));
  EXPECT_TRUE(q.contains_line(0x2000, 64));
  q.take(q.first());
  EXPECT_FALSE(q.contains_line(0x2000, 64));
  EXPECT_TRUE(q.empty());
}

TEST(TransactionQueue, OldestArrival) {
  TransactionQueue q;
  EXPECT_EQ(q.oldest_arrival(), kNeverTick);
  q.push(make_tx(1, 0, AccessType::kRead, 50));
  q.push(make_tx(2, 0, AccessType::kRead, 20));
  q.push(make_tx(3, 0, AccessType::kRead, 70));
  EXPECT_EQ(q.oldest_arrival(), 20u);
}

TEST(TransactionQueue, ArrivalMonotonicityTracked) {
  TransactionQueue q;
  q.push(make_tx(1, 0, AccessType::kRead, 10));
  q.push(make_tx(2, 0, AccessType::kRead, 10));
  q.push(make_tx(3, 0, AccessType::kRead, 30));
  EXPECT_TRUE(q.arrivals_monotone());
  q.push(make_tx(4, 0, AccessType::kRead, 20));  // out of order
  EXPECT_FALSE(q.arrivals_monotone());
}

TEST(TransactionQueue, ResourceCountsAndMask) {
  TransactionQueue q;
  q.configure(64, 8, 4);
  q.push(make_tx(1, 0x000, AccessType::kWrite, 0), 3);
  q.push(make_tx(2, 0x040, AccessType::kWrite, 1), 3);
  q.push(make_tx(3, 0x080, AccessType::kWrite, 2), 5);
  q.push(make_tx(4, 0x0C0, AccessType::kRead, 3));  // dynamic route
  EXPECT_EQ(q.unindexed(), 1u);
  EXPECT_TRUE(q.bank_mask().test(3));
  EXPECT_TRUE(q.bank_mask().test(5));
  EXPECT_FALSE(q.bank_mask().test(0));
  EXPECT_EQ(q.resource_at(q.first()), 3u);

  // Removing one of two id-3 entries keeps the bit; removing both drops it.
  q.take(q.first());
  EXPECT_TRUE(q.bank_mask().test(3));
  q.take(q.first());
  EXPECT_FALSE(q.bank_mask().test(3));
  EXPECT_TRUE(q.bank_mask().test(5));
  q.take(q.first());
  EXPECT_FALSE(q.bank_mask().any());
  EXPECT_EQ(q.unindexed(), 1u);
  EXPECT_EQ(q.resource_at(q.first()), TransactionQueue::kNoResource);
}

// Heavy push/take churn in a bounded queue, cross-checked against a plain
// deque model: exercises the ring compaction and the line index's
// backward-shift deletion far past the ring capacity.
TEST(TransactionQueue, ChurnMatchesDequeModel) {
  TransactionQueue q;
  q.configure(64, 16, 8);
  std::deque<Transaction> model;
  std::uint64_t next_id = 1;
  std::uint64_t rng = 12345;
  auto rand = [&rng]() {
    rng = rng * 6364136223846793005ull + 1442695040888963407ull;
    return rng >> 33;
  };
  for (int step = 0; step < 5000; ++step) {
    const bool do_push = model.size() < 2 || (model.size() < 8 && rand() % 2);
    if (do_push) {
      const Transaction tx = make_tx(next_id++, (rand() % 32) * 64,
                                     AccessType::kWrite, step);
      q.push(tx, static_cast<unsigned>(tx.addr / 64 % 16));
      model.push_back(tx);
    } else {
      // Take a pseudo-random live entry by rank.
      std::size_t k = rand() % model.size();
      auto p = q.first();
      for (std::size_t i = 0; i < k; ++i) p = q.next(p);
      const Transaction got = q.take(p);
      EXPECT_EQ(got.id, model[k].id);
      model.erase(model.begin() + static_cast<std::ptrdiff_t>(k));
    }
    ASSERT_EQ(q.size(), model.size());
    // Spot-check the line index and age order against the model.
    if (step % 97 == 0) {
      std::vector<std::uint64_t> want;
      for (const Transaction& tx : model) want.push_back(tx.id);
      EXPECT_EQ(ids_in_order(q), want);
      for (Addr line = 0; line < 32; ++line) {
        bool in_model = false;
        for (const Transaction& tx : model) {
          in_model |= tx.addr / 64 == line;
        }
        EXPECT_EQ(q.contains_line(line * 64, 64), in_model) << "line " << line;
      }
    }
  }
}

}  // namespace
}  // namespace wompcm

#include <gtest/gtest.h>

#include "controller/queues.h"

namespace wompcm {
namespace {

Transaction make_tx(std::uint64_t id, Addr addr, AccessType type,
                    Tick arrival) {
  Transaction tx;
  tx.id = id;
  tx.addr = addr;
  tx.type = type;
  tx.arrival = arrival;
  return tx;
}

TEST(TransactionQueue, FifoOrderPreserved) {
  TransactionQueue q;
  EXPECT_TRUE(q.empty());
  q.push(make_tx(1, 0x100, AccessType::kRead, 10));
  q.push(make_tx(2, 0x200, AccessType::kRead, 20));
  q.push(make_tx(3, 0x300, AccessType::kRead, 30));
  ASSERT_EQ(q.size(), 3u);
  EXPECT_EQ(q.at(0).id, 1u);
  EXPECT_EQ(q.at(2).id, 3u);
}

TEST(TransactionQueue, TakeRemovesByIndex) {
  TransactionQueue q;
  q.push(make_tx(1, 0, AccessType::kRead, 0));
  q.push(make_tx(2, 0, AccessType::kRead, 0));
  q.push(make_tx(3, 0, AccessType::kRead, 0));
  const Transaction t = q.take(1);
  EXPECT_EQ(t.id, 2u);
  ASSERT_EQ(q.size(), 2u);
  EXPECT_EQ(q.at(0).id, 1u);
  EXPECT_EQ(q.at(1).id, 3u);
}

TEST(TransactionQueue, ContainsLineMatchesWholeLine) {
  TransactionQueue q;
  q.push(make_tx(1, 0x1000, AccessType::kWrite, 0));
  EXPECT_TRUE(q.contains_line(0x1000, 64));
  EXPECT_TRUE(q.contains_line(0x103F, 64));  // same 64B line
  EXPECT_FALSE(q.contains_line(0x1040, 64));
  EXPECT_FALSE(q.contains_line(0x0FC0, 64));
}

TEST(TransactionQueue, OldestArrival) {
  TransactionQueue q;
  EXPECT_EQ(q.oldest_arrival(), kNeverTick);
  q.push(make_tx(1, 0, AccessType::kRead, 50));
  q.push(make_tx(2, 0, AccessType::kRead, 20));
  q.push(make_tx(3, 0, AccessType::kRead, 70));
  EXPECT_EQ(q.oldest_arrival(), 20u);
}

TEST(TransactionQueue, EntriesIterationMatchesIndices) {
  TransactionQueue q;
  for (std::uint64_t i = 0; i < 5; ++i) {
    q.push(make_tx(i, i * 64, AccessType::kWrite, i));
  }
  std::uint64_t expect = 0;
  for (const Transaction& tx : q.entries()) {
    EXPECT_EQ(tx.id, expect++);
  }
}

}  // namespace
}  // namespace wompcm

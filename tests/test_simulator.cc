// End-to-end tests of the Simulator driver on a small geometry.
#include <gtest/gtest.h>

#include "sim/simulator.h"
#include "trace/synthetic.h"

namespace wompcm {
namespace {

SimConfig small_config() {
  SimConfig cfg;
  cfg.geom.channels = 1;
  cfg.geom.ranks = 2;
  cfg.geom.banks_per_rank = 2;
  cfg.geom.rows_per_bank = 64;
  cfg.geom.cols_per_row = 64;  // 8 lines/row
  cfg.warmup_accesses = 0;
  return cfg;
}

std::vector<TraceRecord> simple_trace() {
  // line_bytes = 64 on this geometry.
  return {
      {0, AccessType::kWrite, 0 * 64},
      {50, AccessType::kRead, 100 * 64},
      {50, AccessType::kWrite, 7 * 64},
      {1000, AccessType::kRead, 0 * 64},
  };
}

TEST(Simulator, CountsInjections) {
  SimConfig cfg = small_config();
  VectorTraceSource trace(simple_trace());
  Simulator sim(cfg);
  const SimResult r = sim.run(trace);
  EXPECT_EQ(r.injected_reads, 2u);
  EXPECT_EQ(r.injected_writes, 2u);
  EXPECT_EQ(r.stats.demand_read_latency.count(), 2u);
  EXPECT_EQ(r.stats.demand_write_latency.count(), 2u);
  EXPECT_GT(r.end_time, 1100u);
  EXPECT_EQ(r.arch_name, "pcm");
}

TEST(Simulator, EmptyTrace) {
  SimConfig cfg = small_config();
  VectorTraceSource trace({});
  Simulator sim(cfg);
  const SimResult r = sim.run(trace);
  EXPECT_EQ(r.injected_reads + r.injected_writes, 0u);
  EXPECT_EQ(r.end_time, 0u);
}

TEST(Simulator, WarmupExcludesLeadingAccesses) {
  SimConfig cfg = small_config();
  cfg.warmup_accesses = 2;
  VectorTraceSource trace(simple_trace());
  Simulator sim(cfg);
  const SimResult r = sim.run(trace);
  // All four still injected and simulated, but only two recorded.
  EXPECT_EQ(r.injected_reads + r.injected_writes, 4u);
  EXPECT_EQ(r.stats.demand_read_latency.count() +
                r.stats.demand_write_latency.count(),
            2u);
}

TEST(Simulator, BackPressureDefersInjections) {
  SimConfig cfg = small_config();
  cfg.queue_capacity = 2;
  // A dense burst to one bank overwhelms a 2-entry queue.
  std::vector<TraceRecord> records;
  for (int i = 0; i < 16; ++i) {
    records.push_back({1, AccessType::kWrite,
                       static_cast<Addr>((i % 8) * 64)});
  }
  VectorTraceSource trace(records);
  Simulator sim(cfg);
  const SimResult r = sim.run(trace);
  EXPECT_EQ(r.injected_writes, 16u);
  EXPECT_GT(r.deferred_injections, 0u);
}

TEST(Simulator, ArchitecturePropagation) {
  SimConfig cfg = small_config();
  cfg.arch.kind = ArchKind::kWcpcm;
  VectorTraceSource trace(simple_trace());
  Simulator sim(cfg);
  const SimResult r = sim.run(trace);
  EXPECT_EQ(r.arch_name, "wcpcm[rs23-inv]");
  EXPECT_NEAR(r.capacity_overhead, 1.5 / 2.0, 1e-9);
}

TEST(Simulator, RefreshCountersSurface) {
  SimConfig cfg = small_config();
  cfg.arch.kind = ArchKind::kRefreshWomPcm;
  std::vector<TraceRecord> records = {
      {0, AccessType::kWrite, 0},
      {300, AccessType::kWrite, 0},
      // A very late access leaves a long idle window for the refresh.
      {100000, AccessType::kRead, 64},
  };
  VectorTraceSource trace(records);
  Simulator sim(cfg);
  const SimResult r = sim.run(trace);
  EXPECT_GE(r.refresh_commands, 1u);
  EXPECT_GE(r.refresh_rows, 1u);
}

TEST(Simulator, EnergySurfacesInResult) {
  SimConfig cfg = small_config();
  VectorTraceSource trace(simple_trace());
  Simulator sim(cfg);
  const SimResult r = sim.run(trace);
  EXPECT_GT(r.energy_write_pj, 0.0);
  EXPECT_GT(r.energy_read_pj, 0.0);
  EXPECT_DOUBLE_EQ(r.energy_refresh_pj, 0.0);
}

TEST(Simulator, DeterministicAcrossRuns) {
  WorkloadProfile p;
  p.name = "det";
  p.suite = "test";
  SimConfig cfg = small_config();
  double first_write = -1, first_read = -1;
  for (int i = 0; i < 2; ++i) {
    SyntheticTraceSource trace(p, cfg.geom, 99, 3000);
    Simulator sim(cfg);
    const SimResult r = sim.run(trace);
    if (i == 0) {
      first_write = r.avg_write_ns();
      first_read = r.avg_read_ns();
    } else {
      EXPECT_DOUBLE_EQ(r.avg_write_ns(), first_write);
      EXPECT_DOUBLE_EQ(r.avg_read_ns(), first_read);
    }
  }
}

TEST(Simulator, WcpcmGeneratesInternalWrites) {
  SimConfig cfg = small_config();
  cfg.arch.kind = ArchKind::kWcpcm;
  // Two writes to the same rank/row from different banks force an eviction.
  AddressMapper mapper(cfg.geom);
  const Addr a = mapper.encode(DecodedAddr{0, 0, 0, 5, 0});
  const Addr b = mapper.encode(DecodedAddr{0, 0, 1, 5, 0});
  VectorTraceSource trace({{0, AccessType::kWrite, a},
                           {500, AccessType::kWrite, b}});
  Simulator sim(cfg);
  const SimResult r = sim.run(trace);
  EXPECT_EQ(r.stats.counters.get("ctrl.internal_writes"), 1u);
  EXPECT_EQ(r.stats.internal_write_latency.count(), 1u);
  EXPECT_EQ(r.stats.counters.get("wcpcm.victims"), 1u);
}

}  // namespace
}  // namespace wompcm

// Tests for the per-line WOM generation tracker used by the timing model.
#include <gtest/gtest.h>

#include "wom/wom_tracker.h"

namespace wompcm {
namespace {

TEST(WomStateTracker, UnknownLinesStartAlpha) {
  WomStateTracker t(2, 8);
  EXPECT_EQ(t.generation(5, 3), WomStateTracker::kUnknownGen);
  EXPECT_EQ(t.peek_write(5, 3), WriteClass::kAlpha);
  const auto r = t.record_write(5, 3);
  EXPECT_EQ(r.cls, WriteClass::kAlpha);
  EXPECT_TRUE(r.cold);
  EXPECT_EQ(t.generation(5, 3), 1u);
  EXPECT_EQ(t.cold_alpha_writes(), 1u);
}

TEST(WomStateTracker, ErasedStartSkipsColdAlpha) {
  WomStateTracker t(2, 8, /*erased_start=*/true);
  EXPECT_EQ(t.generation(5, 3), 0u);
  EXPECT_EQ(t.peek_write(5, 3), WriteClass::kResetOnly);
  const auto r = t.record_write(5, 3);
  EXPECT_EQ(r.cls, WriteClass::kResetOnly);
  EXPECT_FALSE(r.cold);
}

TEST(WomStateTracker, AlphaEveryTPlusOneWritesAfterCold) {
  // t = 2: cold alpha, then F F A F A F A ...
  WomStateTracker t(2, 4);
  EXPECT_EQ(t.record_write(1, 0).cls, WriteClass::kAlpha);  // cold
  EXPECT_EQ(t.record_write(1, 0).cls, WriteClass::kResetOnly);
  EXPECT_EQ(t.record_write(1, 0).cls, WriteClass::kAlpha);
  EXPECT_EQ(t.record_write(1, 0).cls, WriteClass::kResetOnly);
  EXPECT_EQ(t.record_write(1, 0).cls, WriteClass::kAlpha);
  EXPECT_EQ(t.alpha_writes(), 3u);
  EXPECT_EQ(t.cold_alpha_writes(), 1u);
  EXPECT_EQ(t.writes(), 5u);
}

TEST(WomStateTracker, LinesAreIndependent) {
  WomStateTracker t(2, 4);
  t.record_write(1, 0);
  t.record_write(1, 0);  // line 0 at limit now
  EXPECT_EQ(t.generation(1, 0), 2u);
  EXPECT_EQ(t.generation(1, 1), WomStateTracker::kUnknownGen);
  EXPECT_EQ(t.record_write(1, 1).cls, WriteClass::kAlpha);  // cold, own line
  EXPECT_EQ(t.generation(1, 0), 2u);  // untouched by line 1's write
}

TEST(WomStateTracker, RowHasLimitLines) {
  WomStateTracker t(2, 4);
  EXPECT_FALSE(t.row_has_limit_lines(9));
  t.record_write(9, 2);
  EXPECT_FALSE(t.row_has_limit_lines(9));  // gen 1 < t
  t.record_write(9, 2);
  EXPECT_TRUE(t.row_has_limit_lines(9));  // gen 2 == t
  t.record_write(9, 2);                   // alpha resets the cycle
  EXPECT_FALSE(t.row_has_limit_lines(9));
}

TEST(WomStateTracker, RefreshErasesWholeRow) {
  WomStateTracker t(2, 4);
  t.record_write(3, 0);
  t.record_write(3, 0);  // line 0 at limit
  t.record_write(3, 1);  // line 1 cold alpha -> gen 1
  ASSERT_TRUE(t.row_has_limit_lines(3));
  EXPECT_TRUE(t.refresh(3));
  EXPECT_FALSE(t.row_has_limit_lines(3));
  EXPECT_EQ(t.generation(3, 0), 0u);
  EXPECT_EQ(t.generation(3, 1), 0u);
  EXPECT_EQ(t.generation(3, 2), 0u);  // never-written lines also erased
  // Next writes to any line of the row are fast.
  EXPECT_EQ(t.record_write(3, 2).cls, WriteClass::kResetOnly);
  EXPECT_EQ(t.refreshes(), 1u);
}

TEST(WomStateTracker, RefreshOnUntrackedRowIsNoop) {
  WomStateTracker t(2, 4);
  EXPECT_FALSE(t.refresh(77));
  EXPECT_EQ(t.refreshes(), 0u);
}

TEST(WomStateTracker, RefreshWithoutLimitLinesReportsUseless) {
  WomStateTracker t(2, 4);
  t.record_write(3, 0);  // gen 1
  EXPECT_FALSE(t.refresh(3));  // erased anyway, but not "useful"
  EXPECT_EQ(t.generation(3, 0), 0u);
}

TEST(WomStateTracker, SingleWriteCodeAlwaysAlphaAfterFirst) {
  WomStateTracker t(1, 2);
  EXPECT_EQ(t.record_write(0, 0).cls, WriteClass::kAlpha);  // cold
  EXPECT_TRUE(t.row_has_limit_lines(0));  // t=1: gen 1 is at the limit
  EXPECT_EQ(t.record_write(0, 0).cls, WriteClass::kAlpha);
  EXPECT_TRUE(t.row_has_limit_lines(0));
}

class TrackerLimitSweep : public ::testing::TestWithParam<unsigned> {};

TEST_P(TrackerLimitSweep, SteadyStateAlphaRate) {
  // In steady state, exactly one write in t is alpha.
  const unsigned t = GetParam();
  WomStateTracker tracker(t, 1);
  // Warm the line past the cold write.
  tracker.record_write(0, 0);
  const std::uint64_t alpha_before = tracker.alpha_writes();
  unsigned alphas = 0;
  constexpr unsigned kWrites = 120;
  for (unsigned i = 0; i < kWrites; ++i) {
    if (tracker.record_write(0, 0).cls == WriteClass::kAlpha) ++alphas;
  }
  (void)alpha_before;
  EXPECT_NEAR(static_cast<double>(alphas),
              static_cast<double>(kWrites) / t, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Limits, TrackerLimitSweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 8u));

TEST(WomStateTracker, TrackedRowsGrowLazily) {
  WomStateTracker t(2, 16);
  EXPECT_EQ(t.tracked_rows(), 0u);
  t.record_write(1, 0);
  t.record_write(2, 0);
  t.record_write(1, 5);
  EXPECT_EQ(t.tracked_rows(), 2u);
}

}  // namespace
}  // namespace wompcm

// The composition layer's contract (DESIGN.md section 9): every legacy
// ArchKind is bit-identical to its explicit canonical composition, invalid
// compositions are rejected with actionable messages, the sweep helper
// enumerates only valid cells, and the novel compositions shipped in
// configs/ run end-to-end.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "arch/arch.h"
#include "sim/config_io.h"
#include "sim/experiment.h"

namespace wompcm {
namespace {

// Small platform: equivalence only needs every code path, not paper scale.
SimConfig small_config() {
  SimConfig cfg = paper_config();
  cfg.geom.ranks = 2;
  cfg.geom.banks_per_rank = 4;
  cfg.geom.rows_per_bank = 2048;
  return cfg;
}

void expect_identical(const SimResult& a, const SimResult& b) {
  EXPECT_EQ(a.arch_name, b.arch_name);
  EXPECT_EQ(a.end_time, b.end_time);
  EXPECT_EQ(a.injected_reads, b.injected_reads);
  EXPECT_EQ(a.injected_writes, b.injected_writes);
  EXPECT_EQ(a.deferred_injections, b.deferred_injections);
  EXPECT_EQ(a.refresh_commands, b.refresh_commands);
  EXPECT_EQ(a.refresh_rows, b.refresh_rows);
  EXPECT_EQ(a.stats.demand_read_latency.count(),
            b.stats.demand_read_latency.count());
  EXPECT_EQ(a.stats.demand_read_latency.sum(),
            b.stats.demand_read_latency.sum());
  EXPECT_EQ(a.stats.demand_write_latency.count(),
            b.stats.demand_write_latency.count());
  EXPECT_EQ(a.stats.demand_write_latency.sum(),
            b.stats.demand_write_latency.sum());
  EXPECT_EQ(a.stats.internal_write_latency.count(),
            b.stats.internal_write_latency.count());
  EXPECT_EQ(a.stats.internal_write_latency.sum(),
            b.stats.internal_write_latency.sum());
  EXPECT_EQ(a.stats.counters.all(), b.stats.counters.all());
  EXPECT_DOUBLE_EQ(a.capacity_overhead, b.capacity_overhead);
  EXPECT_DOUBLE_EQ(a.energy_read_pj, b.energy_read_pj);
  EXPECT_DOUBLE_EQ(a.energy_write_pj, b.energy_write_pj);
  EXPECT_DOUBLE_EQ(a.energy_refresh_pj, b.energy_refresh_pj);
  EXPECT_DOUBLE_EQ(a.max_line_wear, b.max_line_wear);
  EXPECT_DOUBLE_EQ(a.mean_line_wear, b.mean_line_wear);
  EXPECT_EQ(a.fault_injected, b.fault_injected);
  EXPECT_EQ(a.fault_retries, b.fault_retries);
  EXPECT_EQ(a.fault_demoted_writes, b.fault_demoted_writes);
  EXPECT_EQ(a.fault_remapped_rows, b.fault_remapped_rows);
  EXPECT_EQ(a.fault_dead_rows, b.fault_dead_rows);
  EXPECT_EQ(a.fault_read_disturbs, b.fault_read_disturbs);
}

struct KindCase {
  ArchKind kind;
  WomOrganization org;
};

// Every legacy kind, plus the hidden-page organization variant.
const KindCase kKinds[] = {
    {ArchKind::kBaseline, WomOrganization::kWideColumn},
    {ArchKind::kWomPcm, WomOrganization::kWideColumn},
    {ArchKind::kWomPcm, WomOrganization::kHiddenPage},
    {ArchKind::kRefreshWomPcm, WomOrganization::kWideColumn},
    {ArchKind::kWcpcm, WomOrganization::kWideColumn},
    {ArchKind::kFlipNWrite, WomOrganization::kWideColumn},
    {ArchKind::kSymmetric, WomOrganization::kWideColumn},
};

TEST(CompositionEquivalence, LegacyKindsMatchExplicitCompositions) {
  const WorkloadProfile profile = *find_profile("401.bzip2");
  for (const KindCase& kc : kKinds) {
    for (const ScanMode scan : {ScanMode::kIndexed, ScanMode::kReference}) {
      for (const bool faults : {false, true}) {
        SimConfig legacy = small_config();
        legacy.sched.scan_mode = scan;
        legacy.arch.kind = kc.kind;
        legacy.arch.organization = kc.org;
        legacy.arch.code = "rs23-inv";
        if (faults) {
          legacy.fault.enabled = true;
          legacy.fault.seed = 7;
          legacy.fault.endurance = 400;
          legacy.fault.sigma = 0.35;
          legacy.fault.initial_wear = 0.75;
          legacy.fault.spare_rows = 4;
          legacy.fault.read_disturb = 0.0005;
        }
        SimConfig composed = legacy;
        composed.arch.composition =
            canonical_composition(kc.kind, kc.org);
        const SimResult a = run({legacy, TraceSpec::profile(profile, 4000),
                                 RunOptions::with_seed(11)});
        const SimResult b = run({composed, TraceSpec::profile(profile, 4000),
                                 RunOptions::with_seed(11)});
        SCOPED_TRACE(std::string(to_string(kc.kind)) + "/" +
                     to_string(kc.org) + "/scan=" +
                     std::to_string(static_cast<int>(scan)) +
                     "/faults=" + (faults ? "on" : "off"));
        expect_identical(a, b);
      }
    }
  }
}

TEST(CompositionEquivalence, BankTagPolicyCachePreservesGoldens) {
  // PR 7 re-expressed the WOM cache's per-rank row/bank tag scheme as the
  // bank_tag ReplacementPolicy behind arch/tag_array.h. The WCPCM cell —
  // the composition that actually exercises tag lookups, victim selection
  // and invalidation — must still produce one result: identical across
  // scan modes interchanged for each other, faults on/off handled
  // consistently, and serial vs sharded (jobs = 2 on two channels)
  // bit-identical. The paper-scale golden snapshot itself is pinned by
  // GoldenEquivalence in test_reproduction.cc; this case pins the cache
  // path on a sharded platform.
  const WorkloadProfile profile = *find_profile("401.bzip2");
  for (const ScanMode scan : {ScanMode::kIndexed, ScanMode::kReference}) {
    for (const bool faults : {false, true}) {
      SimConfig cfg = small_config();
      cfg.geom.channels = 2;
      cfg.sched.scan_mode = scan;
      cfg.arch.kind = ArchKind::kWcpcm;
      cfg.arch.code = "rs23-inv";
      if (faults) {
        cfg.fault.enabled = true;
        cfg.fault.seed = 7;
        cfg.fault.endurance = 400;
        cfg.fault.sigma = 0.35;
        cfg.fault.initial_wear = 0.75;
        cfg.fault.spare_rows = 4;
        cfg.fault.read_disturb = 0.0005;
      }
      SCOPED_TRACE(std::string("scan=") +
                   std::to_string(static_cast<int>(scan)) + "/faults=" +
                   (faults ? "on" : "off"));

      RunRequest req;
      req.config = cfg;
      req.trace = TraceSpec::profile(profile, 4000);
      req.options = RunOptions::with_seed(11);
      req.options.jobs = ParallelPolicy::with_jobs(1);
      const SimResult serial = run(req);
      req.options.jobs = ParallelPolicy::with_jobs(2);
      const SimResult sharded = run(req);
      expect_identical(serial, sharded);

      // The cache is genuinely in play, not silently bypassed.
      const auto& counters = serial.stats.counters.all();
      EXPECT_NE(counters.find("wcpcm.write_misses"), counters.end());
    }
  }
}

TEST(CompositionValidity, RejectsRefreshWithoutAnyWomRegion) {
  for (const CodingKind main : {CodingKind::kRaw, CodingKind::kFlipNWrite,
                                CodingKind::kSymmetric}) {
    Composition c{main, false, CodingKind::kWomWide, RefreshKind::kRat};
    std::string why;
    EXPECT_FALSE(composition_valid(c, &why)) << to_string(main);
    EXPECT_NE(why.find("WOM-coded region"), std::string::npos) << why;
    EXPECT_THROW(validate_composition(c), std::invalid_argument);
  }
  // A WOM-coded cache alone satisfies the refresh requirement.
  Composition ok{CodingKind::kRaw, true, CodingKind::kWomWide,
                 RefreshKind::kRat};
  EXPECT_TRUE(composition_valid(ok));
}

TEST(CompositionValidity, RejectsHiddenPageCache) {
  Composition c{CodingKind::kRaw, true, CodingKind::kWomHidden,
                RefreshKind::kRat};
  std::string why;
  EXPECT_FALSE(composition_valid(c, &why));
  EXPECT_NE(why.find("cache.coding=wom-wide"), std::string::npos) << why;
  EXPECT_THROW(validate_composition(c), std::invalid_argument);
}

TEST(CompositionValidity, NormalizesDisabledCacheCoding) {
  const Composition c = validate_composition(
      {CodingKind::kWomWide, false, CodingKind::kFlipNWrite,
       RefreshKind::kNone});
  EXPECT_EQ(c.cache_coding, CodingKind::kWomWide);
}

TEST(CompositionSweep, EnumeratesOnlyValidCells) {
  const std::vector<CodingKind> mains = {
      CodingKind::kRaw, CodingKind::kWomWide, CodingKind::kWomHidden,
      CodingKind::kFlipNWrite, CodingKind::kSymmetric};
  const auto archs = composition_sweep(mains, {false, true},
                                       {RefreshKind::kNone, RefreshKind::kRat});
  // 5 x 2 x 2 = 20 cells minus the 3 cacheless non-WOM mains with refresh.
  EXPECT_EQ(archs.size(), 17u);
  for (const ArchConfig& a : archs) {
    ASSERT_TRUE(a.composition.has_value());
    EXPECT_TRUE(composition_valid(*a.composition));
    EXPECT_EQ(a.code, "rs23-inv");
  }
}

TEST(CompositionSweep, RunsThroughTheSweepHarness) {
  const auto archs = composition_sweep(
      {CodingKind::kRaw, CodingKind::kFlipNWrite}, {true},
      {RefreshKind::kRat});
  ASSERT_EQ(archs.size(), 2u);
  const std::vector<WorkloadProfile> profiles = {*find_profile("401.bzip2")};
  RunRequest req;
  req.config = small_config();
  req.trace = TraceSpec::profile(WorkloadProfile{}, 1500);
  req.options.seed = 3;
  const auto rows = run_sweep(req, archs, profiles);
  ASSERT_EQ(rows.size(), 1u);
  ASSERT_EQ(rows[0].results.size(), 2u);
  EXPECT_EQ(rows[0].results[0].arch_name, "wcpcm[rs23-inv]");
  EXPECT_EQ(rows[0].results[1].arch_name,
            "composed[main=fnw,cache=wom-wide,refresh=rat,code=rs23-inv]");
}

// The three novel compositions shipped in configs/ run end-to-end from
// their files (ISSUE: fnw+cache, hidden-page+refresh+cache,
// symmetric+cache).
struct NovelCase {
  const char* file;
  const char* arch_name;
};

TEST(NovelCompositions, RunEndToEndFromConfigFiles) {
  const NovelCase cases[] = {
      {"/configs/fnw_wom_cache.cfg",
       "composed[main=fnw,cache=wom-wide,refresh=rat,code=rs23-inv]"},
      {"/configs/hidden_refresh_cache.cfg",
       "composed[main=wom-hidden,cache=wom-wide,refresh=rat,code=rs23-inv]"},
      {"/configs/symmetric_cache.cfg",
       "composed[main=symmetric,cache=wom-wide,refresh=rat,code=rs23-inv]"},
  };
  const WorkloadProfile profile = *find_profile("401.bzip2");
  for (const NovelCase& nc : cases) {
    SCOPED_TRACE(nc.file);
    const SimConfig cfg =
        load_config_file(paper_config(), WOMPCM_REPO_DIR + std::string(nc.file));
    const SimResult r = run(
        {cfg, TraceSpec::profile(profile, 3000), RunOptions::with_seed(5)});
    EXPECT_EQ(r.arch_name, nc.arch_name);
    EXPECT_GT(r.capacity_overhead, 0.0);
    EXPECT_GT(r.stats.demand_write_latency.count(), 0u);
    // The cache is in front: demand writes hit the per-rank WOM arrays.
    EXPECT_GT(r.stats.counters.get("wcpcm.write_hits") +
                  r.stats.counters.get("wcpcm.write_misses"),
              0u);
  }
}

// The sectioned code families as composition cells: goldens across scan
// modes x faults x jobs in {1, 2}. Serial and sharded runs of every cell
// must be bit-identical (the same contract the classic cells honor), and
// the codec observability counters must surface in the SimResult.
TEST(SectionedCells, GoldensAcrossScanModesFaultsAndJobs) {
  struct Cell {
    const char* label;
    Composition comp;
    const char* code;       // legacy code= key (cache region)
    bool lut;               // main region encode runs the LUT fast path
  };
  const Cell cells[] = {
      {"polar-main",
       {CodingKind::kPolar, false, CodingKind::kWomWide, RefreshKind::kRat},
       "",
       false},
      {"tsc-main+wom-cache",
       {CodingKind::kTsConstrained, true, CodingKind::kWomWide,
        RefreshKind::kRat},
       "rs23-inv",
       true},
  };
  const WorkloadProfile profile = *find_profile("401.bzip2");
  for (const Cell& cell : cells) {
    for (const ScanMode scan : {ScanMode::kIndexed, ScanMode::kReference}) {
      for (const bool faults : {false, true}) {
        SimConfig cfg = small_config();
        cfg.geom.channels = 2;
        cfg.sched.scan_mode = scan;
        cfg.arch.composition = validate_composition(cell.comp);
        cfg.arch.code = cell.code;
        if (faults) {
          cfg.fault.enabled = true;
          cfg.fault.seed = 7;
          cfg.fault.endurance = 400;
          cfg.fault.sigma = 0.35;
          cfg.fault.initial_wear = 0.75;
          cfg.fault.spare_rows = 4;
          cfg.fault.read_disturb = 0.0005;
        }
        SCOPED_TRACE(std::string(cell.label) + "/scan=" +
                     std::to_string(static_cast<int>(scan)) + "/faults=" +
                     (faults ? "on" : "off"));

        RunRequest req;
        req.config = cfg;
        req.trace = TraceSpec::profile(profile, 4000);
        req.options = RunOptions::with_seed(11);
        req.options.jobs = ParallelPolicy::with_jobs(1);
        const SimResult serial = run(req);
        req.options.jobs = ParallelPolicy::with_jobs(2);
        const SimResult sharded = run(req);
        expect_identical(serial, sharded);

        // The per-section budget is genuinely in play: in-budget rewrites
        // outnumber alpha re-inits (t = 8 for both shipped cells, so the
        // fast:alpha ratio is far above the rs23 cell's 1:1).
        const auto& counters = serial.stats.counters;
        EXPECT_GT(counters.get("writes.fast"), counters.get("writes.alpha"));
        // The LUT observability counters surface in the result.
        if (cell.lut) {
          EXPECT_GT(counters.get("codec.lut_hits"), 0u);
        } else {
          EXPECT_GT(counters.get("codec.lut_fallbacks"), 0u);
        }
      }
    }
  }
}

TEST(SectionedCells, NewConfigFilesRunEndToEnd) {
  const WorkloadProfile profile = *find_profile("401.bzip2");
  {
    const SimConfig cfg = load_config_file(
        paper_config(), WOMPCM_REPO_DIR "/configs/polar.cfg");
    const SimResult r = run(
        {cfg, TraceSpec::profile(profile, 3000), RunOptions::with_seed(5)});
    EXPECT_EQ(r.arch_name, "composed[main=polar,refresh=rat,code=polar-m7-inv]");
    // 64 sections of <2^8>^8/128 per 512-bit line: 15x capacity overhead.
    EXPECT_DOUBLE_EQ(r.capacity_overhead, 15.0);
    EXPECT_GT(r.stats.counters.get("writes.fast"), 0u);
    EXPECT_GT(r.stats.counters.get("codec.lut_fallbacks"), 0u);
  }
  {
    const SimConfig cfg = load_config_file(
        paper_config(), WOMPCM_REPO_DIR "/configs/ts_constrained.cfg");
    const SimResult r = run(
        {cfg, TraceSpec::profile(profile, 3000), RunOptions::with_seed(5)});
    EXPECT_EQ(r.arch_name,
              "composed[main=ts-constrained,cache=wom-wide,refresh=rat,"
              "main.code=tsc-rs23x4-inv,cache.code=rs23-inv]");
    EXPECT_GT(r.stats.counters.get("wcpcm.write_hits") +
                  r.stats.counters.get("wcpcm.write_misses"),
              0u);
    EXPECT_GT(r.stats.counters.get("codec.lut_hits"), 0u);
  }
}

TEST(NovelCompositions, HiddenMainPlusCacheChargesHiddenExtrasOnMisses) {
  // Hidden-page main behind a cache still pays the hidden-page extra
  // accesses when a read misses the cache or a victim lands in main memory.
  const SimConfig cfg = load_config_file(
      paper_config(), WOMPCM_REPO_DIR "/configs/hidden_refresh_cache.cfg");
  const SimResult r =
      run({cfg, TraceSpec::profile(*find_profile("401.bzip2"), 3000),
           RunOptions::with_seed(5)});
  // Read misses are served by the hidden-page main array (extra tag read);
  // victim write-backs program its hidden page as well.
  EXPECT_GT(r.stats.counters.get("hidden_page.extra_reads"), 0u);
  EXPECT_GT(r.stats.counters.get("hidden_page.extra_writes"), 0u);
}

}  // namespace
}  // namespace wompcm

// Fault-injection & graceful-degradation tests: the remap table, the
// seeded cell-failure model, the controller's degradation behaviour on
// every architecture, and the determinism contract (same fault seed, same
// outcome — under either scheduler scan mode).
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "controller/remap_table.h"
#include "pcm/fault_model.h"
#include "sim/config_io.h"
#include "sim/run.h"

namespace wompcm {
namespace {

// -------------------------------------------------------------------------
// SpareRowRemapper

TEST(SpareRowRemapper, IdentityUntilRetired) {
  SpareRowRemapper remap(/*banks=*/4, /*spare_rows=*/2, /*first_spare_row=*/64);
  EXPECT_EQ(remap.resolve(0, 17), 17u);
  EXPECT_EQ(remap.resolve(3, 0), 0u);
  EXPECT_EQ(remap.remapped_rows(), 0u);
}

TEST(SpareRowRemapper, RetireTranslatesAndCounts) {
  SpareRowRemapper remap(4, 2, 64);
  const auto spare = remap.retire(1, 17);
  ASSERT_TRUE(spare.has_value());
  EXPECT_EQ(*spare, 64u);  // first spare of bank 1
  EXPECT_EQ(remap.resolve(1, 17), 64u);
  // Other banks and rows are untouched.
  EXPECT_EQ(remap.resolve(0, 17), 17u);
  EXPECT_EQ(remap.resolve(1, 18), 18u);
  EXPECT_EQ(remap.remapped_rows(), 1u);
  EXPECT_EQ(remap.spares_used(1), 1u);
  EXPECT_EQ(remap.spares_used(0), 0u);
}

TEST(SpareRowRemapper, ChainsWhenSpareDiesToo) {
  SpareRowRemapper remap(2, 3, 100);
  ASSERT_EQ(remap.retire(0, 5), std::optional<unsigned>(100u));
  // The spare itself wears out: retiring it extends the chain, and the
  // original row now resolves through both hops.
  ASSERT_EQ(remap.retire(0, 100), std::optional<unsigned>(101u));
  EXPECT_EQ(remap.resolve(0, 5), 101u);
  EXPECT_EQ(remap.resolve(0, 100), 101u);
  EXPECT_EQ(remap.remapped_rows(), 2u);
}

TEST(SpareRowRemapper, ExhaustionReturnsNullopt) {
  SpareRowRemapper remap(2, 1, 10);
  ASSERT_TRUE(remap.retire(0, 3).has_value());
  EXPECT_FALSE(remap.retire(0, 4).has_value());
  EXPECT_EQ(remap.exhausted(), 1u);
  // The failed retire leaves the row unmapped.
  EXPECT_EQ(remap.resolve(0, 4), 4u);
  // Bank 1 still has its own spare.
  EXPECT_TRUE(remap.retire(1, 3).has_value());
}

// -------------------------------------------------------------------------
// FaultModel

TEST(FaultModel, EnduranceIsPureFunctionOfIdentity) {
  FaultConfig cfg;
  cfg.seed = 99;
  cfg.endurance = 1000.0;
  cfg.sigma = 0.4;
  FaultModel a(cfg, /*lines_per_row=*/8);
  FaultModel b(cfg, 8);
  for (RowKey row : {0ull, 7ull, 123456ull}) {
    for (unsigned line = 0; line < 8; ++line) {
      EXPECT_DOUBLE_EQ(a.line_endurance(row, line),
                       b.line_endurance(row, line));
    }
  }
  // A different seed is a different universe.
  cfg.seed = 100;
  FaultModel c(cfg, 8);
  EXPECT_NE(a.line_endurance(3, 0), c.line_endurance(3, 0));
}

TEST(FaultModel, SigmaZeroMeansEveryLineAtTheMedian) {
  FaultConfig cfg;
  cfg.endurance = 500.0;
  cfg.sigma = 0.0;
  const FaultModel m(cfg, 4);
  EXPECT_DOUBLE_EQ(m.line_endurance(0, 0), 500.0);
  EXPECT_DOUBLE_EQ(m.line_endurance(999, 3), 500.0);
}

TEST(FaultModel, LognormalSpreadCentersOnTheMedian) {
  FaultConfig cfg;
  cfg.endurance = 1000.0;
  cfg.sigma = 0.3;
  const FaultModel m(cfg, 8);
  unsigned below = 0, above = 0;
  for (RowKey row = 0; row < 500; ++row) {
    for (unsigned line = 0; line < 8; ++line) {
      const double e = m.line_endurance(row, line);
      EXPECT_GT(e, 0.0);
      (e < 1000.0 ? below : above) += 1;
    }
  }
  // Median property: roughly half the draws land on each side.
  const double frac = static_cast<double>(below) / (below + above);
  EXPECT_NEAR(frac, 0.5, 0.05);
}

TEST(FaultModel, StatesAdvanceAndStick) {
  FaultConfig cfg;
  cfg.endurance = 100.0;
  cfg.sigma = 0.0;
  FaultModel m(cfg, 4);
  using LS = FaultModel::LineState;
  // Below budget: healthy.
  auto obs = m.observe_write(5, 0, 50.0, /*pre_aged=*/false);
  EXPECT_EQ(obs.state, LS::kHealthy);
  EXPECT_FALSE(obs.transitioned);
  // Past budget: degraded, and the transition is flagged exactly once.
  obs = m.observe_write(5, 0, 120.0, false);
  EXPECT_EQ(obs.state, LS::kDegraded);
  EXPECT_TRUE(obs.transitioned);
  obs = m.observe_write(5, 0, 130.0, false);
  EXPECT_EQ(obs.state, LS::kDegraded);
  EXPECT_FALSE(obs.transitioned);
  // Past 1.5x budget: dead, sticky even if asked about lower wear.
  obs = m.observe_write(5, 0, 160.0, false);
  EXPECT_EQ(obs.state, LS::kDead);
  EXPECT_TRUE(obs.transitioned);
  obs = m.observe_write(5, 0, 0.0, false);
  EXPECT_EQ(obs.state, LS::kDead);
  EXPECT_FALSE(obs.transitioned);
}

TEST(FaultModel, PreAgingOnlyAffectsOriginalRows) {
  FaultConfig cfg;
  cfg.endurance = 100.0;
  cfg.sigma = 0.0;
  cfg.initial_wear = 1.2;
  FaultModel m(cfg, 4);
  using LS = FaultModel::LineState;
  // A pre-aged row starts past its budget; a fresh spare does not.
  EXPECT_EQ(m.observe_write(1, 0, 0.0, /*pre_aged=*/true).state,
            LS::kDegraded);
  EXPECT_EQ(m.observe_write(2, 0, 0.0, /*pre_aged=*/false).state,
            LS::kHealthy);
}

TEST(FaultModel, RetryDrawStaysInBounds) {
  FaultConfig cfg;
  cfg.max_retries = 3;
  FaultModel m(cfg, 1);
  std::set<unsigned> seen;
  for (int i = 0; i < 200; ++i) {
    const unsigned r = m.retry_draw();
    EXPECT_GE(r, 1u);
    EXPECT_LE(r, 3u);
    seen.insert(r);
  }
  EXPECT_EQ(seen.size(), 3u);  // all values reachable
}

TEST(FaultModel, ReadDisturbRespectsProbability) {
  FaultConfig off;
  off.read_disturb = 0.0;
  FaultModel moff(off, 1);
  for (int i = 0; i < 50; ++i) EXPECT_FALSE(moff.read_disturbed());

  FaultConfig always;
  always.read_disturb = 1.0;
  FaultModel mon(always, 1);
  for (int i = 0; i < 50; ++i) EXPECT_TRUE(mon.read_disturbed());
}

// -------------------------------------------------------------------------
// End-to-end degradation scenarios

// Small platform where a hot write stream burns through a deliberately
// tiny endurance budget within a few thousand accesses.
SimConfig worn_config(ArchKind kind) {
  SimConfig cfg;
  cfg.geom.channels = 1;
  cfg.geom.ranks = 2;
  cfg.geom.banks_per_rank = 2;
  cfg.geom.rows_per_bank = 64;
  cfg.geom.cols_per_row = 64;
  cfg.arch.kind = kind;
  cfg.warmup_accesses = 0;
  cfg.fault.enabled = true;
  cfg.fault.seed = 7;
  cfg.fault.endurance = 10.0;
  cfg.fault.sigma = 0.25;
  cfg.fault.initial_wear = 0.9;
  cfg.fault.spare_rows = 8;
  return cfg;
}

WorkloadProfile hot_profile() {
  WorkloadProfile hot;
  hot.name = "hot-row";
  hot.suite = "demo";
  hot.write_fraction = 0.8;
  hot.footprint_pages = 8;
  hot.write_zipf = 1.4;
  hot.rewrite_frac = 0.9;
  return hot;
}

SimResult run_worn(ArchKind kind, std::uint64_t accesses = 6000,
                   std::uint64_t seed = 42) {
  return run({worn_config(kind), TraceSpec::profile(hot_profile(), accesses),
              RunOptions::with_seed(seed)});
}

TEST(FaultInjection, DisabledIsBitIdenticalToNoModel) {
  SimConfig faulty = worn_config(ArchKind::kWomPcm);
  faulty.fault.enabled = false;
  SimConfig vanilla = faulty;
  vanilla.fault = FaultConfig{};
  const auto trace = TraceSpec::profile(hot_profile(), 4000);
  const SimResult a = run({faulty, trace, RunOptions::with_seed(1)});
  const SimResult b = run({vanilla, trace, RunOptions::with_seed(1)});
  EXPECT_EQ(a.end_time, b.end_time);
  EXPECT_EQ(a.stats.counters.all(), b.stats.counters.all());
  // No fault metric may even exist in the registry when faults are off.
  EXPECT_EQ(a.fault_injected, 0u);
  for (const auto& [name, scalar] : a.metrics.all()) {
    EXPECT_EQ(name.find("fault."), std::string::npos) << name;
  }
}

TEST(FaultInjection, WomDemotionAndRemapHappen) {
  const SimResult r = run_worn(ArchKind::kWomPcm);
  EXPECT_GT(r.fault_injected, 0u);
  EXPECT_GT(r.fault_retries, 0u);
  EXPECT_GT(r.fault_demoted_writes, 0u);
  EXPECT_GT(r.fault_remapped_rows, 0u);
  EXPECT_GT(r.fault_dead_rows, 0u);
  // The per-channel breakdown carries the same totals on this 1-channel
  // platform.
  EXPECT_EQ(r.metrics.counter("ch0.fault.injected"), r.fault_injected);
  EXPECT_EQ(r.metrics.counter("ch0.fault.demoted_writes"),
            r.fault_demoted_writes);
  EXPECT_EQ(r.metrics.counter("ch0.fault.remapped_rows"),
            r.fault_remapped_rows);
}

TEST(FaultInjection, BaselineRetriesButNeverDemotes) {
  const SimResult r = run_worn(ArchKind::kBaseline);
  EXPECT_GT(r.fault_injected, 0u);
  EXPECT_GT(r.fault_retries, 0u);
  // No WOM fast path to demote from.
  EXPECT_EQ(r.fault_demoted_writes, 0u);
  EXPECT_GT(r.fault_remapped_rows, 0u);
}

TEST(FaultInjection, RefreshWomDegradesGracefully) {
  const SimResult r = run_worn(ArchKind::kRefreshWomPcm);
  EXPECT_GT(r.fault_demoted_writes, 0u);
  EXPECT_GT(r.fault_remapped_rows, 0u);
}

TEST(FaultInjection, WcpcmRetiresDeadCacheRowsAndBypasses) {
  const SimResult r = run_worn(ArchKind::kWcpcm, 12000);
  EXPECT_GT(r.fault_injected, 0u);
  // Dead WOM-cache rows are invalidated and their writes forwarded to main
  // memory instead of being remapped (the cache has no spares).
  EXPECT_GT(r.stats.counters.get("wcpcm.dead_rows"), 0u);
  EXPECT_GT(r.stats.counters.get("wcpcm.bypass_writes"), 0u);
  EXPECT_GE(r.stats.counters.get("wcpcm.bypass_writes"),
            r.stats.counters.get("wcpcm.dead_rows"));
}

TEST(FaultInjection, DegradationCostsLatency) {
  SimConfig cfg = worn_config(ArchKind::kWomPcm);
  cfg.fault.enabled = false;
  const auto trace = TraceSpec::profile(hot_profile(), 6000);
  const SimResult clean = run({cfg, trace, RunOptions::with_seed(42)});
  const SimResult worn = run_worn(ArchKind::kWomPcm);
  EXPECT_GT(worn.avg_write_ns(), clean.avg_write_ns());
}

TEST(FaultInjection, ReadDisturbShowsUpWhenConfigured) {
  SimConfig cfg = worn_config(ArchKind::kBaseline);
  cfg.fault.read_disturb = 0.25;
  WorkloadProfile reads = hot_profile();
  reads.write_fraction = 0.2;
  const SimResult r =
      run({cfg, TraceSpec::profile(reads, 6000), RunOptions::with_seed(42)});
  EXPECT_GT(r.fault_read_disturbs, 0u);
  EXPECT_GE(r.fault_injected, r.fault_read_disturbs);
}

TEST(FaultInjection, BadFaultConfigThrows) {
  SimConfig cfg = worn_config(ArchKind::kBaseline);
  cfg.fault.endurance = 0.0;
  EXPECT_THROW(run({cfg, TraceSpec::profile(hot_profile(), 100),
                    RunOptions::with_seed(1)}),
               std::invalid_argument);
}

// -------------------------------------------------------------------------
// Determinism contract

void expect_same_outcome(const SimResult& a, const SimResult& b) {
  EXPECT_EQ(a.end_time, b.end_time);
  EXPECT_EQ(a.fault_injected, b.fault_injected);
  EXPECT_EQ(a.fault_retries, b.fault_retries);
  EXPECT_EQ(a.fault_demoted_writes, b.fault_demoted_writes);
  EXPECT_EQ(a.fault_remapped_rows, b.fault_remapped_rows);
  EXPECT_EQ(a.fault_dead_rows, b.fault_dead_rows);
  EXPECT_EQ(a.fault_read_disturbs, b.fault_read_disturbs);
  EXPECT_EQ(a.stats.counters.all(), b.stats.counters.all());
  EXPECT_EQ(a.stats.demand_write_latency.sum(),
            b.stats.demand_write_latency.sum());
  EXPECT_EQ(a.stats.demand_read_latency.sum(),
            b.stats.demand_read_latency.sum());
}

TEST(FaultDeterminism, SameSeedSameFaults) {
  for (const ArchKind kind :
       {ArchKind::kWomPcm, ArchKind::kRefreshWomPcm, ArchKind::kWcpcm}) {
    const SimResult a = run_worn(kind);
    const SimResult b = run_worn(kind);
    expect_same_outcome(a, b);
  }
}

TEST(FaultDeterminism, ScanModesAgreeUnderFaults) {
  SimConfig cfg = worn_config(ArchKind::kRefreshWomPcm);
  const auto trace = TraceSpec::profile(hot_profile(), 6000);
  RunOptions indexed = RunOptions::with_seed(42);
  indexed.scan_mode = ScanMode::kIndexed;
  RunOptions reference = RunOptions::with_seed(42);
  reference.scan_mode = ScanMode::kReference;
  const SimResult a = run({cfg, trace, indexed});
  const SimResult b = run({cfg, trace, reference});
  expect_same_outcome(a, b);
  EXPECT_GT(a.fault_injected, 0u);  // the agreement is not vacuous
}

TEST(FaultDeterminism, FaultSeedChangesTheUniverse) {
  SimConfig cfg = worn_config(ArchKind::kWomPcm);
  const auto trace = TraceSpec::profile(hot_profile(), 6000);
  const SimResult a = run({cfg, trace, RunOptions::with_seed(42)});
  cfg.fault.seed = 8;
  const SimResult c = run({cfg, trace, RunOptions::with_seed(42)});
  // Same trace, different fault universe: outcomes differ.
  EXPECT_NE(a.fault_injected, c.fault_injected);
}

// -------------------------------------------------------------------------
// The shipped scenario config

TEST(FaultyConfig, LoadsAndRoundTrips) {
  const SimConfig cfg =
      load_config_file(SimConfig{}, WOMPCM_REPO_DIR "/configs/faulty.cfg");
  EXPECT_TRUE(cfg.fault.enabled);
  EXPECT_EQ(cfg.fault.seed, 7u);
  EXPECT_DOUBLE_EQ(cfg.fault.endurance, 400.0);
  EXPECT_DOUBLE_EQ(cfg.fault.sigma, 0.35);
  EXPECT_DOUBLE_EQ(cfg.fault.initial_wear, 0.75);
  EXPECT_EQ(cfg.fault.max_retries, 3u);
  EXPECT_EQ(cfg.fault.spare_rows, 16u);
  EXPECT_DOUBLE_EQ(cfg.fault.read_disturb, 0.0005);
}

TEST(FaultyConfig, ScenarioDegradesButCompletes) {
  SimConfig cfg =
      load_config_file(SimConfig{}, WOMPCM_REPO_DIR "/configs/faulty.cfg");
  // Shrink the platform so the hot set cycles fast enough to die.
  cfg.geom.ranks = 2;
  cfg.geom.banks_per_rank = 2;
  cfg.geom.rows_per_bank = 256;
  cfg.warmup_accesses = 0;
  const SimResult r = run({cfg, TraceSpec::profile(hot_profile(), 8000),
                           RunOptions::with_seed(42)});
  EXPECT_GT(r.fault_injected, 0u);
  EXPECT_GT(r.fault_demoted_writes, 0u);
  EXPECT_GT(r.avg_write_ns(), 0.0);
}

}  // namespace
}  // namespace wompcm

// Serial-vs-sharded cross-check for single-run channel sharding.
//
// run() with RunOptions::jobs > 1 on a multi-channel config executes each
// channel's controller on its own worker behind a deterministic time
// barrier (sim/sharded.h). The contract is bit-identity: every
// deterministic field of the SimResult — counters, latency sums,
// histograms, the full metrics registry, per-bank utilization, energy and
// wear gauges, fault tallies — must match the serial run exactly, under
// every scan mode, composition, and fault seed. This suite sweeps
// serial vs jobs in {2, 4} over both scan modes, faults on and off, and
// compositions covering refresh, dynamic cache routing (WCPCM), and the
// per-channel Flip-N-Write RNG streams.
#include <gtest/gtest.h>

#include <string>

#include "sim/experiment.h"
#include "sim/run.h"

namespace wompcm {
namespace {

// Every deterministic field of two results must be identical (the same
// predicate as the indexed-vs-reference hot-path suite; wall-clock phase
// counters are excluded by design).
void expect_identical(const SimResult& a, const SimResult& b) {
  EXPECT_EQ(a.arch_name, b.arch_name);
  EXPECT_EQ(a.end_time, b.end_time);
  EXPECT_EQ(a.injected_reads, b.injected_reads);
  EXPECT_EQ(a.injected_writes, b.injected_writes);
  EXPECT_EQ(a.deferred_injections, b.deferred_injections);
  EXPECT_EQ(a.refresh_commands, b.refresh_commands);
  EXPECT_EQ(a.refresh_rows, b.refresh_rows);

  auto expect_latency_eq = [](const LatencyStats& x, const LatencyStats& y,
                              const char* what) {
    EXPECT_EQ(x.count(), y.count()) << what;
    EXPECT_EQ(x.min(), y.min()) << what;
    EXPECT_EQ(x.max(), y.max()) << what;
    EXPECT_EQ(x.sum(), y.sum()) << what;  // bit-exact: integer-tick sums
  };
  expect_latency_eq(a.stats.demand_read_latency, b.stats.demand_read_latency,
                    "demand read latency");
  expect_latency_eq(a.stats.demand_write_latency,
                    b.stats.demand_write_latency, "demand write latency");
  expect_latency_eq(a.stats.internal_write_latency,
                    b.stats.internal_write_latency, "internal write latency");

  for (std::size_t i = 0; i < Log2Histogram::kBuckets; ++i) {
    EXPECT_EQ(a.stats.read_latency_hist.bucket(i),
              b.stats.read_latency_hist.bucket(i))
        << "read hist bucket " << i;
    EXPECT_EQ(a.stats.write_latency_hist.bucket(i),
              b.stats.write_latency_hist.bucket(i))
        << "write hist bucket " << i;
  }

  EXPECT_EQ(a.stats.counters.all(), b.stats.counters.all());

  // The full registry, name by name: catches any per-channel scalar or
  // fault tally the convenience fields do not surface.
  const auto& ma = a.metrics.all();
  const auto& mb = b.metrics.all();
  ASSERT_EQ(ma.size(), mb.size());
  auto ib = mb.begin();
  for (auto ia = ma.begin(); ia != ma.end(); ++ia, ++ib) {
    EXPECT_EQ(ia->first, ib->first);
    EXPECT_EQ(ia->second.kind, ib->second.kind) << ia->first;
    EXPECT_EQ(ia->second.count, ib->second.count) << ia->first;
    EXPECT_EQ(ia->second.value, ib->second.value) << ia->first;
  }

  ASSERT_EQ(a.banks.size(), b.banks.size());
  for (std::size_t i = 0; i < a.banks.size(); ++i) {
    EXPECT_EQ(a.banks[i].busy_time, b.banks[i].busy_time) << "bank " << i;
    EXPECT_EQ(a.banks[i].ops, b.banks[i].ops) << "bank " << i;
    EXPECT_EQ(a.banks[i].row_hits, b.banks[i].row_hits) << "bank " << i;
    EXPECT_EQ(a.banks[i].pauses, b.banks[i].pauses) << "bank " << i;
    EXPECT_EQ(a.banks[i].cache, b.banks[i].cache) << "bank " << i;
  }

  EXPECT_EQ(a.capacity_overhead, b.capacity_overhead);
  EXPECT_EQ(a.energy_read_pj, b.energy_read_pj);
  EXPECT_EQ(a.energy_write_pj, b.energy_write_pj);
  EXPECT_EQ(a.energy_refresh_pj, b.energy_refresh_pj);
  EXPECT_EQ(a.max_line_wear, b.max_line_wear);
  EXPECT_EQ(a.mean_line_wear, b.mean_line_wear);
  EXPECT_EQ(a.lifetime_years, b.lifetime_years);
  EXPECT_EQ(a.fault_injected, b.fault_injected);
  EXPECT_EQ(a.fault_retries, b.fault_retries);
  EXPECT_EQ(a.fault_demoted_writes, b.fault_demoted_writes);
  EXPECT_EQ(a.fault_remapped_rows, b.fault_remapped_rows);
  EXPECT_EQ(a.fault_dead_rows, b.fault_dead_rows);
  EXPECT_EQ(a.fault_read_disturbs, b.fault_read_disturbs);
}

SimResult run_jobs(const SimConfig& cfg, const TraceSpec& trace,
                   std::uint64_t seed, unsigned jobs) {
  RunRequest req;
  req.config = cfg;
  req.trace = trace;
  req.options = RunOptions::with_seed(seed);
  req.options.jobs = ParallelPolicy::with_jobs(jobs);
  return run(req);
}

// Serial against jobs in {2, 4}, under both scan modes. jobs = 4 on a
// two-channel config also covers the executors = min(jobs, channels)
// clamp.
void check(SimConfig cfg, const TraceSpec& trace, std::uint64_t seed) {
  for (const ScanMode mode : {ScanMode::kIndexed, ScanMode::kReference}) {
    SCOPED_TRACE(std::string("scan=") +
                 (mode == ScanMode::kIndexed ? "indexed" : "reference") +
                 " seed=" + std::to_string(seed));
    cfg.sched.scan_mode = mode;
    const SimResult serial = run_jobs(cfg, trace, seed, 1);
    for (const unsigned jobs : {2u, 4u}) {
      SCOPED_TRACE("jobs=" + std::to_string(jobs));
      expect_identical(serial, run_jobs(cfg, trace, seed, jobs));
    }
  }
}

constexpr std::uint64_t kAccesses = 12000;

SimConfig quad_channel_config(ArchKind kind) {
  SimConfig cfg = paper_config();
  cfg.geom.channels = 4;
  cfg.geom.ranks = 4;  // keep total ranks comparable to the paper platform
  cfg.arch.kind = kind;
  return cfg;
}

TEST(ShardedEquivalence, RefreshWomPcmQuadChannel) {
  check(quad_channel_config(ArchKind::kRefreshWomPcm),
        TraceSpec::benchmark("401.bzip2", kAccesses), 42);
}

TEST(ShardedEquivalence, BaselineQuadChannel) {
  check(quad_channel_config(ArchKind::kBaseline),
        TraceSpec::benchmark("400.perlbench", kAccesses), 42);
}

TEST(ShardedEquivalence, FlipNWritePerChannelDraws) {
  // Flip-N-Write draws a fast/slow verdict per write from a seeded RNG:
  // the per-channel draw streams must make the outcome independent of how
  // the shards interleave.
  check(quad_channel_config(ArchKind::kFlipNWrite),
        TraceSpec::benchmark("462.libq", kAccesses), 11);
}

TEST(ShardedEquivalence, WcpcmDualChannel) {
  // WCPCM adds per-rank cache arrays, dynamic read routing, and
  // controller-spawned victim write-backs; jobs = 4 > channels = 2 also
  // exercises the executor clamp.
  SimConfig cfg = paper_config();
  cfg.geom.channels = 2;
  cfg.geom.ranks = 8;
  cfg.arch.kind = ArchKind::kWcpcm;
  check(cfg, TraceSpec::benchmark("401.bzip2", kAccesses), 42);
}

TEST(ShardedEquivalence, BackPressureSmallQueues) {
  // Tiny queues force deferred injections: the coordinator's serial
  // injection loop must defer and re-time arrivals exactly as the serial
  // run does.
  SimConfig cfg = quad_channel_config(ArchKind::kRefreshWomPcm);
  cfg.queue_capacity = 8;
  cfg.read_forwarding = false;
  check(cfg, TraceSpec::benchmark("464.h264ref", kAccesses), 42);
}

TEST(ShardedEquivalence, FaultInjectionOn) {
  // A deliberately tiny endurance budget on a hot write stream: retries,
  // demotions, remaps and dead rows all fire. The per-channel fault event
  // streams must line up between serial and sharded execution.
  SimConfig cfg;
  cfg.geom.channels = 2;
  cfg.geom.ranks = 2;
  cfg.geom.banks_per_rank = 2;
  cfg.geom.rows_per_bank = 64;
  cfg.geom.cols_per_row = 64;
  cfg.arch.kind = ArchKind::kWomPcm;
  cfg.warmup_accesses = 0;
  cfg.fault.enabled = true;
  cfg.fault.seed = 7;
  cfg.fault.endurance = 10.0;
  cfg.fault.sigma = 0.25;
  cfg.fault.initial_wear = 0.9;
  cfg.fault.spare_rows = 8;
  cfg.fault.read_disturb = 0.05;

  WorkloadProfile hot;
  hot.name = "hot-row";
  hot.suite = "demo";
  hot.write_fraction = 0.8;
  hot.footprint_pages = 8;
  hot.write_zipf = 1.4;
  hot.rewrite_frac = 0.9;

  const TraceSpec trace = TraceSpec::profile(hot, 6000);
  check(cfg, trace, 42);

  // The scenario actually degrades (otherwise the check proves nothing).
  const SimResult r = run_jobs(cfg, trace, 42, 2);
  EXPECT_GT(r.fault_injected, 0u);
  EXPECT_GT(r.fault_retries, 0u);
}

TEST(ShardedEquivalence, SerialFallbackSingleChannel) {
  // One channel: jobs > 1 must silently take the legacy serial path and
  // still produce the identical result.
  SimConfig cfg = paper_config();
  cfg.arch.kind = ArchKind::kRefreshWomPcm;
  const TraceSpec trace = TraceSpec::benchmark("401.bzip2", 8000);
  expect_identical(run_jobs(cfg, trace, 42, 1), run_jobs(cfg, trace, 42, 4));
}

}  // namespace
}  // namespace wompcm

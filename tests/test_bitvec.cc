#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "common/bitvec.h"

namespace wompcm {
namespace {

TEST(BitVec, DefaultIsEmpty) {
  BitVec v;
  EXPECT_EQ(v.size(), 0u);
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.popcount(), 0u);
}

TEST(BitVec, ConstructZeroFilled) {
  BitVec v(100);
  EXPECT_EQ(v.size(), 100u);
  EXPECT_EQ(v.popcount(), 0u);
  for (std::size_t i = 0; i < 100; ++i) EXPECT_FALSE(v.get(i));
}

TEST(BitVec, ConstructOneFilled) {
  BitVec v(67, true);
  EXPECT_EQ(v.popcount(), 67u);
  for (std::size_t i = 0; i < 67; ++i) EXPECT_TRUE(v.get(i));
}

TEST(BitVec, SetAndGet) {
  BitVec v(130);
  v.set(0, true);
  v.set(64, true);
  v.set(129, true);
  EXPECT_TRUE(v.get(0));
  EXPECT_TRUE(v.get(64));
  EXPECT_TRUE(v.get(129));
  EXPECT_FALSE(v.get(1));
  EXPECT_EQ(v.popcount(), 3u);
  v.set(64, false);
  EXPECT_FALSE(v.get(64));
  EXPECT_EQ(v.popcount(), 2u);
}

TEST(BitVec, FromStringRoundTrip) {
  const std::string s = "101100111000";
  const BitVec v = BitVec::from_string(s);
  EXPECT_EQ(v.size(), s.size());
  EXPECT_EQ(v.to_string(), s);
  EXPECT_EQ(v.popcount(), 6u);
}

TEST(BitVec, FromStringRejectsBadChars) {
  EXPECT_THROW(BitVec::from_string("10x"), std::invalid_argument);
}

TEST(BitVec, BitwiseOperators) {
  const BitVec a = BitVec::from_string("1100");
  const BitVec b = BitVec::from_string("1010");
  EXPECT_EQ((a & b).to_string(), "1000");
  EXPECT_EQ((a | b).to_string(), "1110");
  EXPECT_EQ((a ^ b).to_string(), "0110");
  EXPECT_EQ((~a).to_string(), "0011");
}

TEST(BitVec, ComplementMasksTailBits) {
  // ~ must not set bits beyond size(); popcount would expose them.
  BitVec v(70);
  const BitVec c = ~v;
  EXPECT_EQ(c.popcount(), 70u);
  EXPECT_EQ((~c).popcount(), 0u);
}

TEST(BitVec, SetAllRespectsSize) {
  BitVec v(65);
  v.set_all(true);
  EXPECT_EQ(v.popcount(), 65u);
  v.set_all(false);
  EXPECT_EQ(v.popcount(), 0u);
}

TEST(BitVec, Equality) {
  EXPECT_EQ(BitVec::from_string("101"), BitVec::from_string("101"));
  EXPECT_FALSE(BitVec::from_string("101") == BitVec::from_string("100"));
  EXPECT_FALSE(BitVec::from_string("101") == BitVec::from_string("1010"));
}

TEST(BitVec, AppendConcatenates) {
  BitVec v = BitVec::from_string("101");
  v.append(BitVec::from_string("0110"));
  EXPECT_EQ(v.to_string(), "1010110");
}

TEST(BitVec, AppendAcrossWordBoundary) {
  BitVec v(60, true);
  v.append(BitVec::from_string("0101"));
  EXPECT_EQ(v.size(), 64u);
  EXPECT_EQ(v.popcount(), 62u);
  EXPECT_FALSE(v.get(60));
  EXPECT_TRUE(v.get(61));
}

TEST(BitVec, Slice) {
  const BitVec v = BitVec::from_string("110010");
  EXPECT_EQ(v.slice(0, 3).to_string(), "110");
  EXPECT_EQ(v.slice(2, 4).to_string(), "0010");
  EXPECT_EQ(v.slice(5, 1).to_string(), "0");
}

TEST(BitVec, SliceIntoMatchesSlice) {
  BitVec v(300);
  for (std::size_t i = 0; i < 300; i += 7) v.set(i, true);
  BitVec out;  // reused across calls, as in the codec hot path
  const std::vector<std::pair<std::size_t, std::size_t>> cases = {
      {0, 3}, {5, 64}, {60, 10}, {63, 130}, {128, 172}, {299, 1}, {100, 0}};
  for (const auto& [begin, len] : cases) {
    v.slice_into(begin, len, out);
    EXPECT_EQ(out, v.slice(begin, len)) << begin << "+" << len;
  }
}

TEST(BitVec, AssignFromMatchesCopy) {
  const BitVec src = BitVec::from_string("1100101110");
  BitVec dst(257, true);  // different size: assign_from must retarget
  dst.assign_from(src);
  EXPECT_EQ(dst, src);
  BitVec empty;
  dst.assign_from(empty);
  EXPECT_TRUE(dst.empty());
}

TEST(BitVec, ExtractWordUsesGetIndexOrder) {
  const BitVec v = BitVec::from_string("110");
  // Bit j of the word is bit j of the vector: "110" -> 0b011.
  EXPECT_EQ(v.extract_word(0, 3), 0b011u);
  EXPECT_EQ(v.extract_word(1, 2), 0b01u);
}

TEST(BitVec, ExtractWordAcrossWordBoundary) {
  BitVec v(130);
  v.set(62, true);
  v.set(64, true);
  v.set(127, true);
  EXPECT_EQ(v.extract_word(62, 3), 0b101u);
  EXPECT_EQ(v.extract_word(64, 64), (std::uint64_t{1} << 63) | 1u);
  EXPECT_EQ(v.extract_word(120, 10), std::uint64_t{1} << 7);
}

TEST(BitVec, DepositWordRoundTripsWithExtract) {
  BitVec v(200, true);
  v.deposit_word(60, 10, 0b0110010110u);
  EXPECT_EQ(v.extract_word(60, 10), 0b0110010110u);
  // Neighbours untouched.
  EXPECT_TRUE(v.get(59));
  EXPECT_TRUE(v.get(70));
  // Full-word deposit at a word boundary.
  v.deposit_word(64, 64, 0xdeadbeefcafef00dull);
  EXPECT_EQ(v.extract_word(64, 64), 0xdeadbeefcafef00dull);
  // High garbage bits beyond `len` are masked off; bits 4..7 keep their
  // all-ones initial value.
  v.deposit_word(0, 4, ~std::uint64_t{0} << 4);
  EXPECT_EQ(v.extract_word(0, 8), 0xf0u);
}

TEST(BitVec, DepositThenSetGetAgree) {
  BitVec a(96), b(96);
  const std::uint64_t bits = 0x5a5a5a5a5ull;
  a.deposit_word(30, 40, bits);
  for (std::size_t j = 0; j < 40; ++j) b.set(30 + j, (bits >> j) & 1);
  EXPECT_EQ(a, b);
}

TEST(BitVec, TransitionCounts) {
  const BitVec from = BitVec::from_string("1100");
  const BitVec to = BitVec::from_string("1010");
  EXPECT_EQ(from.set_transitions_to(to), 1u);    // bit 2: 0 -> 1
  EXPECT_EQ(from.reset_transitions_to(to), 1u);  // bit 1: 1 -> 0
}

TEST(BitVec, MonotoneChecks) {
  const BitVec a = BitVec::from_string("1100");
  EXPECT_TRUE(a.monotone_increasing_to(BitVec::from_string("1110")));
  EXPECT_FALSE(a.monotone_increasing_to(BitVec::from_string("1010")));
  EXPECT_TRUE(a.monotone_decreasing_to(BitVec::from_string("0100")));
  EXPECT_FALSE(a.monotone_decreasing_to(BitVec::from_string("0110")));
  // Identity transition is monotone in both directions.
  EXPECT_TRUE(a.monotone_increasing_to(a));
  EXPECT_TRUE(a.monotone_decreasing_to(a));
}

class BitVecSizeTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BitVecSizeTest, ComplementIsInvolution) {
  const std::size_t n = GetParam();
  BitVec v(n);
  for (std::size_t i = 0; i < n; i += 3) v.set(i, true);
  EXPECT_EQ(~~v, v);
  EXPECT_EQ(v.popcount() + (~v).popcount(), n);
}

TEST_P(BitVecSizeTest, TransitionsPartitionXor) {
  const std::size_t n = GetParam();
  BitVec a(n), b(n);
  for (std::size_t i = 0; i < n; i += 2) a.set(i, true);
  for (std::size_t i = 0; i < n; i += 3) b.set(i, true);
  EXPECT_EQ(a.set_transitions_to(b) + a.reset_transitions_to(b),
            (a ^ b).popcount());
}

INSTANTIATE_TEST_SUITE_P(Sizes, BitVecSizeTest,
                         ::testing::Values(1, 3, 63, 64, 65, 127, 128, 1000));

// Per-bit reference loops for the unrolled word counters. The production
// counters process four words per iteration with a scalar remainder tail;
// these pin them to the bit-at-a-time definition across lengths that
// exercise every tail shape (0..4 leftover words, partial last word).
std::size_t scalar_popcount(const BitVec& v) {
  std::size_t n = 0;
  for (std::size_t i = 0; i < v.size(); ++i) n += v.get(i) ? 1 : 0;
  return n;
}

std::pair<std::size_t, std::size_t> scalar_transitions(const BitVec& a,
                                                       const BitVec& b) {
  std::size_t sets = 0, resets = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (!a.get(i) && b.get(i)) ++sets;
    if (a.get(i) && !b.get(i)) ++resets;
  }
  return {sets, resets};
}

class BitVecUnrollTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(BitVecUnrollTest, PopcountMatchesScalarReference) {
  const std::size_t n = GetParam();
  BitVec v(n);
  for (std::size_t i = 0; i < n; i += 2) v.set(i, true);
  for (std::size_t i = 0; i < n; i += 7) v.set(i, false);
  EXPECT_EQ(v.popcount(), scalar_popcount(v));
}

TEST_P(BitVecUnrollTest, TransitionsMatchScalarReference) {
  const std::size_t n = GetParam();
  BitVec a(n), b(n);
  for (std::size_t i = 0; i < n; i += 2) a.set(i, true);
  for (std::size_t i = 0; i < n; i += 3) b.set(i, true);
  for (std::size_t i = 0; i < n; i += 5) b.set(i, false);
  const auto [sets, resets] = scalar_transitions(a, b);
  EXPECT_EQ(a.set_transitions_to(b), sets);
  EXPECT_EQ(a.reset_transitions_to(b), resets);
}

// Word counts 0..9 in every tail class mod 4, plus odd bit lengths that
// leave a masked partial last word.
INSTANTIATE_TEST_SUITE_P(OddLengths, BitVecUnrollTest,
                         ::testing::Values(1, 31, 64, 65, 129, 191, 256, 257,
                                           321, 385, 449, 513, 577, 600));

}  // namespace
}  // namespace wompcm

// TagArray + ReplacementPolicy unit contract (DESIGN.md "Tag arrays &
// tiered backends"): invalid ways fill before any victim is consulted,
// LRU/FIFO/random order evictions as advertised, the random stream is a
// pure function of its seed, and the bank_tag policy degenerates to the
// WOM cache's 1-way overwrite scheme.
#include <gtest/gtest.h>

#include <set>
#include <stdexcept>
#include <vector>

#include "arch/tag_array.h"

namespace wompcm {
namespace {

TagArray make(ReplacementKind kind, unsigned sets, unsigned ways,
              std::uint64_t seed = 1) {
  return TagArray(sets, ways, kind, seed);
}

TEST(TagArray, KindStringsRoundTrip) {
  for (const ReplacementKind k :
       {ReplacementKind::kBankTag, ReplacementKind::kLru,
        ReplacementKind::kFifo, ReplacementKind::kRandom}) {
    ReplacementKind parsed;
    ASSERT_TRUE(replacement_kind_from_string(to_string(k), &parsed));
    EXPECT_EQ(parsed, k);
  }
  ReplacementKind parsed;
  EXPECT_FALSE(replacement_kind_from_string("plru", &parsed));
}

TEST(TagArray, LookupInstallInvalidate) {
  TagArray t = make(ReplacementKind::kLru, 4, 2);
  EXPECT_EQ(t.lookup(0, 42), TagArray::kNoWay);
  const unsigned w = t.fill_way(0);
  t.install(0, w, 42);
  EXPECT_EQ(t.lookup(0, 42), w);
  EXPECT_TRUE(t.valid(0, w));
  EXPECT_EQ(t.tag(0, w), 42u);
  EXPECT_FALSE(t.dirty(0, w));
  t.set_dirty(0, w, true);
  EXPECT_TRUE(t.dirty(0, w));
  // Other sets are untouched.
  EXPECT_EQ(t.lookup(1, 42), TagArray::kNoWay);
  t.invalidate(0, w);
  EXPECT_EQ(t.lookup(0, 42), TagArray::kNoWay);
  EXPECT_FALSE(t.dirty(0, w));  // invalidation drops the dirty bit
}

TEST(TagArray, InvalidWaysFillBeforeAnyEviction) {
  TagArray t = make(ReplacementKind::kLru, 1, 4);
  std::set<unsigned> used;
  for (std::uint64_t tag = 0; tag < 4; ++tag) {
    const unsigned w = t.fill_way(0);
    EXPECT_FALSE(t.valid(0, w));  // never clobbers a valid way while room
    t.install(0, w, tag);
    used.insert(w);
  }
  EXPECT_EQ(used.size(), 4u);  // all four ways populated exactly once
}

TEST(TagArray, LruEvictsLeastRecentlyUsed) {
  TagArray t = make(ReplacementKind::kLru, 1, 4);
  for (std::uint64_t tag = 0; tag < 4; ++tag) {
    t.install(0, t.fill_way(0), tag);
  }
  // Touch 0 (the oldest install): the victim must now be 1.
  t.touch(0, t.lookup(0, 0));
  const unsigned victim = t.fill_way(0);
  EXPECT_EQ(t.tag(0, victim), 1u);
  t.install(0, victim, 99);
  // 1 is gone, 0 and 99 are resident.
  EXPECT_EQ(t.lookup(0, 1), TagArray::kNoWay);
  EXPECT_NE(t.lookup(0, 0), TagArray::kNoWay);
  EXPECT_NE(t.lookup(0, 99), TagArray::kNoWay);
}

TEST(TagArray, FifoIgnoresTouches) {
  TagArray t = make(ReplacementKind::kFifo, 1, 3);
  for (std::uint64_t tag = 0; tag < 3; ++tag) {
    t.install(0, t.fill_way(0), tag);
  }
  // However recently used, the first install is still the first out.
  t.touch(0, t.lookup(0, 0));
  t.touch(0, t.lookup(0, 0));
  EXPECT_EQ(t.tag(0, t.fill_way(0)), 0u);
}

TEST(TagArray, RandomVictimStreamIsSeedDeterministic) {
  const auto victims = [](std::uint64_t seed) {
    TagArray t = make(ReplacementKind::kRandom, 1, 8, seed);
    for (std::uint64_t tag = 0; tag < 8; ++tag) {
      t.install(0, t.fill_way(0), tag);
    }
    std::vector<unsigned> v;
    for (int i = 0; i < 32; ++i) {
      const unsigned w = t.fill_way(0);
      v.push_back(w);
      t.install(0, w, 100 + static_cast<std::uint64_t>(i));
    }
    return v;
  };
  EXPECT_EQ(victims(7), victims(7));   // same seed, same stream
  EXPECT_NE(victims(7), victims(8));   // 8^32 draws: collision ~ impossible
}

TEST(TagArray, BankTagIsOneWayOverwrite) {
  // The WOM cache's scheme: sets indexed by row, single way tagged by bank,
  // replacement == overwriting the occupant.
  TagArray t = make(ReplacementKind::kBankTag, 8, 1);
  EXPECT_EQ(t.fill_way(3), 0u);
  t.install(3, 0, /*bank=*/5);
  EXPECT_EQ(t.lookup(3, 5), 0u);
  EXPECT_EQ(t.lookup(3, 6), TagArray::kNoWay);
  EXPECT_EQ(t.fill_way(3), 0u);  // the only possible victim is the occupant
  t.install(3, 0, /*bank=*/6);
  EXPECT_EQ(t.lookup(3, 5), TagArray::kNoWay);
  EXPECT_EQ(t.lookup(3, 6), 0u);
}

TEST(TagArray, BankTagRejectsMultiWaySets) {
  EXPECT_THROW(make(ReplacementKind::kBankTag, 8, 2), std::invalid_argument);
}

TEST(TagArray, RejectsEmptyGeometry) {
  EXPECT_THROW(make(ReplacementKind::kLru, 0, 4), std::invalid_argument);
  EXPECT_THROW(make(ReplacementKind::kLru, 4, 0), std::invalid_argument);
}

}  // namespace
}  // namespace wompcm

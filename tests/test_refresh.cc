// Integration tests of PCM-refresh (Section 3.2): opportunistic row
// re-initialization, the r_th threshold, and write pausing.
#include <gtest/gtest.h>

#include <memory>

#include "arch/arch.h"
#include "controller/controller.h"

namespace wompcm {
namespace {

MemoryGeometry small_geom() {
  MemoryGeometry g;
  g.channels = 1;
  g.ranks = 2;
  g.banks_per_rank = 2;
  g.rows_per_bank = 16;
  g.cols_per_row = 64;  // 8 lines/row
  return g;
}

class RefreshTest : public ::testing::Test {
 protected:
  void build(double threshold = 0.0, bool pausing = true) {
    cfg_ = ControllerConfig{};
    cfg_.geom = small_geom();
    cfg_.refresh.threshold = threshold;
    cfg_.refresh.write_pausing = pausing;
    ArchConfig ac;
    ac.kind = ArchKind::kRefreshWomPcm;
    arch_ = make_architecture(ac, cfg_.geom, cfg_.timing);
    ctrl_ = std::make_unique<MemoryController>(cfg_, *arch_, stats_);
  }

  Transaction tx(std::uint64_t id, unsigned rank, unsigned bank, unsigned row,
                 unsigned col, AccessType type, Tick arrival) {
    Transaction t;
    t.id = id;
    t.dec = DecodedAddr{0, rank, bank, row, col};
    t.type = type;
    t.arrival = arrival;
    return t;
  }

  // Advances the controller through all events up to and including `until`.
  Tick run_until(Tick until, Tick now = 0) {
    ctrl_->tick(now);
    for (;;) {
      const Tick t = ctrl_->next_event_after(now);
      if (t == kNeverTick || t > until) break;
      now = t;
      ctrl_->tick(now);
    }
    return now;
  }

  ControllerConfig cfg_;
  SimStats stats_;
  std::unique_ptr<Architecture> arch_;
  std::unique_ptr<MemoryController> ctrl_;
};

TEST_F(RefreshTest, RefreshesRowAtLimitDuringIdle) {
  build();
  // Two writes drive line (row 3, col 0) to the rewrite limit (t = 2).
  ctrl_->enqueue(tx(1, 0, 0, 3, 0, AccessType::kWrite, 0));
  ctrl_->enqueue(tx(2, 0, 0, 3, 0, AccessType::kWrite, 300));
  run_until(3999);
  EXPECT_EQ(ctrl_->refresh_engine().commands(), 0u);

  // The 4000 ns check finds rank 0 idle with a pending row.
  run_until(8000);
  EXPECT_GE(ctrl_->refresh_engine().commands(), 1u);
  EXPECT_GE(ctrl_->refresh_engine().rows_refreshed(), 1u);

  // The third write to the line is now RESET-only instead of alpha.
  ctrl_->enqueue(tx(3, 0, 0, 3, 0, AccessType::kWrite, 10000));
  run_until(20000, 10000);
  ASSERT_EQ(stats_.demand_write_latency.count(), 3u);
  // Latencies: cold alpha 27+4+150 = 181; row-hit rewrite 4+40 = 44;
  // post-refresh write (row buffer closed by the refresh) 27+4+40 = 71.
  EXPECT_EQ(stats_.demand_write_latency.max(), 181u);
  EXPECT_EQ(stats_.demand_write_latency.min(), 44u);
  EXPECT_NEAR(stats_.demand_write_latency.mean(), (181.0 + 44.0 + 71.0) / 3,
              1e-9);
  EXPECT_EQ(arch_->counters().get("refresh.rows"), 1u);
}

TEST_F(RefreshTest, WithoutRefreshThirdWriteIsAlpha) {
  cfg_ = ControllerConfig{};
  cfg_.geom = small_geom();
  ArchConfig ac;
  ac.kind = ArchKind::kWomPcm;  // no refresh hooks
  arch_ = make_architecture(ac, cfg_.geom, cfg_.timing);
  ctrl_ = std::make_unique<MemoryController>(cfg_, *arch_, stats_);

  ctrl_->enqueue(tx(1, 0, 0, 3, 0, AccessType::kWrite, 0));
  ctrl_->enqueue(tx(2, 0, 0, 3, 0, AccessType::kWrite, 300));
  ctrl_->enqueue(tx(3, 0, 0, 3, 0, AccessType::kWrite, 10000));
  run_until(20000);
  // Cold alpha, fast rewrite, then alpha again at the limit.
  EXPECT_EQ(arch_->counters().get("writes.alpha"), 2u);
  EXPECT_EQ(arch_->counters().get("writes.fast"), 1u);
  EXPECT_EQ(ctrl_->refresh_engine().commands(), 0u);
}

TEST_F(RefreshTest, ThresholdSuppressesSparseRanks) {
  build(/*threshold=*/0.9);  // needs 90% of banks pending; we have 1 of 2
  ctrl_->enqueue(tx(1, 0, 0, 3, 0, AccessType::kWrite, 0));
  ctrl_->enqueue(tx(2, 0, 0, 3, 0, AccessType::kWrite, 300));
  run_until(20000);
  EXPECT_EQ(ctrl_->refresh_engine().commands(), 0u);
}

TEST_F(RefreshTest, ThresholdMetWhenAllBanksPending) {
  build(/*threshold=*/0.9);
  // Drive one row to the limit in BOTH banks of rank 0.
  for (unsigned bank = 0; bank < 2; ++bank) {
    ctrl_->enqueue(tx(1 + bank * 2, 0, bank, 3, 0, AccessType::kWrite,
                      bank * 400));
    ctrl_->enqueue(tx(2 + bank * 2, 0, bank, 3, 0, AccessType::kWrite,
                      1000 + bank * 400));
  }
  run_until(20000);
  EXPECT_GE(ctrl_->refresh_engine().commands(), 1u);
  EXPECT_GE(ctrl_->refresh_engine().rows_refreshed(), 2u);
}

TEST_F(RefreshTest, WritePausingLetsDemandPreempt) {
  build(0.0, /*pausing=*/true);
  ctrl_->enqueue(tx(1, 0, 0, 3, 0, AccessType::kWrite, 0));
  ctrl_->enqueue(tx(2, 0, 0, 3, 0, AccessType::kWrite, 300));
  // Refresh fires at 4000 and occupies bank (0,0) for 150 + 4 ns.
  Tick now = run_until(4000);
  ASSERT_GE(ctrl_->refresh_engine().commands(), 1u);
  // A read lands mid-refresh and preempts it at the pause penalty.
  ctrl_->enqueue(tx(3, 0, 0, 5, 0, AccessType::kRead, 4010));
  run_until(20000, now);
  ASSERT_EQ(stats_.demand_read_latency.count(), 1u);
  // pause penalty + activate + col read + burst = 5 + 27 + 13 + 4.
  EXPECT_EQ(stats_.demand_read_latency.mean(), 49.0);
  EXPECT_EQ(stats_.counters.get("ctrl.refresh_pauses"), 1u);
}

TEST_F(RefreshTest, WithoutPausingDemandWaitsForRefresh) {
  build(0.0, /*pausing=*/false);
  ctrl_->enqueue(tx(1, 0, 0, 3, 0, AccessType::kWrite, 0));
  ctrl_->enqueue(tx(2, 0, 0, 3, 0, AccessType::kWrite, 300));
  Tick now = run_until(4000);
  ASSERT_GE(ctrl_->refresh_engine().commands(), 1u);
  ctrl_->enqueue(tx(3, 0, 0, 5, 0, AccessType::kRead, 4010));
  run_until(20000, now);
  ASSERT_EQ(stats_.demand_read_latency.count(), 1u);
  // Refresh holds the bank until 4000 + 150 + 4 = 4154; then 44 ns service:
  // latency = 4154 + 44 - 4010.
  EXPECT_EQ(stats_.demand_read_latency.mean(), 188.0);
  EXPECT_EQ(stats_.counters.get("ctrl.refresh_pauses"), 0u);
}

TEST_F(RefreshTest, RefreshEngineInactiveWhenDisabled) {
  cfg_ = ControllerConfig{};
  cfg_.geom = small_geom();
  cfg_.refresh.enabled = false;
  ArchConfig ac;
  ac.kind = ArchKind::kRefreshWomPcm;
  arch_ = make_architecture(ac, cfg_.geom, cfg_.timing);
  ctrl_ = std::make_unique<MemoryController>(cfg_, *arch_, stats_);
  ctrl_->enqueue(tx(1, 0, 0, 3, 0, AccessType::kWrite, 0));
  ctrl_->enqueue(tx(2, 0, 0, 3, 0, AccessType::kWrite, 300));
  run_until(20000);
  EXPECT_EQ(ctrl_->refresh_engine().commands(), 0u);
}

TEST_F(RefreshTest, StaleRatEntriesAreSkipped) {
  build();
  // Drive the line to the limit, then alpha it with a demand write BEFORE
  // the refresh check: the RAT entry goes stale and must be skipped.
  ctrl_->enqueue(tx(1, 0, 0, 3, 0, AccessType::kWrite, 0));
  ctrl_->enqueue(tx(2, 0, 0, 3, 0, AccessType::kWrite, 300));
  ctrl_->enqueue(tx(3, 0, 0, 3, 0, AccessType::kWrite, 600));  // alpha
  run_until(20000);
  EXPECT_EQ(arch_->counters().get("refresh.rows"), 0u);
  EXPECT_EQ(arch_->counters().get("rat.stale_pop"), 1u);
}

}  // namespace
}  // namespace wompcm

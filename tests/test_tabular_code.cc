// Tests for the table-driven WOM-code, its validator, and the constructive
// marker/parity families.
#include <gtest/gtest.h>

#include "wom/inverted_code.h"
#include "wom/tabular_code.h"

namespace wompcm {
namespace {

std::vector<std::vector<BitVec>> rs_tables() {
  // The Rivest-Shamir tables expressed as a TabularCode.
  std::vector<std::vector<BitVec>> t(2);
  for (const char* p : {"000", "100", "010", "001"}) {
    t[0].push_back(BitVec::from_string(p));
  }
  for (const char* p : {"111", "011", "101", "110"}) {
    t[1].push_back(BitVec::from_string(p));
  }
  return t;
}

TEST(TabularCode, AcceptsRivestShamirTables) {
  TabularCode code("rs-as-table", 2, rs_tables());
  EXPECT_EQ(code.wits(), 3u);
  EXPECT_EQ(code.max_writes(), 2u);
  for (unsigned x = 0; x < 4; ++x) {
    const BitVec w1 = code.encode(x, 0, code.initial_state());
    EXPECT_EQ(code.decode(w1), x);
    for (unsigned y = 0; y < 4; ++y) {
      const BitVec w2 = code.encode(y, 1, w1);
      EXPECT_EQ(code.decode(w2), y);
      EXPECT_TRUE(w1.monotone_increasing_to(w2));
    }
  }
}

TEST(ValidateWomTable, RejectsNonMonotoneTransition) {
  auto t = rs_tables();
  t[1][0] = BitVec::from_string("000");  // second write cannot lower bits
  std::string why;
  EXPECT_FALSE(validate_wom_table(2, t, &why));
  EXPECT_NE(why.find("non-monotone"), std::string::npos);
}

TEST(ValidateWomTable, RejectsAmbiguousDecode) {
  auto t = rs_tables();
  t[1][0] = BitVec::from_string("011");  // already means value 1
  std::string why;
  EXPECT_FALSE(validate_wom_table(2, t, &why));
}

TEST(ValidateWomTable, RejectsDuplicateInGeneration) {
  auto t = rs_tables();
  t[0][3] = t[0][2];
  std::string why;
  EXPECT_FALSE(validate_wom_table(2, t, &why));
}

TEST(ValidateWomTable, RejectsInconsistentWitCounts) {
  auto t = rs_tables();
  t[1][2] = BitVec::from_string("1010");
  std::string why;
  EXPECT_FALSE(validate_wom_table(2, t, &why));
}

TEST(ValidateWomTable, RejectsEmpty) {
  std::string why;
  EXPECT_FALSE(validate_wom_table(2, {}, &why));
}

TEST(TabularCode, ConstructorThrowsOnBadTables) {
  auto t = rs_tables();
  t[1][0] = BitVec::from_string("000");
  EXPECT_THROW(TabularCode("bad", 2, t), std::invalid_argument);
}

// Exhaustive property over a code: every write sequence of length
// max_writes decodes correctly and never lowers a bit.
void check_code_exhaustive(const WomCode& code) {
  const unsigned v = code.values();
  const unsigned t = code.max_writes();
  // Enumerate value sequences with a mixed-radix counter (cap the work).
  std::uint64_t total = 1;
  for (unsigned g = 0; g < t && total < 5000; ++g) total *= v;
  for (std::uint64_t seq = 0; seq < total; ++seq) {
    BitVec w = code.initial_state();
    std::uint64_t rest = seq;
    for (unsigned g = 0; g < t; ++g) {
      const unsigned value = static_cast<unsigned>(rest % v);
      rest /= v;
      const BitVec next = code.encode(value, g, w);
      ASSERT_TRUE(code.raises_bits() ? w.monotone_increasing_to(next)
                                     : w.monotone_decreasing_to(next))
          << code.name() << " seq " << seq << " gen " << g;
      ASSERT_EQ(code.decode(next), value)
          << code.name() << " seq " << seq << " gen " << g;
      w = next;
    }
  }
}

class MarkerCodeTest
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>> {};

TEST_P(MarkerCodeTest, ExhaustiveWriteSequences) {
  const auto [k, t] = GetParam();
  const WomCodePtr code = make_marker_code(k, t);
  EXPECT_EQ(code->data_bits(), k);
  EXPECT_EQ(code->max_writes(), t);
  EXPECT_EQ(code->wits(), t * (k + 1));
  check_code_exhaustive(*code);
}

INSTANTIATE_TEST_SUITE_P(Params, MarkerCodeTest,
                         ::testing::Values(std::tuple{1u, 1u},
                                           std::tuple{1u, 4u},
                                           std::tuple{2u, 2u},
                                           std::tuple{2u, 3u},
                                           std::tuple{3u, 2u}));

class ParityCodeTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(ParityCodeTest, ExhaustiveWriteSequences) {
  const unsigned t = GetParam();
  const WomCodePtr code = make_parity_code(t);
  EXPECT_EQ(code->data_bits(), 1u);
  EXPECT_EQ(code->max_writes(), t);
  EXPECT_EQ(code->wits(), 2 * t - 1);
  check_code_exhaustive(*code);
}

INSTANTIATE_TEST_SUITE_P(Writes, ParityCodeTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u));

TEST(InvertedTabular, MarkerCodeInvertsCleanly) {
  const WomCodePtr inv = invert(make_marker_code(2, 3));
  EXPECT_FALSE(inv->raises_bits());
  check_code_exhaustive(*inv);
}

}  // namespace
}  // namespace wompcm

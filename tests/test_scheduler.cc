#include <gtest/gtest.h>

#include "controller/scheduler.h"

namespace wompcm {
namespace {

Transaction make_tx(std::uint64_t id, unsigned row, Tick arrival) {
  Transaction tx;
  tx.id = id;
  tx.dec.row = row;
  tx.arrival = arrival;
  return tx;
}

TEST(SchedulerConfig, DefaultsValid) {
  SchedulerConfig cfg;
  EXPECT_TRUE(cfg.valid());
  EXPECT_EQ(cfg.policy, SchedulingPolicy::kFcfs);
}

TEST(SchedulerConfig, RejectsBadWatermarks) {
  SchedulerConfig cfg;
  cfg.write_q_low = cfg.write_q_high;
  EXPECT_FALSE(cfg.valid());
  cfg = SchedulerConfig{};
  cfg.write_q_high = 0;
  EXPECT_FALSE(cfg.valid());
  cfg = SchedulerConfig{};
  cfg.scan_limit = 0;
  EXPECT_FALSE(cfg.valid());
}

TEST(PickTransaction, OldestIssuableWithoutRowHits) {
  TransactionQueue q;
  q.push(make_tx(1, 0, 0));
  q.push(make_tx(2, 0, 1));
  q.push(make_tx(3, 0, 2));
  SchedulerConfig cfg;
  cfg.row_hit_first = false;
  const auto pick = pick_transaction(
      q, cfg, [](const Transaction& tx) { return tx.id != 1; },
      [](const Transaction&) { return false; });
  EXPECT_EQ(pick, 1u);  // id 2: oldest issuable
}

TEST(PickTransaction, PrefersRowHit) {
  TransactionQueue q;
  q.push(make_tx(1, 5, 0));
  q.push(make_tx(2, 9, 1));  // the row hit, but younger
  SchedulerConfig cfg;
  const auto pick = pick_transaction(
      q, cfg, [](const Transaction&) { return true; },
      [](const Transaction& tx) { return tx.dec.row == 9; });
  EXPECT_EQ(pick, 1u);
}

TEST(PickTransaction, FallsBackToOldestWhenNoHit) {
  TransactionQueue q;
  q.push(make_tx(1, 5, 0));
  q.push(make_tx(2, 9, 1));
  SchedulerConfig cfg;
  const auto pick = pick_transaction(
      q, cfg, [](const Transaction&) { return true; },
      [](const Transaction&) { return false; });
  EXPECT_EQ(pick, 0u);
}

TEST(PickTransaction, NothingIssuable) {
  TransactionQueue q;
  q.push(make_tx(1, 0, 0));
  SchedulerConfig cfg;
  const auto pick = pick_transaction(
      q, cfg, [](const Transaction&) { return false; },
      [](const Transaction&) { return true; });
  EXPECT_EQ(pick, kNoPick);
}

TEST(PickTransaction, ScanLimitBoundsTheWindow) {
  TransactionQueue q;
  for (std::uint64_t i = 0; i < 10; ++i) q.push(make_tx(i, 0, i));
  SchedulerConfig cfg;
  cfg.scan_limit = 4;
  // Only entries beyond the window are issuable: the pick must miss them.
  const auto pick = pick_transaction(
      q, cfg, [](const Transaction& tx) { return tx.id >= 4; },
      [](const Transaction&) { return false; });
  EXPECT_EQ(pick, kNoPick);
}

TEST(WriteDrainPolicy, HysteresisBetweenWatermarks) {
  SchedulerConfig cfg;
  cfg.write_q_high = 10;
  cfg.write_q_low = 4;
  WriteDrainPolicy drain(cfg);
  EXPECT_FALSE(drain.update(5, 3));   // below high, not draining
  EXPECT_TRUE(drain.update(10, 3));   // reached high: drain
  EXPECT_TRUE(drain.update(7, 3));    // stays draining between marks
  EXPECT_FALSE(drain.update(4, 3));   // fell to low: stop
  EXPECT_FALSE(drain.update(7, 3));   // and stays off between marks
}

TEST(WriteDrainPolicy, EmptyReadQueueServesWrites) {
  SchedulerConfig cfg;
  WriteDrainPolicy drain(cfg);
  EXPECT_TRUE(drain.update(1, 0));
  EXPECT_FALSE(drain.draining());  // opportunistic, not drain mode
}

}  // namespace
}  // namespace wompcm

// Tests of the unified metrics registry (stats/metrics.h).
#include <gtest/gtest.h>

#include "stats/metrics.h"

namespace wompcm {
namespace {

TEST(Metrics, MissingNamesReadAsZero) {
  MetricsRegistry reg;
  EXPECT_FALSE(reg.has("nope"));
  EXPECT_EQ(reg.counter("nope"), 0u);
  EXPECT_DOUBLE_EQ(reg.gauge("nope"), 0.0);
  EXPECT_EQ(reg.size(), 0u);
}

TEST(Metrics, SetCounterOverwrites) {
  MetricsRegistry reg;
  reg.set_counter("refresh.commands", 10);
  reg.set_counter("refresh.commands", 3);
  EXPECT_EQ(reg.counter("refresh.commands"), 3u);
  EXPECT_TRUE(reg.has("refresh.commands"));
  EXPECT_EQ(reg.size(), 1u);
}

TEST(Metrics, AddCounterAccumulates) {
  MetricsRegistry reg;
  reg.add_counter("bus.busy_ns", 4);
  reg.add_counter("bus.busy_ns", 8);
  EXPECT_EQ(reg.counter("bus.busy_ns"), 12u);
}

TEST(Metrics, GaugesHoldDoubles) {
  MetricsRegistry reg;
  reg.set_gauge("energy.write_pj", 1.5);
  reg.set_gauge("energy.write_pj", 2.25);
  EXPECT_DOUBLE_EQ(reg.gauge("energy.write_pj"), 2.25);
}

TEST(Metrics, ZeroValuedMetricIsStillPresent) {
  MetricsRegistry reg;
  reg.set_counter("sim.deferred_injections", 0);
  EXPECT_TRUE(reg.has("sim.deferred_injections"));
  EXPECT_EQ(reg.counter("sim.deferred_injections"), 0u);
}

TEST(Metrics, AllIsNameSorted) {
  MetricsRegistry reg;
  reg.set_counter("zeta", 1);
  reg.set_gauge("alpha", 2.0);
  reg.set_counter("mid", 3);
  std::vector<std::string> names;
  for (const auto& [name, m] : reg.all()) names.push_back(name);
  EXPECT_EQ(names, (std::vector<std::string>{"alpha", "mid", "zeta"}));
}

TEST(Metrics, KindIsRecorded) {
  MetricsRegistry reg;
  reg.set_counter("c", 7);
  reg.set_gauge("g", 7.0);
  EXPECT_EQ(reg.all().at("c").kind, MetricsRegistry::Kind::kCounter);
  EXPECT_EQ(reg.all().at("g").kind, MetricsRegistry::Kind::kGauge);
}

TEST(Metrics, ChannelMetricNaming) {
  EXPECT_EQ(channel_metric(0, "bus_busy_ns"), "ch0.bus_busy_ns");
  EXPECT_EQ(channel_metric(12, "max_queue_depth"), "ch12.max_queue_depth");
}

}  // namespace
}  // namespace wompcm

// Tests of the WOM-code cached PCM composition (Section 4): tag/valid
// protocol, victim write-backs, per-line validity, parallel read probing,
// and the cache's own refresh.
#include <gtest/gtest.h>

#include "arch/arch.h"
#include "arch/composed.h"

namespace wompcm {
namespace {

MemoryGeometry small_geom() {
  MemoryGeometry g;
  g.channels = 1;
  g.ranks = 2;
  g.banks_per_rank = 4;
  g.rows_per_bank = 32;
  g.cols_per_row = 64;  // 8 lines/row
  return g;
}

ArchConfig wcpcm_cfg(unsigned rat_entries = 5,
                     const std::string& code = "rs23-inv") {
  ArchConfig cfg;
  cfg.kind = ArchKind::kWcpcm;
  cfg.rat_entries = rat_entries;
  cfg.code = code;
  return cfg;
}

class WcpcmTest : public ::testing::Test {
 protected:
  WcpcmTest()
      : geom_(small_geom()),
        arch_(geom_, PcmTiming{}, wcpcm_cfg()),
        mapper_(geom_) {}

  unsigned cache_resource(unsigned rank) const {
    return mapper_.num_flat_banks() + rank;
  }

  MemoryGeometry geom_;
  ComposedArchitecture arch_;
  AddressMapper mapper_;
};

TEST_F(WcpcmTest, KeepsTheLegacyName) {
  EXPECT_EQ(arch_.name(), "wcpcm[rs23-inv]");
}

TEST_F(WcpcmTest, ResourcesIncludePerRankCaches) {
  EXPECT_EQ(arch_.num_resources(), mapper_.num_flat_banks() + geom_.ranks);
}

TEST_F(WcpcmTest, OverheadMatchesPaperFormula) {
  // (1 + 0.5) / banks_per_rank; with 32 banks this is the paper's 4.7%.
  EXPECT_DOUBLE_EQ(arch_.capacity_overhead(), 1.5 / 4.0);
  MemoryGeometry g32 = geom_;
  g32.banks_per_rank = 32;
  ComposedArchitecture arch32(g32, PcmTiming{}, wcpcm_cfg());
  EXPECT_NEAR(arch32.capacity_overhead(), 0.047, 0.001);
}

TEST_F(WcpcmTest, DemandWritesRouteToCache) {
  DecodedAddr d{0, 1, 2, 3, 0};
  EXPECT_EQ(arch_.route(d, AccessType::kWrite, false), cache_resource(1));
  // Victim (internal) writes go to main memory.
  EXPECT_EQ(arch_.route(d, AccessType::kWrite, true), mapper_.flat_bank(d));
}

TEST_F(WcpcmTest, FirstWriteIsInvalidEntryHit) {
  DecodedAddr d{0, 0, 2, 3, 0};
  const IssuePlan p = arch_.plan(d, AccessType::kWrite, false, 0);
  EXPECT_EQ(p.resource, cache_resource(0));
  EXPECT_TRUE(p.spawned.empty());
  // The cache array is formatted at boot, so the install is RESET-only.
  EXPECT_EQ(p.write_class, WriteClass::kResetOnly);
  EXPECT_EQ(arch_.counters().get("wcpcm.write_hits"), 1u);
}

TEST_F(WcpcmTest, SameBankRowWritesKeepHitting) {
  DecodedAddr d{0, 0, 2, 3, 0};
  arch_.plan(d, AccessType::kWrite, false, 0);
  d.col = 5;
  arch_.plan(d, AccessType::kWrite, false, 0);
  EXPECT_EQ(arch_.counters().get("wcpcm.write_hits"), 2u);
  EXPECT_EQ(arch_.counters().get("wcpcm.write_misses"), 0u);
  EXPECT_DOUBLE_EQ(arch_.write_hit_rate(), 1.0);
}

TEST_F(WcpcmTest, ConflictingBankEvictsVictim) {
  DecodedAddr a{0, 0, 2, 3, 0};
  arch_.plan(a, AccessType::kWrite, false, 0);
  DecodedAddr b{0, 0, 1, 3, 0};  // same rank+row, different bank tag
  const IssuePlan p = arch_.plan(b, AccessType::kWrite, false, 0);
  EXPECT_GT(p.pre_ns, 0u);  // victim readout
  ASSERT_EQ(p.spawned.size(), 1u);
  EXPECT_EQ(p.spawned[0].dec.bank, 2u);  // the evicted bank's row
  EXPECT_EQ(p.spawned[0].dec.row, 3u);
  EXPECT_EQ(arch_.counters().get("wcpcm.victims"), 1u);
  EXPECT_EQ(arch_.counters().get("wcpcm.write_misses"), 1u);
}

TEST_F(WcpcmTest, ReadHitsOnlyWrittenLines) {
  DecodedAddr w{0, 0, 2, 3, 0};
  arch_.plan(w, AccessType::kWrite, false, 0);
  // Same line: cache hit, served by the cache array.
  EXPECT_EQ(arch_.route(w, AccessType::kRead, false), cache_resource(0));
  const IssuePlan hit = arch_.plan(w, AccessType::kRead, false, 0);
  EXPECT_EQ(hit.resource, cache_resource(0));
  // Another line of the same row was never written: main memory is current.
  DecodedAddr other = w;
  other.col = 4;
  EXPECT_EQ(arch_.route(other, AccessType::kRead, false),
            mapper_.flat_bank(other));
  // Different bank, same row index: tag mismatch, main memory.
  DecodedAddr miss = w;
  miss.bank = 1;
  EXPECT_EQ(arch_.route(miss, AccessType::kRead, false),
            mapper_.flat_bank(miss));
  arch_.plan(other, AccessType::kRead, false, 0);
  arch_.plan(miss, AccessType::kRead, false, 0);
  EXPECT_EQ(arch_.counters().get("wcpcm.read_hits"), 1u);
  EXPECT_EQ(arch_.counters().get("wcpcm.read_misses"), 2u);
}

TEST_F(WcpcmTest, InstallAfterEvictionResetsLineValidity) {
  DecodedAddr a{0, 0, 2, 3, 0};
  DecodedAddr a2{0, 0, 2, 3, 5};
  arch_.plan(a, AccessType::kWrite, false, 0);
  arch_.plan(a2, AccessType::kWrite, false, 0);
  DecodedAddr b{0, 0, 1, 3, 0};
  arch_.plan(b, AccessType::kWrite, false, 0);  // evicts bank 2's row
  // Bank 1's line 0 is now cached; bank 2's lines are not.
  EXPECT_EQ(arch_.route(b, AccessType::kRead, false), cache_resource(0));
  EXPECT_EQ(arch_.route(a, AccessType::kRead, false), mapper_.flat_bank(a));
  // Bank 1's line 5 was never written since install either.
  DecodedAddr b5 = b;
  b5.col = 5;
  EXPECT_EQ(arch_.route(b5, AccessType::kRead, false),
            mapper_.flat_bank(b5));
}

TEST_F(WcpcmTest, ReadsPayTagCheckBothWays) {
  const PcmTiming t;
  DecodedAddr w{0, 0, 2, 3, 0};
  arch_.plan(w, AccessType::kWrite, false, 0);
  const IssuePlan hit = arch_.plan(w, AccessType::kRead, false, 0);
  EXPECT_EQ(hit.pre_ns, t.tag_check_ns);
  DecodedAddr miss = w;
  miss.bank = 1;
  const IssuePlan m = arch_.plan(miss, AccessType::kRead, false, 0);
  EXPECT_EQ(m.pre_ns, t.tag_check_ns);
}

TEST_F(WcpcmTest, VictimWritesAreConventional) {
  DecodedAddr d{0, 0, 2, 3, 0};
  const IssuePlan p = arch_.plan(d, AccessType::kWrite, true, 0);
  EXPECT_EQ(p.write_class, WriteClass::kAlpha);
  EXPECT_EQ(p.program_ns, 150u);
  EXPECT_EQ(p.resource, mapper_.flat_bank(d));
  EXPECT_EQ(arch_.counters().get("writes.victim"), 1u);
}

TEST_F(WcpcmTest, CacheRefreshCycle) {
  // Write the same cache line until its codeword hits the rewrite limit,
  // then refresh the cache array and verify the next write is fast again.
  DecodedAddr d{0, 0, 2, 3, 0};
  arch_.plan(d, AccessType::kWrite, false, 0);  // gen 1 (erased start)
  arch_.plan(d, AccessType::kWrite, false, 0);  // gen 2 == limit
  EXPECT_DOUBLE_EQ(arch_.refresh_pending_fraction(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(arch_.refresh_pending_fraction(0, 1), 0.0);
  const auto work = arch_.perform_refresh(0, 0, [](unsigned) { return true; });
  EXPECT_EQ(work.rows, 1u);
  ASSERT_EQ(work.resources.size(), 1u);
  EXPECT_EQ(work.resources[0], cache_resource(0));
  const IssuePlan p = arch_.plan(d, AccessType::kWrite, false, 0);
  EXPECT_EQ(p.write_class, WriteClass::kResetOnly);
}

TEST_F(WcpcmTest, CacheAlphaWithoutRefresh) {
  DecodedAddr d{0, 0, 2, 3, 0};
  arch_.plan(d, AccessType::kWrite, false, 0);
  arch_.plan(d, AccessType::kWrite, false, 0);
  const IssuePlan p = arch_.plan(d, AccessType::kWrite, false, 0);
  EXPECT_EQ(p.write_class, WriteClass::kAlpha);
  EXPECT_EQ(p.program_ns, 150u);
}

TEST_F(WcpcmTest, RefreshResourceIsTheCacheArrayOnly) {
  const auto res = arch_.refresh_resources(0, 1);
  ASSERT_EQ(res.size(), 1u);
  EXPECT_EQ(res[0], cache_resource(1));
}

TEST_F(WcpcmTest, RejectsBadCode) {
  EXPECT_THROW(
      ComposedArchitecture(geom_, PcmTiming{}, wcpcm_cfg(5, "rs23")),
      std::invalid_argument);
  EXPECT_THROW(
      ComposedArchitecture(geom_, PcmTiming{}, wcpcm_cfg(5, "no-such-code")),
      std::invalid_argument);
}

}  // namespace
}  // namespace wompcm

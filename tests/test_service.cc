// SimService (sim/service.h): session lifecycle edges, back-pressure
// partial-accept, chunking invariance, and the headline determinism
// contract — K concurrent sessions produce the bit-identical result of a
// batch run over the pre-merged trace, across scan modes, worker counts,
// and fault injection.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <iterator>
#include <memory>
#include <stdexcept>
#include <string>
#include <tuple>
#include <vector>

#include "sim/experiment.h"
#include "sim/service.h"
#include "sim/simulator.h"
#include "trace/mix.h"
#include "trace/profiles.h"
#include "trace/synthetic.h"
#include "trace/trace.h"

namespace wompcm {
namespace {

SimConfig small_config(unsigned channels = 2) {
  SimConfig cfg;
  cfg.geom.channels = channels;
  cfg.geom.ranks = 2;
  cfg.geom.banks_per_rank = 4;
  cfg.geom.rows_per_bank = 128;
  cfg.geom.cols_per_row = 128;
  cfg.warmup_accesses = 0;
  return cfg;
}

// A short hand-built stream with same-instant bursts (gap 0) and idle
// stretches — the shapes that stress the sealed-instant merge.
std::vector<TraceRecord> burst_records(std::size_t n, std::uint64_t seed) {
  std::vector<TraceRecord> out;
  out.reserve(n);
  std::uint64_t x = seed * 2654435761u + 1;
  for (std::size_t i = 0; i < n; ++i) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    TraceRecord r;
    r.gap = (x >> 33) % 4 == 0 ? 0 : (x >> 40) % 50;
    r.type = (x >> 13) % 3 == 0 ? AccessType::kWrite : AccessType::kRead;
    r.addr = (x >> 7) % (1u << 22);
    out.push_back(r);
  }
  return out;
}

// Every deterministic field of two results must be identical; phase
// counters are wall-clock and excluded by design.
void expect_identical(const SimResult& a, const SimResult& b) {
  EXPECT_EQ(a.arch_name, b.arch_name);
  EXPECT_EQ(a.end_time, b.end_time);
  EXPECT_EQ(a.injected_reads, b.injected_reads);
  EXPECT_EQ(a.injected_writes, b.injected_writes);
  EXPECT_EQ(a.deferred_injections, b.deferred_injections);
  EXPECT_EQ(a.refresh_commands, b.refresh_commands);
  EXPECT_EQ(a.refresh_rows, b.refresh_rows);
  EXPECT_EQ(a.stats.counters.all(), b.stats.counters.all());
  EXPECT_EQ(a.stats.demand_read_latency.count(),
            b.stats.demand_read_latency.count());
  EXPECT_EQ(a.stats.demand_read_latency.sum(),
            b.stats.demand_read_latency.sum());
  EXPECT_EQ(a.stats.demand_read_latency.max(),
            b.stats.demand_read_latency.max());
  EXPECT_EQ(a.stats.demand_write_latency.count(),
            b.stats.demand_write_latency.count());
  EXPECT_EQ(a.stats.demand_write_latency.sum(),
            b.stats.demand_write_latency.sum());
  EXPECT_EQ(a.stats.demand_write_latency.max(),
            b.stats.demand_write_latency.max());
  EXPECT_EQ(a.fault_injected, b.fault_injected);
  EXPECT_EQ(a.fault_retries, b.fault_retries);
  EXPECT_EQ(a.fault_demoted_writes, b.fault_demoted_writes);
  EXPECT_EQ(a.fault_remapped_rows, b.fault_remapped_rows);
  EXPECT_EQ(a.fault_dead_rows, b.fault_dead_rows);
  EXPECT_DOUBLE_EQ(a.energy_write_pj, b.energy_write_pj);
  EXPECT_DOUBLE_EQ(a.energy_read_pj, b.energy_read_pj);
  EXPECT_DOUBLE_EQ(a.max_line_wear, b.max_line_wear);
  ASSERT_EQ(a.banks.size(), b.banks.size());
  for (std::size_t i = 0; i < a.banks.size(); ++i) {
    EXPECT_EQ(a.banks[i].busy_time, b.banks[i].busy_time);
    EXPECT_EQ(a.banks[i].ops, b.banks[i].ops);
    EXPECT_EQ(a.banks[i].row_hits, b.banks[i].row_hits);
  }
}

// The service registry must equal the batch registry once its additive
// per-stream slice ("stream<N>.*") is stripped.
void expect_registry_identical_modulo_streams(const MetricsRegistry& batch,
                                              const MetricsRegistry& service) {
  auto svc = service.all();  // copy: name-sorted map
  for (auto it = svc.begin(); it != svc.end();) {
    it = it->first.rfind("stream", 0) == 0 ? svc.erase(it) : std::next(it);
  }
  const auto& base = batch.all();
  ASSERT_EQ(base.size(), svc.size());
  auto bi = base.begin();
  for (auto si = svc.begin(); si != svc.end(); ++si, ++bi) {
    EXPECT_EQ(bi->first, si->first);
    EXPECT_EQ(bi->second.kind, si->second.kind) << bi->first;
    EXPECT_EQ(bi->second.count, si->second.count) << bi->first;
    EXPECT_DOUBLE_EQ(bi->second.value, si->second.value) << bi->first;
  }
}

// Feeds one record vector through a single session in `chunk`-sized
// submits, resubmitting back-pressured tails, and drains.
SimResult drive_one(const SimConfig& cfg, const std::vector<TraceRecord>& recs,
                    std::size_t chunk, std::size_t capacity = 4096) {
  SimService svc(cfg);
  StreamSpec spec;
  spec.capacity = capacity;
  const SessionId id = svc.open_session(spec);
  std::size_t at = 0;
  while (at < recs.size()) {
    const std::size_t n = std::min(chunk, recs.size() - at);
    at += svc.submit(id, recs.data() + at, n).accepted;
    svc.step();
  }
  svc.close_session(id);
  return svc.drain();
}

TEST(ServiceLifecycle, SubmitAfterCloseThrows) {
  SimService svc(small_config());
  const SessionId id = svc.open_session();
  const auto recs = burst_records(4, 1);
  svc.close_session(id);
  EXPECT_THROW(svc.submit(id, recs.data(), recs.size()),
               std::invalid_argument);
}

TEST(ServiceLifecycle, CloseTwiceThrows) {
  SimService svc(small_config());
  const SessionId id = svc.open_session();
  svc.close_session(id);
  EXPECT_THROW(svc.close_session(id), std::invalid_argument);
}

TEST(ServiceLifecycle, UnknownSessionThrows) {
  SimService svc(small_config());
  const auto recs = burst_records(1, 1);
  EXPECT_THROW(svc.submit(99, recs.data(), 1), std::invalid_argument);
  EXPECT_THROW(svc.poll(99), std::invalid_argument);
  EXPECT_THROW(svc.close_session(99), std::invalid_argument);
}

TEST(ServiceLifecycle, ZeroRecordSubmitIsANoOp) {
  SimService svc(small_config());
  const SessionId id = svc.open_session();
  EXPECT_EQ(svc.submit(id, nullptr, 0).accepted, 0u);
  const StreamStats s = svc.poll(id);
  EXPECT_EQ(s.submitted, 0u);
  EXPECT_EQ(s.rejected, 0u);
  svc.close_session(id);
  const SimResult r = svc.drain();
  EXPECT_EQ(r.injected_reads + r.injected_writes, 0u);
  EXPECT_EQ(r.end_time, 0u);
}

TEST(ServiceLifecycle, DrainWithOpenSessionThrows) {
  SimService svc(small_config());
  svc.open_session();
  EXPECT_THROW(svc.drain(), std::logic_error);
}

TEST(ServiceLifecycle, FinishedServiceRejectsEverything) {
  SimService svc(small_config());
  const SessionId id = svc.open_session();
  svc.close_session(id);
  (void)svc.drain();
  EXPECT_THROW(svc.open_session(), std::logic_error);
  EXPECT_THROW(svc.step(), std::logic_error);
  EXPECT_THROW(svc.drain(), std::logic_error);
}

TEST(ServiceBackPressure, PartialAcceptThenResubmitDeliversAll) {
  const auto recs = burst_records(64, 3);
  SimService svc(small_config());
  StreamSpec spec;
  spec.capacity = 8;  // force partial accepts
  const SessionId id = svc.open_session(spec);

  const Accepted first = svc.submit(id, recs.data(), recs.size());
  EXPECT_EQ(first.accepted, 8u);  // prefix bounded by capacity, no drops
  EXPECT_EQ(svc.poll(id).rejected, recs.size() - 8u);

  std::size_t at = first.accepted;
  while (at < recs.size()) {
    svc.step();
    const std::size_t got =
        svc.submit(id, recs.data() + at, recs.size() - at).accepted;
    at += got;
  }
  svc.close_session(id);
  const SimResult r = svc.drain();
  EXPECT_EQ(r.injected_reads + r.injected_writes, recs.size());

  // The tight ring changes when records reach the service, never what the
  // simulation computes: a roomy one-shot feed is bit-identical.
  expect_identical(r, drive_one(small_config(), recs, recs.size()));
}

TEST(ServiceDeterminism, ChunkingInvariance) {
  // The same stream fed record by record, in uneven chunks, or all at
  // once reconstructs the same instants — including gap-0 bursts split
  // across submit boundaries.
  const auto recs = burst_records(200, 5);
  const SimConfig cfg = small_config();
  const SimResult whole = drive_one(cfg, recs, recs.size());
  expect_identical(whole, drive_one(cfg, recs, 1));
  expect_identical(whole, drive_one(cfg, recs, 7));
  expect_identical(whole, drive_one(cfg, recs, 33));
}

TEST(ServiceDeterminism, MatchesBatchRunOverSameRecords) {
  const auto recs = burst_records(300, 9);
  const SimConfig cfg = small_config();
  VectorTraceSource src(recs);
  const SimResult batch = Simulator(cfg).run(src);
  expect_identical(batch, drive_one(cfg, recs, 17));
}

TEST(ServiceSessions, InterleavedOpenCloseMidRun) {
  const SimConfig cfg = small_config();
  SimService svc(cfg);
  const auto recs_a = burst_records(120, 11);
  const auto recs_b = burst_records(80, 13);

  const SessionId a = svc.open_session({});
  std::size_t at_a = 0;
  while (at_a < 60) {
    at_a += svc.submit(a, recs_a.data() + at_a, 60 - at_a).accepted;
    svc.step();
  }
  const Tick mid = svc.now();

  // A session opened mid-run joins at the current instant: its clock can
  // never gate instants the merge already sealed.
  const SessionId b = svc.open_session({});
  EXPECT_GE(svc.poll(b).clock, mid);
  EXPECT_EQ(svc.open_sessions(), 2u);

  std::size_t at_b = 0;
  while (at_a < recs_a.size() || at_b < recs_b.size()) {
    if (at_a < recs_a.size()) {
      at_a += svc.submit(a, recs_a.data() + at_a, recs_a.size() - at_a)
                  .accepted;
    }
    if (at_b < recs_b.size()) {
      at_b += svc.submit(b, recs_b.data() + at_b, recs_b.size() - at_b)
                  .accepted;
    }
    svc.step();
  }
  // B alone gates the merge now: its buffer is drained and it is still
  // open, so the service must stop at B's arrival frontier and wait.
  svc.close_session(a);
  const StepResult gated = svc.step();
  EXPECT_TRUE(gated.starved);
  // The last close un-gates everything; the next step runs to quiescence.
  svc.close_session(b);
  const StepResult after = svc.step();
  EXPECT_FALSE(after.starved);

  const SimResult r = svc.drain();
  EXPECT_EQ(r.injected_reads + r.injected_writes,
            recs_a.size() + recs_b.size());
  EXPECT_TRUE(r.metrics.has("stream0.submitted"));
  EXPECT_EQ(r.metrics.counter("stream0.submitted"), recs_a.size());
  EXPECT_EQ(r.metrics.counter("stream1.submitted"), recs_b.size());
}

TEST(ServiceSessions, PollReportsPerStreamBooks) {
  const SimConfig cfg = small_config();
  SimService svc(cfg);
  const SessionId id = svc.open_session({.name = "core0"});
  const auto recs = burst_records(150, 17);
  std::size_t at = 0;
  while (at < recs.size()) {
    at += svc.submit(id, recs.data() + at, recs.size() - at).accepted;
    svc.step();
  }
  svc.close_session(id);

  const StreamStats s = svc.poll(id);
  EXPECT_EQ(s.name, "core0");
  EXPECT_FALSE(s.open);
  EXPECT_EQ(s.submitted, recs.size());
  EXPECT_EQ(s.injected_reads + s.injected_writes + s.buffered, recs.size());
  // Per-access tagging is on by default: demand completions are sliced.
  EXPECT_GT(s.completed_reads + s.completed_writes, 0u);
  EXPECT_GT(s.avg_write_ns, 0.0);

  const SimResult r = svc.drain();
  EXPECT_EQ(r.metrics.counter("stream0.reads"),
            r.stats.demand_read_latency.count());
  EXPECT_EQ(r.metrics.counter("stream0.writes"),
            r.stats.demand_write_latency.count());
}

// The headline contract: K live sessions, fed incrementally, produce the
// bit-identical result of one batch run over the pre-merged mix — for
// serial and sharded backends, both scan modes, faults on and off.
class ServiceEquivalence
    : public testing::TestWithParam<std::tuple<ScanMode, unsigned, bool>> {};

TEST_P(ServiceEquivalence, KSessionsMatchPreMergedBatch) {
  const auto [scan, jobs, faults] = GetParam();
  constexpr unsigned kStreams = 4;
  constexpr std::uint64_t kPerStream = 1200;
  constexpr std::uint64_t kSeed = 42;

  SimConfig cfg = small_config(/*channels=*/4);
  cfg.arch.kind = ArchKind::kRefreshWomPcm;
  cfg.sched.scan_mode = scan;
  cfg.warmup_accesses = 200;  // warmup ids must agree in merge order too
  if (faults) {
    cfg.fault.enabled = true;
    cfg.fault.seed = 7;
    cfg.fault.initial_wear = 0.9;
  }
  const std::vector<WorkloadProfile> profiles = benchmark_profiles();
  auto stream_source = [&](unsigned s) {
    return std::make_unique<SyntheticTraceSource>(
        profiles[s % profiles.size()], cfg.geom,
        kSeed ^ (0x9e3779b97f4a7c15ULL * (s + 1)), kPerStream);
  };

  // Batch reference: the pre-merged mix through the serial engine.
  std::vector<std::unique_ptr<TraceSource>> parts;
  for (unsigned s = 0; s < kStreams; ++s) parts.push_back(stream_source(s));
  MixTraceSource mix(std::move(parts));
  const SimResult batch = Simulator(cfg).run(mix);

  // Service run: one live session per stream, chunked submits under
  // back-pressure, arrivals merged by the service itself.
  ServiceOptions opts;
  opts.jobs = jobs;
  SimService svc(cfg, opts);
  struct Feed {
    std::unique_ptr<TraceSource> src;
    SessionId id = 0;
    std::vector<TraceRecord> buf;
    std::size_t off = 0;
    bool eof = false;
    bool closed = false;
  };
  constexpr std::size_t kChunk = 96;
  std::vector<Feed> feeds(kStreams);
  for (unsigned s = 0; s < kStreams; ++s) {
    feeds[s].src = stream_source(s);
    StreamSpec spec;
    spec.name = "core" + std::to_string(s);
    spec.capacity = 2 * kChunk;
    feeds[s].id = svc.open_session(spec);
  }
  unsigned live = kStreams;
  while (live > 0) {
    for (Feed& fd : feeds) {
      if (fd.closed) continue;
      if (fd.off == fd.buf.size() && !fd.eof) {
        fd.buf.resize(kChunk);
        const std::size_t n = fd.src->next_block(fd.buf.data(), kChunk);
        fd.buf.resize(n);
        fd.off = 0;
        fd.eof = n < kChunk;
      }
      if (fd.off < fd.buf.size()) {
        fd.off +=
            svc.submit(fd.id, fd.buf.data() + fd.off, fd.buf.size() - fd.off)
                .accepted;
      }
      if (fd.eof && fd.off == fd.buf.size()) {
        svc.close_session(fd.id);
        fd.closed = true;
        --live;
      }
    }
    svc.step();
  }
  const SimResult service = svc.drain();

  expect_identical(batch, service);
  expect_registry_identical_modulo_streams(batch.metrics, service.metrics);

  // The per-stream slice is complete: session counts sum to the totals.
  std::uint64_t submitted = 0;
  for (unsigned s = 0; s < kStreams; ++s) {
    submitted += service.metrics.counter(stream_metric(s, "submitted"));
  }
  EXPECT_EQ(submitted, static_cast<std::uint64_t>(kStreams) * kPerStream);
}

INSTANTIATE_TEST_SUITE_P(
    ScanJobsFaults, ServiceEquivalence,
    testing::Combine(testing::Values(ScanMode::kIndexed, ScanMode::kReference),
                     testing::Values(1u, 2u, 4u),
                     testing::Values(false, true)),
    [](const testing::TestParamInfo<ServiceEquivalence::ParamType>& info) {
      const ScanMode scan = std::get<0>(info.param);
      return std::string(scan == ScanMode::kIndexed ? "indexed" : "reference") +
             "_jobs" + std::to_string(std::get<1>(info.param)) +
             (std::get<2>(info.param) ? "_faults" : "_nofaults");
    });

}  // namespace
}  // namespace wompcm

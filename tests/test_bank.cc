#include <gtest/gtest.h>

#include "pcm/bank.h"
#include "pcm/rank.h"

namespace wompcm {
namespace {

TEST(Bank, StartsIdleWithClosedRow) {
  Bank b;
  EXPECT_TRUE(b.idle(0));
  EXPECT_FALSE(b.open_row().has_value());
  EXPECT_EQ(b.demand_ready_at(10, false), 10u);
}

TEST(Bank, DemandOccupiesUntilFinish) {
  Bank b;
  const Tick finish = b.begin_demand(100, 50, 7, false, 0);
  EXPECT_EQ(finish, 150u);
  EXPECT_TRUE(b.demand_busy(120));
  EXPECT_FALSE(b.demand_busy(150));
  EXPECT_EQ(b.demand_ready_at(120, false), 150u);
  ASSERT_TRUE(b.open_row().has_value());
  EXPECT_EQ(*b.open_row(), 7u);
  EXPECT_EQ(b.busy_time(), 50u);
  EXPECT_EQ(b.ops(), 1u);
}

TEST(Bank, RowHitTracking) {
  Bank b;
  b.begin_demand(0, 10, 3, false, 0);
  EXPECT_EQ(b.row_hits(), 0u);
  b.begin_demand(10, 10, 3, false, 0);
  EXPECT_EQ(b.row_hits(), 1u);
  b.begin_demand(20, 10, 4, false, 0);
  EXPECT_EQ(b.row_hits(), 1u);
  b.close_row();
  b.begin_demand(30, 10, 4, false, 0);
  EXPECT_EQ(b.row_hits(), 1u);  // row buffer was closed
}

TEST(Bank, RefreshOccupancy) {
  Bank b;
  b.begin_refresh(200);
  EXPECT_TRUE(b.refreshing(100));
  EXPECT_FALSE(b.refreshing(200));
  EXPECT_FALSE(b.idle(100));
  // Without pausing, demand must wait for the refresh.
  EXPECT_EQ(b.demand_ready_at(100, false), 200u);
  // With pausing, demand may start immediately.
  EXPECT_EQ(b.demand_ready_at(100, true), 100u);
}

TEST(Bank, WritePausingExtendsRefresh) {
  Bank b;
  b.begin_refresh(200);
  const Tick finish = b.begin_demand(100, 50, 1, true, 5);
  EXPECT_EQ(finish, 150u);
  // Refresh end pushed back by the demand service plus the resume penalty.
  EXPECT_EQ(b.refresh_until(), 200u + 50u + 5u);
  EXPECT_EQ(b.pauses(), 1u);
}

TEST(Bank, LongerRefreshWins) {
  Bank b;
  b.begin_refresh(300);
  b.begin_refresh(250);  // shorter occupancy does not shrink the window
  EXPECT_EQ(b.refresh_until(), 300u);
}

TEST(RankView, IdleRequiresAllBanks) {
  std::vector<Bank> banks(4);
  RankView rank(std::span<Bank>(banks.data(), banks.size()));
  EXPECT_TRUE(rank.idle(0));
  banks[2].begin_demand(0, 100, 0, false, 0);
  EXPECT_FALSE(rank.idle(50));
  EXPECT_TRUE(rank.idle(100));
  banks[1].begin_refresh(180);
  EXPECT_FALSE(rank.idle(150));
  EXPECT_TRUE(rank.idle(200));
}

TEST(RankView, BeginRefreshHitsEveryBank) {
  std::vector<Bank> banks(3);
  RankView rank(std::span<Bank>(banks.data(), banks.size()));
  rank.begin_refresh(500);
  for (const Bank& b : banks) EXPECT_TRUE(b.refreshing(499));
}

}  // namespace
}  // namespace wompcm

// Tests of the zero-copy binary trace reader and the format dispatcher.
//
// MmapTraceSource must decode exactly what TraceWriter wrote (and exactly
// what the buffered FileTraceSource reader decodes), know the record count
// up front, reject malformed files, and — through open_trace() /
// TraceSpec::file() — produce bit-identical simulation results to the
// text rendering of the same trace.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <vector>

#include "sim/experiment.h"
#include "sim/run.h"
#include "trace/binary_source.h"
#include "trace/file_source.h"
#include "trace/synthetic.h"

namespace wompcm {
namespace {

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() /
          (std::string("womcode_pcm_binsrc_") + name))
      .string();
}

std::vector<TraceRecord> sample_records() {
  return {
      {0, AccessType::kRead, 0x1000},
      {120, AccessType::kWrite, 0xdeadbeefc0ull},
      {7, AccessType::kRead, 0},
      {100000, AccessType::kWrite, ~Addr{0} ^ 0x3f},
  };
}

void write_binary(const std::string& path,
                  const std::vector<TraceRecord>& records) {
  TraceWriter w(path, TraceWriter::Format::kBinary);
  for (const auto& r : records) w.write(r);
}

TEST(MmapTrace, RoundTripAndCount) {
  const std::string path = temp_path("roundtrip.trc");
  const auto records = sample_records();
  write_binary(path, records);

  MmapTraceSource src(path);
  EXPECT_EQ(src.records(), records.size());
  for (const TraceRecord& e : records) {
    const auto got = src.next();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->gap, e.gap);
    EXPECT_EQ(got->type, e.type);
    EXPECT_EQ(got->addr, e.addr);
  }
  EXPECT_FALSE(src.next().has_value());

  // rewind() restarts the stream for multi-pass drivers.
  src.rewind();
  const auto again = src.next();
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->addr, records[0].addr);
  std::filesystem::remove(path);
}

TEST(MmapTrace, AgreesWithBufferedReader) {
  const std::string path = temp_path("agree.trc");
  write_binary(path, sample_records());
  MmapTraceSource fast(path);
  FileTraceSource slow(path);
  for (;;) {
    const auto a = fast.next();
    const auto b = slow.next();
    ASSERT_EQ(a.has_value(), b.has_value());
    if (!a.has_value()) break;
    EXPECT_EQ(a->gap, b->gap);
    EXPECT_EQ(a->type, b->type);
    EXPECT_EQ(a->addr, b->addr);
  }
  std::filesystem::remove(path);
}

TEST(MmapTrace, RejectsTextFile) {
  const std::string path = temp_path("text.trc");
  {
    TraceWriter w(path, TraceWriter::Format::kText);
    for (const auto& r : sample_records()) w.write(r);
  }
  EXPECT_FALSE(is_binary_trace(path));
  EXPECT_THROW(MmapTraceSource{path}, std::runtime_error);
  std::filesystem::remove(path);
}

TEST(MmapTrace, RejectsTruncatedTail) {
  const std::string path = temp_path("trunc.trc");
  {
    std::ofstream f(path, std::ios::binary);
    f.write(kTraceMagic, 8);
    const char partial[5] = {1, 2, 3, 4, 5};
    f.write(partial, sizeof(partial));
  }
  EXPECT_TRUE(is_binary_trace(path));
  EXPECT_THROW(MmapTraceSource{path}, std::runtime_error);
  std::filesystem::remove(path);
}

TEST(MmapTrace, MissingFileThrows) {
  EXPECT_THROW(MmapTraceSource{"/no/such/file.trc"}, std::runtime_error);
  EXPECT_THROW(is_binary_trace("/no/such/file.trc"), std::runtime_error);
}

TEST(MmapTrace, EmptyPayloadYieldsNothing) {
  const std::string path = temp_path("empty.trc");
  write_binary(path, {});
  MmapTraceSource src(path);
  EXPECT_EQ(src.records(), 0u);
  EXPECT_FALSE(src.next().has_value());
  std::filesystem::remove(path);
}

TEST(OpenTrace, DispatchesByFormat) {
  const std::string bin_path = temp_path("dispatch_bin.trc");
  const std::string txt_path = temp_path("dispatch_txt.trc");
  write_binary(bin_path, sample_records());
  {
    TraceWriter w(txt_path, TraceWriter::Format::kText);
    for (const auto& r : sample_records()) w.write(r);
  }
  const auto bin = open_trace(bin_path);
  const auto txt = open_trace(txt_path);
  EXPECT_NE(dynamic_cast<MmapTraceSource*>(bin.get()), nullptr);
  EXPECT_NE(dynamic_cast<FileTraceSource*>(txt.get()), nullptr);
  // Both decode the same stream.
  for (;;) {
    const auto a = bin->next();
    const auto b = txt->next();
    ASSERT_EQ(a.has_value(), b.has_value());
    if (!a.has_value()) break;
    EXPECT_EQ(a->gap, b->gap);
    EXPECT_EQ(a->type, b->type);
    EXPECT_EQ(a->addr, b->addr);
  }
  std::filesystem::remove(bin_path);
  std::filesystem::remove(txt_path);
}

TEST(OpenTrace, TextAndBinaryRunsAreIdentical) {
  // Record a synthetic benchmark in both formats, then run each through
  // TraceSpec::file(): the rendering of the trace must not change a single
  // statistic.
  const std::string bin_path = temp_path("run_bin.trc");
  const std::string txt_path = temp_path("run_txt.trc");
  {
    SyntheticTraceSource gen(*find_profile("401.bzip2"), paper_config().geom,
                             42, 4000);
    TraceWriter bin(bin_path, TraceWriter::Format::kBinary);
    TraceWriter txt(txt_path, TraceWriter::Format::kText);
    while (const auto rec = gen.next()) {
      bin.write(*rec);
      txt.write(*rec);
    }
  }
  SimConfig cfg = paper_config();
  cfg.arch.kind = ArchKind::kRefreshWomPcm;
  cfg.warmup_accesses = 500;
  RunRequest req;
  req.config = cfg;
  req.trace = TraceSpec::file(bin_path);
  const SimResult a = run(req);
  req.trace = TraceSpec::file(txt_path);
  const SimResult b = run(req);
  EXPECT_EQ(a.end_time, b.end_time);
  EXPECT_EQ(a.injected_reads, b.injected_reads);
  EXPECT_EQ(a.injected_writes, b.injected_writes);
  EXPECT_EQ(a.stats.counters.all(), b.stats.counters.all());
  EXPECT_EQ(a.stats.demand_read_latency.sum(),
            b.stats.demand_read_latency.sum());
  EXPECT_EQ(a.stats.demand_write_latency.sum(),
            b.stats.demand_write_latency.sum());
  std::filesystem::remove(bin_path);
  std::filesystem::remove(txt_path);
}

}  // namespace
}  // namespace wompcm

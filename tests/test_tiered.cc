// DRAM-front tier: end-to-end behavior and serial-vs-sharded bit-identity.
//
// The tier (controller/tier_front.h) sits ahead of each channel's PCM
// queues: demand accesses probe a per-channel TagArray at enqueue time,
// hits complete at DRAM latency without a queue slot, misses and dirty
// evictions flow into the PCM path. This suite checks
//  - the accounting invariant: exactly one tier probe per injected demand
//    access, so hits + misses == injections per type;
//  - per-channel tier.* metrics and the pooled SimResult fields;
//  - writeback vs writethrough semantics;
//  - the dead-frame fault model degenerating to a pure bypass at rate 1.0
//    (bit-identical demand latencies to a tier-less run);
//  - bit-identity between serial and sharded execution (jobs in {2, 4})
//    under both scan modes, with PCM faults and tier faults in the mix;
//  - every file in configs/ (including tiered.cfg) running end to end.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "sim/config_io.h"
#include "sim/experiment.h"
#include "sim/run.h"

namespace wompcm {
namespace {

// Same thorough predicate as the sharded suite: every deterministic field,
// the full metrics registry (which now carries chN.tier.*), banks, energy,
// wear and fault tallies.
void expect_identical(const SimResult& a, const SimResult& b) {
  EXPECT_EQ(a.arch_name, b.arch_name);
  EXPECT_EQ(a.end_time, b.end_time);
  EXPECT_EQ(a.injected_reads, b.injected_reads);
  EXPECT_EQ(a.injected_writes, b.injected_writes);
  EXPECT_EQ(a.deferred_injections, b.deferred_injections);
  EXPECT_EQ(a.refresh_commands, b.refresh_commands);
  EXPECT_EQ(a.refresh_rows, b.refresh_rows);

  auto expect_latency_eq = [](const LatencyStats& x, const LatencyStats& y,
                              const char* what) {
    EXPECT_EQ(x.count(), y.count()) << what;
    EXPECT_EQ(x.min(), y.min()) << what;
    EXPECT_EQ(x.max(), y.max()) << what;
    EXPECT_EQ(x.sum(), y.sum()) << what;
  };
  expect_latency_eq(a.stats.demand_read_latency, b.stats.demand_read_latency,
                    "demand read latency");
  expect_latency_eq(a.stats.demand_write_latency,
                    b.stats.demand_write_latency, "demand write latency");
  expect_latency_eq(a.stats.internal_write_latency,
                    b.stats.internal_write_latency, "internal write latency");

  for (std::size_t i = 0; i < Log2Histogram::kBuckets; ++i) {
    EXPECT_EQ(a.stats.read_latency_hist.bucket(i),
              b.stats.read_latency_hist.bucket(i))
        << "read hist bucket " << i;
    EXPECT_EQ(a.stats.write_latency_hist.bucket(i),
              b.stats.write_latency_hist.bucket(i))
        << "write hist bucket " << i;
  }

  EXPECT_EQ(a.stats.counters.all(), b.stats.counters.all());

  const auto& ma = a.metrics.all();
  const auto& mb = b.metrics.all();
  ASSERT_EQ(ma.size(), mb.size());
  auto ib = mb.begin();
  for (auto ia = ma.begin(); ia != ma.end(); ++ia, ++ib) {
    EXPECT_EQ(ia->first, ib->first);
    EXPECT_EQ(ia->second.kind, ib->second.kind) << ia->first;
    EXPECT_EQ(ia->second.count, ib->second.count) << ia->first;
    EXPECT_EQ(ia->second.value, ib->second.value) << ia->first;
  }

  ASSERT_EQ(a.banks.size(), b.banks.size());
  for (std::size_t i = 0; i < a.banks.size(); ++i) {
    EXPECT_EQ(a.banks[i].busy_time, b.banks[i].busy_time) << "bank " << i;
    EXPECT_EQ(a.banks[i].ops, b.banks[i].ops) << "bank " << i;
    EXPECT_EQ(a.banks[i].row_hits, b.banks[i].row_hits) << "bank " << i;
    EXPECT_EQ(a.banks[i].pauses, b.banks[i].pauses) << "bank " << i;
    EXPECT_EQ(a.banks[i].cache, b.banks[i].cache) << "bank " << i;
  }

  EXPECT_EQ(a.capacity_overhead, b.capacity_overhead);
  EXPECT_EQ(a.energy_read_pj, b.energy_read_pj);
  EXPECT_EQ(a.energy_write_pj, b.energy_write_pj);
  EXPECT_EQ(a.energy_refresh_pj, b.energy_refresh_pj);
  EXPECT_EQ(a.max_line_wear, b.max_line_wear);
  EXPECT_EQ(a.mean_line_wear, b.mean_line_wear);
  EXPECT_EQ(a.lifetime_years, b.lifetime_years);
  EXPECT_EQ(a.fault_injected, b.fault_injected);
  EXPECT_EQ(a.fault_retries, b.fault_retries);
  EXPECT_EQ(a.fault_demoted_writes, b.fault_demoted_writes);
  EXPECT_EQ(a.fault_remapped_rows, b.fault_remapped_rows);
  EXPECT_EQ(a.fault_dead_rows, b.fault_dead_rows);
  EXPECT_EQ(a.fault_read_disturbs, b.fault_read_disturbs);
}

SimResult run_jobs(const SimConfig& cfg, const TraceSpec& trace,
                   std::uint64_t seed, unsigned jobs) {
  RunRequest req;
  req.config = cfg;
  req.trace = trace;
  req.options = RunOptions::with_seed(seed);
  req.options.jobs = ParallelPolicy::with_jobs(jobs);
  return run(req);
}

// Two channels of the paper platform fronted by a deliberately small tier
// (64 sets x 2 ways) so the working set overflows it: hits, misses,
// evictions and dirty writebacks all fire.
SimConfig tiered_config() {
  SimConfig cfg = paper_config();
  cfg.geom.channels = 2;
  cfg.geom.ranks = 8;
  cfg.arch.kind = ArchKind::kRefreshWomPcm;
  cfg.tier.enabled = true;
  cfg.tier.sets = 64;
  cfg.tier.ways = 2;
  cfg.tier.replacement = ReplacementKind::kLru;
  cfg.tier.write_policy = TierWritePolicy::kWriteback;
  return cfg;
}

constexpr std::uint64_t kAccesses = 12000;

TEST(Tiered, ProbeAccountingMatchesInjections) {
  // The controller probes the tier exactly once per injected demand access
  // (deferral happens before enqueue; internal and background writes skip
  // the tier), so the outcome counters partition the injections.
  const SimResult r = run_jobs(
      tiered_config(), TraceSpec::benchmark("401.bzip2", kAccesses), 42, 1);
  EXPECT_EQ(r.tier_read_hits + r.tier_read_misses, r.injected_reads);
  EXPECT_EQ(r.tier_write_hits + r.tier_write_misses, r.injected_writes);
  EXPECT_GT(r.tier_read_hits, 0u);
  EXPECT_GT(r.tier_read_misses, 0u);
  EXPECT_GT(r.tier_evictions, 0u);   // 64x2 overflows under this trace
  EXPECT_GT(r.tier_writebacks, 0u);  // writeback policy: dirty victims
  EXPECT_GT(r.tier_hit_rate(), 0.0);
  EXPECT_LT(r.tier_hit_rate(), 1.0);
}

TEST(Tiered, PerChannelMetricsPublished) {
  const SimResult r = run_jobs(
      tiered_config(), TraceSpec::benchmark("401.bzip2", kAccesses), 42, 1);
  std::uint64_t per_channel_hits = 0;
  for (const char* ch : {"ch0", "ch1"}) {
    for (const char* name :
         {"tier.read_hits", "tier.read_misses", "tier.write_hits",
          "tier.write_misses", "tier.fills", "tier.evictions",
          "tier.writebacks", "tier.dead_frames"}) {
      const std::string key = std::string(ch) + "." + name;
      EXPECT_TRUE(r.metrics.has(key)) << key;
    }
    per_channel_hits += r.metrics.counter(std::string(ch) + ".tier.read_hits");
  }
  // The unprefixed totals are the sums of the per-channel counters, and the
  // SimResult convenience fields mirror them.
  EXPECT_EQ(per_channel_hits, r.metrics.counter("tier.read_hits"));
  EXPECT_EQ(r.tier_read_hits, r.metrics.counter("tier.read_hits"));
  EXPECT_EQ(r.tier_writebacks, r.metrics.counter("tier.writebacks"));
}

TEST(Tiered, NoTierPublishesNoTierMetrics) {
  SimConfig cfg = tiered_config();
  cfg.tier.enabled = false;
  const SimResult r =
      run_jobs(cfg, TraceSpec::benchmark("401.bzip2", 6000), 42, 1);
  EXPECT_FALSE(r.metrics.has("tier.read_hits"));
  EXPECT_FALSE(r.metrics.has("ch0.tier.read_hits"));
  EXPECT_EQ(r.tier_read_hits, 0u);
  EXPECT_DOUBLE_EQ(r.tier_hit_rate(), 0.0);
}

TEST(Tiered, HitsCompleteAtDramLatency) {
  // A footprint that fits the tier: after the cold fills, every read is a
  // tier hit, so mean read latency sits far below the tier-less PCM run.
  WorkloadProfile hot;
  hot.name = "tier-resident";
  hot.suite = "demo";
  hot.write_fraction = 0.3;
  hot.footprint_pages = 4;
  const TraceSpec trace = TraceSpec::profile(hot, 8000);

  SimConfig cfg = tiered_config();
  cfg.tier.sets = 4096;
  cfg.tier.ways = 8;
  const SimResult tiered = run_jobs(cfg, trace, 42, 1);
  cfg.tier.enabled = false;
  const SimResult flat = run_jobs(cfg, trace, 42, 1);

  EXPECT_GT(tiered.tier_hit_rate(), 0.8);
  EXPECT_LT(tiered.avg_read_ns(), flat.avg_read_ns());
  EXPECT_LT(tiered.avg_write_ns(), flat.avg_write_ns());
}

TEST(Tiered, WritethroughNeverAbsorbsWrites) {
  SimConfig cfg = tiered_config();
  const TraceSpec trace = TraceSpec::benchmark("401.bzip2", kAccesses);
  const SimResult wb = run_jobs(cfg, trace, 42, 1);
  cfg.tier.write_policy = TierWritePolicy::kWritethrough;
  const SimResult wt = run_jobs(cfg, trace, 42, 1);

  // Writethrough keeps no dirty lines: no writebacks ever, and every write
  // pays the PCM path, so the mean demand write latency exceeds the
  // writeback run's (which absorbs write hits at DRAM latency).
  EXPECT_EQ(wt.tier_writebacks, 0u);
  EXPECT_GT(wb.tier_writebacks, 0u);
  EXPECT_GT(wt.avg_write_ns(), wb.avg_write_ns());
}

TEST(Tiered, AllFramesDeadDegeneratesToBypass) {
  SimConfig cfg = tiered_config();
  const TraceSpec trace = TraceSpec::benchmark("401.bzip2", 8000);
  cfg.tier.fault.enabled = true;
  cfg.tier.fault.seed = 5;
  cfg.tier.fault.frame_fail_rate = 1.0;
  const SimResult dead = run_jobs(cfg, trace, 42, 1);

  EXPECT_EQ(dead.tier_read_hits, 0u);
  EXPECT_EQ(dead.tier_write_hits, 0u);
  EXPECT_EQ(dead.metrics.counter("tier.fills"), 0u);
  EXPECT_EQ(dead.tier_writebacks, 0u);
  EXPECT_GT(dead.metrics.counter("tier.dead_frames"), 0u);

  // Pure bypass: the PCM side must behave exactly as if the tier were off.
  cfg.tier.enabled = false;
  const SimResult flat = run_jobs(cfg, trace, 42, 1);
  EXPECT_EQ(dead.end_time, flat.end_time);
  EXPECT_EQ(dead.stats.demand_read_latency.sum(),
            flat.stats.demand_read_latency.sum());
  EXPECT_EQ(dead.stats.demand_write_latency.sum(),
            flat.stats.demand_write_latency.sum());
  EXPECT_EQ(dead.stats.internal_write_latency.sum(),
            flat.stats.internal_write_latency.sum());
}

TEST(Tiered, PartialFrameFailuresStillServeHits) {
  SimConfig cfg = tiered_config();
  cfg.tier.fault.enabled = true;
  cfg.tier.fault.seed = 5;
  cfg.tier.fault.frame_fail_rate = 0.3;
  const SimResult r = run_jobs(
      cfg, TraceSpec::benchmark("401.bzip2", kAccesses), 42, 1);
  EXPECT_GT(r.metrics.counter("tier.dead_frames"), 0u);
  EXPECT_GT(r.tier_read_hits, 0u);  // healthy frames keep working
  EXPECT_EQ(r.tier_read_hits + r.tier_read_misses, r.injected_reads);
}

// Serial against jobs in {2, 4}, under both scan modes (the same matrix as
// the sharded suite): the per-channel tier state is owned by its channel's
// enqueue stream, so sharding must not perturb a single counter.
void check(SimConfig cfg, const TraceSpec& trace, std::uint64_t seed) {
  for (const ScanMode mode : {ScanMode::kIndexed, ScanMode::kReference}) {
    SCOPED_TRACE(std::string("scan=") +
                 (mode == ScanMode::kIndexed ? "indexed" : "reference") +
                 " seed=" + std::to_string(seed));
    cfg.sched.scan_mode = mode;
    const SimResult serial = run_jobs(cfg, trace, seed, 1);
    for (const unsigned jobs : {2u, 4u}) {
      SCOPED_TRACE("jobs=" + std::to_string(jobs));
      expect_identical(serial, run_jobs(cfg, trace, seed, jobs));
    }
  }
}

TEST(TieredEquivalence, ShardedMatchesSerial) {
  check(tiered_config(), TraceSpec::benchmark("401.bzip2", kAccesses), 42);
}

TEST(TieredEquivalence, ShardedMatchesSerialWritethrough) {
  SimConfig cfg = tiered_config();
  cfg.tier.write_policy = TierWritePolicy::kWritethrough;
  cfg.tier.replacement = ReplacementKind::kFifo;
  check(cfg, TraceSpec::benchmark("464.h264ref", kAccesses), 42);
}

TEST(TieredEquivalence, ShardedMatchesSerialRandomReplacement) {
  // The random policy draws from a per-channel seeded stream: the draws
  // must be a function of that channel's access order alone.
  SimConfig cfg = tiered_config();
  cfg.tier.replacement = ReplacementKind::kRandom;
  check(cfg, TraceSpec::benchmark("462.libq", kAccesses), 11);
}

TEST(TieredEquivalence, ShardedMatchesSerialWithTierFaults) {
  SimConfig cfg = tiered_config();
  cfg.tier.fault.enabled = true;
  cfg.tier.fault.seed = 9;
  cfg.tier.fault.frame_fail_rate = 0.4;
  check(cfg, TraceSpec::benchmark("401.bzip2", kAccesses), 42);
}

TEST(TieredEquivalence, ShardedMatchesSerialWithPcmFaults) {
  // PCM fault injection (PR 4) and the tier compose: tier misses wear the
  // array, writebacks retry on faulty lines, and the whole stack must stay
  // deterministic under sharding.
  SimConfig cfg;
  cfg.geom.channels = 2;
  cfg.geom.ranks = 2;
  cfg.geom.banks_per_rank = 2;
  cfg.geom.rows_per_bank = 64;
  cfg.geom.cols_per_row = 64;
  cfg.arch.kind = ArchKind::kWomPcm;
  cfg.warmup_accesses = 0;
  cfg.fault.enabled = true;
  cfg.fault.seed = 7;
  cfg.fault.endurance = 10.0;
  cfg.fault.sigma = 0.25;
  cfg.fault.initial_wear = 0.9;
  cfg.fault.spare_rows = 8;
  cfg.fault.read_disturb = 0.05;
  cfg.tier.enabled = true;
  cfg.tier.sets = 32;
  cfg.tier.ways = 2;

  WorkloadProfile hot;
  hot.name = "hot-row";
  hot.suite = "demo";
  hot.write_fraction = 0.8;
  hot.footprint_pages = 8;
  hot.write_zipf = 1.4;
  hot.rewrite_frac = 0.9;

  const TraceSpec trace = TraceSpec::profile(hot, 6000);
  check(cfg, trace, 42);

  const SimResult r = run_jobs(cfg, trace, 42, 2);
  EXPECT_GT(r.fault_injected, 0u);  // the PCM side actually degrades
  EXPECT_GT(r.tier_write_hits, 0u);  // and the tier actually absorbs
}

TEST(Tiered, EveryConfigFileRunsEndToEnd) {
  // Each shipped .cfg (including tiered.cfg) loads over the paper defaults
  // and completes a short run: a config keyed to a renamed or removed knob
  // fails here, not on a user's command line.
  const std::filesystem::path dir =
      std::filesystem::path(WOMPCM_REPO_DIR) / "configs";
  const WorkloadProfile& profile = *find_profile("401.bzip2");
  std::size_t count = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".cfg") continue;
    SCOPED_TRACE(entry.path().filename().string());
    const SimConfig cfg =
        load_config_file(paper_config(), entry.path().string());
    const SimResult r = run(
        {cfg, TraceSpec::profile(profile, 2000), RunOptions::with_seed(7)});
    EXPECT_GT(r.end_time, 0u);
    EXPECT_EQ(r.injected_reads + r.injected_writes, 2000u);
    ++count;
  }
  EXPECT_GE(count, 9u);  // dualchannel embedded faulty fnw_wom_cache
                         // hidden_refresh_cache paper symmetric_cache
                         // wcpcm32 tiered
}

}  // namespace
}  // namespace wompcm

// Integration tests of the memory controller timing on a small geometry
// with the conventional-PCM architecture: service-time composition, open-row
// tracking, bus serialization, read blocking behind writes, forwarding, and
// frontend back-pressure.
#include <gtest/gtest.h>

#include <memory>

#include "arch/arch.h"
#include "controller/controller.h"

namespace wompcm {
namespace {

MemoryGeometry small_geom() {
  MemoryGeometry g;
  g.channels = 1;
  g.ranks = 2;
  g.banks_per_rank = 2;
  g.rows_per_bank = 16;
  g.cols_per_row = 64;  // 8 lines/row
  return g;
}

class ControllerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cfg_.geom = small_geom();
    arch_ = make_architecture(ArchConfig{}, cfg_.geom, cfg_.timing);
    ctrl_ = std::make_unique<MemoryController>(cfg_, *arch_, stats_);
    mapper_ = std::make_unique<AddressMapper>(cfg_.geom);
  }

  Transaction tx(std::uint64_t id, unsigned rank, unsigned bank, unsigned row,
                 unsigned col, AccessType type, Tick arrival) {
    Transaction t;
    t.id = id;
    t.dec = DecodedAddr{0, rank, bank, row, col};
    t.addr = mapper_->encode(t.dec);
    t.type = type;
    t.arrival = arrival;
    return t;
  }

  // Runs the controller's event loop to quiescence starting at `now`.
  void run_to_drain(Tick now = 0) {
    ctrl_->tick(now);
    for (;;) {
      const Tick t = ctrl_->next_event_after(now);
      if (t == kNeverTick) break;
      now = t;
      ctrl_->tick(now);
    }
    EXPECT_TRUE(ctrl_->drained());
  }

  ControllerConfig cfg_;
  SimStats stats_;
  std::unique_ptr<Architecture> arch_;
  std::unique_ptr<MemoryController> ctrl_;
  std::unique_ptr<AddressMapper> mapper_;
};

TEST_F(ControllerTest, SingleReadServiceTime) {
  ctrl_->enqueue(tx(1, 0, 0, 3, 0, AccessType::kRead, 0));
  run_to_drain();
  ASSERT_EQ(stats_.demand_read_latency.count(), 1u);
  // activate + column read + burst = 27 + 13 + 4.
  EXPECT_EQ(stats_.demand_read_latency.mean(), 44.0);
}

TEST_F(ControllerTest, RowHitReadSkipsActivation) {
  ctrl_->enqueue(tx(1, 0, 0, 3, 0, AccessType::kRead, 0));
  ctrl_->enqueue(tx(2, 0, 0, 3, 5, AccessType::kRead, 0));
  run_to_drain();
  ASSERT_EQ(stats_.demand_read_latency.count(), 2u);
  // First: 44 at t=0..44. Second issues at 44 (bank busy): 13+4 service,
  // latency = 44 + 17 = 61.
  EXPECT_EQ(stats_.demand_read_latency.min(), 44u);
  EXPECT_EQ(stats_.demand_read_latency.max(), 61u);
}

TEST_F(ControllerTest, SingleWriteServiceTime) {
  ctrl_->enqueue(tx(1, 0, 0, 3, 0, AccessType::kWrite, 0));
  run_to_drain();
  ASSERT_EQ(stats_.demand_write_latency.count(), 1u);
  // activate + burst + full row write = 27 + 4 + 150.
  EXPECT_EQ(stats_.demand_write_latency.mean(), 181.0);
}

TEST_F(ControllerTest, ReadBlocksBehindWriteOnSameBank) {
  ctrl_->enqueue(tx(1, 0, 0, 3, 0, AccessType::kWrite, 0));
  ctrl_->enqueue(tx(2, 0, 0, 4, 0, AccessType::kRead, 1));
  run_to_drain();
  ASSERT_EQ(stats_.demand_read_latency.count(), 1u);
  // Write occupies the bank until 181; read (different row, no forwarding)
  // then takes 27+13+4 = 44 -> latency 181 + 44 - 1 = 224.
  EXPECT_EQ(stats_.demand_read_latency.mean(), 224.0);
}

TEST_F(ControllerTest, IndependentBanksProceedInParallel) {
  ctrl_->enqueue(tx(1, 0, 0, 3, 0, AccessType::kWrite, 0));
  ctrl_->enqueue(tx(2, 1, 1, 4, 0, AccessType::kRead, 0));
  run_to_drain();
  ASSERT_EQ(stats_.demand_read_latency.count(), 1u);
  // Arrival tie goes to the read; the write then waits only for the shared
  // data bus (4 ns) before proceeding on its own bank.
  EXPECT_EQ(stats_.demand_read_latency.mean(), 44.0);
  EXPECT_EQ(stats_.demand_write_latency.mean(), 185.0);
}

TEST_F(ControllerTest, BusSerializesSameChannelIssues) {
  ctrl_->enqueue(tx(1, 0, 0, 1, 0, AccessType::kRead, 0));
  ctrl_->enqueue(tx(2, 1, 0, 1, 0, AccessType::kRead, 0));
  ctrl_->enqueue(tx(3, 0, 1, 1, 0, AccessType::kRead, 0));
  run_to_drain();
  ASSERT_EQ(stats_.demand_read_latency.count(), 3u);
  // Issue times 0, 4, 8 on distinct banks: latencies 44, 48, 52.
  EXPECT_EQ(stats_.demand_read_latency.min(), 44u);
  EXPECT_EQ(stats_.demand_read_latency.max(), 52u);
  EXPECT_DOUBLE_EQ(stats_.demand_read_latency.mean(), 48.0);
}

TEST_F(ControllerTest, FcfsAgeOrderAcrossReadAndWrite) {
  // Older write goes before the younger read to the same bank and row.
  ctrl_->enqueue(tx(1, 0, 0, 3, 0, AccessType::kWrite, 0));
  ctrl_->enqueue(tx(2, 0, 0, 3, 1, AccessType::kRead, 1));
  run_to_drain();
  // Write runs 0..181; the read then row-hits (13 + 4), so it completes at
  // 198 for a latency of 197.
  EXPECT_EQ(stats_.demand_write_latency.mean(), 181.0);
  EXPECT_EQ(stats_.demand_read_latency.mean(), 197.0);
}

TEST_F(ControllerTest, WriteToReadForwarding) {
  ctrl_->enqueue(tx(1, 0, 0, 3, 0, AccessType::kWrite, 0));
  // Same line: served from the write queue at buffer latency.
  ctrl_->enqueue(tx(2, 0, 0, 3, 0, AccessType::kRead, 0));
  run_to_drain();
  ASSERT_EQ(stats_.demand_read_latency.count(), 1u);
  EXPECT_EQ(stats_.demand_read_latency.mean(), 17.0);  // col read + burst
  EXPECT_EQ(stats_.counters.get("ctrl.reads_forwarded"), 1u);
}

TEST_F(ControllerTest, ForwardingCanBeDisabled) {
  cfg_.read_forwarding = false;
  ctrl_ = std::make_unique<MemoryController>(cfg_, *arch_, stats_);
  ctrl_->enqueue(tx(1, 0, 0, 3, 0, AccessType::kWrite, 0));
  ctrl_->enqueue(tx(2, 0, 0, 3, 0, AccessType::kRead, 1));
  run_to_drain();
  EXPECT_EQ(stats_.counters.get("ctrl.reads_forwarded"), 0u);
  // Without forwarding the read waits out the whole write (181) and then
  // row-hits: latency 181 + 17 - 1.
  EXPECT_EQ(stats_.demand_read_latency.mean(), 197.0);
}

TEST_F(ControllerTest, BackPressureAtCapacity) {
  cfg_.queue_capacity = 4;
  ctrl_ = std::make_unique<MemoryController>(cfg_, *arch_, stats_);
  for (std::uint64_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(ctrl_->can_accept());
    ctrl_->enqueue(tx(i, 0, 0, 1, static_cast<unsigned>(i) % 8,
                      AccessType::kWrite, 0));
  }
  EXPECT_FALSE(ctrl_->can_accept());
  run_to_drain();
  EXPECT_TRUE(ctrl_->can_accept());
}

TEST_F(ControllerTest, WarmupTransactionsKeepNoStats) {
  Transaction t = tx(1, 0, 0, 3, 0, AccessType::kRead, 0);
  t.record = false;
  ctrl_->enqueue(t);
  ctrl_->enqueue(tx(2, 0, 0, 3, 1, AccessType::kRead, 0));
  run_to_drain();
  EXPECT_EQ(stats_.demand_read_latency.count(), 1u);
}

TEST_F(ControllerTest, LastCompletionTracksFinish) {
  ctrl_->enqueue(tx(1, 0, 0, 3, 0, AccessType::kWrite, 0));
  run_to_drain();
  EXPECT_EQ(ctrl_->last_completion(), 181u);
}

TEST_F(ControllerTest, ReadPriorityPolicyServesReadFirst) {
  cfg_.sched.policy = SchedulingPolicy::kReadPriority;
  ctrl_ = std::make_unique<MemoryController>(cfg_, *arch_, stats_);
  // Write is older, read younger, same bank: read-priority lets the read
  // bypass the queued write.
  ctrl_->enqueue(tx(1, 0, 0, 3, 0, AccessType::kWrite, 0));
  ctrl_->enqueue(tx(2, 0, 0, 4, 0, AccessType::kRead, 0));
  run_to_drain();
  EXPECT_EQ(stats_.demand_read_latency.mean(), 44.0);
  EXPECT_GT(stats_.demand_write_latency.mean(), 181.0);
}

}  // namespace
}  // namespace wompcm

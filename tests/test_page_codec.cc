// Tests for the functional page-level codec: bit-exact encode/rewrite/
// decode of whole pages, write classification, and pulse accounting.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "wom/page_codec.h"
#include "wom/registry.h"

namespace wompcm {
namespace {

BitVec random_bits(Rng& rng, std::size_t n) {
  BitVec v(n);
  for (std::size_t i = 0; i < n; ++i) v.set(i, rng.next_bool(0.5));
  return v;
}

TEST(PageCodec, RejectsBadConstruction) {
  EXPECT_THROW(PageCodec(WomCodePtr(), 16), std::invalid_argument);
  EXPECT_THROW(PageCodec(BlockCodecPtr(), 16), std::invalid_argument);
  EXPECT_THROW(PageCodec(make_code("rs23-inv"), 0), std::invalid_argument);
  EXPECT_THROW(PageCodec(make_code("rs23-inv"), 7), std::invalid_argument);
}

TEST(PageCodec, SizesFollowCode) {
  PageCodec page(make_code("rs23-inv"), 64);
  EXPECT_EQ(page.data_bits(), 64u);
  EXPECT_EQ(page.wit_bits(), 96u);  // 1.5x for <2^2>^2/3
  EXPECT_EQ(page.generation(), 0u);
  EXPECT_FALSE(page.at_rewrite_limit());
}

TEST(PageCodec, ReadBeforeWriteThrows) {
  PageCodec page(make_code("rs23-inv"), 16);
  EXPECT_THROW(page.read(), std::logic_error);
}

TEST(PageCodec, InvertedWritesAreResetOnlyWithinBudget) {
  PageCodec page(make_code("rs23-inv"), 128);
  Rng rng(1);
  const BitVec d1 = random_bits(rng, 128);
  const auto r1 = page.write(d1);
  EXPECT_EQ(r1.write_class, WriteClass::kResetOnly);
  EXPECT_EQ(r1.set_pulses, 0u);
  EXPECT_EQ(page.read(), d1);

  const BitVec d2 = random_bits(rng, 128);
  const auto r2 = page.write(d2);
  EXPECT_EQ(r2.write_class, WriteClass::kResetOnly);
  EXPECT_EQ(r2.set_pulses, 0u);
  EXPECT_EQ(page.read(), d2);
  EXPECT_TRUE(page.at_rewrite_limit());
}

TEST(PageCodec, ThirdWriteIsAlphaAndRestartsCycle) {
  PageCodec page(make_code("rs23-inv"), 128);
  Rng rng(2);
  page.write(random_bits(rng, 128));
  page.write(random_bits(rng, 128));
  const BitVec d3 = random_bits(rng, 128);
  const auto r3 = page.write(d3);
  EXPECT_EQ(r3.write_class, WriteClass::kAlpha);
  EXPECT_GT(r3.set_pulses, 0u);  // re-initialization raises bits
  EXPECT_EQ(page.read(), d3);
  EXPECT_EQ(page.generation(), 1u);
  // And the following write is fast again.
  const BitVec d4 = random_bits(rng, 128);
  const auto r4 = page.write(d4);
  EXPECT_EQ(r4.write_class, WriteClass::kResetOnly);
  EXPECT_EQ(r4.set_pulses, 0u);
  EXPECT_EQ(page.read(), d4);
}

TEST(PageCodec, RefreshPreErasesAndCountsSetPulses) {
  PageCodec page(make_code("rs23-inv"), 64);
  Rng rng(3);
  page.write(random_bits(rng, 64));
  page.write(random_bits(rng, 64));
  ASSERT_TRUE(page.at_rewrite_limit());
  const std::size_t sets = page.refresh();
  EXPECT_GT(sets, 0u);
  EXPECT_EQ(page.generation(), 0u);
  // Post-refresh write is a fast first write.
  const BitVec d = random_bits(rng, 64);
  const auto r = page.write(d);
  EXPECT_EQ(r.write_class, WriteClass::kResetOnly);
  EXPECT_EQ(r.set_pulses, 0u);
  EXPECT_EQ(page.read(), d);
}

TEST(PageCodec, ConventionalCodeUsesSetPulses) {
  PageCodec page(make_code("rs23"), 64);
  Rng rng(4);
  BitVec d = random_bits(rng, 64);
  // Guarantee at least one non-zero symbol so a SET pulse must occur.
  d.set(0, true);
  const auto r = page.write(d);
  EXPECT_GT(r.set_pulses, 0u);
  EXPECT_EQ(r.reset_pulses, 0u);  // conventional WOM never lowers bits
  EXPECT_EQ(page.read(), d);
}

// Property sweep: many random write sequences across codes stay readable
// and respect the code's pulse direction.
class PageCodecCodes : public ::testing::TestWithParam<const char*> {};

TEST_P(PageCodecCodes, LongRandomWriteSequences) {
  const WomCodePtr code = make_code(GetParam());
  ASSERT_NE(code, nullptr);
  const std::size_t bits = code->data_bits() * 24;
  PageCodec page(code, bits);
  Rng rng(5);
  for (int i = 0; i < 50; ++i) {
    const BitVec d = random_bits(rng, bits);
    const auto r = page.write(d);
    EXPECT_EQ(page.read(), d) << GetParam() << " iteration " << i;
    if (!code->raises_bits() && r.write_class == WriteClass::kResetOnly) {
      EXPECT_EQ(r.set_pulses, 0u);
    }
    EXPECT_LE(page.generation(), code->max_writes());
  }
}

INSTANTIATE_TEST_SUITE_P(Codes, PageCodecCodes,
                         ::testing::Values("rs23", "rs23-inv", "identity-k4",
                                           "marker-k2t3-inv", "parity-t4-inv",
                                           "marker-k1t2"));

TEST(PageCodec, WrongDataSizeThrows) {
  PageCodec page(make_code("rs23-inv"), 16);
  EXPECT_THROW(page.write(BitVec(8)), std::invalid_argument);
}

TEST(PageCodec, AlphaFrequencyMatchesRewriteLimit) {
  // With t = 2, exactly every third write (after the two fast ones) is
  // alpha in a long random sequence.
  PageCodec page(make_code("rs23-inv"), 32);
  Rng rng(6);
  int alphas = 0;
  constexpr int kWrites = 20;
  for (int i = 0; i < kWrites; ++i) {
    if (page.write(random_bits(rng, 32)).write_class == WriteClass::kAlpha) {
      ++alphas;
    }
  }
  // Pattern: F F A F A F A ... -> alphas = (kWrites - 2 + 1) / 2
  EXPECT_EQ(alphas, (kWrites - 1) / 2);
}

}  // namespace
}  // namespace wompcm

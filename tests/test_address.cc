#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "common/address.h"
#include "common/rng.h"

namespace wompcm {
namespace {

TEST(MemoryGeometry, PaperDefaultsAreValid) {
  MemoryGeometry g;
  std::string why;
  EXPECT_TRUE(g.valid(&why)) << why;
  EXPECT_EQ(g.data_width_bits(), 64u);   // 4 bits x 16 devices
  EXPECT_EQ(g.line_bytes(), 64u);        // 64-bit bus, burst of 8
  EXPECT_EQ(g.row_bytes(), 16384u);      // 2048 cols x 4 bits x 16 devices
  EXPECT_EQ(g.lines_per_row(), 256u);
}

TEST(MemoryGeometry, RejectsZeroFields) {
  MemoryGeometry g;
  g.ranks = 0;
  EXPECT_FALSE(g.valid());
}

TEST(MemoryGeometry, RejectsNonPow2Counts) {
  MemoryGeometry g;
  g.banks_per_rank = 12;
  EXPECT_FALSE(g.valid());
}

TEST(MemoryGeometry, CapacityArithmetic) {
  MemoryGeometry g;
  g.channels = 1;
  g.ranks = 2;
  g.banks_per_rank = 4;
  g.rows_per_bank = 8;
  EXPECT_EQ(g.rows_total(), 64u);
  EXPECT_EQ(g.capacity_bytes(), 64u * g.row_bytes());
}

TEST(AddressMapper, DecodeEncodeRoundTripExplicit) {
  MemoryGeometry g;
  AddressMapper mapper(g);
  DecodedAddr d;
  d.channel = 0;
  d.rank = 7;
  d.bank = 13;
  d.row = 12345;
  d.col = 200;
  const Addr a = mapper.encode(d);
  EXPECT_EQ(mapper.decode(a), d);
}

TEST(AddressMapper, FlatBankIsUnique) {
  MemoryGeometry g;
  g.ranks = 4;
  g.banks_per_rank = 8;
  AddressMapper mapper(g);
  std::vector<bool> seen(mapper.num_flat_banks(), false);
  for (unsigned r = 0; r < g.ranks; ++r) {
    for (unsigned b = 0; b < g.banks_per_rank; ++b) {
      DecodedAddr d;
      d.rank = r;
      d.bank = b;
      const unsigned f = mapper.flat_bank(d);
      ASSERT_LT(f, seen.size());
      EXPECT_FALSE(seen[f]);
      seen[f] = true;
    }
  }
}

TEST(AddressMapper, LineOffsetIgnored) {
  MemoryGeometry g;
  AddressMapper mapper(g);
  // Addresses within the same 64B line decode identically.
  const Addr base = 0x12345678900ull & ~Addr{63};
  const DecodedAddr d0 = mapper.decode(base);
  for (Addr off = 1; off < 64; ++off) {
    EXPECT_EQ(mapper.decode(base + off), d0);
  }
}

class MappingRoundTrip : public ::testing::TestWithParam<AddressMapping> {};

TEST_P(MappingRoundTrip, RandomAddresses) {
  MemoryGeometry g;
  g.mapping = GetParam();
  AddressMapper mapper(g);
  Rng rng(99);
  for (int i = 0; i < 2000; ++i) {
    const Addr a = (rng.next_u64() % g.capacity_bytes()) & ~Addr{63};
    const DecodedAddr d = mapper.decode(a);
    EXPECT_LT(d.channel, g.channels);
    EXPECT_LT(d.rank, g.ranks);
    EXPECT_LT(d.bank, g.banks_per_rank);
    EXPECT_LT(d.row, g.rows_per_bank);
    EXPECT_LT(d.col, g.lines_per_row());
    EXPECT_EQ(mapper.encode(d), a);
  }
}

TEST_P(MappingRoundTrip, DistinctCoordinatesDistinctAddresses) {
  MemoryGeometry g;
  g.ranks = 2;
  g.banks_per_rank = 2;
  g.rows_per_bank = 4;
  g.mapping = GetParam();
  AddressMapper mapper(g);
  std::set<Addr> seen;
  for (unsigned rank = 0; rank < 2; ++rank) {
    for (unsigned bank = 0; bank < 2; ++bank) {
      for (unsigned row = 0; row < 4; ++row) {
        for (unsigned col = 0; col < g.lines_per_row(); col += 37) {
          DecodedAddr d{0, rank, bank, row, col};
          EXPECT_TRUE(seen.insert(mapper.encode(d)).second);
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllMappings, MappingRoundTrip,
                         ::testing::Values(AddressMapping::kRowRankBankCol,
                                           AddressMapping::kRowBankRankCol,
                                           AddressMapping::kRankBankRowCol));

TEST(Log2Exact, PowersOfTwo) {
  EXPECT_EQ(log2_exact(1), 0u);
  EXPECT_EQ(log2_exact(2), 1u);
  EXPECT_EQ(log2_exact(1024), 10u);
  EXPECT_TRUE(is_pow2(4096));
  EXPECT_FALSE(is_pow2(0));
  EXPECT_FALSE(is_pow2(12));
}

}  // namespace
}  // namespace wompcm

// Unit and property tests for the WOM-code implementations: the
// Rivest-Shamir <2^2>^2/3 code (Table 1), the inverted adapter, the
// identity code, and the name registry.
#include <gtest/gtest.h>

#include "wom/identity_code.h"
#include "wom/inverted_code.h"
#include "wom/registry.h"
#include "wom/rs_code.h"

namespace wompcm {
namespace {

TEST(RivestShamir, Parameters) {
  RivestShamirCode code;
  EXPECT_EQ(code.data_bits(), 2u);
  EXPECT_EQ(code.wits(), 3u);
  EXPECT_EQ(code.max_writes(), 2u);
  EXPECT_EQ(code.values(), 4u);
  EXPECT_DOUBLE_EQ(code.overhead(), 0.5);
  EXPECT_TRUE(code.raises_bits());
  EXPECT_EQ(code.initial_state().to_string(), "000");
}

TEST(RivestShamir, Table1FirstWritePatterns) {
  EXPECT_EQ(RivestShamirCode::first_pattern(0).to_string(), "000");
  EXPECT_EQ(RivestShamirCode::first_pattern(1).to_string(), "100");
  EXPECT_EQ(RivestShamirCode::first_pattern(2).to_string(), "010");
  EXPECT_EQ(RivestShamirCode::first_pattern(3).to_string(), "001");
}

TEST(RivestShamir, Table1SecondWritePatterns) {
  EXPECT_EQ(RivestShamirCode::second_pattern(0).to_string(), "111");
  EXPECT_EQ(RivestShamirCode::second_pattern(1).to_string(), "011");
  EXPECT_EQ(RivestShamirCode::second_pattern(2).to_string(), "101");
  EXPECT_EQ(RivestShamirCode::second_pattern(3).to_string(), "110");
}

TEST(RivestShamir, XorDecodeRule) {
  // decode("abc") = (b^c, a^c) per the paper.
  RivestShamirCode code;
  for (unsigned a = 0; a < 2; ++a) {
    for (unsigned b = 0; b < 2; ++b) {
      for (unsigned c = 0; c < 2; ++c) {
        BitVec w(3);
        w.set(0, a);
        w.set(1, b);
        w.set(2, c);
        EXPECT_EQ(code.decode(w), (((b ^ c) << 1) | (a ^ c)));
      }
    }
  }
}

// Property: every write sequence x then y decodes correctly and only raises
// bits, for all 16 (x, y) combinations.
class RsWritePairs
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>> {};

TEST_P(RsWritePairs, TwoWritesDecodeAndAreMonotone) {
  const auto [x, y] = GetParam();
  RivestShamirCode code;
  const BitVec w1 = code.encode(x, 0, code.initial_state());
  EXPECT_EQ(code.decode(w1), x);
  EXPECT_TRUE(code.initial_state().monotone_increasing_to(w1));
  const BitVec w2 = code.encode(y, 1, w1);
  EXPECT_EQ(code.decode(w2), y);
  EXPECT_TRUE(w1.monotone_increasing_to(w2));
}

INSTANTIATE_TEST_SUITE_P(
    AllPairs, RsWritePairs,
    ::testing::Combine(::testing::Range(0u, 4u), ::testing::Range(0u, 4u)));

TEST(RivestShamir, RewritingSameValueKeepsWits) {
  RivestShamirCode code;
  for (unsigned x = 0; x < 4; ++x) {
    const BitVec w1 = code.encode(x, 0, code.initial_state());
    EXPECT_EQ(code.encode(x, 1, w1), w1);
  }
}

TEST(RivestShamir, RejectsOutOfRange) {
  RivestShamirCode code;
  EXPECT_THROW(code.encode(4, 0, code.initial_state()),
               std::invalid_argument);
  EXPECT_THROW(code.encode(0, 2, code.initial_state()),
               std::invalid_argument);
  EXPECT_THROW(code.decode(BitVec(4)), std::invalid_argument);
}

TEST(InvertedCode, FlipsDirectionAndPreservesDecode) {
  InvertedCode inv(std::make_shared<RivestShamirCode>());
  EXPECT_FALSE(inv.raises_bits());
  EXPECT_EQ(inv.initial_state().to_string(), "111");
  EXPECT_EQ(inv.name(), "rs23-inv");
  EXPECT_EQ(inv.max_writes(), 2u);
  for (unsigned x = 0; x < 4; ++x) {
    const BitVec w1 = inv.encode(x, 0, inv.initial_state());
    EXPECT_EQ(inv.decode(w1), x);
    EXPECT_TRUE(inv.initial_state().monotone_decreasing_to(w1));
    for (unsigned y = 0; y < 4; ++y) {
      const BitVec w2 = inv.encode(y, 1, w1);
      EXPECT_EQ(inv.decode(w2), y);
      // The PCM-friendly property: rewrites only lower bits (RESET-only).
      EXPECT_TRUE(w1.monotone_decreasing_to(w2));
    }
  }
}

TEST(InvertedCode, RejectsDoubleInversion) {
  auto inv = std::make_shared<InvertedCode>(std::make_shared<RivestShamirCode>());
  EXPECT_THROW(InvertedCode{inv}, std::invalid_argument);
  // invert() helper is idempotent instead of throwing.
  EXPECT_EQ(invert(inv), inv);
}

TEST(IdentityCode, RoundTrip) {
  IdentityCode code(4);
  EXPECT_EQ(code.max_writes(), 1u);
  EXPECT_DOUBLE_EQ(code.overhead(), 0.0);
  for (unsigned x = 0; x < 16; ++x) {
    const BitVec w = code.encode(x, 0, code.initial_state());
    EXPECT_EQ(code.decode(w), x);
  }
  EXPECT_THROW(code.encode(0, 1, code.initial_state()),
               std::invalid_argument);
}

TEST(Registry, KnownNamesResolve) {
  for (const std::string& name : known_code_names()) {
    const WomCodePtr code = make_code(name);
    ASSERT_NE(code, nullptr) << name;
    EXPECT_EQ(code->name(), name);
  }
}

TEST(Registry, InvertedSuffix) {
  const WomCodePtr code = make_code("rs23-inv");
  ASSERT_NE(code, nullptr);
  EXPECT_FALSE(code->raises_bits());
  const WomCodePtr plain = make_code("rs23");
  ASSERT_NE(plain, nullptr);
  EXPECT_TRUE(plain->raises_bits());
}

TEST(Registry, ParameterizedFamilies) {
  const WomCodePtr marker = make_code("marker-k3t5");
  ASSERT_NE(marker, nullptr);
  EXPECT_EQ(marker->data_bits(), 3u);
  EXPECT_EQ(marker->max_writes(), 5u);
  EXPECT_EQ(marker->wits(), 5u * 4u);
  const WomCodePtr parity = make_code("parity-t6-inv");
  ASSERT_NE(parity, nullptr);
  EXPECT_EQ(parity->data_bits(), 1u);
  EXPECT_EQ(parity->max_writes(), 6u);
  EXPECT_FALSE(parity->raises_bits());
}

TEST(Registry, UnknownNamesReturnNull) {
  EXPECT_EQ(make_code(""), nullptr);
  EXPECT_EQ(make_code("rs24"), nullptr);
  EXPECT_EQ(make_code("marker-k0t2"), nullptr);
  EXPECT_EQ(make_code("marker-k2"), nullptr);
  EXPECT_EQ(make_code("parity-tx"), nullptr);
  EXPECT_EQ(make_code("identity-k99"), nullptr);
}

}  // namespace
}  // namespace wompcm

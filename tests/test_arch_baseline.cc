// Tests of the architecture interface basics and the conventional-PCM and
// Flip-N-Write coding policies (through their canonical compositions).
#include <gtest/gtest.h>

#include "arch/arch.h"
#include "arch/composed.h"

namespace wompcm {
namespace {

MemoryGeometry small_geom() {
  MemoryGeometry g;
  g.channels = 1;
  g.ranks = 2;
  g.banks_per_rank = 4;
  g.rows_per_bank = 32;
  g.cols_per_row = 64;
  return g;
}

ArchConfig baseline_cfg() {
  ArchConfig cfg;
  cfg.kind = ArchKind::kBaseline;
  return cfg;
}

ArchConfig fnw_cfg(double fast_fraction, std::uint64_t seed) {
  ArchConfig cfg;
  cfg.kind = ArchKind::kFlipNWrite;
  cfg.fnw_fast_fraction = fast_fraction;
  cfg.seed = seed;
  return cfg;
}

TEST(BaselinePcm, EveryWriteIsSlowEveryTime) {
  ComposedArchitecture arch(small_geom(), PcmTiming{}, baseline_cfg());
  EXPECT_EQ(arch.name(), "pcm");
  DecodedAddr d{0, 1, 2, 3, 4};
  for (int i = 0; i < 5; ++i) {
    const IssuePlan p = arch.plan(d, AccessType::kWrite, false, 0);
    EXPECT_EQ(p.write_class, WriteClass::kAlpha);
    EXPECT_EQ(p.program_ns, 150u);
    EXPECT_EQ(p.pre_ns, 0u);
    EXPECT_EQ(p.post_ns, 0u);
    EXPECT_TRUE(p.spawned.empty());
  }
  EXPECT_EQ(arch.counters().get("writes.slow"), 5u);
}

TEST(BaselinePcm, ReadsHaveNoProgramPhase) {
  ComposedArchitecture arch(small_geom(), PcmTiming{}, baseline_cfg());
  DecodedAddr d{0, 0, 0, 7, 0};
  const IssuePlan p = arch.plan(d, AccessType::kRead, false, 0);
  EXPECT_EQ(p.program_ns, 0u);
  EXPECT_EQ(p.row, 7u);
  EXPECT_EQ(arch.counters().get("reads"), 1u);
}

TEST(BaselinePcm, RoutesToFlatBank) {
  const MemoryGeometry g = small_geom();
  ComposedArchitecture arch(g, PcmTiming{}, baseline_cfg());
  AddressMapper mapper(g);
  DecodedAddr d{0, 1, 3, 0, 0};
  EXPECT_EQ(arch.route(d, AccessType::kRead, false), mapper.flat_bank(d));
  EXPECT_EQ(arch.num_resources(), mapper.num_flat_banks());
}

TEST(BaselinePcm, NoRefreshHooks) {
  ComposedArchitecture arch(small_geom(), PcmTiming{}, baseline_cfg());
  EXPECT_FALSE(arch.refresh_enabled());
  EXPECT_DOUBLE_EQ(arch.refresh_pending_fraction(0, 0), 0.0);
  const auto work = arch.perform_refresh(0, 0, [](unsigned) { return true; });
  EXPECT_EQ(work.rows, 0u);
  EXPECT_DOUBLE_EQ(arch.capacity_overhead(), 0.0);
}

TEST(BaselinePcm, RefreshResourcesCoverRankBanks) {
  const MemoryGeometry g = small_geom();
  ComposedArchitecture arch(g, PcmTiming{}, baseline_cfg());
  const auto res = arch.refresh_resources(0, 1);
  ASSERT_EQ(res.size(), g.banks_per_rank);
  EXPECT_EQ(res.front(), g.banks_per_rank);  // rank 1 starts after rank 0
}

TEST(BaselinePcm, IgnoresUnresolvableCodeName) {
  // A composition with no WOM-coded region never resolves cfg.code, exactly
  // as the monolithic BaselinePcm ignored it.
  ArchConfig cfg = baseline_cfg();
  cfg.code = "no-such-code";
  ComposedArchitecture arch(small_geom(), PcmTiming{}, cfg);
  EXPECT_EQ(arch.code(), nullptr);
}

TEST(FlipNWrite, DefaultNeverFast) {
  ComposedArchitecture arch(small_geom(), PcmTiming{}, fnw_cfg(0.0, 1));
  EXPECT_EQ(arch.name(), "flip-n-write");
  DecodedAddr d{0, 0, 0, 1, 0};
  for (int i = 0; i < 20; ++i) {
    const IssuePlan p = arch.plan(d, AccessType::kWrite, false, 0);
    EXPECT_EQ(p.write_class, WriteClass::kAlpha);
  }
  EXPECT_EQ(arch.counters().get("writes.fast"), 0u);
}

TEST(FlipNWrite, FastFractionRoughlyHonored) {
  ComposedArchitecture arch(small_geom(), PcmTiming{}, fnw_cfg(0.5, 7));
  DecodedAddr d{0, 0, 0, 1, 0};
  for (int i = 0; i < 2000; ++i) {
    arch.plan(d, AccessType::kWrite, false, 0);
  }
  const double fast = static_cast<double>(arch.counters().get("writes.fast"));
  EXPECT_NEAR(fast / 2000.0, 0.5, 0.05);
}

TEST(FlipNWrite, HalvesWriteEnergyVersusBaseline) {
  const MemoryGeometry g = small_geom();
  ComposedArchitecture base(g, PcmTiming{}, baseline_cfg());
  ComposedArchitecture fnw(g, PcmTiming{}, fnw_cfg(0.0, 1));
  DecodedAddr d{0, 0, 0, 1, 0};
  for (int i = 0; i < 10; ++i) {
    base.plan(d, AccessType::kWrite, false, 0);
    fnw.plan(d, AccessType::kWrite, false, 0);
  }
  EXPECT_NEAR(fnw.energy().write_pj(), base.energy().write_pj() / 2.0,
              base.energy().write_pj() * 0.01);
  EXPECT_GT(fnw.capacity_overhead(), 0.0);  // the flip bits
}

TEST(Factory, BuildsEveryKind) {
  const MemoryGeometry g = small_geom();
  const PcmTiming t;
  for (const ArchKind kind :
       {ArchKind::kBaseline, ArchKind::kWomPcm, ArchKind::kRefreshWomPcm,
        ArchKind::kWcpcm, ArchKind::kFlipNWrite}) {
    ArchConfig cfg;
    cfg.kind = kind;
    const auto arch = make_architecture(cfg, g, t);
    ASSERT_NE(arch, nullptr);
    EXPECT_FALSE(arch->name().empty());
  }
}

TEST(Factory, RejectsNonInvertedCodeForWomArchitectures) {
  ArchConfig cfg;
  cfg.kind = ArchKind::kWomPcm;
  cfg.code = "rs23";  // conventional direction: illegal for PCM
  EXPECT_THROW(make_architecture(cfg, small_geom(), PcmTiming{}),
               std::invalid_argument);
  cfg.code = "no-such-code";
  EXPECT_THROW(make_architecture(cfg, small_geom(), PcmTiming{}),
               std::invalid_argument);
}

TEST(Factory, RejectsBadGeometryAndTiming) {
  ArchConfig cfg;
  MemoryGeometry g = small_geom();
  g.ranks = 3;
  EXPECT_THROW(make_architecture(cfg, g, PcmTiming{}), std::invalid_argument);
  PcmTiming t;
  t.reset_ns = 0;
  EXPECT_THROW(make_architecture(cfg, small_geom(), t),
               std::invalid_argument);
}

}  // namespace
}  // namespace wompcm

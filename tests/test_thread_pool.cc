// Unit tests for the fixed worker pool behind the parallel sweep engine.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "common/thread_pool.h"

namespace wompcm {
namespace {

TEST(ThreadPool, RunsEveryTaskExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) f.get();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, FuturesCarryResults) {
  ThreadPool pool(2);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 32; ++i) {
    futures.push_back(pool.submit([i] { return i * i; }));
  }
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPool, ExceptionsPropagateThroughFutures) {
  ThreadPool pool(2);
  auto f = pool.submit(
      []() -> int { throw std::runtime_error("task failed"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ZeroWorkersClampsToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
}

TEST(ThreadPool, DestructorDrainsQueuedTasks) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 20; ++i) {
      pool.submit([&counter] { ++counter; });
    }
  }  // join
  EXPECT_EQ(counter.load(), 20);
}

TEST(ThreadPool, HardwareWorkersIsPositive) {
  EXPECT_GE(ThreadPool::hardware_workers(), 1u);
}

}  // namespace
}  // namespace wompcm

// Tests of Start-Gap wear leveling: bijectivity, gap movement, rotation,
// and integration with the architectures.
#include <gtest/gtest.h>

#include <set>

#include "arch/arch.h"
#include "controller/wear_leveling.h"

namespace wompcm {
namespace {

TEST(StartGap, InitialMappingIsIdentity) {
  StartGapRemapper sg(16, 4);
  for (unsigned r = 0; r < 16; ++r) EXPECT_EQ(sg.remap(r), r);
  EXPECT_EQ(sg.gap(), 16u);
  EXPECT_EQ(sg.start(), 0u);
}

TEST(StartGap, GapMovesEveryIntervalWrites) {
  StartGapRemapper sg(16, 4);
  EXPECT_FALSE(sg.on_write());
  EXPECT_FALSE(sg.on_write());
  EXPECT_FALSE(sg.on_write());
  EXPECT_TRUE(sg.on_write());  // 4th write moves the gap
  EXPECT_EQ(sg.gap(), 15u);
  EXPECT_EQ(sg.gap_moves(), 1u);
}

TEST(StartGap, MappingSkipsTheGap) {
  StartGapRemapper sg(8, 1);
  sg.on_write();  // gap: 8 -> 7
  // Logical 7 previously mapped to 7; the gap sits there now, so it maps
  // to 8 (the spare row).
  EXPECT_EQ(sg.remap(7), 8u);
  for (unsigned r = 0; r < 7; ++r) EXPECT_EQ(sg.remap(r), r);
}

class StartGapProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(StartGapProperty, AlwaysABijectionIntoRowsPlusOne) {
  const unsigned rows = GetParam();
  StartGapRemapper sg(rows, 1);
  // Walk through several full rotations, checking injectivity each step.
  for (unsigned step = 0; step < rows * (rows + 1) + 3; ++step) {
    std::set<unsigned> physical;
    for (unsigned r = 0; r < rows; ++r) {
      const unsigned p = sg.remap(r);
      EXPECT_LE(p, rows);
      EXPECT_NE(p, sg.gap()) << "mapped onto the gap at step " << step;
      EXPECT_TRUE(physical.insert(p).second)
          << "collision at step " << step << " row " << r;
    }
    sg.on_write();
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, StartGapProperty,
                         ::testing::Values(1u, 2u, 3u, 8u, 13u));

TEST(StartGap, FullSweepAdvancesStart) {
  const unsigned rows = 8;
  StartGapRemapper sg(rows, 1);
  for (unsigned i = 0; i <= rows; ++i) sg.on_write();
  // After rows+1 gap movements the gap has swept the whole array and
  // returned to the top, and the start pointer advanced by one: every
  // logical row now sits one physical row over.
  EXPECT_EQ(sg.start(), 1u);
  EXPECT_EQ(sg.gap(), rows);
  EXPECT_EQ(sg.remap(0), 1u);
}

TEST(StartGap, RotationMovesHotRowAcrossPhysicalRows) {
  // The wear-leveling property: a single hot logical row visits many
  // physical rows over time.
  StartGapRemapper sg(8, 1);
  std::set<unsigned> homes;
  for (int i = 0; i < 9 * 8; ++i) {
    homes.insert(sg.remap(3));
    sg.on_write();
  }
  EXPECT_GE(homes.size(), 8u);
}

MemoryGeometry small_geom() {
  MemoryGeometry g;
  g.channels = 1;
  g.ranks = 2;
  g.banks_per_rank = 2;
  g.rows_per_bank = 16;
  g.cols_per_row = 64;
  return g;
}

TEST(StartGapIntegration, FactoryEnablesPerConfig) {
  ArchConfig cfg;
  cfg.kind = ArchKind::kWomPcm;
  cfg.start_gap = true;
  cfg.start_gap_interval = 2;
  const auto arch = make_architecture(cfg, small_geom(), PcmTiming{});
  EXPECT_TRUE(arch->start_gap_enabled());
  const auto plain = make_architecture(ArchConfig{}, small_geom(),
                                       PcmTiming{});
  EXPECT_FALSE(plain->start_gap_enabled());
}

TEST(StartGapIntegration, WcpcmNeverRemaps) {
  ArchConfig cfg;
  cfg.kind = ArchKind::kWcpcm;
  cfg.start_gap = true;
  const auto arch = make_architecture(cfg, small_geom(), PcmTiming{});
  EXPECT_FALSE(arch->start_gap_enabled());
}

TEST(StartGapIntegration, GapMoveChargesRowCopy) {
  ArchConfig cfg;
  cfg.kind = ArchKind::kBaseline;
  cfg.start_gap = true;
  cfg.start_gap_interval = 2;
  const auto arch = make_architecture(cfg, small_geom(), PcmTiming{});
  DecodedAddr d{0, 0, 0, 3, 0};
  const IssuePlan p1 = arch->plan(d, AccessType::kWrite, false, 0);
  EXPECT_EQ(p1.post_ns, 0u);
  const IssuePlan p2 = arch->plan(d, AccessType::kWrite, false, 0);
  // Second write triggers the gap move: one row read + one row write.
  EXPECT_EQ(p2.post_ns, PcmTiming{}.row_read_ns + PcmTiming{}.row_write_ns);
  EXPECT_EQ(arch->counters().get("wl.gap_moves"), 1u);
}

TEST(StartGapIntegration, RemappedRowStaysWithinSpareRange) {
  ArchConfig cfg;
  cfg.kind = ArchKind::kBaseline;
  cfg.start_gap = true;
  cfg.start_gap_interval = 1;
  const auto arch = make_architecture(cfg, small_geom(), PcmTiming{});
  const MemoryGeometry g = small_geom();
  for (int i = 0; i < 100; ++i) {
    DecodedAddr d{0, 0, 0, static_cast<unsigned>(i) % g.rows_per_bank, 0};
    const IssuePlan p = arch->plan(d, AccessType::kWrite, false, 0);
    EXPECT_LE(p.row, g.rows_per_bank);  // may use the spare row
  }
}

}  // namespace
}  // namespace wompcm

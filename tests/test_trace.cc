// Tests of the trace record plumbing and the text/binary file formats.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "trace/file_source.h"

namespace wompcm {
namespace {

std::string temp_path(const char* name) {
  return (std::filesystem::temp_directory_path() /
          (std::string("womcode_pcm_test_") + name))
      .string();
}

std::vector<TraceRecord> sample_records() {
  return {
      {0, AccessType::kRead, 0x1000},
      {120, AccessType::kWrite, 0xdeadbeefc0ull},
      {7, AccessType::kRead, 0},
      {100000, AccessType::kWrite, ~Addr{0} ^ 0x3f},
  };
}

void expect_same(const std::vector<TraceRecord>& expect,
                 TraceSource& source) {
  for (const TraceRecord& e : expect) {
    const auto got = source.next();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->gap, e.gap);
    EXPECT_EQ(got->type, e.type);
    EXPECT_EQ(got->addr, e.addr);
  }
  EXPECT_FALSE(source.next().has_value());
}

TEST(VectorTraceSource, ReplaysInOrder) {
  auto records = sample_records();
  VectorTraceSource src(records);
  expect_same(records, src);
}

TEST(FileTrace, TextRoundTrip) {
  const std::string path = temp_path("text.trc");
  {
    TraceWriter w(path, TraceWriter::Format::kText);
    for (const auto& r : sample_records()) w.write(r);
  }
  FileTraceSource src(path);
  EXPECT_FALSE(src.binary());
  auto records = sample_records();
  expect_same(records, src);
  std::filesystem::remove(path);
}

TEST(FileTrace, BinaryRoundTrip) {
  const std::string path = temp_path("bin.trc");
  {
    TraceWriter w(path, TraceWriter::Format::kBinary);
    for (const auto& r : sample_records()) w.write(r);
  }
  FileTraceSource src(path);
  EXPECT_TRUE(src.binary());
  auto records = sample_records();
  expect_same(records, src);
  std::filesystem::remove(path);
}

TEST(FileTrace, TextCommentsAndBlanksSkipped) {
  const std::string path = temp_path("comments.trc");
  {
    std::ofstream f(path);
    f << "# header comment\n\n"
      << "  10 R 0x40\n"
      << "# another\n"
      << "20 w 80\n";  // lowercase + no 0x prefix are accepted
  }
  FileTraceSource src(path);
  auto r1 = src.next();
  ASSERT_TRUE(r1.has_value());
  EXPECT_EQ(r1->gap, 10u);
  EXPECT_EQ(r1->type, AccessType::kRead);
  EXPECT_EQ(r1->addr, 0x40u);
  auto r2 = src.next();
  ASSERT_TRUE(r2.has_value());
  EXPECT_EQ(r2->type, AccessType::kWrite);
  EXPECT_EQ(r2->addr, 0x80u);
  EXPECT_FALSE(src.next().has_value());
  std::filesystem::remove(path);
}

TEST(FileTrace, MalformedLineThrows) {
  const std::string path = temp_path("bad.trc");
  {
    std::ofstream f(path);
    f << "10 X 0x40\n";
  }
  FileTraceSource src(path);
  EXPECT_THROW(src.next(), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(FileTrace, TruncatedBinaryThrows) {
  const std::string path = temp_path("trunc.trc");
  {
    std::ofstream f(path, std::ios::binary);
    f.write(kTraceMagic, 8);
    const char partial[5] = {1, 2, 3, 4, 5};
    f.write(partial, sizeof(partial));
  }
  FileTraceSource src(path);
  EXPECT_THROW(src.next(), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(FileTrace, MissingFileThrows) {
  EXPECT_THROW(FileTraceSource("/no/such/file.trc"), std::runtime_error);
}

TEST(FileTrace, EmptyTextFileYieldsNothing) {
  const std::string path = temp_path("empty.trc");
  std::ofstream(path).close();
  FileTraceSource src(path);
  EXPECT_FALSE(src.next().has_value());
  std::filesystem::remove(path);
}

TEST(TraceWriter, WriteAfterCloseThrows) {
  const std::string path = temp_path("closed.trc");
  TraceWriter w(path, TraceWriter::Format::kText);
  w.close();
  EXPECT_THROW(w.write(TraceRecord{}), std::logic_error);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace wompcm

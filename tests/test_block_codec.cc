// Tests for the sectioned streaming codec layer: bit-identity of the
// sectioned PageCodec against a whole-page reference loop over every
// registered code, section independence, the per-section alpha
// classification edges in WomStateTracker, and the properties of the new
// first-class families (polar, time-space constrained).
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "wom/page_codec.h"
#include "wom/registry.h"
#include "wom/wom_tracker.h"

namespace wompcm {
namespace {

BitVec random_bits(Rng& rng, std::size_t n) {
  BitVec v(n);
  for (std::size_t i = 0; i < n; ++i) v.set(i, rng.next_bool(0.5));
  return v;
}

// The historical whole-page codec: one page-wide generation, a single
// symbol loop per write, always through the virtual WomCode interface.
// The sectioned PageCodec must reproduce it bit for bit on full-page
// writes (sections stay in lockstep, and sections occupy disjoint bit
// ranges, so per-section pulse counts sum to the page-level transition
// counts).
class ReferencePage {
 public:
  ReferencePage(WomCodePtr code, std::size_t data_bits)
      : code_(std::move(code)), data_bits_(data_bits) {
    symbols_ = data_bits_ / code_->data_bits();
    const BitVec init = code_->initial_state();
    for (std::size_t s = 0; s < symbols_; ++s) fresh_.append(init);
    image_ = fresh_;
    const unsigned k = code_->data_bits();
    bitrev_.resize(std::size_t{1} << k);
    for (std::uint32_t v = 0; v < bitrev_.size(); ++v) {
      std::uint16_t r = 0;
      for (unsigned b = 0; b < k; ++b) {
        r = static_cast<std::uint16_t>(r | (((v >> b) & 1u) << (k - 1 - b)));
      }
      bitrev_[v] = r;
    }
  }

  PageWriteResult write(const BitVec& data) {
    PageWriteResult r;
    if (generation_ == code_->max_writes()) {
      r.write_class = WriteClass::kAlpha;
      r.set_pulses += image_.set_transitions_to(fresh_);
      r.reset_pulses += image_.reset_transitions_to(fresh_);
      image_.assign_from(fresh_);
      generation_ = 0;
    }
    const unsigned k = code_->data_bits();
    const unsigned n = code_->wits();
    BitVec next = image_;
    for (std::size_t s = 0; s < symbols_; ++s) {
      const unsigned value = bitrev_[data.extract_word(s * k, k)];
      BitVec sym;
      image_.slice_into(s * n, n, sym);
      const BitVec enc = code_->encode(value, generation_, sym);
      for (unsigned b = 0; b < n; ++b) next.set(s * n + b, enc.get(b));
    }
    r.set_pulses += image_.set_transitions_to(next);
    r.reset_pulses += image_.reset_transitions_to(next);
    image_.assign_from(next);
    ++generation_;
    r.generation_after = generation_;
    return r;
  }

  BitVec read() const {
    const unsigned k = code_->data_bits();
    const unsigned n = code_->wits();
    BitVec out(data_bits_);
    for (std::size_t s = 0; s < symbols_; ++s) {
      BitVec sym;
      image_.slice_into(s * n, n, sym);
      out.deposit_word(s * k, k, bitrev_[code_->decode(sym)]);
    }
    return out;
  }

  std::size_t refresh() {
    const std::size_t sets = image_.set_transitions_to(fresh_);
    image_.assign_from(fresh_);
    generation_ = 0;
    return sets;
  }

  const BitVec& image() const { return image_; }

 private:
  WomCodePtr code_;
  std::size_t data_bits_;
  std::size_t symbols_ = 0;
  unsigned generation_ = 0;
  BitVec fresh_;
  BitVec image_;
  std::vector<std::uint16_t> bitrev_;
};

// --- Sectioned vs whole-page bit-identity, every registered symbol code ---

class SectionedEquivalence : public ::testing::TestWithParam<std::string> {};

TEST_P(SectionedEquivalence, MatchesWholePageReferenceAcrossGenerations) {
  WomCodePtr code = make_code(GetParam());
  ASSERT_NE(code, nullptr);
  const unsigned t = code->max_writes();
  const std::size_t bits = code->data_bits() * 17;  // odd symbol count
  ReferencePage ref(make_code(GetParam()), bits);
  PageCodec page(std::move(code), bits);

  Rng rng(0xb10c + std::hash<std::string>{}(GetParam()) % 977);
  // Enough writes to cross the rewrite limit (alpha re-init) at least
  // three times, plus a mid-sequence refresh.
  const int writes = static_cast<int>(3 * t + 2);
  for (int i = 0; i < writes; ++i) {
    const BitVec d = random_bits(rng, bits);
    const PageWriteResult a = page.write(d);
    const PageWriteResult b = ref.write(d);
    EXPECT_EQ(a.write_class, b.write_class) << GetParam() << " write " << i;
    EXPECT_EQ(a.set_pulses, b.set_pulses) << GetParam() << " write " << i;
    EXPECT_EQ(a.reset_pulses, b.reset_pulses) << GetParam() << " write " << i;
    EXPECT_EQ(a.generation_after, b.generation_after)
        << GetParam() << " write " << i;
    EXPECT_TRUE(page.image() == ref.image()) << GetParam() << " write " << i;
    EXPECT_TRUE(page.read() == ref.read()) << GetParam() << " write " << i;
    EXPECT_TRUE(page.read() == d) << GetParam() << " write " << i;
  }
  EXPECT_EQ(page.refresh(), ref.refresh()) << GetParam();
  EXPECT_TRUE(page.image() == ref.image()) << GetParam();
  EXPECT_EQ(page.generation(), 0u);
}

INSTANTIATE_TEST_SUITE_P(AllKnownCodes, SectionedEquivalence,
                         ::testing::ValuesIn(known_code_names()));

// --- Registry: every block-codec name resolves with consistent info ---

TEST(BlockCodecRegistry, KnownNamesResolveWithConsistentInfo) {
  for (const std::string& name : known_block_codec_names()) {
    const BlockCodecPtr codec = make_block_codec(name);
    ASSERT_NE(codec, nullptr) << name;
    EXPECT_EQ(codec->name(), name);
    const CodeInfo info = code_info(name);
    ASSERT_TRUE(info.valid) << name;
    EXPECT_EQ(info.name, name);
    EXPECT_EQ(info.data_bits, codec->section_data_bits()) << name;
    EXPECT_EQ(info.wits, codec->section_wits()) << name;
    EXPECT_EQ(info.max_writes, codec->max_writes()) << name;
    EXPECT_DOUBLE_EQ(info.overhead, codec->overhead()) << name;
    EXPECT_DOUBLE_EQ(info.wear_bound, codec->wear_bound()) << name;
    EXPECT_EQ(info.lut, codec->lut_backed()) << name;
    EXPECT_EQ(info.inverted, !codec->raises_bits()) << name;
    EXPECT_GE(codec->max_writes(), 1u) << name;
    EXPECT_GE(codec->section_wits(), codec->section_data_bits()) << name;
  }
  EXPECT_EQ(make_block_codec("no-such-code"), nullptr);
  EXPECT_FALSE(code_info("no-such-code").valid);
  // Malformed tsc- names fail cleanly instead of resolving to something.
  EXPECT_EQ(make_block_codec("tsc-rs23"), nullptr);
  EXPECT_EQ(make_block_codec("tsc-rs23x1-inv"), nullptr);
  EXPECT_EQ(make_block_codec("tsc-rs23x9-inv"), nullptr);
  EXPECT_EQ(make_block_codec("tsc-nopex4-inv"), nullptr);
}

// --- Section independence: a write touches only its own bit range ---

class SectionIndependence : public ::testing::TestWithParam<std::string> {};

TEST_P(SectionIndependence, WritingOneSectionLeavesOthersUntouched) {
  BlockCodecPtr codec = make_block_codec(GetParam());
  ASSERT_NE(codec, nullptr);
  const unsigned n = codec->section_wits();
  const unsigned k = codec->section_data_bits();
  constexpr std::size_t kSections = 3;
  BitVec image(kSections * n);
  for (std::size_t s = 0; s < kSections; ++s) codec->erase_section(image, s);
  const BitVec before = image;

  Rng rng(77);
  BitVec data = random_bits(rng, kSections * k);
  unsigned gen = 0;
  const SectionWrite w = codec->write_section(image, data, /*section=*/1, &gen);
  EXPECT_EQ(gen, 1u);
  EXPECT_FALSE(w.alpha);
  for (unsigned b = 0; b < n; ++b) {
    EXPECT_EQ(image.get(0 * n + b), before.get(0 * n + b)) << GetParam();
    EXPECT_EQ(image.get(2 * n + b), before.get(2 * n + b)) << GetParam();
  }
  // And the written section reads back its own slice of the data.
  BitVec out(kSections * k);
  codec->read_section(image, 1, gen, out);
  for (unsigned b = 0; b < k; ++b) {
    EXPECT_EQ(out.get(k + b), data.get(k + b)) << GetParam() << " bit " << b;
  }
}

INSTANTIATE_TEST_SUITE_P(AllBlockCodecs, SectionIndependence,
                         ::testing::ValuesIn(known_block_codec_names()));

// --- Per-section alpha classification edges (record_write_range) ---

TEST(RecordWriteRange, ColdThenFastThenAlphaOverWholeRange) {
  WomStateTracker t(/*max_writes=*/2, /*lines_per_row=*/8);
  // 4 sections per line, line 0 -> sections [0, 4).
  auto r = t.record_write_range(7, 0, 4);
  EXPECT_EQ(r.cls, WriteClass::kAlpha);  // all sections unknown
  EXPECT_TRUE(r.cold);
  EXPECT_EQ(t.writes(), 1u);             // one page write, not four
  EXPECT_EQ(t.alpha_writes(), 1u);
  EXPECT_EQ(t.cold_alpha_writes(), 1u);

  r = t.record_write_range(7, 0, 4);
  EXPECT_EQ(r.cls, WriteClass::kResetOnly);  // every section in budget
  EXPECT_FALSE(r.cold);

  r = t.record_write_range(7, 0, 4);
  EXPECT_EQ(r.cls, WriteClass::kAlpha);  // every section at t = 2
  EXPECT_FALSE(r.cold);
  EXPECT_EQ(t.writes(), 3u);
  EXPECT_EQ(t.alpha_writes(), 2u);
  EXPECT_EQ(t.cold_alpha_writes(), 1u);
}

TEST(RecordWriteRange, OneExhaustedSectionMakesThePageWriteAlpha) {
  WomStateTracker t(/*max_writes=*/2, /*lines_per_row=*/8);
  t.record_write_range(3, 4, 4);  // line 1: cold alpha, gens -> 1
  // Drive section 5 alone to its limit through the single-line entry point.
  t.record_write(3, 5);  // gen 2 == t
  EXPECT_TRUE(t.row_has_limit_lines(3));
  // The next full-line write is alpha (partial per-section re-init) even
  // though sections 4, 6, 7 still have budget — but NOT cold.
  const auto r = t.record_write_range(3, 4, 4);
  EXPECT_EQ(r.cls, WriteClass::kAlpha);
  EXPECT_FALSE(r.cold);
  // Only section 5 re-initialized (gen back to 1); the rest advanced to 2.
  EXPECT_EQ(t.generation(3, 5), 1u);
  EXPECT_EQ(t.generation(3, 4), 2u);
  EXPECT_EQ(t.generation(3, 6), 2u);
}

TEST(RecordWriteRange, OneUnknownSectionMakesThePageWriteColdAlpha) {
  WomStateTracker t(/*max_writes=*/4, /*lines_per_row=*/4);
  t.record_write(11, 0);
  t.record_write(11, 1);
  t.record_write(11, 2);
  // Section 3 has never been touched: the range write is a cold alpha.
  const auto r = t.record_write_range(11, 0, 4);
  EXPECT_EQ(r.cls, WriteClass::kAlpha);
  EXPECT_TRUE(r.cold);
  EXPECT_EQ(t.generation(11, 3), 1u);
  EXPECT_EQ(t.generation(11, 0), 2u);
}

TEST(RecordWriteRange, ErasedStartIsResetOnly) {
  WomStateTracker t(/*max_writes=*/8, /*lines_per_row=*/8,
                    /*erased_start=*/true);
  const auto r = t.record_write_range(0, 0, 8);
  EXPECT_EQ(r.cls, WriteClass::kResetOnly);
  EXPECT_FALSE(r.cold);
}

TEST(RecordWriteRange, SingleSectionDelegatesToRecordWrite) {
  WomStateTracker a(2, 8), b(2, 8);
  for (int i = 0; i < 5; ++i) {
    const auto ra = a.record_write_range(1, 3, 1);
    const auto rb = b.record_write(1, 3);
    EXPECT_EQ(ra.cls, rb.cls) << i;
    EXPECT_EQ(ra.cold, rb.cold) << i;
  }
  EXPECT_EQ(a.writes(), b.writes());
  EXPECT_EQ(a.alpha_writes(), b.alpha_writes());
  EXPECT_EQ(a.cold_alpha_writes(), b.cold_alpha_writes());
}

TEST(RecordWriteRange, RefreshRestoresTheWholeRange) {
  WomStateTracker t(/*max_writes=*/1, /*lines_per_row=*/4);
  t.record_write_range(5, 0, 4);  // t = 1: immediately at limit
  EXPECT_TRUE(t.row_has_limit_lines(5));
  EXPECT_TRUE(t.refresh(5));
  EXPECT_FALSE(t.row_has_limit_lines(5));
  EXPECT_EQ(t.record_write_range(5, 0, 4).cls, WriteClass::kResetOnly);
}

// --- Polar family properties ---

TEST(PolarCode, ParametersMatchConstruction) {
  // n = 2^m cells, k = m+1 data bits, t = (2^(m-1) - 1) / k + 1 writes.
  const WomCodePtr m5 = make_code("polar-m5");
  ASSERT_NE(m5, nullptr);
  EXPECT_EQ(m5->wits(), 32u);
  EXPECT_EQ(m5->data_bits(), 6u);
  EXPECT_EQ(m5->max_writes(), 3u);
  EXPECT_TRUE(m5->raises_bits());

  const WomCodePtr m7 = make_code("polar-m7-inv");
  ASSERT_NE(m7, nullptr);
  EXPECT_EQ(m7->wits(), 128u);
  EXPECT_EQ(m7->data_bits(), 8u);
  EXPECT_EQ(m7->max_writes(), 8u);
  EXPECT_FALSE(m7->raises_bits());

  EXPECT_EQ(make_code("polar-m3"), nullptr);   // below the supported range
  EXPECT_EQ(make_code("polar-m9"), nullptr);   // above it
  EXPECT_EQ(make_code("polar-mx"), nullptr);
}

class PolarProperties : public ::testing::TestWithParam<std::string> {};

TEST_P(PolarProperties, TWritesAlwaysSucceedMonotonicallyAndRoundTrip) {
  const WomCodePtr code = make_code(GetParam());
  ASSERT_NE(code, nullptr);
  const unsigned k = code->data_bits();
  const unsigned t = code->max_writes();
  const bool inverted = !code->raises_bits();
  Rng rng(0x9019);
  for (int round = 0; round < 200; ++round) {
    BitVec state = code->initial_state();
    for (unsigned g = 0; g < t; ++g) {
      const unsigned value =
          static_cast<unsigned>(rng.next_below(1ull << k));
      // The t-write guarantee: an in-budget write never throws (the
      // Gaussian elimination always finds an in-direction correction).
      const BitVec next = code->encode(value, g, state);
      // Monotone in the code's programming direction.
      for (std::size_t b = 0; b < next.size(); ++b) {
        if (inverted) {
          EXPECT_LE(next.get(b), state.get(b)) << GetParam();
        } else {
          EXPECT_GE(next.get(b), state.get(b)) << GetParam();
        }
      }
      EXPECT_EQ(code->decode(next), value) << GetParam() << " gen " << g;
      state = next;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Variants, PolarProperties,
                         ::testing::Values("polar-m4", "polar-m4-inv",
                                           "polar-m5", "polar-m6-inv",
                                           "polar-m7-inv", "polar-m8"));

TEST(PolarCode, EncodeValidatesArguments) {
  const WomCodePtr code = make_code("polar-m5-inv");
  const BitVec init = code->initial_state();
  EXPECT_THROW(code->encode(1u << 6, 0, init), std::invalid_argument);
  EXPECT_THROW(code->encode(0, /*generation=*/3, init),
               std::invalid_argument);
  EXPECT_THROW(code->encode(0, 0, BitVec(16)), std::invalid_argument);
}

// --- Time-space constrained family properties ---

TEST(TsConstrainedCodec, ParametersAndWearBound) {
  const BlockCodecPtr c = make_block_codec("tsc-rs23x4-inv");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->name(), "tsc-rs23x4-inv");
  EXPECT_EQ(c->section_data_bits(), 32u);  // 16 rs23 symbols
  EXPECT_EQ(c->section_wits(), 192u);      // 4 replicas x 16 x 3 wits
  EXPECT_EQ(c->max_writes(), 8u);          // 4 replicas x t_base = 2
  EXPECT_FALSE(c->raises_bits());
  EXPECT_DOUBLE_EQ(c->wear_bound(), 0.25);  // one replica in four per write
  EXPECT_DOUBLE_EQ(c->overhead(), 5.0);     // 192/32 - 1
}

TEST(TsConstrainedCodec, DecodeIsGenerationAware) {
  // The live replica depends on the write count: replica q = (gen-1)/t_base
  // holds the data, so decode must be told the generation — the property
  // that forces the BlockCodec seam over the symbol-at-a-time WomCode one.
  BlockCodecPtr c = make_block_codec("tsc-rs23x4-inv");
  ASSERT_NE(c, nullptr);
  const unsigned k = c->section_data_bits();
  const unsigned n = c->section_wits();
  BitVec image(n);
  c->erase_section(image, 0);
  Rng rng(0x75c);
  unsigned gen = 0;
  for (unsigned w = 0; w < c->max_writes(); ++w) {
    const BitVec d = random_bits(rng, k);
    const SectionWrite r = c->write_section(image, d, 0, &gen);
    EXPECT_FALSE(r.alpha) << "write " << w;
    EXPECT_EQ(r.set_pulses, 0u) << "write " << w;  // inverted: RESET-only
    BitVec out(k);
    c->read_section(image, 0, gen, out);
    EXPECT_TRUE(out == d) << "write " << w;
  }
  // One more write exhausts the budget: alpha re-init, then round-trip.
  const BitVec d = random_bits(rng, k);
  const SectionWrite r = c->write_section(image, d, 0, &gen);
  EXPECT_TRUE(r.alpha);
  EXPECT_GT(r.set_pulses, 0u);
  EXPECT_EQ(gen, 1u);
  BitVec out(k);
  c->read_section(image, 0, gen, out);
  EXPECT_TRUE(out == d);
}

TEST(TsConstrainedCodec, WritesLeaveRetiredReplicasUntouched) {
  BlockCodecPtr c = make_block_codec("tsc-rs23x4-inv");
  ASSERT_NE(c, nullptr);
  const unsigned k = c->section_data_bits();
  const unsigned n = c->section_wits();
  const unsigned replica_wits = n / 4;
  BitVec image(n);
  c->erase_section(image, 0);
  Rng rng(0x75d);
  unsigned gen = 0;
  // Two writes land in replica 0 (t_base = 2 for rs23).
  c->write_section(image, random_bits(rng, k), 0, &gen);
  c->write_section(image, random_bits(rng, k), 0, &gen);
  const BitVec snapshot = image;
  // The third write moves to replica 1; replica 0's cells must not change
  // (that is the whole point of the per-cell write-frequency bound).
  c->write_section(image, random_bits(rng, k), 0, &gen);
  for (unsigned b = 0; b < replica_wits; ++b) {
    EXPECT_EQ(image.get(b), snapshot.get(b)) << "replica-0 bit " << b;
  }
}

TEST(TsConstrainedCodec, ReadBeforeFirstWriteThrows) {
  BlockCodecPtr c = make_block_codec("tsc-rs23x4-inv");
  BitVec image(c->section_wits());
  c->erase_section(image, 0);
  BitVec out(c->section_data_bits());
  EXPECT_THROW(c->read_section(image, 0, /*generation=*/0, out),
               std::logic_error);
}

TEST(TsConstrainedCodec, PageCodecStreamsAcrossSectionsAndGenerations) {
  // Two sections' worth of data through the PageCodec front end, across a
  // full budget cycle, including the partial LUT path (rs23-inv is
  // LUT-eligible, so the per-symbol encode inside each replica is too).
  BlockCodecPtr c = make_block_codec("tsc-marker-k2t4x2-inv");
  ASSERT_NE(c, nullptr);
  const std::size_t bits = 2 * c->section_data_bits();
  const unsigned t = c->max_writes();
  PageCodec page(std::move(c), bits);
  Rng rng(0x75e);
  for (unsigned w = 0; w < 2 * t + 1; ++w) {
    const BitVec d = random_bits(rng, bits);
    const PageWriteResult r = page.write(d);
    EXPECT_EQ(r.write_class, w % t == 0 && w > 0 ? WriteClass::kAlpha
                                                 : WriteClass::kResetOnly)
        << "write " << w;
    EXPECT_TRUE(page.read() == d) << "write " << w;
  }
}

// --- LUT observability counters on the PageCodec front end ---

TEST(BlockCodec, LutCountersTrackTheEncodePath) {
  // rs23-inv is LUT-eligible; every write is a hit.
  PageCodec lut_page(make_code("rs23-inv"), 32);
  Rng rng(0xa11);
  lut_page.write(random_bits(rng, 32));
  lut_page.write(random_bits(rng, 32));
  EXPECT_EQ(lut_page.lut_hits(), 2u);
  EXPECT_EQ(lut_page.lut_fallbacks(), 0u);

  // polar-m7 is far beyond EncodeLut's wits bound; every write falls back.
  PageCodec wide_page(make_code("polar-m7-inv"), 16);
  wide_page.write(random_bits(rng, 16));
  EXPECT_EQ(wide_page.lut_hits(), 0u);
  EXPECT_EQ(wide_page.lut_fallbacks(), 1u);
}

}  // namespace
}  // namespace wompcm

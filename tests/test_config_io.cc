// Tests of the SimConfig key=value dialect and round-tripping.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "sim/config_io.h"
#include "sim/experiment.h"

namespace wompcm {
namespace {

TEST(ConfigIo, GeometryAndTimingOverrides) {
  const auto kv = KeyValueConfig::from_tokens(
      {"ranks=4", "banks=8", "rows=1024", "row_write=200", "reset=30"});
  const SimConfig cfg = apply_overrides(paper_config(), kv);
  EXPECT_EQ(cfg.geom.ranks, 4u);
  EXPECT_EQ(cfg.geom.banks_per_rank, 8u);
  EXPECT_EQ(cfg.geom.rows_per_bank, 1024u);
  EXPECT_EQ(cfg.timing.row_write_ns, 200u);
  EXPECT_EQ(cfg.timing.reset_ns, 30u);
  // Untouched fields keep the paper defaults.
  EXPECT_EQ(cfg.geom.cols_per_row, 2048u);
  EXPECT_EQ(cfg.timing.row_read_ns, 27u);
}

TEST(ConfigIo, ArchitectureSelection) {
  for (const auto& [name, kind] :
       std::vector<std::pair<std::string, ArchKind>>{
           {"pcm", ArchKind::kBaseline},
           {"wom", ArchKind::kWomPcm},
           {"refresh", ArchKind::kRefreshWomPcm},
           {"wcpcm", ArchKind::kWcpcm},
           {"fnw", ArchKind::kFlipNWrite},
           {"symmetric", ArchKind::kSymmetric}}) {
    const auto kv = KeyValueConfig::from_tokens({"arch=" + name});
    EXPECT_EQ(apply_overrides(paper_config(), kv).arch.kind, kind) << name;
  }
}

TEST(ConfigIo, PolicyKnobs) {
  const auto kv = KeyValueConfig::from_tokens(
      {"policy=read-priority", "row_policy=closed", "organization=hidden",
       "rth=0.25", "pausing=false", "start_gap=true",
       "start_gap_interval=64", "warmup=100", "read_forwarding=false"});
  const SimConfig cfg = apply_overrides(paper_config(), kv);
  EXPECT_EQ(cfg.sched.policy, SchedulingPolicy::kReadPriority);
  EXPECT_EQ(cfg.row_policy, RowPolicy::kClosed);
  EXPECT_EQ(cfg.arch.organization, WomOrganization::kHiddenPage);
  EXPECT_DOUBLE_EQ(cfg.refresh.threshold, 0.25);
  EXPECT_FALSE(cfg.refresh.write_pausing);
  EXPECT_TRUE(cfg.arch.start_gap);
  EXPECT_EQ(cfg.arch.start_gap_interval, 64u);
  ASSERT_TRUE(cfg.warmup_accesses.has_value());
  EXPECT_EQ(*cfg.warmup_accesses, 100u);
  EXPECT_FALSE(cfg.read_forwarding);
}

TEST(ConfigIo, UnknownKeysRejectedWithNearestSuggestion) {
  // A typo must not silently run the default configuration; the error names
  // the offending key and the nearest valid one.
  try {
    apply_overrides(paper_config(),
                    KeyValueConfig::from_tokens({"scanmode=reference"}));
    FAIL() << "unknown key accepted";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("scanmode"), std::string::npos) << msg;
    EXPECT_NE(msg.find("scan_mode"), std::string::npos) << msg;
  }
  EXPECT_THROW(apply_overrides(paper_config(),
                               KeyValueConfig::from_tokens({"rankz=4"})),
               std::invalid_argument);
}

TEST(ConfigIo, HarnessKeysAreExempt) {
  // Keys owned by the calling tool (trace length, benchmark choice, ...)
  // are declared by the harness and skipped; everything else stays strict.
  const auto kv =
      KeyValueConfig::from_tokens({"accesses=5000", "benchmark=qsort"});
  const SimConfig cfg =
      apply_overrides(paper_config(), kv, {"accesses", "benchmark"});
  EXPECT_EQ(cfg.geom.ranks, 16u);
  EXPECT_THROW(apply_overrides(paper_config(), kv, {"accesses"}),
               std::invalid_argument);
  // The suggestion also considers the harness's own keys.
  try {
    apply_overrides(paper_config(),
                    KeyValueConfig::from_tokens({"acesses=5000"}),
                    {"accesses"});
    FAIL() << "unknown key accepted";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("accesses"), std::string::npos)
        << e.what();
  }
}

TEST(ConfigIo, FaultKeysParse) {
  const auto kv = KeyValueConfig::from_tokens(
      {"fault.enabled=true", "fault.seed=99", "fault.endurance=500",
       "fault.sigma=0.5", "fault.initial_wear=0.9", "fault.max_retries=7",
       "fault.spare_rows=8", "fault.read_disturb=0.001"});
  const SimConfig cfg = apply_overrides(paper_config(), kv);
  EXPECT_TRUE(cfg.fault.enabled);
  EXPECT_EQ(cfg.fault.seed, 99u);
  EXPECT_DOUBLE_EQ(cfg.fault.endurance, 500.0);
  EXPECT_DOUBLE_EQ(cfg.fault.sigma, 0.5);
  EXPECT_DOUBLE_EQ(cfg.fault.initial_wear, 0.9);
  EXPECT_EQ(cfg.fault.max_retries, 7u);
  EXPECT_EQ(cfg.fault.spare_rows, 8u);
  EXPECT_DOUBLE_EQ(cfg.fault.read_disturb, 0.001);
}

TEST(ConfigIo, FaultKeysRejectBadValues) {
  for (const char* tok :
       {"fault.enabled=2", "fault.endurance=0", "fault.endurance=-1",
        "fault.sigma=-0.1", "fault.initial_wear=-0.5", "fault.max_retries=0",
        "fault.read_disturb=1.5", "fault.read_disturb=-0.1"}) {
    EXPECT_THROW(apply_overrides(paper_config(),
                                 KeyValueConfig::from_tokens({tok})),
                 std::invalid_argument)
        << tok;
  }
}

TEST(ConfigIo, TierKeysParse) {
  const auto kv = KeyValueConfig::from_tokens(
      {"tier.enabled=true", "tier.sets=512", "tier.ways=4",
       "tier.replacement=fifo", "tier.write_policy=writethrough",
       "tier.hit_read=12", "tier.hit_write=18", "tier.port=2",
       "tier.fault.enabled=true", "tier.fault.seed=77",
       "tier.fault.rate=0.125"});
  const SimConfig cfg = apply_overrides(paper_config(), kv);
  EXPECT_TRUE(cfg.tier.enabled);
  EXPECT_EQ(cfg.tier.sets, 512u);
  EXPECT_EQ(cfg.tier.ways, 4u);
  EXPECT_EQ(cfg.tier.replacement, ReplacementKind::kFifo);
  EXPECT_EQ(cfg.tier.write_policy, TierWritePolicy::kWritethrough);
  EXPECT_EQ(cfg.tier.timing.hit_read_ns, 12u);
  EXPECT_EQ(cfg.tier.timing.hit_write_ns, 18u);
  EXPECT_EQ(cfg.tier.timing.port_ns, 2u);
  EXPECT_TRUE(cfg.tier.fault.enabled);
  EXPECT_EQ(cfg.tier.fault.seed, 77u);
  EXPECT_DOUBLE_EQ(cfg.tier.fault.frame_fail_rate, 0.125);
}

TEST(ConfigIo, TierKeysRejectBadValues) {
  for (const char* tok :
       {"tier.enabled=2", "tier.sets=0", "tier.ways=0",
        "tier.replacement=plru", "tier.write_policy=writearound",
        "tier.hit_read=0", "tier.hit_write=0", "tier.port=-1",
        "tier.fault.rate=1.5", "tier.fault.rate=-0.1"}) {
    EXPECT_THROW(apply_overrides(paper_config(),
                                 KeyValueConfig::from_tokens({tok})),
                 std::invalid_argument)
        << tok;
  }
}

TEST(ConfigIo, TierRejectsBankTagReplacement) {
  // bank_tag is the WOM cache's row/bank scheme, owned by the cache
  // composition; the tier must point the user there instead of accepting a
  // policy that cannot index a multi-way set.
  try {
    apply_overrides(paper_config(), KeyValueConfig::from_tokens(
                                        {"tier.replacement=bank_tag"}));
    FAIL() << "bank_tag accepted as a tier policy";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("cache.enabled=true"),
              std::string::npos)
        << e.what();
  }
}

TEST(ConfigIo, BadValuesThrow) {
  EXPECT_THROW(apply_overrides(paper_config(),
                               KeyValueConfig::from_tokens({"arch=dram"})),
               std::invalid_argument);
  EXPECT_THROW(apply_overrides(paper_config(),
                               KeyValueConfig::from_tokens({"rth=1.5"})),
               std::invalid_argument);
  EXPECT_THROW(
      apply_overrides(paper_config(),
                      KeyValueConfig::from_tokens({"row_policy=semiopen"})),
      std::invalid_argument);
  EXPECT_THROW(apply_overrides(paper_config(),
                               KeyValueConfig::from_tokens({"reset=0"})),
               std::invalid_argument);
}

TEST(ConfigIo, DescribeRoundTripsThroughFile) {
  SimConfig cfg = paper_config();
  cfg.arch.kind = ArchKind::kWcpcm;
  cfg.geom.ranks = 4;
  cfg.row_policy = RowPolicy::kClosed;
  cfg.refresh.threshold = 0.1;
  cfg.warmup_accesses = 777;

  const auto path = (std::filesystem::temp_directory_path() /
                     "womcode_pcm_cfg_roundtrip.cfg")
                        .string();
  {
    std::ofstream f(path);
    f << "# generated by test\n" << describe(cfg);
  }
  const SimConfig back = load_config_file(paper_config(), path);
  EXPECT_EQ(back.arch.kind, ArchKind::kWcpcm);
  EXPECT_EQ(back.geom.ranks, 4u);
  EXPECT_EQ(back.row_policy, RowPolicy::kClosed);
  EXPECT_DOUBLE_EQ(back.refresh.threshold, 0.1);
  ASSERT_TRUE(back.warmup_accesses.has_value());
  EXPECT_EQ(*back.warmup_accesses, 777u);
  std::filesystem::remove(path);
}

TEST(ConfigIo, EveryFieldRoundTripsThroughDescribe) {
  // Set every SimConfig field to a non-default value, write describe() to a
  // file, load it over pristine defaults, and compare field by field. A new
  // SimConfig field that is missing from apply_overrides()/describe() fails
  // here instead of silently falling back to its default.
  SimConfig cfg = paper_config();
  cfg.geom.channels = 2;
  cfg.geom.ranks = 4;
  cfg.geom.banks_per_rank = 8;
  cfg.geom.rows_per_bank = 1024;
  cfg.geom.cols_per_row = 256;
  cfg.geom.bits_per_col = 2;
  cfg.geom.devices_per_rank = 8;
  cfg.geom.burst_length = 16;
  cfg.geom.mapping = AddressMapping::kRankBankRowCol;
  cfg.timing.row_read_ns = 31;
  cfg.timing.row_write_ns = 177;
  cfg.timing.reset_ns = 35;
  cfg.timing.set_ns = 160;
  cfg.timing.col_read_ns = 11;
  cfg.timing.burst_length = 16;  // "burst" keeps geom and timing in sync
  cfg.timing.refresh_period_ns = 5000;
  cfg.timing.tag_check_ns = 3;
  cfg.timing.pause_resume_ns = 7;
  cfg.arch.kind = ArchKind::kFlipNWrite;
  cfg.arch.composition = validate_composition(
      {CodingKind::kFlipNWrite, true, CodingKind::kWomWide, RefreshKind::kRat});
  cfg.arch.code = "rs23";
  cfg.arch.main_code = "polar-m7-inv";
  cfg.arch.cache_code = "tsc-rs23x4-inv";
  cfg.arch.organization = WomOrganization::kHiddenPage;
  cfg.arch.rat_entries = 9;
  cfg.arch.fnw_fast_fraction = 0.25;
  cfg.arch.seed = 1234;
  cfg.arch.start_gap = true;
  cfg.arch.start_gap_interval = 256;
  cfg.refresh.enabled = false;
  cfg.refresh.threshold = 0.125;
  cfg.refresh.write_pausing = false;
  cfg.refresh.require_empty_queues = true;
  cfg.sched.policy = SchedulingPolicy::kReadPriority;
  cfg.sched.write_q_high = 40;
  cfg.sched.write_q_low = 10;
  cfg.sched.row_hit_first = false;
  cfg.sched.scan_limit = 12;
  cfg.sched.scan_mode = ScanMode::kReference;
  cfg.row_policy = RowPolicy::kClosed;
  cfg.queue_capacity = 77;  // per-channel bound
  cfg.read_forwarding = false;
  cfg.warmup_accesses = 555;
  cfg.fault.enabled = true;
  cfg.fault.seed = 31337;
  cfg.fault.endurance = 1500;
  cfg.fault.sigma = 0.75;
  cfg.fault.initial_wear = 0.5;
  cfg.fault.max_retries = 5;
  cfg.fault.spare_rows = 12;
  cfg.fault.read_disturb = 0.0625;
  cfg.tier.enabled = true;
  cfg.tier.sets = 512;
  cfg.tier.ways = 4;
  cfg.tier.replacement = ReplacementKind::kRandom;
  cfg.tier.write_policy = TierWritePolicy::kWritethrough;
  cfg.tier.timing.hit_read_ns = 13;
  cfg.tier.timing.hit_write_ns = 17;
  cfg.tier.timing.port_ns = 6;
  cfg.tier.fault.enabled = true;
  cfg.tier.fault.seed = 271828;
  cfg.tier.fault.frame_fail_rate = 0.03125;

  const auto path = (std::filesystem::temp_directory_path() /
                     "womcode_pcm_cfg_every_field.cfg")
                        .string();
  {
    std::ofstream f(path);
    f << describe(cfg);
  }
  const SimConfig back = load_config_file(paper_config(), path);
  std::filesystem::remove(path);

  EXPECT_EQ(back.geom.channels, 2u);
  EXPECT_EQ(back.geom.ranks, 4u);
  EXPECT_EQ(back.geom.banks_per_rank, 8u);
  EXPECT_EQ(back.geom.rows_per_bank, 1024u);
  EXPECT_EQ(back.geom.cols_per_row, 256u);
  EXPECT_EQ(back.geom.bits_per_col, 2u);
  EXPECT_EQ(back.geom.devices_per_rank, 8u);
  EXPECT_EQ(back.geom.burst_length, 16u);
  EXPECT_EQ(back.geom.mapping, AddressMapping::kRankBankRowCol);
  EXPECT_EQ(back.timing.row_read_ns, 31u);
  EXPECT_EQ(back.timing.row_write_ns, 177u);
  EXPECT_EQ(back.timing.reset_ns, 35u);
  EXPECT_EQ(back.timing.set_ns, 160u);
  EXPECT_EQ(back.timing.col_read_ns, 11u);
  EXPECT_EQ(back.timing.burst_length, 16u);
  EXPECT_EQ(back.timing.refresh_period_ns, 5000u);
  EXPECT_EQ(back.timing.tag_check_ns, 3u);
  EXPECT_EQ(back.timing.pause_resume_ns, 7u);
  EXPECT_EQ(back.arch.kind, ArchKind::kFlipNWrite);
  ASSERT_TRUE(back.arch.composition.has_value());
  EXPECT_EQ(*back.arch.composition,
            (Composition{CodingKind::kFlipNWrite, true, CodingKind::kWomWide,
                         RefreshKind::kRat}));
  EXPECT_EQ(back.arch.code, "rs23");
  EXPECT_EQ(back.arch.main_code, "polar-m7-inv");
  EXPECT_EQ(back.arch.cache_code, "tsc-rs23x4-inv");
  EXPECT_EQ(back.arch.organization, WomOrganization::kHiddenPage);
  EXPECT_EQ(back.arch.rat_entries, 9u);
  EXPECT_DOUBLE_EQ(back.arch.fnw_fast_fraction, 0.25);
  EXPECT_EQ(back.arch.seed, 1234u);
  EXPECT_TRUE(back.arch.start_gap);
  EXPECT_EQ(back.arch.start_gap_interval, 256u);
  EXPECT_FALSE(back.refresh.enabled);
  EXPECT_DOUBLE_EQ(back.refresh.threshold, 0.125);
  EXPECT_FALSE(back.refresh.write_pausing);
  EXPECT_TRUE(back.refresh.require_empty_queues);
  EXPECT_EQ(back.sched.policy, SchedulingPolicy::kReadPriority);
  EXPECT_EQ(back.sched.write_q_high, 40u);
  EXPECT_EQ(back.sched.write_q_low, 10u);
  EXPECT_FALSE(back.sched.row_hit_first);
  EXPECT_EQ(back.sched.scan_limit, 12u);
  EXPECT_EQ(back.sched.scan_mode, ScanMode::kReference);
  EXPECT_EQ(back.row_policy, RowPolicy::kClosed);
  EXPECT_EQ(back.queue_capacity, 77u);
  EXPECT_FALSE(back.read_forwarding);
  ASSERT_TRUE(back.warmup_accesses.has_value());
  EXPECT_EQ(*back.warmup_accesses, 555u);
  EXPECT_TRUE(back.fault.enabled);
  EXPECT_EQ(back.fault.seed, 31337u);
  EXPECT_DOUBLE_EQ(back.fault.endurance, 1500.0);
  EXPECT_DOUBLE_EQ(back.fault.sigma, 0.75);
  EXPECT_DOUBLE_EQ(back.fault.initial_wear, 0.5);
  EXPECT_EQ(back.fault.max_retries, 5u);
  EXPECT_EQ(back.fault.spare_rows, 12u);
  EXPECT_DOUBLE_EQ(back.fault.read_disturb, 0.0625);
  EXPECT_TRUE(back.tier.enabled);
  EXPECT_EQ(back.tier.sets, 512u);
  EXPECT_EQ(back.tier.ways, 4u);
  EXPECT_EQ(back.tier.replacement, ReplacementKind::kRandom);
  EXPECT_EQ(back.tier.write_policy, TierWritePolicy::kWritethrough);
  EXPECT_EQ(back.tier.timing.hit_read_ns, 13u);
  EXPECT_EQ(back.tier.timing.hit_write_ns, 17u);
  EXPECT_EQ(back.tier.timing.port_ns, 6u);
  EXPECT_TRUE(back.tier.fault.enabled);
  EXPECT_EQ(back.tier.fault.seed, 271828u);
  EXPECT_DOUBLE_EQ(back.tier.fault.frame_fail_rate, 0.03125);
}

TEST(ConfigIo, CompositionKeysBuildOnTheCanonicalComposition) {
  // refresh=rat on top of arch=wom yields the pcm-refresh composition.
  const SimConfig cfg = apply_overrides(
      paper_config(),
      KeyValueConfig::from_tokens({"arch=wom", "refresh=rat"}));
  ASSERT_TRUE(cfg.arch.composition.has_value());
  EXPECT_EQ(cfg.arch.composition->main_coding, CodingKind::kWomWide);
  EXPECT_FALSE(cfg.arch.composition->cache_enabled);
  EXPECT_EQ(cfg.arch.composition->refresh, RefreshKind::kRat);
}

TEST(ConfigIo, CompositionKeysExpressNovelDesigns) {
  const SimConfig cfg = apply_overrides(
      paper_config(),
      KeyValueConfig::from_tokens({"main.coding=fnw", "cache.enabled=true",
                                   "cache.coding=wom-wide", "refresh=rat"}));
  ASSERT_TRUE(cfg.arch.composition.has_value());
  EXPECT_EQ(*cfg.arch.composition,
            (Composition{CodingKind::kFlipNWrite, true, CodingKind::kWomWide,
                         RefreshKind::kRat}));
}

TEST(ConfigIo, DisabledCacheNormalizesItsCoding) {
  const SimConfig cfg = apply_overrides(
      paper_config(),
      KeyValueConfig::from_tokens({"main.coding=wom-hidden",
                                   "cache.enabled=false", "refresh=none"}));
  ASSERT_TRUE(cfg.arch.composition.has_value());
  EXPECT_EQ(cfg.arch.composition->cache_coding, CodingKind::kWomWide);
}

TEST(ConfigIo, ArchKeyResetsAnExplicitComposition) {
  // "arch=" always means the kind's canonical composition, even when a
  // previous override installed an explicit one.
  SimConfig base = apply_overrides(
      paper_config(), KeyValueConfig::from_tokens({"main.coding=symmetric"}));
  ASSERT_TRUE(base.arch.composition.has_value());
  const SimConfig cfg =
      apply_overrides(base, KeyValueConfig::from_tokens({"arch=wcpcm"}));
  EXPECT_FALSE(cfg.arch.composition.has_value());
  EXPECT_EQ(cfg.arch.kind, ArchKind::kWcpcm);
}

TEST(ConfigIo, RejectsInvalidCompositionsWithActionableErrors) {
  // RAT refresh with no WOM-coded region anywhere.
  try {
    apply_overrides(paper_config(),
                    KeyValueConfig::from_tokens({"refresh=rat"}));
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("WOM-coded region"),
              std::string::npos)
        << e.what();
  }
  // A hidden-page cache has no hidden page region to pair with.
  try {
    apply_overrides(
        paper_config(),
        KeyValueConfig::from_tokens({"arch=wcpcm",
                                     "cache.coding=wom-hidden"}));
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("cache.coding=wom-wide"),
              std::string::npos)
        << e.what();
  }
}

TEST(ConfigIo, RejectsBadCompositionValues) {
  for (const char* tok :
       {"main.coding=womwide", "cache.enabled=2", "cache.coding=raw2",
        "refresh=sometimes"}) {
    EXPECT_THROW(apply_overrides(paper_config(),
                                 KeyValueConfig::from_tokens({tok})),
                 std::invalid_argument)
        << tok;
  }
}

TEST(ConfigIo, BurstKeepsGeometryAndTimingInSync) {
  const SimConfig cfg = apply_overrides(
      paper_config(), KeyValueConfig::from_tokens({"burst=16"}));
  EXPECT_EQ(cfg.geom.burst_length, 16u);
  EXPECT_EQ(cfg.timing.burst_length, 16u);
  EXPECT_EQ(cfg.timing.burst_ns(), 8u);
}

TEST(ConfigIo, NewKnobsRejectBadValues) {
  for (const char* tok :
       {"mapping=col:row", "row_hit_first=maybe", "refresh_enabled=2",
        "require_empty_queues=x", "tag_check=0", "pause_resume=-1"}) {
    EXPECT_THROW(apply_overrides(paper_config(),
                                 KeyValueConfig::from_tokens({tok})),
                 std::invalid_argument)
        << tok;
  }
}

TEST(ConfigIo, MissingFileThrows) {
  EXPECT_THROW(load_config_file(paper_config(), "/no/such/file.cfg"),
               std::runtime_error);
}

TEST(ConfigIo, SymmetricArchRuns) {
  SimConfig cfg = apply_overrides(
      paper_config(), KeyValueConfig::from_tokens({"arch=symmetric"}));
  const SimResult r =
      run({cfg, TraceSpec::profile(*find_profile("401.bzip2"), 4000),
           RunOptions::with_seed(9)});
  EXPECT_EQ(r.arch_name, "symmetric-ideal");
  // Every write is RESET-fast: the symmetric ideal beats conventional PCM.
  SimConfig base = paper_config();
  const SimResult rb =
      run({base, TraceSpec::profile(*find_profile("401.bzip2"), 4000),
           RunOptions::with_seed(9)});
  EXPECT_LT(r.avg_write_ns(), rb.avg_write_ns());
}

}  // namespace
}  // namespace wompcm

// Tests of the cell-wear tracker and lifetime estimation.
#include <gtest/gtest.h>

#include <cmath>

#include "pcm/endurance.h"

namespace wompcm {
namespace {

TEST(WearTracker, StartsClean) {
  WearTracker w(8);
  EXPECT_DOUBLE_EQ(w.total_wear(), 0.0);
  EXPECT_DOUBLE_EQ(w.max_line_wear(), 0.0);
  EXPECT_EQ(w.touched_lines(), 0u);
  EXPECT_TRUE(std::isinf(w.lifetime_seconds(1000)));
}

TEST(WearTracker, WriteClassesWearDifferently) {
  WearTracker w(8);
  w.on_write(1, 0, WriteClass::kResetOnly);
  EXPECT_DOUBLE_EQ(w.max_line_wear(), kResetOnlyWearPerCell);
  w.on_write(1, 1, WriteClass::kAlpha);
  EXPECT_DOUBLE_EQ(w.max_line_wear(), kAlphaWearPerCell);
  EXPECT_EQ(w.touched_lines(), 2u);
  EXPECT_DOUBLE_EQ(w.total_wear(),
                   kResetOnlyWearPerCell + kAlphaWearPerCell);
}

TEST(WearTracker, WearAccumulatesPerLine) {
  WearTracker w(8);
  for (int i = 0; i < 4; ++i) w.on_write(3, 2, WriteClass::kResetOnly);
  EXPECT_DOUBLE_EQ(w.max_line_wear(), 4 * kResetOnlyWearPerCell);
  EXPECT_EQ(w.touched_lines(), 1u);
}

TEST(WearTracker, RefreshWearsEveryLineOfTheRow) {
  WearTracker w(4);
  w.on_refresh(7);
  EXPECT_EQ(w.touched_lines(), 4u);
  EXPECT_DOUBLE_EQ(w.total_wear(), 4 * kRefreshWearPerCell);
  EXPECT_DOUBLE_EQ(w.max_line_wear(), kRefreshWearPerCell);
}

TEST(WearTracker, DistinctRowsDistinctLines) {
  WearTracker w(8);
  w.on_write(1, 0, WriteClass::kResetOnly);
  w.on_write(2, 0, WriteClass::kResetOnly);
  EXPECT_EQ(w.touched_lines(), 2u);
  EXPECT_DOUBLE_EQ(w.mean_line_wear(), kResetOnlyWearPerCell);
}

TEST(WearTracker, ExplicitPulseInterface) {
  WearTracker w(8);
  w.on_write_pulses(1, 0, 0.25);
  w.on_write_pulses(1, 0, 0.25);
  EXPECT_DOUBLE_EQ(w.max_line_wear(), 0.5);
}

TEST(WearTracker, LifetimeScalesWithEnduranceAndRate) {
  WearTracker w(8);
  // 100 cycles of wear on the hottest line over 1 ms.
  for (int i = 0; i < 100; ++i) w.on_write(1, 0, WriteClass::kAlpha);
  const Tick elapsed = 1'000'000;  // 1 ms
  // rate = 100 cycles / 1e-3 s = 1e5 cycles/s; 1e8 endurance -> 1000 s.
  EXPECT_NEAR(w.lifetime_seconds(elapsed, 1e8), 1000.0, 1e-6);
  // Doubling endurance doubles lifetime.
  EXPECT_NEAR(w.lifetime_seconds(elapsed, 2e8), 2000.0, 1e-6);
  EXPECT_NEAR(w.lifetime_years(elapsed, 1e8), 1000.0 / (365.25 * 86400.0),
              1e-9);
}

TEST(WearTracker, AlphaHeavyArchitectureWearsFaster) {
  WearTracker wom(8), refreshed(8);
  // Plain WOM: alternating alpha/fast on a hot line.
  for (int i = 0; i < 100; ++i) {
    wom.on_write(0, 0, i % 2 == 0 ? WriteClass::kAlpha
                                  : WriteClass::kResetOnly);
  }
  // With refresh, writes stay fast but each cycle adds a row refresh.
  for (int i = 0; i < 100; ++i) {
    refreshed.on_write(0, 0, WriteClass::kResetOnly);
    if (i % 2 == 0) refreshed.on_refresh(0);
  }
  // The refresh variant trades demand-write wear for background wear; the
  // hot line ends up with comparable total cycling.
  EXPECT_NEAR(refreshed.max_line_wear(), wom.max_line_wear(), 26.0);
  EXPECT_GT(refreshed.total_wear(), wom.total_wear());
}

}  // namespace
}  // namespace wompcm

// Smoke sweep: every benchmark profile runs against every architecture on a
// short trace, and basic invariants hold. This is the broad-coverage net
// under the detailed per-module tests.
#include <gtest/gtest.h>

#include "sim/experiment.h"

namespace wompcm {
namespace {

struct Case {
  std::string benchmark;
  ArchKind kind;
};

std::vector<Case> all_cases() {
  std::vector<Case> cases;
  for (const WorkloadProfile& p : benchmark_profiles()) {
    for (const ArchKind kind :
         {ArchKind::kBaseline, ArchKind::kWomPcm, ArchKind::kRefreshWomPcm,
          ArchKind::kWcpcm}) {
      cases.push_back({p.name, kind});
    }
  }
  return cases;
}

class SweepSmoke : public ::testing::TestWithParam<Case> {};

TEST_P(SweepSmoke, RunsAndSatisfiesInvariants) {
  const Case& c = GetParam();
  SimConfig cfg = paper_config();
  cfg.arch.kind = c.kind;
  const auto profile = find_profile(c.benchmark);
  ASSERT_TRUE(profile.has_value());
  const SimResult r = run(
      {cfg, TraceSpec::profile(*profile, 3000), RunOptions::with_seed(123)});

  // Everything injected, everything finished, time moved forward.
  EXPECT_EQ(r.injected_reads + r.injected_writes, 3000u);
  EXPECT_GT(r.end_time, 0u);

  // Latencies are bounded below by physical service times.
  const PcmTiming t;
  if (r.stats.demand_read_latency.count() > 0) {
    EXPECT_GE(r.stats.demand_read_latency.min(),
              t.col_read_ns + t.burst_ns());
  }
  if (r.stats.demand_write_latency.count() > 0) {
    EXPECT_GE(r.stats.demand_write_latency.min(),
              t.burst_ns() + t.reset_ns);
  }

  // Histograms agree with the streaming stats.
  EXPECT_EQ(r.stats.read_latency_hist.total(),
            r.stats.demand_read_latency.count());
  EXPECT_EQ(r.stats.write_latency_hist.total(),
            r.stats.demand_write_latency.count());

  // Architecture-specific invariants.
  const auto& cnt = r.stats.counters;
  switch (c.kind) {
    case ArchKind::kBaseline:
      EXPECT_EQ(cnt.get("writes.fast"), 0u);
      EXPECT_EQ(r.refresh_commands, 0u);
      EXPECT_DOUBLE_EQ(r.capacity_overhead, 0.0);
      break;
    case ArchKind::kWomPcm:
      EXPECT_EQ(r.refresh_commands, 0u);
      EXPECT_GT(cnt.get("writes.alpha") + cnt.get("writes.fast"), 0u);
      EXPECT_DOUBLE_EQ(r.capacity_overhead, 0.5);
      break;
    case ArchKind::kRefreshWomPcm:
      EXPECT_GT(cnt.get("writes.alpha") + cnt.get("writes.fast"), 0u);
      break;
    case ArchKind::kWcpcm: {
      const auto hits = cnt.get("wcpcm.write_hits");
      const auto misses = cnt.get("wcpcm.write_misses");
      EXPECT_GT(hits + misses, 0u);
      EXPECT_EQ(misses, cnt.get("wcpcm.victims"));
      EXPECT_NEAR(r.capacity_overhead, 0.047, 0.001);
      break;
    }
    default:
      break;
  }

  // Wear and energy moved if anything was written.
  if (r.injected_writes > 0) {
    EXPECT_GT(r.energy_write_pj, 0.0);
    EXPECT_GT(r.max_line_wear, 0.0);
  }
}

std::string case_name(const ::testing::TestParamInfo<Case>& info) {
  std::string s = info.param.benchmark + "_" + to_string(info.param.kind);
  for (char& ch : s) {
    if (!isalnum(static_cast<unsigned char>(ch))) ch = '_';
  }
  return s;
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarksAllArchs, SweepSmoke,
                         ::testing::ValuesIn(all_cases()), case_name);

}  // namespace
}  // namespace wompcm

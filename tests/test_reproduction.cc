// Reproduction shape tests: the paper's qualitative results must hold on a
// reduced (fast) version of the evaluation matrix.
//
// Paper reference points (averages over 20 benchmarks): write latency
// normalized to conventional PCM — WOM-code PCM 0.799, PCM-refresh 0.451,
// WCPCM 0.528; read latency — 0.898 / 0.521 / 0.560. These tests run a
// 6-benchmark subset with shorter traces and assert orderings and coarse
// bands rather than exact values.
#include <gtest/gtest.h>

#include "sim/config_io.h"
#include "sim/experiment.h"

namespace wompcm {
namespace {

class ReproductionTest : public ::testing::Test {
 protected:
  static constexpr std::uint64_t kAccesses = 40000;
  static constexpr std::uint64_t kSeed = 42;

  static const std::vector<SweepRow>& sweep() {
    static const std::vector<SweepRow> rows = [] {
      std::vector<WorkloadProfile> profiles;
      for (const char* name : {"400.perlbench", "401.bzip2", "464.h264ref",
                               "462.libq", "qsort", "ocean"}) {
        profiles.push_back(*find_profile(name));
      }
      RunRequest req;
      req.config = paper_config();
      req.trace = TraceSpec::profile(WorkloadProfile{}, kAccesses);
      req.options.seed = kSeed;
      return run_sweep(req, paper_architectures(), profiles);
    }();
    return rows;
  }

  static std::vector<double> write_avg() {
    const auto norm = normalize(
        sweep(), [](const SimResult& r) { return r.avg_write_ns(); });
    return {column_mean(norm, 0), column_mean(norm, 1), column_mean(norm, 2),
            column_mean(norm, 3)};
  }

  static std::vector<double> read_avg() {
    const auto norm = normalize(
        sweep(), [](const SimResult& r) { return r.avg_read_ns(); });
    return {column_mean(norm, 0), column_mean(norm, 1), column_mean(norm, 2),
            column_mean(norm, 3)};
  }
};

TEST_F(ReproductionTest, EveryArchitectureImprovesWriteLatency) {
  const auto w = write_avg();
  EXPECT_DOUBLE_EQ(w[0], 1.0);          // baseline normalizes to itself
  EXPECT_LT(w[1], 0.95);                // WOM-code PCM
  EXPECT_LT(w[2], 0.95);                // PCM-refresh
  EXPECT_LT(w[3], 0.95);                // WCPCM
}

TEST_F(ReproductionTest, WriteLatencyOrderingMatchesPaper) {
  // Paper Fig. 5(a): refresh < wcpcm < wom-pcm < baseline. On this reduced
  // 6-benchmark / short-trace subset refresh and wcpcm can land within
  // noise of each other, so that pair gets a small tolerance; the full
  // 20-benchmark bench (fig5a_write_latency) shows the clear gap.
  const auto w = write_avg();
  EXPECT_LT(w[2], w[3] + 0.02);  // pcm-refresh ~beats wcpcm
  EXPECT_LT(w[3], w[1]);         // wcpcm beats plain wom-pcm
  EXPECT_LT(w[1], w[0]);         // wom-pcm beats conventional pcm
}

TEST_F(ReproductionTest, WriteLatencyBandsAreInPaperRange) {
  const auto w = write_avg();
  // Coarse bands around the paper's 0.799 / 0.451 / 0.528.
  EXPECT_GT(w[1], 0.55);
  EXPECT_LT(w[1], 0.92);
  EXPECT_GT(w[2], 0.30);
  EXPECT_LT(w[2], 0.65);
  EXPECT_GT(w[3], 0.32);
  EXPECT_LT(w[3], 0.72);
}

TEST_F(ReproductionTest, ReadLatencyImprovesToo) {
  // Paper Fig. 5(b): read latency follows write latency because reads
  // block behind in-flight writes.
  const auto r = read_avg();
  EXPECT_LT(r[1], 1.0);
  EXPECT_LT(r[2], 0.85);
  EXPECT_LT(r[3], 0.90);
  // Reads improve less than writes for the WOM architectures.
  const auto w = write_avg();
  EXPECT_GT(r[1], w[1]);
}

TEST_F(ReproductionTest, RefreshAndWcpcmLeadOnReads) {
  const auto r = read_avg();
  EXPECT_LT(r[2], r[1]);  // refresh beats plain wom on reads
  EXPECT_LT(r[3], r[1]);  // wcpcm beats plain wom on reads
}

TEST_F(ReproductionTest, H264refIsAmongTheBestWomBenchmarks) {
  // The paper's best WOM-code benchmark: its normalized write latency must
  // be in the best half of the subset.
  const auto norm = normalize(
      sweep(), [](const SimResult& r) { return r.avg_write_ns(); });
  double h264 = 1.0;
  std::vector<double> all;
  for (std::size_t i = 0; i < sweep().size(); ++i) {
    all.push_back(norm[i][1]);
    if (sweep()[i].benchmark == "464.h264ref") h264 = norm[i][1];
  }
  int better = 0;
  for (const double v : all) {
    if (v < h264) ++better;
  }
  EXPECT_LE(better, static_cast<int>(all.size()) / 2);
}

TEST_F(ReproductionTest, StreamingBenchmarkGainsLeast) {
  // libquantum streams with little line reuse: plain WOM-code PCM helps it
  // least within the subset.
  const auto norm = normalize(
      sweep(), [](const SimResult& r) { return r.avg_write_ns(); });
  double libq = 0.0;
  for (std::size_t i = 0; i < sweep().size(); ++i) {
    if (sweep()[i].benchmark == "462.libq") libq = norm[i][1];
  }
  for (std::size_t i = 0; i < sweep().size(); ++i) {
    EXPECT_LE(norm[i][1], libq + 1e-9) << sweep()[i].benchmark;
  }
}

TEST_F(ReproductionTest, WcpcmOverheadIs4Point7Percent) {
  for (const SweepRow& row : sweep()) {
    EXPECT_NEAR(row.results[3].capacity_overhead, 0.047, 0.001);
    EXPECT_NEAR(row.results[1].capacity_overhead, 0.5, 1e-9);
    EXPECT_DOUBLE_EQ(row.results[0].capacity_overhead, 0.0);
  }
}

TEST_F(ReproductionTest, RefreshArchitectureActuallyRefreshes) {
  for (const SweepRow& row : sweep()) {
    EXPECT_GT(row.results[2].refresh_commands, 0u) << row.benchmark;
    EXPECT_GT(row.results[2].refresh_rows, 0u) << row.benchmark;
    EXPECT_EQ(row.results[0].refresh_commands, 0u);
    EXPECT_EQ(row.results[1].refresh_commands, 0u);
  }
}

TEST_F(ReproductionTest, RefreshCutsAlphaWrites) {
  for (const SweepRow& row : sweep()) {
    const auto wom_alpha = row.results[1].stats.counters.get("writes.alpha");
    const auto ref_alpha = row.results[2].stats.counters.get("writes.alpha");
    EXPECT_LT(ref_alpha, wom_alpha) << row.benchmark;
  }
}

TEST(ReproductionFig6, HitRateDropsWithBanksPerRank) {
  // Fig. 6's associativity effect on two representative benchmarks.
  for (const char* name : {"401.bzip2", "ocean"}) {
    const auto p = *find_profile(name);
    double hit4 = 0, hit32 = 0;
    for (const unsigned banks : {4u, 32u}) {
      SimConfig cfg = paper_config();
      cfg.geom.banks_per_rank = banks;
      cfg.geom.rows_per_bank = 32768 * 32 / banks;
      cfg.arch.kind = ArchKind::kWcpcm;
      const SimResult r = run({cfg, TraceSpec::profile(p, 30000),
                               RunOptions::with_seed(42)});
      const double h =
          static_cast<double>(r.stats.counters.get("wcpcm.write_hits"));
      const double m =
          static_cast<double>(r.stats.counters.get("wcpcm.write_misses"));
      (banks == 4 ? hit4 : hit32) = h / (h + m);
    }
    EXPECT_GT(hit4, hit32) << name;
  }
}

// Golden-equivalence snapshot: the layered MemorySystem stack must produce
// bit-identical results to the recorded pre-refactor (fused single
// controller) run of the paper platform. Numbers below were dumped with
// %.17g / exact integers from the monolithic simulator immediately before
// the per-channel split; double literals round-trip exactly, so
// EXPECT_DOUBLE_EQ means bit-identical.
struct GoldenRun {
  const char* bench;
  Tick end_time;
  std::uint64_t injected_reads, injected_writes;
  std::uint64_t refresh_commands, refresh_rows;
  std::uint64_t read_count, read_min, read_max;
  double read_sum;
  std::uint64_t write_count, write_min, write_max;
  double write_sum;
  double energy_read_pj, energy_write_pj, energy_refresh_pj;
  double max_line_wear, mean_line_wear, lifetime_years;
  double row_hit_rate, max_bank_utilization;
  Tick banks_busy;
  std::uint64_t banks_ops, banks_hits, banks_pauses;
  std::uint64_t reads_forwarded, refresh_pauses, rat_insert, rat_stale_pop;
  std::uint64_t writes_alpha, writes_alpha_cold, writes_fast;
};

constexpr GoldenRun kGolden[] = {
    {"401.bzip2", 810153, 12395, 7605, 202, 569,
     9909, 17, 712, 463425.0,
     6091, 44, 697, 638556.0,
     18974208.0, 67765247.999990284, 3823680.0,
     119.0, 1.2148492423058896, 2.157327681243613e-05,
     0.8850586231085279, 0.19406704659490245,
     854899, 19958, 17664, 36,
     30, 36, 622, 20, 2256, 1453, 5349},
    {"ocean", 273547, 12892, 7108, 68, 434,
     10296, 17, 979, 760254.0,
     5704, 44, 1142, 912051.0,
     19782144.0, 74007590.399989754, 2916480.0,
     30.0, 0.68358227296593788, 2.8893937857547258e-05,
     0.80372241957272228, 0.24551174021283362,
     1096121, 19987, 16064, 27,
     3, 27, 559, 23, 4167, 3746, 2941},
};

TEST(GoldenEquivalence, PaperConfigIsBitIdenticalToPreRefactorSnapshot) {
  const SimConfig cfg =
      load_config_file(paper_config(), WOMPCM_REPO_DIR "/configs/paper.cfg");
  for (const GoldenRun& g : kGolden) {
    SCOPED_TRACE(g.bench);
    const SimResult r =
        run({cfg, TraceSpec::profile(*find_profile(g.bench), 20000),
             RunOptions::with_seed(42)});
    EXPECT_EQ(r.arch_name, "pcm-refresh[rs23-inv,wide-column]");
    EXPECT_EQ(r.end_time, g.end_time);
    EXPECT_EQ(r.injected_reads, g.injected_reads);
    EXPECT_EQ(r.injected_writes, g.injected_writes);
    EXPECT_EQ(r.deferred_injections, 0u);
    EXPECT_EQ(r.refresh_commands, g.refresh_commands);
    EXPECT_EQ(r.refresh_rows, g.refresh_rows);
    EXPECT_DOUBLE_EQ(r.capacity_overhead, 0.5);

    EXPECT_EQ(r.stats.demand_read_latency.count(), g.read_count);
    EXPECT_DOUBLE_EQ(r.stats.demand_read_latency.sum(), g.read_sum);
    EXPECT_EQ(r.stats.demand_read_latency.min(), g.read_min);
    EXPECT_EQ(r.stats.demand_read_latency.max(), g.read_max);
    EXPECT_EQ(r.stats.demand_write_latency.count(), g.write_count);
    EXPECT_DOUBLE_EQ(r.stats.demand_write_latency.sum(), g.write_sum);
    EXPECT_EQ(r.stats.demand_write_latency.min(), g.write_min);
    EXPECT_EQ(r.stats.demand_write_latency.max(), g.write_max);
    EXPECT_EQ(r.stats.internal_write_latency.count(), 0u);

    EXPECT_DOUBLE_EQ(r.energy_read_pj, g.energy_read_pj);
    EXPECT_DOUBLE_EQ(r.energy_write_pj, g.energy_write_pj);
    EXPECT_DOUBLE_EQ(r.energy_refresh_pj, g.energy_refresh_pj);
    EXPECT_DOUBLE_EQ(r.max_line_wear, g.max_line_wear);
    EXPECT_DOUBLE_EQ(r.mean_line_wear, g.mean_line_wear);
    EXPECT_DOUBLE_EQ(r.lifetime_years, g.lifetime_years);
    EXPECT_DOUBLE_EQ(r.row_hit_rate(), g.row_hit_rate);
    EXPECT_DOUBLE_EQ(r.max_bank_utilization(), g.max_bank_utilization);
    // Single channel, no WOM cache: the combined figures equal the
    // main-bank class and the cache class is empty.
    EXPECT_DOUBLE_EQ(r.row_hit_rate(SimResult::BankClass::kMain),
                     g.row_hit_rate);
    EXPECT_DOUBLE_EQ(r.row_hit_rate(SimResult::BankClass::kCache), 0.0);
    EXPECT_DOUBLE_EQ(
        r.max_bank_utilization(SimResult::BankClass::kCache), 0.0);

    Tick busy = 0;
    std::uint64_t ops = 0, hits = 0, pauses = 0;
    for (const auto& b : r.banks) {
      busy += b.busy_time;
      ops += b.ops;
      hits += b.row_hits;
      pauses += b.pauses;
    }
    EXPECT_EQ(r.banks.size(), 512u);
    EXPECT_EQ(busy, g.banks_busy);
    EXPECT_EQ(ops, g.banks_ops);
    EXPECT_EQ(hits, g.banks_hits);
    EXPECT_EQ(pauses, g.banks_pauses);

    const auto& c = r.stats.counters;
    EXPECT_EQ(c.get("ctrl.reads_forwarded"), g.reads_forwarded);
    EXPECT_EQ(c.get("ctrl.refresh_pauses"), g.refresh_pauses);
    EXPECT_EQ(c.get("rat.insert"), g.rat_insert);
    EXPECT_EQ(c.get("rat.stale_pop"), g.rat_stale_pop);
    EXPECT_EQ(c.get("refresh.rows"), g.refresh_rows);
    EXPECT_EQ(c.get("writes.alpha"), g.writes_alpha);
    EXPECT_EQ(c.get("writes.alpha.cold"), g.writes_alpha_cold);
    EXPECT_EQ(c.get("writes.fast"), g.writes_fast);

    // The metrics-registry collect() path carries the same scalars, and
    // the single channel's bus accounting matches total ops x one burst.
    EXPECT_EQ(r.metrics.counter("sim.end_time"), g.end_time);
    EXPECT_EQ(r.metrics.counter("refresh.commands"), g.refresh_commands);
    EXPECT_EQ(r.metrics.counter("ch0.refresh.rows"), g.refresh_rows);
    EXPECT_EQ(r.metrics.counter("bus.busy_ns"),
              g.banks_ops * cfg.timing.burst_ns());
    EXPECT_EQ(r.metrics.counter("ch0.bus_busy_ns"),
              r.metrics.counter("bus.busy_ns"));
  }
}

}  // namespace
}  // namespace wompcm

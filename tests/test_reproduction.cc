// Reproduction shape tests: the paper's qualitative results must hold on a
// reduced (fast) version of the evaluation matrix.
//
// Paper reference points (averages over 20 benchmarks): write latency
// normalized to conventional PCM — WOM-code PCM 0.799, PCM-refresh 0.451,
// WCPCM 0.528; read latency — 0.898 / 0.521 / 0.560. These tests run a
// 6-benchmark subset with shorter traces and assert orderings and coarse
// bands rather than exact values.
#include <gtest/gtest.h>

#include "sim/experiment.h"

namespace wompcm {
namespace {

class ReproductionTest : public ::testing::Test {
 protected:
  static constexpr std::uint64_t kAccesses = 40000;
  static constexpr std::uint64_t kSeed = 42;

  static const std::vector<SweepRow>& sweep() {
    static const std::vector<SweepRow> rows = [] {
      std::vector<WorkloadProfile> profiles;
      for (const char* name : {"400.perlbench", "401.bzip2", "464.h264ref",
                               "462.libq", "qsort", "ocean"}) {
        profiles.push_back(*find_profile(name));
      }
      return run_arch_sweep(paper_config(), paper_architectures(), profiles,
                            kAccesses, kSeed);
    }();
    return rows;
  }

  static std::vector<double> write_avg() {
    const auto norm = normalize(
        sweep(), [](const SimResult& r) { return r.avg_write_ns(); });
    return {column_mean(norm, 0), column_mean(norm, 1), column_mean(norm, 2),
            column_mean(norm, 3)};
  }

  static std::vector<double> read_avg() {
    const auto norm = normalize(
        sweep(), [](const SimResult& r) { return r.avg_read_ns(); });
    return {column_mean(norm, 0), column_mean(norm, 1), column_mean(norm, 2),
            column_mean(norm, 3)};
  }
};

TEST_F(ReproductionTest, EveryArchitectureImprovesWriteLatency) {
  const auto w = write_avg();
  EXPECT_DOUBLE_EQ(w[0], 1.0);          // baseline normalizes to itself
  EXPECT_LT(w[1], 0.95);                // WOM-code PCM
  EXPECT_LT(w[2], 0.95);                // PCM-refresh
  EXPECT_LT(w[3], 0.95);                // WCPCM
}

TEST_F(ReproductionTest, WriteLatencyOrderingMatchesPaper) {
  // Paper Fig. 5(a): refresh < wcpcm < wom-pcm < baseline. On this reduced
  // 6-benchmark / short-trace subset refresh and wcpcm can land within
  // noise of each other, so that pair gets a small tolerance; the full
  // 20-benchmark bench (fig5a_write_latency) shows the clear gap.
  const auto w = write_avg();
  EXPECT_LT(w[2], w[3] + 0.02);  // pcm-refresh ~beats wcpcm
  EXPECT_LT(w[3], w[1]);         // wcpcm beats plain wom-pcm
  EXPECT_LT(w[1], w[0]);         // wom-pcm beats conventional pcm
}

TEST_F(ReproductionTest, WriteLatencyBandsAreInPaperRange) {
  const auto w = write_avg();
  // Coarse bands around the paper's 0.799 / 0.451 / 0.528.
  EXPECT_GT(w[1], 0.55);
  EXPECT_LT(w[1], 0.92);
  EXPECT_GT(w[2], 0.30);
  EXPECT_LT(w[2], 0.65);
  EXPECT_GT(w[3], 0.32);
  EXPECT_LT(w[3], 0.72);
}

TEST_F(ReproductionTest, ReadLatencyImprovesToo) {
  // Paper Fig. 5(b): read latency follows write latency because reads
  // block behind in-flight writes.
  const auto r = read_avg();
  EXPECT_LT(r[1], 1.0);
  EXPECT_LT(r[2], 0.85);
  EXPECT_LT(r[3], 0.90);
  // Reads improve less than writes for the WOM architectures.
  const auto w = write_avg();
  EXPECT_GT(r[1], w[1]);
}

TEST_F(ReproductionTest, RefreshAndWcpcmLeadOnReads) {
  const auto r = read_avg();
  EXPECT_LT(r[2], r[1]);  // refresh beats plain wom on reads
  EXPECT_LT(r[3], r[1]);  // wcpcm beats plain wom on reads
}

TEST_F(ReproductionTest, H264refIsAmongTheBestWomBenchmarks) {
  // The paper's best WOM-code benchmark: its normalized write latency must
  // be in the best half of the subset.
  const auto norm = normalize(
      sweep(), [](const SimResult& r) { return r.avg_write_ns(); });
  double h264 = 1.0;
  std::vector<double> all;
  for (std::size_t i = 0; i < sweep().size(); ++i) {
    all.push_back(norm[i][1]);
    if (sweep()[i].benchmark == "464.h264ref") h264 = norm[i][1];
  }
  int better = 0;
  for (const double v : all) {
    if (v < h264) ++better;
  }
  EXPECT_LE(better, static_cast<int>(all.size()) / 2);
}

TEST_F(ReproductionTest, StreamingBenchmarkGainsLeast) {
  // libquantum streams with little line reuse: plain WOM-code PCM helps it
  // least within the subset.
  const auto norm = normalize(
      sweep(), [](const SimResult& r) { return r.avg_write_ns(); });
  double libq = 0.0;
  for (std::size_t i = 0; i < sweep().size(); ++i) {
    if (sweep()[i].benchmark == "462.libq") libq = norm[i][1];
  }
  for (std::size_t i = 0; i < sweep().size(); ++i) {
    EXPECT_LE(norm[i][1], libq + 1e-9) << sweep()[i].benchmark;
  }
}

TEST_F(ReproductionTest, WcpcmOverheadIs4Point7Percent) {
  for (const SweepRow& row : sweep()) {
    EXPECT_NEAR(row.results[3].capacity_overhead, 0.047, 0.001);
    EXPECT_NEAR(row.results[1].capacity_overhead, 0.5, 1e-9);
    EXPECT_DOUBLE_EQ(row.results[0].capacity_overhead, 0.0);
  }
}

TEST_F(ReproductionTest, RefreshArchitectureActuallyRefreshes) {
  for (const SweepRow& row : sweep()) {
    EXPECT_GT(row.results[2].refresh_commands, 0u) << row.benchmark;
    EXPECT_GT(row.results[2].refresh_rows, 0u) << row.benchmark;
    EXPECT_EQ(row.results[0].refresh_commands, 0u);
    EXPECT_EQ(row.results[1].refresh_commands, 0u);
  }
}

TEST_F(ReproductionTest, RefreshCutsAlphaWrites) {
  for (const SweepRow& row : sweep()) {
    const auto wom_alpha = row.results[1].stats.counters.get("writes.alpha");
    const auto ref_alpha = row.results[2].stats.counters.get("writes.alpha");
    EXPECT_LT(ref_alpha, wom_alpha) << row.benchmark;
  }
}

TEST(ReproductionFig6, HitRateDropsWithBanksPerRank) {
  // Fig. 6's associativity effect on two representative benchmarks.
  for (const char* name : {"401.bzip2", "ocean"}) {
    const auto p = *find_profile(name);
    double hit4 = 0, hit32 = 0;
    for (const unsigned banks : {4u, 32u}) {
      SimConfig cfg = paper_config();
      cfg.geom.banks_per_rank = banks;
      cfg.geom.rows_per_bank = 32768 * 32 / banks;
      cfg.arch.kind = ArchKind::kWcpcm;
      const SimResult r = run_benchmark(cfg, p, 30000, 42);
      const double h =
          static_cast<double>(r.stats.counters.get("wcpcm.write_hits"));
      const double m =
          static_cast<double>(r.stats.counters.get("wcpcm.write_misses"));
      (banks == 4 ? hit4 : hit32) = h / (h + m);
    }
    EXPECT_GT(hit4, hit32) << name;
  }
}

}  // namespace
}  // namespace wompcm

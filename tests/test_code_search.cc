// Tests for the brute-force WOM-code search.
#include <gtest/gtest.h>

#include "wom/code_search.h"

namespace wompcm {
namespace {

TEST(CodeSearch, FindsTheClassic2Bit2Write3WitCode) {
  CodeSearchParams p;
  p.data_bits = 2;
  p.wits = 3;
  p.writes = 2;
  const auto result = search_wom_code(p);
  ASSERT_TRUE(result.has_value());
  const WomCode& code = *result->code;
  EXPECT_EQ(code.data_bits(), 2u);
  EXPECT_EQ(code.wits(), 3u);
  EXPECT_EQ(code.max_writes(), 2u);
  // The found tables satisfy the full validator by construction.
  for (unsigned x = 0; x < 4; ++x) {
    const BitVec w1 = code.encode(x, 0, code.initial_state());
    EXPECT_EQ(code.decode(w1), x);
    for (unsigned y = 0; y < 4; ++y) {
      const BitVec w2 = code.encode(y, 1, w1);
      EXPECT_EQ(code.decode(w2), y);
      EXPECT_TRUE(w1.monotone_increasing_to(w2));
    }
  }
}

TEST(CodeSearch, FindsOneBitMultiWriteCodes) {
  // 1 bit, t writes needs at most 2t-1 wits (the parity construction), and
  // the search should find codes at that size.
  for (unsigned t : {2u, 3u}) {
    CodeSearchParams p;
    p.data_bits = 1;
    p.wits = 2 * t - 1;
    p.writes = t;
    const auto result = search_wom_code(p);
    ASSERT_TRUE(result.has_value()) << "t=" << t;
    EXPECT_EQ(result->code->max_writes(), t);
  }
}

TEST(CodeSearch, ProvesNo2Bit2WriteCodeIn2Wits) {
  // 2 wits cannot even represent 4 values injectively per generation twice.
  CodeSearchParams p;
  p.data_bits = 2;
  p.wits = 2;
  p.writes = 2;
  EXPECT_FALSE(search_wom_code(p).has_value());
}

TEST(CodeSearch, SingleWriteIsAlwaysPossibleWithEnoughWits) {
  CodeSearchParams p;
  p.data_bits = 2;
  p.wits = 2;
  p.writes = 1;
  const auto result = search_wom_code(p);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result->code->max_writes(), 1u);
}

TEST(CodeSearch, RespectsNodeBudget) {
  CodeSearchParams p;
  p.data_bits = 2;
  p.wits = 5;
  p.writes = 3;
  p.max_nodes = 1;  // immediately exhausted
  EXPECT_FALSE(search_wom_code(p).has_value());
}

TEST(CodeSearch, RejectsUnsupportedParameters) {
  CodeSearchParams p;
  p.data_bits = 0;
  EXPECT_FALSE(search_wom_code(p).has_value());
  p.data_bits = 5;  // v = 32: out of supported range
  EXPECT_FALSE(search_wom_code(p).has_value());
}

TEST(CodeSearch, ReportsNodeCount) {
  CodeSearchParams p;
  p.data_bits = 1;
  p.wits = 1;
  p.writes = 1;
  const auto result = search_wom_code(p);
  ASSERT_TRUE(result.has_value());
  EXPECT_GT(result->nodes, 0u);
}

}  // namespace
}  // namespace wompcm

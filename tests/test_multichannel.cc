// Multi-channel coverage: independent data buses, per-channel refresh
// scheduling, and end-to-end runs on a 2-channel geometry.
#include <gtest/gtest.h>

#include <memory>

#include "arch/arch.h"
#include "controller/controller.h"
#include "sim/experiment.h"

namespace wompcm {
namespace {

MemoryGeometry two_channel_geom() {
  MemoryGeometry g;
  g.channels = 2;
  g.ranks = 2;
  g.banks_per_rank = 2;
  g.rows_per_bank = 16;
  g.cols_per_row = 64;
  return g;
}

class MultiChannelTest : public ::testing::Test {
 protected:
  void SetUp() override {
    cfg_.geom = two_channel_geom();
    arch_ = make_architecture(ArchConfig{}, cfg_.geom, cfg_.timing);
    ctrl_ = std::make_unique<MemoryController>(cfg_, *arch_, stats_);
  }

  Transaction tx(std::uint64_t id, unsigned channel, unsigned rank,
                 unsigned bank, unsigned row, AccessType type, Tick arrival) {
    Transaction t;
    t.id = id;
    t.dec = DecodedAddr{channel, rank, bank, row, 0};
    t.type = type;
    t.arrival = arrival;
    return t;
  }

  void run_to_drain() {
    Tick now = 0;
    ctrl_->tick(now);
    for (;;) {
      const Tick t = ctrl_->next_event_after(now);
      if (t == kNeverTick) break;
      now = t;
      ctrl_->tick(now);
    }
  }

  ControllerConfig cfg_;
  SimStats stats_;
  std::unique_ptr<Architecture> arch_;
  std::unique_ptr<MemoryController> ctrl_;
};

TEST_F(MultiChannelTest, BusesAreIndependent) {
  // Two same-instant reads on different channels both issue at t = 0;
  // on one channel the second would wait for the 4 ns burst slot.
  ctrl_->enqueue(tx(1, 0, 0, 0, 1, AccessType::kRead, 0));
  ctrl_->enqueue(tx(2, 1, 0, 0, 1, AccessType::kRead, 0));
  run_to_drain();
  ASSERT_EQ(stats_.demand_read_latency.count(), 2u);
  EXPECT_EQ(stats_.demand_read_latency.min(), 44u);
  EXPECT_EQ(stats_.demand_read_latency.max(), 44u);
}

TEST_F(MultiChannelTest, SameChannelStillSerializesOnTheBus) {
  ctrl_->enqueue(tx(1, 0, 0, 0, 1, AccessType::kRead, 0));
  ctrl_->enqueue(tx(2, 0, 1, 1, 1, AccessType::kRead, 0));
  run_to_drain();
  EXPECT_EQ(stats_.demand_read_latency.min(), 44u);
  EXPECT_EQ(stats_.demand_read_latency.max(), 48u);  // +4 ns bus slot
}

TEST_F(MultiChannelTest, ChannelsAreDistinctResources) {
  AddressMapper mapper(cfg_.geom);
  DecodedAddr a{0, 1, 1, 3, 5};
  DecodedAddr b{1, 1, 1, 3, 5};
  EXPECT_NE(mapper.encode(a), mapper.encode(b));
  EXPECT_NE(mapper.flat_bank(a), mapper.flat_bank(b));
  EXPECT_EQ(mapper.decode(mapper.encode(b)).channel, 1u);
}

TEST_F(MultiChannelTest, RefreshCoversBothChannels) {
  cfg_ = ControllerConfig{};
  cfg_.geom = two_channel_geom();
  ArchConfig ac;
  ac.kind = ArchKind::kRefreshWomPcm;
  arch_ = make_architecture(ac, cfg_.geom, cfg_.timing);
  ctrl_ = std::make_unique<MemoryController>(cfg_, *arch_, stats_);
  // Drive one row to the limit on each channel.
  for (unsigned ch = 0; ch < 2; ++ch) {
    ctrl_->enqueue(tx(1 + ch * 2, ch, 0, 0, 3, AccessType::kWrite,
                      ch * 100));
    ctrl_->enqueue(tx(2 + ch * 2, ch, 0, 0, 3, AccessType::kWrite,
                      600 + ch * 100));
  }
  Tick now = 0;
  ctrl_->tick(now);
  for (;;) {
    const Tick t = ctrl_->next_event_after(now);
    if (t == kNeverTick || t > 20000) break;
    now = t;
    ctrl_->tick(now);
  }
  // Round-robin over channel*rank reaches both channels' pending rows.
  EXPECT_EQ(arch_->counters().get("refresh.rows"), 2u);
}

TEST(MultiChannelSim, EndToEndRun) {
  SimConfig cfg = paper_config();
  cfg.geom.channels = 2;
  cfg.geom.ranks = 8;  // keep total ranks comparable
  cfg.arch.kind = ArchKind::kRefreshWomPcm;
  const SimResult r = run_benchmark(cfg, *find_profile("401.bzip2"), 8000, 5);
  EXPECT_EQ(r.injected_reads + r.injected_writes, 8000u);
  EXPECT_GT(r.refresh_commands, 0u);
  EXPECT_GT(r.avg_write_ns(), 0.0);
}

}  // namespace
}  // namespace wompcm

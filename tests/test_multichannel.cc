// Multi-channel coverage through the MemorySystem facade: independent data
// buses, per-channel back-pressure and refresh scheduling, cross-channel
// independence, and end-to-end runs on a 2-channel geometry.
#include <gtest/gtest.h>

#include <memory>

#include "arch/arch.h"
#include "sim/experiment.h"
#include "sim/memory_system.h"

namespace wompcm {
namespace {

MemoryGeometry two_channel_geom() {
  MemoryGeometry g;
  g.channels = 2;
  g.ranks = 2;
  g.banks_per_rank = 2;
  g.rows_per_bank = 16;
  g.cols_per_row = 64;
  return g;
}

class MultiChannelTest : public ::testing::Test {
 protected:
  void SetUp() override { build(); }

  void build(ArchKind kind = ArchKind::kBaseline) {
    cfg_ = MemorySystemConfig{};
    cfg_.geom = two_channel_geom();
    stats_ = SimStats{};
    ArchConfig ac;
    ac.kind = kind;
    arch_ = make_architecture(ac, cfg_.geom, cfg_.timing);
    mem_ = std::make_unique<MemorySystem>(cfg_, *arch_, stats_);
  }

  Transaction tx(std::uint64_t id, unsigned channel, unsigned rank,
                 unsigned bank, unsigned row, AccessType type, Tick arrival) {
    Transaction t;
    t.id = id;
    t.dec = DecodedAddr{channel, rank, bank, row, 0};
    t.type = type;
    t.arrival = arrival;
    return t;
  }

  void run_to_drain(Tick limit = kNeverTick) {
    Tick now = 0;
    mem_->tick(now);
    for (;;) {
      const Tick t = mem_->next_event_after(now);
      if (t == kNeverTick || t > limit) break;
      now = t;
      mem_->tick(now);
    }
  }

  MemorySystemConfig cfg_;
  SimStats stats_;
  std::unique_ptr<Architecture> arch_;
  std::unique_ptr<MemorySystem> mem_;
};

TEST_F(MultiChannelTest, BusesAreIndependent) {
  // Two same-instant reads on different channels both issue at t = 0;
  // on one channel the second would wait for the 4 ns burst slot.
  mem_->enqueue(tx(1, 0, 0, 0, 1, AccessType::kRead, 0));
  mem_->enqueue(tx(2, 1, 0, 0, 1, AccessType::kRead, 0));
  run_to_drain();
  ASSERT_EQ(stats_.demand_read_latency.count(), 2u);
  EXPECT_EQ(stats_.demand_read_latency.min(), 44u);
  EXPECT_EQ(stats_.demand_read_latency.max(), 44u);
}

TEST_F(MultiChannelTest, SameChannelStillSerializesOnTheBus) {
  mem_->enqueue(tx(1, 0, 0, 0, 1, AccessType::kRead, 0));
  mem_->enqueue(tx(2, 0, 1, 1, 1, AccessType::kRead, 0));
  run_to_drain();
  EXPECT_EQ(stats_.demand_read_latency.min(), 44u);
  EXPECT_EQ(stats_.demand_read_latency.max(), 48u);  // +4 ns bus slot
}

TEST_F(MultiChannelTest, ChannelsAreDistinctResources) {
  AddressMapper mapper(cfg_.geom);
  DecodedAddr a{0, 1, 1, 3, 5};
  DecodedAddr b{1, 1, 1, 3, 5};
  EXPECT_NE(mapper.encode(a), mapper.encode(b));
  EXPECT_NE(mapper.flat_bank(a), mapper.flat_bank(b));
  EXPECT_EQ(mapper.decode(mapper.encode(b)).channel, 1u);
}

TEST_F(MultiChannelTest, ControllersOwnOnlyTheirChannelsBanks) {
  // 2 channels x 2 ranks x 2 banks = 8 main banks, 4 per controller.
  EXPECT_EQ(mem_->num_channels(), 2u);
  EXPECT_EQ(mem_->channel(0).banks().size(), 4u);
  EXPECT_EQ(mem_->channel(1).banks().size(), 4u);
  // The facade re-assembles them in global-resource order.
  EXPECT_EQ(mem_->banks().size(), 8u);
}

TEST_F(MultiChannelTest, SaturatedChannelDoesNotBackpressureIdleChannel) {
  // Fill channel 0 to its per-channel capacity with same-bank writes.
  cfg_.queue_capacity = 4;
  mem_ = std::make_unique<MemorySystem>(cfg_, *arch_, stats_);
  for (std::uint64_t i = 0; i < 4; ++i) {
    ASSERT_TRUE(mem_->can_accept(DecodedAddr{0, 0, 0, 1, 0}));
    mem_->enqueue(tx(i + 1, 0, 0, 0, 1, AccessType::kWrite, 0));
  }
  // Channel 0 is saturated; channel 1 still accepts.
  EXPECT_FALSE(mem_->can_accept(DecodedAddr{0, 0, 0, 1, 0}));
  EXPECT_TRUE(mem_->can_accept(DecodedAddr{1, 0, 0, 1, 0}));

  // A read on the idle channel completes at its natural (unloaded)
  // latency, undelayed by the saturated sibling.
  mem_->enqueue(tx(100, 1, 0, 0, 1, AccessType::kRead, 0));
  run_to_drain();
  ASSERT_EQ(stats_.demand_read_latency.count(), 1u);
  EXPECT_EQ(stats_.demand_read_latency.min(), 44u);  // 27 + 13 + 4, no queue
}

TEST_F(MultiChannelTest, PerChannelBusBusyTimesSumToGlobalFigure) {
  // Load both channels; every issued access holds its channel's bus for
  // one 4 ns burst, so the per-channel busy times must sum to the figure
  // the old single fused controller reported: total issued ops x burst.
  for (std::uint64_t i = 0; i < 6; ++i) {
    mem_->enqueue(tx(2 * i + 1, 0, i % 2, (i / 2) % 2, 1 + (i % 3),
                     i % 2 == 0 ? AccessType::kRead : AccessType::kWrite,
                     10 * i));
    mem_->enqueue(tx(2 * i + 2, 1, (i + 1) % 2, i % 2, 1 + (i % 3),
                     i % 2 == 0 ? AccessType::kWrite : AccessType::kRead,
                     10 * i));
  }
  run_to_drain();
  std::uint64_t ops = 0;
  for (const auto& s : mem_->banks()) ops += s.bank->ops();
  const Tick global_figure = ops * cfg_.timing.burst_ns();
  EXPECT_GT(global_figure, 0u);
  EXPECT_EQ(mem_->channel(0).bus_busy_time() + mem_->channel(1).bus_busy_time(),
            global_figure);
  // Both channels actually carried traffic.
  EXPECT_GT(mem_->channel(0).bus_busy_time(), 0u);
  EXPECT_GT(mem_->channel(1).bus_busy_time(), 0u);
}

TEST_F(MultiChannelTest, PerChannelMetricsPublished) {
  mem_->enqueue(tx(1, 0, 0, 0, 1, AccessType::kRead, 0));
  mem_->enqueue(tx(2, 1, 0, 0, 1, AccessType::kRead, 0));
  run_to_drain();
  MetricsRegistry reg;
  mem_->publish_metrics(reg);
  EXPECT_EQ(reg.counter("ch0.bus_busy_ns"), 4u);
  EXPECT_EQ(reg.counter("ch1.bus_busy_ns"), 4u);
  EXPECT_EQ(reg.counter("bus.busy_ns"), 8u);
  EXPECT_EQ(reg.counter("ch0.max_queue_depth"), 1u);
  EXPECT_EQ(reg.counter("sim.end_time"), 44u);
}

TEST_F(MultiChannelTest, RefreshCoversBothChannels) {
  build(ArchKind::kRefreshWomPcm);
  // Drive one row to the limit on each channel.
  for (unsigned ch = 0; ch < 2; ++ch) {
    mem_->enqueue(tx(1 + ch * 2, ch, 0, 0, 3, AccessType::kWrite, ch * 100));
    mem_->enqueue(
        tx(2 + ch * 2, ch, 0, 0, 3, AccessType::kWrite, 600 + ch * 100));
  }
  run_to_drain(20000);
  // Each channel's refresh engine reaches its own pending row.
  EXPECT_EQ(arch_->counters().get("refresh.rows"), 2u);
  EXPECT_GE(mem_->channel(0).refresh_engine().commands(), 1u);
  EXPECT_GE(mem_->channel(1).refresh_engine().commands(), 1u);
}

TEST(MultiChannelSim, EndToEndRun) {
  SimConfig cfg = paper_config();
  cfg.geom.channels = 2;
  cfg.geom.ranks = 8;  // keep total ranks comparable
  cfg.arch.kind = ArchKind::kRefreshWomPcm;
  const SimResult r =
      run({cfg, TraceSpec::profile(*find_profile("401.bzip2"), 8000),
           RunOptions::with_seed(5)});
  EXPECT_EQ(r.injected_reads + r.injected_writes, 8000u);
  EXPECT_GT(r.refresh_commands, 0u);
  EXPECT_GT(r.avg_write_ns(), 0.0);
  // Per-channel breakdowns surface in the collected metrics.
  EXPECT_GT(r.metrics.counter("ch0.bus_busy_ns"), 0u);
  EXPECT_GT(r.metrics.counter("ch1.bus_busy_ns"), 0u);
  EXPECT_EQ(r.metrics.counter("ch0.bus_busy_ns") +
                r.metrics.counter("ch1.bus_busy_ns"),
            r.metrics.counter("bus.busy_ns"));
}

}  // namespace
}  // namespace wompcm

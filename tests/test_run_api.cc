// The unified run-entry API (sim/run.h): RunRequest/TraceSpec semantics,
// equivalence with the core engine (Simulator / per-cell runs), and the
// womcode.h umbrella header (this file deliberately includes only it).
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "womcode.h"

namespace wompcm {
namespace {

SimConfig small_config() {
  SimConfig cfg;
  cfg.geom.channels = 1;
  cfg.geom.ranks = 2;
  cfg.geom.banks_per_rank = 4;
  cfg.geom.rows_per_bank = 128;
  cfg.geom.cols_per_row = 128;
  return cfg;
}

void expect_identical(const SimResult& a, const SimResult& b) {
  EXPECT_EQ(a.arch_name, b.arch_name);
  EXPECT_EQ(a.end_time, b.end_time);
  EXPECT_EQ(a.injected_reads, b.injected_reads);
  EXPECT_EQ(a.injected_writes, b.injected_writes);
  EXPECT_EQ(a.stats.counters.all(), b.stats.counters.all());
  EXPECT_EQ(a.stats.demand_write_latency.sum(),
            b.stats.demand_write_latency.sum());
  EXPECT_EQ(a.stats.demand_read_latency.sum(),
            b.stats.demand_read_latency.sum());
}

TEST(TraceSpec, FactoriesDescribeTheSource) {
  const auto bench = TraceSpec::benchmark("401.bzip2", 5000);
  EXPECT_EQ(bench.kind(), TraceSpec::Kind::kBenchmark);
  EXPECT_EQ(bench.name(), "401.bzip2");
  EXPECT_EQ(bench.accesses(), 5000u);

  const auto prof = TraceSpec::profile(*find_profile("qsort"), 100);
  EXPECT_EQ(prof.kind(), TraceSpec::Kind::kProfile);
  EXPECT_EQ(prof.name(), "qsort");

  const auto file = TraceSpec::file("/tmp/some.trace");
  EXPECT_EQ(file.kind(), TraceSpec::Kind::kFile);
  EXPECT_EQ(file.accesses(), 0u);
}

TEST(TraceSpec, MixedSeedFoldsTheName) {
  const auto a = TraceSpec::benchmark("water-ns", 100);
  const auto b = TraceSpec::benchmark("water-sp", 100);
  EXPECT_NE(a.mixed_seed(7), b.mixed_seed(7));
  EXPECT_EQ(a.mixed_seed(7), a.mixed_seed(7));
  // A recorded file has nothing to mix: the seed passes through untouched
  // (and open() never consults it).
  const auto f = TraceSpec::file("x.trace");
  EXPECT_EQ(f.mixed_seed(7), 7u);
  EXPECT_EQ(f.mixed_seed(8), 8u);
}

TEST(RunApi, MatchesDirectSimulatorBitForBit) {
  // run() is trace opening + seed mixing + warmup resolution around the
  // core engine: with warmup pinned, it must reproduce a raw Simulator
  // over the identically-seeded source bit for bit.
  SimConfig cfg = small_config();
  cfg.warmup_accesses = 800;
  const auto spec = TraceSpec::profile(*find_profile("456.hmmer"), 4000);
  const auto src = spec.open(cfg.geom, /*seed=*/9);  // mixes internally
  Simulator sim(cfg);
  const SimResult direct = sim.run(*src);
  const SimResult unified = run({cfg, spec, RunOptions::with_seed(9)});
  expect_identical(direct, unified);
}

TEST(RunApi, BenchmarkByNameMatchesProfileSpec) {
  const SimConfig cfg = small_config();
  const SimResult by_name = run({cfg, TraceSpec::benchmark("qsort", 3000),
                                 RunOptions::with_seed(5)});
  const SimResult by_profile =
      run({cfg, TraceSpec::profile(*find_profile("qsort"), 3000),
           RunOptions::with_seed(5)});
  expect_identical(by_name, by_profile);
}

TEST(RunApi, UnknownBenchmarkThrowsWithTheName) {
  try {
    run({small_config(), TraceSpec::benchmark("no-such-bench", 100),
         RunOptions::with_seed(1)});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("no-such-bench"), std::string::npos);
  }
}

TEST(RunApi, WarmupOptionOverridesConfig) {
  SimConfig cfg = small_config();
  cfg.warmup_accesses = 0;
  const auto trace = TraceSpec::benchmark("qsort", 4000);
  RunOptions warm = RunOptions::with_seed(5);
  warm.warmup = 2000;
  const SimResult none = run({cfg, trace, RunOptions::with_seed(5)});
  const SimResult half = run({cfg, trace, warm});
  // Warmup discards latency samples but not simulated work.
  EXPECT_EQ(none.end_time, half.end_time);
  EXPECT_GT(none.stats.demand_write_latency.count(),
            half.stats.demand_write_latency.count());
}

TEST(RunApi, OversizedWarmupThrows) {
  RunOptions opts = RunOptions::with_seed(5);
  opts.warmup = 100;
  EXPECT_THROW(
      run({small_config(), TraceSpec::benchmark("qsort", 100), opts}),
      std::invalid_argument);
}

TEST(RunApi, ScanModeOverrideIsObservationallyIdentical) {
  SimConfig cfg = small_config();
  cfg.arch.kind = ArchKind::kRefreshWomPcm;
  const auto trace = TraceSpec::benchmark("464.h264ref", 4000);
  RunOptions indexed = RunOptions::with_seed(3);
  indexed.scan_mode = ScanMode::kIndexed;
  RunOptions reference = RunOptions::with_seed(3);
  reference.scan_mode = ScanMode::kReference;
  expect_identical(run({cfg, trace, indexed}), run({cfg, trace, reference}));
}

TEST(RunApi, FileSpecReplaysTheRecordedStream) {
  const SimConfig cfg = small_config();
  const auto spec = TraceSpec::benchmark("mad", 2000);
  // Record exactly the stream the synthetic spec would produce...
  const std::string path = testing::TempDir() + "run_api_replay.trace";
  {
    const auto src = spec.open(cfg.geom, /*seed=*/11);  // mixes internally
    TraceWriter writer(path, TraceWriter::Format::kBinary);
    while (const auto rec = src->next()) writer.write(*rec);
  }
  // ...and the file-backed run reproduces the synthetic run. Warmup is
  // pinned because a file spec reports no length to derive "auto" from.
  SimConfig pinned = cfg;
  pinned.warmup_accesses = 0;
  const SimResult synth =
      run({pinned, spec, RunOptions::with_seed(11)});
  const SimResult replay = run({pinned, TraceSpec::file(path)});
  expect_identical(synth, replay);
  std::remove(path.c_str());
}

TEST(RunApi, MissingTraceFileThrows) {
  EXPECT_THROW(
      run({small_config(), TraceSpec::file("/nonexistent/nope.trace")}),
      std::runtime_error);
}

TEST(RunSweep, MatchesPerCellRuns) {
  // A sweep is nothing but independent cells: each (arch, benchmark) cell
  // must equal a standalone run() of that configuration.
  const SimConfig base = small_config();
  const std::vector<ArchConfig> archs = paper_architectures();
  const std::vector<WorkloadProfile> profiles = {*find_profile("qsort"),
                                                 *find_profile("mad")};
  RunOptions opts = RunOptions::with_seed(4);
  opts.jobs = ParallelPolicy::serial();
  const auto rows = run_sweep(
      {base, TraceSpec::profile(WorkloadProfile{}, 3000), opts}, archs,
      profiles);
  ASSERT_EQ(rows.size(), profiles.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(rows[i].benchmark, profiles[i].name);
    ASSERT_EQ(rows[i].results.size(), archs.size());
    for (std::size_t j = 0; j < archs.size(); ++j) {
      SimConfig cfg = base;
      cfg.arch = archs[j];
      const SimResult cell =
          run({cfg, TraceSpec::profile(profiles[i], 3000),
               RunOptions::with_seed(4)});
      expect_identical(rows[i].results[j], cell);
    }
  }
}

TEST(RunSweep, ParallelAgreesWithSerial) {
  const SimConfig base = small_config();
  const std::vector<ArchConfig> archs = {ArchConfig{},
                                         paper_architectures()[1]};
  const std::vector<WorkloadProfile> profiles = {*find_profile("qsort"),
                                                 *find_profile("FFT.mi")};
  RunOptions serial = RunOptions::with_seed(6);
  serial.jobs = ParallelPolicy::serial();
  RunOptions parallel = RunOptions::with_seed(6);
  parallel.jobs = ParallelPolicy::with_jobs(4);
  const auto trace = TraceSpec::profile(WorkloadProfile{}, 2500);
  const auto a = run_sweep({base, trace, serial}, archs, profiles);
  const auto b = run_sweep({base, trace, parallel}, archs, profiles);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (std::size_t j = 0; j < a[i].results.size(); ++j) {
      expect_identical(a[i].results[j], b[i].results[j]);
    }
  }
}

TEST(RunSweep, RejectsFileTraces) {
  EXPECT_THROW(run_sweep({small_config(), TraceSpec::file("x.trace"),
                          RunOptions::with_seed(1)},
                         paper_architectures(), {*find_profile("qsort")}),
               std::invalid_argument);
}

TEST(RunSweep, FaultySweepIsReproducible) {
  SimConfig base = small_config();
  base.fault.enabled = true;
  base.fault.seed = 7;
  base.fault.endurance = 50.0;
  base.fault.initial_wear = 0.8;
  base.fault.spare_rows = 4;
  const std::vector<ArchConfig> archs = paper_architectures();
  const std::vector<WorkloadProfile> profiles = {*find_profile("qsort")};
  RunOptions serial = RunOptions::with_seed(2);
  serial.jobs = ParallelPolicy::serial();
  RunOptions parallel = RunOptions::with_seed(2);
  parallel.jobs = ParallelPolicy::with_jobs(4);
  const auto trace = TraceSpec::profile(WorkloadProfile{}, 3000);
  const auto a = run_sweep({base, trace, serial}, archs, profiles);
  const auto b = run_sweep({base, trace, parallel}, archs, profiles);
  bool any_fault = false;
  for (std::size_t j = 0; j < a[0].results.size(); ++j) {
    expect_identical(a[0].results[j], b[0].results[j]);
    EXPECT_EQ(a[0].results[j].fault_injected, b[0].results[j].fault_injected);
    any_fault |= a[0].results[j].fault_injected > 0;
  }
  EXPECT_TRUE(any_fault);
}

}  // namespace
}  // namespace wompcm

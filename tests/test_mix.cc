// Tests of the multi-programmed trace mixer.
#include <gtest/gtest.h>

#include "trace/mix.h"
#include "trace/profiles.h"
#include "trace/synthetic.h"

namespace wompcm {
namespace {

std::unique_ptr<TraceSource> vec(std::vector<TraceRecord> r) {
  return std::make_unique<VectorTraceSource>(std::move(r));
}

TEST(MixTrace, RejectsEmptyOrNull) {
  EXPECT_THROW(MixTraceSource({}), std::invalid_argument);
  std::vector<std::unique_ptr<TraceSource>> v;
  v.push_back(nullptr);
  EXPECT_THROW(MixTraceSource(std::move(v)), std::invalid_argument);
}

TEST(MixTrace, SingleSourcePassesThrough) {
  std::vector<TraceRecord> records = {{0, AccessType::kRead, 0x40},
                                      {10, AccessType::kWrite, 0x80},
                                      {5, AccessType::kRead, 0xc0}};
  std::vector<std::unique_ptr<TraceSource>> v;
  v.push_back(vec(records));
  MixTraceSource mix(std::move(v));
  for (const TraceRecord& e : records) {
    const auto got = mix.next();
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->gap, e.gap);
    EXPECT_EQ(got->addr, e.addr);
    EXPECT_EQ(got->type, e.type);
  }
  EXPECT_FALSE(mix.next().has_value());
}

TEST(MixTrace, MergesByAbsoluteTime) {
  // Source A arrives at t = 0, 100, 200; source B at t = 50, 150.
  std::vector<std::unique_ptr<TraceSource>> v;
  v.push_back(vec({{0, AccessType::kRead, 0xa0},
                   {100, AccessType::kRead, 0xa1},
                   {100, AccessType::kRead, 0xa2}}));
  v.push_back(vec({{50, AccessType::kWrite, 0xb0},
                   {100, AccessType::kWrite, 0xb1}}));
  MixTraceSource mix(std::move(v));

  const Addr expect_addr[] = {0xa0, 0xb0, 0xa1, 0xb1, 0xa2};
  const Tick expect_gap[] = {0, 50, 50, 50, 50};
  for (int i = 0; i < 5; ++i) {
    const auto got = mix.next();
    ASSERT_TRUE(got.has_value()) << i;
    EXPECT_EQ(got->addr, expect_addr[i]) << i;
    EXPECT_EQ(got->gap, expect_gap[i]) << i;
  }
  EXPECT_FALSE(mix.next().has_value());
  EXPECT_EQ(mix.contributed()[0], 3u);
  EXPECT_EQ(mix.contributed()[1], 2u);
}

TEST(MixTrace, TiesBreakByComponentOrder) {
  std::vector<std::unique_ptr<TraceSource>> v;
  v.push_back(vec({{10, AccessType::kRead, 0xa0}}));
  v.push_back(vec({{10, AccessType::kRead, 0xb0}}));
  MixTraceSource mix(std::move(v));
  EXPECT_EQ(mix.next()->addr, 0xa0u);
  EXPECT_EQ(mix.next()->addr, 0xb0u);
}

TEST(MixTrace, GapsReconstructAbsoluteTimeline) {
  // The sum of emitted gaps equals the latest component arrival.
  std::vector<std::unique_ptr<TraceSource>> v;
  v.push_back(vec({{7, AccessType::kRead, 1}, {20, AccessType::kRead, 2}}));
  v.push_back(vec({{13, AccessType::kRead, 3}, {40, AccessType::kRead, 4}}));
  MixTraceSource mix(std::move(v));
  Tick total = 0;
  while (const auto r = mix.next()) total += r->gap;
  EXPECT_EQ(total, 53u);  // source B: 13 + 40
}

TEST(MixTrace, MixesSyntheticBenchmarks) {
  const MemoryGeometry geom;
  std::vector<std::unique_ptr<TraceSource>> v;
  for (const char* name : {"401.bzip2", "ocean"}) {
    v.push_back(std::make_unique<SyntheticTraceSource>(*find_profile(name),
                                                       geom, 5, 2000));
  }
  MixTraceSource mix(std::move(v));
  std::uint64_t n = 0;
  Tick prev_abs = 0, abs = 0;
  while (const auto r = mix.next()) {
    abs += r->gap;
    EXPECT_GE(abs, prev_abs);  // non-decreasing arrivals
    prev_abs = abs;
    ++n;
  }
  EXPECT_EQ(n, 4000u);
  EXPECT_EQ(mix.contributed()[0], 2000u);
  EXPECT_EQ(mix.contributed()[1], 2000u);
}

}  // namespace
}  // namespace wompcm

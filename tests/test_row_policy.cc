// Tests of the row-buffer policy knob.
#include <gtest/gtest.h>

#include <memory>

#include "arch/arch.h"
#include "controller/controller.h"

namespace wompcm {
namespace {

MemoryGeometry small_geom() {
  MemoryGeometry g;
  g.channels = 1;
  g.ranks = 2;
  g.banks_per_rank = 2;
  g.rows_per_bank = 16;
  g.cols_per_row = 64;
  return g;
}

class RowPolicyTest : public ::testing::TestWithParam<RowPolicy> {
 protected:
  void SetUp() override {
    cfg_.geom = small_geom();
    cfg_.row_policy = GetParam();
    arch_ = make_architecture(ArchConfig{}, cfg_.geom, cfg_.timing);
    ctrl_ = std::make_unique<MemoryController>(cfg_, *arch_, stats_);
  }

  void run_to_drain() {
    Tick now = 0;
    ctrl_->tick(now);
    for (;;) {
      const Tick t = ctrl_->next_event_after(now);
      if (t == kNeverTick) break;
      now = t;
      ctrl_->tick(now);
    }
  }

  Transaction tx(std::uint64_t id, unsigned row, unsigned col, Tick arrival) {
    Transaction t;
    t.id = id;
    t.dec = DecodedAddr{0, 0, 0, row, col};
    t.type = AccessType::kRead;
    t.arrival = arrival;
    return t;
  }

  ControllerConfig cfg_;
  SimStats stats_;
  std::unique_ptr<Architecture> arch_;
  std::unique_ptr<MemoryController> ctrl_;
};

TEST_P(RowPolicyTest, BackToBackSameRowReads) {
  ctrl_->enqueue(tx(1, 3, 0, 0));
  ctrl_->enqueue(tx(2, 3, 1, 0));
  run_to_drain();
  ASSERT_EQ(stats_.demand_read_latency.count(), 2u);
  if (GetParam() == RowPolicy::kOpen) {
    // Second read row-hits: 44 then 44 + 17.
    EXPECT_EQ(stats_.demand_read_latency.max(), 61u);
    EXPECT_EQ(ctrl_->banks()[0].row_hits(), 1u);
  } else {
    // Closed-page pays activation both times: 44 then 44 + 44.
    EXPECT_EQ(stats_.demand_read_latency.max(), 88u);
    EXPECT_EQ(ctrl_->banks()[0].row_hits(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(Policies, RowPolicyTest,
                         ::testing::Values(RowPolicy::kOpen,
                                           RowPolicy::kClosed));

TEST(RowPolicy, ToString) {
  EXPECT_STREQ(to_string(RowPolicy::kOpen), "open-page");
  EXPECT_STREQ(to_string(RowPolicy::kClosed), "closed-page");
}

}  // namespace
}  // namespace wompcm

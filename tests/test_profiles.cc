// Tests of the 20-benchmark profile catalogue.
#include <gtest/gtest.h>

#include <set>

#include "trace/profiles.h"

namespace wompcm {
namespace {

TEST(Profiles, ExactlyTwentyBenchmarks) {
  EXPECT_EQ(benchmark_profiles().size(), 20u);
}

TEST(Profiles, PaperSuiteComposition) {
  // 5 SPEC integer, 5 SPEC floating point, 5 MiBench, 5 SPLASH-2.
  EXPECT_EQ(suite_profiles("spec-int").size(), 5u);
  EXPECT_EQ(suite_profiles("spec-fp").size(), 5u);
  EXPECT_EQ(suite_profiles("mibench").size(), 5u);
  EXPECT_EQ(suite_profiles("splash2").size(), 5u);
  EXPECT_TRUE(suite_profiles("no-such-suite").empty());
}

TEST(Profiles, AllValidAndUniqueNames) {
  std::set<std::string> names;
  for (const WorkloadProfile& p : benchmark_profiles()) {
    std::string why;
    EXPECT_TRUE(p.valid(&why)) << p.name << ": " << why;
    EXPECT_TRUE(names.insert(p.name).second) << "duplicate " << p.name;
  }
}

TEST(Profiles, PaperBenchmarksPresent) {
  for (const char* name :
       {"400.perlbench", "401.bzip2", "456.hmmer", "462.libq", "464.h264ref",
        "410.bwaves", "436.cactusADM", "465.tonto", "470.lbm", "482.sphinx3",
        "qsort", "mad", "FFT.mi", "typeset", "stringsearch", "ocean",
        "water-ns", "water-sp", "raytrace", "LU-ncb"}) {
    EXPECT_TRUE(find_profile(name).has_value()) << name;
  }
  EXPECT_FALSE(find_profile("429.mcf").has_value());
}

TEST(Profiles, H264refIsTheMostWriteLocalBenchmark) {
  // The paper reports 464.h264ref as the best WOM-code benchmark; its
  // profile must have the highest rewrite locality.
  const auto h264 = *find_profile("464.h264ref");
  for (const WorkloadProfile& p : benchmark_profiles()) {
    EXPECT_LE(p.rewrite_frac, h264.rewrite_frac) << p.name;
  }
}

TEST(Profiles, MiBenchIsIdleHeavy) {
  // Embedded workloads have the long idle gaps PCM-refresh exploits.
  double min_mibench_idle = 1e18;
  double max_other_idle = 0;
  for (const WorkloadProfile& p : benchmark_profiles()) {
    const double idle = static_cast<double>(p.idle_gap_mean_ns);
    if (p.suite == "mibench") {
      min_mibench_idle = std::min(min_mibench_idle, idle);
    } else {
      max_other_idle = std::max(max_other_idle, idle);
    }
  }
  EXPECT_GT(min_mibench_idle, max_other_idle);
}

TEST(Profiles, Splash2IsTheMostIntenseSuite) {
  double max_splash_idle = 0;
  for (const WorkloadProfile& p : suite_profiles("splash2")) {
    max_splash_idle =
        std::max(max_splash_idle, static_cast<double>(p.idle_gap_mean_ns));
  }
  for (const WorkloadProfile& p : suite_profiles("mibench")) {
    EXPECT_GT(static_cast<double>(p.idle_gap_mean_ns), max_splash_idle)
        << p.name;
  }
}

TEST(Profiles, StreamingBenchmarksHaveLowReuse) {
  // libquantum and lbm are the classic streaming workloads.
  const auto libq = *find_profile("462.libq");
  const auto lbm = *find_profile("470.lbm");
  const auto h264 = *find_profile("464.h264ref");
  EXPECT_LT(libq.rewrite_frac, 0.5);
  EXPECT_LT(lbm.rewrite_frac, 0.5);
  EXPECT_GT(h264.rewrite_frac, 0.8);
  EXPECT_GT(libq.footprint_pages, h264.footprint_pages);
}

}  // namespace
}  // namespace wompcm

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.h"

namespace wompcm {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.next_below(1), 0u);
  }
}

TEST(Rng, NextBelowRoughlyUniform) {
  Rng rng(123);
  constexpr std::uint64_t kBound = 8;
  std::vector<int> counts(kBound, 0);
  constexpr int kSamples = 80000;
  for (int i = 0; i < kSamples; ++i) ++counts[rng.next_below(kBound)];
  const double expected = static_cast<double>(kSamples) / kBound;
  for (const int c : counts) {
    EXPECT_NEAR(c, expected, expected * 0.1);
  }
}

TEST(Rng, NextDoubleInUnitInterval) {
  Rng rng(5);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, NextBoolProbability) {
  Rng rng(9);
  int trues = 0;
  for (int i = 0; i < 50000; ++i) trues += rng.next_bool(0.3) ? 1 : 0;
  EXPECT_NEAR(trues / 50000.0, 0.3, 0.02);
}

TEST(Rng, ExponentialMean) {
  Rng rng(11);
  double sum = 0;
  constexpr int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) {
    sum += static_cast<double>(rng.next_exponential(500.0));
  }
  EXPECT_NEAR(sum / kSamples, 500.0, 25.0);
}

TEST(Rng, ExponentialZeroMean) {
  Rng rng(13);
  EXPECT_EQ(rng.next_exponential(0.0), 0u);
  EXPECT_EQ(rng.next_exponential(-1.0), 0u);
}

class ZipfTest : public ::testing::TestWithParam<double> {};

TEST_P(ZipfTest, SamplesInRange) {
  const double alpha = GetParam();
  ZipfSampler zipf(1000, alpha);
  Rng rng(17);
  for (int i = 0; i < 20000; ++i) {
    EXPECT_LT(zipf.sample(rng), 1000u);
  }
}

TEST_P(ZipfTest, HeadProbabilityMatchesTheory) {
  const double alpha = GetParam();
  if (alpha == 0.0) return;  // uniform case checked separately
  constexpr std::uint64_t kN = 100;
  ZipfSampler zipf(kN, alpha);
  Rng rng(23);
  constexpr int kSamples = 200000;
  int zeros = 0;
  for (int i = 0; i < kSamples; ++i) {
    if (zipf.sample(rng) == 0) ++zeros;
  }
  double h = 0;
  for (std::uint64_t k = 1; k <= kN; ++k) h += std::pow(k, -alpha);
  const double expect = 1.0 / h;
  EXPECT_NEAR(zeros / static_cast<double>(kSamples), expect, expect * 0.1);
}

INSTANTIATE_TEST_SUITE_P(Alphas, ZipfTest,
                         ::testing::Values(0.0, 0.5, 0.8, 1.0, 1.3, 2.0));

TEST(Zipf, AlphaZeroIsUniform) {
  ZipfSampler zipf(10, 0.0);
  Rng rng(29);
  std::vector<int> counts(10, 0);
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) ++counts[zipf.sample(rng)];
  for (const int c : counts) EXPECT_NEAR(c, kSamples / 10, kSamples / 100);
}

TEST(Zipf, SingleElement) {
  ZipfSampler zipf(1, 1.2);
  Rng rng(31);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(zipf.sample(rng), 0u);
}

}  // namespace
}  // namespace wompcm

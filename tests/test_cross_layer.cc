// Cross-layer consistency: the timing model's write classification
// (WomStateTracker) must agree with the bit-exact functional codec
// (PageCodec) on arbitrary write sequences — the guarantee that lets the
// timing simulator skip data payloads.
#include <gtest/gtest.h>

#include <map>

#include "common/rng.h"
#include "wom/page_codec.h"
#include "wom/registry.h"
#include "wom/wom_tracker.h"

namespace wompcm {
namespace {

BitVec random_bits(Rng& rng, std::size_t n) {
  BitVec v(n);
  for (std::size_t i = 0; i < n; ++i) v.set(i, rng.next_bool(0.5));
  return v;
}

class CrossLayer : public ::testing::TestWithParam<const char*> {};

TEST_P(CrossLayer, TrackerMatchesCodecOnRandomStreams) {
  const WomCodePtr code = make_code(GetParam());
  ASSERT_NE(code, nullptr);
  ASSERT_FALSE(code->raises_bits());

  constexpr unsigned kLines = 4;
  constexpr unsigned kRows = 3;
  const std::size_t line_bits = code->data_bits() * 8;

  // Timing layer: per-line generations, erased start (so the codec's
  // initialized wit image matches the tracker's state).
  WomStateTracker tracker(code->max_writes(), kLines, /*erased_start=*/true);
  // Functional layer: one codec per (row, line).
  std::map<std::pair<unsigned, unsigned>, PageCodec> codecs;

  Rng rng(2024);
  for (int step = 0; step < 600; ++step) {
    const unsigned row = static_cast<unsigned>(rng.next_below(kRows));
    const unsigned line = static_cast<unsigned>(rng.next_below(kLines));

    // Occasionally refresh a whole row in both layers.
    if (rng.next_bool(0.05)) {
      tracker.refresh(row);
      for (unsigned l = 0; l < kLines; ++l) {
        const auto it = codecs.find({row, l});
        if (it != codecs.end()) it->second.refresh();
      }
      continue;
    }

    auto [it, fresh] = codecs.try_emplace({row, line}, code, line_bits);
    PageCodec& codec = it->second;
    (void)fresh;

    const BitVec data = random_bits(rng, line_bits);
    const PageWriteResult fr = codec.write(data);
    const auto tr = tracker.record_write(row, line);

    ASSERT_EQ(tr.cls, fr.write_class)
        << GetParam() << " step " << step << " row " << row << " line "
        << line;
    // The agreed-fast writes must be physically RESET-only.
    if (tr.cls == WriteClass::kResetOnly) {
      EXPECT_EQ(fr.set_pulses, 0u);
    }
    EXPECT_EQ(codec.read(), data);
    EXPECT_EQ(tracker.generation(row, line), codec.generation());
  }
}

INSTANTIATE_TEST_SUITE_P(Codes, CrossLayer,
                         ::testing::Values("rs23-inv", "marker-k2t3-inv",
                                           "parity-t4-inv",
                                           "search-k2n5t3-inv"));

TEST(SearchRegistry, BuildsTheDiscoveredCode) {
  const WomCodePtr code = make_code("search-k2n5t3");
  ASSERT_NE(code, nullptr);
  EXPECT_EQ(code->data_bits(), 2u);
  EXPECT_EQ(code->wits(), 5u);
  EXPECT_EQ(code->max_writes(), 3u);
  EXPECT_DOUBLE_EQ(code->overhead(), 1.5);
  // Deterministic: the same name yields the same tables.
  const WomCodePtr again = make_code("search-k2n5t3");
  for (unsigned x = 0; x < 4; ++x) {
    EXPECT_EQ(code->encode(x, 0, code->initial_state()),
              again->encode(x, 0, again->initial_state()));
  }
  // Impossible parameters yield null, as do malformed names.
  EXPECT_EQ(make_code("search-k2n2t2"), nullptr);
  EXPECT_EQ(make_code("search-k2n5"), nullptr);
}

TEST(SearchRegistry, DiscoveredCodeDrivesAnArchitecture) {
  // The searched 3-write code plugs straight into the WOM architectures.
  const WomCodePtr inv = make_code("search-k2n5t3-inv");
  ASSERT_NE(inv, nullptr);
  EXPECT_FALSE(inv->raises_bits());
  EXPECT_EQ(inv->max_writes(), 3u);
}

}  // namespace
}  // namespace wompcm

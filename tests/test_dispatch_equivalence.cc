// Devirtualized-vs-virtual dispatch equivalence (DESIGN.md "Dispatch
// strategy on the composed hot path").
//
// The composed hot path monomorphizes two closed interfaces: TagArray's
// replacement hooks run through the enum-switched ReplacementState value
// type, and the per-access CodingPolicy hooks run through the
// coding_dispatch.h switch helpers. The virtual implementations stay in the
// tree as the reference (and as the only dispatch under
// -DWOMPCM_REFERENCE_DISPATCH=ON); this suite drives both sides of each
// pair through identical call sequences and requires identical results
// call for call — victim streams, write classing, plan timing fields,
// counter books, energy totals.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "arch/coding_dispatch.h"
#include "arch/tag_array.h"
#include "common/rng.h"
#include "pcm/endurance.h"
#include "pcm/energy.h"
#include "pcm/timing.h"
#include "stats/stats.h"

namespace wompcm {
namespace {

// ---------------------------------------------------------------------------
// Replacement dispatch: ReplacementState (enum switch) vs ReplacementPolicy
// (virtual reference), same pseudo-random hook sequence.

void drive_replacement(ReplacementKind kind, unsigned sets, unsigned ways,
                       std::uint64_t policy_seed, std::uint64_t drive_seed) {
  ReplacementState fast(kind, sets, ways, policy_seed);
  const std::unique_ptr<ReplacementPolicy> ref =
      make_replacement_policy(kind, sets, ways, policy_seed);

  Rng rng(drive_seed);
  for (int i = 0; i < 4000; ++i) {
    const unsigned set = static_cast<unsigned>(rng.next_below(sets));
    const unsigned way = static_cast<unsigned>(rng.next_below(ways));
    switch (rng.next_below(4)) {
      case 0:
        fast.touch(set, way);
        ref->touch(set, way);
        break;
      case 1:
        fast.install(set, way);
        ref->install(set, way);
        break;
      case 2:
        // The victim choice is the only hook with an observable result; it
        // must match at every point of the interleaved sequence (for
        // kRandom this also locks the two Rng streams together).
        ASSERT_EQ(fast.victim(set), ref->victim(set))
            << to_string(kind) << " diverged at step " << i;
        break;
      case 3:
        fast.invalidate(set, way);
        ref->invalidate(set, way);
        break;
    }
  }
}

TEST(DispatchEquivalence, ReplacementStateMatchesVirtualPolicies) {
  drive_replacement(ReplacementKind::kBankTag, 64, 1, 7, 101);
  drive_replacement(ReplacementKind::kLru, 16, 4, 7, 102);
  drive_replacement(ReplacementKind::kLru, 1, 8, 9, 103);
  drive_replacement(ReplacementKind::kFifo, 16, 4, 7, 104);
  drive_replacement(ReplacementKind::kFifo, 32, 2, 9, 105);
  drive_replacement(ReplacementKind::kRandom, 16, 4, 7, 106);
  drive_replacement(ReplacementKind::kRandom, 8, 8, 1234, 107);
}

// ---------------------------------------------------------------------------
// Coding dispatch: coding_dispatch.h helpers vs virtual calls, same write
// and read sequence against two independently-booked policy instances.

struct Books {
  PcmTiming timing;
  CounterSet counters;
  EnergyCounters energy;
  WearTracker wear{8};
  unsigned channel = 0;

  RegionContext ctx() {
    RegionContext c{&timing, &counters, &energy, &wear, /*line_bits=*/512};
    c.channel = &channel;
    c.channels = 2;
    return c;
  }
};

std::unique_ptr<CodingPolicy> build(CodingKind kind, const RegionContext& ctx) {
  // The classic kinds resolve the legacy code= key; the sectioned kinds
  // (polar, ts-constrained) fall through to their family defaults.
  RegionCode code = resolve_region_code(kind, /*override_name=*/"",
                                        /*legacy_code=*/"rs23-inv",
                                        /*line_bits=*/512);
  return make_coding_policy(kind, ctx, std::move(code), /*lines_per_row=*/8,
                            /*erased_start=*/false,
                            /*fnw_fast_fraction=*/0.5, /*seed=*/42);
}

void expect_plans_equal(const IssuePlan& a, const IssuePlan& b, int step) {
  EXPECT_EQ(a.pre_ns, b.pre_ns) << "step " << step;
  EXPECT_EQ(a.program_ns, b.program_ns) << "step " << step;
  EXPECT_EQ(a.post_ns, b.post_ns) << "step " << step;
  EXPECT_EQ(a.write_class, b.write_class) << "step " << step;
}

void drive_coding(CodingKind kind, std::uint64_t drive_seed) {
  Books fast_books, ref_books;
  auto fast = build(kind, fast_books.ctx());
  auto ref = build(kind, ref_books.ctx());
  ASSERT_EQ(fast->kind(), kind);

  Rng rng(drive_seed);
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t key = rng.next_below(16);
    const unsigned line = static_cast<unsigned>(rng.next_below(8));
    const unsigned ch = static_cast<unsigned>(rng.next_below(2));
    fast_books.channel = ch;
    ref_books.channel = ch;
    IssuePlan pf, pr;
    switch (rng.next_below(4)) {
      case 0: {  // demand / internal write, occasionally fault-demoted
        const bool internal = rng.next_below(8) == 0;
        const bool demoted = !internal && rng.next_below(8) == 0;
        const CodingPolicy::WriteBegin bf =
            coding_begin_write(kind, *fast, key, line, &pf);
        const CodingPolicy::WriteBegin br =
            ref->begin_write(key, line, &pr);
        EXPECT_EQ(bf.cls, br.cls) << "step " << i;
        EXPECT_EQ(bf.cold, br.cold) << "step " << i;
        if (demoted) {
          pf.write_class = WriteClass::kAlpha;
          pr.write_class = WriteClass::kAlpha;
        }
        EXPECT_EQ(coding_finish_write(kind, *fast, bf, demoted, key, key,
                                      line, internal, &pf),
                  ref->finish_write(br, demoted, key, key, line, internal,
                                    &pr))
            << "step " << i;
        expect_plans_equal(pf, pr, i);
        break;
      }
      case 1: {  // remap re-record mid-write
        const CodingPolicy::WriteBegin bf =
            coding_begin_write(kind, *fast, key, line, &pf);
        const CodingPolicy::WriteBegin br =
            ref->begin_write(key, line, &pr);
        coding_note_remap(kind, *fast, key + 16, line);
        ref->note_remap(key + 16, line);
        EXPECT_EQ(coding_finish_write(kind, *fast, bf, false, key + 16,
                                      key + 16, line, false, &pf),
                  ref->finish_write(br, false, key + 16, key + 16, line,
                                    false, &pr))
            << "step " << i;
        expect_plans_equal(pf, pr, i);
        break;
      }
      case 2: {  // read
        coding_read_energy(kind, *fast, &pf);
        ref->read_energy(&pr);
        coding_read_extras(kind, *fast, &pf);
        ref->read_extras(&pr);
        expect_plans_equal(pf, pr, i);
        break;
      }
      case 3: {  // refresh stays virtual on both sides (cold path)
        EXPECT_EQ(fast->refresh_row(key, key), ref->refresh_row(key, key))
            << "step " << i;
        break;
      }
    }
  }

  // The whole sequence must have written identical books.
  EXPECT_EQ(fast_books.counters.all(), ref_books.counters.all());
  EXPECT_DOUBLE_EQ(fast_books.energy.read_pj(), ref_books.energy.read_pj());
  EXPECT_DOUBLE_EQ(fast_books.energy.write_pj(), ref_books.energy.write_pj());
  EXPECT_DOUBLE_EQ(fast_books.energy.refresh_pj(),
                   ref_books.energy.refresh_pj());
}

TEST(DispatchEquivalence, RawCodingMatchesVirtual) {
  drive_coding(CodingKind::kRaw, 201);
}

TEST(DispatchEquivalence, SymmetricCodingMatchesVirtual) {
  drive_coding(CodingKind::kSymmetric, 202);
}

TEST(DispatchEquivalence, FlipNWriteCodingMatchesVirtual) {
  drive_coding(CodingKind::kFlipNWrite, 203);
}

TEST(DispatchEquivalence, WomWideCodingMatchesVirtual) {
  drive_coding(CodingKind::kWomWide, 204);
}

TEST(DispatchEquivalence, WomHiddenCodingMatchesVirtual) {
  drive_coding(CodingKind::kWomHidden, 205);
}

TEST(DispatchEquivalence, PolarCodingMatchesVirtual) {
  drive_coding(CodingKind::kPolar, 206);
}

TEST(DispatchEquivalence, TsConstrainedCodingMatchesVirtual) {
  drive_coding(CodingKind::kTsConstrained, 207);
}

// The factory's kind() <-> dynamic-type contract the static_casts in
// coding_dispatch.h rely on.
TEST(DispatchEquivalence, FactoryKindMatchesDynamicType) {
  Books books;
  const RegionContext ctx = books.ctx();
  EXPECT_NE(dynamic_cast<RawCoding*>(build(CodingKind::kRaw, ctx).get()),
            nullptr);
  EXPECT_NE(
      dynamic_cast<SymmetricCoding*>(build(CodingKind::kSymmetric, ctx).get()),
      nullptr);
  EXPECT_NE(
      dynamic_cast<FnwCoding*>(build(CodingKind::kFlipNWrite, ctx).get()),
      nullptr);
  EXPECT_NE(dynamic_cast<WomCoding*>(build(CodingKind::kWomWide, ctx).get()),
            nullptr);
  EXPECT_NE(dynamic_cast<WomCoding*>(build(CodingKind::kWomHidden, ctx).get()),
            nullptr);
  EXPECT_NE(dynamic_cast<WomCoding*>(build(CodingKind::kPolar, ctx).get()),
            nullptr);
  EXPECT_NE(
      dynamic_cast<WomCoding*>(build(CodingKind::kTsConstrained, ctx).get()),
      nullptr);
}

}  // namespace
}  // namespace wompcm

#include <gtest/gtest.h>

#include "common/config.h"

namespace wompcm {
namespace {

TEST(KeyValueConfig, ParsesKeyValuePairs) {
  const auto cfg = KeyValueConfig::from_tokens(
      {"ranks=4", "seed=0x10", "rate=2.5", "verbose=true"});
  EXPECT_EQ(cfg.get_int_or("ranks", 0), 4);
  EXPECT_EQ(cfg.get_int_or("seed", 0), 16);
  EXPECT_DOUBLE_EQ(cfg.get_double_or("rate", 0.0), 2.5);
  EXPECT_TRUE(cfg.get_bool_or("verbose", false));
}

TEST(KeyValueConfig, PositionalArguments) {
  const auto cfg = KeyValueConfig::from_tokens({"gen", "out=x", "info"});
  ASSERT_EQ(cfg.positional().size(), 2u);
  EXPECT_EQ(cfg.positional()[0], "gen");
  EXPECT_EQ(cfg.positional()[1], "info");
  EXPECT_EQ(cfg.get_string_or("out", ""), "x");
}

TEST(KeyValueConfig, LaterKeysOverride) {
  const auto cfg = KeyValueConfig::from_tokens({"a=1", "a=2"});
  EXPECT_EQ(cfg.get_int_or("a", 0), 2);
}

TEST(KeyValueConfig, MissingKeysFallBack) {
  const KeyValueConfig cfg;
  EXPECT_FALSE(cfg.has("x"));
  EXPECT_EQ(cfg.get_string_or("x", "d"), "d");
  EXPECT_EQ(cfg.get_int_or("x", -3), -3);
  EXPECT_FALSE(cfg.get_int("x").has_value());
}

TEST(KeyValueConfig, MalformedNumbersAreNullopt) {
  const auto cfg = KeyValueConfig::from_tokens({"n=12abc", "d=1.2.3"});
  EXPECT_FALSE(cfg.get_int("n").has_value());
  EXPECT_FALSE(cfg.get_double("d").has_value());
  // But the raw string is still available.
  EXPECT_EQ(cfg.get_string_or("n", ""), "12abc");
}

TEST(KeyValueConfig, BoolSpellings) {
  const auto cfg = KeyValueConfig::from_tokens(
      {"a=1", "b=0", "c=yes", "d=off", "e=maybe"});
  EXPECT_TRUE(cfg.get_bool_or("a", false));
  EXPECT_FALSE(cfg.get_bool_or("b", true));
  EXPECT_TRUE(cfg.get_bool_or("c", false));
  EXPECT_FALSE(cfg.get_bool_or("d", true));
  EXPECT_FALSE(cfg.get_bool("e").has_value());
}

TEST(KeyValueConfig, FromArgsSkipsProgramName) {
  const char* argv[] = {"prog", "k=v"};
  const auto cfg = KeyValueConfig::from_args(2, argv);
  EXPECT_EQ(cfg.get_string_or("k", ""), "v");
  EXPECT_TRUE(cfg.positional().empty());
}

TEST(KeyValueConfig, SetOverridesParsed) {
  auto cfg = KeyValueConfig::from_tokens({"k=v"});
  cfg.set("k", "w");
  EXPECT_EQ(cfg.get_string_or("k", ""), "w");
}

TEST(KeyValueConfig, TokenWithLeadingEqualsIsPositional) {
  const auto cfg = KeyValueConfig::from_tokens({"=x"});
  ASSERT_EQ(cfg.positional().size(), 1u);
  EXPECT_EQ(cfg.positional()[0], "=x");
}

}  // namespace
}  // namespace wompcm

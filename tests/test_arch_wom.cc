// Tests of the WOM coding policy on main memory (Section 3.1) and its
// PCM-refresh extension's row-address tables (Section 3.2), through the
// canonical wom-pcm / pcm-refresh compositions.
#include <gtest/gtest.h>

#include "arch/arch.h"
#include "arch/composed.h"

namespace wompcm {
namespace {

MemoryGeometry small_geom() {
  MemoryGeometry g;
  g.channels = 1;
  g.ranks = 2;
  g.banks_per_rank = 4;
  g.rows_per_bank = 32;
  g.cols_per_row = 64;  // 8 lines/row
  return g;
}

ArchConfig wom_cfg(WomOrganization org = WomOrganization::kWideColumn,
                   const std::string& code = "rs23-inv") {
  ArchConfig cfg;
  cfg.kind = ArchKind::kWomPcm;
  cfg.organization = org;
  cfg.code = code;
  return cfg;
}

ArchConfig refresh_cfg(unsigned rat_entries) {
  ArchConfig cfg;
  cfg.kind = ArchKind::kRefreshWomPcm;
  cfg.rat_entries = rat_entries;
  return cfg;
}

TEST(WomPcm, RequiresInvertedCode) {
  EXPECT_THROW(ComposedArchitecture(small_geom(), PcmTiming{},
                                    wom_cfg(WomOrganization::kWideColumn,
                                            "rs23")),
               std::invalid_argument);
  EXPECT_THROW(ComposedArchitecture(small_geom(), PcmTiming{},
                                    wom_cfg(WomOrganization::kWideColumn,
                                            "no-such-code")),
               std::invalid_argument);
}

TEST(WomPcm, WriteClassSequencePerLine) {
  ComposedArchitecture arch(small_geom(), PcmTiming{}, wom_cfg());
  EXPECT_EQ(arch.name(), "wom-pcm[rs23-inv,wide-column]");
  DecodedAddr d{0, 0, 0, 3, 2};
  // Cold alpha (-> gen 1), fast (-> gen 2 == t), then alternating
  // alpha/fast as the rewrite cycle repeats.
  const WriteClass expect[] = {WriteClass::kAlpha, WriteClass::kResetOnly,
                               WriteClass::kAlpha, WriteClass::kResetOnly,
                               WriteClass::kAlpha};
  for (const WriteClass e : expect) {
    const IssuePlan p = arch.plan(d, AccessType::kWrite, false, 0);
    EXPECT_EQ(p.write_class, e);
    EXPECT_EQ(p.program_ns, e == WriteClass::kAlpha ? 150u : 40u);
  }
  EXPECT_EQ(arch.counters().get("writes.alpha"), 3u);
  EXPECT_EQ(arch.counters().get("writes.alpha.cold"), 1u);
  EXPECT_EQ(arch.counters().get("writes.fast"), 2u);
}

TEST(WomPcm, LinesTrackIndependently) {
  ComposedArchitecture arch(small_geom(), PcmTiming{}, wom_cfg());
  DecodedAddr a{0, 0, 0, 3, 0};
  DecodedAddr b{0, 0, 0, 3, 1};
  arch.plan(a, AccessType::kWrite, false, 0);  // cold alpha on line 0
  const IssuePlan p = arch.plan(b, AccessType::kWrite, false, 0);
  EXPECT_EQ(p.write_class, WriteClass::kAlpha);  // cold on its own line
  EXPECT_EQ(arch.counters().get("writes.alpha.cold"), 2u);
}

TEST(WomPcm, WideColumnHasNoExtraAccesses) {
  ComposedArchitecture arch(small_geom(), PcmTiming{}, wom_cfg());
  DecodedAddr d{0, 0, 0, 3, 0};
  const IssuePlan w = arch.plan(d, AccessType::kWrite, false, 0);
  EXPECT_EQ(w.post_ns, 0u);
  const IssuePlan r = arch.plan(d, AccessType::kRead, false, 0);
  EXPECT_EQ(r.post_ns, 0u);
  EXPECT_EQ(r.program_ns, 0u);
}

TEST(WomPcm, HiddenPageAddsDependentAccess) {
  const PcmTiming t;
  ComposedArchitecture arch(small_geom(), t,
                            wom_cfg(WomOrganization::kHiddenPage));
  EXPECT_EQ(arch.name(), "wom-pcm[rs23-inv,hidden-page]");
  DecodedAddr d{0, 0, 0, 3, 0};
  const IssuePlan w = arch.plan(d, AccessType::kWrite, false, 0);
  EXPECT_EQ(w.post_ns, t.burst_ns() + t.tag_check_ns);
  const IssuePlan r = arch.plan(d, AccessType::kRead, false, 0);
  EXPECT_EQ(r.post_ns, t.col_read_ns + t.burst_ns());
  EXPECT_EQ(arch.counters().get("hidden_page.extra_reads"), 1u);
  EXPECT_EQ(arch.counters().get("hidden_page.extra_writes"), 1u);
}

TEST(WomPcm, OverheadMatchesCode) {
  ComposedArchitecture arch(small_geom(), PcmTiming{}, wom_cfg());
  EXPECT_DOUBLE_EQ(arch.capacity_overhead(), 0.5);
  EXPECT_FALSE(arch.refresh_enabled());
}

TEST(WomPcm, HigherRewriteLimitDelaysAlpha) {
  ComposedArchitecture arch(
      small_geom(), PcmTiming{},
      wom_cfg(WomOrganization::kWideColumn, "marker-k2t4-inv"));
  DecodedAddr d{0, 0, 0, 3, 0};
  arch.plan(d, AccessType::kWrite, false, 0);  // cold alpha
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(arch.plan(d, AccessType::kWrite, false, 0).write_class,
              WriteClass::kResetOnly);
  }
  EXPECT_EQ(arch.plan(d, AccessType::kWrite, false, 0).write_class,
            WriteClass::kAlpha);
}

TEST(RefreshWomPcm, RegistersRowsAtLimitInRat) {
  ComposedArchitecture arch(small_geom(), PcmTiming{}, refresh_cfg(5));
  EXPECT_EQ(arch.name(), "pcm-refresh[rs23-inv,wide-column]");
  EXPECT_TRUE(arch.refresh_enabled());
  DecodedAddr d{0, 0, 0, 3, 0};
  arch.plan(d, AccessType::kWrite, false, 0);
  EXPECT_EQ(arch.rat_size(0), 0u);
  arch.plan(d, AccessType::kWrite, false, 0);  // line reaches the limit
  EXPECT_EQ(arch.rat_size(0), 1u);
  EXPECT_DOUBLE_EQ(arch.refresh_pending_fraction(0, 0), 0.25);  // 1 of 4
  EXPECT_DOUBLE_EQ(arch.refresh_pending_fraction(0, 1), 0.0);
}

TEST(RefreshWomPcm, RatCapacityEvictsOldest) {
  ComposedArchitecture arch(small_geom(), PcmTiming{}, refresh_cfg(2));
  for (unsigned row = 0; row < 4; ++row) {
    DecodedAddr d{0, 0, 0, row, 0};
    arch.plan(d, AccessType::kWrite, false, 0);
    arch.plan(d, AccessType::kWrite, false, 0);
  }
  EXPECT_EQ(arch.rat_size(0), 2u);
  EXPECT_EQ(arch.counters().get("rat.evict"), 2u);
}

TEST(RefreshWomPcm, PerformRefreshServesMostRecentFirst) {
  ComposedArchitecture arch(small_geom(), PcmTiming{}, refresh_cfg(5));
  for (unsigned row = 0; row < 3; ++row) {
    DecodedAddr d{0, 0, 0, row, 0};
    arch.plan(d, AccessType::kWrite, false, 0);
    arch.plan(d, AccessType::kWrite, false, 0);
  }
  const auto work = arch.perform_refresh(0, 0, [](unsigned) { return true; });
  EXPECT_EQ(work.rows, 1u);  // one row per bank per command
  EXPECT_EQ(arch.rat_size(0), 2u);
  // The most recent row (row 2) was refreshed: a write to it is fast now.
  DecodedAddr d{0, 0, 0, 2, 0};
  EXPECT_EQ(arch.plan(d, AccessType::kWrite, false, 0).write_class,
            WriteClass::kResetOnly);
}

TEST(RefreshWomPcm, SkipsBusyUnits) {
  ComposedArchitecture arch(small_geom(), PcmTiming{}, refresh_cfg(5));
  DecodedAddr d{0, 0, 0, 3, 0};
  arch.plan(d, AccessType::kWrite, false, 0);
  arch.plan(d, AccessType::kWrite, false, 0);
  const auto work =
      arch.perform_refresh(0, 0, [](unsigned) { return false; });
  EXPECT_EQ(work.rows, 0u);
  EXPECT_EQ(arch.rat_size(0), 1u);  // entry retained for the next command
}

TEST(RefreshWomPcm, RefreshCoversWholeRankBanks) {
  ComposedArchitecture arch(small_geom(), PcmTiming{}, refresh_cfg(5));
  for (unsigned bank = 0; bank < 4; ++bank) {
    DecodedAddr d{0, 0, bank, 7, 0};
    arch.plan(d, AccessType::kWrite, false, 0);
    arch.plan(d, AccessType::kWrite, false, 0);
  }
  EXPECT_DOUBLE_EQ(arch.refresh_pending_fraction(0, 0), 1.0);
  const auto work = arch.perform_refresh(0, 0, [](unsigned) { return true; });
  EXPECT_EQ(work.rows, 4u);  // one per bank
  EXPECT_EQ(work.resources.size(), 4u);
  EXPECT_DOUBLE_EQ(arch.refresh_pending_fraction(0, 0), 0.0);
}

}  // namespace
}  // namespace wompcm

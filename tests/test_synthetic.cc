// Tests of the synthetic workload generator: determinism, stream
// statistics, and the placement/locality properties the architectures
// depend on.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "trace/synthetic.h"

namespace wompcm {
namespace {

WorkloadProfile test_profile() {
  WorkloadProfile p;
  p.name = "unit";
  p.suite = "test";
  p.write_fraction = 0.4;
  p.footprint_pages = 4096;
  p.write_zipf = 1.0;
  p.read_zipf = 0.8;
  p.line_zipf = 1.0;
  p.stay_prob = 0.4;
  p.burst_len_mean = 10;
  p.intra_gap_ns = 20;
  p.idle_gap_mean_ns = 500;
  p.rewrite_frac = 0.5;
  p.read_write_affinity = 0.3;
  return p;
}

TEST(WorkloadProfile, Validation) {
  WorkloadProfile p = test_profile();
  EXPECT_TRUE(p.valid());
  p.write_fraction = 1.5;
  EXPECT_FALSE(p.valid());
  p = test_profile();
  p.footprint_pages = 0;
  EXPECT_FALSE(p.valid());
  p = test_profile();
  p.stay_prob = 1.0;
  EXPECT_FALSE(p.valid());
  p = test_profile();
  p.burst_len_mean = 0.5;
  EXPECT_FALSE(p.valid());
  p = test_profile();
  p.rewrite_frac = -0.1;
  EXPECT_FALSE(p.valid());
  p = test_profile();
  p.history_depth = 0;
  EXPECT_FALSE(p.valid());
  p = test_profile();
  p.cluster_frac = 1.2;
  EXPECT_FALSE(p.valid());
  p = test_profile();
  p.mlp_streams = 0;
  EXPECT_FALSE(p.valid());
}

TEST(SyntheticTrace, DeterministicForSeed) {
  const MemoryGeometry geom;
  SyntheticTraceSource a(test_profile(), geom, 42, 5000);
  SyntheticTraceSource b(test_profile(), geom, 42, 5000);
  for (int i = 0; i < 5000; ++i) {
    const auto ra = a.next();
    const auto rb = b.next();
    ASSERT_TRUE(ra.has_value());
    ASSERT_TRUE(rb.has_value());
    EXPECT_EQ(ra->addr, rb->addr);
    EXPECT_EQ(ra->gap, rb->gap);
    EXPECT_EQ(ra->type, rb->type);
  }
  EXPECT_FALSE(a.next().has_value());
}

TEST(SyntheticTrace, DifferentSeedsDiffer) {
  const MemoryGeometry geom;
  SyntheticTraceSource a(test_profile(), geom, 1, 1000);
  SyntheticTraceSource b(test_profile(), geom, 2, 1000);
  int same = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.next()->addr == b.next()->addr) ++same;
  }
  EXPECT_LT(same, 100);
}

TEST(SyntheticTrace, ProducesExactlyRequestedCount) {
  const MemoryGeometry geom;
  SyntheticTraceSource src(test_profile(), geom, 3, 777);
  int n = 0;
  while (src.next().has_value()) ++n;
  EXPECT_EQ(n, 777);
}

TEST(SyntheticTrace, WriteFractionRespected) {
  const MemoryGeometry geom;
  SyntheticTraceSource src(test_profile(), geom, 7, 20000);
  int writes = 0;
  while (const auto r = src.next()) {
    writes += r->type == AccessType::kWrite ? 1 : 0;
  }
  EXPECT_NEAR(writes / 20000.0, 0.4, 0.02);
}

TEST(SyntheticTrace, AddressesAreLineAligned) {
  const MemoryGeometry geom;
  SyntheticTraceSource src(test_profile(), geom, 11, 2000);
  while (const auto r = src.next()) {
    EXPECT_EQ(r->addr % geom.line_bytes(), 0u);
    EXPECT_LT(r->addr, geom.capacity_bytes());
  }
}

TEST(SyntheticTrace, FirstRecordHasZeroGap) {
  const MemoryGeometry geom;
  SyntheticTraceSource src(test_profile(), geom, 13, 10);
  EXPECT_EQ(src.next()->gap, 0u);
}

TEST(SyntheticTrace, RewriteLocalityProducesLineReuse) {
  const MemoryGeometry geom;
  WorkloadProfile p = test_profile();
  p.rewrite_frac = 0.8;
  p.stay_prob = 0.0;
  SyntheticTraceSource src(p, geom, 17, 20000);
  std::map<Addr, int> write_counts;
  while (const auto r = src.next()) {
    if (r->type == AccessType::kWrite) ++write_counts[r->addr];
  }
  std::uint64_t rewrites = 0, writes = 0;
  for (const auto& [addr, n] : write_counts) {
    writes += static_cast<std::uint64_t>(n);
    rewrites += static_cast<std::uint64_t>(n - 1);
  }
  // High rewrite_frac means most writes revisit an existing line.
  EXPECT_GT(static_cast<double>(rewrites) / static_cast<double>(writes),
            0.5);
}

TEST(SyntheticTrace, ZeroRewriteLocalityMostlyFreshLines) {
  const MemoryGeometry geom;
  WorkloadProfile p = test_profile();
  p.rewrite_frac = 0.0;
  p.stay_prob = 0.0;
  p.write_zipf = 0.2;
  p.line_zipf = 0.2;
  p.footprint_pages = 32768;
  SyntheticTraceSource src(p, geom, 19, 10000);
  std::set<Addr> lines;
  std::uint64_t writes = 0;
  while (const auto r = src.next()) {
    if (r->type == AccessType::kWrite) {
      ++writes;
      lines.insert(r->addr);
    }
  }
  EXPECT_GT(static_cast<double>(lines.size()) / static_cast<double>(writes),
            0.85);
}

TEST(SyntheticTrace, FootprintBoundsDistinctPages) {
  const MemoryGeometry geom;
  WorkloadProfile p = test_profile();
  p.footprint_pages = 64;
  p.cluster_frac = 0.0;  // hash placement: distinct pages, distinct rows
  SyntheticTraceSource src(p, geom, 23, 20000);
  AddressMapper mapper(geom);
  std::set<std::pair<unsigned, std::uint64_t>> rows;
  while (const auto r = src.next()) {
    const DecodedAddr d = mapper.decode(r->addr);
    rows.insert({d.rank, static_cast<std::uint64_t>(d.bank) * 1000000 + d.row});
  }
  EXPECT_LE(rows.size(), 64u);
}

TEST(SyntheticTrace, GapsReflectBurstStructure) {
  const MemoryGeometry geom;
  WorkloadProfile p = test_profile();
  p.intra_gap_ns = 25;
  p.idle_gap_mean_ns = 10000;
  SyntheticTraceSource src(p, geom, 29, 20000);
  std::uint64_t intra = 0, idle = 0;
  src.next();  // skip the first (gap 0)
  while (const auto r = src.next()) {
    (r->gap == 25 ? intra : idle) += 1;
  }
  EXPECT_GT(intra, idle);  // bursts dominate record counts
  EXPECT_GT(idle, 0u);
}

}  // namespace
}  // namespace wompcm

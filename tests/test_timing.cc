#include <gtest/gtest.h>

#include "pcm/timing.h"

namespace wompcm {
namespace {

TEST(PcmTiming, PaperDefaults) {
  PcmTiming t;
  EXPECT_EQ(t.row_read_ns, 27u);
  EXPECT_EQ(t.row_write_ns, 150u);
  EXPECT_EQ(t.reset_ns, 40u);
  EXPECT_EQ(t.set_ns, 150u);
  EXPECT_EQ(t.refresh_period_ns, 4000u);
  EXPECT_EQ(t.burst_length, 8u);
  EXPECT_TRUE(t.valid());
}

TEST(PcmTiming, BurstDurationIsHalfTheBeats) {
  PcmTiming t;
  EXPECT_EQ(t.burst_ns(), 4u);  // DDR: L_burst / 2
  t.burst_length = 16;
  EXPECT_EQ(t.burst_ns(), 8u);
}

TEST(PcmTiming, ProgramLatencyByWriteClass) {
  PcmTiming t;
  EXPECT_EQ(t.program_ns(WriteClass::kResetOnly), 40u);
  EXPECT_EQ(t.program_ns(WriteClass::kAlpha), 150u);
}

TEST(PcmTiming, RefreshOpFormula) {
  // t_WR + N_bank * L_burst/2 (Section 3.2).
  PcmTiming t;
  EXPECT_EQ(t.refresh_op_ns(32), 150u + 32u * 4u);
  EXPECT_EQ(t.refresh_op_ns(4), 150u + 4u * 4u);
}

TEST(PcmTiming, ValidationRejectsBadValues) {
  PcmTiming t;
  t.reset_ns = 0;
  EXPECT_FALSE(t.valid());

  t = PcmTiming{};
  t.reset_ns = 200;  // RESET slower than a full row write is nonsense
  std::string why;
  EXPECT_FALSE(t.valid(&why));
  EXPECT_FALSE(why.empty());

  t = PcmTiming{};
  t.burst_length = 5;  // odd beat count
  EXPECT_FALSE(t.valid());

  t = PcmTiming{};
  t.refresh_period_ns = 0;
  EXPECT_FALSE(t.valid());
}

TEST(PcmTiming, SlowdownFactorMatchesPaperRange) {
  // The paper quotes SET as 5-10x read latency; with these parameters the
  // SET/RESET slowdown S used in the Section 3.2 bound is 3.75.
  PcmTiming t;
  const double S =
      static_cast<double>(t.set_ns) / static_cast<double>(t.reset_ns);
  EXPECT_DOUBLE_EQ(S, 3.75);
  EXPECT_GE(static_cast<double>(t.row_write_ns) /
                static_cast<double>(t.row_read_ns),
            5.0);
}

}  // namespace
}  // namespace wompcm

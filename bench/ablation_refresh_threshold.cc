// Section 3.2 ablation: the refresh threshold r_th and write pausing.
//
// r_th filters refresh target ranks to those where at least r_th of the
// banks have a pending alpha-row; higher thresholds issue fewer, more
// efficient refresh commands at the cost of missed opportunities. Write
// pausing lets demand accesses preempt an in-progress refresh.
//
// Usage: ablation_refresh_threshold [accesses=N] [seed=S]

#include <cstdio>

#include "common/config.h"
#include "sim/experiment.h"
#include "stats/table.h"

using namespace wompcm;

int main(int argc, char** argv) {
  const KeyValueConfig args = KeyValueConfig::from_args(argc, argv);
  const auto accesses =
      static_cast<std::uint64_t>(args.get_int_or("accesses", 80000));
  const auto seed = static_cast<std::uint64_t>(args.get_int_or("seed", 42));

  const char* benches[] = {"464.h264ref", "qsort", "water-ns"};
  const double thresholds[] = {0.0, 0.05, 0.15, 0.50};

  std::printf("PCM-refresh threshold ablation (PCM-refresh architecture, "
              "normalized write latency vs conventional PCM)\n\n");
  TextTable t({"benchmark", "r_th=0", "r_th=0.05", "r_th=0.15", "r_th=0.50",
               "no pausing", "cmds@0"});
  for (const char* name : benches) {
    const auto p = *find_profile(name);
    SimConfig base = paper_config();
    base.arch.kind = ArchKind::kBaseline;
    const SimResult rb = run({base, TraceSpec::profile(p, accesses),
                              RunOptions::with_seed(seed)});

    std::vector<std::string> row{name};
    std::uint64_t cmds0 = 0;
    for (const double th : thresholds) {
      SimConfig cfg = paper_config();
      cfg.arch.kind = ArchKind::kRefreshWomPcm;
      cfg.refresh.threshold = th;
      const SimResult res = run({cfg, TraceSpec::profile(p, accesses),
                                 RunOptions::with_seed(seed)});
      if (th == 0.0) cmds0 = res.refresh_commands;
      row.push_back(TextTable::fmt(res.avg_write_ns() / rb.avg_write_ns()));
    }
    SimConfig cfg = paper_config();
    cfg.arch.kind = ArchKind::kRefreshWomPcm;
    cfg.refresh.write_pausing = false;
    const SimResult nop = run({cfg, TraceSpec::profile(p, accesses),
                               RunOptions::with_seed(seed)});
    row.push_back(TextTable::fmt(nop.avg_write_ns() / rb.avg_write_ns()));
    row.push_back(std::to_string(cmds0));
    t.add_row(std::move(row));
  }
  std::printf("%s\n", t.to_text().c_str());
  std::printf(
      "expected shape: latency degrades monotonically toward plain WOM-code\n"
      "PCM as r_th rises (fewer eligible ranks); disabling write pausing\n"
      "costs a little extra demand latency\n");
  return 0;
}

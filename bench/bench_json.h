// Shared plumbing for the perf_* benches: the BENCH_*.json file prologue
// (bench name / schema / host environment) and the deterministic-result
// comparison predicate every bit-identity A/B uses.
//
// The JSON schema stays hand-rolled on purpose — each bench owns its body
// and closing brace; this header only removes the copy-pasted parts. All
// field helpers emit a trailing comma, so the bench must end its object
// with at least one field or section it writes itself.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>

#include "common/thread_pool.h"
#include "sim/simulator.h"

namespace wompcm::bench {

// Compares the deterministic portion of two results; phase counters are
// wall-clock and excluded by design.
inline bool same_result(const SimResult& a, const SimResult& b,
                        std::string* why) {
  auto fail = [&](const char* what) {
    *why = what;
    return false;
  };
  if (a.arch_name != b.arch_name) return fail("arch_name");
  if (a.end_time != b.end_time) return fail("end_time");
  if (a.injected_reads != b.injected_reads) return fail("injected_reads");
  if (a.injected_writes != b.injected_writes) return fail("injected_writes");
  if (a.deferred_injections != b.deferred_injections) {
    return fail("deferred_injections");
  }
  if (a.refresh_commands != b.refresh_commands) return fail("refresh");
  if (a.refresh_rows != b.refresh_rows) return fail("refresh_rows");
  const auto& ra = a.stats.demand_read_latency;
  const auto& rb = b.stats.demand_read_latency;
  const auto& wa = a.stats.demand_write_latency;
  const auto& wb = b.stats.demand_write_latency;
  if (ra.count() != rb.count() || ra.sum() != rb.sum() ||
      ra.min() != rb.min() || ra.max() != rb.max()) {
    return fail("read latency stats");
  }
  if (wa.count() != wb.count() || wa.sum() != wb.sum() ||
      wa.min() != wb.min() || wa.max() != wb.max()) {
    return fail("write latency stats");
  }
  if (a.stats.counters.all() != b.stats.counters.all()) {
    return fail("counters");
  }
  if (a.energy_read_pj != b.energy_read_pj ||
      a.energy_write_pj != b.energy_write_pj ||
      a.energy_refresh_pj != b.energy_refresh_pj) {
    return fail("energy");
  }
  if (a.max_line_wear != b.max_line_wear ||
      a.mean_line_wear != b.mean_line_wear ||
      a.lifetime_years != b.lifetime_years) {
    return fail("wear");
  }
  return true;
}

// Open-brace-to-environment writer for a BENCH_*.json file. Usage:
//
//   BenchJson json(out_path, "perf_sweep");
//   if (!json.valid()) { ...; return 1; }
//   json.field_u64("accesses", accesses);
//   json.environment(note);                  // hardware_threads + flags
//   std::fprintf(json.file(), "  \"rows\": [...]\n}\n");  // bench-owned body
class BenchJson {
 public:
  BenchJson(const std::string& path, const char* bench, int schema = 1)
      : f_(std::fopen(path.c_str(), "w")) {
    if (f_ == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return;
    }
    std::fprintf(f_, "{\n");
    field_str("bench", bench);
    std::fprintf(f_, "  \"schema\": %d,\n", schema);
  }
  ~BenchJson() {
    if (f_ != nullptr) std::fclose(f_);
  }
  BenchJson(const BenchJson&) = delete;
  BenchJson& operator=(const BenchJson&) = delete;

  bool valid() const { return f_ != nullptr; }
  std::FILE* file() { return f_; }

  void field_u64(const char* key, std::uint64_t v) {
    std::fprintf(f_, "  \"%s\": %llu,\n", key,
                 static_cast<unsigned long long>(v));
  }
  void field_int(const char* key, long long v) {
    std::fprintf(f_, "  \"%s\": %lld,\n", key, v);
  }
  void field_bool(const char* key, bool v) {
    std::fprintf(f_, "  \"%s\": %s,\n", key, v ? "true" : "false");
  }
  void field_str(const char* key, const std::string& v) {
    std::fprintf(f_, "  \"%s\": \"%s\",\n", key, v.c_str());
  }

  // The host-environment block every bench records: hardware_threads and
  // degraded_environment (single-thread hosts contend with everything else
  // on the machine; trend tooling discounts such points), plus the
  // free-form provenance note when one was given.
  void environment(const std::string& note = "") {
    const unsigned hw = ThreadPool::hardware_workers();
    std::fprintf(f_, "  \"hardware_threads\": %u,\n", hw);
    field_bool("degraded_environment", hw == 1);
    if (!note.empty()) field_str("note", note);
  }

  // One "{...phase counters...}" object (no surrounding key, no comma):
  // shared by the per-run and summed-over-cells phase reports.
  void phases_object(const SimResult::PhaseCounters& ph) {
    std::fprintf(f_,
                 "{\"trace_gen\": %llu, \"controller\": %llu, "
                 "\"codec\": %llu, \"total\": %llu}",
                 static_cast<unsigned long long>(ph.trace_gen_ns),
                 static_cast<unsigned long long>(ph.controller_ns),
                 static_cast<unsigned long long>(ph.codec_ns),
                 static_cast<unsigned long long>(ph.total_ns));
  }

 private:
  std::FILE* f_ = nullptr;
};

}  // namespace wompcm::bench

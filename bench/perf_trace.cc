// Single-run perf harness: times one end-to-end trace-driven simulation on
// the three reference platforms (paper PCM-refresh, dual-channel, paper
// WCPCM) and writes a machine-readable BENCH_singlerun.json. Where
// perf_sweep measures the *sweep* engine (many cells in parallel), this
// bench measures the cost of a single simulated trace — the per-event hot
// path of queues, scheduler, banks, and next-event dispatch.
//
// Arguments: accesses=N (default 300000), seed=S (42), profile=P
// ("401.bzip2"), repeats=R (3; wall-clock is the best of R), out=FILE
// (BENCH_singlerun.json), baseline=FILE (optional: a previous output of
// this bench whose per-config rates are embedded as the "baseline" section
// and used for the speedup figures), baseline_note=TEXT,
// interleaved_ab=true (record in the JSON that the baseline file was
// produced in the same session, alternating baseline-binary and
// current-binary runs, so both sides saw the same host conditions).
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_json.h"
#include "common/config.h"
#include "common/thread_pool.h"
#include "sim/experiment.h"

namespace {

using namespace wompcm;

struct Platform {
  std::string name;
  SimConfig cfg;
};

// The three reference platforms, constructed in code so the bench runs
// from any working directory. They mirror configs/paper.cfg,
// configs/dualchannel.cfg, and the paper platform with arch=wcpcm.
std::vector<Platform> platforms() {
  std::vector<Platform> out;

  Platform paper;
  paper.name = "paper-refresh";
  paper.cfg = paper_config();
  paper.cfg.arch.kind = ArchKind::kRefreshWomPcm;
  out.push_back(paper);

  Platform dual;
  dual.name = "dualchannel";
  dual.cfg = paper_config();
  dual.cfg.geom.channels = 2;
  dual.cfg.geom.ranks = 8;
  dual.cfg.arch.kind = ArchKind::kRefreshWomPcm;
  out.push_back(dual);

  Platform wcpcm;
  wcpcm.name = "paper-wcpcm";
  wcpcm.cfg = paper_config();
  wcpcm.cfg.arch.kind = ArchKind::kWcpcm;
  out.push_back(wcpcm);

  return out;
}

struct RunSample {
  std::string arch;
  double wall_s = 0.0;
  double accesses_per_sec = 0.0;
  SimResult::PhaseCounters phases;
};

// Minimal extraction of "accesses_per_sec" values from a previous output of
// this bench: scans for '"<name>"' and then the next accesses_per_sec
// field. Good enough for the self-describing schema this bench writes.
double baseline_rate(const std::string& json, const std::string& name) {
  const std::string key = "\"" + name + "\"";
  std::size_t at = json.find(key);
  while (at != std::string::npos) {
    const std::size_t rate = json.find("\"accesses_per_sec\":", at);
    if (rate == std::string::npos) return 0.0;
    const double v = std::atof(json.c_str() + rate + 19);
    if (v > 0.0) return v;
    at = json.find(key, at + key.size());
  }
  return 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  const KeyValueConfig args = KeyValueConfig::from_args(argc, argv);
  const auto accesses =
      static_cast<std::uint64_t>(args.get_int_or("accesses", 300000));
  const auto seed = static_cast<std::uint64_t>(args.get_int_or("seed", 42));
  const auto repeats = static_cast<int>(args.get_int_or("repeats", 3));
  const std::string profile_name =
      args.get_string_or("profile", "401.bzip2");
  const std::string out_path =
      args.get_string_or("out", "BENCH_singlerun.json");
  const std::string baseline_path = args.get_string_or("baseline", "");
  const std::string baseline_note = args.get_string_or("baseline_note", "");
  const bool interleaved_ab =
      args.get_string_or("interleaved_ab", "false") == "true";

  const auto profile = find_profile(profile_name);
  if (!profile.has_value()) {
    std::fprintf(stderr, "unknown profile: %s\n", profile_name.c_str());
    return 1;
  }

  std::string baseline_json;
  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path);
    if (!in) {
      std::fprintf(stderr, "cannot read baseline: %s\n",
                   baseline_path.c_str());
      return 1;
    }
    std::stringstream ss;
    ss << in.rdbuf();
    baseline_json = ss.str();
  }

  // This bench is single-threaded, but a one-thread host still means the
  // wall-clock shares its core with everything else on the machine: flag
  // the numbers rather than let a trend chart silently mix them in.
  const unsigned hw = ThreadPool::hardware_workers();
  const bool degraded = hw == 1;

  std::printf("perf_trace: %llu accesses of %s per platform, seed %llu, "
              "best of %d\n\n",
              static_cast<unsigned long long>(accesses), profile_name.c_str(),
              static_cast<unsigned long long>(seed), repeats);
  if (degraded) {
    std::printf("WARNING: single hardware thread: wall-clock contends with "
                "the rest of the host (degraded environment)\n\n");
  }

  std::vector<std::pair<std::string, RunSample>> rows;
  for (const Platform& p : platforms()) {
    RunSample best;
    for (int r = 0; r < repeats; ++r) {
      const SimResult res = run({p.cfg, TraceSpec::profile(*profile, accesses),
                                 RunOptions::with_seed(seed)});
      const double wall =
          static_cast<double>(res.phases.total_ns) * 1e-9;
      if (r == 0 || wall < best.wall_s) {
        best.arch = res.arch_name;
        best.wall_s = wall;
        best.accesses_per_sec =
            wall > 0.0 ? static_cast<double>(accesses) / wall : 0.0;
        best.phases = res.phases;
      }
    }
    const double base = baseline_json.empty()
                            ? 0.0
                            : baseline_rate(baseline_json, p.name);
    std::printf("%-14s %-34s %8.3f s  %10.0f acc/s", p.name.c_str(),
                best.arch.c_str(), best.wall_s, best.accesses_per_sec);
    if (base > 0.0) std::printf("  (%.2fx vs baseline)",
                                best.accesses_per_sec / base);
    std::printf("\n");
    rows.emplace_back(p.name, best);
  }

  bench::BenchJson json(out_path, "perf_trace");
  if (!json.valid()) return 1;
  std::FILE* f = json.file();
  json.field_u64("accesses", accesses);
  json.field_u64("seed", seed);
  json.field_str("profile", profile_name);
  json.field_int("repeats", repeats);
  json.environment();
  json.field_bool("interleaved_ab", interleaved_ab);
  std::fprintf(f, "  \"runs\": {\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& [name, s] = rows[i];
    std::fprintf(f, "    \"%s\": {\n", name.c_str());
    std::fprintf(f, "      \"arch\": \"%s\",\n", s.arch.c_str());
    std::fprintf(f, "      \"wall_s\": %.6f,\n", s.wall_s);
    std::fprintf(f, "      \"accesses_per_sec\": %.1f,\n",
                 s.accesses_per_sec);
    std::fprintf(f, "      \"phases_ns\": ");
    json.phases_object(s.phases);
    std::fprintf(f, "\n    }%s\n", i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  }%s\n", baseline_json.empty() ? "" : ",");
  if (!baseline_json.empty()) {
    std::fprintf(f, "  \"baseline\": {\n");
    if (!baseline_note.empty()) {
      std::fprintf(f, "    \"note\": \"%s\",\n", baseline_note.c_str());
    }
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const auto& [name, s] = rows[i];
      const double base = baseline_rate(baseline_json, name);
      std::fprintf(f, "    \"%s\": {\"accesses_per_sec\": %.1f, "
                   "\"speedup\": %.3f}%s\n",
                   name.c_str(), base,
                   base > 0.0 ? s.accesses_per_sec / base : 0.0,
                   i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  }\n");
  }
  std::fprintf(f, "}\n");
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}

// Fault-injection ablation: graceful degradation as the array ages.
//
// Sweeps fault.initial_wear (how far through its life the array starts)
// with a deliberately low endurance median, and reports how each paper
// architecture degrades: WOM fast-path writes demoted to alpha-writes on
// stuck bits, write-verify retries, dead rows retired onto spares, and —
// for WCPCM — dead WOM-cache rows invalidated and bypassed to main memory.
// The latency column is normalized to the same architecture with faults
// off, so the number is the price of degradation alone.
//
// All fault draws are a pure function of fault.seed (see pcm/fault_model.h),
// so every cell of this table is reproducible.
//
// Usage: ablation_faults [benchmark=NAME] [accesses=N] [seed=S]
//        [fault.seed=F] [fault.endurance=E] [fault.sigma=SG]
//        [fault.spare_rows=R]

#include <cstdio>

#include "womcode.h"

using namespace wompcm;

namespace {

struct Variant {
  const char* label;
  ArchKind kind;
};

}  // namespace

int main(int argc, char** argv) {
  const KeyValueConfig args = KeyValueConfig::from_args(argc, argv);
  const std::string bench = args.get_string_or("benchmark", "401.bzip2");
  const auto accesses =
      static_cast<std::uint64_t>(args.get_int_or("accesses", 60000));
  const auto seed = static_cast<std::uint64_t>(args.get_int_or("seed", 42));

  const auto profile = find_profile(bench);
  if (!profile) {
    std::printf("unknown benchmark %s\n", bench.c_str());
    return 1;
  }

  SimConfig base =
      apply_overrides(paper_config(), args,
                      /*harness_keys=*/{"benchmark", "accesses", "seed"});
  if (!args.has("fault.endurance")) base.fault.endurance = 400.0;
  if (!args.has("fault.sigma")) base.fault.sigma = 0.35;
  if (!args.has("fault.seed")) base.fault.seed = 7;
  if (!args.has("fault.spare_rows")) base.fault.spare_rows = 16;

  const Variant variants[] = {
      {"pcm", ArchKind::kBaseline},
      {"wom-pcm", ArchKind::kWomPcm},
      {"pcm-refresh", ArchKind::kRefreshWomPcm},
      {"wcpcm", ArchKind::kWcpcm},
  };

  std::printf(
      "Fault ablation on %s (%llu accesses; endurance median %.0f pulses,\n"
      "sigma %.2f, fault seed %llu, %u spare rows/bank)\n\n",
      bench.c_str(), static_cast<unsigned long long>(accesses),
      base.fault.endurance, base.fault.sigma,
      static_cast<unsigned long long>(base.fault.seed),
      base.fault.spare_rows);

  for (const double wear : {0.0, 0.5, 0.75, 0.9}) {
    std::printf("initial wear %.2f (array %.0f%% through its life)\n", wear,
                wear * 100.0);
    TextTable t({"architecture", "avg write ns", "w vs fault-free",
                 "injected", "retries", "demoted", "remapped", "dead rows",
                 "read disturbs"});
    for (const Variant& v : variants) {
      SimConfig cfg = base;
      cfg.arch.kind = v.kind;
      cfg.fault.enabled = false;
      const SimResult clean =
          run({cfg, TraceSpec::profile(*profile, accesses), RunOptions::with_seed(seed)});
      cfg.fault.enabled = true;
      cfg.fault.initial_wear = wear;
      const SimResult r =
          run({cfg, TraceSpec::profile(*profile, accesses), RunOptions::with_seed(seed)});
      t.add_row({v.label, TextTable::fmt(r.avg_write_ns(), 1),
                 TextTable::fmt(r.avg_write_ns() / clean.avg_write_ns()),
                 std::to_string(r.fault_injected),
                 std::to_string(r.fault_retries),
                 std::to_string(r.fault_demoted_writes),
                 std::to_string(r.fault_remapped_rows),
                 std::to_string(r.fault_dead_rows),
                 std::to_string(r.fault_read_disturbs)});
    }
    std::printf("%s\n", t.to_text().c_str());
  }
  std::printf(
      "expected shape: a fresh array (wear 0) only loses its lognormal weak\n"
      "tail; as initial wear approaches the endurance median the demotion\n"
      "and retry traffic climbs, and past it rows start dying fast enough\n"
      "to chew through the spares. The WOM architectures feel it first —\n"
      "their fast path depends on clean 0->1 programming — but degrade to\n"
      "conventional-PCM behaviour instead of failing.\n");
  return 0;
}

// Microbenchmarks (google-benchmark): throughput of the WOM-code layer and
// the simulation substrate — encode/decode, page codec, generation
// tracking, Zipf sampling, trace generation, and end-to-end simulation.

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "sim/experiment.h"
#include "trace/profiles.h"
#include "wom/inverted_code.h"
#include "wom/page_codec.h"
#include "wom/registry.h"
#include "wom/rs_code.h"
#include "wom/wom_tracker.h"

namespace {

using namespace wompcm;

void BM_RsEncodeFirst(benchmark::State& state) {
  RivestShamirCode code;
  const BitVec init = code.initial_state();
  unsigned x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(code.encode(x & 3, 0, init));
    ++x;
  }
}
BENCHMARK(BM_RsEncodeFirst);

void BM_RsEncodeSecond(benchmark::State& state) {
  RivestShamirCode code;
  const BitVec first = RivestShamirCode::first_pattern(1);
  unsigned x = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(code.encode(x & 3, 1, first));
    ++x;
  }
}
BENCHMARK(BM_RsEncodeSecond);

void BM_RsDecode(benchmark::State& state) {
  RivestShamirCode code;
  const BitVec pat = RivestShamirCode::second_pattern(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(code.decode(pat));
  }
}
BENCHMARK(BM_RsDecode);

void BM_PageCodecWrite(benchmark::State& state) {
  const auto bits = static_cast<std::size_t>(state.range(0));
  PageCodec page(make_code("rs23-inv"), bits);
  Rng rng(7);
  BitVec data(bits);
  for (std::size_t i = 0; i < bits; ++i) data.set(i, rng.next_bool(0.5));
  for (auto _ : state) {
    benchmark::DoNotOptimize(page.write(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bits / 8));
}
BENCHMARK(BM_PageCodecWrite)->Arg(512)->Arg(4096)->Arg(32768);

// The sectioned families behind the same streaming page surface. Two
// alternating payloads keep consecutive writes from degenerating into
// no-ops; polar takes the virtual encode path (no LUT at n = 128), tsc
// layers replica selection over the base code's LUT.
void BM_PageCodecWriteFamily(benchmark::State& state, const char* name) {
  const auto bits = static_cast<std::size_t>(state.range(0));
  PageCodec page(make_block_codec(name), bits);
  Rng rng(7);
  BitVec a(bits), b(bits);
  for (std::size_t i = 0; i < bits; ++i) a.set(i, rng.next_bool(0.5));
  for (std::size_t i = 0; i < bits; ++i) b.set(i, rng.next_bool(0.5));
  bool flip = false;
  for (auto _ : state) {
    benchmark::DoNotOptimize(page.write(flip ? b : a));
    flip = !flip;
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bits / 8));
}
BENCHMARK_CAPTURE(BM_PageCodecWriteFamily, polar_m7, "polar-m7-inv")
    ->Arg(512)
    ->Arg(4096);
BENCHMARK_CAPTURE(BM_PageCodecWriteFamily, tsc_rs23x4, "tsc-rs23x4-inv")
    ->Arg(512)
    ->Arg(4096);

// Generation-aware read path of the replica family (the decode must pick
// the replica the current generation wrote).
void BM_PageCodecReadTsc(benchmark::State& state) {
  const std::size_t bits = 4096;
  PageCodec page(make_block_codec("tsc-rs23x4-inv"), bits);
  Rng rng(9);
  BitVec data(bits);
  for (std::size_t i = 0; i < bits; ++i) data.set(i, rng.next_bool(0.5));
  for (int i = 0; i < 3; ++i) page.write(data);  // land inside replica 1
  BitVec out;
  page.read_into(out);
  for (auto _ : state) {
    page.read_into(out);
    benchmark::DoNotOptimize(out);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bits / 8));
}
BENCHMARK(BM_PageCodecReadTsc);

void BM_TrackerRecordWrite(benchmark::State& state) {
  WomStateTracker tracker(2, 256);
  Rng rng(11);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tracker.record_write(
        rng.next_below(4096), static_cast<unsigned>(rng.next_below(256))));
  }
}
BENCHMARK(BM_TrackerRecordWrite);

// Sectioned tracking: one page write updates a whole range of per-section
// generations (64 sections/line for polar-m7).
void BM_TrackerRecordWriteRange(benchmark::State& state) {
  WomStateTracker tracker(8, 256 * 64);
  Rng rng(13);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tracker.record_write_range(
        rng.next_below(4096), static_cast<unsigned>(rng.next_below(256)) * 64,
        64));
  }
}
BENCHMARK(BM_TrackerRecordWriteRange);

void BM_ZipfSample(benchmark::State& state) {
  ZipfSampler zipf(1u << 20, 1.1);
  Rng rng(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.sample(rng));
  }
}
BENCHMARK(BM_ZipfSample);

void BM_SyntheticTrace(benchmark::State& state) {
  const auto profile = *find_profile("401.bzip2");
  const MemoryGeometry geom;
  SyntheticTraceSource src(profile, geom, 17, ~std::uint64_t{0});
  for (auto _ : state) {
    benchmark::DoNotOptimize(src.next());
  }
}
BENCHMARK(BM_SyntheticTrace);

void BM_SimulateAccesses(benchmark::State& state) {
  const auto profile = *find_profile("456.hmmer");
  const auto accesses = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    SimConfig cfg = paper_config();
    cfg.arch.kind = ArchKind::kRefreshWomPcm;
    benchmark::DoNotOptimize(run({cfg, TraceSpec::profile(profile, accesses),
                                  RunOptions::with_seed(42)}));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(accesses));
}
BENCHMARK(BM_SimulateAccesses)->Arg(10000)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();

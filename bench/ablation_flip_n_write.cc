// Section 1/2 comparison: latency-aware coding baselines vs WOM-codes.
//
// Flip-N-Write (Cho & Lee) bounds programmed bits at half the line, which
// helps energy/endurance but rarely eliminates every SET pulse, so write
// LATENCY stays SET-bound — the paper's motivation for WOM-codes. This
// bench compares conventional PCM, Flip-N-Write (with 0% and an optimistic
// 10% SET-free write fraction), and WOM-code PCM on latency and on the
// first-order energy model.
//
// Usage: ablation_flip_n_write [accesses=N] [seed=S]

#include <cstdio>

#include "common/config.h"
#include "sim/experiment.h"
#include "stats/table.h"

using namespace wompcm;

int main(int argc, char** argv) {
  const KeyValueConfig args = KeyValueConfig::from_args(argc, argv);
  const auto accesses =
      static_cast<std::uint64_t>(args.get_int_or("accesses", 80000));
  const auto seed = static_cast<std::uint64_t>(args.get_int_or("seed", 42));

  const char* benches[] = {"401.bzip2", "464.h264ref", "FFT.mi"};

  std::printf("Coding-scheme ablation: Flip-N-Write vs WOM-code PCM\n\n");
  TextTable t({"benchmark", "arch", "write norm", "read norm",
               "write energy/access pJ", "overhead"});
  for (const char* name : benches) {
    const auto p = *find_profile(name);
    SimConfig base = paper_config();
    base.arch.kind = ArchKind::kBaseline;
    const SimResult rb = run({base, TraceSpec::profile(p, accesses),
                              RunOptions::with_seed(seed)});

    struct Variant {
      const char* label;
      ArchKind kind;
      double fnw_fast;
    };
    const Variant variants[] = {
        {"pcm", ArchKind::kBaseline, 0.0},
        {"flip-n-write", ArchKind::kFlipNWrite, 0.0},
        {"flip-n-write (10% fast)", ArchKind::kFlipNWrite, 0.10},
        {"wom-pcm", ArchKind::kWomPcm, 0.0},
    };
    for (const Variant& v : variants) {
      SimConfig cfg = paper_config();
      cfg.arch.kind = v.kind;
      cfg.arch.fnw_fast_fraction = v.fnw_fast;
      const SimResult res = run({cfg, TraceSpec::profile(p, accesses),
                                 RunOptions::with_seed(seed)});
      const double writes = static_cast<double>(res.injected_writes);
      t.add_row({name, v.label,
                 TextTable::fmt(res.avg_write_ns() / rb.avg_write_ns()),
                 TextTable::fmt(res.avg_read_ns() / rb.avg_read_ns()),
                 TextTable::fmt(writes > 0 ? res.energy_write_pj / writes : 0,
                                0),
                 TextTable::fmt(res.capacity_overhead * 100.0, 1) + "%"});
    }
  }
  std::printf("%s\n", t.to_text().c_str());
  std::printf(
      "expected shape: Flip-N-Write halves write energy but barely moves\n"
      "latency; WOM-code PCM cuts latency at 50%% capacity overhead\n");
  return 0;
}

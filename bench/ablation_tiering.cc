// Tiering ablation: what a DRAM-timing front tier buys on top of the
// paper's architectures, and how it interacts with the WOM bank-tag cache
// (DESIGN.md section 11). Four cells cross {no tier, DRAM tier} with
// {pcm-refresh, WCPCM}: the tier absorbs locality in front of the PCM
// queues, the WOM cache absorbs write traffic behind them, and the "both"
// cell shows the two layers compose rather than cannibalize. Two extra
// cells vary the tier's write policy and replacement to bound their
// influence.
//
// Emits one row per cell with benchmark-averaged demand latencies, the
// tier's pooled hit rate, its writeback traffic and the capacity overhead.
//
// Usage: ablation_tiering [accesses=N] [seed=S] [sets=N] [ways=N]

#include <cstdio>
#include <string>
#include <vector>

#include "common/config.h"
#include "sim/experiment.h"
#include "stats/table.h"

using namespace wompcm;

namespace {

struct Cell {
  std::string name;
  SimConfig cfg;
};

}  // namespace

int main(int argc, char** argv) {
  const KeyValueConfig args = KeyValueConfig::from_args(argc, argv);
  const auto accesses =
      static_cast<std::uint64_t>(args.get_int_or("accesses", 40000));
  const auto seed = static_cast<std::uint64_t>(args.get_int_or("seed", 42));
  const auto sets = static_cast<unsigned>(args.get_int_or("sets", 1024));
  const auto ways = static_cast<unsigned>(args.get_int_or("ways", 4));

  // The dual-channel platform of configs/tiered.cfg: the tier is
  // per-channel state, so the cells also exercise the sharded layout.
  SimConfig base = paper_config();
  base.geom.channels = 2;
  base.geom.ranks = 8;

  auto with_tier = [&](SimConfig cfg) {
    cfg.tier.enabled = true;
    cfg.tier.sets = sets;
    cfg.tier.ways = ways;
    return cfg;
  };
  auto with_arch = [&](ArchKind kind) {
    SimConfig cfg = base;
    cfg.arch.kind = kind;
    return cfg;
  };

  std::vector<Cell> cells;
  cells.push_back({"refresh", with_arch(ArchKind::kRefreshWomPcm)});
  cells.push_back({"refresh+tier",
                   with_tier(with_arch(ArchKind::kRefreshWomPcm))});
  cells.push_back({"wcpcm (wom-cache)", with_arch(ArchKind::kWcpcm)});
  cells.push_back({"wcpcm+tier", with_tier(with_arch(ArchKind::kWcpcm))});
  {
    SimConfig cfg = with_tier(with_arch(ArchKind::kRefreshWomPcm));
    cfg.tier.write_policy = TierWritePolicy::kWritethrough;
    cells.push_back({"refresh+tier/wt", cfg});
  }
  {
    SimConfig cfg = with_tier(with_arch(ArchKind::kRefreshWomPcm));
    cfg.tier.replacement = ReplacementKind::kRandom;
    cells.push_back({"refresh+tier/rand", cfg});
  }

  const std::vector<WorkloadProfile> profiles = {*find_profile("401.bzip2"),
                                                 *find_profile("ocean")};

  std::printf("Tiering ablation: {no tier, %ux%u DRAM tier} x "
              "{pcm-refresh, wcpcm}, plus write-policy and replacement\n"
              "variants (benchmark average over 401.bzip2 and ocean, "
              "%llu accesses each)\n\n",
              sets, ways, static_cast<unsigned long long>(accesses));
  TextTable t({"cell", "write ns", "read ns", "tier hit%", "tier wb",
               "cap ovh"});
  for (const Cell& cell : cells) {
    double w = 0.0, r = 0.0, hit = 0.0;
    std::uint64_t wb = 0;
    double cap = 0.0;
    for (const WorkloadProfile& p : profiles) {
      const SimResult res = run({cell.cfg, TraceSpec::profile(p, accesses),
                                 RunOptions::with_seed(seed)});
      w += res.avg_write_ns();
      r += res.avg_read_ns();
      hit += res.tier_hit_rate();
      wb += res.tier_writebacks;
      cap = res.capacity_overhead;
    }
    const double n = static_cast<double>(profiles.size());
    t.add_row({cell.name, TextTable::fmt(w / n, 1), TextTable::fmt(r / n, 1),
               TextTable::fmt(100.0 * hit / n, 1), std::to_string(wb),
               TextTable::fmt(cap, 3)});
  }
  std::printf("%s\n", t.to_text().c_str());
  std::printf(
      "expected shape: the tier collapses both demand latencies toward DRAM\n"
      "timing at any reuse; the WOM cache alone only helps writes; together\n"
      "the tier serves the hits and the WOM cache absorbs the miss/eviction\n"
      "write stream; writethrough trades write latency for zero writeback\n"
      "traffic; random replacement trails LRU by a few hit points\n");
  return 0;
}

// Shared harness for Figs. 5(a) and 5(b): the 20-benchmark x 4-architecture
// sweep with per-benchmark normalization against the conventional-PCM
// baseline, plus the paper's "average" bar.
#pragma once

#include <cstdio>
#include <functional>

#include "womcode.h"

namespace wompcm::bench {

inline int run_fig5(int argc, char** argv, const char* title,
                    const char* metric_name, double paper_avg_wom,
                    double paper_avg_refresh, double paper_avg_wcpcm,
                    const std::function<double(const SimResult&)>& metric) {
  const KeyValueConfig args = KeyValueConfig::from_args(argc, argv);
  const auto accesses =
      static_cast<std::uint64_t>(args.get_int_or("accesses", 100000));
  const auto seed = static_cast<std::uint64_t>(args.get_int_or("seed", 42));
  // jobs=J: sweep workers (0 = all hardware threads, 1 = serial). The cell
  // results are bit-identical regardless of J.
  const auto jobs = static_cast<unsigned>(args.get_int_or("jobs", 0));

  std::printf("%s\n(normalized %s; lower is better; %llu accesses/benchmark, "
              "seed %llu)\n\n",
              title, metric_name, static_cast<unsigned long long>(accesses),
              static_cast<unsigned long long>(seed));

  RunOptions opts = RunOptions::with_seed(seed);
  opts.jobs = ParallelPolicy::with_jobs(jobs);
  const RunRequest base{paper_config(),
                        TraceSpec::profile(WorkloadProfile{}, accesses), opts};
  const auto rows =
      run_sweep(base, paper_architectures(), benchmark_profiles());
  const auto norm = normalize(rows, metric);

  TextTable t({"benchmark", "pcm", "wom-pcm", "pcm-refresh", "wcpcm"});
  for (std::size_t i = 0; i < rows.size(); ++i) {
    t.add_row({rows[i].benchmark, TextTable::fmt(norm[i][0]),
               TextTable::fmt(norm[i][1]), TextTable::fmt(norm[i][2]),
               TextTable::fmt(norm[i][3])});
  }
  t.add_row({"average", TextTable::fmt(column_mean(norm, 0)),
             TextTable::fmt(column_mean(norm, 1)),
             TextTable::fmt(column_mean(norm, 2)),
             TextTable::fmt(column_mean(norm, 3))});
  std::printf("%s\n", t.to_text().c_str());
  std::printf("paper averages: wom-pcm %.3f, pcm-refresh %.3f, wcpcm %.3f\n",
              paper_avg_wom, paper_avg_refresh, paper_avg_wcpcm);
  if (args.get_bool_or("csv", false)) {
    std::printf("\n%s", t.to_csv().c_str());
  }
  return 0;
}

}  // namespace wompcm::bench

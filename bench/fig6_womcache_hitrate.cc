// Fig. 6: WOM-cache hit rate in WCPCM for 4/8/16/32 banks per rank.
//
// The WOM-cache tag is the bank address, so banks/rank sets the number of
// rows competing for each cache entry: more banks per rank, lower hit rate.
// The sweep holds total capacity fixed (fewer banks per rank means larger
// banks, and the per-rank cache array — sized like one bank — grows
// accordingly), matching the paper's overhead numbers (37.5% at 4 banks
// down to 4.7% at 32).
//
// Usage: fig6_womcache_hitrate [accesses=N] [seed=S] [csv=1]

#include <cstdio>

#include "womcode.h"

using namespace wompcm;

namespace {

constexpr unsigned kBankSweep[] = {4, 8, 16, 32};

double wcpcm_write_hit_rate(const SimResult& r) {
  const double h =
      static_cast<double>(r.stats.counters.get("wcpcm.write_hits"));
  const double m =
      static_cast<double>(r.stats.counters.get("wcpcm.write_misses"));
  return h + m == 0 ? 0.0 : h / (h + m);
}

}  // namespace

int main(int argc, char** argv) {
  const KeyValueConfig args = KeyValueConfig::from_args(argc, argv);
  const auto accesses =
      static_cast<std::uint64_t>(args.get_int_or("accesses", 80000));
  const auto seed = static_cast<std::uint64_t>(args.get_int_or("seed", 42));

  std::printf(
      "Fig. 6: WOM-cache (write) hit rate in WCPCM vs banks/rank\n"
      "(%llu accesses/benchmark, seed %llu)\n\n",
      static_cast<unsigned long long>(accesses),
      static_cast<unsigned long long>(seed));

  TextTable t({"benchmark", "4 banks", "8 banks", "16 banks", "32 banks"});
  std::vector<double> avg(4, 0.0);
  for (const WorkloadProfile& p : benchmark_profiles()) {
    std::vector<std::string> row{p.name};
    for (std::size_t bi = 0; bi < 4; ++bi) {
      SimConfig cfg = paper_config();
      cfg.geom.banks_per_rank = kBankSweep[bi];
      cfg.geom.rows_per_bank = 32768 * 32 / kBankSweep[bi];
      cfg.arch.kind = ArchKind::kWcpcm;
      const SimResult r =
          run({cfg, TraceSpec::profile(p, accesses), RunOptions::with_seed(seed)});
      const double hit = wcpcm_write_hit_rate(r);
      avg[bi] += hit;
      row.push_back(TextTable::fmt(hit));
    }
    t.add_row(std::move(row));
  }
  const double n = static_cast<double>(benchmark_profiles().size());
  t.add_row({"average", TextTable::fmt(avg[0] / n), TextTable::fmt(avg[1] / n),
             TextTable::fmt(avg[2] / n), TextTable::fmt(avg[3] / n)});
  std::printf("%s\n", t.to_text().c_str());
  std::printf(
      "expected shape (paper): hit rate decreases as banks/rank grows\n");
  if (args.get_bool_or("csv", false)) std::printf("\n%s", t.to_csv().c_str());
  return 0;
}

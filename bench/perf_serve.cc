// Perf harness for sharded single-run execution: a multi-stream "serve"
// driver. Merges N per-core benchmark streams into one arrival-ordered
// mix (trace/mix.h), runs it against a multi-channel platform serially
// and sharded (sim/sharded.h), verifies the results are bit-identical,
// and reports accesses/sec versus streams x jobs plus each channel
// shard's bus utilization.
//
// Arguments: accesses=N per stream (default 10000), seed=S (42),
// channels=C (4), jobs=J (4; the sharded run also measures jobs=2 when
// J != 2), streams=K (0 = the full {1, 2, 4, 8} sweep, otherwise just K),
// out=FILE (BENCH_serve.json).
//
// On a single-hardware-thread host the sharded numbers measure barrier
// overhead, not parallelism; the JSON carries "degraded_environment":
// true so downstream tooling can discount them.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/config.h"
#include "common/perf.h"
#include "common/thread_pool.h"
#include "sim/experiment.h"
#include "sim/sharded.h"
#include "stats/metrics.h"
#include "trace/mix.h"
#include "trace/synthetic.h"

namespace {

using namespace wompcm;

// Compares the deterministic portion of two results; phase counters are
// wall-clock and excluded by design (same predicate as perf_sweep).
bool same_result(const SimResult& a, const SimResult& b, std::string* why) {
  auto fail = [&](const char* what) {
    *why = what;
    return false;
  };
  if (a.arch_name != b.arch_name) return fail("arch_name");
  if (a.end_time != b.end_time) return fail("end_time");
  if (a.injected_reads != b.injected_reads) return fail("injected_reads");
  if (a.injected_writes != b.injected_writes) return fail("injected_writes");
  if (a.deferred_injections != b.deferred_injections) {
    return fail("deferred_injections");
  }
  if (a.refresh_commands != b.refresh_commands) return fail("refresh");
  if (a.refresh_rows != b.refresh_rows) return fail("refresh_rows");
  const auto& ra = a.stats.demand_read_latency;
  const auto& rb = b.stats.demand_read_latency;
  const auto& wa = a.stats.demand_write_latency;
  const auto& wb = b.stats.demand_write_latency;
  if (ra.count() != rb.count() || ra.sum() != rb.sum() ||
      ra.min() != rb.min() || ra.max() != rb.max()) {
    return fail("read latency stats");
  }
  if (wa.count() != wb.count() || wa.sum() != wb.sum() ||
      wa.min() != wb.min() || wa.max() != wb.max()) {
    return fail("write latency stats");
  }
  if (a.stats.counters.all() != b.stats.counters.all()) {
    return fail("counters");
  }
  if (a.energy_read_pj != b.energy_read_pj ||
      a.energy_write_pj != b.energy_write_pj ||
      a.energy_refresh_pj != b.energy_refresh_pj) {
    return fail("energy");
  }
  if (a.max_line_wear != b.max_line_wear ||
      a.mean_line_wear != b.mean_line_wear ||
      a.lifetime_years != b.lifetime_years) {
    return fail("wear");
  }
  return true;
}

// One serve mix: `streams` synthetic benchmark generators (cycling the
// paper suite, each on its own seed stream) merged by absolute arrival.
// Deterministic: rebuilt identically for every measured run.
std::unique_ptr<TraceSource> make_mix(unsigned streams,
                                      const MemoryGeometry& geom,
                                      std::uint64_t accesses,
                                      std::uint64_t seed) {
  const std::vector<WorkloadProfile> profiles = benchmark_profiles();
  std::vector<std::unique_ptr<TraceSource>> parts;
  parts.reserve(streams);
  for (unsigned s = 0; s < streams; ++s) {
    const WorkloadProfile& p = profiles[s % profiles.size()];
    parts.push_back(std::make_unique<SyntheticTraceSource>(
        p, geom, seed ^ (0x9e3779b97f4a7c15ULL * (s + 1)), accesses));
  }
  return std::make_unique<MixTraceSource>(std::move(parts));
}

struct Measurement {
  double wall_s = 0.0;
  SimResult result;
};

Measurement measure_serial(const SimConfig& cfg, unsigned streams,
                           std::uint64_t accesses, std::uint64_t seed) {
  const auto mix = make_mix(streams, cfg.geom, accesses, seed);
  Measurement m;
  const std::uint64_t t0 = perf::now_ns();
  m.result = Simulator(cfg).run(*mix);
  m.wall_s = static_cast<double>(perf::now_ns() - t0) * 1e-9;
  return m;
}

Measurement measure_sharded(const SimConfig& cfg, unsigned streams,
                            std::uint64_t accesses, std::uint64_t seed,
                            unsigned jobs) {
  const auto mix = make_mix(streams, cfg.geom, accesses, seed);
  Measurement m;
  const std::uint64_t t0 = perf::now_ns();
  m.result = run_single_sharded(cfg, *mix, jobs);
  m.wall_s = static_cast<double>(perf::now_ns() - t0) * 1e-9;
  return m;
}

double accesses_per_sec(const Measurement& m) {
  const auto injected = m.result.injected_reads + m.result.injected_writes;
  return m.wall_s > 0.0 ? static_cast<double>(injected) / m.wall_s : 0.0;
}

// Demand-busy fraction of each channel shard's data bus over the run.
std::vector<double> shard_utilization(const SimResult& r, unsigned channels) {
  std::vector<double> util(channels, 0.0);
  if (r.end_time == 0) return util;
  for (unsigned c = 0; c < channels; ++c) {
    util[c] = static_cast<double>(
                  r.metrics.counter(channel_metric(c, "bus_busy_ns"))) /
              static_cast<double>(r.end_time);
  }
  return util;
}

}  // namespace

int main(int argc, char** argv) {
  const KeyValueConfig args = KeyValueConfig::from_args(argc, argv);
  const auto accesses =
      static_cast<std::uint64_t>(args.get_int_or("accesses", 10000));
  const auto seed = static_cast<std::uint64_t>(args.get_int_or("seed", 42));
  const auto channels =
      static_cast<unsigned>(args.get_int_or("channels", 4));
  const auto jobs = static_cast<unsigned>(args.get_int_or("jobs", 4));
  const auto one_streams =
      static_cast<unsigned>(args.get_int_or("streams", 0));
  const std::string out_path = args.get_string_or("out", "BENCH_serve.json");
  // Free-form provenance string recorded in the JSON (e.g. whether the
  // run was interleaved A/B against a baseline binary).
  const std::string note = args.get_string_or("note", "");

  SimConfig cfg = paper_config();
  cfg.geom.channels = channels;
  cfg.geom.ranks = std::max(1u, 16 / channels);  // keep total ranks constant
  cfg.arch.kind = ArchKind::kRefreshWomPcm;
  cfg.warmup_accesses = 0;

  std::vector<unsigned> stream_counts = {1, 2, 4, 8};
  if (one_streams != 0) stream_counts = {one_streams};
  std::vector<unsigned> job_counts = {jobs};
  if (jobs != 2) job_counts.insert(job_counts.begin(), 2);

  const unsigned hw = ThreadPool::hardware_workers();
  const bool degraded = hw == 1;
  std::printf("perf_serve: %u-channel %s, %llu accesses/stream, seed %llu, "
              "%u hardware thread(s)\n",
              channels, to_string(cfg.arch.kind),
              static_cast<unsigned long long>(accesses),
              static_cast<unsigned long long>(seed), hw);
  if (degraded) {
    std::printf("WARNING: single hardware thread — sharded timings measure "
                "barrier overhead, not parallelism (degraded environment)\n");
  }
  std::printf("\n%8s %8s %12s %12s %9s\n", "streams", "jobs", "acc/s",
              "wall_s", "speedup");

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"perf_serve\",\n");
  std::fprintf(f, "  \"schema\": 1,\n");
  std::fprintf(f, "  \"arch\": \"%s\",\n", to_string(cfg.arch.kind));
  std::fprintf(f, "  \"channels\": %u,\n", channels);
  std::fprintf(f, "  \"accesses_per_stream\": %llu,\n",
               static_cast<unsigned long long>(accesses));
  std::fprintf(f, "  \"seed\": %llu,\n",
               static_cast<unsigned long long>(seed));
  std::fprintf(f, "  \"hardware_threads\": %u,\n", hw);
  std::fprintf(f, "  \"degraded_environment\": %s,\n",
               degraded ? "true" : "false");
  if (!note.empty()) {
    std::fprintf(f, "  \"note\": \"%s\",\n", note.c_str());
  }
  std::fprintf(f, "  \"rows\": [\n");

  bool first_row = true;
  for (const unsigned streams : stream_counts) {
    const Measurement serial = measure_serial(cfg, streams, accesses, seed);
    std::printf("%8u %8s %12.0f %12.3f %9s\n", streams, "serial",
                accesses_per_sec(serial), serial.wall_s, "1.00x");

    for (const unsigned j : job_counts) {
      const Measurement sharded =
          measure_sharded(cfg, streams, accesses, seed, j);
      std::string why;
      if (!same_result(serial.result, sharded.result, &why)) {
        std::printf("MISMATCH at streams=%u jobs=%u: %s differs\n", streams,
                    j, why.c_str());
        std::fclose(f);
        return 1;
      }
      const double speedup =
          sharded.wall_s > 0.0 ? serial.wall_s / sharded.wall_s : 0.0;
      std::printf("%8u %8u %12.0f %12.3f %8.2fx\n", streams, j,
                  accesses_per_sec(sharded), sharded.wall_s, speedup);

      const std::vector<double> util =
          shard_utilization(sharded.result, channels);
      std::fprintf(f, "%s    {\"streams\": %u, \"jobs\": %u, "
                   "\"serial\": {\"wall_s\": %.6f, \"accesses_per_sec\": "
                   "%.1f},\n"
                   "     \"sharded\": {\"wall_s\": %.6f, "
                   "\"accesses_per_sec\": %.1f},\n"
                   "     \"speedup\": %.3f, \"bit_identical\": true,\n"
                   "     \"per_shard_utilization\": [",
                   first_row ? "" : ",\n", streams, j, serial.wall_s,
                   accesses_per_sec(serial), sharded.wall_s,
                   accesses_per_sec(sharded), speedup);
      for (unsigned c = 0; c < channels; ++c) {
        std::fprintf(f, "%s%.4f", c == 0 ? "" : ", ", util[c]);
      }
      std::fprintf(f, "]}");
      first_row = false;
    }
  }
  std::fprintf(f, "\n  ]\n}\n");
  std::fclose(f);
  std::printf("\nresults bit-identical; wrote %s\n", out_path.c_str());
  return 0;
}

// Perf harness for multi-stream serving. Builds N per-core benchmark
// streams and runs them against a multi-channel platform three ways:
// serially over the pre-merged mix (trace/mix.h), sharded over the same
// mix (sim/sharded.h), and in service mode — N live SimService sessions
// (sim/service.h) fed chunk by chunk through the streaming submit/step
// API, under back-pressure. All three are verified bit-identical, and
// the report shows accesses/sec versus streams x jobs plus each channel
// shard's bus utilization.
//
// Arguments: accesses=N per stream (default 10000), seed=S (42),
// channels=C (4), jobs=J (4; the sharded/service runs also measure
// jobs=2 when J != 2), streams=K (0 = the full {1, 2, 4, 8} sweep,
// otherwise just K), chunk=B (256 records per submit), out=FILE
// (BENCH_serve.json).
//
// On a single-hardware-thread host the sharded numbers measure barrier
// overhead, not parallelism; the JSON carries "degraded_environment":
// true so downstream tooling can discount them.
#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_json.h"
#include "common/config.h"
#include "common/perf.h"
#include "common/thread_pool.h"
#include "sim/experiment.h"
#include "sim/service.h"
#include "sim/sharded.h"
#include "stats/metrics.h"
#include "trace/mix.h"
#include "trace/synthetic.h"

namespace {

using namespace wompcm;

// Per-stream seed recipe shared by the mix and service drivers (and by
// tools/womd): stream s draws from seed ^ (golden-ratio * (s + 1)).
std::uint64_t stream_seed(std::uint64_t seed, unsigned s) {
  return seed ^ (0x9e3779b97f4a7c15ULL * (s + 1));
}

// One serve mix: `streams` synthetic benchmark generators (cycling the
// paper suite, each on its own seed stream) merged by absolute arrival.
// Deterministic: rebuilt identically for every measured run.
std::unique_ptr<TraceSource> make_mix(unsigned streams,
                                      const MemoryGeometry& geom,
                                      std::uint64_t accesses,
                                      std::uint64_t seed) {
  const std::vector<WorkloadProfile> profiles = benchmark_profiles();
  std::vector<std::unique_ptr<TraceSource>> parts;
  parts.reserve(streams);
  for (unsigned s = 0; s < streams; ++s) {
    const WorkloadProfile& p = profiles[s % profiles.size()];
    parts.push_back(std::make_unique<SyntheticTraceSource>(
        p, geom, stream_seed(seed, s), accesses));
  }
  return std::make_unique<MixTraceSource>(std::move(parts));
}

struct Measurement {
  double wall_s = 0.0;
  SimResult result;
};

Measurement measure_serial(const SimConfig& cfg, unsigned streams,
                           std::uint64_t accesses, std::uint64_t seed) {
  const auto mix = make_mix(streams, cfg.geom, accesses, seed);
  Measurement m;
  const std::uint64_t t0 = perf::now_ns();
  m.result = Simulator(cfg).run(*mix);
  m.wall_s = static_cast<double>(perf::now_ns() - t0) * 1e-9;
  return m;
}

Measurement measure_sharded(const SimConfig& cfg, unsigned streams,
                            std::uint64_t accesses, std::uint64_t seed,
                            unsigned jobs) {
  const auto mix = make_mix(streams, cfg.geom, accesses, seed);
  Measurement m;
  const std::uint64_t t0 = perf::now_ns();
  m.result = run_single_sharded(cfg, *mix, jobs);
  m.wall_s = static_cast<double>(perf::now_ns() - t0) * 1e-9;
  return m;
}

// Service mode: every stream is a live session, fed `chunk` records per
// submit and resubmitting whatever back-pressure bounces — the interactive
// client path, where the service does the arrival-order merge the batch
// drivers above get from MixTraceSource.
Measurement measure_service(const SimConfig& cfg, unsigned streams,
                            std::uint64_t accesses, std::uint64_t seed,
                            unsigned jobs, std::size_t chunk) {
  const std::vector<WorkloadProfile> profiles = benchmark_profiles();
  struct Feed {
    std::unique_ptr<TraceSource> src;
    SessionId id = 0;
    std::vector<TraceRecord> buf;
    std::size_t off = 0;  // accepted prefix of buf
    bool eof = false;
    bool closed = false;
  };
  std::vector<Feed> feeds(streams);
  for (unsigned s = 0; s < streams; ++s) {
    feeds[s].src = std::make_unique<SyntheticTraceSource>(
        profiles[s % profiles.size()], cfg.geom, stream_seed(seed, s),
        accesses);
  }

  Measurement m;
  const std::uint64_t t0 = perf::now_ns();
  ServiceOptions opts;
  opts.jobs = jobs;
  SimService svc(cfg, opts);
  for (unsigned s = 0; s < streams; ++s) {
    StreamSpec spec;
    spec.name = "core" + std::to_string(s);
    spec.capacity = 4 * chunk;
    feeds[s].id = svc.open_session(spec);
  }
  unsigned live = streams;
  while (live > 0) {
    for (Feed& fd : feeds) {
      if (fd.closed) continue;
      if (fd.off == fd.buf.size() && !fd.eof) {
        fd.buf.resize(chunk);
        const std::size_t n = fd.src->next_block(fd.buf.data(), chunk);
        fd.buf.resize(n);
        fd.off = 0;
        fd.eof = n < chunk;
      }
      if (fd.off < fd.buf.size()) {
        fd.off +=
            svc.submit(fd.id, fd.buf.data() + fd.off, fd.buf.size() - fd.off)
                .accepted;
      }
      if (fd.eof && fd.off == fd.buf.size()) {
        svc.close_session(fd.id);
        fd.closed = true;
        --live;
      }
    }
    svc.step();
  }
  m.result = svc.drain();
  m.wall_s = static_cast<double>(perf::now_ns() - t0) * 1e-9;
  return m;
}

double accesses_per_sec(const Measurement& m) {
  const auto injected = m.result.injected_reads + m.result.injected_writes;
  return m.wall_s > 0.0 ? static_cast<double>(injected) / m.wall_s : 0.0;
}

// Demand-busy fraction of each channel shard's data bus over the run.
std::vector<double> shard_utilization(const SimResult& r, unsigned channels) {
  std::vector<double> util(channels, 0.0);
  if (r.end_time == 0) return util;
  for (unsigned c = 0; c < channels; ++c) {
    util[c] = static_cast<double>(
                  r.metrics.counter(channel_metric(c, "bus_busy_ns"))) /
              static_cast<double>(r.end_time);
  }
  return util;
}

}  // namespace

int main(int argc, char** argv) {
  const KeyValueConfig args = KeyValueConfig::from_args(argc, argv);
  const auto accesses =
      static_cast<std::uint64_t>(args.get_int_or("accesses", 10000));
  const auto seed = static_cast<std::uint64_t>(args.get_int_or("seed", 42));
  const auto channels =
      static_cast<unsigned>(args.get_int_or("channels", 4));
  const auto jobs = static_cast<unsigned>(args.get_int_or("jobs", 4));
  const auto one_streams =
      static_cast<unsigned>(args.get_int_or("streams", 0));
  const auto chunk =
      static_cast<std::size_t>(args.get_int_or("chunk", 256));
  const std::string out_path = args.get_string_or("out", "BENCH_serve.json");
  // Free-form provenance string recorded in the JSON (e.g. whether the
  // run was interleaved A/B against a baseline binary).
  const std::string note = args.get_string_or("note", "");

  SimConfig cfg = paper_config();
  cfg.geom.channels = channels;
  cfg.geom.ranks = std::max(1u, 16 / channels);  // keep total ranks constant
  cfg.arch.kind = ArchKind::kRefreshWomPcm;
  cfg.warmup_accesses = 0;

  std::vector<unsigned> stream_counts = {1, 2, 4, 8};
  if (one_streams != 0) stream_counts = {one_streams};
  std::vector<unsigned> job_counts = {jobs};
  if (jobs != 2) job_counts.insert(job_counts.begin(), 2);

  const unsigned hw = ThreadPool::hardware_workers();
  const bool degraded = hw == 1;
  std::printf("perf_serve: %u-channel %s, %llu accesses/stream, seed %llu, "
              "%u hardware thread(s)\n",
              channels, to_string(cfg.arch.kind),
              static_cast<unsigned long long>(accesses),
              static_cast<unsigned long long>(seed), hw);
  if (degraded) {
    std::printf("WARNING: single hardware thread — sharded timings measure "
                "barrier overhead, not parallelism (degraded environment)\n");
  }
  std::printf("\n%8s %8s %8s %12s %12s %9s\n", "streams", "mode", "jobs",
              "acc/s", "wall_s", "speedup");

  bench::BenchJson json(out_path, "perf_serve", /*schema=*/2);
  if (!json.valid()) return 1;
  json.field_str("arch", to_string(cfg.arch.kind));
  json.field_u64("channels", channels);
  json.field_u64("accesses_per_stream", accesses);
  json.field_u64("seed", seed);
  json.field_u64("chunk", chunk);
  json.environment(note);
  std::FILE* f = json.file();
  std::fprintf(f, "  \"rows\": [\n");

  bool first_row = true;
  for (const unsigned streams : stream_counts) {
    const Measurement serial = measure_serial(cfg, streams, accesses, seed);
    std::printf("%8u %8s %8s %12.0f %12.3f %9s\n", streams, "batch", "1",
                accesses_per_sec(serial), serial.wall_s, "1.00x");

    for (const unsigned j : job_counts) {
      const Measurement sharded =
          measure_sharded(cfg, streams, accesses, seed, j);
      const Measurement service =
          measure_service(cfg, streams, accesses, seed, j, chunk);
      std::string why;
      if (!bench::same_result(serial.result, sharded.result, &why)) {
        std::printf("MISMATCH (sharded) at streams=%u jobs=%u: %s differs\n",
                    streams, j, why.c_str());
        return 1;
      }
      if (!bench::same_result(serial.result, service.result, &why)) {
        std::printf("MISMATCH (service) at streams=%u jobs=%u: %s differs\n",
                    streams, j, why.c_str());
        return 1;
      }
      const double speedup =
          sharded.wall_s > 0.0 ? serial.wall_s / sharded.wall_s : 0.0;
      const double svc_speedup =
          service.wall_s > 0.0 ? serial.wall_s / service.wall_s : 0.0;
      std::printf("%8u %8s %8u %12.0f %12.3f %8.2fx\n", streams, "sharded",
                  j, accesses_per_sec(sharded), sharded.wall_s, speedup);
      std::printf("%8u %8s %8u %12.0f %12.3f %8.2fx\n", streams, "service",
                  j, accesses_per_sec(service), service.wall_s, svc_speedup);

      const std::vector<double> util =
          shard_utilization(sharded.result, channels);
      std::fprintf(f, "%s    {\"streams\": %u, \"jobs\": %u, "
                   "\"serial\": {\"wall_s\": %.6f, \"accesses_per_sec\": "
                   "%.1f},\n"
                   "     \"sharded\": {\"wall_s\": %.6f, "
                   "\"accesses_per_sec\": %.1f},\n"
                   "     \"service\": {\"wall_s\": %.6f, "
                   "\"accesses_per_sec\": %.1f, \"speedup\": %.3f},\n"
                   "     \"speedup\": %.3f, \"bit_identical\": true,\n"
                   "     \"per_shard_utilization\": [",
                   first_row ? "" : ",\n", streams, j, serial.wall_s,
                   accesses_per_sec(serial), sharded.wall_s,
                   accesses_per_sec(sharded), service.wall_s,
                   accesses_per_sec(service), svc_speedup, speedup);
      for (unsigned c = 0; c < channels; ++c) {
        std::fprintf(f, "%s%.4f", c == 0 ? "" : ", ", util[c]);
      }
      std::fprintf(f, "]}");
      first_row = false;
    }
  }
  std::fprintf(f, "\n  ]\n}\n");
  std::printf("\nresults bit-identical (sharded and service); wrote %s\n",
              out_path.c_str());
  return 0;
}

// Code-family ablation: the frontier the sectioned codec layer opens up.
//
// One row per (coding kind, code) cell over the enlarged code matrix —
// the classic symbol codes (rs23, marker) behind wom-wide, the polar
// block family behind main.coding=polar, and the time-space constrained
// family behind main.coding=ts-constrained. Each row pairs the static
// code parameters (k/n per section, write budget t, capacity overhead,
// wear bound) with measured end-to-end behavior: demand latencies, write
// energy per access, and the headline endurance metric — RESET-only
// rewrites per alpha-write (counters writes.fast / writes.alpha). A
// higher ratio means more writes land in the cheap in-budget regime
// before the region pays a full re-initialization.
//
// Usage: ablation_codes [accesses=N] [seed=S]

#include <cstdio>

#include "common/config.h"
#include "sim/experiment.h"
#include "stats/table.h"
#include "wom/registry.h"

using namespace wompcm;

namespace {

struct Cell {
  const char* label;
  CodingKind main;
  const char* code;  // resolved per-region; "" = family default
};

ArchConfig make_arch(const Cell& cell) {
  ArchConfig a;
  a.kind = ArchKind::kWomPcm;
  a.composition = validate_composition(
      {cell.main, false, CodingKind::kWomWide, RefreshKind::kNone});
  // The legacy key feeds the classic kinds; the per-region override feeds
  // the sectioned families (either path resolves to the same RegionCode).
  a.code = cell.code;
  a.main_code = cell.code;
  return a;
}

}  // namespace

int main(int argc, char** argv) {
  const KeyValueConfig args = KeyValueConfig::from_args(argc, argv);
  const auto accesses =
      static_cast<std::uint64_t>(args.get_int_or("accesses", 40000));
  const auto seed = static_cast<std::uint64_t>(args.get_int_or("seed", 42));

  // The frontier: classic two-write rs23 (the paper's cell), a deeper
  // tabular marker code, the polar block family, and the time-space
  // constrained replica family. All run main-memory-only with refresh off
  // so the rewrite budget — not refresh or cache effects — drives the
  // comparison. (With RAT refresh on, rows that hit their budget are
  // restored in the background, which flattens exactly the alpha-write
  // differences this ablation measures.)
  const Cell cells[] = {
      {"rs23 (paper)", CodingKind::kWomWide, "rs23-inv"},
      {"marker t=4", CodingKind::kWomWide, "marker-k2t4-inv"},
      {"polar m=7", CodingKind::kPolar, "polar-m7-inv"},
      {"tsc rs23x4", CodingKind::kTsConstrained, "tsc-rs23x4-inv"},
  };

  std::vector<ArchConfig> archs;
  for (const Cell& cell : cells) archs.push_back(make_arch(cell));
  const std::vector<WorkloadProfile> profiles = {*find_profile("401.bzip2"),
                                                 *find_profile("ocean")};

  RunRequest req;
  req.config = paper_config();
  req.trace = TraceSpec::profile(WorkloadProfile{}, accesses);
  req.options.seed = seed;
  const auto rows = run_sweep(req, archs, profiles);

  std::printf("Code-family ablation: sectioned codec cells, main memory "
              "only, refresh off\n(benchmark average over 401.bzip2 and "
              "ocean, %llu accesses each)\n\n",
              static_cast<unsigned long long>(accesses));
  TextTable t({"cell", "code", "k/n", "t", "ovh", "wear", "write ns",
               "read ns", "wr pJ/acc", "fast/alpha"});
  for (std::size_t a = 0; a < archs.size(); ++a) {
    const CodeInfo info = code_info(cells[a].code);
    double w = 0.0, r = 0.0, e = 0.0, fast = 0.0, alpha = 0.0;
    for (const SweepRow& row : rows) {
      const SimResult& res = row.results.at(a);
      w += res.avg_write_ns();
      r += res.avg_read_ns();
      e += res.energy_write_pj /
           static_cast<double>(res.injected_reads + res.injected_writes);
      fast += static_cast<double>(res.stats.counters.get("writes.fast"));
      alpha += static_cast<double>(res.stats.counters.get("writes.alpha"));
    }
    const double n = static_cast<double>(rows.size());
    t.add_row({cells[a].label, info.name,
               std::to_string(info.data_bits) + "/" +
                   std::to_string(info.wits),
               std::to_string(info.max_writes), TextTable::fmt(info.overhead, 2),
               TextTable::fmt(info.wear_bound, 2), TextTable::fmt(w / n, 1),
               TextTable::fmt(r / n, 1), TextTable::fmt(e / n, 1),
               TextTable::fmt(alpha > 0.0 ? fast / alpha : 0.0, 2)});
  }
  std::printf("%s\n", t.to_text().c_str());
  std::printf(
      "expected shape: fast/alpha climbs monotonically with the write\n"
      "budget t and approaches t - 1 as rewrites dominate first-touch\n"
      "(cold) alphas; rs23 (t = 2) pays an alpha for every in-budget\n"
      "rewrite while the t = 8 families take up to seven, at higher\n"
      "capacity overhead; tsc additionally bounds per-write cell wear to\n"
      "1/4, which the fault model sees as proportionally slower wear\n");
  return 0;
}

// Energy breakdown ablation.
//
// The paper notes only that one PCM-refresh costs one row read plus one row
// write; the WoM-SET line of work [34] attacks PCM *energy* with WOM codes.
// This bench breaks total array energy into read/write/refresh components
// per architecture: WOM codes trade extra programmed bits (1.5x codewords)
// for fewer SET pulses, and PCM-refresh converts demand SETs into
// background refresh energy.
//
// Usage: ablation_energy [accesses=N] [seed=S]

#include <cstdio>

#include "common/config.h"
#include "sim/experiment.h"
#include "stats/table.h"

using namespace wompcm;

int main(int argc, char** argv) {
  const KeyValueConfig args = KeyValueConfig::from_args(argc, argv);
  const auto accesses =
      static_cast<std::uint64_t>(args.get_int_or("accesses", 80000));
  const auto seed = static_cast<std::uint64_t>(args.get_int_or("seed", 42));

  std::printf("Energy breakdown per architecture (pJ per demand access; "
              "Lee et al. pulse energies)\n\n");
  const ArchKind kinds[] = {ArchKind::kBaseline, ArchKind::kFlipNWrite,
                            ArchKind::kWomPcm, ArchKind::kRefreshWomPcm,
                            ArchKind::kWcpcm};
  for (const char* bench : {"464.h264ref", "ocean"}) {
    const auto p = *find_profile(bench);
    std::printf("%s\n", bench);
    TextTable t({"architecture", "read pJ/acc", "write pJ/acc",
                 "refresh pJ/acc", "total pJ/acc", "write norm"});
    double base_w = 0;
    for (const ArchKind kind : kinds) {
      SimConfig cfg = paper_config();
      cfg.arch.kind = kind;
      const SimResult r = run({cfg, TraceSpec::profile(p, accesses),
                               RunOptions::with_seed(seed)});
      const double n =
          static_cast<double>(r.injected_reads + r.injected_writes);
      if (kind == ArchKind::kBaseline) base_w = r.avg_write_ns();
      const double total =
          r.energy_read_pj + r.energy_write_pj + r.energy_refresh_pj;
      t.add_row({r.arch_name, TextTable::fmt(r.energy_read_pj / n, 0),
                 TextTable::fmt(r.energy_write_pj / n, 0),
                 TextTable::fmt(r.energy_refresh_pj / n, 0),
                 TextTable::fmt(total / n, 0),
                 TextTable::fmt(r.avg_write_ns() / base_w)});
    }
    std::printf("%s\n", t.to_text().c_str());
  }
  std::printf(
      "expected shape: Flip-N-Write minimizes write energy but not latency;\n"
      "the WOM architectures pay ~1.5x codeword energy (plus refresh\n"
      "energy) for their latency wins — energy is WoM-SET's [34] problem,\n"
      "latency is this paper's\n");
  return 0;
}

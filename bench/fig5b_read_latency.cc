// Fig. 5(b): normalized average memory READ latency of the four PCM
// architectures across SPEC CPU2006 / MiBench / SPLASH-2.
//
// Paper averages: WOM-code PCM 0.898 (-10.2%), PCM-refresh 0.521 (-47.9%),
// WCPCM 0.560 (-44.0%).
//
// Usage: fig5b_read_latency [accesses=N] [seed=S] [csv=1]

#include "fig5_common.h"

int main(int argc, char** argv) {
  return wompcm::bench::run_fig5(
      argc, argv, "Fig. 5(b): normalized read latency in PCM main memory",
      "average read latency", 0.898, 0.521, 0.560,
      [](const wompcm::SimResult& r) { return r.avg_read_ns(); });
}

// Hot-path microbench for the devirtualized dispatch layers: TagArray
// probe throughput per replacement policy (the enum-switched
// ReplacementState — or the virtual reference under
// -DWOMPCM_REFERENCE_DISPATCH=ON, so an A/B of the two builds isolates the
// dispatch cost), and trace-injection throughput across batch sizes (the
// TraceInjector front end shared by the serial and sharded event loops).
//
// Arguments: ops=N (default 2000000) probe operations per policy,
// accesses=N (default 1000000) records per injection run.
#include <cstdio>
#include <vector>

#include "arch/tag_array.h"
#include "common/config.h"
#include "common/perf.h"
#include "common/rng.h"
#include "sim/experiment.h"
#include "sim/injector.h"
#include "trace/trace.h"

namespace {

using namespace wompcm;

// One mixed probe stream: lookup -> touch on hit, fill_way + install on
// miss — the exact hook sequence CacheLayer and TierFront drive per access.
double tag_probe_rate(ReplacementKind kind, unsigned sets, unsigned ways,
                      std::uint64_t ops) {
  TagArray tags(sets, ways, kind, /*seed=*/1);
  Rng rng(42);
  // Tag space ~2x the capacity: a steady mix of hits and misses.
  const std::uint64_t tag_space = 2 * static_cast<std::uint64_t>(ways);
  std::uint64_t sink = 0;
  const std::uint64_t t0 = perf::now_ns();
  for (std::uint64_t i = 0; i < ops; ++i) {
    const unsigned set = static_cast<unsigned>(rng.next_below(sets));
    const std::uint64_t tag = rng.next_below(tag_space);
    const unsigned w = tags.lookup(set, tag);
    if (w != TagArray::kNoWay) {
      tags.touch(set, w);
      sink += w;
    } else {
      const unsigned v = tags.fill_way(set);
      tags.install(set, v, tag);
      sink += v;
    }
  }
  const std::uint64_t ns = perf::now_ns() - t0;
  // Keep the probe results observable so the loop cannot be elided.
  if (sink == ~std::uint64_t{0}) std::printf("(unreachable %llu)\n",
                                             (unsigned long long)sink);
  return ns == 0 ? 0.0 : static_cast<double>(ops) * 1e9 /
                             static_cast<double>(ns);
}

// End-to-end front-end rate: fetch + decode + consume through the
// TraceInjector at a given block size.
double injection_rate(const std::vector<TraceRecord>& records,
                      const AddressMapper& mapper, unsigned block) {
  VectorTraceSource src(records);
  TraceInjector inj(src, mapper, /*warmup=*/0, block);
  std::uint64_t sink = 0;
  const std::uint64_t t0 = perf::now_ns();
  while (const Transaction* tx = inj.peek()) {
    sink += tx->dec.channel + tx->arrival;
    inj.pop();
  }
  const std::uint64_t ns = perf::now_ns() - t0;
  if (sink == ~std::uint64_t{0}) std::printf("(unreachable)\n");
  return ns == 0 ? 0.0 : static_cast<double>(records.size()) * 1e9 /
                             static_cast<double>(ns);
}

}  // namespace

int main(int argc, char** argv) {
  const KeyValueConfig args = KeyValueConfig::from_args(argc, argv);
  const auto ops =
      static_cast<std::uint64_t>(args.get_int_or("ops", 2000000));
  const auto accesses =
      static_cast<std::uint64_t>(args.get_int_or("accesses", 1000000));

#if defined(WOMPCM_REFERENCE_DISPATCH)
  std::printf("perf_hotpath (reference virtual dispatch)\n\n");
#else
  std::printf("perf_hotpath (devirtualized dispatch)\n\n");
#endif

  std::printf("TagArray probe throughput (%llu mixed probes each):\n",
              static_cast<unsigned long long>(ops));
  struct Case {
    const char* label;
    ReplacementKind kind;
    unsigned sets, ways;
  };
  const Case cases[] = {
      {"bank_tag 4096x1", ReplacementKind::kBankTag, 4096, 1},
      {"lru      1024x4", ReplacementKind::kLru, 1024, 4},
      {"lru       256x8", ReplacementKind::kLru, 256, 8},
      {"fifo     1024x4", ReplacementKind::kFifo, 1024, 4},
      {"random   1024x4", ReplacementKind::kRandom, 1024, 4},
  };
  for (const Case& c : cases) {
    const double rate = tag_probe_rate(c.kind, c.sets, c.ways, ops);
    std::printf("  %-16s %10.1f Mprobe/s\n", c.label, rate * 1e-6);
  }

  std::printf("\nTrace injection throughput (%llu records, paper "
              "geometry):\n",
              static_cast<unsigned long long>(accesses));
  const MemoryGeometry geom = paper_config().geom;
  const AddressMapper mapper(geom);
  std::vector<TraceRecord> records;
  records.reserve(accesses);
  Rng rng(7);
  for (std::uint64_t i = 0; i < accesses; ++i) {
    TraceRecord r;
    r.gap = rng.next_below(8);
    r.type = rng.next_below(3) == 0 ? AccessType::kWrite : AccessType::kRead;
    r.addr = rng.next_u64() % (std::uint64_t{1} << 32);
    records.push_back(r);
  }
  for (const unsigned block : {1u, 8u, 32u, 64u, 256u, 1024u}) {
    const double rate = injection_rate(records, mapper, block);
    std::printf("  block=%-5u %10.1f Macc/s\n", block, rate * 1e-6);
  }
  return 0;
}

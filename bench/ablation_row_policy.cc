// Controller-substrate ablation: open-page vs closed-page row buffers.
//
// The WOM fast path and PCM-refresh shorten the program phase, but the
// activation (row read, 27 ns) is policy dependent: open-page amortizes it
// over row hits, closed-page pays it on every access. This bench shows how
// much of each architecture's gain survives a closed-page controller — a
// sanity check that the reproduction's conclusions do not hinge on the
// row-buffer policy.
//
// Usage: ablation_row_policy [accesses=N] [seed=S]

#include <cstdio>

#include "common/config.h"
#include "sim/experiment.h"
#include "stats/table.h"

using namespace wompcm;

int main(int argc, char** argv) {
  const KeyValueConfig args = KeyValueConfig::from_args(argc, argv);
  const auto accesses =
      static_cast<std::uint64_t>(args.get_int_or("accesses", 80000));
  const auto seed = static_cast<std::uint64_t>(args.get_int_or("seed", 42));

  std::printf("Row-buffer policy ablation (normalized write latency within "
              "each policy)\n\n");
  TextTable t({"benchmark", "policy", "base write ns", "wom", "refresh",
               "wcpcm", "base read ns"});
  for (const char* name : {"400.perlbench", "464.h264ref", "ocean"}) {
    const auto p = *find_profile(name);
    for (const RowPolicy policy : {RowPolicy::kOpen, RowPolicy::kClosed}) {
      std::vector<SimResult> results;
      for (const ArchConfig& a : paper_architectures()) {
        SimConfig cfg = paper_config();
        cfg.arch = a;
        cfg.row_policy = policy;
        results.push_back(run({cfg, TraceSpec::profile(p, accesses),
                               RunOptions::with_seed(seed)}));
      }
      const double base_w = results[0].avg_write_ns();
      t.add_row({name, to_string(policy), TextTable::fmt(base_w, 1),
                 TextTable::fmt(results[1].avg_write_ns() / base_w),
                 TextTable::fmt(results[2].avg_write_ns() / base_w),
                 TextTable::fmt(results[3].avg_write_ns() / base_w),
                 TextTable::fmt(results[0].avg_read_ns(), 1)});
    }
  }
  std::printf("%s\n", t.to_text().c_str());
  std::printf(
      "expected shape: closed-page raises absolute latencies (every access\n"
      "activates) but the architecture ordering and relative gains hold\n");
  return 0;
}

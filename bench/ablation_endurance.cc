// Endurance ablation — the paper's open question, quantified.
//
// The WOM architectures change how often cells cycle: fast rewrites flip
// only half the coded cells, but alpha-writes erase-and-program, and every
// PCM-refresh cycles a whole row in the background. This bench reports the
// hottest-line wear, the projected array lifetime at 1e8 cycles/cell, and
// what Start-Gap wear leveling (Qureshi, MICRO 2009) buys on top.
//
// Usage: ablation_endurance [accesses=N] [seed=S]

#include <cstdio>

#include "common/config.h"
#include "sim/experiment.h"
#include "stats/table.h"

using namespace wompcm;

namespace {

struct Variant {
  const char* label;
  ArchKind kind;
  bool start_gap;
};

}  // namespace

int main(int argc, char** argv) {
  const KeyValueConfig args = KeyValueConfig::from_args(argc, argv);
  const auto accesses =
      static_cast<std::uint64_t>(args.get_int_or("accesses", 80000));
  const auto seed = static_cast<std::uint64_t>(args.get_int_or("seed", 42));

  std::printf(
      "Endurance ablation (cell endurance 1e8 cycles; lifetime projected\n"
      "from the hottest line's wear rate over the simulated window)\n\n");

  const Variant variants[] = {
      {"pcm", ArchKind::kBaseline, false},
      {"wom-pcm", ArchKind::kWomPcm, false},
      {"pcm-refresh", ArchKind::kRefreshWomPcm, false},
      {"wcpcm", ArchKind::kWcpcm, false},
      {"wom-pcm + start-gap", ArchKind::kWomPcm, true},
      {"pcm-refresh + start-gap", ArchKind::kRefreshWomPcm, true},
  };

  for (const char* bench : {"464.h264ref", "401.bzip2"}) {
    const auto p = *find_profile(bench);
    std::printf("%s\n", bench);
    TextTable t({"architecture", "max line wear", "mean line wear",
                 "lifetime (hours)", "gap moves", "avg write ns"});
    for (const Variant& v : variants) {
      SimConfig cfg = paper_config();
      cfg.arch.kind = v.kind;
      cfg.arch.start_gap = v.start_gap;
      cfg.arch.start_gap_interval = 128;
      const SimResult r = run({cfg, TraceSpec::profile(p, accesses),
                               RunOptions::with_seed(seed)});
      t.add_row({v.label, TextTable::fmt(r.max_line_wear, 1),
                 TextTable::fmt(r.mean_line_wear, 2),
                 TextTable::fmt(r.lifetime_years * 365.25 * 24.0, 1),
                 std::to_string(r.stats.counters.get("wl.gap_moves")),
                 TextTable::fmt(r.avg_write_ns(), 1)});
    }
    std::printf("%s\n", t.to_text().c_str());
  }
  std::printf(
      "note: lifetimes look short because the synthetic stream compresses\n"
      "hours of rewrite traffic into milliseconds; compare ratios, not\n"
      "absolutes. At paper scale (32768 rows/bank) Start-Gap's rotation is\n"
      "far slower than the simulated window, so its leveling shows up in\n"
      "the small-array demo below, not in the tables above.\n\n");

  // Leveling demo: a hot-row workload on a small array, where the gap
  // completes many rotations within the window.
  std::printf("Start-Gap leveling demo (64-row banks, interval 4)\n\n");
  WorkloadProfile hot;
  hot.name = "hot-row";
  hot.suite = "demo";
  hot.write_fraction = 0.8;
  hot.footprint_pages = 8;
  hot.write_zipf = 1.4;
  hot.rewrite_frac = 0.9;
  TextTable t2({"variant", "max line wear", "mean line wear", "gap moves",
                "avg write ns"});
  for (const bool sg : {false, true}) {
    SimConfig cfg = paper_config();
    cfg.geom.ranks = 2;
    cfg.geom.banks_per_rank = 2;
    cfg.geom.rows_per_bank = 64;
    cfg.arch.kind = ArchKind::kWomPcm;
    cfg.arch.start_gap = sg;
    cfg.arch.start_gap_interval = 4;
    const SimResult r = run({cfg, TraceSpec::profile(hot, accesses / 2),
                             RunOptions::with_seed(seed)});
    t2.add_row({sg ? "wom-pcm + start-gap" : "wom-pcm",
                TextTable::fmt(r.max_line_wear, 1),
                TextTable::fmt(r.mean_line_wear, 2),
                std::to_string(r.stats.counters.get("wl.gap_moves")),
                TextTable::fmt(r.avg_write_ns(), 1)});
  }
  std::printf("%s\n", t2.to_text().c_str());
  std::printf(
      "expected shape: WOM rewrites wear cells no faster than conventional\n"
      "writes per write, but alpha-writes and background refresh add\n"
      "cycling; Start-Gap cuts the hottest line's wear once its rotation\n"
      "period fits the workload, at a small latency cost\n");
  return 0;
}

// Perf harness for the sweep engine: times the serial and parallel
// arch-sweep on the same cells, verifies the results are bit-identical,
// and reports cells/sec, wall-clock speedup, and the per-phase breakdown
// (trace-gen / controller / codec) summed over all cells.
//
// Arguments: accesses=N (default 5000), seed=S (42), jobs=J (0 = all
// hardware threads), profiles=P (8, capped at 20), out=FILE
// (BENCH_sweep.json; the machine-readable mirror of the stdout report).
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "common/config.h"
#include "common/perf.h"
#include "common/thread_pool.h"
#include "sim/experiment.h"

namespace {

using namespace wompcm;

// Compares the deterministic portion of two results; phase counters are
// wall-clock and excluded by design.
bool same_result(const SimResult& a, const SimResult& b, std::string* why) {
  auto fail = [&](const char* what) {
    *why = what;
    return false;
  };
  if (a.arch_name != b.arch_name) return fail("arch_name");
  if (a.end_time != b.end_time) return fail("end_time");
  if (a.injected_reads != b.injected_reads) return fail("injected_reads");
  if (a.injected_writes != b.injected_writes) return fail("injected_writes");
  if (a.deferred_injections != b.deferred_injections) {
    return fail("deferred_injections");
  }
  if (a.refresh_commands != b.refresh_commands) return fail("refresh");
  if (a.refresh_rows != b.refresh_rows) return fail("refresh_rows");
  const auto& ra = a.stats.demand_read_latency;
  const auto& rb = b.stats.demand_read_latency;
  const auto& wa = a.stats.demand_write_latency;
  const auto& wb = b.stats.demand_write_latency;
  if (ra.count() != rb.count() || ra.sum() != rb.sum() ||
      ra.min() != rb.min() || ra.max() != rb.max()) {
    return fail("read latency stats");
  }
  if (wa.count() != wb.count() || wa.sum() != wb.sum() ||
      wa.min() != wb.min() || wa.max() != wb.max()) {
    return fail("write latency stats");
  }
  if (a.stats.counters.all() != b.stats.counters.all()) {
    return fail("counters");
  }
  if (a.energy_read_pj != b.energy_read_pj ||
      a.energy_write_pj != b.energy_write_pj ||
      a.energy_refresh_pj != b.energy_refresh_pj) {
    return fail("energy");
  }
  if (a.max_line_wear != b.max_line_wear ||
      a.mean_line_wear != b.mean_line_wear ||
      a.lifetime_years != b.lifetime_years) {
    return fail("wear");
  }
  return true;
}

SimResult::PhaseCounters sum_phases(const std::vector<SweepRow>& rows) {
  SimResult::PhaseCounters total;
  for (const SweepRow& row : rows) {
    for (const SimResult& r : row.results) {
      total.trace_gen_ns += r.phases.trace_gen_ns;
      total.controller_ns += r.phases.controller_ns;
      total.codec_ns += r.phases.codec_ns;
      total.total_ns += r.phases.total_ns;
    }
  }
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  const KeyValueConfig args = KeyValueConfig::from_args(argc, argv);
  const auto accesses =
      static_cast<std::uint64_t>(args.get_int_or("accesses", 5000));
  const auto seed = static_cast<std::uint64_t>(args.get_int_or("seed", 42));
  const auto jobs = static_cast<unsigned>(args.get_int_or("jobs", 0));
  const auto nprofiles =
      static_cast<std::size_t>(args.get_int_or("profiles", 8));
  const std::string out_path = args.get_string_or("out", "BENCH_sweep.json");
  // Free-form provenance string recorded in the JSON (e.g. whether the
  // run was interleaved A/B against a baseline binary).
  const std::string note = args.get_string_or("note", "");

  const auto archs = paper_architectures();
  std::vector<WorkloadProfile> profiles = benchmark_profiles();
  if (profiles.size() > nprofiles) profiles.resize(nprofiles);
  const std::size_t cells = archs.size() * profiles.size();

  const ParallelPolicy par = ParallelPolicy::with_jobs(jobs);
  const unsigned hw = ThreadPool::hardware_workers();
  const bool degraded = hw == 1;
  std::printf("perf_sweep: %zu archs x %zu profiles = %zu cells, "
              "%llu accesses/cell, seed %llu, %u worker(s), "
              "%u hardware thread(s)\n",
              archs.size(), profiles.size(), cells,
              static_cast<unsigned long long>(accesses),
              static_cast<unsigned long long>(seed), par.resolved_jobs(), hw);
  if (degraded) {
    std::printf("WARNING: single hardware thread — the parallel sweep "
                "cannot beat serial here; speedup figures measure pool "
                "overhead, not parallelism (degraded environment)\n");
  }
  std::printf("\n");

  const std::uint64_t t0 = perf::now_ns();
  const auto serial = run_arch_sweep(paper_config(), archs, profiles,
                                     accesses, seed, ParallelPolicy::serial());
  const std::uint64_t t1 = perf::now_ns();
  const auto parallel =
      run_arch_sweep(paper_config(), archs, profiles, accesses, seed, par);
  const std::uint64_t t2 = perf::now_ns();

  // Bit-identical check: every cell, every deterministic field.
  for (std::size_t i = 0; i < serial.size(); ++i) {
    for (std::size_t j = 0; j < serial[i].results.size(); ++j) {
      std::string why;
      if (!same_result(serial[i].results[j], parallel[i].results[j], &why)) {
        std::printf("MISMATCH at (%s, %s): %s differs\n",
                    serial[i].benchmark.c_str(),
                    serial[i].results[j].arch_name.c_str(), why.c_str());
        return 1;
      }
    }
  }

  const double serial_s = static_cast<double>(t1 - t0) * 1e-9;
  const double parallel_s = static_cast<double>(t2 - t1) * 1e-9;
  std::printf("serial:   %8.3f s  (%6.2f cells/s)\n", serial_s,
              static_cast<double>(cells) / serial_s);
  std::printf("parallel: %8.3f s  (%6.2f cells/s)\n", parallel_s,
              static_cast<double>(cells) / parallel_s);
  std::printf("speedup:  %8.2fx  (results bit-identical)\n\n",
              serial_s / parallel_s);

  const auto ph = sum_phases(serial);
  const double tot = static_cast<double>(ph.total_ns);
  if (tot > 0.0) {
    std::printf("serial phase breakdown (CPU time over all cells):\n");
    std::printf("  trace-gen:  %6.1f%%\n",
                100.0 * static_cast<double>(ph.trace_gen_ns) / tot);
    std::printf("  controller: %6.1f%%\n",
                100.0 * static_cast<double>(ph.controller_ns) / tot);
    std::printf("  codec:      %6.1f%%\n",
                100.0 * static_cast<double>(ph.codec_ns) / tot);
  }

  // Machine-readable mirror of the report above (schema in README.md),
  // feeding the BENCH_*.json trajectory alongside perf_trace.
  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"perf_sweep\",\n");
  std::fprintf(f, "  \"schema\": 1,\n");
  std::fprintf(f, "  \"accesses\": %llu,\n",
               static_cast<unsigned long long>(accesses));
  std::fprintf(f, "  \"seed\": %llu,\n",
               static_cast<unsigned long long>(seed));
  std::fprintf(f, "  \"archs\": %zu,\n", archs.size());
  std::fprintf(f, "  \"profiles\": %zu,\n", profiles.size());
  std::fprintf(f, "  \"cells\": %zu,\n", cells);
  std::fprintf(f, "  \"jobs\": %u,\n", par.resolved_jobs());
  std::fprintf(f, "  \"hardware_threads\": %u,\n", hw);
  std::fprintf(f, "  \"degraded_environment\": %s,\n",
               degraded ? "true" : "false");
  if (!note.empty()) {
    std::fprintf(f, "  \"note\": \"%s\",\n", note.c_str());
  }
  std::fprintf(f, "  \"serial\": {\"wall_s\": %.6f, \"cells_per_sec\": %.3f},\n",
               serial_s, static_cast<double>(cells) / serial_s);
  std::fprintf(f,
               "  \"parallel\": {\"wall_s\": %.6f, \"cells_per_sec\": %.3f},\n",
               parallel_s, static_cast<double>(cells) / parallel_s);
  std::fprintf(f, "  \"speedup\": %.3f,\n", serial_s / parallel_s);
  std::fprintf(f, "  \"bit_identical\": true,\n");
  std::fprintf(f, "  \"serial_phases_ns\": {\"trace_gen\": %llu, "
               "\"controller\": %llu, \"codec\": %llu, \"total\": %llu}\n",
               static_cast<unsigned long long>(ph.trace_gen_ns),
               static_cast<unsigned long long>(ph.controller_ns),
               static_cast<unsigned long long>(ph.codec_ns),
               static_cast<unsigned long long>(ph.total_ns));
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}

// Perf harness for the sweep engine: times the serial and parallel
// arch-sweep on the same cells, verifies the results are bit-identical,
// and reports cells/sec, wall-clock speedup, and the per-phase breakdown
// (trace-gen / controller / codec) summed over all cells.
//
// Arguments: accesses=N (default 5000), seed=S (42), jobs=J (0 = all
// hardware threads), profiles=P (8, capped at 20), out=FILE
// (BENCH_sweep.json; the machine-readable mirror of the stdout report).
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_json.h"
#include "common/config.h"
#include "common/perf.h"
#include "common/thread_pool.h"
#include "sim/experiment.h"

namespace {

using namespace wompcm;

SimResult::PhaseCounters sum_phases(const std::vector<SweepRow>& rows) {
  SimResult::PhaseCounters total;
  for (const SweepRow& row : rows) {
    for (const SimResult& r : row.results) {
      total.trace_gen_ns += r.phases.trace_gen_ns;
      total.controller_ns += r.phases.controller_ns;
      total.codec_ns += r.phases.codec_ns;
      total.total_ns += r.phases.total_ns;
    }
  }
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  const KeyValueConfig args = KeyValueConfig::from_args(argc, argv);
  const auto accesses =
      static_cast<std::uint64_t>(args.get_int_or("accesses", 5000));
  const auto seed = static_cast<std::uint64_t>(args.get_int_or("seed", 42));
  const auto jobs = static_cast<unsigned>(args.get_int_or("jobs", 0));
  const auto nprofiles =
      static_cast<std::size_t>(args.get_int_or("profiles", 8));
  const std::string out_path = args.get_string_or("out", "BENCH_sweep.json");
  // Free-form provenance string recorded in the JSON (e.g. whether the
  // run was interleaved A/B against a baseline binary).
  const std::string note = args.get_string_or("note", "");

  const auto archs = paper_architectures();
  std::vector<WorkloadProfile> profiles = benchmark_profiles();
  if (profiles.size() > nprofiles) profiles.resize(nprofiles);
  const std::size_t cells = archs.size() * profiles.size();

  const ParallelPolicy par = ParallelPolicy::with_jobs(jobs);
  const unsigned hw = ThreadPool::hardware_workers();
  const bool degraded = hw == 1;
  std::printf("perf_sweep: %zu archs x %zu profiles = %zu cells, "
              "%llu accesses/cell, seed %llu, %u worker(s), "
              "%u hardware thread(s)\n",
              archs.size(), profiles.size(), cells,
              static_cast<unsigned long long>(accesses),
              static_cast<unsigned long long>(seed), par.resolved_jobs(), hw);
  if (degraded) {
    std::printf("WARNING: single hardware thread — the parallel sweep "
                "cannot beat serial here; speedup figures measure pool "
                "overhead, not parallelism (degraded environment)\n");
  }
  std::printf("\n");

  RunRequest req;
  req.config = paper_config();
  req.trace = TraceSpec::profile(WorkloadProfile{}, accesses);
  req.options.seed = seed;

  const std::uint64_t t0 = perf::now_ns();
  req.options.jobs = ParallelPolicy::serial();
  const auto serial = run_sweep(req, archs, profiles);
  const std::uint64_t t1 = perf::now_ns();
  req.options.jobs = par;
  const auto parallel = run_sweep(req, archs, profiles);
  const std::uint64_t t2 = perf::now_ns();

  // Bit-identical check: every cell, every deterministic field.
  for (std::size_t i = 0; i < serial.size(); ++i) {
    for (std::size_t j = 0; j < serial[i].results.size(); ++j) {
      std::string why;
      if (!bench::same_result(serial[i].results[j], parallel[i].results[j],
                              &why)) {
        std::printf("MISMATCH at (%s, %s): %s differs\n",
                    serial[i].benchmark.c_str(),
                    serial[i].results[j].arch_name.c_str(), why.c_str());
        return 1;
      }
    }
  }

  const double serial_s = static_cast<double>(t1 - t0) * 1e-9;
  const double parallel_s = static_cast<double>(t2 - t1) * 1e-9;
  std::printf("serial:   %8.3f s  (%6.2f cells/s)\n", serial_s,
              static_cast<double>(cells) / serial_s);
  std::printf("parallel: %8.3f s  (%6.2f cells/s)\n", parallel_s,
              static_cast<double>(cells) / parallel_s);
  std::printf("speedup:  %8.2fx  (results bit-identical)\n\n",
              serial_s / parallel_s);

  const auto ph = sum_phases(serial);
  const double tot = static_cast<double>(ph.total_ns);
  if (tot > 0.0) {
    std::printf("serial phase breakdown (CPU time over all cells):\n");
    std::printf("  trace-gen:  %6.1f%%\n",
                100.0 * static_cast<double>(ph.trace_gen_ns) / tot);
    std::printf("  controller: %6.1f%%\n",
                100.0 * static_cast<double>(ph.controller_ns) / tot);
    std::printf("  codec:      %6.1f%%\n",
                100.0 * static_cast<double>(ph.codec_ns) / tot);
  }

  // Machine-readable mirror of the report above (schema in README.md),
  // feeding the BENCH_*.json trajectory alongside perf_trace.
  bench::BenchJson json(out_path, "perf_sweep");
  if (!json.valid()) return 1;
  json.field_u64("accesses", accesses);
  json.field_u64("seed", seed);
  json.field_u64("archs", archs.size());
  json.field_u64("profiles", profiles.size());
  json.field_u64("cells", cells);
  json.field_u64("jobs", par.resolved_jobs());
  json.environment(note);
  std::FILE* f = json.file();
  std::fprintf(f, "  \"serial\": {\"wall_s\": %.6f, \"cells_per_sec\": %.3f},\n",
               serial_s, static_cast<double>(cells) / serial_s);
  std::fprintf(f,
               "  \"parallel\": {\"wall_s\": %.6f, \"cells_per_sec\": %.3f},\n",
               parallel_s, static_cast<double>(cells) / parallel_s);
  std::fprintf(f, "  \"speedup\": %.3f,\n", serial_s / parallel_s);
  std::fprintf(f, "  \"bit_identical\": true,\n");
  std::fprintf(f, "  \"serial_phases_ns\": ");
  json.phases_object(ph);
  std::fprintf(f, "\n}\n");
  std::printf("\nwrote %s\n", out_path.c_str());
  return 0;
}

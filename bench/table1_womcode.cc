// Table 1: the <2^2>^2/3 Rivest-Shamir WOM-code.
//
// Prints the first/second write patterns exactly as the paper tabulates
// them, verifies the XOR decode rule (u = b^c, v = a^c) for every value and
// generation, and shows the inverted variant the PCM architectures use.

#include <cstdio>

#include "common/rng.h"
#include "stats/table.h"
#include "wom/block_codec.h"
#include "wom/inverted_code.h"
#include "wom/registry.h"
#include "wom/rs_code.h"

using namespace wompcm;

int main() {
  RivestShamirCode code;

  std::printf("Table 1: <2^2>^2/3 WOM-code (conventional form)\n\n");
  TextTable t({"data x", "first write r(x)", "second write r'(x)",
               "decode(r)", "decode(r')"});
  bool all_ok = true;
  for (unsigned x = 0; x < 4; ++x) {
    const BitVec r = RivestShamirCode::first_pattern(x);
    const BitVec r2 = RivestShamirCode::second_pattern(x);
    const unsigned dx = code.decode(r);
    const unsigned dx2 = code.decode(r2);
    all_ok = all_ok && dx == x && dx2 == x;
    char name[3] = {static_cast<char>('0' + ((x >> 1) & 1)),
                    static_cast<char>('0' + (x & 1)), '\0'};
    t.add_row({name, r.to_string(), r2.to_string(), std::to_string(dx),
               std::to_string(dx2)});
  }
  std::printf("%s\n", t.to_text().c_str());

  // Every legal rewrite only raises bits (conventional WOM direction).
  for (unsigned x = 0; x < 4; ++x) {
    for (unsigned y = 0; y < 4; ++y) {
      const BitVec from = RivestShamirCode::first_pattern(x);
      const BitVec to = code.encode(y, 1, from);
      if (!from.monotone_increasing_to(to)) all_ok = false;
    }
  }

  std::printf("Inverted variant (PCM: rewrites are RESET-only, 1 -> 0)\n\n");
  InvertedCode inv(std::make_shared<RivestShamirCode>());
  TextTable ti({"data x", "first write", "second write (of x+1)"});
  for (unsigned x = 0; x < 4; ++x) {
    const BitVec r = inv.encode(x, 0, inv.initial_state());
    const unsigned y = (x + 1) % 4;  // any different value is a legal rewrite
    const BitVec r2 = inv.encode(y, 1, r);
    if (!r.monotone_decreasing_to(r2)) all_ok = false;
    char name[3] = {static_cast<char>('0' + ((x >> 1) & 1)),
                    static_cast<char>('0' + (x & 1)), '\0'};
    ti.add_row({name, r.to_string(), r2.to_string()});
  }
  std::printf("%s\n", ti.to_text().c_str());

  // The capacity-approaching families the sectioned codec layer adds.
  // Parameter sheet first: total rate t*k/n is what approaches WOM
  // capacity as the polar blocks grow; rs23's is fixed at 4/3.
  std::printf("Sectioned code families (parameter sheet)\n\n");
  TextTable tf({"code", "k", "n", "t", "rate t*k/n", "overhead", "wear",
                "LUT"});
  for (const char* name :
       {"rs23-inv", "polar-m5-inv", "polar-m7-inv", "tsc-rs23x4-inv"}) {
    const CodeInfo info = code_info(name);
    all_ok = all_ok && info.valid;
    tf.add_row({info.name, std::to_string(info.data_bits),
                std::to_string(info.wits), std::to_string(info.max_writes),
                TextTable::fmt(static_cast<double>(info.max_writes) *
                                   info.data_bits / info.wits,
                               3),
                TextTable::fmt(info.overhead, 2),
                TextTable::fmt(info.wear_bound, 2), info.lut ? "yes" : "no"});
  }
  std::printf("%s\n", tf.to_text().c_str());

  // Polar demo: a full t-write sequence on one polar-m5 block (n = 32,
  // k = 6, t = 3), RESET-only throughout and decodable at every step.
  std::printf("polar-m5-inv: one block through its full write budget\n\n");
  const WomCodePtr polar = make_code("polar-m5-inv");
  TextTable tp({"write", "data", "block (32 cells)", "decode"});
  BitVec pstate = polar->initial_state();
  Rng prng(21);
  for (unsigned g = 0; g < polar->max_writes(); ++g) {
    const auto v =
        static_cast<unsigned>(prng.next_below(polar->values()));
    const BitVec next = polar->encode(v, g, pstate);
    if (!pstate.monotone_decreasing_to(next)) all_ok = false;
    const unsigned dv = polar->decode(next);
    all_ok = all_ok && dv == v;
    tp.add_row({std::to_string(g), std::to_string(v), next.to_string(),
                std::to_string(dv)});
    pstate = next;
  }
  std::printf("%s\n", tp.to_text().c_str());

  // Time-space constrained demo: each write of tsc-rs23x4-inv lands in one
  // of four rotating rs23 replicas, so at most 1/4 of the section's cells
  // move per write (the wear bound the fault model sees) and the decode
  // must follow the generation to the active replica.
  std::printf("tsc-rs23x4-inv: replica rotation over one section\n\n");
  BlockCodecPtr tsc = make_block_codec("tsc-rs23x4-inv");
  BitVec sec(tsc->section_wits());
  tsc->erase_section(sec, 0);
  Rng trng(22);
  BitVec data(tsc->section_data_bits());
  BitVec back(tsc->section_data_bits());
  unsigned gen = 0;
  TextTable tt({"write", "replica", "cells moved", "bound", "decode ok"});
  const std::size_t replica_cells = tsc->section_wits() / 4;
  for (unsigned w = 0; w < tsc->max_writes(); ++w) {
    for (std::size_t i = 0; i < data.size(); ++i)
      data.set(i, trng.next_bool(0.5));
    const BitVec before = sec;
    const SectionWrite sw = tsc->write_section(sec, data, 0, &gen);
    tsc->read_section(sec, 0, gen, back);
    const std::size_t moved = sw.set_pulses + sw.reset_pulses;
    all_ok = all_ok && moved <= replica_cells && back == data && !sw.alpha;
    (void)before;
    tt.add_row({std::to_string(w), std::to_string(w / 2),
                std::to_string(moved), std::to_string(replica_cells),
                back == data ? "yes" : "NO"});
  }
  std::printf("%s\n", tt.to_text().c_str());

  std::printf("decode/monotonicity checks: %s\n", all_ok ? "PASS" : "FAIL");
  return all_ok ? 0 : 1;
}

// Table 1: the <2^2>^2/3 Rivest-Shamir WOM-code.
//
// Prints the first/second write patterns exactly as the paper tabulates
// them, verifies the XOR decode rule (u = b^c, v = a^c) for every value and
// generation, and shows the inverted variant the PCM architectures use.

#include <cstdio>

#include "stats/table.h"
#include "wom/inverted_code.h"
#include "wom/rs_code.h"

using namespace wompcm;

int main() {
  RivestShamirCode code;

  std::printf("Table 1: <2^2>^2/3 WOM-code (conventional form)\n\n");
  TextTable t({"data x", "first write r(x)", "second write r'(x)",
               "decode(r)", "decode(r')"});
  bool all_ok = true;
  for (unsigned x = 0; x < 4; ++x) {
    const BitVec r = RivestShamirCode::first_pattern(x);
    const BitVec r2 = RivestShamirCode::second_pattern(x);
    const unsigned dx = code.decode(r);
    const unsigned dx2 = code.decode(r2);
    all_ok = all_ok && dx == x && dx2 == x;
    char name[3] = {static_cast<char>('0' + ((x >> 1) & 1)),
                    static_cast<char>('0' + (x & 1)), '\0'};
    t.add_row({name, r.to_string(), r2.to_string(), std::to_string(dx),
               std::to_string(dx2)});
  }
  std::printf("%s\n", t.to_text().c_str());

  // Every legal rewrite only raises bits (conventional WOM direction).
  for (unsigned x = 0; x < 4; ++x) {
    for (unsigned y = 0; y < 4; ++y) {
      const BitVec from = RivestShamirCode::first_pattern(x);
      const BitVec to = code.encode(y, 1, from);
      if (!from.monotone_increasing_to(to)) all_ok = false;
    }
  }

  std::printf("Inverted variant (PCM: rewrites are RESET-only, 1 -> 0)\n\n");
  InvertedCode inv(std::make_shared<RivestShamirCode>());
  TextTable ti({"data x", "first write", "second write (of x+1)"});
  for (unsigned x = 0; x < 4; ++x) {
    const BitVec r = inv.encode(x, 0, inv.initial_state());
    const unsigned y = (x + 1) % 4;  // any different value is a legal rewrite
    const BitVec r2 = inv.encode(y, 1, r);
    if (!r.monotone_decreasing_to(r2)) all_ok = false;
    char name[3] = {static_cast<char>('0' + ((x >> 1) & 1)),
                    static_cast<char>('0' + (x & 1)), '\0'};
    ti.add_row({name, r.to_string(), r2.to_string()});
  }
  std::printf("%s\n", ti.to_text().c_str());
  std::printf("decode/monotonicity checks: %s\n", all_ok ? "PASS" : "FAIL");
  return all_ok ? 0 : 1;
}

// Section 3.1 ablation: wide-column vs hidden-page WOM-code PCM.
//
// Both organizations provision the 1.5x coded footprint. Wide-column widens
// the array and programs the whole codeword in one operation; hidden-page
// keeps standard arrays but stores the upper half-codeword in a controller-
// reserved hidden row, costing a dependent second row access per read and
// write. The paper positions wide-column as the performance option and
// hidden-page as the flexibility option; this bench quantifies the gap.
//
// Also sweeps the scheduling policy (FCFS vs read-priority) as a secondary
// ablation of the controller substrate.
//
// Usage: ablation_organization [accesses=N] [seed=S]

#include <cstdio>

#include "common/config.h"
#include "sim/experiment.h"
#include "stats/table.h"

using namespace wompcm;

int main(int argc, char** argv) {
  const KeyValueConfig args = KeyValueConfig::from_args(argc, argv);
  const auto accesses =
      static_cast<std::uint64_t>(args.get_int_or("accesses", 80000));
  const auto seed = static_cast<std::uint64_t>(args.get_int_or("seed", 42));

  const char* benches[] = {"400.perlbench", "464.h264ref", "qsort", "ocean"};

  std::printf("Organization ablation: wide-column vs hidden-page (WOM-code "
              "PCM, normalized to conventional PCM)\n\n");
  TextTable t({"benchmark", "wide w", "hidden w", "wide r", "hidden r"});
  for (const char* name : benches) {
    const auto p = *find_profile(name);
    SimConfig base = paper_config();
    base.arch.kind = ArchKind::kBaseline;
    const SimResult rb = run({base, TraceSpec::profile(p, accesses),
                              RunOptions::with_seed(seed)});

    double w[2], r[2];
    const WomOrganization orgs[] = {WomOrganization::kWideColumn,
                                    WomOrganization::kHiddenPage};
    for (int i = 0; i < 2; ++i) {
      SimConfig cfg = paper_config();
      cfg.arch.kind = ArchKind::kWomPcm;
      cfg.arch.organization = orgs[i];
      const SimResult res = run({cfg, TraceSpec::profile(p, accesses),
                                 RunOptions::with_seed(seed)});
      w[i] = res.avg_write_ns() / rb.avg_write_ns();
      r[i] = res.avg_read_ns() / rb.avg_read_ns();
    }
    t.add_row({name, TextTable::fmt(w[0]), TextTable::fmt(w[1]),
               TextTable::fmt(r[0]), TextTable::fmt(r[1])});
  }
  std::printf("%s\n", t.to_text().c_str());

  std::printf("Scheduler ablation: FCFS vs read-priority (conventional PCM, "
              "absolute latencies)\n\n");
  TextTable t2({"benchmark", "fcfs w ns", "rdprio w ns", "fcfs r ns",
                "rdprio r ns"});
  for (const char* name : benches) {
    const auto p = *find_profile(name);
    double w[2], r[2];
    const SchedulingPolicy pol[] = {SchedulingPolicy::kFcfs,
                                    SchedulingPolicy::kReadPriority};
    for (int i = 0; i < 2; ++i) {
      SimConfig cfg = paper_config();
      cfg.sched.policy = pol[i];
      const SimResult res = run({cfg, TraceSpec::profile(p, accesses),
                                 RunOptions::with_seed(seed)});
      w[i] = res.avg_write_ns();
      r[i] = res.avg_read_ns();
    }
    t2.add_row({name, TextTable::fmt(w[0], 1), TextTable::fmt(w[1], 1),
                TextTable::fmt(r[0], 1), TextTable::fmt(r[1], 1)});
  }
  std::printf("%s\n", t2.to_text().c_str());
  std::printf(
      "expected shape: hidden-page trails wide-column on both metrics;\n"
      "read-priority trades write latency for read latency\n");
  return 0;
}

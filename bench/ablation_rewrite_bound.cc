// Section 3.2 analysis: the rewrite-limit bound on WOM-code PCM speedup.
//
// For a k-rewrite code, t consecutive writes to a line cost (t-1)L + SL
// versus tSL without the code, bounding the improvement factor at
// (t-1+S)/(tS) with S = SET/RESET slowdown (150/40 = 3.75 here). A higher
// rewrite limit raises the bound but costs more wits per bit. This bench
// sweeps codes with t = 1, 2, 3, 4 on WOM-code PCM (no refresh) and
// compares the measured normalized write latency against the bound, next
// to each code's capacity overhead.
//
// Usage: ablation_rewrite_bound [accesses=N] [seed=S]

#include <cstdio>

#include "common/config.h"
#include "sim/experiment.h"
#include "stats/table.h"
#include "wom/registry.h"

using namespace wompcm;

int main(int argc, char** argv) {
  const KeyValueConfig args = KeyValueConfig::from_args(argc, argv);
  const auto accesses =
      static_cast<std::uint64_t>(args.get_int_or("accesses", 80000));
  const auto seed = static_cast<std::uint64_t>(args.get_int_or("seed", 42));

  const PcmTiming timing;
  const double S = static_cast<double>(timing.set_ns) /
                   static_cast<double>(timing.reset_ns);
  std::printf(
      "Rewrite-limit bound ablation (S = %.2f): (t-1+S)/(tS) vs measured\n"
      "WOM-code PCM, benchmark 464.h264ref + 401.bzip2 mean, %llu accesses\n\n",
      S, static_cast<unsigned long long>(accesses));

  const char* codes[] = {"marker-k2t1-inv", "rs23-inv", "parity-t3-inv",
                         "marker-k2t4-inv"};
  const auto bench1 = *find_profile("464.h264ref");
  const auto bench2 = *find_profile("401.bzip2");

  TextTable t({"code", "t", "overhead", "bound (t-1+S)/(tS)",
               "measured write norm", "measured read norm"});
  for (const char* name : codes) {
    const WomCodePtr code = make_code(name);
    const unsigned tw = code->max_writes();
    const double bound = (static_cast<double>(tw) - 1.0 + S) /
                         (static_cast<double>(tw) * S);

    double wnorm = 0.0, rnorm = 0.0;
    for (const WorkloadProfile* p : {&bench1, &bench2}) {
      SimConfig base = paper_config();
      base.arch.kind = ArchKind::kBaseline;
      const SimResult rb = run({base, TraceSpec::profile(*p, accesses),
                                RunOptions::with_seed(seed)});

      SimConfig cfg = paper_config();
      cfg.arch.kind = ArchKind::kWomPcm;
      cfg.arch.code = name;
      const SimResult rw = run({cfg, TraceSpec::profile(*p, accesses),
                                RunOptions::with_seed(seed)});
      wnorm += rw.avg_write_ns() / rb.avg_write_ns() / 2.0;
      rnorm += rw.avg_read_ns() / rb.avg_read_ns() / 2.0;
    }
    t.add_row({name, std::to_string(tw),
               TextTable::fmt(code->overhead() * 100.0, 1) + "%",
               TextTable::fmt(bound), TextTable::fmt(wnorm),
               TextTable::fmt(rnorm)});
  }
  std::printf("%s\n", t.to_text().c_str());
  std::printf(
      "expected shape: higher t lowers both the bound and the measured\n"
      "latency, at rapidly growing capacity overhead (the paper's argument\n"
      "for PCM-refresh instead of bigger codes)\n");
  return 0;
}

// Composition ablation: the full {main coding} x {cache on/off} x
// {refresh on/off} cross-product that the policy decomposition opens up
// (DESIGN.md section 9). The five canonical designs are recovered as
// specific cells; the remaining cells are novel compositions the
// monolithic classes could not express -- notably fnw+WOM-cache,
// hidden-page+refresh+cache and symmetric+cache.
//
// Emits one row per valid composition with benchmark-averaged demand
// latencies, per-access write energy and the capacity overhead of the
// provisioned arrays.
//
// Usage: ablation_compositions [accesses=N] [seed=S]

#include <cstdio>

#include "common/config.h"
#include "sim/experiment.h"
#include "stats/table.h"

using namespace wompcm;

int main(int argc, char** argv) {
  const KeyValueConfig args = KeyValueConfig::from_args(argc, argv);
  const auto accesses =
      static_cast<std::uint64_t>(args.get_int_or("accesses", 40000));
  const auto seed = static_cast<std::uint64_t>(args.get_int_or("seed", 42));

  const std::vector<ArchConfig> archs = composition_sweep(
      {CodingKind::kRaw, CodingKind::kWomWide, CodingKind::kWomHidden,
       CodingKind::kFlipNWrite, CodingKind::kSymmetric},
      {false, true}, {RefreshKind::kNone, RefreshKind::kRat});
  const std::vector<WorkloadProfile> profiles = {*find_profile("401.bzip2"),
                                                 *find_profile("ocean")};

  RunRequest req;
  req.config = paper_config();
  req.trace = TraceSpec::profile(WorkloadProfile{}, accesses);
  req.options.seed = seed;
  const auto rows = run_sweep(req, archs, profiles);

  std::printf("Composition ablation: %zu valid cells of the "
              "{main} x {cache} x {refresh} cross-product\n"
              "(benchmark average over 401.bzip2 and ocean, %llu accesses "
              "each)\n\n",
              archs.size(), static_cast<unsigned long long>(accesses));
  TextTable t({"main", "cache", "refresh", "arch", "write ns", "read ns",
               "wr pJ/acc", "cap ovh"});
  for (std::size_t a = 0; a < archs.size(); ++a) {
    const Composition& c = *archs[a].composition;
    double w = 0.0, r = 0.0, e = 0.0;
    for (const SweepRow& row : rows) {
      const SimResult& res = row.results.at(a);
      w += res.avg_write_ns();
      r += res.avg_read_ns();
      e += res.energy_write_pj /
           static_cast<double>(res.injected_reads + res.injected_writes);
    }
    const double n = static_cast<double>(rows.size());
    t.add_row({to_string(c.main_coding),
               c.cache_enabled ? to_string(c.cache_coding) : "off",
               to_string(c.refresh), rows[0].results.at(a).arch_name,
               TextTable::fmt(w / n, 1), TextTable::fmt(r / n, 1),
               TextTable::fmt(e / n, 1),
               TextTable::fmt(rows[0].results.at(a).capacity_overhead, 3)});
  }
  std::printf("%s\n", t.to_text().c_str());
  std::printf(
      "expected shape: WOM main codings cut write latency until the rewrite\n"
      "limit bites; a WOM cache recovers most of that at 1/banks capacity\n"
      "cost; refresh keeps WOM regions in the fast-write regime; the\n"
      "symmetric+cache cell isolates the cache protocol's own overhead\n");
  return 0;
}

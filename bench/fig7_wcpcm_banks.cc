// Fig. 7: WCPCM write latency for 4/8/16/32 banks per rank, normalized per
// benchmark to the 4-banks/rank organization.
//
// Known discrepancy (see EXPERIMENTS.md): the paper reports write latency
// decreasing with banks/rank ("better parallelism"). In this controller the
// WOM-cache decouples demand writes from main-memory bank parallelism, so
// the write series comes out flat (cache-conflict growth and read-side
// parallelism roughly cancel); the read column is included to show where
// the bank-parallelism benefit does appear.
//
// Usage: fig7_wcpcm_banks [accesses=N] [seed=S] [csv=1]

#include <cstdio>

#include "womcode.h"

using namespace wompcm;

namespace {
constexpr unsigned kBankSweep[] = {4, 8, 16, 32};
}

int main(int argc, char** argv) {
  const KeyValueConfig args = KeyValueConfig::from_args(argc, argv);
  const auto accesses =
      static_cast<std::uint64_t>(args.get_int_or("accesses", 80000));
  const auto seed = static_cast<std::uint64_t>(args.get_int_or("seed", 42));

  std::printf(
      "Fig. 7: WCPCM write latency vs banks/rank, normalized to 4 banks\n"
      "(%llu accesses/benchmark, seed %llu; read latency alongside)\n\n",
      static_cast<unsigned long long>(accesses),
      static_cast<unsigned long long>(seed));

  TextTable t({"benchmark", "w 4", "w 8", "w 16", "w 32", "r 4", "r 8",
               "r 16", "r 32"});
  std::vector<double> wavg(4, 0.0), ravg(4, 0.0);
  for (const WorkloadProfile& p : benchmark_profiles()) {
    double w[4], r[4];
    for (std::size_t bi = 0; bi < 4; ++bi) {
      SimConfig cfg = paper_config();
      cfg.geom.banks_per_rank = kBankSweep[bi];
      cfg.geom.rows_per_bank = 32768 * 32 / kBankSweep[bi];
      cfg.arch.kind = ArchKind::kWcpcm;
      const SimResult res =
          run({cfg, TraceSpec::profile(p, accesses), RunOptions::with_seed(seed)});
      w[bi] = res.avg_write_ns();
      r[bi] = res.avg_read_ns();
    }
    std::vector<std::string> row{p.name};
    for (std::size_t bi = 0; bi < 4; ++bi) {
      const double v = w[bi] / w[0];
      wavg[bi] += v;
      row.push_back(TextTable::fmt(v));
    }
    for (std::size_t bi = 0; bi < 4; ++bi) {
      const double v = r[bi] / r[0];
      ravg[bi] += v;
      row.push_back(TextTable::fmt(v));
    }
    t.add_row(std::move(row));
  }
  const double n = static_cast<double>(benchmark_profiles().size());
  std::vector<std::string> row{"average"};
  for (std::size_t bi = 0; bi < 4; ++bi) row.push_back(TextTable::fmt(wavg[bi] / n));
  for (std::size_t bi = 0; bi < 4; ++bi) row.push_back(TextTable::fmt(ravg[bi] / n));
  t.add_row(std::move(row));
  std::printf("%s\n", t.to_text().c_str());
  std::printf(
      "expected shape (paper): write latency decreases as banks/rank grows\n");
  if (args.get_bool_or("csv", false)) std::printf("\n%s", t.to_csv().c_str());
  return 0;
}

// Fig. 5(a): normalized average memory WRITE latency of the four PCM
// architectures across SPEC CPU2006 / MiBench / SPLASH-2.
//
// Paper averages: WOM-code PCM 0.799 (-20.1%), PCM-refresh 0.451 (-54.9%),
// WCPCM 0.528 (-47.2%); best single benchmark 464.h264ref.
//
// Usage: fig5a_write_latency [accesses=N] [seed=S] [csv=1]

#include "fig5_common.h"

int main(int argc, char** argv) {
  return wompcm::bench::run_fig5(
      argc, argv, "Fig. 5(a): normalized write latency in PCM main memory",
      "average write latency", 0.799, 0.451, 0.528,
      [](const wompcm::SimResult& r) { return r.avg_write_ns(); });
}

// Trace utility: generates a synthetic benchmark trace into a file (text or
// binary), inspects an existing trace, or replays a trace file through a
// chosen architecture. Demonstrates the drop-in path for real Pin traces.
//
// Usage:
//   trace_tool gen   out=FILE [benchmark=NAME] [accesses=N] [format=text|bin]
//   trace_tool info  in=FILE
//   trace_tool stats in=FILE      (locality metrics the WOM path cares about)
//   trace_tool run   in=FILE [arch=pcm|wom|refresh|wcpcm]

#include <cstdio>
#include <map>
#include <memory>

#include "womcode.h"

using namespace wompcm;

namespace {

int cmd_gen(const KeyValueConfig& args) {
  const std::string out = args.get_string_or("out", "");
  if (out.empty()) {
    std::printf("gen: missing out=FILE\n");
    return 1;
  }
  const std::string bench = args.get_string_or("benchmark", "401.bzip2");
  const auto accesses =
      static_cast<std::uint64_t>(args.get_int_or("accesses", 50000));
  const auto profile = find_profile(bench);
  if (!profile) {
    std::printf("unknown benchmark %s\n", bench.c_str());
    return 1;
  }
  const auto format = args.get_string_or("format", "text") == "bin"
                          ? TraceWriter::Format::kBinary
                          : TraceWriter::Format::kText;
  SyntheticTraceSource src(*profile, paper_config().geom,
                           static_cast<std::uint64_t>(args.get_int_or("seed", 42)),
                           accesses);
  TraceWriter writer(out, format);
  std::uint64_t n = 0;
  while (const auto rec = src.next()) {
    writer.write(*rec);
    ++n;
  }
  std::printf("wrote %llu records to %s\n",
              static_cast<unsigned long long>(n), out.c_str());
  return 0;
}

int cmd_info(const KeyValueConfig& args) {
  const std::string in = args.get_string_or("in", "");
  if (in.empty()) {
    std::printf("info: missing in=FILE\n");
    return 1;
  }
  FileTraceSource src(in);
  std::uint64_t reads = 0, writes = 0;
  Tick span = 0;
  while (const auto rec = src.next()) {
    span += rec->gap;
    (rec->type == AccessType::kWrite ? writes : reads) += 1;
  }
  std::printf("%s: %s format, %llu reads, %llu writes, %.3f ms span\n",
              in.c_str(), src.binary() ? "binary" : "text",
              static_cast<unsigned long long>(reads),
              static_cast<unsigned long long>(writes),
              static_cast<double>(span) / 1e6);
  return 0;
}

int cmd_stats(const KeyValueConfig& args) {
  const std::string in = args.get_string_or("in", "");
  if (in.empty()) {
    std::printf("stats: missing in=FILE\n");
    return 1;
  }
  const MemoryGeometry geom = paper_config().geom;
  AddressMapper mapper(geom);
  FileTraceSource src(in);

  std::uint64_t reads = 0, writes = 0;
  Tick span = 0;
  std::map<Addr, std::uint64_t> write_counts;
  std::map<std::uint64_t, std::uint64_t> row_writes;
  Log2Histogram gap_hist;
  while (const auto rec = src.next()) {
    span += rec->gap;
    gap_hist.add(rec->gap);
    if (rec->type == AccessType::kWrite) {
      ++writes;
      ++write_counts[rec->addr / geom.line_bytes()];
      const DecodedAddr d = mapper.decode(rec->addr);
      ++row_writes[(static_cast<std::uint64_t>(mapper.flat_bank(d))
                    << 32) |
                   d.row];
    } else {
      ++reads;
    }
  }
  std::uint64_t rewrites = 0;
  std::uint64_t hottest_line = 0;
  for (const auto& [line, n] : write_counts) {
    rewrites += n - 1;
    if (n > hottest_line) hottest_line = n;
  }
  std::uint64_t hottest_row = 0;
  for (const auto& [row, n] : row_writes) {
    if (n > hottest_row) hottest_row = n;
  }
  const double total = static_cast<double>(reads + writes);
  std::printf("%s\n", in.c_str());
  std::printf("  accesses            %10.0f (%.1f%% writes)\n", total,
              total > 0 ? 100.0 * static_cast<double>(writes) / total : 0.0);
  std::printf("  span                %10.3f ms\n",
              static_cast<double>(span) / 1e6);
  std::printf("  distinct lines written %7zu\n", write_counts.size());
  std::printf("  distinct rows written  %7zu\n", row_writes.size());
  std::printf("  line rewrite fraction  %7.3f  (drives the WOM fast path)\n",
              writes > 0 ? static_cast<double>(rewrites) /
                               static_cast<double>(writes)
                         : 0.0);
  std::printf("  hottest line writes    %7llu\n",
              static_cast<unsigned long long>(hottest_line));
  std::printf("  hottest row writes     %7llu\n",
              static_cast<unsigned long long>(hottest_row));
  std::printf("  p50/p99 gap            %llu / %llu ns\n",
              static_cast<unsigned long long>(gap_hist.percentile(0.5)),
              static_cast<unsigned long long>(gap_hist.percentile(0.99)));
  return 0;
}

int cmd_run(const KeyValueConfig& args) {
  const std::string in = args.get_string_or("in", "");
  if (in.empty()) {
    std::printf("run: missing in=FILE\n");
    return 1;
  }
  SimConfig cfg = paper_config();
  const std::string arch = args.get_string_or("arch", "refresh");
  if (arch == "pcm") {
    cfg.arch.kind = ArchKind::kBaseline;
  } else if (arch == "wom") {
    cfg.arch.kind = ArchKind::kWomPcm;
  } else if (arch == "refresh") {
    cfg.arch.kind = ArchKind::kRefreshWomPcm;
  } else if (arch == "wcpcm") {
    cfg.arch.kind = ArchKind::kWcpcm;
  } else {
    std::printf("unknown arch %s\n", arch.c_str());
    return 1;
  }
  const SimResult r = run({cfg, TraceSpec::file(in)});
  std::printf("%s: avg write %.1f ns, avg read %.1f ns, %llu refresh cmds\n",
              r.arch_name.c_str(), r.avg_write_ns(), r.avg_read_ns(),
              static_cast<unsigned long long>(r.refresh_commands));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const KeyValueConfig args = KeyValueConfig::from_args(argc, argv);
  if (args.positional().empty()) {
    std::printf(
        "usage: trace_tool gen|info|stats|run key=value...\n"
        "  gen   out=FILE [benchmark=NAME] [accesses=N] [format=text|bin]\n"
        "  info  in=FILE\n"
        "  stats in=FILE\n"
        "  run   in=FILE [arch=pcm|wom|refresh|wcpcm]\n");
    return 1;
  }
  const std::string& cmd = args.positional().front();
  if (cmd == "gen") return cmd_gen(args);
  if (cmd == "info") return cmd_info(args);
  if (cmd == "stats") return cmd_stats(args);
  if (cmd == "run") return cmd_run(args);
  std::printf("unknown command %s\n", cmd.c_str());
  return 1;
}

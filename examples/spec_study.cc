// Full evaluation sweep (the paper's Section 5 matrix): all 20 benchmarks
// across the four architectures, reporting absolute and normalized average
// write/read latencies plus WOM diagnostics.
//
// Usage: spec_study [accesses=N] [seed=S] [config=FILE] [key=value...]
//        [suite=spec-int|spec-fp|mibench|splash2] [jobs=J]
// Any SimConfig key (see sim/config_io.h) overrides the paper platform.
// jobs: sweep worker threads (0 = all hardware threads, 1 = serial); the
// results are identical either way.

#include <cstdio>

#include "womcode.h"

using namespace wompcm;

int main(int argc, char** argv) {
  const KeyValueConfig args = KeyValueConfig::from_args(argc, argv);
  const auto accesses =
      static_cast<std::uint64_t>(args.get_int_or("accesses", 120000));
  const auto seed = static_cast<std::uint64_t>(args.get_int_or("seed", 42));
  const std::string suite = args.get_string_or("suite", "");

  const std::vector<WorkloadProfile> profiles =
      suite.empty() ? benchmark_profiles() : suite_profiles(suite);
  if (profiles.empty()) {
    std::printf("unknown suite '%s'\n", suite.c_str());
    return 1;
  }

  SimConfig base = paper_config();
  if (args.has("config")) {
    base = load_config_file(base, args.get_string_or("config", ""));
  }
  base = apply_overrides(base, args,
                         /*harness_keys=*/{"accesses", "seed", "suite",
                                           "config", "jobs"});

  auto archs = paper_architectures();
  for (auto& a : archs) {
    // Keep the four paper kinds but inherit code/organization/etc. An
    // explicit composition from the config file would shadow the kind, so
    // drop it: this study is specifically the four canonical designs.
    const ArchKind kind = a.kind;
    a = base.arch;
    a.kind = kind;
    a.composition.reset();
  }
  const auto jobs = static_cast<unsigned>(args.get_int_or("jobs", 0));
  RunOptions opts = RunOptions::with_seed(seed);
  opts.jobs = ParallelPolicy::with_jobs(jobs);
  const RunRequest req{base, TraceSpec::profile(WorkloadProfile{}, accesses),
                       opts};
  const auto rows = run_sweep(req, archs, profiles);

  const auto wnorm =
      normalize(rows, [](const SimResult& r) { return r.avg_write_ns(); });
  const auto rnorm =
      normalize(rows, [](const SimResult& r) { return r.avg_read_ns(); });

  TextTable t({"benchmark", "base write ns", "wom w", "refresh w", "wcpcm w",
               "base read ns", "wom r", "refresh r", "wcpcm r", "alpha%",
               "whit%", "base p95w", "refresh p95w", "base util"});
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& row = rows[i];
    const auto& base = row.results[0];
    const auto& wom = row.results[1];
    const auto& wc = row.results[3];
    const double alpha =
        static_cast<double>(wom.stats.counters.get("writes.alpha"));
    const double fast =
        static_cast<double>(wom.stats.counters.get("writes.fast"));
    const double whits =
        static_cast<double>(wc.stats.counters.get("wcpcm.write_hits"));
    const double wmiss =
        static_cast<double>(wc.stats.counters.get("wcpcm.write_misses"));
    const auto& refresh = row.results[2];
    t.add_row({row.benchmark, TextTable::fmt(base.avg_write_ns(), 1),
               TextTable::fmt(wnorm[i][1]), TextTable::fmt(wnorm[i][2]),
               TextTable::fmt(wnorm[i][3]),
               TextTable::fmt(base.avg_read_ns(), 1),
               TextTable::fmt(rnorm[i][1]), TextTable::fmt(rnorm[i][2]),
               TextTable::fmt(rnorm[i][3]),
               TextTable::fmt(100.0 * alpha / (alpha + fast), 1),
               TextTable::fmt(100.0 * whits / (whits + wmiss), 1),
               std::to_string(base.stats.write_latency_hist.percentile(0.95)),
               std::to_string(
                   refresh.stats.write_latency_hist.percentile(0.95)),
               TextTable::fmt(base.max_bank_utilization(), 2)});
  }
  t.add_row({"AVERAGE", "", TextTable::fmt(column_mean(wnorm, 1)),
             TextTable::fmt(column_mean(wnorm, 2)),
             TextTable::fmt(column_mean(wnorm, 3)), "",
             TextTable::fmt(column_mean(rnorm, 1)),
             TextTable::fmt(column_mean(rnorm, 2)),
             TextTable::fmt(column_mean(rnorm, 3)), "", "", "", "", ""});
  std::printf("%s", t.to_text().c_str());
  std::printf(
      "\npaper averages: wom 0.799 w / 0.898 r; refresh 0.451 w / 0.521 r; "
      "wcpcm 0.528 w / 0.560 r\n");
  return 0;
}

// Multi-programmed study: a multicore mix of benchmarks sharing one PCM
// memory system.
//
// Mixes one benchmark per "core" into a single interleaved stream and runs
// the four paper architectures plus the symmetric-write ideal (S = 1) as
// the upper bound. Inter-program bank interference raises the pressure on
// the SET-bound writes, which is where the WOM architectures earn their
// keep.
//
// Usage: mix_study [cores=4] [accesses=N per core] [seed=S]
//        [b0=NAME b1=NAME ...]

#include <cstdio>

#include "womcode.h"

using namespace wompcm;

namespace {

std::unique_ptr<MixTraceSource> build_mix(
    const std::vector<WorkloadProfile>& profiles, const MemoryGeometry& geom,
    std::uint64_t accesses, std::uint64_t seed) {
  std::vector<std::unique_ptr<TraceSource>> parts;
  for (std::size_t i = 0; i < profiles.size(); ++i) {
    parts.push_back(std::make_unique<SyntheticTraceSource>(
        profiles[i], geom, seed * 1315423911u + i, accesses));
  }
  return std::make_unique<MixTraceSource>(std::move(parts));
}

}  // namespace

int main(int argc, char** argv) {
  const KeyValueConfig args = KeyValueConfig::from_args(argc, argv);
  const auto cores = static_cast<std::size_t>(args.get_int_or("cores", 4));
  const auto accesses =
      static_cast<std::uint64_t>(args.get_int_or("accesses", 40000));
  const auto seed = static_cast<std::uint64_t>(args.get_int_or("seed", 42));

  const char* defaults[] = {"401.bzip2", "464.h264ref", "ocean",
                            "482.sphinx3", "qsort", "470.lbm",
                            "456.hmmer", "water-ns"};
  std::vector<WorkloadProfile> mix;
  for (std::size_t i = 0; i < cores; ++i) {
    const std::string name = args.get_string_or(
        "b" + std::to_string(i), defaults[i % std::size(defaults)]);
    const auto p = find_profile(name);
    if (!p) {
      std::printf("unknown benchmark %s\n", name.c_str());
      return 1;
    }
    mix.push_back(*p);
  }

  std::printf("Mix of %zu cores:", mix.size());
  for (const auto& p : mix) std::printf(" %s", p.name.c_str());
  std::printf("  (%llu accesses/core)\n\n",
              static_cast<unsigned long long>(accesses));

  const ArchKind kinds[] = {ArchKind::kBaseline, ArchKind::kWomPcm,
                            ArchKind::kRefreshWomPcm, ArchKind::kWcpcm,
                            ArchKind::kSymmetric};
  TextTable t({"architecture", "avg write ns", "w norm", "avg read ns",
               "r norm", "max bank util", "row hit rate"});
  double base_w = 0, base_r = 0;
  std::vector<std::string> harness_keys = {"cores", "accesses", "seed"};
  for (std::size_t i = 0; i < cores; ++i) {
    harness_keys.push_back("b" + std::to_string(i));
  }
  for (const ArchKind kind : kinds) {
    SimConfig cfg = apply_overrides(paper_config(), args, harness_keys);
    cfg.arch.kind = kind;
    cfg.warmup_accesses = cores * accesses / 5;
    auto trace = build_mix(mix, cfg.geom, accesses, seed);
    Simulator sim(cfg);
    const SimResult r = sim.run(*trace);
    if (kind == ArchKind::kBaseline) {
      base_w = r.avg_write_ns();
      base_r = r.avg_read_ns();
    }
    t.add_row({r.arch_name, TextTable::fmt(r.avg_write_ns(), 1),
               TextTable::fmt(r.avg_write_ns() / base_w),
               TextTable::fmt(r.avg_read_ns(), 1),
               TextTable::fmt(r.avg_read_ns() / base_r),
               TextTable::fmt(r.max_bank_utilization(), 3),
               TextTable::fmt(r.row_hit_rate(), 3)});
  }
  std::printf("%s\n", t.to_text().c_str());
  std::printf(
      "symmetric-ideal is the S=1 upper bound; pcm-refresh should close\n"
      "most of the gap toward it. Note WCPCM's gain shrinks with core\n"
      "count: all of a rank's writes funnel through its single WOM-cache\n"
      "array (watch max bank util), a scalability limit the paper's\n"
      "single-program evaluation does not exercise.\n");
  return 0;
}

// Quickstart: the layers of the library in ~100 lines.
//
//  1. Functional layer: encode/decode data under the inverted <2^2>^2/3
//     WOM-code with PageCodec and watch rewrites stay RESET-only.
//  2. Timing layer: run one synthetic benchmark through the four paper
//     architectures and compare average memory latencies.
//  3. Multi-channel: the same benchmark on a channels=2 platform, with the
//     per-channel breakdowns the metrics registry publishes for free.
//
// Usage: quickstart [accesses=N] [benchmark=NAME] [seed=S]

#include <cstdio>

#include "womcode.h"

using namespace wompcm;

namespace {

void functional_demo() {
  std::printf("== WOM-code functional demo (inverted <2^2>^2/3) ==\n");
  WomCodePtr code = make_code("rs23-inv");
  PageCodec page(code, /*data_bits=*/16);

  const BitVec a = BitVec::from_string("1010110100101101");
  const BitVec b = BitVec::from_string("0110001011010010");
  const BitVec c = BitVec::from_string("1111000011001100");

  for (const BitVec* data : {&a, &b, &c}) {
    const PageWriteResult r = page.write(*data);
    std::printf(
        "write: %-10s (%3zu SET pulses, %3zu RESET pulses), readback %s\n",
        to_string(r.write_class), r.set_pulses, r.reset_pulses,
        page.read() == *data ? "ok" : "MISMATCH");
  }
  std::printf("generation after 3 writes: %u (rewrite limit %u)\n\n",
              page.generation(), page.code().max_writes());
}

void timing_demo(const KeyValueConfig& args) {
  const std::string bench = args.get_string_or("benchmark", "464.h264ref");
  const auto accesses =
      static_cast<std::uint64_t>(args.get_int_or("accesses", 60000));
  const auto seed = static_cast<std::uint64_t>(args.get_int_or("seed", 42));

  const auto profile = find_profile(bench);
  if (!profile) {
    std::printf("unknown benchmark %s\n", bench.c_str());
    return;
  }
  std::printf("== Timing demo: %s, %llu accesses ==\n", bench.c_str(),
              static_cast<unsigned long long>(accesses));

  TextTable table({"architecture", "avg write ns", "avg read ns",
                   "alpha writes", "fast writes", "refresh cmds",
                   "overhead"});
  for (const ArchConfig& arch : paper_architectures()) {
    SimConfig cfg = paper_config();
    cfg.arch = arch;
    const SimResult r =
        run({cfg, TraceSpec::profile(*profile, accesses), RunOptions::with_seed(seed)});
    table.add_row({r.arch_name, TextTable::fmt(r.avg_write_ns(), 1),
                   TextTable::fmt(r.avg_read_ns(), 1),
                   std::to_string(r.stats.counters.get("writes.alpha")),
                   std::to_string(r.stats.counters.get("writes.fast")),
                   std::to_string(r.refresh_commands),
                   TextTable::fmt(r.capacity_overhead * 100.0, 1) + "%"});
  }
  std::printf("%s\n", table.to_text().c_str());
}

void multichannel_demo(const KeyValueConfig& args) {
  const std::string bench = args.get_string_or("benchmark", "464.h264ref");
  const auto accesses =
      static_cast<std::uint64_t>(args.get_int_or("accesses", 60000));
  const auto seed = static_cast<std::uint64_t>(args.get_int_or("seed", 42));

  // Split the paper platform's 16 ranks across two channels. Each channel
  // gets its own controller — queues, scheduler, refresh engine, data bus —
  // so channels never contend with each other.
  SimConfig cfg = paper_config();
  cfg.geom.channels = 2;
  cfg.geom.ranks = 8;
  cfg.arch.kind = ArchKind::kRefreshWomPcm;
  const SimResult r = run(
      {cfg, TraceSpec::profile(*find_profile(bench), accesses), RunOptions::with_seed(seed)});

  std::printf("== Multi-channel demo: %s on channels=2 ==\n", bench.c_str());
  std::printf("avg write %.1f ns, avg read %.1f ns\n", r.avg_write_ns(),
              r.avg_read_ns());
  TextTable table({"channel", "bus busy ns", "max queue depth",
                   "refresh cmds", "deferred"});
  for (unsigned c = 0; c < cfg.geom.channels; ++c) {
    table.add_row(
        {std::to_string(c),
         std::to_string(r.metrics.counter(channel_metric(c, "bus_busy_ns"))),
         std::to_string(
             r.metrics.counter(channel_metric(c, "max_queue_depth"))),
         std::to_string(
             r.metrics.counter(channel_metric(c, "refresh.commands"))),
         std::to_string(
             r.metrics.counter(channel_metric(c, "deferred_injections")))});
  }
  std::printf("%s\n", table.to_text().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  const KeyValueConfig args = KeyValueConfig::from_args(argc, argv);
  functional_demo();
  timing_demo(args);
  multichannel_demo(args);
  return 0;
}

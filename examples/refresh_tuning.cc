// PCM-refresh tuning study (Section 3.2): sweeps the refresh threshold
// r_th, the refresh period, and write pausing, showing how each knob trades
// refresh aggressiveness against demand interference.
//
// Usage: refresh_tuning [benchmark=NAME] [accesses=N] [seed=S]

#include <cstdio>

#include "womcode.h"

using namespace wompcm;

namespace {

SimResult run_cfg(const WorkloadProfile& profile, double threshold,
                  Tick period, bool pausing, std::uint64_t accesses,
                  std::uint64_t seed) {
  SimConfig cfg = paper_config();
  cfg.arch.kind = ArchKind::kRefreshWomPcm;
  cfg.refresh.threshold = threshold;
  cfg.refresh.write_pausing = pausing;
  cfg.timing.refresh_period_ns = period;
  return run({cfg, TraceSpec::profile(profile, accesses), RunOptions::with_seed(seed)});
}

}  // namespace

int main(int argc, char** argv) {
  const KeyValueConfig args = KeyValueConfig::from_args(argc, argv);
  const std::string bench = args.get_string_or("benchmark", "464.h264ref");
  const auto accesses =
      static_cast<std::uint64_t>(args.get_int_or("accesses", 100000));
  const auto seed = static_cast<std::uint64_t>(args.get_int_or("seed", 42));

  const auto profile = find_profile(bench);
  if (!profile) {
    std::printf("unknown benchmark %s\n", bench.c_str());
    return 1;
  }

  std::printf("PCM-refresh tuning on %s\n\n", bench.c_str());

  TextTable t({"r_th", "period ns", "pausing", "avg write ns", "avg read ns",
               "refresh cmds", "rows refreshed", "pauses"});
  const Tick base_period = PcmTiming{}.refresh_period_ns;
  for (const double th : {0.0, 0.25, 0.5, 0.75}) {
    const SimResult r = run_cfg(*profile, th, base_period, true, accesses,
                                seed);
    t.add_row({TextTable::fmt(th, 2), std::to_string(base_period), "yes",
               TextTable::fmt(r.avg_write_ns(), 1),
               TextTable::fmt(r.avg_read_ns(), 1),
               std::to_string(r.refresh_commands),
               std::to_string(r.refresh_rows),
               std::to_string(r.stats.counters.get("ctrl.refresh_pauses"))});
  }
  for (const Tick period : {1000ull, 2000ull, 8000ull, 16000ull}) {
    const SimResult r = run_cfg(*profile, 0.0, period, true, accesses, seed);
    t.add_row({"0.00", std::to_string(period), "yes",
               TextTable::fmt(r.avg_write_ns(), 1),
               TextTable::fmt(r.avg_read_ns(), 1),
               std::to_string(r.refresh_commands),
               std::to_string(r.refresh_rows),
               std::to_string(r.stats.counters.get("ctrl.refresh_pauses"))});
  }
  const SimResult nopause =
      run_cfg(*profile, 0.0, base_period, false, accesses, seed);
  t.add_row({"0.00", std::to_string(base_period), "no",
             TextTable::fmt(nopause.avg_write_ns(), 1),
             TextTable::fmt(nopause.avg_read_ns(), 1),
             std::to_string(nopause.refresh_commands),
             std::to_string(nopause.refresh_rows),
             std::to_string(nopause.stats.counters.get("ctrl.refresh_pauses"))});
  std::printf("%s", t.to_text().c_str());
  return 0;
}

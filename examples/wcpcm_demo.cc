// WCPCM demo (Section 4): sweeps banks/rank for one benchmark and reports
// the WOM-cache behaviour — hit rates, victim traffic, capacity overhead,
// and the resulting write/read latencies.
//
// Any SimConfig key overrides the paper platform; with fault.enabled=true
// the table grows graceful-degradation columns (dead WOM-cache rows bypass
// to main memory, dead main rows remap onto spares). Passing arch= or
// composition keys (main.coding=, cache.enabled=, cache.coding=, refresh=)
// sweeps that design instead of the default WCPCM; cache columns print "-"
// for cacheless compositions.
//
// Usage: wcpcm_demo [benchmark=NAME] [accesses=N] [seed=S] [key=value...]
//        e.g. wcpcm_demo fault.enabled=true fault.endurance=400
//               fault.initial_wear=0.9 fault.sigma=0.35
//        e.g. wcpcm_demo main.coding=fnw cache.enabled=true refresh=rat

#include <cstdio>

#include "womcode.h"

using namespace wompcm;

int main(int argc, char** argv) {
  const KeyValueConfig args = KeyValueConfig::from_args(argc, argv);
  const std::string bench = args.get_string_or("benchmark", "401.bzip2");
  const auto accesses =
      static_cast<std::uint64_t>(args.get_int_or("accesses", 100000));
  const auto seed = static_cast<std::uint64_t>(args.get_int_or("seed", 42));

  const auto profile = find_profile(bench);
  if (!profile) {
    std::printf("unknown benchmark %s\n", bench.c_str());
    return 1;
  }

  SimConfig base =
      apply_overrides(paper_config(), args,
                      /*harness_keys=*/{"benchmark", "accesses", "seed"});
  // Default to the canonical WCPCM unless the user picked a design via
  // arch= or the composition keys.
  if (!args.has("arch") && !base.arch.composition.has_value()) {
    base.arch.kind = ArchKind::kWcpcm;
  }
  const bool faults = base.fault.enabled;
  const Composition comp = base.arch.resolved_composition();

  std::printf("%s on %s, banks/rank sweep (paper Figs. 6 and 7 axes)%s\n\n",
              comp.cache_enabled ? "WOM-cache composition" : "Composition",
              bench.c_str(), faults ? " [fault injection ON]" : "");
  std::vector<std::string> header = {
      "banks/rank", "write hit%", "read hit%", "victims", "avg write ns",
      "avg read ns", "row hit% main", "row hit% $", "util main", "util $",
      "overhead%"};
  if (faults) {
    header.insert(header.end(),
                  {"demoted", "remapped", "dead $ rows", "bypasses"});
  }
  TextTable t(header);
  for (const unsigned banks : {4u, 8u, 16u, 32u}) {
    SimConfig cfg = base;
    // Fixed total capacity: fewer banks per rank means larger banks, and
    // the per-rank WOM-cache (sized like one bank) grows accordingly.
    cfg.geom.banks_per_rank = banks;
    cfg.geom.rows_per_bank = 32768 * 32 / banks;
    const SimResult r =
        run({cfg, TraceSpec::profile(*profile, accesses), RunOptions::with_seed(seed)});
    const double wh = static_cast<double>(
        r.stats.counters.get("wcpcm.write_hits"));
    const double wm = static_cast<double>(
        r.stats.counters.get("wcpcm.write_misses"));
    const double rh =
        static_cast<double>(r.stats.counters.get("wcpcm.read_hits"));
    const double rm =
        static_cast<double>(r.stats.counters.get("wcpcm.read_misses"));
    // Cacheless compositions have no hit/miss traffic: print "-" rather
    // than the NaN a 0/0 division would produce.
    const auto pct = [](double n, double d) {
      return d == 0.0 ? std::string("-") : TextTable::fmt(100.0 * n / d, 1);
    };
    std::vector<std::string> row = {
        std::to_string(banks),
        pct(wh, wh + wm),
        pct(rh, rh + rm),
        std::to_string(r.stats.counters.get("wcpcm.victims")),
        TextTable::fmt(r.avg_write_ns(), 1),
        TextTable::fmt(r.avg_read_ns(), 1),
        // Main banks and WOM-cache arrays behave differently enough
        // that the pooled figures hide both: report them per class.
        TextTable::fmt(100.0 * r.row_hit_rate(SimResult::BankClass::kMain),
                       1),
        comp.cache_enabled
            ? TextTable::fmt(
                  100.0 * r.row_hit_rate(SimResult::BankClass::kCache), 1)
            : "-",
        TextTable::fmt(r.max_bank_utilization(SimResult::BankClass::kMain),
                       3),
        comp.cache_enabled
            ? TextTable::fmt(
                  r.max_bank_utilization(SimResult::BankClass::kCache), 3)
            : "-",
        TextTable::fmt(r.capacity_overhead * 100.0, 1)};
    if (faults) {
      row.push_back(std::to_string(r.fault_demoted_writes));
      row.push_back(std::to_string(r.fault_remapped_rows));
      row.push_back(std::to_string(r.stats.counters.get("wcpcm.dead_rows")));
      row.push_back(
          std::to_string(r.stats.counters.get("wcpcm.bypass_writes")));
    }
    t.add_row(row);
  }
  std::printf("%s", t.to_text().c_str());
  if (faults) {
    std::printf(
        "\nfault seed %llu: dead WOM-cache rows are retired (later writes "
        "bypass to\nmain memory); dead main rows remap onto per-bank "
        "spares.\n",
        static_cast<unsigned long long>(base.fault.seed));
  }
  return 0;
}

// WOM-code explorer: brute-force search for <2^k>^t/n codes and a quick
// look at what each found code would buy in a WOM-code PCM.
//
// For each requested (k, t) it finds the smallest n (wit count) admitting a
// valid code within the node budget, prints the resulting tables for small
// codes, and reports the code's capacity overhead and Section 3.2 latency
// bound next to the hand-built families.
//
// Usage: code_explorer [kmax=2] [tmax=3] [nmax=7] [budget=20000000] [show=1]

#include <cstdio>

#include "womcode.h"

using namespace wompcm;

int main(int argc, char** argv) {
  const KeyValueConfig args = KeyValueConfig::from_args(argc, argv);
  const unsigned kmax = static_cast<unsigned>(args.get_int_or("kmax", 2));
  const unsigned tmax = static_cast<unsigned>(args.get_int_or("tmax", 3));
  const unsigned nmax = static_cast<unsigned>(args.get_int_or("nmax", 7));
  const auto budget =
      static_cast<std::uint64_t>(args.get_int_or("budget", 20000000));
  const bool show = args.get_bool_or("show", true);

  const PcmTiming timing;
  const double S = static_cast<double>(timing.set_ns) /
                   static_cast<double>(timing.reset_ns);

  std::printf("Searching for <2^k>^t/n WOM-codes (n <= %u, budget %llu "
              "nodes)\n\n",
              nmax, static_cast<unsigned long long>(budget));

  TextTable t({"k", "t", "smallest n found", "overhead", "latency bound",
               "DFS nodes"});
  for (unsigned k = 1; k <= kmax; ++k) {
    for (unsigned tw = 1; tw <= tmax; ++tw) {
      std::optional<CodeSearchResult> found;
      unsigned n_found = 0;
      for (unsigned n = k; n <= nmax && !found; ++n) {
        CodeSearchParams p;
        p.data_bits = k;
        p.wits = n;
        p.writes = tw;
        p.max_nodes = budget;
        found = search_wom_code(p);
        if (found) n_found = n;
      }
      const double bound =
          (static_cast<double>(tw) - 1.0 + S) / (static_cast<double>(tw) * S);
      if (found) {
        t.add_row({std::to_string(k), std::to_string(tw),
                   std::to_string(n_found),
                   TextTable::fmt(found->code->overhead() * 100.0, 0) + "%",
                   TextTable::fmt(bound), std::to_string(found->nodes)});
        if (show && n_found <= 5) {
          const auto* tab =
              dynamic_cast<const TabularCode*>(found->code.get());
          if (tab != nullptr) {
            std::printf("  <2^%u>^%u/%u tables:", k, tw, n_found);
            for (unsigned g = 0; g < tw; ++g) {
              std::printf("  gen%u:", g);
              for (const BitVec& pat : tab->table()[g]) {
                std::printf(" %s", pat.to_string().c_str());
              }
            }
            std::printf("\n");
          }
        }
      } else {
        t.add_row({std::to_string(k), std::to_string(tw),
                   "none <= " + std::to_string(nmax), "-", TextTable::fmt(bound),
                   "-"});
      }
    }
  }
  std::printf("\n%s\n", t.to_text().c_str());
  std::printf(
      "The classic <2^2>^2/3 code (Table 1 of the paper) appears as the\n"
      "k=2, t=2 row; higher rewrite limits lower the latency bound but the\n"
      "wit cost grows quickly — the tradeoff PCM-refresh sidesteps.\n");
  return 0;
}

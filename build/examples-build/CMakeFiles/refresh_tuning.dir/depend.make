# Empty dependencies file for refresh_tuning.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../examples/refresh_tuning"
  "../examples/refresh_tuning.pdb"
  "CMakeFiles/refresh_tuning.dir/refresh_tuning.cc.o"
  "CMakeFiles/refresh_tuning.dir/refresh_tuning.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/refresh_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for spec_study.
# This may be replaced when dependencies are built.

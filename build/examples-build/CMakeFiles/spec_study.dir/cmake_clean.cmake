file(REMOVE_RECURSE
  "../examples/spec_study"
  "../examples/spec_study.pdb"
  "CMakeFiles/spec_study.dir/spec_study.cc.o"
  "CMakeFiles/spec_study.dir/spec_study.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spec_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for mix_study.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../examples/mix_study"
  "../examples/mix_study.pdb"
  "CMakeFiles/mix_study.dir/mix_study.cc.o"
  "CMakeFiles/mix_study.dir/mix_study.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mix_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for code_explorer.
# This may be replaced when dependencies are built.

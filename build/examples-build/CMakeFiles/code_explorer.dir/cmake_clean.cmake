file(REMOVE_RECURSE
  "../examples/code_explorer"
  "../examples/code_explorer.pdb"
  "CMakeFiles/code_explorer.dir/code_explorer.cc.o"
  "CMakeFiles/code_explorer.dir/code_explorer.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/code_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for wcpcm_demo.
# This may be replaced when dependencies are built.

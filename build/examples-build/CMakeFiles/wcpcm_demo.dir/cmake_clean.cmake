file(REMOVE_RECURSE
  "../examples/wcpcm_demo"
  "../examples/wcpcm_demo.pdb"
  "CMakeFiles/wcpcm_demo.dir/wcpcm_demo.cc.o"
  "CMakeFiles/wcpcm_demo.dir/wcpcm_demo.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wcpcm_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libwomcode_pcm.a"
)

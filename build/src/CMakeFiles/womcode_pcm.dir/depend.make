# Empty dependencies file for womcode_pcm.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arch/arch.cc" "src/CMakeFiles/womcode_pcm.dir/arch/arch.cc.o" "gcc" "src/CMakeFiles/womcode_pcm.dir/arch/arch.cc.o.d"
  "/root/repo/src/arch/baseline.cc" "src/CMakeFiles/womcode_pcm.dir/arch/baseline.cc.o" "gcc" "src/CMakeFiles/womcode_pcm.dir/arch/baseline.cc.o.d"
  "/root/repo/src/arch/flip_n_write.cc" "src/CMakeFiles/womcode_pcm.dir/arch/flip_n_write.cc.o" "gcc" "src/CMakeFiles/womcode_pcm.dir/arch/flip_n_write.cc.o.d"
  "/root/repo/src/arch/refresh_wom_pcm.cc" "src/CMakeFiles/womcode_pcm.dir/arch/refresh_wom_pcm.cc.o" "gcc" "src/CMakeFiles/womcode_pcm.dir/arch/refresh_wom_pcm.cc.o.d"
  "/root/repo/src/arch/wcpcm.cc" "src/CMakeFiles/womcode_pcm.dir/arch/wcpcm.cc.o" "gcc" "src/CMakeFiles/womcode_pcm.dir/arch/wcpcm.cc.o.d"
  "/root/repo/src/arch/wom_pcm.cc" "src/CMakeFiles/womcode_pcm.dir/arch/wom_pcm.cc.o" "gcc" "src/CMakeFiles/womcode_pcm.dir/arch/wom_pcm.cc.o.d"
  "/root/repo/src/common/address.cc" "src/CMakeFiles/womcode_pcm.dir/common/address.cc.o" "gcc" "src/CMakeFiles/womcode_pcm.dir/common/address.cc.o.d"
  "/root/repo/src/common/bitvec.cc" "src/CMakeFiles/womcode_pcm.dir/common/bitvec.cc.o" "gcc" "src/CMakeFiles/womcode_pcm.dir/common/bitvec.cc.o.d"
  "/root/repo/src/common/config.cc" "src/CMakeFiles/womcode_pcm.dir/common/config.cc.o" "gcc" "src/CMakeFiles/womcode_pcm.dir/common/config.cc.o.d"
  "/root/repo/src/controller/controller.cc" "src/CMakeFiles/womcode_pcm.dir/controller/controller.cc.o" "gcc" "src/CMakeFiles/womcode_pcm.dir/controller/controller.cc.o.d"
  "/root/repo/src/controller/queues.cc" "src/CMakeFiles/womcode_pcm.dir/controller/queues.cc.o" "gcc" "src/CMakeFiles/womcode_pcm.dir/controller/queues.cc.o.d"
  "/root/repo/src/controller/refresh_engine.cc" "src/CMakeFiles/womcode_pcm.dir/controller/refresh_engine.cc.o" "gcc" "src/CMakeFiles/womcode_pcm.dir/controller/refresh_engine.cc.o.d"
  "/root/repo/src/controller/scheduler.cc" "src/CMakeFiles/womcode_pcm.dir/controller/scheduler.cc.o" "gcc" "src/CMakeFiles/womcode_pcm.dir/controller/scheduler.cc.o.d"
  "/root/repo/src/controller/wear_leveling.cc" "src/CMakeFiles/womcode_pcm.dir/controller/wear_leveling.cc.o" "gcc" "src/CMakeFiles/womcode_pcm.dir/controller/wear_leveling.cc.o.d"
  "/root/repo/src/pcm/bank.cc" "src/CMakeFiles/womcode_pcm.dir/pcm/bank.cc.o" "gcc" "src/CMakeFiles/womcode_pcm.dir/pcm/bank.cc.o.d"
  "/root/repo/src/pcm/endurance.cc" "src/CMakeFiles/womcode_pcm.dir/pcm/endurance.cc.o" "gcc" "src/CMakeFiles/womcode_pcm.dir/pcm/endurance.cc.o.d"
  "/root/repo/src/pcm/energy.cc" "src/CMakeFiles/womcode_pcm.dir/pcm/energy.cc.o" "gcc" "src/CMakeFiles/womcode_pcm.dir/pcm/energy.cc.o.d"
  "/root/repo/src/pcm/rank.cc" "src/CMakeFiles/womcode_pcm.dir/pcm/rank.cc.o" "gcc" "src/CMakeFiles/womcode_pcm.dir/pcm/rank.cc.o.d"
  "/root/repo/src/pcm/timing.cc" "src/CMakeFiles/womcode_pcm.dir/pcm/timing.cc.o" "gcc" "src/CMakeFiles/womcode_pcm.dir/pcm/timing.cc.o.d"
  "/root/repo/src/sim/config_io.cc" "src/CMakeFiles/womcode_pcm.dir/sim/config_io.cc.o" "gcc" "src/CMakeFiles/womcode_pcm.dir/sim/config_io.cc.o.d"
  "/root/repo/src/sim/experiment.cc" "src/CMakeFiles/womcode_pcm.dir/sim/experiment.cc.o" "gcc" "src/CMakeFiles/womcode_pcm.dir/sim/experiment.cc.o.d"
  "/root/repo/src/sim/simulator.cc" "src/CMakeFiles/womcode_pcm.dir/sim/simulator.cc.o" "gcc" "src/CMakeFiles/womcode_pcm.dir/sim/simulator.cc.o.d"
  "/root/repo/src/stats/histogram.cc" "src/CMakeFiles/womcode_pcm.dir/stats/histogram.cc.o" "gcc" "src/CMakeFiles/womcode_pcm.dir/stats/histogram.cc.o.d"
  "/root/repo/src/stats/stats.cc" "src/CMakeFiles/womcode_pcm.dir/stats/stats.cc.o" "gcc" "src/CMakeFiles/womcode_pcm.dir/stats/stats.cc.o.d"
  "/root/repo/src/stats/table.cc" "src/CMakeFiles/womcode_pcm.dir/stats/table.cc.o" "gcc" "src/CMakeFiles/womcode_pcm.dir/stats/table.cc.o.d"
  "/root/repo/src/trace/file_source.cc" "src/CMakeFiles/womcode_pcm.dir/trace/file_source.cc.o" "gcc" "src/CMakeFiles/womcode_pcm.dir/trace/file_source.cc.o.d"
  "/root/repo/src/trace/mix.cc" "src/CMakeFiles/womcode_pcm.dir/trace/mix.cc.o" "gcc" "src/CMakeFiles/womcode_pcm.dir/trace/mix.cc.o.d"
  "/root/repo/src/trace/profiles.cc" "src/CMakeFiles/womcode_pcm.dir/trace/profiles.cc.o" "gcc" "src/CMakeFiles/womcode_pcm.dir/trace/profiles.cc.o.d"
  "/root/repo/src/trace/synthetic.cc" "src/CMakeFiles/womcode_pcm.dir/trace/synthetic.cc.o" "gcc" "src/CMakeFiles/womcode_pcm.dir/trace/synthetic.cc.o.d"
  "/root/repo/src/trace/trace.cc" "src/CMakeFiles/womcode_pcm.dir/trace/trace.cc.o" "gcc" "src/CMakeFiles/womcode_pcm.dir/trace/trace.cc.o.d"
  "/root/repo/src/wom/code_search.cc" "src/CMakeFiles/womcode_pcm.dir/wom/code_search.cc.o" "gcc" "src/CMakeFiles/womcode_pcm.dir/wom/code_search.cc.o.d"
  "/root/repo/src/wom/identity_code.cc" "src/CMakeFiles/womcode_pcm.dir/wom/identity_code.cc.o" "gcc" "src/CMakeFiles/womcode_pcm.dir/wom/identity_code.cc.o.d"
  "/root/repo/src/wom/inverted_code.cc" "src/CMakeFiles/womcode_pcm.dir/wom/inverted_code.cc.o" "gcc" "src/CMakeFiles/womcode_pcm.dir/wom/inverted_code.cc.o.d"
  "/root/repo/src/wom/page_codec.cc" "src/CMakeFiles/womcode_pcm.dir/wom/page_codec.cc.o" "gcc" "src/CMakeFiles/womcode_pcm.dir/wom/page_codec.cc.o.d"
  "/root/repo/src/wom/registry.cc" "src/CMakeFiles/womcode_pcm.dir/wom/registry.cc.o" "gcc" "src/CMakeFiles/womcode_pcm.dir/wom/registry.cc.o.d"
  "/root/repo/src/wom/rs_code.cc" "src/CMakeFiles/womcode_pcm.dir/wom/rs_code.cc.o" "gcc" "src/CMakeFiles/womcode_pcm.dir/wom/rs_code.cc.o.d"
  "/root/repo/src/wom/tabular_code.cc" "src/CMakeFiles/womcode_pcm.dir/wom/tabular_code.cc.o" "gcc" "src/CMakeFiles/womcode_pcm.dir/wom/tabular_code.cc.o.d"
  "/root/repo/src/wom/wom_tracker.cc" "src/CMakeFiles/womcode_pcm.dir/wom/wom_tracker.cc.o" "gcc" "src/CMakeFiles/womcode_pcm.dir/wom/wom_tracker.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

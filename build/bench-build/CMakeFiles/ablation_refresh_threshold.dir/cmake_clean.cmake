file(REMOVE_RECURSE
  "../bench/ablation_refresh_threshold"
  "../bench/ablation_refresh_threshold.pdb"
  "CMakeFiles/ablation_refresh_threshold.dir/ablation_refresh_threshold.cc.o"
  "CMakeFiles/ablation_refresh_threshold.dir/ablation_refresh_threshold.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_refresh_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for ablation_refresh_threshold.
# This may be replaced when dependencies are built.

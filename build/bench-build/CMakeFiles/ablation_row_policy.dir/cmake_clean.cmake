file(REMOVE_RECURSE
  "../bench/ablation_row_policy"
  "../bench/ablation_row_policy.pdb"
  "CMakeFiles/ablation_row_policy.dir/ablation_row_policy.cc.o"
  "CMakeFiles/ablation_row_policy.dir/ablation_row_policy.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_row_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "../bench/fig6_womcache_hitrate"
  "../bench/fig6_womcache_hitrate.pdb"
  "CMakeFiles/fig6_womcache_hitrate.dir/fig6_womcache_hitrate.cc.o"
  "CMakeFiles/fig6_womcache_hitrate.dir/fig6_womcache_hitrate.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_womcache_hitrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig6_womcache_hitrate.
# This may be replaced when dependencies are built.

# Empty dependencies file for ablation_rewrite_bound.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/ablation_rewrite_bound"
  "../bench/ablation_rewrite_bound.pdb"
  "CMakeFiles/ablation_rewrite_bound.dir/ablation_rewrite_bound.cc.o"
  "CMakeFiles/ablation_rewrite_bound.dir/ablation_rewrite_bound.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_rewrite_bound.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "../bench/table1_womcode"
  "../bench/table1_womcode.pdb"
  "CMakeFiles/table1_womcode.dir/table1_womcode.cc.o"
  "CMakeFiles/table1_womcode.dir/table1_womcode.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_womcode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

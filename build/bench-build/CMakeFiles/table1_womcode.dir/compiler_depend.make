# Empty compiler generated dependencies file for table1_womcode.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/ablation_endurance"
  "../bench/ablation_endurance.pdb"
  "CMakeFiles/ablation_endurance.dir/ablation_endurance.cc.o"
  "CMakeFiles/ablation_endurance.dir/ablation_endurance.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_endurance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for fig5b_read_latency.
# This may be replaced when dependencies are built.

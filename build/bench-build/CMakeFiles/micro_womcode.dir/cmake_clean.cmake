file(REMOVE_RECURSE
  "../bench/micro_womcode"
  "../bench/micro_womcode.pdb"
  "CMakeFiles/micro_womcode.dir/micro_womcode.cc.o"
  "CMakeFiles/micro_womcode.dir/micro_womcode.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_womcode.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

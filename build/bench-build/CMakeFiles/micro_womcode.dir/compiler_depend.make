# Empty compiler generated dependencies file for micro_womcode.
# This may be replaced when dependencies are built.

# Empty dependencies file for ablation_organization.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/ablation_organization"
  "../bench/ablation_organization.pdb"
  "CMakeFiles/ablation_organization.dir/ablation_organization.cc.o"
  "CMakeFiles/ablation_organization.dir/ablation_organization.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_organization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "../bench/ablation_flip_n_write"
  "../bench/ablation_flip_n_write.pdb"
  "CMakeFiles/ablation_flip_n_write.dir/ablation_flip_n_write.cc.o"
  "CMakeFiles/ablation_flip_n_write.dir/ablation_flip_n_write.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_flip_n_write.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

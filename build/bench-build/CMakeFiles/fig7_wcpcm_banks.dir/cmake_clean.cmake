file(REMOVE_RECURSE
  "../bench/fig7_wcpcm_banks"
  "../bench/fig7_wcpcm_banks.pdb"
  "CMakeFiles/fig7_wcpcm_banks.dir/fig7_wcpcm_banks.cc.o"
  "CMakeFiles/fig7_wcpcm_banks.dir/fig7_wcpcm_banks.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_wcpcm_banks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

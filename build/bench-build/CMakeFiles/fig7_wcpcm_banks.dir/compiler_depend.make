# Empty compiler generated dependencies file for fig7_wcpcm_banks.
# This may be replaced when dependencies are built.

# Empty dependencies file for fig5a_write_latency.
# This may be replaced when dependencies are built.

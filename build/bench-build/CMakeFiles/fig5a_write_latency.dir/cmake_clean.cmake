file(REMOVE_RECURSE
  "../bench/fig5a_write_latency"
  "../bench/fig5a_write_latency.pdb"
  "CMakeFiles/fig5a_write_latency.dir/fig5a_write_latency.cc.o"
  "CMakeFiles/fig5a_write_latency.dir/fig5a_write_latency.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5a_write_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

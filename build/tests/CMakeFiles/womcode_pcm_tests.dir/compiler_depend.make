# Empty compiler generated dependencies file for womcode_pcm_tests.
# This may be replaced when dependencies are built.

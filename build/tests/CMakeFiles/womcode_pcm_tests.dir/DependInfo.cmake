
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_address.cc" "tests/CMakeFiles/womcode_pcm_tests.dir/test_address.cc.o" "gcc" "tests/CMakeFiles/womcode_pcm_tests.dir/test_address.cc.o.d"
  "/root/repo/tests/test_arch_baseline.cc" "tests/CMakeFiles/womcode_pcm_tests.dir/test_arch_baseline.cc.o" "gcc" "tests/CMakeFiles/womcode_pcm_tests.dir/test_arch_baseline.cc.o.d"
  "/root/repo/tests/test_arch_wcpcm.cc" "tests/CMakeFiles/womcode_pcm_tests.dir/test_arch_wcpcm.cc.o" "gcc" "tests/CMakeFiles/womcode_pcm_tests.dir/test_arch_wcpcm.cc.o.d"
  "/root/repo/tests/test_arch_wom.cc" "tests/CMakeFiles/womcode_pcm_tests.dir/test_arch_wom.cc.o" "gcc" "tests/CMakeFiles/womcode_pcm_tests.dir/test_arch_wom.cc.o.d"
  "/root/repo/tests/test_bank.cc" "tests/CMakeFiles/womcode_pcm_tests.dir/test_bank.cc.o" "gcc" "tests/CMakeFiles/womcode_pcm_tests.dir/test_bank.cc.o.d"
  "/root/repo/tests/test_bitvec.cc" "tests/CMakeFiles/womcode_pcm_tests.dir/test_bitvec.cc.o" "gcc" "tests/CMakeFiles/womcode_pcm_tests.dir/test_bitvec.cc.o.d"
  "/root/repo/tests/test_code_search.cc" "tests/CMakeFiles/womcode_pcm_tests.dir/test_code_search.cc.o" "gcc" "tests/CMakeFiles/womcode_pcm_tests.dir/test_code_search.cc.o.d"
  "/root/repo/tests/test_config.cc" "tests/CMakeFiles/womcode_pcm_tests.dir/test_config.cc.o" "gcc" "tests/CMakeFiles/womcode_pcm_tests.dir/test_config.cc.o.d"
  "/root/repo/tests/test_config_io.cc" "tests/CMakeFiles/womcode_pcm_tests.dir/test_config_io.cc.o" "gcc" "tests/CMakeFiles/womcode_pcm_tests.dir/test_config_io.cc.o.d"
  "/root/repo/tests/test_controller.cc" "tests/CMakeFiles/womcode_pcm_tests.dir/test_controller.cc.o" "gcc" "tests/CMakeFiles/womcode_pcm_tests.dir/test_controller.cc.o.d"
  "/root/repo/tests/test_cross_layer.cc" "tests/CMakeFiles/womcode_pcm_tests.dir/test_cross_layer.cc.o" "gcc" "tests/CMakeFiles/womcode_pcm_tests.dir/test_cross_layer.cc.o.d"
  "/root/repo/tests/test_endurance.cc" "tests/CMakeFiles/womcode_pcm_tests.dir/test_endurance.cc.o" "gcc" "tests/CMakeFiles/womcode_pcm_tests.dir/test_endurance.cc.o.d"
  "/root/repo/tests/test_energy.cc" "tests/CMakeFiles/womcode_pcm_tests.dir/test_energy.cc.o" "gcc" "tests/CMakeFiles/womcode_pcm_tests.dir/test_energy.cc.o.d"
  "/root/repo/tests/test_experiment.cc" "tests/CMakeFiles/womcode_pcm_tests.dir/test_experiment.cc.o" "gcc" "tests/CMakeFiles/womcode_pcm_tests.dir/test_experiment.cc.o.d"
  "/root/repo/tests/test_mix.cc" "tests/CMakeFiles/womcode_pcm_tests.dir/test_mix.cc.o" "gcc" "tests/CMakeFiles/womcode_pcm_tests.dir/test_mix.cc.o.d"
  "/root/repo/tests/test_multichannel.cc" "tests/CMakeFiles/womcode_pcm_tests.dir/test_multichannel.cc.o" "gcc" "tests/CMakeFiles/womcode_pcm_tests.dir/test_multichannel.cc.o.d"
  "/root/repo/tests/test_page_codec.cc" "tests/CMakeFiles/womcode_pcm_tests.dir/test_page_codec.cc.o" "gcc" "tests/CMakeFiles/womcode_pcm_tests.dir/test_page_codec.cc.o.d"
  "/root/repo/tests/test_profiles.cc" "tests/CMakeFiles/womcode_pcm_tests.dir/test_profiles.cc.o" "gcc" "tests/CMakeFiles/womcode_pcm_tests.dir/test_profiles.cc.o.d"
  "/root/repo/tests/test_queues.cc" "tests/CMakeFiles/womcode_pcm_tests.dir/test_queues.cc.o" "gcc" "tests/CMakeFiles/womcode_pcm_tests.dir/test_queues.cc.o.d"
  "/root/repo/tests/test_refresh.cc" "tests/CMakeFiles/womcode_pcm_tests.dir/test_refresh.cc.o" "gcc" "tests/CMakeFiles/womcode_pcm_tests.dir/test_refresh.cc.o.d"
  "/root/repo/tests/test_reproduction.cc" "tests/CMakeFiles/womcode_pcm_tests.dir/test_reproduction.cc.o" "gcc" "tests/CMakeFiles/womcode_pcm_tests.dir/test_reproduction.cc.o.d"
  "/root/repo/tests/test_rng.cc" "tests/CMakeFiles/womcode_pcm_tests.dir/test_rng.cc.o" "gcc" "tests/CMakeFiles/womcode_pcm_tests.dir/test_rng.cc.o.d"
  "/root/repo/tests/test_row_policy.cc" "tests/CMakeFiles/womcode_pcm_tests.dir/test_row_policy.cc.o" "gcc" "tests/CMakeFiles/womcode_pcm_tests.dir/test_row_policy.cc.o.d"
  "/root/repo/tests/test_scheduler.cc" "tests/CMakeFiles/womcode_pcm_tests.dir/test_scheduler.cc.o" "gcc" "tests/CMakeFiles/womcode_pcm_tests.dir/test_scheduler.cc.o.d"
  "/root/repo/tests/test_simulator.cc" "tests/CMakeFiles/womcode_pcm_tests.dir/test_simulator.cc.o" "gcc" "tests/CMakeFiles/womcode_pcm_tests.dir/test_simulator.cc.o.d"
  "/root/repo/tests/test_stats.cc" "tests/CMakeFiles/womcode_pcm_tests.dir/test_stats.cc.o" "gcc" "tests/CMakeFiles/womcode_pcm_tests.dir/test_stats.cc.o.d"
  "/root/repo/tests/test_sweep_smoke.cc" "tests/CMakeFiles/womcode_pcm_tests.dir/test_sweep_smoke.cc.o" "gcc" "tests/CMakeFiles/womcode_pcm_tests.dir/test_sweep_smoke.cc.o.d"
  "/root/repo/tests/test_synthetic.cc" "tests/CMakeFiles/womcode_pcm_tests.dir/test_synthetic.cc.o" "gcc" "tests/CMakeFiles/womcode_pcm_tests.dir/test_synthetic.cc.o.d"
  "/root/repo/tests/test_tabular_code.cc" "tests/CMakeFiles/womcode_pcm_tests.dir/test_tabular_code.cc.o" "gcc" "tests/CMakeFiles/womcode_pcm_tests.dir/test_tabular_code.cc.o.d"
  "/root/repo/tests/test_timing.cc" "tests/CMakeFiles/womcode_pcm_tests.dir/test_timing.cc.o" "gcc" "tests/CMakeFiles/womcode_pcm_tests.dir/test_timing.cc.o.d"
  "/root/repo/tests/test_trace.cc" "tests/CMakeFiles/womcode_pcm_tests.dir/test_trace.cc.o" "gcc" "tests/CMakeFiles/womcode_pcm_tests.dir/test_trace.cc.o.d"
  "/root/repo/tests/test_wear_leveling.cc" "tests/CMakeFiles/womcode_pcm_tests.dir/test_wear_leveling.cc.o" "gcc" "tests/CMakeFiles/womcode_pcm_tests.dir/test_wear_leveling.cc.o.d"
  "/root/repo/tests/test_wom_codes.cc" "tests/CMakeFiles/womcode_pcm_tests.dir/test_wom_codes.cc.o" "gcc" "tests/CMakeFiles/womcode_pcm_tests.dir/test_wom_codes.cc.o.d"
  "/root/repo/tests/test_wom_tracker.cc" "tests/CMakeFiles/womcode_pcm_tests.dir/test_wom_tracker.cc.o" "gcc" "tests/CMakeFiles/womcode_pcm_tests.dir/test_wom_tracker.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/womcode_pcm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

// Umbrella header: the stable public surface of the WOM-code PCM simulator.
//
// Tools and studies include only this header:
//
//   #include "womcode.h"
//
// It exports, by layer:
//   - run entry:   RunRequest / TraceSpec / RunOptions / run / run_sweep
//                  (sim/run.h) and the paper platform (sim/experiment.h)
//   - service:     SimService session-oriented streaming API
//                  (sim/service.h): open_session / submit / step / poll /
//                  close_session / drain over a long-lived memory system
//   - results:     SimConfig / SimResult (sim/simulator.h)
//   - config I/O:  apply_overrides / load_config_file / describe
//                  (sim/config_io.h) and the key=value CLI parsing
//                  (common/config.h)
//   - traces:      benchmark profiles, recorded trace files, multi-core
//                  mixes (trace/profiles.h, file_source.h, mix.h)
//   - WOM codes:   the code registry and page codec (wom/registry.h,
//                  page_codec.h) and exhaustive code search
//                  (wom/code_search.h)
//   - fault model: FaultConfig (pcm/fault_model.h, re-exported through
//                  sim/simulator.h) for programmatic fault setup
//   - reporting:   text tables and histograms (stats/table.h, histogram.h)
//
// Everything else under src/ (controller internals, bank/rank timing
// machinery, per-architecture classes) is internal: it may change without
// notice between versions. See DESIGN.md "Public API".
#pragma once

#include "common/config.h"
#include "sim/config_io.h"
#include "sim/experiment.h"
#include "sim/parallel_sweep.h"
#include "sim/run.h"
#include "sim/service.h"
#include "sim/simulator.h"
#include "stats/histogram.h"
#include "stats/table.h"
#include "trace/file_source.h"
#include "trace/mix.h"
#include "trace/profiles.h"
#include "wom/code_search.h"
#include "wom/page_codec.h"
#include "wom/registry.h"

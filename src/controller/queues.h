// Read / write transaction queues with age order and line lookup.
#pragma once

#include <cstddef>
#include <deque>

#include "controller/transaction.h"

namespace wompcm {

class TransactionQueue {
 public:
  void push(const Transaction& tx) { q_.push_back(tx); }

  bool empty() const { return q_.empty(); }
  std::size_t size() const { return q_.size(); }

  const Transaction& at(std::size_t i) const { return q_[i]; }
  Transaction take(std::size_t i);

  // True if some queued transaction covers the same line address
  // (used for write-to-read forwarding).
  bool contains_line(Addr addr, unsigned line_bytes) const;

  // Oldest arrival time in the queue (kNeverTick when empty).
  Tick oldest_arrival() const;

  const std::deque<Transaction>& entries() const { return q_; }

 private:
  std::deque<Transaction> q_;
};

}  // namespace wompcm

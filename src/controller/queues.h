// Read / write transaction queues with age order and indexed lookup.
//
// The queue is the controller's hottest data structure: every enqueue
// probes the write queue for read-forwarding, and every scheduler scan
// walks entries in age order. The representation is built for those two
// paths:
//
//  - Storage is a power-of-two ring of slots addressed by a monotonically
//    increasing position counter (`Pos`). push() appends at the tail;
//    take() tombstones the slot in place, so removing from the middle
//    never shifts other entries (age order is the position order, and a
//    Pos handle stays valid until the next push). Dead slots are reclaimed
//    in bulk: when the live span reaches the ring capacity, the live
//    entries are compacted to the front in order, so a configured queue
//    never allocates in steady state.
//  - A linear-probe hash of line addresses (with per-line counts and
//    backward-shift deletion) makes contains_line() O(1) instead of a
//    scan over the queue.
//  - Entries pushed with a resource id maintain per-resource counts and a
//    BankBitmap occupancy mask, so a scheduler can test "does this queue
//    target any ready bank?" in a few word operations before touching a
//    single entry. Entries whose routing is dynamic (it can change while
//    they wait, e.g. WCPCM demand reads that probe mutable cache tags) are
//    pushed with kNoResource and counted in unindexed(); while any are
//    present the mask is a subset of the queue's targets, not the whole
//    set, and mask-based early-outs must be skipped.
//
// The queue also tracks whether pushes arrived in non-decreasing arrival
// order (arrivals_monotone()); schedulers may stop an age-order scan at
// the first not-yet-arrived entry only when that holds.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "controller/transaction.h"
#include "pcm/rank.h"

namespace wompcm {

class TransactionQueue {
 public:
  // Stable handle for a queued entry: the position counter at push time.
  // Valid until the entry is taken or the next push (which may compact).
  using Pos = std::size_t;
  static constexpr Pos kNoPos = static_cast<Pos>(-1);

  // Resource id for entries whose routing is unknown or dynamic.
  static constexpr unsigned kNoResource = ~0u;

  TransactionQueue();

  // Sizes the indexes for a queue holding up to `capacity` entries over
  // `resources` bank-shaped resources, with the line index keyed at
  // `line_bytes` granularity. Allocates; must be called while empty.
  // Exceeding `capacity` is allowed but may allocate on push.
  void configure(unsigned line_bytes, unsigned resources,
                 std::size_t capacity);

  void push(const Transaction& tx) { push_impl(tx, kNoResource); }
  void push(const Transaction& tx, unsigned resource) {
    push_impl(tx, resource);
  }

  bool empty() const { return live_ == 0; }
  std::size_t size() const { return live_; }

  // Age-order iteration over live entries:
  //   for (auto p = q.first(); p != TransactionQueue::kNoPos; p = q.next(p))
  Pos first() const { return head_ == tail_ ? kNoPos : head_; }
  Pos next(Pos p) const {
    for (++p; p != tail_; ++p) {
      if (ring_[p & ring_mask_].live) return p;
    }
    return kNoPos;
  }

  const Transaction& at(Pos p) const {
    assert(p >= head_ && p < tail_ && ring_[p & ring_mask_].live);
    return ring_[p & ring_mask_].tx;
  }

  // Resource recorded at push time (kNoResource for dynamic routes).
  unsigned resource_at(Pos p) const { return ring_[p & ring_mask_].resource; }

  // Cached route for a dynamically-routed entry: valid only while `version`
  // matches the stamp it was recorded under (see
  // Architecture::route_version). Returns kNoResource when nothing current
  // is cached, so schedulers fall back to recomputing the route.
  unsigned route_hint(Pos p, std::uint64_t version) const {
    const Slot& s = ring_[p & ring_mask_];
    return s.hint_stamp == version ? s.hint : kNoResource;
  }
  void set_route_hint(Pos p, unsigned r, std::uint64_t version) {
    Slot& s = ring_[p & ring_mask_];
    s.hint = r;
    s.hint_stamp = version;
  }

  Transaction take(Pos p);

  // True if some queued transaction covers the same line address
  // (used for write-to-read forwarding). O(1) via the line index when
  // `line_bytes` matches the configured granularity.
  bool contains_line(Addr addr, unsigned line_bytes) const;

  // Oldest arrival time in the queue (kNeverTick when empty).
  Tick oldest_arrival() const;

  // Occupancy mask over resources with at least one indexed entry.
  const BankBitmap& bank_mask() const { return mask_; }

  // Number of live entries pushed without a (stable) resource.
  std::size_t unindexed() const { return unindexed_; }

  // True while every push so far arrived in non-decreasing arrival order.
  bool arrivals_monotone() const { return monotone_; }

  // Total pushes over the queue's lifetime (takes do not count). Lets a
  // scheduler detect "no entry was added since my last scan" — removals
  // only shrink the schedulable set, so a failed scan stays failed.
  std::uint64_t pushes() const { return push_count_; }

 private:
  // Stamp value no live route_version can take (versions count up from 0).
  static constexpr std::uint64_t kNoStamp = ~std::uint64_t{0};

  struct Slot {
    Transaction tx{};
    unsigned resource = kNoResource;
    bool live = false;
    unsigned hint = kNoResource;           // cached dynamic route
    std::uint64_t hint_stamp = kNoStamp;   // route_version it was cached at
  };
  struct LineCell {
    Addr line = 0;
    std::uint32_t count = 0;  // 0 marks an empty cell
  };

  void push_impl(const Transaction& tx, unsigned resource);
  void compact();
  void grow_ring();

  static std::size_t line_hash(Addr line) {
    std::uint64_t h = static_cast<std::uint64_t>(line) * 0x9E3779B97F4A7C15ull;
    return static_cast<std::size_t>(h ^ (h >> 29));
  }
  void line_add(Addr line);
  void line_remove(Addr line);
  bool line_find(Addr line) const;
  void grow_lines();

  std::vector<Slot> ring_;  // power-of-two capacity
  std::size_t ring_mask_ = 0;
  Pos head_ = 0;  // position of the oldest live entry (always live)
  Pos tail_ = 0;  // one past the newest entry (live or dead)
  std::size_t live_ = 0;

  std::vector<LineCell> lines_;  // linear-probe hash, power-of-two size
  std::size_t line_mask_ = 0;
  std::size_t line_used_ = 0;
  unsigned line_bytes_ = 64;

  std::vector<std::uint32_t> counts_;  // live entries per resource
  BankBitmap mask_;
  std::size_t unindexed_ = 0;

  bool monotone_ = true;
  bool has_pushed_ = false;
  Tick last_push_arrival_ = 0;
  std::uint64_t push_count_ = 0;
};

}  // namespace wompcm

#include "controller/wear_leveling.h"

#include <cassert>

namespace wompcm {

StartGapRemapper::StartGapRemapper(unsigned rows, unsigned interval)
    : rows_(rows), interval_(interval == 0 ? 1 : interval), gap_(rows) {
  assert(rows_ >= 1);
}

unsigned StartGapRemapper::remap(unsigned logical_row) const {
  assert(logical_row < rows_);
  unsigned physical = (logical_row + start_) % rows_;
  if (physical >= gap_) ++physical;
  return physical;
}

bool StartGapRemapper::on_write() {
  if (++writes_since_move_ < interval_) return false;
  writes_since_move_ = 0;
  ++moves_;
  if (gap_ == 0) {
    // The gap wrapped: the whole array has shifted by one row.
    gap_ = rows_;
    start_ = (start_ + 1) % rows_;
  } else {
    --gap_;
  }
  return true;
}

}  // namespace wompcm

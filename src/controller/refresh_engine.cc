#include "controller/refresh_engine.h"

namespace wompcm {

RefreshEngine::RefreshEngine(const RefreshConfig& cfg, const PcmTiming& timing,
                             const MemoryGeometry& geom, unsigned channel)
    : cfg_(cfg),
      timing_(timing),
      geom_(geom),
      channel_(channel),
      next_check_(cfg.enabled ? timing.refresh_period_ns : kNeverTick) {}

Tick RefreshEngine::run(Tick now, Architecture& arch,
                        const BankResolver& bank_of,
                        const std::function<bool(unsigned)>& unit_ready) {
  if (!active(arch)) return 0;
  Tick finish = 0;
  while (next_check_ <= now) {
    next_check_ += timing_.refresh_period_ns;
    const Tick f = scan(now, arch, bank_of, unit_ready);
    if (f != 0) finish = f;
  }
  return finish;
}

Tick RefreshEngine::scan(Tick now, Architecture& arch,
                         const BankResolver& bank_of,
                         const std::function<bool(unsigned)>& unit_ready) {
  const unsigned nranks = geom_.ranks;
  for (unsigned i = 0; i < nranks; ++i) {
    const unsigned rank = (cursor_ + i) % nranks;
    const double pending = arch.refresh_pending_fraction(channel_, rank);
    if (pending <= 0.0 || pending < cfg_.threshold) continue;
    const Architecture::RefreshWork work =
        arch.perform_refresh(channel_, rank, unit_ready);
    if (work.rows == 0) continue;
    // Burst-mode command: t_WR plus one data burst per row streamed.
    const Tick until =
        now + timing_.row_write_ns + work.rows * timing_.burst_ns();
    for (const unsigned r : work.resources) {
      Bank& bank = bank_of(r);
      bank.begin_refresh(until);
      // The refresh streams rows through the row buffer.
      bank.close_row();
    }
    rows_ += work.rows;
    ++commands_;
    cursor_ = (rank + 1) % nranks;
    return until;
  }
  cursor_ = (cursor_ + 1) % nranks;
  return 0;
}

}  // namespace wompcm

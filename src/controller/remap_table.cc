#include "controller/remap_table.h"

namespace wompcm {

SpareRowRemapper::SpareRowRemapper(unsigned banks, unsigned spare_rows,
                                   unsigned first_spare_row)
    : spare_rows_(spare_rows), first_spare_(first_spare_row), used_(banks, 0) {}

unsigned SpareRowRemapper::resolve(unsigned bank, unsigned row) const {
  // Follow the chain: a spare that died in service forwards again. The
  // chain is acyclic (a spare is handed out once) and bounded by the pool.
  for (const std::uint32_t* next; (next = map_.find(key(bank, row))) != nullptr;) {
    row = *next;
  }
  return row;
}

std::optional<unsigned> SpareRowRemapper::retire(unsigned bank, unsigned row) {
  if (used_[bank] >= spare_rows_) {
    ++exhausted_;
    return std::nullopt;
  }
  const unsigned spare = first_spare_ + used_[bank]++;
  map_[key(bank, row)] = spare;
  ++remapped_;
  return spare;
}

}  // namespace wompcm

#include "controller/queues.h"

#include <cassert>

namespace wompcm {

Transaction TransactionQueue::take(std::size_t i) {
  assert(i < q_.size());
  Transaction tx = q_[i];
  q_.erase(q_.begin() + static_cast<std::ptrdiff_t>(i));
  return tx;
}

bool TransactionQueue::contains_line(Addr addr, unsigned line_bytes) const {
  const Addr line = addr / line_bytes;
  for (const Transaction& tx : q_) {
    if (tx.addr / line_bytes == line) return true;
  }
  return false;
}

Tick TransactionQueue::oldest_arrival() const {
  if (q_.empty()) return kNeverTick;
  Tick t = q_.front().arrival;
  for (const Transaction& tx : q_) {
    if (tx.arrival < t) t = tx.arrival;
  }
  return t;
}

}  // namespace wompcm

#include "controller/queues.h"

namespace wompcm {

namespace {

std::size_t pow2_at_least(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

TransactionQueue::TransactionQueue() {
  ring_.assign(16, Slot{});
  ring_mask_ = ring_.size() - 1;
  lines_.assign(64, LineCell{});
  line_mask_ = lines_.size() - 1;
}

void TransactionQueue::configure(unsigned line_bytes, unsigned resources,
                                 std::size_t capacity) {
  assert(empty());
  line_bytes_ = line_bytes == 0 ? 64 : line_bytes;
  counts_.assign(resources, 0);
  mask_.resize(resources, false);
  unindexed_ = 0;
  // 2x capacity of ring slack so tombstone compaction stays amortised O(1),
  // 4x line-table slack so probes stay short at full occupancy.
  const std::size_t cap = capacity < 8 ? 8 : capacity;
  ring_.assign(pow2_at_least(cap * 2), Slot{});
  ring_mask_ = ring_.size() - 1;
  head_ = tail_ = 0;
  lines_.assign(pow2_at_least(cap * 4), LineCell{});
  line_mask_ = lines_.size() - 1;
  line_used_ = 0;
  monotone_ = true;
  has_pushed_ = false;
  last_push_arrival_ = 0;
  push_count_ = 0;
}

void TransactionQueue::push_impl(const Transaction& tx, unsigned resource) {
  if (tail_ - head_ == ring_.size()) {
    if (live_ < ring_.size()) {
      compact();
    } else {
      grow_ring();
    }
  }
  Slot& s = ring_[tail_ & ring_mask_];
  s.tx = tx;
  s.live = true;
  s.hint_stamp = kNoStamp;  // reused slot: drop any stale route hint
  ++tail_;
  ++live_;
  ++push_count_;
  if (has_pushed_ && tx.arrival < last_push_arrival_) monotone_ = false;
  has_pushed_ = true;
  last_push_arrival_ = tx.arrival;
  line_add(tx.addr / line_bytes_);
  if (resource != kNoResource && resource < counts_.size()) {
    s.resource = resource;
    if (counts_[resource]++ == 0) mask_.set(resource);
  } else {
    s.resource = kNoResource;
    ++unindexed_;
  }
}

Transaction TransactionQueue::take(Pos p) {
  assert(p >= head_ && p < tail_);
  Slot& s = ring_[p & ring_mask_];
  assert(s.live);
  s.live = false;
  --live_;
  line_remove(s.tx.addr / line_bytes_);
  if (s.resource != kNoResource) {
    if (--counts_[s.resource] == 0) mask_.clear(s.resource);
  } else {
    --unindexed_;
  }
  // Keep head_ pointing at a live entry so first() is O(1).
  while (head_ != tail_ && !ring_[head_ & ring_mask_].live) ++head_;
  return s.tx;
}

void TransactionQueue::compact() {
  Pos w = head_;
  for (Pos r = head_; r != tail_; ++r) {
    Slot& s = ring_[r & ring_mask_];
    if (!s.live) continue;
    if (w != r) {
      ring_[w & ring_mask_] = s;
      s.live = false;
    }
    ++w;
  }
  tail_ = w;
}

void TransactionQueue::grow_ring() {
  std::vector<Slot> bigger(ring_.size() * 2);
  std::size_t w = 0;
  for (Pos r = head_; r != tail_; ++r) {
    const Slot& s = ring_[r & ring_mask_];
    if (s.live) bigger[w++] = s;
  }
  ring_.swap(bigger);
  ring_mask_ = ring_.size() - 1;
  head_ = 0;
  tail_ = w;
}

bool TransactionQueue::contains_line(Addr addr, unsigned line_bytes) const {
  if (line_bytes == line_bytes_) return line_find(addr / line_bytes_);
  // Query at a granularity the index is not keyed for: scan instead.
  const Addr line = addr / line_bytes;
  for (Pos p = first(); p != kNoPos; p = next(p)) {
    if (ring_[p & ring_mask_].tx.addr / line_bytes == line) return true;
  }
  return false;
}

Tick TransactionQueue::oldest_arrival() const {
  Tick t = kNeverTick;
  for (Pos p = first(); p != kNoPos; p = next(p)) {
    const Tick a = ring_[p & ring_mask_].tx.arrival;
    if (a < t) t = a;
  }
  return t;
}

void TransactionQueue::line_add(Addr line) {
  if ((line_used_ + 1) * 2 > lines_.size()) grow_lines();
  std::size_t i = line_hash(line) & line_mask_;
  while (lines_[i].count != 0) {
    if (lines_[i].line == line) {
      ++lines_[i].count;
      return;
    }
    i = (i + 1) & line_mask_;
  }
  lines_[i].line = line;
  lines_[i].count = 1;
  ++line_used_;
}

void TransactionQueue::line_remove(Addr line) {
  std::size_t i = line_hash(line) & line_mask_;
  while (lines_[i].count != 0 && lines_[i].line != line) {
    i = (i + 1) & line_mask_;
  }
  assert(lines_[i].count != 0 && "line index out of sync with queue");
  if (--lines_[i].count != 0) return;
  --line_used_;
  // Backward-shift deletion: pull displaced entries over the hole so the
  // probe chain stays unbroken (no tombstones in the line table).
  std::size_t hole = i;
  std::size_t j = (i + 1) & line_mask_;
  while (lines_[j].count != 0) {
    const std::size_t home = line_hash(lines_[j].line) & line_mask_;
    if (((j - home) & line_mask_) >= ((j - hole) & line_mask_)) {
      lines_[hole] = lines_[j];
      hole = j;
    }
    j = (j + 1) & line_mask_;
  }
  lines_[hole].count = 0;
}

bool TransactionQueue::line_find(Addr line) const {
  std::size_t i = line_hash(line) & line_mask_;
  while (lines_[i].count != 0) {
    if (lines_[i].line == line) return true;
    i = (i + 1) & line_mask_;
  }
  return false;
}

void TransactionQueue::grow_lines() {
  std::vector<LineCell> old;
  old.swap(lines_);
  lines_.assign(old.size() * 2, LineCell{});
  line_mask_ = lines_.size() - 1;
  line_used_ = 0;
  for (const LineCell& c : old) {
    if (c.count == 0) continue;
    std::size_t i = line_hash(c.line) & line_mask_;
    while (lines_[i].count != 0) i = (i + 1) & line_mask_;
    lines_[i] = c;
    ++line_used_;
  }
}

}  // namespace wompcm

// Spare-row remap table (bad-line map).
//
// Graceful degradation for dead rows: each main bank carries a small pool
// of spare physical rows; when the fault model declares a row's line dead
// (write-verify can never pass), the controller retires the physical row
// to the bank's next free spare and records the mapping here. The table is
// consulted on the address path (after Start-Gap, see
// Architecture::physical_row), and a retired spare can itself be retired —
// resolve() follows the chain.
//
// Spare physical rows are indexed from `first_spare_row` upward, past the
// Start-Gap spare, so the three row populations (logical rows, the gap
// spare, fault spares) never collide in the per-bank key space.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/flat_map.h"

namespace wompcm {

class SpareRowRemapper {
 public:
  // `banks` main banks, each with `spare_rows` spares starting at physical
  // row `first_spare_row`.
  SpareRowRemapper(unsigned banks, unsigned spare_rows,
                   unsigned first_spare_row);

  // Physical row currently backing `row` in `bank`: follows the retirement
  // chain (a dead spare forwards to its replacement). Identity when the row
  // was never retired.
  unsigned resolve(unsigned bank, unsigned row) const;

  // Retires (bank, row) — the *physical* row, post Start-Gap — to the
  // bank's next free spare. Returns the spare's physical row id, or nullopt
  // (and counts the exhaustion) when the bank has no spares left.
  std::optional<unsigned> retire(unsigned bank, unsigned row);

  std::uint64_t remapped_rows() const { return remapped_; }
  std::uint64_t exhausted() const { return exhausted_; }
  unsigned spares_used(unsigned bank) const { return used_[bank]; }
  unsigned spare_rows() const { return spare_rows_; }

 private:
  static std::uint64_t key(unsigned bank, unsigned row) {
    return (static_cast<std::uint64_t>(bank) << 32) | row;
  }

  unsigned spare_rows_;
  unsigned first_spare_;
  std::vector<unsigned> used_;       // spares consumed, per bank
  FlatMap64<std::uint32_t> map_;     // (bank, dead row) -> replacement row
  std::uint64_t remapped_ = 0;
  std::uint64_t exhausted_ = 0;
};

}  // namespace wompcm

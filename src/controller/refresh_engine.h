// The PCM-refresh engine (Section 3.2), one instance per channel.
//
// Every refresh_period_ns the owning controller scans its channel's ranks
// round-robin and picks the first rank whose pending-alpha-row fraction
// meets the r_th threshold and that has idle refresh units. It then issues
// one burst-mode refresh command: the architecture pops pending rows from
// its row address tables (one per idle bank for rank-wide WOM PCM, up to a
// RAT's worth for a WOM-cache array) and the participating units are
// occupied for t_WR + rows * L_burst/2. Demand accesses arriving
// mid-refresh preempt it at a small pause penalty (write pausing).
#pragma once

#include <functional>
#include <vector>

#include "arch/arch.h"
#include "pcm/bank.h"

namespace wompcm {

struct RefreshConfig {
  bool enabled = true;
  // r_th: minimum fraction of a rank's banks that must have at least one
  // pending row for the rank to be selected (0 = any pending work).
  double threshold = 0.0;
  bool write_pausing = true;
  // If true, a unit is only refresh-ready when no queued demand targets it
  // (stricter idleness; write pausing makes the default cheap enough).
  bool require_empty_queues = false;
};

class RefreshEngine {
 public:
  // Maps a global bank-like resource index (as used by Architecture) to
  // the owning controller's bank state.
  using BankResolver = std::function<Bank&(unsigned)>;

  RefreshEngine(const RefreshConfig& cfg, const PcmTiming& timing,
                const MemoryGeometry& geom, unsigned channel);

  bool active(const Architecture& arch) const {
    return cfg_.enabled && arch.refresh_enabled();
  }
  bool write_pausing() const { return cfg_.enabled && cfg_.write_pausing; }
  const RefreshConfig& config() const { return cfg_; }
  unsigned channel() const { return channel_; }

  // Next periodic check time (kNeverTick once disabled).
  Tick next_check() const { return next_check_; }

  // Runs the checks due at or before `now`. `unit_ready(resource)` must
  // report whether that bank-like unit can stream a refresh right now.
  // Returns the completion time of a refresh issued at `now` (or 0).
  Tick run(Tick now, Architecture& arch, const BankResolver& bank_of,
           const std::function<bool(unsigned)>& unit_ready);

  std::uint64_t commands() const { return commands_; }
  std::uint64_t rows_refreshed() const { return rows_; }

 private:
  // One scan over this channel's ranks: returns completion time if a
  // command was issued, else 0.
  Tick scan(Tick now, Architecture& arch, const BankResolver& bank_of,
            const std::function<bool(unsigned)>& unit_ready);

  RefreshConfig cfg_;
  PcmTiming timing_;
  MemoryGeometry geom_;
  unsigned channel_;
  Tick next_check_;
  unsigned cursor_ = 0;  // round-robin over this channel's ranks
  std::uint64_t commands_ = 0;
  std::uint64_t rows_ = 0;
};

}  // namespace wompcm

// The per-channel PCM memory controller: queues, bank/bus timing, write
// drain, write pausing, PCM-refresh — the DRAMSim2-equivalent substrate of
// the paper, scoped to exactly one channel.
//
// A controller owns the demand queues, back-pressure bound, scheduler
// scan, refresh engine, data bus, and bank state of its channel only; it
// holds no cross-channel state. MemorySystem (sim/memory_system.h)
// instantiates one controller per channel and routes transactions by their
// decoded channel coordinate.
//
// The controller is event-stepped: tick(now) performs all work available at
// `now` (issue demand accesses, run due refresh checks), and
// next_event_after(now) reports the earliest future instant at which new
// work may become possible. The driving loop (sim/Simulator via
// MemorySystem) interleaves trace arrivals with these events.
//
// Service-time model for an access issued at time s on bank B:
//   activate = row_read_ns if B's open row differs from the target row
//   read:  pre + activate + col_read_ns + burst + post
//   write: pre + activate + burst + program + post
// where pre/program/post come from the architecture's IssuePlan (WOM fast
// path vs alpha-write, tag checks, hidden-page second access) and the data
// bus of the channel is held for one burst at issue.
#pragma once

#include <memory>
#include <vector>

#include "arch/arch.h"
#include "common/event_queue.h"
#include "controller/queues.h"
#include "controller/refresh_engine.h"
#include "controller/scheduler.h"
#include "pcm/bank.h"
#include "stats/metrics.h"
#include "stats/stats.h"

namespace wompcm {

// Row-buffer management policy.
enum class RowPolicy : std::uint8_t {
  kOpen,    // leave the accessed row latched (open-page; default)
  kClosed,  // precharge after every access (no row-buffer hits)
};

const char* to_string(RowPolicy p);

struct ControllerConfig {
  MemoryGeometry geom;
  PcmTiming timing;
  SchedulerConfig sched;
  RefreshConfig refresh;
  RowPolicy row_policy = RowPolicy::kOpen;
  // Channel this controller serves; every enqueued transaction must decode
  // to it.
  unsigned channel = 0;
  // Back-pressure bound on this channel's queued demand transactions
  // (per-channel: a saturated channel never stalls its siblings).
  unsigned queue_capacity = 256;
  // Forward reads that hit a queued write (write-to-read forwarding).
  bool read_forwarding = true;
};

class MemoryController {
 public:
  MemoryController(const ControllerConfig& cfg, Architecture& arch,
                   SimStats& stats);

  // Frontend back-pressure: false when the demand queues are full.
  bool can_accept() const;

  // Hands a demand transaction to the controller. tx.arrival is the
  // enqueue time and must not precede the latest tick; tx.dec.channel must
  // be this controller's channel.
  void enqueue(Transaction tx);

  // Performs all work possible at time `now` (monotone across calls).
  void tick(Tick now);

  // Earliest future time at which tick() could make progress, or
  // kNeverTick if the controller is fully drained and quiescent.
  Tick next_event_after(Tick now);

  bool drained() const {
    return read_q_.empty() && write_q_.empty() && internal_q_.empty();
  }
  Tick last_completion() const { return last_completion_; }
  unsigned channel() const { return cfg_.channel; }

  std::size_t read_queue_size() const { return read_q_.size(); }
  std::size_t write_queue_size() const { return write_q_.size(); }
  std::size_t internal_queue_size() const { return internal_q_.size(); }
  std::size_t max_queue_depth() const { return max_queue_depth_; }
  // Cumulative time the channel's data bus was held by bursts.
  Tick bus_busy_time() const { return bus_busy_time_; }

  // This channel's bank-like resources, in ascending global-resource
  // order (main banks first, then any cache arrays).
  const std::vector<Bank>& banks() const { return banks_; }
  // Bank state for a global resource index owned by this channel.
  const Bank& bank(unsigned global_resource) const {
    return banks_[local_resource(global_resource)];
  }
  const RefreshEngine& refresh_engine() const { return refresh_; }

  // Publishes this channel's counters ("ch<N>." prefix) plus its share of
  // the system-wide refresh totals into the registry.
  void publish_metrics(MetricsRegistry& reg) const;

 private:
  struct Pick {
    std::size_t idx = kNoPick;
    bool row_hit = false;
    Tick arrival = kNeverTick;
  };

  unsigned local_resource(unsigned global_resource) const {
    return global_to_local_[global_resource];
  }
  Bank& bank_mut(unsigned global_resource) {
    return banks_[local_resource(global_resource)];
  }
  bool can_issue(const Transaction& tx, Tick now) const;
  bool is_row_hit(const Transaction& tx) const;
  Pick find_pick(const TransactionQueue& q, Tick now) const;
  bool issue_fcfs(Tick now);
  bool issue_from(TransactionQueue& q, Tick now);
  void issue(Transaction tx, Tick now);
  bool refresh_unit_ready(unsigned resource, Tick now) const;
  void push_event(Tick t) { events_.schedule(t); }
  void note_queue_depth();

  ControllerConfig cfg_;
  Architecture& arch_;
  SimStats& stats_;

  TransactionQueue read_q_;
  TransactionQueue write_q_;
  // Architecture-generated write-backs (WCPCM victims): drained in the
  // background, only when no demand transaction can issue.
  TransactionQueue internal_q_;
  // This channel's banks; global resource index -> local slot.
  std::vector<Bank> banks_;
  std::vector<unsigned> global_to_local_;
  Tick bus_free_ = 0;  // the channel's one data bus
  Tick bus_busy_time_ = 0;
  std::size_t max_queue_depth_ = 0;
  WriteDrainPolicy drain_;
  RefreshEngine refresh_;

  EventQueue events_;
  Tick last_tick_ = 0;
  Tick last_completion_ = 0;
  std::uint64_t next_internal_id_;
};

}  // namespace wompcm

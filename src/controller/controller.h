// The per-channel PCM memory controller: queues, bank/bus timing, write
// drain, write pausing, PCM-refresh — the DRAMSim2-equivalent substrate of
// the paper, scoped to exactly one channel.
//
// A controller owns the demand queues, back-pressure bound, scheduler
// scan, refresh engine, data bus, and bank state of its channel only; it
// holds no cross-channel state. MemorySystem (sim/memory_system.h)
// instantiates one controller per channel and routes transactions by their
// decoded channel coordinate.
//
// The controller is event-stepped: tick(now) performs all work available at
// `now` (issue demand accesses, run due refresh checks), and
// next_event_after(now) reports the earliest future instant at which new
// work may become possible. The driving loop (sim/Simulator via
// MemorySystem) interleaves trace arrivals with these events.
//
// Service-time model for an access issued at time s on bank B:
//   activate = row_read_ns if B's open row differs from the target row
//   read:  pre + activate + col_read_ns + burst + post
//   write: pre + activate + burst + program + post
// where pre/program/post come from the architecture's IssuePlan (WOM fast
// path vs alpha-write, tag checks, hidden-page second access) and the data
// bus of the channel is held for one burst at issue.
//
// Hot-path structure (see DESIGN.md "Hot path & complexity"): the
// controller keeps a BankBitmap of demand-ready banks (maintained by a
// wakeup min-heap processed at each tick), caches each transaction's
// routed bank in the queue at enqueue time (except dynamically-routed
// reads), and caches the earliest scheduled event so the memory system can
// skip channels with nothing due. SchedulerConfig::scan_mode selects
// between this indexed path and the straight-line reference scan; both
// must produce bit-identical results.
#pragma once

#include <memory>
#include <vector>

#include "arch/arch.h"
#include "common/event_queue.h"
#include "controller/queues.h"
#include "controller/refresh_engine.h"
#include "controller/scheduler.h"
#include "controller/tier_front.h"
#include "pcm/bank.h"
#include "pcm/rank.h"
#include "pcm/tier_spec.h"
#include "stats/metrics.h"
#include "stats/stats.h"

namespace wompcm {

// Row-buffer management policy.
enum class RowPolicy : std::uint8_t {
  kOpen,    // leave the accessed row latched (open-page; default)
  kClosed,  // precharge after every access (no row-buffer hits)
};

const char* to_string(RowPolicy p);

struct ControllerConfig {
  MemoryGeometry geom;
  PcmTiming timing;
  SchedulerConfig sched;
  RefreshConfig refresh;
  RowPolicy row_policy = RowPolicy::kOpen;
  // Channel this controller serves; every enqueued transaction must decode
  // to it.
  unsigned channel = 0;
  // Back-pressure bound on this channel's queued demand transactions
  // (per-channel: a saturated channel never stalls its siblings).
  unsigned queue_capacity = 256;
  // Forward reads that hit a queued write (write-to-read forwarding).
  bool read_forwarding = true;
  // Optional DRAM-timing tier fronting this channel's PCM queues.
  TierSpec tier;
};

class MemoryController {
 public:
  MemoryController(const ControllerConfig& cfg, Architecture& arch,
                   SimStats& stats);

  // Frontend back-pressure: false when the demand queues are full.
  bool can_accept() const;

  // Hands a demand transaction to the controller. tx.arrival is the
  // enqueue time and must not precede the latest tick; tx.dec.channel must
  // be this controller's channel.
  void enqueue(Transaction tx);

  // Performs all work possible at time `now` (monotone across calls).
  void tick(Tick now);

  // Earliest future time at which tick() could make progress, or
  // kNeverTick if the controller is fully drained and quiescent.
  Tick next_event_after(Tick now);

  // Cached earliest scheduled event (may be at or before the current
  // instant when work is due). The memory system uses this to dispatch
  // tick() only to channels with something to do.
  Tick pending_event() const { return next_event_; }

  bool drained() const {
    return read_q_.empty() && write_q_.empty() && internal_q_.empty();
  }
  Tick last_completion() const { return last_completion_; }
  unsigned channel() const { return cfg_.channel; }

  std::size_t read_queue_size() const { return read_q_.size(); }
  std::size_t write_queue_size() const { return write_q_.size(); }
  std::size_t internal_queue_size() const { return internal_q_.size(); }
  std::size_t max_queue_depth() const { return max_queue_depth_; }
  // Cumulative time the channel's data bus was held by bursts.
  Tick bus_busy_time() const { return bus_busy_time_; }

  // This channel's bank-like resources, in ascending global-resource
  // order (main banks first, then any cache arrays).
  const std::vector<Bank>& banks() const { return banks_; }
  // Bank state for a global resource index owned by this channel.
  const Bank& bank(unsigned global_resource) const {
    return banks_[local_resource(global_resource)];
  }
  const RefreshEngine& refresh_engine() const { return refresh_; }
  // The channel's DRAM front tier, or nullptr when tiering is disabled.
  const TierFront* tier() const { return tier_.get(); }

  // Publishes this channel's counters ("ch<N>." prefix) plus its share of
  // the system-wide refresh totals into the registry.
  void publish_metrics(MetricsRegistry& reg) const;

 private:
  struct Pick {
    std::size_t idx = kNoPick;
    bool row_hit = false;
    Tick arrival = kNeverTick;
  };
  // A future instant at which a local bank may become demand-ready again.
  struct BankWake {
    Tick at = 0;
    unsigned resource = 0;  // local index into banks_
  };
  struct WakeLater {
    bool operator()(const BankWake& a, const BankWake& b) const {
      return a.at > b.at;
    }
  };

  // Memoized failed scan for one queue (see find_pick). A recorded failure
  // proves "no entry can issue", and stays valid until an event occurs that
  // could create a pick: a bank turning ready (scan_epoch_), a push into
  // this queue (pushes), a dynamic-route mutation (rv), or the queue's
  // first not-yet-arrived entry coming due (barrier). Bank-busying events
  // and takes only shrink the issuable set, so they leave a failure valid.
  struct ScanCache {
    std::uint64_t epoch = 0;
    std::uint64_t pushes = 0;
    std::uint64_t rv = 0;
    Tick barrier = 0;
    bool valid = false;
  };

  unsigned local_resource(unsigned global_resource) const {
    return global_to_local_[global_resource];
  }
  ScanCache& scan_cache_for(const TransactionQueue& q) {
    if (&q == &read_q_) return scan_cache_[0];
    if (&q == &write_q_) return scan_cache_[1];
    return scan_cache_[2];
  }
  Bank& bank_mut(unsigned global_resource) {
    return banks_[local_resource(global_resource)];
  }
  bool can_issue(const Transaction& tx, Tick now) const;
  bool is_row_hit(const Transaction& tx) const;
  Pick find_pick(TransactionQueue& q, Tick now);
  Pick find_pick_reference(const TransactionQueue& q, Tick now) const;
  bool issue_fcfs(Tick now);
  bool issue_from(TransactionQueue& q, Tick now);
  void issue(Transaction tx, Tick now);
  void enqueue_tier_writeback(const DecodedAddr& victim, Tick now,
                              bool record);
  bool refresh_unit_ready(unsigned resource, Tick now) const;
  void run_refresh(Tick now);
  void process_bank_wakes(Tick now);
  void wake_push(Tick at, unsigned local) {
    wake_heap_.push_back(BankWake{at, local});
    std::push_heap(wake_heap_.begin(), wake_heap_.end(), WakeLater{});
  }
  // Schedules a controller event, keeping next_event_ == the heap minimum
  // (re-pushing the current minimum is a no-op).
  void push_event(Tick t) {
    if (t == kNeverTick || t == next_event_) return;
    events_.schedule(t);
    if (t < next_event_) next_event_ = t;
  }
  void note_queue_depth();
  // Lazily-bound counter increment: resolves the CounterSet slot on first
  // use so untouched counters never appear in reports.
  void bump(std::uint64_t*& slot, const char* name) {
    if (slot == nullptr) slot = stats_.counters.slot(name);
    ++*slot;
  }

  ControllerConfig cfg_;
  Architecture& arch_;
  SimStats& stats_;

  TransactionQueue read_q_;
  TransactionQueue write_q_;
  // Architecture-generated write-backs (WCPCM victims): drained in the
  // background, only when no demand transaction can issue.
  TransactionQueue internal_q_;
  // Present only when cfg_.tier.enabled; probed at enqueue time, so the
  // no-tier hot path pays a single null check.
  std::unique_ptr<TierFront> tier_;
  // This channel's banks; global resource index -> local slot.
  std::vector<Bank> banks_;
  std::vector<unsigned> global_to_local_;
  Tick bus_free_ = 0;  // the channel's one data bus
  Tick bus_busy_time_ = 0;
  std::size_t max_queue_depth_ = 0;
  WriteDrainPolicy drain_;
  RefreshEngine refresh_;

  // Demand-readiness bitmap over local banks: bit set == the bank could
  // start a demand op right now (busy over, and — unless write pausing
  // hides refresh — refresh over). Updated by process_bank_wakes() at tick
  // start and synchronously on issue/refresh within a tick.
  BankBitmap ready_;
  std::vector<BankWake> wake_heap_;  // min-heap of readiness re-check times
  ScanCache scan_cache_[3];          // read, write, internal
  // Advances whenever a readiness bit is set (pushes are detected
  // per-queue via TransactionQueue::pushes()).
  std::uint64_t scan_epoch_ = 0;
  std::vector<unsigned> refresh_touched_;  // global resources, scratch

  EventQueue events_;
  Tick next_event_ = kNeverTick;  // cached minimum of events_
  Tick last_tick_ = 0;
  Tick last_completion_ = 0;
  std::uint64_t next_internal_id_;

  // Configuration-derived constants hoisted off the hot path.
  bool reference_ = false;      // scan_mode == kReference
  bool refresh_active_ = false; // refresh engine live for this arch
  bool pausing_ = false;        // write pausing hides refresh from readiness
  bool dynamic_reads_ = false;  // demand-read routing may change while queued
  unsigned line_bytes_ = 64;
  RefreshEngine::BankResolver refresh_bank_of_;  // built once, not per tick
  std::function<bool(unsigned)> refresh_ready_fn_;

  std::uint64_t* ctr_reads_forwarded_ = nullptr;
  std::uint64_t* ctr_refresh_pauses_ = nullptr;
  std::uint64_t* ctr_internal_writes_ = nullptr;
};

}  // namespace wompcm

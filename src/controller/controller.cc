#include "controller/controller.h"

#include <cassert>
#include <stdexcept>

namespace wompcm {

const char* to_string(RowPolicy p) {
  return p == RowPolicy::kOpen ? "open-page" : "closed-page";
}

MemoryController::MemoryController(const ControllerConfig& cfg,
                                   Architecture& arch, SimStats& stats)
    : cfg_(cfg),
      arch_(arch),
      stats_(stats),
      drain_(cfg.sched),
      refresh_(cfg.refresh, cfg.timing, cfg.geom, cfg.channel),
      next_internal_id_((std::uint64_t{1} << 62) |
                        (static_cast<std::uint64_t>(cfg.channel) << 48)) {
  std::string why;
  if (!cfg_.geom.valid(&why)) {
    throw std::invalid_argument("controller: bad geometry: " + why);
  }
  if (cfg_.channel >= cfg_.geom.channels) {
    throw std::invalid_argument("controller: channel out of range");
  }
  if (!cfg_.timing.valid(&why)) {
    throw std::invalid_argument("controller: bad timing: " + why);
  }
  if (!cfg_.sched.valid(&why)) {
    throw std::invalid_argument("controller: bad scheduler config: " + why);
  }
  // Claim exactly this channel's bank-like resources, preserving their
  // global-resource order.
  const unsigned total = arch.num_resources();
  global_to_local_.assign(total, ~0u);
  for (unsigned r = 0; r < total; ++r) {
    if (arch.resource_channel(r) == cfg_.channel) {
      global_to_local_[r] = static_cast<unsigned>(banks_.size());
      banks_.emplace_back();
    }
  }
  if (refresh_.active(arch_)) push_event(refresh_.next_check());
}

bool MemoryController::can_accept() const {
  return read_q_.size() + write_q_.size() < cfg_.queue_capacity;
}

void MemoryController::note_queue_depth() {
  const std::size_t depth =
      read_q_.size() + write_q_.size() + internal_q_.size();
  if (depth > max_queue_depth_) max_queue_depth_ = depth;
}

void MemoryController::enqueue(Transaction tx) {
  assert(tx.arrival >= last_tick_);
  assert(tx.dec.channel == cfg_.channel);
  if (tx.internal) {
    internal_q_.push(tx);
    note_queue_depth();
    push_event(tx.arrival);
    return;
  }
  if (tx.type == AccessType::kRead) {
    if (cfg_.read_forwarding &&
        write_q_.contains_line(tx.addr, cfg_.geom.line_bytes())) {
      // The freshest copy sits in the write queue: forward it at buffer
      // latency without touching the array.
      const Tick latency = cfg_.timing.col_read_ns + cfg_.timing.burst_ns();
      if (tx.record) {
        stats_.demand_read_latency.add(latency);
        stats_.read_latency_hist.add(latency);
        stats_.counters.inc("ctrl.reads_forwarded");
      }
      if (tx.arrival + latency > last_completion_) {
        last_completion_ = tx.arrival + latency;
      }
      return;
    }
    read_q_.push(tx);
  } else {
    write_q_.push(tx);
  }
  note_queue_depth();
  push_event(tx.arrival);
}

bool MemoryController::is_row_hit(const Transaction& tx) const {
  const unsigned r = arch_.route(tx.dec, tx.type, tx.internal);
  const auto open = bank(r).open_row();
  return open.has_value() && *open == tx.dec.row;
}

bool MemoryController::can_issue(const Transaction& tx, Tick now) const {
  if (tx.arrival > now) return false;  // not yet visible to the controller
  if (bus_free_ > now) return false;   // the channel's one data bus
  const unsigned r = arch_.route(tx.dec, tx.type, tx.internal);
  return bank(r).demand_ready_at(now, refresh_.write_pausing()) <= now;
}

bool MemoryController::issue_from(TransactionQueue& q, Tick now) {
  const std::size_t i = pick_transaction(
      q, cfg_.sched,
      [&](const Transaction& tx) { return can_issue(tx, now); },
      [&](const Transaction& tx) { return is_row_hit(tx); });
  if (i == kNoPick) return false;
  issue(q.take(i), now);
  return true;
}

MemoryController::Pick MemoryController::find_pick(const TransactionQueue& q,
                                                   Tick now) const {
  Pick p;
  p.idx = pick_transaction(
      q, cfg_.sched,
      [&](const Transaction& tx) { return can_issue(tx, now); },
      [&](const Transaction& tx) { return is_row_hit(tx); });
  if (p.idx != kNoPick) {
    p.row_hit = is_row_hit(q.at(p.idx));
    p.arrival = q.at(p.idx).arrival;
  }
  return p;
}

bool MemoryController::issue_fcfs(Tick now) {
  const Pick r = find_pick(read_q_, now);
  const Pick w = find_pick(write_q_, now);
  if (r.idx == kNoPick && w.idx == kNoPick) return false;
  bool take_read;
  if (r.idx == kNoPick) {
    take_read = false;
  } else if (w.idx == kNoPick) {
    take_read = true;
  } else if (cfg_.sched.row_hit_first && r.row_hit != w.row_hit) {
    take_read = r.row_hit;  // FR-FCFS: an open-row hit goes first
  } else {
    take_read = r.arrival <= w.arrival;  // strict age order otherwise
  }
  if (take_read) {
    issue(read_q_.take(r.idx), now);
  } else {
    issue(write_q_.take(w.idx), now);
  }
  return true;
}

void MemoryController::issue(Transaction tx, Tick now) {
  IssuePlan plan = arch_.plan(tx.dec, tx.type, tx.internal, now);
  Bank& bank = bank_mut(plan.resource);

  Tick pre = plan.pre_ns;
  if (bank.refreshing(now)) {
    // Write pausing: preempting the in-progress refresh costs the pause
    // penalty up front (the refresh completion is pushed back in
    // begin_demand).
    pre += cfg_.timing.pause_resume_ns;
    stats_.counters.inc("ctrl.refresh_pauses");
  }
  const Tick activate =
      (bank.open_row().has_value() && *bank.open_row() == plan.row)
          ? 0
          : cfg_.timing.row_read_ns;
  Tick service = pre + activate + plan.post_ns;
  if (tx.type == AccessType::kRead) {
    service += cfg_.timing.col_read_ns + cfg_.timing.burst_ns();
  } else {
    service += cfg_.timing.burst_ns() + plan.program_ns;
  }

  const Tick finish = bank.begin_demand(now, service, plan.row,
                                        refresh_.write_pausing(),
                                        cfg_.timing.pause_resume_ns);
  if (cfg_.row_policy == RowPolicy::kClosed) bank.close_row();
  bus_free_ = now + cfg_.timing.burst_ns();
  bus_busy_time_ += cfg_.timing.burst_ns();
  push_event(finish);
  push_event(bus_free_);
  if (finish > last_completion_) last_completion_ = finish;

  const Tick latency = finish - tx.arrival;
  if (tx.record) {
    if (tx.internal) {
      stats_.internal_write_latency.add(latency);
    } else if (tx.type == AccessType::kRead) {
      stats_.demand_read_latency.add(latency);
      stats_.read_latency_hist.add(latency);
    } else {
      stats_.demand_write_latency.add(latency);
      stats_.write_latency_hist.add(latency);
    }
  }

  for (const SpawnedWrite& s : plan.spawned) {
    Transaction victim;
    victim.id = next_internal_id_++;
    victim.dec = s.dec;
    victim.addr = 0;  // internal writes are routed by decoded coordinates
    victim.type = AccessType::kWrite;
    victim.arrival = now;
    victim.internal = true;
    victim.record = tx.record;
    internal_q_.push(victim);
    note_queue_depth();
    if (tx.record) stats_.counters.inc("ctrl.internal_writes");
  }
}

bool MemoryController::refresh_unit_ready(unsigned resource, Tick now) const {
  if (!bank(resource).idle(now)) return false;
  if (!cfg_.refresh.require_empty_queues) return true;
  auto targets = [&](const Transaction& tx) {
    return arch_.route(tx.dec, tx.type, tx.internal) == resource;
  };
  for (const Transaction& tx : read_q_.entries()) {
    if (targets(tx)) return false;
  }
  for (const Transaction& tx : write_q_.entries()) {
    if (targets(tx)) return false;
  }
  return true;
}

void MemoryController::tick(Tick now) {
  assert(now >= last_tick_);
  last_tick_ = now;

  // Run due PCM-refresh checks first: refresh only targets quiet ranks, so
  // pending demand work always wins.
  if (refresh_.active(arch_)) {
    const Tick f = refresh_.run(
        now, arch_,
        [&](unsigned resource) -> Bank& { return bank_mut(resource); },
        [&](unsigned resource) { return refresh_unit_ready(resource, now); });
    if (f != 0) {
      push_event(f);
      if (f > last_completion_) last_completion_ = f;
    }
    if (refresh_.next_check() != kNeverTick) {
      push_event(refresh_.next_check());
    }
  }

  // Issue until neither class can make progress at this instant. Internal
  // write-backs drain only when no demand transaction can go.
  for (;;) {
    bool issued = false;
    if (cfg_.sched.policy == SchedulingPolicy::kFcfs) {
      issued = issue_fcfs(now);
    } else {
      const bool writes_first =
          drain_.update(write_q_.size(), read_q_.size());
      if (writes_first) {
        issued = issue_from(write_q_, now) || issue_from(read_q_, now);
      } else {
        issued = issue_from(read_q_, now) || issue_from(write_q_, now);
      }
    }
    if (!issued) issued = issue_from(internal_q_, now);
    if (!issued) break;
  }
}

Tick MemoryController::next_event_after(Tick now) {
  return events_.next_after(now);
}

void MemoryController::publish_metrics(MetricsRegistry& reg) const {
  reg.set_counter(channel_metric(cfg_.channel, "bus_busy_ns"),
                  bus_busy_time_);
  reg.set_counter(channel_metric(cfg_.channel, "max_queue_depth"),
                  max_queue_depth_);
  reg.set_counter(channel_metric(cfg_.channel, "refresh.commands"),
                  refresh_.commands());
  reg.set_counter(channel_metric(cfg_.channel, "refresh.rows"),
                  refresh_.rows_refreshed());
  reg.add_counter("refresh.commands", refresh_.commands());
  reg.add_counter("refresh.rows", refresh_.rows_refreshed());
  reg.add_counter("bus.busy_ns", bus_busy_time_);
}

}  // namespace wompcm

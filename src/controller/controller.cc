#include "controller/controller.h"

#include <cassert>
#include <stdexcept>

namespace wompcm {

const char* to_string(RowPolicy p) {
  return p == RowPolicy::kOpen ? "open-page" : "closed-page";
}

MemoryController::MemoryController(const ControllerConfig& cfg,
                                   Architecture& arch, SimStats& stats)
    : cfg_(cfg),
      arch_(arch),
      stats_(stats),
      drain_(cfg.sched),
      refresh_(cfg.refresh, cfg.timing, cfg.geom, cfg.channel),
      next_internal_id_((std::uint64_t{1} << 62) |
                        (static_cast<std::uint64_t>(cfg.channel) << 48)) {
  std::string why;
  if (!cfg_.geom.valid(&why)) {
    throw std::invalid_argument("controller: bad geometry: " + why);
  }
  if (cfg_.channel >= cfg_.geom.channels) {
    throw std::invalid_argument("controller: channel out of range");
  }
  if (!cfg_.timing.valid(&why)) {
    throw std::invalid_argument("controller: bad timing: " + why);
  }
  if (!cfg_.sched.valid(&why)) {
    throw std::invalid_argument("controller: bad scheduler config: " + why);
  }
  // Claim exactly this channel's bank-like resources, preserving their
  // global-resource order.
  const unsigned total = arch.num_resources();
  global_to_local_.assign(total, ~0u);
  for (unsigned r = 0; r < total; ++r) {
    if (arch.resource_channel(r) == cfg_.channel) {
      global_to_local_[r] = static_cast<unsigned>(banks_.size());
      banks_.emplace_back();
    }
  }

  const auto nlocal = static_cast<unsigned>(banks_.size());
  ready_.resize(nlocal, true);  // every bank starts idle
  wake_heap_.reserve(2 * static_cast<std::size_t>(nlocal) + 16);
  refresh_touched_.reserve(nlocal);
  events_.reserve(4 * static_cast<std::size_t>(cfg_.queue_capacity) + 64);
  line_bytes_ = cfg_.geom.line_bytes();
  read_q_.configure(line_bytes_, nlocal, cfg_.queue_capacity);
  write_q_.configure(line_bytes_, nlocal, cfg_.queue_capacity);
  internal_q_.configure(line_bytes_, nlocal, cfg_.queue_capacity);

  reference_ = cfg_.sched.scan_mode == ScanMode::kReference;
  refresh_active_ = refresh_.active(arch_);
  pausing_ = refresh_.write_pausing();
  dynamic_reads_ = arch_.read_route_dynamic();
  refresh_bank_of_ = [this](unsigned resource) -> Bank& {
    refresh_touched_.push_back(resource);
    return bank_mut(resource);
  };
  refresh_ready_fn_ = [this](unsigned resource) {
    return refresh_unit_ready(resource, last_tick_);
  };

  if (refresh_active_) push_event(refresh_.next_check());

  if (cfg_.tier.enabled) {
    tier_ = std::make_unique<TierFront>(cfg_.tier, cfg_.geom, cfg_.channel);
  }
}

bool MemoryController::can_accept() const {
  return read_q_.size() + write_q_.size() < cfg_.queue_capacity;
}

void MemoryController::note_queue_depth() {
  const std::size_t depth =
      read_q_.size() + write_q_.size() + internal_q_.size();
  if (depth > max_queue_depth_) max_queue_depth_ = depth;
}

void MemoryController::enqueue(Transaction tx) {
  assert(tx.arrival >= last_tick_);
  assert(tx.dec.channel == cfg_.channel);
  if (tx.internal) {
    internal_q_.push(tx, local_resource(arch_.route(tx.dec, tx.type, true)));
    note_queue_depth();
    push_event(tx.arrival);
    if (bus_free_ > tx.arrival) push_event(bus_free_);
    return;
  }
  if (tx.background) {
    // Tier writeback: demand-routed (it traverses a composed WOM cache on
    // its way into PCM) but queued with the background write-backs so it
    // never starves demand traffic.
    internal_q_.push(tx, local_resource(arch_.route(tx.dec, tx.type, false)));
    note_queue_depth();
    push_event(tx.arrival);
    if (bus_free_ > tx.arrival) push_event(bus_free_);
    return;
  }
  if (tier_ != nullptr) {
    // The DRAM front tier sits ahead of the PCM queues: a hit completes at
    // DRAM latency without consuming a queue slot (the same
    // complete-at-enqueue shape as read forwarding below); a miss falls
    // through to the PCM path. Either may evict a dirty line into a
    // background writeback.
    const TierFront::Result r = tx.type == AccessType::kRead
                                    ? tier_->on_read(tx.dec, tx.arrival)
                                    : tier_->on_write(tx.dec, tx.arrival);
    if (r.writeback) enqueue_tier_writeback(r.victim, tx.arrival, tx.record);
    if (r.absorbed) {
      const Tick latency = r.done - tx.arrival;
      if (tx.record) {
        if (tx.type == AccessType::kRead) {
          stats_.demand_read_latency.add(latency);
          stats_.read_latency_hist.add(latency);
        } else {
          stats_.demand_write_latency.add(latency);
          stats_.write_latency_hist.add(latency);
        }
        if (tx.stream != 0) {
          SimStats::StreamSlice& slice = stats_.stream_slice(tx.stream);
          ++slice.tier_absorbed;
          (tx.type == AccessType::kRead ? slice.read_latency
                                        : slice.write_latency)
              .add(latency);
        }
      }
      if (r.done > last_completion_) last_completion_ = r.done;
      return;
    }
  }
  if (tx.type == AccessType::kRead) {
    if (cfg_.read_forwarding && write_q_.contains_line(tx.addr, line_bytes_)) {
      // The freshest copy sits in the write queue: forward it at buffer
      // latency without touching the array.
      const Tick latency = cfg_.timing.col_read_ns + cfg_.timing.burst_ns();
      if (tx.record) {
        stats_.demand_read_latency.add(latency);
        stats_.read_latency_hist.add(latency);
        bump(ctr_reads_forwarded_, "ctrl.reads_forwarded");
        if (tx.stream != 0) {
          SimStats::StreamSlice& slice = stats_.stream_slice(tx.stream);
          ++slice.reads_forwarded;
          slice.read_latency.add(latency);
        }
      }
      if (tx.arrival + latency > last_completion_) {
        last_completion_ = tx.arrival + latency;
      }
      return;
    }
    if (dynamic_reads_) {
      read_q_.push(tx);  // routing may change while queued: no cached bank
    } else {
      read_q_.push(tx, local_resource(arch_.route(tx.dec, tx.type, false)));
    }
  } else {
    write_q_.push(tx, local_resource(arch_.route(tx.dec, tx.type, false)));
  }
  note_queue_depth();
  push_event(tx.arrival);
  // issue() skips the bus-free event when the queues go empty; a late
  // arrival that finds the bus held must restore it.
  if (bus_free_ > tx.arrival) push_event(bus_free_);
}

bool MemoryController::is_row_hit(const Transaction& tx) const {
  const unsigned r = arch_.route(tx.dec, tx.type, tx.internal);
  const auto open = bank(r).open_row();
  return open.has_value() && *open == tx.dec.row;
}

bool MemoryController::can_issue(const Transaction& tx, Tick now) const {
  if (tx.arrival > now) return false;  // not yet visible to the controller
  if (bus_free_ > now) return false;   // the channel's one data bus
  const unsigned r = arch_.route(tx.dec, tx.type, tx.internal);
  return bank(r).demand_ready_at(now, refresh_.write_pausing()) <= now;
}

bool MemoryController::issue_from(TransactionQueue& q, Tick now) {
  const Pick p = find_pick(q, now);
  if (p.idx == kNoPick) return false;
  issue(q.take(p.idx), now);
  return true;
}

// The straight-line scan: every entry in age order through the generic
// pick_transaction, with per-entry routing and timing checks.
MemoryController::Pick MemoryController::find_pick_reference(
    const TransactionQueue& q, Tick now) const {
  Pick p;
  p.idx = pick_transaction(
      q, cfg_.sched,
      [&](const Transaction& tx) { return can_issue(tx, now); },
      [&](const Transaction& tx) { return is_row_hit(tx); });
  if (p.idx != kNoPick) {
    p.row_hit = is_row_hit(q.at(p.idx));
    p.arrival = q.at(p.idx).arrival;
  }
  return p;
}

// The indexed scan. Picks the same entry as find_pick_reference, but:
//  - bails in O(1) when the bus is held, or when no queued entry targets a
//    ready bank (occupancy mask vs readiness bitmap; only valid when every
//    entry's routing is cached, i.e. unindexed() == 0);
//  - tests bank readiness by bitmap bit instead of recomputing
//    demand_ready_at, using the bank cached at enqueue time (recomputing
//    the route only for dynamically-routed entries);
//  - stops at the first not-yet-arrived entry when arrivals are monotone
//    (everything after it in age order has not arrived either).
MemoryController::Pick MemoryController::find_pick(TransactionQueue& q,
                                                   Tick now) {
  if (reference_) return find_pick_reference(q, now);
  Pick fallback;
  if (q.empty() || bus_free_ > now) return fallback;
  if (q.unindexed() == 0 && !ready_.intersects(q.bank_mask())) return fallback;

  const bool monotone = q.arrivals_monotone();
  // Dynamic routes are memoized against the architecture's route_version:
  // each queued entry re-probes at most once per tag mutation instead of
  // once per scan.
  const std::uint64_t rv = q.unindexed() != 0 ? arch_.route_version() : 0;
  ScanCache& sc = scan_cache_for(q);
  if (sc.valid && sc.epoch == scan_epoch_ && sc.pushes == q.pushes() &&
      sc.rv == rv && now < sc.barrier) {
    return fallback;  // nothing that could produce a pick has changed
  }
  const bool row_hit_first = cfg_.sched.row_hit_first;
  const std::size_t limit =
      q.size() < cfg_.sched.scan_limit ? q.size() : cfg_.sched.scan_limit;
  Tick barrier = kNeverTick;
  std::size_t seen = 0;
  for (auto pos = q.first(); pos != TransactionQueue::kNoPos && seen < limit;
       pos = q.next(pos), ++seen) {
    const Transaction& tx = q.at(pos);
    if (tx.arrival > now) {
      if (monotone) {
        barrier = tx.arrival;
        break;
      }
      continue;
    }
    unsigned r = q.resource_at(pos);
    if (r == TransactionQueue::kNoResource) {
      r = q.route_hint(pos, rv);
      if (r == TransactionQueue::kNoResource) {
        r = local_resource(arch_.route(tx.dec, tx.type, tx.internal));
        q.set_route_hint(pos, r, rv);
      }
    }
    if (!ready_.test(r)) continue;
    const auto open = banks_[r].open_row();
    const bool hit = open.has_value() && *open == tx.dec.row;
    if (!row_hit_first || hit) {
      Pick p;
      p.idx = pos;
      p.row_hit = hit;
      p.arrival = tx.arrival;
      return p;
    }
    if (fallback.idx == kNoPick) {
      fallback.idx = pos;
      fallback.row_hit = false;
      fallback.arrival = tx.arrival;
    }
  }
  if (fallback.idx == kNoPick && monotone) {
    // Complete failure: remember it so the next scan is O(1) unless an
    // invalidating event intervenes. Non-monotone queues are skipped —
    // unarrived entries may be scattered, so no single barrier covers them.
    sc.valid = true;
    sc.epoch = scan_epoch_;
    sc.pushes = q.pushes();
    sc.rv = rv;
    sc.barrier = barrier;
  }
  return fallback;
}

bool MemoryController::issue_fcfs(Tick now) {
  const Pick r = find_pick(read_q_, now);
  const Pick w = find_pick(write_q_, now);
  if (r.idx == kNoPick && w.idx == kNoPick) return false;
  bool take_read;
  if (r.idx == kNoPick) {
    take_read = false;
  } else if (w.idx == kNoPick) {
    take_read = true;
  } else if (cfg_.sched.row_hit_first && r.row_hit != w.row_hit) {
    take_read = r.row_hit;  // FR-FCFS: an open-row hit goes first
  } else {
    take_read = r.arrival <= w.arrival;  // strict age order otherwise
  }
  if (take_read) {
    issue(read_q_.take(r.idx), now);
  } else {
    issue(write_q_.take(w.idx), now);
  }
  return true;
}

void MemoryController::issue(Transaction tx, Tick now) {
  IssuePlan plan = arch_.plan(tx.dec, tx.type, tx.internal, now);
  Bank& bank = bank_mut(plan.resource);

  Tick pre = plan.pre_ns;
  if (bank.refreshing(now)) {
    // Write pausing: preempting the in-progress refresh costs the pause
    // penalty up front (the refresh completion is pushed back in
    // begin_demand).
    pre += cfg_.timing.pause_resume_ns;
    bump(ctr_refresh_pauses_, "ctrl.refresh_pauses");
  }
  const Tick activate =
      (bank.open_row().has_value() && *bank.open_row() == plan.row)
          ? 0
          : cfg_.timing.row_read_ns;
  Tick service = pre + activate + plan.post_ns;
  if (tx.type == AccessType::kRead) {
    service += cfg_.timing.col_read_ns + cfg_.timing.burst_ns();
  } else {
    service += cfg_.timing.burst_ns() + plan.program_ns;
  }

  const Tick finish = bank.begin_demand(now, service, plan.row,
                                        refresh_.write_pausing(),
                                        cfg_.timing.pause_resume_ns);
  if (cfg_.row_policy == RowPolicy::kClosed) bank.close_row();
  bus_free_ = now + cfg_.timing.burst_ns();
  bus_busy_time_ += cfg_.timing.burst_ns();
  if (finish > last_completion_) last_completion_ = finish;

  const unsigned lr = local_resource(plan.resource);
  ready_.clear(lr);
  wake_push(bank.busy_until(), lr);

  const Tick latency = finish - tx.arrival;
  if (tx.record) {
    if (tx.internal || tx.background) {
      stats_.internal_write_latency.add(latency);
    } else if (tx.type == AccessType::kRead) {
      stats_.demand_read_latency.add(latency);
      stats_.read_latency_hist.add(latency);
    } else {
      stats_.demand_write_latency.add(latency);
      stats_.write_latency_hist.add(latency);
    }
    if (tx.stream != 0 && !tx.internal && !tx.background) {
      (tx.type == AccessType::kRead
           ? stats_.stream_slice(tx.stream).read_latency
           : stats_.stream_slice(tx.stream).write_latency)
          .add(latency);
    }
  }

  for (const SpawnedWrite& s : plan.spawned) {
    Transaction victim;
    victim.id = next_internal_id_++;
    victim.dec = s.dec;
    victim.addr = 0;  // internal writes are routed by decoded coordinates
    victim.type = AccessType::kWrite;
    victim.arrival = now;
    victim.internal = true;
    victim.record = tx.record;
    internal_q_.push(victim,
                     local_resource(arch_.route(victim.dec, victim.type, true)));
    note_queue_depth();
    if (tx.record) bump(ctr_internal_writes_, "ctrl.internal_writes");
  }

  push_event(finish);
  // A tick at bus-free time can only matter if something is left to issue;
  // with every queue empty the instant is a no-op, and any later arrival
  // that finds the bus held re-schedules it (see enqueue).
  if (reference_ || !drained()) push_event(bus_free_);
}

void MemoryController::enqueue_tier_writeback(const DecodedAddr& victim,
                                              Tick now, bool record) {
  Transaction wb;
  wb.id = next_internal_id_++;
  wb.dec = victim;
  wb.addr = 0;  // background writes are routed by decoded coordinates
  wb.type = AccessType::kWrite;
  wb.arrival = now;
  wb.background = true;
  wb.record = record;
  enqueue(wb);
}

bool MemoryController::refresh_unit_ready(unsigned resource, Tick now) const {
  if (!bank(resource).idle(now)) return false;
  if (!cfg_.refresh.require_empty_queues) return true;
  auto targets = [&](const Transaction& tx) {
    return arch_.route(tx.dec, tx.type, tx.internal) == resource;
  };
  for (auto p = read_q_.first(); p != TransactionQueue::kNoPos;
       p = read_q_.next(p)) {
    if (targets(read_q_.at(p))) return false;
  }
  for (auto p = write_q_.first(); p != TransactionQueue::kNoPos;
       p = write_q_.next(p)) {
    if (targets(write_q_.at(p))) return false;
  }
  return true;
}

void MemoryController::run_refresh(Tick now) {
  refresh_touched_.clear();
  const Tick f = refresh_.run(now, arch_, refresh_bank_of_, refresh_ready_fn_);
  if (f != 0) {
    push_event(f);
    if (f > last_completion_) last_completion_ = f;
    if (!pausing_) {
      // Without write pausing a refreshing bank blocks demand: reflect the
      // refresh window in the readiness bitmap.
      for (const unsigned r : refresh_touched_) {
        const unsigned lr = local_resource(r);
        ready_.clear(lr);
        wake_push(banks_[lr].refresh_until(), lr);
      }
    }
  }
  if (refresh_.next_check() != kNeverTick) {
    push_event(refresh_.next_check());
  }
}

void MemoryController::process_bank_wakes(Tick now) {
  while (!wake_heap_.empty() && wake_heap_.front().at <= now) {
    std::pop_heap(wake_heap_.begin(), wake_heap_.end(), WakeLater{});
    const BankWake w = wake_heap_.back();
    wake_heap_.pop_back();
    const Bank& b = banks_[w.resource];
    Tick at = b.busy_until();
    if (!pausing_ && b.refresh_until() > at) at = b.refresh_until();
    if (at <= now) {
      ready_.set(w.resource);
      ++scan_epoch_;
    } else {
      wake_push(at, w.resource);  // re-blocked since the wake was scheduled
    }
  }
}

void MemoryController::tick(Tick now) {
  assert(now >= last_tick_);
  last_tick_ = now;
  process_bank_wakes(now);

  // Run due PCM-refresh checks first: refresh only targets quiet ranks, so
  // pending demand work always wins.
  if (refresh_active_ && (reference_ || refresh_.next_check() <= now)) {
    run_refresh(now);
  }

  // Issue until neither class can make progress at this instant. Internal
  // write-backs drain only when no demand transaction can go.
  for (;;) {
    bool issued = false;
    if (cfg_.sched.policy == SchedulingPolicy::kFcfs) {
      issued = issue_fcfs(now);
    } else {
      const bool writes_first =
          drain_.update(write_q_.size(), read_q_.size());
      if (writes_first) {
        issued = issue_from(write_q_, now) || issue_from(read_q_, now);
      } else {
        issued = issue_from(read_q_, now) || issue_from(write_q_, now);
      }
    }
    if (!issued) issued = issue_from(internal_q_, now);
    if (!issued) break;
  }

  next_event_ = events_.next_after(now);
}

Tick MemoryController::next_event_after(Tick now) {
  if (next_event_ != kNeverTick && next_event_ > now) return next_event_;
  next_event_ = events_.next_after(now);
  return next_event_;
}

void MemoryController::publish_metrics(MetricsRegistry& reg) const {
  reg.set_counter(channel_metric(cfg_.channel, "bus_busy_ns"),
                  bus_busy_time_);
  reg.set_counter(channel_metric(cfg_.channel, "max_queue_depth"),
                  max_queue_depth_);
  reg.set_counter(channel_metric(cfg_.channel, "refresh.commands"),
                  refresh_.commands());
  reg.set_counter(channel_metric(cfg_.channel, "refresh.rows"),
                  refresh_.rows_refreshed());
  reg.add_counter("refresh.commands", refresh_.commands());
  reg.add_counter("refresh.rows", refresh_.rows_refreshed());
  reg.add_counter("bus.busy_ns", bus_busy_time_);
  if (tier_ != nullptr) {
    const TierFront::Counters& t = tier_->counters();
    const struct {
      const char* name;
      std::uint64_t value;
    } rows[] = {
        {"tier.read_hits", t.read_hits},
        {"tier.read_misses", t.read_misses},
        {"tier.write_hits", t.write_hits},
        {"tier.write_misses", t.write_misses},
        {"tier.fills", t.fills},
        {"tier.evictions", t.evictions},
        {"tier.writebacks", t.writebacks},
        {"tier.dead_frames", t.dead_frames},
    };
    for (const auto& row : rows) {
      reg.set_counter(channel_metric(cfg_.channel, row.name), row.value);
      reg.add_counter(row.name, row.value);
    }
  }
}

}  // namespace wompcm

// Start-Gap wear leveling (Qureshi et al., MICRO 2009).
//
// The paper leaves endurance open; Start-Gap is the standard low-cost
// remedy and slots naturally under the WOM architectures, so we provide it
// as an optional per-bank remapping layer. One spare (gap) row per bank
// rotates through the array: every `interval` writes the row above the gap
// is copied into it and the gap moves up; after a full sweep the start
// pointer advances, so every logical row slowly migrates over all physical
// rows and write-hot rows stop camping on fixed cells.
//
// Mapping (N logical rows, N+1 physical):
//   physical = (logical + start) % N;  if (physical >= gap) physical += 1
// A gap move costs one row copy (row read + row write) in the bank.
#pragma once

#include <cstdint>
#include <string>

namespace wompcm {

class StartGapRemapper {
 public:
  // `rows` logical rows; a gap move happens every `interval` writes.
  StartGapRemapper(unsigned rows, unsigned interval);

  // Physical row currently backing `logical_row` (< rows). The result is in
  // [0, rows]: the array owns one spare row.
  unsigned remap(unsigned logical_row) const;

  // Records one write to the bank. Returns true when this write triggers a
  // gap move (the caller charges the row-copy latency).
  bool on_write();

  unsigned rows() const { return rows_; }
  unsigned start() const { return start_; }
  unsigned gap() const { return gap_; }
  std::uint64_t gap_moves() const { return moves_; }

 private:
  unsigned rows_;
  unsigned interval_;
  unsigned start_ = 0;
  unsigned gap_;  // starts past the last row
  unsigned writes_since_move_ = 0;
  std::uint64_t moves_ = 0;
};

}  // namespace wompcm

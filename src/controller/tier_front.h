// Per-channel DRAM-timing tier fronting the PCM backend.
//
// One TierFront sits inside each channel's MemoryController, ahead of the
// PCM queues: demand accesses probe its TagArray at enqueue time, hits
// complete at DRAM latency without consuming a PCM queue slot (the same
// complete-at-enqueue shape as the controller's read-forwarding fast path),
// and misses/evictions flow into the existing PCM transaction path.
// Because the tier is per-channel state touched only from that channel's
// enqueue stream, sharded execution (one lane per channel) composes with it
// unchanged.
//
// Frames hold one burst line; a line's home (set, tag) is derived from its
// decoded PCM coordinates, and each frame remembers the full coordinates of
// its occupant so a dirty eviction can be re-expressed as a PCM write.
#pragma once

#include <cstdint>
#include <vector>

#include "arch/tag_array.h"
#include "common/address.h"
#include "common/types.h"
#include "pcm/tier_spec.h"

namespace wompcm {

class MetricRegistry;

class TierFront final {
 public:
  // Demand counters; published per channel as tier.* by the controller.
  struct Counters {
    std::uint64_t read_hits = 0;
    std::uint64_t read_misses = 0;
    std::uint64_t write_hits = 0;
    std::uint64_t write_misses = 0;
    std::uint64_t fills = 0;
    std::uint64_t evictions = 0;
    std::uint64_t writebacks = 0;
    std::uint64_t dead_frames = 0;
  };

  // Outcome of one demand access against the tier.
  struct Result {
    // The access completed in the tier at `done`; nothing reaches PCM.
    bool absorbed = false;
    Tick done = 0;
    // A dirty victim must be re-queued as a background PCM write.
    bool writeback = false;
    DecodedAddr victim;
  };

  TierFront(const TierSpec& spec, const MemoryGeometry& geom,
            unsigned channel);

  // Demand read at `now`: a hit is absorbed; a miss fills the line
  // (write-allocate, possibly evicting a dirty victim) and falls through to
  // the PCM read path.
  Result on_read(const DecodedAddr& dec, Tick now);

  // Demand write at `now`. Writeback policy: absorbed, dirtying the frame
  // (allocating on miss). Writethrough: the frame is updated clean on hit,
  // never allocated on miss, and the write always falls through to PCM.
  Result on_write(const DecodedAddr& dec, Tick now);

  const Counters& counters() const { return ctr_; }

 private:
  struct Placement {
    unsigned set;
    std::uint64_t tag;
  };

  Placement place(const DecodedAddr& dec) const;
  // Line coordinates folded into one id: ((rank*banks + bank)*rows + row)
  // *cols + col; the channel is implicit (one TierFront per channel).
  std::uint64_t line_id(const DecodedAddr& dec) const;
  DecodedAddr decode_line(std::uint64_t id) const;

  // Serialize an absorbed access through the tier port and return its
  // completion time.
  Tick occupy_port(Tick now, Tick service_ns);

  // Install `dec`'s line, evicting as needed. Returns false if the chosen
  // frame is (discovered to be) dead, in which case nothing was installed.
  // On success *way holds the frame's way.
  bool fill(const Placement& pl, const DecodedAddr& dec, Result* r,
            unsigned* way);

  // First-touch seeded fault draw for a frame (see TierFaultConfig).
  bool frame_dead(unsigned slot);

  TierSpec spec_;
  unsigned channel_;
  unsigned banks_;
  unsigned rows_;
  unsigned cols_;
  TagArray tags_;
  // Per-frame occupant line id, for reconstructing eviction targets.
  std::vector<std::uint64_t> resident_;
  // 0 = untested, 1 = healthy, 2 = dead.
  std::vector<std::uint8_t> frame_state_;
  Tick port_free_ = 0;
  Counters ctr_;
};

}  // namespace wompcm

#include "controller/scheduler.h"

namespace wompcm {

const char* to_string(SchedulingPolicy p) {
  return p == SchedulingPolicy::kFcfs ? "fcfs" : "read-priority";
}

const char* to_string(ScanMode m) {
  return m == ScanMode::kIndexed ? "indexed" : "reference";
}

bool SchedulerConfig::valid(std::string* why) const {
  auto fail = [&](const char* msg) {
    if (why != nullptr) *why = msg;
    return false;
  };
  if (write_q_high == 0) return fail("write_q_high must be non-zero");
  if (write_q_low >= write_q_high) {
    return fail("write_q_low must be below write_q_high");
  }
  if (scan_limit == 0) return fail("scan_limit must be non-zero");
  return true;
}

bool WriteDrainPolicy::update(std::size_t write_q_size,
                              std::size_t read_q_size) {
  if (write_q_size >= cfg_.write_q_high) draining_ = true;
  if (write_q_size <= cfg_.write_q_low) draining_ = false;
  // With no reads pending, writes are served opportunistically regardless
  // of the drain state.
  return draining_ || read_q_size == 0;
}

}  // namespace wompcm

// Transaction scheduling policy: read priority with write-queue drain
// hysteresis, and FR-FCFS-lite candidate selection (row hits first within a
// class, oldest first otherwise).
#pragma once

#include <cstddef>
#include <string>

#include "controller/queues.h"

namespace wompcm {

// How reads and writes compete for issue slots.
//
// kFcfs issues strictly by age across both queues (DRAMSim2's default and
// what the paper's latency shape implies: reads block behind in-flight
// writes, so cutting write latency cuts read latency almost as much).
// kReadPriority serves reads first and drains writes by watermark — a
// modern policy kept as an ablation (see bench/ablation_organization).
enum class SchedulingPolicy : std::uint8_t { kFcfs, kReadPriority };

const char* to_string(SchedulingPolicy p);

// How the controller locates issuable work each tick.
//
// kIndexed (the default) uses the queue's bank-occupancy masks, the
// controller's bank-readiness bitmap, and cached per-entry routing to skip
// provably non-issuable entries; the memory system also dispatches ticks
// only to channels with a due event. kReference is the straight-line
// age-order scan over every entry of every channel on every tick — slower
// but trivially correct. Both modes must produce bit-identical simulation
// results; tests/test_hotpath_equivalence.cc enforces that.
enum class ScanMode : std::uint8_t { kIndexed, kReference };

const char* to_string(ScanMode m);

struct SchedulerConfig {
  SchedulingPolicy policy = SchedulingPolicy::kFcfs;
  // kReadPriority only — write-drain hysteresis: start draining when the
  // write queue reaches `write_q_high`, stop once it falls to `write_q_low`.
  unsigned write_q_high = 48;
  unsigned write_q_low = 16;
  // Prefer transactions whose target row is already open (FR-FCFS-lite).
  bool row_hit_first = true;
  // How many queue entries (in age order) the scheduler considers per pass.
  unsigned scan_limit = 64;
  // Candidate-scan implementation; results are identical either way.
  ScanMode scan_mode = ScanMode::kIndexed;

  bool valid(std::string* why = nullptr) const;
};

inline constexpr std::size_t kNoPick = TransactionQueue::kNoPos;

// Selects the queue position to issue: the oldest issuable row-hit if
// `row_hit_first`, otherwise the oldest issuable entry within the scan
// window. `can_issue(tx)` must be side-effect free; `is_row_hit(tx)` is only
// consulted for issuable entries. This is the reference scan; the
// controller's indexed fast path must pick the same entry.
template <typename CanIssue, typename IsRowHit>
std::size_t pick_transaction(const TransactionQueue& q,
                             const SchedulerConfig& cfg, CanIssue&& can_issue,
                             IsRowHit&& is_row_hit) {
  const std::size_t n =
      q.size() < cfg.scan_limit ? q.size() : cfg.scan_limit;
  std::size_t first_issuable = kNoPick;
  std::size_t seen = 0;
  for (auto p = q.first(); p != TransactionQueue::kNoPos && seen < n;
       p = q.next(p), ++seen) {
    const Transaction& tx = q.at(p);
    if (!can_issue(tx)) continue;
    if (!cfg.row_hit_first) return p;
    if (is_row_hit(tx)) return p;
    if (first_issuable == kNoPick) first_issuable = p;
  }
  return first_issuable;
}

// Tracks the drain-mode hysteresis bit.
class WriteDrainPolicy {
 public:
  explicit WriteDrainPolicy(const SchedulerConfig& cfg) : cfg_(cfg) {}

  // Updates and returns whether the controller should prefer writes.
  bool update(std::size_t write_q_size, std::size_t read_q_size);
  bool draining() const { return draining_; }

 private:
  SchedulerConfig cfg_;
  bool draining_ = false;
};

}  // namespace wompcm

// Transaction scheduling policy: read priority with write-queue drain
// hysteresis, and FR-FCFS-lite candidate selection (row hits first within a
// class, oldest first otherwise).
#pragma once

#include <cstddef>
#include <string>

#include "controller/queues.h"

namespace wompcm {

// How reads and writes compete for issue slots.
//
// kFcfs issues strictly by age across both queues (DRAMSim2's default and
// what the paper's latency shape implies: reads block behind in-flight
// writes, so cutting write latency cuts read latency almost as much).
// kReadPriority serves reads first and drains writes by watermark — a
// modern policy kept as an ablation (see bench/ablation_organization).
enum class SchedulingPolicy : std::uint8_t { kFcfs, kReadPriority };

const char* to_string(SchedulingPolicy p);

struct SchedulerConfig {
  SchedulingPolicy policy = SchedulingPolicy::kFcfs;
  // kReadPriority only — write-drain hysteresis: start draining when the
  // write queue reaches `write_q_high`, stop once it falls to `write_q_low`.
  unsigned write_q_high = 48;
  unsigned write_q_low = 16;
  // Prefer transactions whose target row is already open (FR-FCFS-lite).
  bool row_hit_first = true;
  // How many queue entries (in age order) the scheduler considers per pass.
  unsigned scan_limit = 64;

  bool valid(std::string* why = nullptr) const;
};

inline constexpr std::size_t kNoPick = static_cast<std::size_t>(-1);

// Selects the queue index to issue: the oldest issuable row-hit if
// `row_hit_first`, otherwise the oldest issuable entry within the scan
// window. `can_issue(tx)` must be side-effect free; `is_row_hit(tx)` is only
// consulted for issuable entries.
template <typename CanIssue, typename IsRowHit>
std::size_t pick_transaction(const TransactionQueue& q,
                             const SchedulerConfig& cfg, CanIssue&& can_issue,
                             IsRowHit&& is_row_hit) {
  const std::size_t n =
      q.size() < cfg.scan_limit ? q.size() : cfg.scan_limit;
  std::size_t first_issuable = kNoPick;
  for (std::size_t i = 0; i < n; ++i) {
    const Transaction& tx = q.at(i);
    if (!can_issue(tx)) continue;
    if (!cfg.row_hit_first) return i;
    if (is_row_hit(tx)) return i;
    if (first_issuable == kNoPick) first_issuable = i;
  }
  return first_issuable;
}

// Tracks the drain-mode hysteresis bit.
class WriteDrainPolicy {
 public:
  explicit WriteDrainPolicy(const SchedulerConfig& cfg) : cfg_(cfg) {}

  // Updates and returns whether the controller should prefer writes.
  bool update(std::size_t write_q_size, std::size_t read_q_size);
  bool draining() const { return draining_; }

 private:
  SchedulerConfig cfg_;
  bool draining_ = false;
};

}  // namespace wompcm

// A memory transaction as seen by the controller.
#pragma once

#include <cstdint>

#include "common/address.h"
#include "common/types.h"

namespace wompcm {

struct Transaction {
  std::uint64_t id = 0;
  Addr addr = 0;
  DecodedAddr dec;
  AccessType type = AccessType::kRead;
  Tick arrival = 0;     // when the transaction entered the controller
  bool internal = false;  // controller-generated (e.g. WCPCM victim flush)
  // Tier writeback: planned and routed like a demand write (so it traverses
  // a composed WOM cache) but drained at background priority.
  bool background = false;
  bool record = true;     // false during warmup: simulate but keep no stats
  // Originating service session + 1 (sim/service.h); 0 means untagged (the
  // batch path and all internally-spawned transactions). A nonzero tag
  // routes recorded demand latencies into the per-stream slice of that
  // session on top of the aggregate books — it never changes scheduling.
  std::uint32_t stream = 0;
};

}  // namespace wompcm

#include "controller/tier_front.h"

#include <stdexcept>

namespace wompcm {

namespace {

// SplitMix64 finalizer, the same mixer the PCM fault layer seeds with: one
// draw per frame must be a pure function of (seed, channel, frame).
std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

double u01(std::uint64_t x) {
  return static_cast<double>(x >> 11) * 0x1.0p-53;
}

}  // namespace

TierFront::TierFront(const TierSpec& spec, const MemoryGeometry& geom,
                     unsigned channel)
    : spec_(spec),
      channel_(channel),
      banks_(geom.banks_per_rank),
      rows_(geom.rows_per_bank),
      cols_(geom.lines_per_row()),
      tags_(spec.sets, spec.ways, spec.replacement,
            // Distinct deterministic victim stream per channel.
            splitmix64(spec.fault.seed ^
                       (static_cast<std::uint64_t>(channel) + 1))) {
  std::string why;
  if (!spec.valid(&why)) {
    throw std::invalid_argument("TierFront: " + why);
  }
  resident_.assign(static_cast<std::size_t>(spec.sets) * spec.ways, 0);
  if (spec.fault.enabled) {
    frame_state_.assign(resident_.size(), 0);
  }
}

TierFront::Placement TierFront::place(const DecodedAddr& dec) const {
  const std::uint64_t id = line_id(dec);
  return Placement{static_cast<unsigned>(id % spec_.sets), id / spec_.sets};
}

std::uint64_t TierFront::line_id(const DecodedAddr& dec) const {
  return ((static_cast<std::uint64_t>(dec.rank) * banks_ + dec.bank) * rows_ +
          dec.row) *
             cols_ +
         dec.col;
}

DecodedAddr TierFront::decode_line(std::uint64_t id) const {
  DecodedAddr d;
  d.channel = channel_;
  d.col = static_cast<unsigned>(id % cols_);
  id /= cols_;
  d.row = static_cast<unsigned>(id % rows_);
  id /= rows_;
  d.bank = static_cast<unsigned>(id % banks_);
  d.rank = static_cast<unsigned>(id / banks_);
  return d;
}

Tick TierFront::occupy_port(Tick now, Tick service_ns) {
  const Tick start = now > port_free_ ? now : port_free_;
  port_free_ = start + spec_.timing.port_ns;
  return start + service_ns;
}

bool TierFront::frame_dead(unsigned slot) {
  if (!spec_.fault.enabled) return false;
  std::uint8_t& s = frame_state_[slot];
  if (s == 0) {
    const std::uint64_t h = splitmix64(
        spec_.fault.seed ^
        (static_cast<std::uint64_t>(channel_) * 0x9e3779b97f4a7c15ULL) ^
        (static_cast<std::uint64_t>(slot) * 0xbf58476d1ce4e5b9ULL));
    s = u01(h) < spec_.fault.frame_fail_rate ? 2 : 1;
    if (s == 2) ++ctr_.dead_frames;
  }
  return s == 2;
}

bool TierFront::fill(const Placement& pl, const DecodedAddr& dec, Result* r,
                     unsigned* way) {
  // Prefer an invalid healthy frame; count retired frames so a fully dead
  // set degrades to a pure bypass instead of looping below.
  unsigned w = TagArray::kNoWay;
  unsigned dead = 0;
  for (unsigned i = 0; i < spec_.ways; ++i) {
    if (frame_dead(tags_.slot(pl.set, i))) {
      ++dead;
      continue;
    }
    if (w == TagArray::kNoWay && !tags_.valid(pl.set, i)) w = i;
  }
  if (dead == spec_.ways) return false;
  if (w == TagArray::kNoWay) {
    // Every healthy frame is occupied. A policy victim landing on a
    // retired frame (retired frames stay invalid, so stale recency metadata
    // can still name them) is advanced circularly to the next healthy way.
    w = tags_.fill_way(pl.set);
    while (frame_dead(tags_.slot(pl.set, w))) w = (w + 1) % spec_.ways;
  }
  const unsigned slot = tags_.slot(pl.set, w);
  if (tags_.valid(pl.set, w)) {
    ++ctr_.evictions;
    if (tags_.dirty(pl.set, w)) {
      r->writeback = true;
      r->victim = decode_line(resident_[slot]);
      ++ctr_.writebacks;
    }
  }
  tags_.install(pl.set, w, pl.tag);
  resident_[slot] = line_id(dec);
  ++ctr_.fills;
  *way = w;
  return true;
}

TierFront::Result TierFront::on_read(const DecodedAddr& dec, Tick now) {
  Result r;
  const Placement pl = place(dec);
  const unsigned w = tags_.lookup(pl.set, pl.tag);
  if (w != TagArray::kNoWay) {
    ++ctr_.read_hits;
    tags_.touch(pl.set, w);
    r.absorbed = true;
    r.done = occupy_port(now, spec_.timing.hit_read_ns);
    return r;
  }
  ++ctr_.read_misses;
  // Write-allocate on the miss: the PCM read that services the demand also
  // streams the line into the tier (a clean install; a dead frame just
  // leaves the line uncached).
  unsigned fw = 0;
  fill(pl, dec, &r, &fw);
  return r;
}

TierFront::Result TierFront::on_write(const DecodedAddr& dec, Tick now) {
  Result r;
  const Placement pl = place(dec);
  unsigned w = tags_.lookup(pl.set, pl.tag);
  const bool hit = w != TagArray::kNoWay;
  if (hit) {
    ++ctr_.write_hits;
  } else {
    ++ctr_.write_misses;
  }
  if (spec_.write_policy == TierWritePolicy::kWritethrough) {
    // The resident copy (if any) is refreshed in place and stays clean;
    // the write itself always programs PCM.
    if (hit) tags_.touch(pl.set, w);
    return r;
  }
  if (hit) {
    tags_.touch(pl.set, w);
  } else if (!fill(pl, dec, &r, &w)) {
    // Retired frame: this line cannot be absorbed, so the write latches
    // through to PCM exactly like the WOM cache's dead-row bypass.
    return r;
  }
  tags_.set_dirty(pl.set, w, true);
  r.absorbed = true;
  r.done = occupy_port(now, spec_.timing.hit_write_ns);
  return r;
}

}  // namespace wompcm

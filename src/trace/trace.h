// Memory access trace abstraction.
//
// The paper drives its simulator with Pin-captured traces of SPEC CPU2006,
// MiBench, and SPLASH-2. Those traces cannot be redistributed, so this
// library accepts both file traces (text or binary, see file_source.h) and
// synthetic per-benchmark generators (synthetic.h) that reproduce the
// aggregate stream statistics the architectures are sensitive to.
#pragma once

#include <algorithm>
#include <cstddef>
#include <optional>
#include <vector>

#include "common/types.h"

namespace wompcm {

struct TraceRecord {
  Tick gap = 0;  // nanoseconds since the previous record's arrival
  AccessType type = AccessType::kRead;
  Addr addr = 0;
};

class TraceSource {
 public:
  virtual ~TraceSource() = default;
  // Returns the next record, or nullopt at end of trace.
  virtual std::optional<TraceRecord> next() = 0;

  // Bulk fetch: fills `out` with up to `max` records and returns the count
  // (0 at end of trace). Exactly equivalent to `max` sequential next()
  // calls — same records, same order — so callers may mix the two freely.
  // The default loops over next(); sources with cheap in-memory access
  // override it so the injection front end (sim/injector.h) pays the
  // virtual call and refill bookkeeping once per block instead of once per
  // record.
  virtual std::size_t next_block(TraceRecord* out, std::size_t max) {
    std::size_t n = 0;
    while (n < max) {
      const std::optional<TraceRecord> rec = next();
      if (!rec) break;
      out[n++] = *rec;
    }
    return n;
  }
};

// In-memory trace, mainly for tests.
class VectorTraceSource final : public TraceSource {
 public:
  explicit VectorTraceSource(std::vector<TraceRecord> records)
      : records_(std::move(records)) {}

  std::optional<TraceRecord> next() override {
    if (pos_ >= records_.size()) return std::nullopt;
    return records_[pos_++];
  }

  std::size_t next_block(TraceRecord* out, std::size_t max) override {
    const std::size_t n = std::min(max, records_.size() - pos_);
    std::copy_n(records_.begin() + static_cast<std::ptrdiff_t>(pos_), n, out);
    pos_ += n;
    return n;
  }

 private:
  std::vector<TraceRecord> records_;
  std::size_t pos_ = 0;
};

}  // namespace wompcm

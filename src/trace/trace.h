// Memory access trace abstraction.
//
// The paper drives its simulator with Pin-captured traces of SPEC CPU2006,
// MiBench, and SPLASH-2. Those traces cannot be redistributed, so this
// library accepts both file traces (text or binary, see file_source.h) and
// synthetic per-benchmark generators (synthetic.h) that reproduce the
// aggregate stream statistics the architectures are sensitive to.
#pragma once

#include <optional>
#include <vector>

#include "common/types.h"

namespace wompcm {

struct TraceRecord {
  Tick gap = 0;  // nanoseconds since the previous record's arrival
  AccessType type = AccessType::kRead;
  Addr addr = 0;
};

class TraceSource {
 public:
  virtual ~TraceSource() = default;
  // Returns the next record, or nullopt at end of trace.
  virtual std::optional<TraceRecord> next() = 0;
};

// In-memory trace, mainly for tests.
class VectorTraceSource final : public TraceSource {
 public:
  explicit VectorTraceSource(std::vector<TraceRecord> records)
      : records_(std::move(records)) {}

  std::optional<TraceRecord> next() override {
    if (pos_ >= records_.size()) return std::nullopt;
    return records_[pos_++];
  }

 private:
  std::vector<TraceRecord> records_;
  std::size_t pos_ = 0;
};

}  // namespace wompcm

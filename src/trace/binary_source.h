// Zero-copy ingestion of binary trace files.
//
// MmapTraceSource maps a binary-format trace (8-byte "WOMPCMT1" magic +
// packed little-endian { u64 gap, u8 type, u64 addr } records, the same
// format FileTraceSource reads and TraceWriter writes) straight into the
// address space and decodes records in place: no read syscalls, no buffer
// copies, no refill bookkeeping on the fetch path. On multi-gigabyte
// recorded traces this removes the dominant trace_gen cost and lets the
// page cache serve repeated runs of the same trace.
//
// On non-POSIX hosts (no <sys/mman.h>) the constructor falls back to
// reading the whole file into memory once; the decode path is identical.
//
// open_trace() is the format-dispatching entry point: binary files get
// the mmap reader, text files the buffered parser. TraceSpec::file() goes
// through it, so recorded-trace runs pick the fast path automatically.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "trace/trace.h"

namespace wompcm {

// True when `path` starts with the binary trace magic. Throws
// std::runtime_error if the file cannot be opened.
bool is_binary_trace(const std::string& path);

class MmapTraceSource final : public TraceSource {
 public:
  // Maps (or, on the fallback path, loads) the file. Throws
  // std::runtime_error when the file cannot be opened, is not a binary
  // trace, or ends mid-record.
  explicit MmapTraceSource(const std::string& path);
  ~MmapTraceSource() override;

  MmapTraceSource(const MmapTraceSource&) = delete;
  MmapTraceSource& operator=(const MmapTraceSource&) = delete;

  std::optional<TraceRecord> next() override;
  std::size_t next_block(TraceRecord* out, std::size_t max) override;

  // Total records in the file (known up front, unlike the stream reader).
  std::uint64_t records() const { return records_; }
  // True when the file is memory-mapped, false on the read-whole-file
  // fallback.
  bool mapped() const { return mapped_; }

  // Restarts the trace from the first record (multi-pass drivers).
  void rewind() { pos_ = 0; }

 private:
  const std::uint8_t* base_ = nullptr;  // first record (past the magic)
  std::uint64_t records_ = 0;
  std::uint64_t pos_ = 0;  // next record index
  bool mapped_ = false;
  void* map_addr_ = nullptr;  // mmap base (page-aligned), when mapped_
  std::size_t map_len_ = 0;
  std::vector<std::uint8_t> fallback_;  // file contents, when !mapped_
};

// Opens a trace file with the right reader for its format: MmapTraceSource
// for binary traces, FileTraceSource for text. Throws std::runtime_error
// on an unreadable file.
std::unique_ptr<TraceSource> open_trace(const std::string& path);

}  // namespace wompcm

// Multi-programmed workload mixing.
//
// Merges several trace sources into one stream ordered by arrival time —
// the memory controller's view of a multicore running one benchmark per
// core. Each component keeps its own timing; the mix interleaves them
// exactly (a merge by absolute arrival), so rank/bank interference between
// the programs emerges naturally in the simulator.
#pragma once

#include <memory>
#include <queue>
#include <vector>

#include "trace/trace.h"

namespace wompcm {

class MixTraceSource final : public TraceSource {
 public:
  // Takes ownership of the component sources. At least one is required.
  explicit MixTraceSource(std::vector<std::unique_ptr<TraceSource>> sources);

  std::optional<TraceRecord> next() override;

  // How many records each component contributed so far.
  const std::vector<std::uint64_t>& contributed() const {
    return contributed_;
  }

 private:
  struct Head {
    Tick time;         // absolute arrival of the pending record
    std::size_t src;   // component index
    Addr addr;
    AccessType type;

    bool operator>(const Head& o) const {
      return time != o.time ? time > o.time : src > o.src;
    }
  };

  void refill(std::size_t src);

  std::vector<std::unique_ptr<TraceSource>> sources_;
  std::vector<Tick> clocks_;  // per-component absolute time
  std::vector<std::uint64_t> contributed_;
  std::priority_queue<Head, std::vector<Head>, std::greater<Head>> heads_;
  Tick last_emitted_ = 0;
  bool primed_ = false;
};

}  // namespace wompcm

// Synthetic workload generation.
//
// Substitutes for the paper's Pin-captured SPEC CPU2006 / MiBench / SPLASH-2
// traces (which cannot be redistributed). Each benchmark is modelled by a
// WorkloadProfile capturing the aggregate statistics the WOM architectures
// are sensitive to:
//   - footprint_pages / zipf skews  -> row rewrite locality (WOM fast-path
//     frequency, RAT capture, WOM-cache conflicts)
//   - write_fraction                -> read/write mix
//   - burst shape + idle gaps       -> memory intensity and the idle-rank
//     windows PCM-refresh exploits
//
// Generation model: accesses come in bursts. A burst starts after an
// exponentially distributed idle gap, runs for a geometrically distributed
// number of accesses separated by intra_gap_ns, and tends to stay on the
// current page (stay_prob) advancing sequentially through its lines;
// otherwise a new page is drawn from a Zipf distribution (a separate skew
// for reads and writes). Pages are striped across ranks and banks, rows
// within a bank, so locality in page space maps to row-level rewrite
// locality without hot-spotting a single bank.
#pragma once

#include <string>

#include "common/address.h"
#include "common/rng.h"
#include "trace/trace.h"

namespace wompcm {

struct WorkloadProfile {
  std::string name;
  std::string suite;  // "spec-int", "spec-fp", "mibench", "splash2"

  double write_fraction = 0.3;
  std::uint64_t footprint_pages = 16384;  // distinct rows touched
  double write_zipf = 0.9;                // Zipf skew of write pages
  double read_zipf = 0.7;                 // Zipf skew of read pages
  double line_zipf = 0.8;  // Zipf skew of the line chosen within a page
  double stay_prob = 0.5;      // stay on the current page next access
  double burst_len_mean = 12;  // mean accesses per burst
  Tick intra_gap_ns = 40;      // spacing inside a burst
  Tick idle_gap_mean_ns = 800;  // mean idle gap between bursts

  // Rewrite locality: fraction of writes that target a recently written
  // line (a later write-back of the same cache line). This is the knob the
  // WOM fast path responds to.
  double rewrite_frac = 0.5;
  // Fraction of reads that target a recently written line (what the
  // write-allocated WOM-cache can serve).
  double read_write_affinity = 0.3;
  // Size of the recently-written-lines ring the two fractions draw from;
  // sets the typical time gap between a write and its rewrite (cache
  // residency time before a line is written back again).
  unsigned history_depth = 16384;
  // Fraction of pages placed physically *sequentially* (bank-first
  // interleaving, the paper's row:rank:bank:col layout): within such a
  // cluster every banks_per_rank consecutive pages share a (rank, row)
  // coordinate — the WOM-cache conflict sets whose degree grows with
  // banks/rank (Fig. 6). The remaining pages are hash-placed (an OS
  // allocator's shuffled frames), which is conflict-free in practice.
  double cluster_frac = 0.20;
  // Pages per sequential cluster.
  unsigned cluster_pages = 64;
  // Concurrent access streams (the core/LLC's memory-level parallelism):
  // each access continues one of this many independent page walks, so
  // several hot pages — and hence several banks — are in flight at once.
  unsigned mlp_streams = 4;

  bool valid(std::string* why = nullptr) const;
};

class SyntheticTraceSource final : public TraceSource {
 public:
  SyntheticTraceSource(const WorkloadProfile& profile,
                       const MemoryGeometry& geom, std::uint64_t seed,
                       std::uint64_t num_accesses);

  std::optional<TraceRecord> next() override;

  const WorkloadProfile& profile() const { return profile_; }

 private:
  struct PageLine {
    std::uint64_t page;
    unsigned line;
  };

  Addr page_to_addr(std::uint64_t page, unsigned line);
  PageLine pick_fresh(bool is_write);
  void remember_write(const PageLine& pl);

  WorkloadProfile profile_;
  AddressMapper mapper_;
  Rng rng_;
  std::uint64_t placement_salt_;  // seed-derived: distinct streams (cores)
                                  // occupy distinct physical pages
  ZipfSampler write_pages_;
  ZipfSampler read_pages_;
  ZipfSampler lines_;
  std::uint64_t remaining_;
  std::uint64_t burst_left_ = 0;
  bool first_ = true;
  std::vector<PageLine> streams_;       // one page walk per MLP stream
  std::vector<bool> stream_started_;
  std::vector<PageLine> history_;
  std::size_t history_pos_ = 0;
};

}  // namespace wompcm

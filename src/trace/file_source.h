// File-based traces, so real Pin/valgrind-captured traces can be dropped in.
//
// Text format (one record per line, '#' comments allowed):
//     <gap-ns> <R|W> <address-hex>
// e.g. "120 W 0x7fff9a40".
//
// Binary format: 8-byte magic "WOMPCMT1" followed by packed records of
// { u64 gap, u8 type (0=read, 1=write), u64 addr } in little-endian order.
// The reader auto-detects the format from the magic.
#pragma once

#include <cstdio>
#include <memory>
#include <string>

#include "trace/trace.h"

namespace wompcm {

inline constexpr char kTraceMagic[8] = {'W', 'O', 'M', 'P', 'C', 'M', 'T', '1'};

class FileTraceSource final : public TraceSource {
 public:
  // Throws std::runtime_error if the file cannot be opened or the header is
  // malformed.
  explicit FileTraceSource(const std::string& path);
  ~FileTraceSource() override;

  FileTraceSource(const FileTraceSource&) = delete;
  FileTraceSource& operator=(const FileTraceSource&) = delete;

  std::optional<TraceRecord> next() override;

  bool binary() const { return binary_; }

 private:
  std::optional<TraceRecord> next_text();
  std::optional<TraceRecord> next_binary();

  std::FILE* f_ = nullptr;
  bool binary_ = false;
  std::size_t line_ = 0;
};

// Trace writer (both formats), used by tests and by the trace-conversion
// example.
class TraceWriter {
 public:
  enum class Format { kText, kBinary };

  TraceWriter(const std::string& path, Format format);
  ~TraceWriter();

  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  void write(const TraceRecord& rec);
  void close();

 private:
  std::FILE* f_ = nullptr;
  Format format_;
};

}  // namespace wompcm

// File-based traces, so real Pin/valgrind-captured traces can be dropped in.
//
// Text format (one record per line, '#' comments allowed):
//     <gap-ns> <R|W> <address-hex>
// e.g. "120 W 0x7fff9a40".
//
// Binary format: 8-byte magic "WOMPCMT1" followed by packed records of
// { u64 gap, u8 type (0=read, 1=write), u64 addr } in little-endian order.
// The reader auto-detects the format from the magic.
#pragma once

#include <cstddef>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "trace/trace.h"

namespace wompcm {

inline constexpr char kTraceMagic[8] = {'W', 'O', 'M', 'P', 'C', 'M', 'T', '1'};

class FileTraceSource final : public TraceSource {
 public:
  // Throws std::runtime_error if the file cannot be opened or the header is
  // malformed.
  explicit FileTraceSource(const std::string& path);
  ~FileTraceSource() override;

  FileTraceSource(const FileTraceSource&) = delete;
  FileTraceSource& operator=(const FileTraceSource&) = delete;

  std::optional<TraceRecord> next() override;

  bool binary() const { return binary_; }

 private:
  std::optional<TraceRecord> next_text();
  std::optional<TraceRecord> next_binary();
  // Pulls the next chunk from the file into buf_, compacting the unread
  // tail first. Returns false at end of file.
  bool refill();

  std::FILE* f_ = nullptr;
  bool binary_ = false;
  std::size_t line_ = 0;

  // Records are parsed out of a chunked read buffer instead of per-record
  // stream extraction: one fread per kBufSize bytes, then memchr/pointer
  // scans in memory (trace parsing is on the hot path — it shows up as
  // trace_gen_ns in SimResult::phases). buf_ grows only in the pathological
  // case of a single line/record longer than the buffer.
  static constexpr std::size_t kBufSize = 256 * 1024;
  std::vector<char> buf_;
  std::size_t pos_ = 0;  // next unread byte in buf_
  std::size_t end_ = 0;  // one past the last valid byte in buf_
  bool eof_ = false;
};

// Trace writer (both formats), used by tests and by the trace-conversion
// example.
class TraceWriter {
 public:
  enum class Format { kText, kBinary };

  TraceWriter(const std::string& path, Format format);
  ~TraceWriter();

  TraceWriter(const TraceWriter&) = delete;
  TraceWriter& operator=(const TraceWriter&) = delete;

  void write(const TraceRecord& rec);
  void close();

 private:
  std::FILE* f_ = nullptr;
  Format format_;
};

}  // namespace wompcm

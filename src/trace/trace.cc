#include "trace/trace.h"

// TraceSource is header-only today; this TU anchors the vtable.

namespace wompcm {}  // namespace wompcm

#include "trace/mix.h"

#include <stdexcept>

namespace wompcm {

MixTraceSource::MixTraceSource(
    std::vector<std::unique_ptr<TraceSource>> sources)
    : sources_(std::move(sources)),
      clocks_(sources_.size(), 0),
      contributed_(sources_.size(), 0) {
  if (sources_.empty()) {
    throw std::invalid_argument("MixTraceSource: no component sources");
  }
  for (const auto& s : sources_) {
    if (s == nullptr) {
      throw std::invalid_argument("MixTraceSource: null component source");
    }
  }
}

void MixTraceSource::refill(std::size_t src) {
  const auto rec = sources_[src]->next();
  if (!rec) return;
  clocks_[src] += rec->gap;
  heads_.push(Head{clocks_[src], src, rec->addr, rec->type});
}

std::optional<TraceRecord> MixTraceSource::next() {
  if (!primed_) {
    primed_ = true;
    for (std::size_t i = 0; i < sources_.size(); ++i) refill(i);
  }
  if (heads_.empty()) return std::nullopt;
  const Head h = heads_.top();
  heads_.pop();
  refill(h.src);

  TraceRecord rec;
  rec.gap = h.time - last_emitted_;
  rec.addr = h.addr;
  rec.type = h.type;
  last_emitted_ = h.time;
  ++contributed_[h.src];
  return rec;
}

}  // namespace wompcm

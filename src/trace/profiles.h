// Per-benchmark workload profiles for the paper's 20-benchmark evaluation
// matrix (Section 5): SPEC CPU2006 integer and floating point, MiBench,
// and SPLASH-2.
//
// The parameters are calibrated so each suite exhibits its characteristic
// behaviour: embedded MiBench runs are small-footprint and bursty with long
// idle gaps (ample PCM-refresh opportunity); SPLASH-2 high-performance runs
// are memory-intense with little idleness; SPEC sits in between with a wide
// locality spread (464.h264ref is the most write-local benchmark, matching
// its best-in-paper improvements).
#pragma once

#include <optional>
#include <vector>

#include "trace/synthetic.h"

namespace wompcm {

// All 20 profiles in the paper's presentation order.
const std::vector<WorkloadProfile>& benchmark_profiles();

// Profiles of one suite: "spec-int", "spec-fp", "mibench", "splash2".
std::vector<WorkloadProfile> suite_profiles(const std::string& suite);

// Lookup by benchmark name (e.g. "464.h264ref").
std::optional<WorkloadProfile> find_profile(const std::string& name);

}  // namespace wompcm

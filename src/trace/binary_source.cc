#include "trace/binary_source.h"

#include <cstdio>
#include <cstring>
#include <stdexcept>

#include "trace/file_source.h"

#if defined(__unix__) || defined(__APPLE__)
#define WOMPCM_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace wompcm {

namespace {

constexpr std::size_t kRecordBytes = 17;  // u64 gap, u8 type, u64 addr

// Byte-wise little-endian load: alignment-safe (records are 17 bytes, so
// every field of every record past the first is misaligned) and free of
// strict-aliasing traps; compilers turn it into a single load + bswap-less
// move on little-endian targets.
inline std::uint64_t load_le64(const std::uint8_t* b) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | b[i];
  return v;
}

void unmap(void* addr, std::size_t len) {
#if WOMPCM_HAVE_MMAP
  if (addr != nullptr) ::munmap(addr, len);
#else
  (void)addr;
  (void)len;
#endif
}

}  // namespace

bool is_binary_trace(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    throw std::runtime_error("cannot open trace file: " + path);
  }
  char magic[sizeof(kTraceMagic)];
  const std::size_t got = std::fread(magic, 1, sizeof(magic), f);
  std::fclose(f);
  return got == sizeof(magic) &&
         std::memcmp(magic, kTraceMagic, sizeof(magic)) == 0;
}

MmapTraceSource::MmapTraceSource(const std::string& path) {
  std::size_t file_size = 0;
#if WOMPCM_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    throw std::runtime_error("cannot open trace file: " + path);
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    throw std::runtime_error("cannot stat trace file: " + path);
  }
  file_size = static_cast<std::size_t>(st.st_size);
  if (file_size > 0) {
    void* addr = ::mmap(nullptr, file_size, PROT_READ, MAP_PRIVATE, fd, 0);
    if (addr != MAP_FAILED) {
      // The trace is consumed front to back exactly once per run: tell the
      // kernel so readahead stays ahead of the fetch loop.
      ::posix_madvise(addr, file_size, POSIX_MADV_SEQUENTIAL);
      map_addr_ = addr;
      map_len_ = file_size;
      mapped_ = true;
    }
  }
  ::close(fd);
#endif
  if (!mapped_) {
    // Fallback (no mmap support, or an mmap-hostile file): one bulk read.
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) {
      throw std::runtime_error("cannot open trace file: " + path);
    }
    std::fseek(f, 0, SEEK_END);
    const long sz = std::ftell(f);
    std::fseek(f, 0, SEEK_SET);
    file_size = sz > 0 ? static_cast<std::size_t>(sz) : 0;
    fallback_.resize(file_size);
    if (file_size > 0 &&
        std::fread(fallback_.data(), 1, file_size, f) != file_size) {
      std::fclose(f);
      throw std::runtime_error("cannot read trace file: " + path);
    }
    std::fclose(f);
  }

  const std::uint8_t* data =
      mapped_ ? static_cast<const std::uint8_t*>(map_addr_) : fallback_.data();
  if (file_size < sizeof(kTraceMagic) ||
      std::memcmp(data, kTraceMagic, sizeof(kTraceMagic)) != 0) {
    if (mapped_) unmap(map_addr_, map_len_);
    throw std::runtime_error("not a binary trace (bad magic): " + path);
  }
  const std::size_t payload = file_size - sizeof(kTraceMagic);
  if (payload % kRecordBytes != 0) {
    if (mapped_) unmap(map_addr_, map_len_);
    throw std::runtime_error("truncated binary trace record in: " + path);
  }
  base_ = data + sizeof(kTraceMagic);
  records_ = payload / kRecordBytes;
}

MmapTraceSource::~MmapTraceSource() {
  if (mapped_) unmap(map_addr_, map_len_);
}

std::optional<TraceRecord> MmapTraceSource::next() {
  if (pos_ >= records_) return std::nullopt;
  const std::uint8_t* b = base_ + pos_ * kRecordBytes;
  ++pos_;
  TraceRecord rec;
  rec.gap = load_le64(b);
  rec.type = b[8] != 0 ? AccessType::kWrite : AccessType::kRead;
  rec.addr = load_le64(b + 9);
  return rec;
}

std::size_t MmapTraceSource::next_block(TraceRecord* out, std::size_t max) {
  const std::size_t n =
      static_cast<std::size_t>(std::min<std::uint64_t>(max, records_ - pos_));
  const std::uint8_t* b = base_ + pos_ * kRecordBytes;
  // Pull the block after this one toward the cache while we decode: the
  // madvise readahead keeps the pages resident, the prefetch keeps the
  // lines warm (records are 17 bytes, so touch every line of the block).
  for (std::size_t off = 0; off < n * kRecordBytes; off += 64) {
    __builtin_prefetch(b + n * kRecordBytes + off);
  }
  for (std::size_t i = 0; i < n; ++i, b += kRecordBytes) {
    out[i].gap = load_le64(b);
    out[i].type = b[8] != 0 ? AccessType::kWrite : AccessType::kRead;
    out[i].addr = load_le64(b + 9);
  }
  pos_ += n;
  return n;
}

std::unique_ptr<TraceSource> open_trace(const std::string& path) {
  if (is_binary_trace(path)) {
    return std::make_unique<MmapTraceSource>(path);
  }
  return std::make_unique<FileTraceSource>(path);
}

}  // namespace wompcm

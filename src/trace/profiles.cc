#include "trace/profiles.h"

namespace wompcm {

namespace {

WorkloadProfile make(const char* name, const char* suite, double wf,
                     std::uint64_t pages, double wz, double rz, double lz,
                     double stay, double burst, Tick intra, Tick idle,
                     double rwf, double rwa) {
  WorkloadProfile p;
  p.name = name;
  p.suite = suite;
  p.write_fraction = wf;
  p.footprint_pages = pages;
  p.write_zipf = wz;
  p.read_zipf = rz;
  p.line_zipf = lz;
  p.stay_prob = stay;
  p.burst_len_mean = burst;
  p.intra_gap_ns = intra;
  p.idle_gap_mean_ns = idle;
  p.rewrite_frac = rwf;
  p.read_write_affinity = rwa;
  return p;
}

std::vector<WorkloadProfile> build_profiles() {
  std::vector<WorkloadProfile> v;
  // Columns: write_frac, pages, write_zipf, read_zipf, line_zipf, stay,
  //          burst_len, intra_gap_ns, idle_gap_mean_ns, rewrite_frac,
  //          read_write_affinity.
  // ---- SPEC CPU2006 integer ----
  // perlbench: pointer-chasing interpreter, moderate writes, good locality.
  v.push_back(make("400.perlbench", "spec-int", 0.32, 12288, 1.30, 0.80, 1.30, 0.53, 25, 12, 1200, 0.60, 0.60));
  // bzip2: block compression, write bursts over a modest working set.
  v.push_back(make("401.bzip2", "spec-int", 0.38, 8192, 1.35, 0.85, 1.35, 0.64, 35, 15, 960, 0.70, 0.65));
  // hmmer: dynamic programming tables, read mostly, tight locality.
  v.push_back(make("456.hmmer", "spec-int", 0.22, 6144, 1.25, 0.95, 1.40, 0.68, 30, 10, 800, 0.55, 0.60));
  // libquantum: streaming over a large vector, low per-line reuse, intense.
  v.push_back(make("462.libq", "spec-int", 0.30, 32768, 0.80, 0.40, 0.90, 0.68, 60, 8, 480, 0.25, 0.40));
  // h264ref: frame buffers rewritten constantly — the most write-local
  // benchmark (best WOM-code improvement in the paper).
  v.push_back(make("464.h264ref", "spec-int", 0.46, 4096, 1.40, 0.90, 1.45, 0.68, 40, 21, 720, 0.85, 0.70));
  // ---- SPEC CPU2006 floating point ----
  // bwaves: large-grid CFD, streaming with moderate writes.
  v.push_back(make("410.bwaves", "spec-fp", 0.34, 24576, 0.90, 0.45, 0.95, 0.68, 50, 10, 560, 0.35, 0.45));
  // cactusADM: stencil solver, high write share, decent reuse.
  v.push_back(make("436.cactusADM", "spec-fp", 0.40, 16384, 1.20, 0.70, 1.25, 0.64, 40, 13, 640, 0.60, 0.55));
  // tonto: quantum chemistry, read dominated, small hot set.
  v.push_back(make("465.tonto", "spec-fp", 0.24, 8192, 1.25, 0.90, 1.35, 0.57, 25, 12, 1120, 0.50, 0.60));
  // lbm: lattice-Boltzmann, the classic write-streaming workload.
  v.push_back(make("470.lbm", "spec-fp", 0.44, 40960, 0.85, 0.40, 0.90, 0.68, 55, 8, 400, 0.30, 0.40));
  // sphinx3: speech decoding, read heavy, bursty.
  v.push_back(make("482.sphinx3", "spec-fp", 0.20, 12288, 1.15, 0.85, 1.25, 0.57, 22, 12, 1440, 0.45, 0.55));
  // ---- MiBench (embedded: small footprints, long idle gaps) ----
  v.push_back(make("qsort", "mibench", 0.42, 2048, 1.40, 0.90, 1.45, 0.64, 20, 14, 4800, 0.75, 0.65));
  v.push_back(make("mad", "mibench", 0.30, 1536, 1.30, 0.85, 1.35, 0.68, 22, 14, 6400, 0.65, 0.65));
  v.push_back(make("FFT.mi", "mibench", 0.36, 3072, 1.25, 0.80, 1.35, 0.68, 25, 12, 4000, 0.70, 0.60));
  v.push_back(make("typeset", "mibench", 0.28, 4096, 1.20, 0.80, 1.25, 0.57, 18, 15, 5600, 0.55, 0.55));
  v.push_back(make("stringsearch", "mibench", 0.15, 1024, 1.25, 0.95, 1.35, 0.64, 15, 14, 8000, 0.60, 0.65));
  // ---- SPLASH-2 (HPC: intense, little idleness) ----
  v.push_back(make("ocean", "splash2", 0.35, 20480, 1.05, 0.60, 1.10, 0.68, 65, 10, 208, 0.45, 0.50));
  v.push_back(make("water-ns", "splash2", 0.30, 10240, 1.25, 0.80, 1.30, 0.64, 55, 18, 256, 0.60, 0.55));
  v.push_back(make("water-sp", "splash2", 0.29, 12288, 1.23, 0.78, 1.27, 0.64, 55, 14, 272, 0.57, 0.55));
  v.push_back(make("raytrace", "splash2", 0.18, 16384, 1.10, 0.95, 1.15, 0.53, 50, 9, 304, 0.40, 0.60));
  v.push_back(make("LU-ncb", "splash2", 0.33, 14336, 1.15, 0.70, 1.20, 0.68, 60, 15, 240, 0.50, 0.50));
  return v;
}

}  // namespace

const std::vector<WorkloadProfile>& benchmark_profiles() {
  static const std::vector<WorkloadProfile> kProfiles = build_profiles();
  return kProfiles;
}

std::vector<WorkloadProfile> suite_profiles(const std::string& suite) {
  std::vector<WorkloadProfile> out;
  for (const auto& p : benchmark_profiles()) {
    if (p.suite == suite) out.push_back(p);
  }
  return out;
}

std::optional<WorkloadProfile> find_profile(const std::string& name) {
  for (const auto& p : benchmark_profiles()) {
    if (p.name == name) return p;
  }
  return std::nullopt;
}

}  // namespace wompcm

#include "trace/file_source.h"

#include <cctype>
#include <cinttypes>
#include <cstring>
#include <stdexcept>

namespace wompcm {

namespace {

// Manual field parsers over [p, end), replacing the per-line sscanf. They
// accept the same inputs the old "%" SCNu64 " %c %" SCNx64 format did for
// well-formed traces: leading whitespace before every field and an
// optional 0x/0X prefix on the hex address.
bool skip_space(const char*& p, const char* end) {
  while (p != end && std::isspace(static_cast<unsigned char>(*p))) ++p;
  return p != end;
}

bool parse_dec_u64(const char*& p, const char* end, std::uint64_t* out) {
  if (!skip_space(p, end)) return false;
  if (!std::isdigit(static_cast<unsigned char>(*p))) return false;
  std::uint64_t v = 0;
  while (p != end && std::isdigit(static_cast<unsigned char>(*p))) {
    v = v * 10 + static_cast<std::uint64_t>(*p - '0');
    ++p;
  }
  *out = v;
  return true;
}

int hex_digit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

bool parse_hex_u64(const char*& p, const char* end, std::uint64_t* out) {
  if (!skip_space(p, end)) return false;
  if (end - p >= 3 && p[0] == '0' && (p[1] == 'x' || p[1] == 'X') &&
      hex_digit(p[2]) >= 0) {
    p += 2;
  }
  int d = hex_digit(*p);
  if (d < 0) return false;
  std::uint64_t v = 0;
  do {
    v = (v << 4) | static_cast<std::uint64_t>(d);
    ++p;
  } while (p != end && (d = hex_digit(*p)) >= 0);
  *out = v;
  return true;
}

}  // namespace

FileTraceSource::FileTraceSource(const std::string& path) {
  f_ = std::fopen(path.c_str(), "rb");
  if (f_ == nullptr) {
    throw std::runtime_error("cannot open trace file: " + path);
  }
  buf_.resize(kBufSize);
  refill();
  if (end_ >= sizeof(kTraceMagic) &&
      std::memcmp(buf_.data(), kTraceMagic, sizeof(kTraceMagic)) == 0) {
    binary_ = true;
    pos_ = sizeof(kTraceMagic);
  }
}

FileTraceSource::~FileTraceSource() {
  if (f_ != nullptr) std::fclose(f_);
}

bool FileTraceSource::refill() {
  if (eof_) return false;
  if (pos_ > 0) {
    std::memmove(buf_.data(), buf_.data() + pos_, end_ - pos_);
    end_ -= pos_;
    pos_ = 0;
  }
  if (end_ == buf_.size()) buf_.resize(buf_.size() * 2);
  const std::size_t got =
      std::fread(buf_.data() + end_, 1, buf_.size() - end_, f_);
  eof_ = got == 0;
  end_ += got;
  return got > 0;
}

std::optional<TraceRecord> FileTraceSource::next() {
  return binary_ ? next_binary() : next_text();
}

std::optional<TraceRecord> FileTraceSource::next_text() {
  for (;;) {
    const char* nl = static_cast<const char*>(
        std::memchr(buf_.data() + pos_, '\n', end_ - pos_));
    if (nl == nullptr && !eof_) {
      refill();
      continue;
    }
    if (pos_ == end_) return std::nullopt;
    const char* p = buf_.data() + pos_;
    const char* line_end = nl != nullptr ? nl : buf_.data() + end_;
    pos_ = nl != nullptr ? static_cast<std::size_t>(nl - buf_.data()) + 1
                         : end_;
    ++line_;

    if (!skip_space(p, line_end) || *p == '#') continue;
    std::uint64_t gap = 0;
    std::uint64_t addr = 0;
    char type = 0;
    bool ok = parse_dec_u64(p, line_end, &gap);
    if (ok && skip_space(p, line_end)) {
      type = *p++;
    } else {
      ok = false;
    }
    ok = ok && parse_hex_u64(p, line_end, &addr);
    if (!ok || (type != 'R' && type != 'W' && type != 'r' && type != 'w')) {
      throw std::runtime_error("malformed trace line " + std::to_string(line_));
    }
    TraceRecord rec;
    rec.gap = gap;
    rec.type = (type == 'W' || type == 'w') ? AccessType::kWrite
                                            : AccessType::kRead;
    rec.addr = addr;
    return rec;
  }
}

std::optional<TraceRecord> FileTraceSource::next_binary() {
  constexpr std::size_t kRecordBytes = 17;  // u64 gap, u8 type, u64 addr
  while (end_ - pos_ < kRecordBytes && refill()) {
  }
  const std::size_t avail = end_ - pos_;
  if (avail == 0) return std::nullopt;
  if (avail < kRecordBytes) {
    throw std::runtime_error("truncated binary trace record");
  }
  const auto* b = reinterpret_cast<const std::uint8_t*>(buf_.data() + pos_);
  pos_ += kRecordBytes;
  auto u64 = [&](std::size_t off) {
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i) {
      v = (v << 8) | b[off + static_cast<std::size_t>(i)];
    }
    return v;
  };
  TraceRecord rec;
  rec.gap = u64(0);
  rec.type = b[8] != 0 ? AccessType::kWrite : AccessType::kRead;
  rec.addr = u64(9);
  return rec;
}

TraceWriter::TraceWriter(const std::string& path, Format format)
    : format_(format) {
  f_ = std::fopen(path.c_str(), format == Format::kBinary ? "wb" : "w");
  if (f_ == nullptr) {
    throw std::runtime_error("cannot create trace file: " + path);
  }
  if (format_ == Format::kBinary) {
    if (std::fwrite(kTraceMagic, 1, 8, f_) != 8) {
      throw std::runtime_error("cannot write trace header");
    }
  } else {
    std::fputs("# gap-ns R|W addr-hex\n", f_);
  }
}

TraceWriter::~TraceWriter() { close(); }

void TraceWriter::close() {
  if (f_ != nullptr) {
    std::fclose(f_);
    f_ = nullptr;
  }
}

void TraceWriter::write(const TraceRecord& rec) {
  if (f_ == nullptr) throw std::logic_error("TraceWriter: already closed");
  if (format_ == Format::kBinary) {
    std::uint8_t buf[17];
    auto put = [&](std::size_t off, std::uint64_t v) {
      for (std::size_t i = 0; i < 8; ++i) buf[off + i] = (v >> (8 * i)) & 0xff;
    };
    put(0, rec.gap);
    buf[8] = rec.type == AccessType::kWrite ? 1 : 0;
    put(9, rec.addr);
    if (std::fwrite(buf, 1, sizeof(buf), f_) != sizeof(buf)) {
      throw std::runtime_error("trace write failed");
    }
  } else {
    std::fprintf(f_, "%" PRIu64 " %c 0x%" PRIx64 "\n", rec.gap,
                 rec.type == AccessType::kWrite ? 'W' : 'R', rec.addr);
  }
}

}  // namespace wompcm

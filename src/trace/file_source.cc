#include "trace/file_source.h"

#include <cinttypes>
#include <cstring>
#include <stdexcept>

namespace wompcm {

FileTraceSource::FileTraceSource(const std::string& path) {
  f_ = std::fopen(path.c_str(), "rb");
  if (f_ == nullptr) {
    throw std::runtime_error("cannot open trace file: " + path);
  }
  char magic[8] = {};
  const std::size_t got = std::fread(magic, 1, sizeof(magic), f_);
  if (got == sizeof(magic) && std::memcmp(magic, kTraceMagic, 8) == 0) {
    binary_ = true;
  } else {
    binary_ = false;
    std::rewind(f_);
  }
}

FileTraceSource::~FileTraceSource() {
  if (f_ != nullptr) std::fclose(f_);
}

std::optional<TraceRecord> FileTraceSource::next() {
  return binary_ ? next_binary() : next_text();
}

std::optional<TraceRecord> FileTraceSource::next_text() {
  char buf[256];
  while (std::fgets(buf, sizeof(buf), f_) != nullptr) {
    ++line_;
    const char* p = buf;
    while (*p == ' ' || *p == '\t') ++p;
    if (*p == '\0' || *p == '\n' || *p == '#') continue;
    std::uint64_t gap = 0;
    char type = 0;
    std::uint64_t addr = 0;
    if (std::sscanf(p, "%" SCNu64 " %c %" SCNx64, &gap, &type, &addr) != 3 ||
        (type != 'R' && type != 'W' && type != 'r' && type != 'w')) {
      throw std::runtime_error("malformed trace line " + std::to_string(line_));
    }
    TraceRecord rec;
    rec.gap = gap;
    rec.type = (type == 'W' || type == 'w') ? AccessType::kWrite
                                            : AccessType::kRead;
    rec.addr = addr;
    return rec;
  }
  return std::nullopt;
}

std::optional<TraceRecord> FileTraceSource::next_binary() {
  std::uint8_t buf[17];
  const std::size_t got = std::fread(buf, 1, sizeof(buf), f_);
  if (got == 0) return std::nullopt;
  if (got != sizeof(buf)) {
    throw std::runtime_error("truncated binary trace record");
  }
  auto u64 = [&](std::size_t off) {
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i) v = (v << 8) | buf[off + static_cast<std::size_t>(i)];
    return v;
  };
  TraceRecord rec;
  rec.gap = u64(0);
  rec.type = buf[8] != 0 ? AccessType::kWrite : AccessType::kRead;
  rec.addr = u64(9);
  return rec;
}

TraceWriter::TraceWriter(const std::string& path, Format format)
    : format_(format) {
  f_ = std::fopen(path.c_str(), format == Format::kBinary ? "wb" : "w");
  if (f_ == nullptr) {
    throw std::runtime_error("cannot create trace file: " + path);
  }
  if (format_ == Format::kBinary) {
    if (std::fwrite(kTraceMagic, 1, 8, f_) != 8) {
      throw std::runtime_error("cannot write trace header");
    }
  } else {
    std::fputs("# gap-ns R|W addr-hex\n", f_);
  }
}

TraceWriter::~TraceWriter() { close(); }

void TraceWriter::close() {
  if (f_ != nullptr) {
    std::fclose(f_);
    f_ = nullptr;
  }
}

void TraceWriter::write(const TraceRecord& rec) {
  if (f_ == nullptr) throw std::logic_error("TraceWriter: already closed");
  if (format_ == Format::kBinary) {
    std::uint8_t buf[17];
    auto put = [&](std::size_t off, std::uint64_t v) {
      for (std::size_t i = 0; i < 8; ++i) buf[off + i] = (v >> (8 * i)) & 0xff;
    };
    put(0, rec.gap);
    buf[8] = rec.type == AccessType::kWrite ? 1 : 0;
    put(9, rec.addr);
    if (std::fwrite(buf, 1, sizeof(buf), f_) != sizeof(buf)) {
      throw std::runtime_error("trace write failed");
    }
  } else {
    std::fprintf(f_, "%" PRIu64 " %c 0x%" PRIx64 "\n", rec.gap,
                 rec.type == AccessType::kWrite ? 'W' : 'R', rec.addr);
  }
}

}  // namespace wompcm

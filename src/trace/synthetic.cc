#include "trace/synthetic.h"

#include <stdexcept>

namespace wompcm {

bool WorkloadProfile::valid(std::string* why) const {
  auto fail = [&](const char* msg) {
    if (why != nullptr) *why = msg;
    return false;
  };
  if (name.empty()) return fail("profile needs a name");
  if (write_fraction < 0.0 || write_fraction > 1.0) {
    return fail("write_fraction must be in [0, 1]");
  }
  if (footprint_pages == 0) return fail("footprint must be non-zero");
  if (write_zipf < 0.0 || read_zipf < 0.0 || line_zipf < 0.0) {
    return fail("zipf skews must be >= 0");
  }
  if (stay_prob < 0.0 || stay_prob >= 1.0) {
    return fail("stay_prob must be in [0, 1)");
  }
  if (burst_len_mean < 1.0) return fail("burst_len_mean must be >= 1");
  if (rewrite_frac < 0.0 || rewrite_frac > 1.0 ||
      read_write_affinity < 0.0 || read_write_affinity > 1.0) {
    return fail("locality fractions must be in [0, 1]");
  }
  if (history_depth == 0) return fail("history_depth must be non-zero");
  if (cluster_frac < 0.0 || cluster_frac > 1.0) {
    return fail("cluster_frac must be in [0, 1]");
  }
  if (cluster_pages == 0) return fail("cluster_pages must be non-zero");
  if (mlp_streams == 0) return fail("mlp_streams must be non-zero");
  return true;
}

SyntheticTraceSource::SyntheticTraceSource(const WorkloadProfile& profile,
                                           const MemoryGeometry& geom,
                                           std::uint64_t seed,
                                           std::uint64_t num_accesses)
    : profile_(profile),
      mapper_(geom),
      rng_(seed),
      placement_salt_(seed * 0x9e3779b97f4a7c15ULL + 0x1234567),
      write_pages_(profile.footprint_pages, profile.write_zipf),
      read_pages_(profile.footprint_pages, profile.read_zipf),
      lines_(geom.lines_per_row(), profile.line_zipf),
      remaining_(num_accesses) {
  std::string why;
  if (!profile_.valid(&why)) {
    throw std::invalid_argument("bad workload profile: " + why);
  }
  history_.reserve(profile_.history_depth);
  streams_.assign(profile_.mlp_streams, PageLine{0, 0});
  stream_started_.assign(profile_.mlp_streams, false);
}

namespace {

std::uint64_t splitmix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

Addr SyntheticTraceSource::page_to_addr(std::uint64_t page, unsigned line) {
  const MemoryGeometry& g = mapper_.geometry();
  DecodedAddr d;
  d.col = line % g.lines_per_row();

  // The sequential-vs-hashed decision is a pure function of the cluster
  // index (NOT the per-stream salt): whether the hottest clusters are
  // sequential is part of the workload's character and must not vary
  // between seeds. Only the *locations* are salted, so separate streams
  // (cores) occupy separate physical pages.
  const std::uint64_t cluster = page / profile_.cluster_pages;
  const std::uint64_t h = splitmix(cluster);
  if (static_cast<double>(h % 1024) <
      profile_.cluster_frac * 1024.0) {
    // Sequentially allocated cluster: the paper's row:rank:bank:col layout
    // fills every bank of a rank-row before moving on, so neighbouring
    // pages share a (rank, row) across different banks. The cluster's base
    // slot is spread pseudo-randomly over the array.
    const std::uint64_t slots = static_cast<std::uint64_t>(g.channels) *
                                g.ranks * g.banks_per_rank *
                                g.rows_per_bank;
    const std::uint64_t base =
        (splitmix(h ^ placement_salt_) % (slots / profile_.cluster_pages)) *
        profile_.cluster_pages;
    const std::uint64_t p = base + page % profile_.cluster_pages;
    d.bank = static_cast<unsigned>(p % g.banks_per_rank);
    std::uint64_t rest = p / g.banks_per_rank;
    d.rank = static_cast<unsigned>(rest % g.ranks);
    rest /= g.ranks;
    d.channel = static_cast<unsigned>(rest % g.channels);
    rest /= g.channels;
    d.row = static_cast<unsigned>(rest % g.rows_per_bank);
  } else {
    // Hash-placed page: shuffled OS frames, conflict-free in practice.
    const std::uint64_t hp =
        splitmix(page ^ placement_salt_ ^ 0xabcdef123456ULL);
    d.bank = static_cast<unsigned>(hp % g.banks_per_rank);
    d.rank = static_cast<unsigned>((hp >> 16) % g.ranks);
    d.channel = static_cast<unsigned>((hp >> 24) % g.channels);
    d.row = static_cast<unsigned>((hp >> 32) % g.rows_per_bank);
  }
  return mapper_.encode(d);
}

SyntheticTraceSource::PageLine SyntheticTraceSource::pick_fresh(
    bool is_write) {
  PageLine pl;
  pl.page = is_write ? write_pages_.sample(rng_) : read_pages_.sample(rng_);
  pl.line = static_cast<unsigned>(lines_.sample(rng_));
  return pl;
}

void SyntheticTraceSource::remember_write(const PageLine& pl) {
  if (history_.size() < profile_.history_depth) {
    history_.push_back(pl);
    return;
  }
  history_[history_pos_] = pl;
  history_pos_ = (history_pos_ + 1) % history_.size();
}

std::optional<TraceRecord> SyntheticTraceSource::next() {
  if (remaining_ == 0) return std::nullopt;
  --remaining_;

  TraceRecord rec;
  const bool is_write = rng_.next_bool(profile_.write_fraction);
  rec.type = is_write ? AccessType::kWrite : AccessType::kRead;

  // Timing: bursts separated by exponentially distributed idle gaps.
  bool new_burst = false;
  if (burst_left_ == 0) {
    new_burst = true;
    rec.gap = first_ ? 0
                     : profile_.intra_gap_ns +
                           rng_.next_exponential(static_cast<double>(
                               profile_.idle_gap_mean_ns));
    burst_left_ = 1 + rng_.next_exponential(profile_.burst_len_mean - 1.0);
  } else {
    rec.gap = profile_.intra_gap_ns;
  }
  --burst_left_;
  first_ = false;

  // Location: rewrite locality first (a later write-back of a recently
  // written line, or a read of one), then burst continuity (sequential walk
  // within the current page), then a fresh Zipf draw.
  // Location. Each access continues one of mlp_streams independent page
  // walks (the core keeps several misses in flight at once). Intra-burst
  // locality comes first: a stream walks the lines of its current page (so
  // its reads genuinely collide with its writes at that bank, like an LLC
  // miss+writeback stream over a hot row). When a stream jumps, it lands on
  // a recently written line with probability reuse_frac (rewrite locality /
  // read-around-write affinity) and on a fresh Zipf draw otherwise.
  const double reuse_frac =
      is_write ? profile_.rewrite_frac : profile_.read_write_affinity;
  const std::size_t s =
      static_cast<std::size_t>(rng_.next_below(streams_.size()));
  PageLine& cur = streams_[s];
  bool fresh = false;
  if (!new_burst && stream_started_[s] &&
      rng_.next_bool(profile_.stay_prob)) {
    ++cur.line;  // sequential walk within the page
    fresh = is_write;
  } else if (!history_.empty() && rng_.next_bool(reuse_frac)) {
    const PageLine& pl = history_[rng_.next_below(history_.size())];
    cur.page = pl.page;
    // Writes re-write the exact line (a later write-back of the same cache
    // line); affinity reads fetch *around* it — another line of the same
    // row — so they contend with the row's writes at the bank instead of
    // being satisfied by write-to-read forwarding.
    cur.line =
        is_write ? pl.line : static_cast<unsigned>(lines_.sample(rng_));
  } else {
    cur = pick_fresh(is_write);
    fresh = true;
  }
  stream_started_[s] = true;
  const unsigned line = cur.line % mapper_.geometry().lines_per_row();
  // Only fresh locations enter the reuse history: re-inserting sampled
  // rewrites would turn the ring into a preferential-attachment loop that
  // concentrates the whole stream onto a handful of lines.
  if (is_write && fresh) remember_write({cur.page, line});

  rec.addr = page_to_addr(cur.page, line);
  return rec;
}

}  // namespace wompcm

// Power-of-two latency histogram for latency distribution reporting.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"

namespace wompcm {

// Buckets samples by floor(log2(sample)): bucket b holds samples in
// [2^b, 2^(b+1)). Bucket 0 additionally holds samples of 0 and 1.
class Log2Histogram {
 public:
  static constexpr std::size_t kBuckets = 40;

  void add(Tick sample);

  // Bucket-wise sum, for folding per-channel shards into one distribution.
  void merge(const Log2Histogram& o);

  std::uint64_t bucket(std::size_t b) const { return buckets_.at(b); }
  std::uint64_t total() const { return total_; }

  // Index of the highest non-empty bucket (0 if empty).
  std::size_t max_bucket() const;

  // Sample value below which `fraction` (0..1] of the samples fall,
  // resolved to bucket upper bounds.
  Tick percentile(double fraction) const;

  // Multi-line "[lo, hi) count" rendering of the non-empty range.
  std::string to_string() const;

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t total_ = 0;
};

}  // namespace wompcm

#include "stats/metrics.h"

namespace wompcm {

void MetricsRegistry::set_counter(const std::string& name, std::uint64_t v) {
  Metric& m = map_[name];
  m.kind = Kind::kCounter;
  m.count = v;
}

void MetricsRegistry::add_counter(const std::string& name, std::uint64_t v) {
  Metric& m = map_[name];
  m.kind = Kind::kCounter;
  m.count += v;
}

void MetricsRegistry::set_gauge(const std::string& name, double v) {
  Metric& m = map_[name];
  m.kind = Kind::kGauge;
  m.value = v;
}

bool MetricsRegistry::has(const std::string& name) const {
  return map_.find(name) != map_.end();
}

std::uint64_t MetricsRegistry::counter(const std::string& name) const {
  const auto it = map_.find(name);
  return it == map_.end() ? 0 : it->second.count;
}

double MetricsRegistry::gauge(const std::string& name) const {
  const auto it = map_.find(name);
  return it == map_.end() ? 0.0 : it->second.value;
}

std::string channel_metric(unsigned channel, const std::string& name) {
  return "ch" + std::to_string(channel) + "." + name;
}

std::string stream_metric(unsigned session, const std::string& name) {
  return "stream" + std::to_string(session) + "." + name;
}

}  // namespace wompcm

// Streaming statistics used across the simulator.
#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "common/types.h"
#include "stats/histogram.h"

namespace wompcm {

// Streaming min/max/mean over latency samples.
class LatencyStats {
 public:
  void add(Tick sample);

  std::uint64_t count() const { return count_; }
  Tick min() const { return count_ == 0 ? 0 : min_; }
  Tick max() const { return max_; }
  double sum() const { return sum_; }
  double mean() const {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }

  void merge(const LatencyStats& o);

 private:
  std::uint64_t count_ = 0;
  Tick min_ = std::numeric_limits<Tick>::max();
  Tick max_ = 0;
  double sum_ = 0.0;
};

// A named bag of integer counters (architectural event counts).
class CounterSet {
 public:
  void inc(const std::string& name, std::uint64_t by = 1) { map_[name] += by; }
  std::uint64_t get(const std::string& name) const {
    const auto it = map_.find(name);
    return it == map_.end() ? 0 : it->second;
  }
  const std::map<std::string, std::uint64_t>& all() const { return map_; }
  void merge(const CounterSet& o);

  // Stable pointer to a counter for hot paths, so repeated increments skip
  // the name lookup (and any string allocation). std::map nodes never move,
  // so the pointer stays valid for the CounterSet's lifetime. Note this
  // inserts the counter (at zero) immediately — call on first use, not
  // up front, to keep never-hit counters out of reports.
  std::uint64_t* slot(const std::string& name) { return &map_[name]; }

 private:
  std::map<std::string, std::uint64_t> map_;
};

// Everything a simulation run reports.
struct SimStats {
  LatencyStats demand_read_latency;   // arrival -> data burst complete
  LatencyStats demand_write_latency;  // arrival -> cells programmed
  LatencyStats internal_write_latency;  // WCPCM victim write-backs
  Log2Histogram read_latency_hist;
  Log2Histogram write_latency_hist;
  CounterSet counters;

  // Per-stream latency slice for service sessions (sim/service.h). Indexed
  // by Transaction::stream - 1; stream 0 (the batch path) keeps no slice.
  // A slice is recorded *in addition to* the aggregate latencies above, so
  // tagging never changes the aggregate books.
  struct StreamSlice {
    LatencyStats read_latency;
    LatencyStats write_latency;
    std::uint64_t reads_forwarded = 0;  // completed from the write queue
    std::uint64_t tier_absorbed = 0;    // completed in the DRAM front tier
    void merge(const StreamSlice& o);
  };
  std::vector<StreamSlice> streams;

  // The slice for a nonzero stream tag, grown on demand. Growth allocates;
  // steady-state recording into an existing slice does not.
  StreamSlice& stream_slice(std::uint32_t stream) {
    if (streams.size() < stream) streams.resize(stream);
    return streams[stream - 1];
  }

  // Folds another run-slice's stats into this one: per-channel SimStats
  // sinks from a sharded run merge back (in channel order) into the one
  // record the serial loop would have produced. Latency sums are doubles
  // over integer tick samples, exact up to 2^53, so the fold order cannot
  // change any reported value; counts, extrema, histogram buckets and
  // counters are integers.
  void merge_from(const SimStats& o);

  double read_hit_rate(const std::string& hits,
                       const std::string& misses) const;
};

}  // namespace wompcm

// Plain-text and CSV table rendering for the bench harnesses.
//
// Every figure/table bench builds a TextTable and prints it, so the output
// format is uniform across experiments and trivially machine-parseable.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace wompcm {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  // Convenience: formats doubles with the given precision.
  static std::string fmt(double v, int precision = 3);

  std::size_t rows() const { return rows_.size(); }
  const std::vector<std::string>& row(std::size_t i) const { return rows_[i]; }
  const std::vector<std::string>& header() const { return header_; }

  // Aligned, pipe-separated plain text rendering.
  std::string to_text() const;
  // RFC-4180-ish CSV rendering (values containing commas are quoted).
  std::string to_csv() const;

  void print(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace wompcm

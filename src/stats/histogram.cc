#include "stats/histogram.h"

#include <bit>
#include <sstream>

namespace wompcm {

void Log2Histogram::add(Tick sample) {
  std::size_t b = 0;
  if (sample >= 2) {
    b = static_cast<std::size_t>(63 - std::countl_zero(sample));
  }
  if (b >= kBuckets) b = kBuckets - 1;
  ++buckets_[b];
  ++total_;
}

void Log2Histogram::merge(const Log2Histogram& o) {
  for (std::size_t b = 0; b < kBuckets; ++b) buckets_[b] += o.buckets_[b];
  total_ += o.total_;
}

std::size_t Log2Histogram::max_bucket() const {
  for (std::size_t b = kBuckets; b-- > 0;) {
    if (buckets_[b] != 0) return b;
  }
  return 0;
}

Tick Log2Histogram::percentile(double fraction) const {
  if (total_ == 0) return 0;
  if (fraction < 0.0) fraction = 0.0;
  if (fraction > 1.0) fraction = 1.0;
  const double target = fraction * static_cast<double>(total_);
  double seen = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    seen += static_cast<double>(buckets_[b]);
    if (seen >= target) return Tick{1} << (b + 1);
  }
  return Tick{1} << kBuckets;
}

std::string Log2Histogram::to_string() const {
  std::ostringstream os;
  const std::size_t hi = max_bucket();
  for (std::size_t b = 0; b <= hi; ++b) {
    if (buckets_[b] == 0) continue;
    os << "[" << (b == 0 ? 0 : (Tick{1} << b)) << ", " << (Tick{1} << (b + 1))
       << ") " << buckets_[b] << "\n";
  }
  return os.str();
}

}  // namespace wompcm

#include "stats/table.h"

#include <algorithm>
#include <cassert>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace wompcm {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> row) {
  assert(row.size() == header_.size());
  rows_.push_back(std::move(row));
}

std::string TextTable::fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string TextTable::to_text() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& r : rows_) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      width[c] = std::max(width[c], r[c].size());
    }
  }
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      os << (c == 0 ? "" : " | ") << std::left << std::setw(static_cast<int>(width[c]))
         << r[c];
    }
    os << "\n";
  };
  emit(header_);
  std::size_t total = header_.size() > 0 ? 3 * (header_.size() - 1) : 0;
  for (auto w : width) total += w;
  os << std::string(total, '-') << "\n";
  for (const auto& r : rows_) emit(r);
  return os.str();
}

std::string TextTable::to_csv() const {
  auto escape = [](const std::string& s) {
    if (s.find(',') == std::string::npos &&
        s.find('"') == std::string::npos) {
      return s;
    }
    std::string out = "\"";
    for (char ch : s) {
      if (ch == '"') out += '"';
      out += ch;
    }
    out += '"';
    return out;
  };
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& r) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      os << (c == 0 ? "" : ",") << escape(r[c]);
    }
    os << "\n";
  };
  emit(header_);
  for (const auto& r : rows_) emit(r);
  return os.str();
}

void TextTable::print(std::ostream& os) const { os << to_text(); }

}  // namespace wompcm

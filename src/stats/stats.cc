#include "stats/stats.h"

namespace wompcm {

void LatencyStats::add(Tick sample) {
  ++count_;
  sum_ += static_cast<double>(sample);
  if (sample < min_) min_ = sample;
  if (sample > max_) max_ = sample;
}

void LatencyStats::merge(const LatencyStats& o) {
  if (o.count_ == 0) return;
  count_ += o.count_;
  sum_ += o.sum_;
  if (o.min_ < min_) min_ = o.min_;
  if (o.max_ > max_) max_ = o.max_;
}

void CounterSet::merge(const CounterSet& o) {
  for (const auto& [k, v] : o.all()) map_[k] += v;
}

void SimStats::StreamSlice::merge(const StreamSlice& o) {
  read_latency.merge(o.read_latency);
  write_latency.merge(o.write_latency);
  reads_forwarded += o.reads_forwarded;
  tier_absorbed += o.tier_absorbed;
}

void SimStats::merge_from(const SimStats& o) {
  demand_read_latency.merge(o.demand_read_latency);
  demand_write_latency.merge(o.demand_write_latency);
  internal_write_latency.merge(o.internal_write_latency);
  read_latency_hist.merge(o.read_latency_hist);
  write_latency_hist.merge(o.write_latency_hist);
  counters.merge(o.counters);
  for (std::uint32_t s = 0; s < o.streams.size(); ++s) {
    stream_slice(s + 1).merge(o.streams[s]);
  }
}

double SimStats::read_hit_rate(const std::string& hits,
                               const std::string& misses) const {
  const auto h = counters.get(hits);
  const auto m = counters.get(misses);
  if (h + m == 0) return 0.0;
  return static_cast<double>(h) / static_cast<double>(h + m);
}

}  // namespace wompcm

// Unified metrics registry.
//
// Every layer of the memory system (architecture, per-channel controllers,
// refresh engines, the simulation driver itself) publishes its end-of-run
// scalars into one named registry instead of being hand-copied field by
// field into SimResult. Two metric kinds:
//
//  - counter: an exact integer event count (refresh commands, injections)
//  - gauge:   a double-valued measurement (energy in pJ, wear, fractions)
//
// Names are dotted paths. Per-channel metrics use a "ch<N>." prefix
// (see channel_metric()), so per-channel breakdowns — queue depth, bus
// occupancy, deferred injections — are available to sweep tables without
// any extra plumbing.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace wompcm {

class MetricsRegistry {
 public:
  enum class Kind : std::uint8_t { kCounter, kGauge };

  struct Metric {
    Kind kind = Kind::kCounter;
    std::uint64_t count = 0;  // kCounter
    double value = 0.0;       // kGauge
  };

  // Publishing. set_* overwrites; add_counter accumulates (used when several
  // per-channel components publish into one system-wide name).
  void set_counter(const std::string& name, std::uint64_t v);
  void add_counter(const std::string& name, std::uint64_t v);
  void set_gauge(const std::string& name, double v);

  // Reading. Missing names read as zero, so collectors need no existence
  // checks; has() distinguishes "absent" from "zero" where it matters.
  bool has(const std::string& name) const;
  std::uint64_t counter(const std::string& name) const;
  double gauge(const std::string& name) const;

  // Deterministically ordered (name-sorted) view for tables and dumps.
  const std::map<std::string, Metric>& all() const { return map_; }

  std::size_t size() const { return map_.size(); }

 private:
  std::map<std::string, Metric> map_;
};

// "ch<channel>.<name>" — the canonical per-channel metric name.
std::string channel_metric(unsigned channel, const std::string& name);

// "stream<session>.<name>" — the canonical per-stream metric name for
// service sessions (sim/service.h).
std::string stream_metric(unsigned session, const std::string& name);

}  // namespace wompcm

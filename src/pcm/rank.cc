#include "pcm/rank.h"

namespace wompcm {

bool RankView::idle(Tick now) const {
  for (const Bank& b : banks_) {
    if (!b.idle(now)) return false;
  }
  return true;
}

void RankView::begin_refresh(Tick until) {
  for (Bank& b : banks_) b.begin_refresh(until);
}

void BankBitmap::resize(unsigned bits, bool value) {
  bits_ = bits;
  words_.assign((bits + 63) / 64, value ? ~std::uint64_t{0} : 0);
  if (value && bits % 64 != 0) {
    // Keep bits past the end clear so any()/intersects() see only real banks.
    words_.back() = (std::uint64_t{1} << (bits % 64)) - 1;
  }
}

bool BankBitmap::intersects(const BankBitmap& other) const {
  const std::size_t n =
      words_.size() < other.words_.size() ? words_.size() : other.words_.size();
  for (std::size_t i = 0; i < n; ++i) {
    if (words_[i] & other.words_[i]) return true;
  }
  return false;
}

bool BankBitmap::any() const {
  for (const std::uint64_t w : words_) {
    if (w) return true;
  }
  return false;
}

}  // namespace wompcm

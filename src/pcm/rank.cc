#include "pcm/rank.h"

namespace wompcm {

bool RankView::idle(Tick now) const {
  for (const Bank& b : banks_) {
    if (!b.idle(now)) return false;
  }
  return true;
}

void RankView::begin_refresh(Tick until) {
  for (Bank& b : banks_) b.begin_refresh(until);
}

}  // namespace wompcm

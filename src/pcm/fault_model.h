// Seeded cell-failure model: the endurance story made an active event.
//
// The wear tracker (pcm/endurance.h) passively accounts pulses per cell;
// this model lets lines actually fail. Each coded line draws an endurance
// budget from a lognormal centered on a configurable median (process
// variation: some lines die orders of magnitude earlier than the spec
// sheet), and once its accumulated wear crosses that budget the line
// develops stuck-at cells:
//
//   healthy  -> degraded : stuck bits break the monotone 0->1 WOM rewrite,
//                          so the controller demotes fast-path writes to
//                          full alpha re-programs and write-verifies with
//                          bounded retry;
//   degraded -> dead     : verify can never pass; the controller retires
//                          the whole row to a spare (controller/remap_table)
//                          or, for a WOM-cache row, invalidates and
//                          bypasses it.
//
// Determinism contract: every draw is a pure function of the fault seed.
// Per-line endurance uses a stateless hash of the line's identity, so it is
// independent of access order; per-event draws (verify retries, transient
// read disturb) use one sequential event counter *per channel*, which is
// reproducible because each channel controller's issue order is itself
// deterministic and scan-mode invariant. Keying the stream by channel —
// rather than one global counter — is what makes the draws independent of
// cross-channel interleaving, so a sharded run (each channel on its own
// worker) observes exactly the faults the serial event loop does. Channel
// 0's stream is the legacy global stream, so single-channel runs are
// unchanged. Two runs with the same seed — under either scan mode, at any
// jobs count, or inside a jobs=N sweep — observe identical faults.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/flat_map.h"
#include "common/types.h"
#include "pcm/endurance.h"

namespace wompcm {

// A dead line's wear has overshot its endurance budget by this factor
// (between the first stuck bits and enough of them to defeat verify).
inline constexpr double kDeadWearFactor = 1.5;

struct FaultConfig {
  bool enabled = false;
  // Seed of the fault universe: which lines are weak, how verify retries
  // bounce, when reads disturb. Independent of the trace seed.
  std::uint64_t seed = 1;
  // Lognormal median of the per-line endurance budget (pulses per cell).
  double endurance = kDefaultCellEndurance;
  // Lognormal sigma of the per-line draw (0 = every line identical).
  double sigma = 0.25;
  // Fraction of the median endurance already consumed before the run: the
  // "simulate a worn array" axis (0.9 = 90% through its life). Spare rows
  // and the Start-Gap spare are fresh stock and start at zero.
  double initial_wear = 0.0;
  // Write-verify retry bound per faulty-line write (>= 1).
  unsigned max_retries = 3;
  // Spare rows per main bank available for retiring dead rows.
  unsigned spare_rows = 64;
  // Per-read probability of a transient read-disturb error (re-read cost).
  double read_disturb = 0.0;

  bool valid(std::string* why = nullptr) const;
};

class FaultModel {
 public:
  enum class LineState : std::uint8_t { kHealthy = 0, kDegraded = 1, kDead = 2 };

  struct Observation {
    LineState state = LineState::kHealthy;
    LineState previous = LineState::kHealthy;
    bool transitioned = false;  // state advanced on this observation
  };

  // `channels` sizes the per-channel event-draw streams (see the
  // determinism contract above); callers drawing without a channel use
  // stream 0, which is the legacy global stream.
  FaultModel(const FaultConfig& cfg, unsigned lines_per_row,
             unsigned channels = 1);

  // Deterministic per-line endurance budget (pulses per cell): a pure
  // function of (seed, row, line), independent of access order.
  double line_endurance(RowKey row, unsigned line) const;

  // Classifies the line given its tracked wear and records the sticky
  // state. `pre_aged` marks lines that carry the configured initial wear
  // (original array rows); spares are fresh. States only ever advance.
  Observation observe_write(RowKey row, unsigned line, double wear,
                            bool pre_aged);

  // Verify retries consumed by a write to a degraded line, in
  // [1, max_retries]. Sequential-event draw on `channel`'s stream.
  unsigned retry_draw(unsigned channel = 0);

  // One transient read-disturb Bernoulli draw. Sequential-event draw on
  // `channel`'s stream.
  bool read_disturbed(unsigned channel = 0);

  const FaultConfig& config() const { return cfg_; }

 private:
  std::uint64_t line_key(RowKey row, unsigned line) const {
    return row * lines_ + line;
  }
  LineState classify(RowKey row, unsigned line, double wear,
                     bool pre_aged) const;
  std::uint64_t next_event_hash(unsigned channel);

  FaultConfig cfg_;
  unsigned lines_;
  FlatMap64<std::uint8_t> state_;  // line key -> last recorded LineState
  std::vector<std::uint64_t> events_;  // per-channel event-draw counters
};

}  // namespace wompcm

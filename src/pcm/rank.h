// Rank-level helpers: a rank is the refresh scheduling unit (Section 3.2),
// and BankBitmap is the word-packed bank-set representation the controller
// uses for O(words) readiness/occupancy tests across a channel's banks.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "pcm/bank.h"

namespace wompcm {

// Non-owning view over the banks of one rank (plus, for WCPCM, the rank's
// WOM-cache array, which refreshes with the rank).
class RankView {
 public:
  explicit RankView(std::span<Bank> banks) : banks_(banks) {}

  std::size_t size() const { return banks_.size(); }
  Bank& bank(std::size_t i) { return banks_[i]; }
  const Bank& bank(std::size_t i) const { return banks_[i]; }

  // A rank is idle when no bank is servicing a demand op or refreshing.
  bool idle(Tick now) const;

  // Occupies every bank of the rank with a burst-mode refresh until `until`.
  void begin_refresh(Tick until);

 private:
  std::span<Bank> banks_;
};

// Fixed-size bit set over a channel's bank-shaped resources, packed into
// 64-bit words. The controller keeps one as the demand-readiness mask
// (bit set = the bank could start a demand op right now) and each
// transaction queue keeps one as its bank-occupancy mask (bit set = at
// least one queued entry targets that bank); `intersects` between the two
// answers "could anything in this queue issue?" without touching a single
// queue entry. All mutators are O(1); intersects/any are O(words), i.e.
// 8 words for the paper geometry's 512 flat banks per channel.
class BankBitmap {
 public:
  BankBitmap() = default;

  // Sizes the map to `bits` resources, all initialised to `value`.
  // Allocates; call once at construction time, not on the hot path.
  void resize(unsigned bits, bool value);

  void set(unsigned bit) {
    words_[bit >> 6] |= std::uint64_t{1} << (bit & 63);
  }
  void clear(unsigned bit) {
    words_[bit >> 6] &= ~(std::uint64_t{1} << (bit & 63));
  }
  bool test(unsigned bit) const {
    return (words_[bit >> 6] >> (bit & 63)) & 1u;
  }

  // True when any bit is set in both maps. The maps must be sized over the
  // same resource space (same resize width).
  bool intersects(const BankBitmap& other) const;

  bool any() const;
  unsigned bits() const { return bits_; }

 private:
  std::vector<std::uint64_t> words_;
  unsigned bits_ = 0;
};

}  // namespace wompcm

// Rank-level helpers: a rank is the refresh scheduling unit (Section 3.2).
#pragma once

#include <span>

#include "pcm/bank.h"

namespace wompcm {

// Non-owning view over the banks of one rank (plus, for WCPCM, the rank's
// WOM-cache array, which refreshes with the rank).
class RankView {
 public:
  explicit RankView(std::span<Bank> banks) : banks_(banks) {}

  std::size_t size() const { return banks_.size(); }
  Bank& bank(std::size_t i) { return banks_[i]; }
  const Bank& bank(std::size_t i) const { return banks_[i]; }

  // A rank is idle when no bank is servicing a demand op or refreshing.
  bool idle(Tick now) const;

  // Occupies every bank of the rank with a burst-mode refresh until `until`.
  void begin_refresh(Tick until);

 private:
  std::span<Bank> banks_;
};

}  // namespace wompcm

// Specification of an optional fast volatile tier fronting PCM main memory.
//
// The paper's platform is single-level; a DRAM cache in front of the PCM
// array is the standard hybrid organization (Song et al., arXiv:2005.04753)
// and the "multi-backend" leg of the roadmap. A TierSpec carries everything
// a per-channel TierFront needs: cache geometry (sets x ways of one-line
// frames), DRAM-class hit timing, the write policy, the replacement scheme,
// and an optional frame-fault model mirroring the PCM fault layer's seeded
// determinism.
#pragma once

#include <cstdint>
#include <string>

#include "arch/tag_array.h"
#include "common/types.h"

namespace wompcm {

// Writeback: demand writes are absorbed by the tier and reach PCM only when
// a dirty frame is evicted. Writethrough: every demand write also programs
// PCM; the tier is updated on hit but never allocates on a write miss.
enum class TierWritePolicy : std::uint8_t { kWriteback, kWritethrough };

const char* to_string(TierWritePolicy p);
bool tier_write_policy_from_string(const std::string& s, TierWritePolicy* out);

// DRAM-class access latencies for the tier. Defaults follow DDR3-style
// timing: ~15 ns row-buffer access end to end, with the tier's port
// (command/data bus) occupied for one burst.
struct TierTiming {
  Tick hit_read_ns = 15;   // tag check + column read of a resident line
  Tick hit_write_ns = 15;  // tag check + column write into a frame
  Tick port_ns = 4;        // per-access port occupancy (DDR burst)
};

// Seeded frame-fault model: each (set, way) frame independently fails with
// probability `rate`, decided by one deterministic draw on first install —
// a pure function of (seed, channel, frame), so serial and sharded runs
// see identical faults. A failed frame is retired before ever holding data:
// its accesses bypass the tier, mirroring the WOM cache's
// invalidate-and-bypass degradation.
struct TierFaultConfig {
  bool enabled = false;
  std::uint64_t seed = 1;
  double frame_fail_rate = 0.0;
};

struct TierSpec {
  bool enabled = false;
  unsigned sets = 4096;
  unsigned ways = 8;
  ReplacementKind replacement = ReplacementKind::kLru;
  TierWritePolicy write_policy = TierWritePolicy::kWriteback;
  TierTiming timing;
  TierFaultConfig fault;

  bool valid(std::string* why = nullptr) const;
};

}  // namespace wompcm

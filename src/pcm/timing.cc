#include "pcm/timing.h"

namespace wompcm {

bool PcmTiming::valid(std::string* why) const {
  auto fail = [&](const char* msg) {
    if (why != nullptr) *why = msg;
    return false;
  };
  if (row_read_ns == 0 || row_write_ns == 0 || reset_ns == 0 || set_ns == 0) {
    return fail("latencies must be non-zero");
  }
  if (reset_ns > row_write_ns) {
    return fail("RESET latency must not exceed the full row write latency");
  }
  if (burst_length == 0 || burst_length % 2 != 0) {
    return fail("burst length must be a non-zero even beat count");
  }
  if (refresh_period_ns == 0) return fail("refresh period must be non-zero");
  return true;
}

}  // namespace wompcm

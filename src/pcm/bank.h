// Bank state for the event-stepped timing model.
//
// A bank services one demand operation at a time (busy_until) and may also
// be occupied by a background PCM-refresh (refresh_until). With write
// pausing enabled, a demand access may preempt an in-progress refresh at a
// small pause/resume penalty; the refresh completion is pushed back by the
// demand service time.
#pragma once

#include <cstdint>
#include <optional>

#include "common/types.h"

namespace wompcm {

class Bank {
 public:
  // Row currently latched in the row buffer (open-row policy).
  std::optional<unsigned> open_row() const { return open_row_; }

  bool demand_busy(Tick now) const { return now < busy_until_; }
  bool refreshing(Tick now) const { return now < refresh_until_; }
  Tick busy_until() const { return busy_until_; }
  Tick refresh_until() const { return refresh_until_; }

  // Earliest instant a demand op may start, given write pausing policy.
  Tick demand_ready_at(Tick now, bool allow_pause) const {
    Tick t = busy_until_ > now ? busy_until_ : now;
    if (t < refresh_until_ && !allow_pause) t = refresh_until_;
    return t;
  }

  bool idle(Tick now) const { return !demand_busy(now) && !refreshing(now); }

  // Starts a demand operation [start, start+service). If the bank is under
  // refresh and pausing is allowed, the refresh end is pushed back by the
  // demand service plus the resume penalty. Returns the completion time.
  Tick begin_demand(Tick start, Tick service, unsigned row,
                    bool allow_pause, Tick pause_resume_ns);

  // Occupies the bank with a PCM-refresh until `until`.
  void begin_refresh(Tick until) {
    if (until > refresh_until_) refresh_until_ = until;
  }

  // Closes the row buffer (e.g. after a refresh re-initializes the array).
  void close_row() { open_row_.reset(); }

  // Cumulative demand-busy time, for utilization accounting.
  Tick busy_time() const { return busy_time_; }
  std::uint64_t ops() const { return ops_; }
  std::uint64_t row_hits() const { return row_hits_; }
  std::uint64_t pauses() const { return pauses_; }

 private:
  std::optional<unsigned> open_row_;
  Tick busy_until_ = 0;
  Tick refresh_until_ = 0;
  Tick busy_time_ = 0;
  std::uint64_t ops_ = 0;
  std::uint64_t row_hits_ = 0;
  std::uint64_t pauses_ = 0;
};

}  // namespace wompcm

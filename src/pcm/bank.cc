#include "pcm/bank.h"

#include <cassert>

namespace wompcm {

Tick Bank::begin_demand(Tick start, Tick service, unsigned row,
                        bool allow_pause, Tick pause_resume_ns) {
  assert(start >= busy_until_);
  const Tick finish = start + service;
  if (start < refresh_until_) {
    // Write pausing: the demand op preempts the refresh; the refresh
    // resumes afterwards, extended by the preempted span plus the penalty.
    assert(allow_pause);
    (void)allow_pause;
    ++pauses_;
    refresh_until_ += service + pause_resume_ns;
  }
  if (open_row_.has_value() && *open_row_ == row) ++row_hits_;
  open_row_ = row;
  busy_until_ = finish;
  busy_time_ += service;
  ++ops_;
  return finish;
}

}  // namespace wompcm

#include "pcm/endurance.h"

#include <limits>

namespace wompcm {

double WearTracker::lifetime_seconds(Tick elapsed_ns,
                                     double cell_endurance) const {
  if (max_ <= 0.0 || elapsed_ns == 0) {
    return std::numeric_limits<double>::infinity();
  }
  const double elapsed_s = static_cast<double>(elapsed_ns) * 1e-9;
  const double wear_rate = max_ / elapsed_s;  // cycles/second, hottest line
  return cell_endurance / wear_rate;
}

}  // namespace wompcm

// First-order PCM energy accounting.
//
// The paper does not evaluate energy beyond noting that one PCM-refresh
// costs one row read plus one row write; this model makes that statement
// quantitative and feeds the Flip-N-Write ablation. Per-bit pulse energies
// default to the values commonly used in the PCM architecture literature
// (Lee et al., ISCA 2009): RESET 19.2 pJ/bit, SET 13.5 pJ/bit, and a
// sensing cost of ~2 pJ/bit for reads.
//
// The timing simulator carries no data payloads, so pulse counts are
// estimated from the write class: a RESET-only write touches on average
// half of the coded bits with RESET pulses; an alpha or conventional write
// sets half and resets half of the bits it programs.
#pragma once

#include <cstdint>

#include "common/types.h"

namespace wompcm {

struct EnergyParams {
  double set_pj_per_bit = 13.5;
  double reset_pj_per_bit = 19.2;
  double read_pj_per_bit = 2.0;
};

class EnergyCounters {
 public:
  explicit EnergyCounters(EnergyParams params = {}) : p_(params) {}

  // Demand accesses program/read `bits` array bits.
  void on_read(std::uint64_t bits);
  void on_write(WriteClass cls, std::uint64_t bits);
  // A refresh re-initializes `bits` bits: one row read plus one row write
  // whose pulses are all SETs (erasing an inverted-code row raises bits).
  void on_refresh(std::uint64_t bits);

  // Exact-pulse interface for callers that know the real counts (PageCodec).
  void add_pulses(std::uint64_t set_pulses, std::uint64_t reset_pulses);

  double total_pj() const { return read_pj_ + write_pj_ + refresh_pj_; }
  double read_pj() const { return read_pj_; }
  double write_pj() const { return write_pj_; }
  double refresh_pj() const { return refresh_pj_; }
  std::uint64_t set_pulses() const { return set_pulses_; }
  std::uint64_t reset_pulses() const { return reset_pulses_; }

 private:
  EnergyParams p_;
  double read_pj_ = 0;
  double write_pj_ = 0;
  double refresh_pj_ = 0;
  std::uint64_t set_pulses_ = 0;
  std::uint64_t reset_pulses_ = 0;
};

}  // namespace wompcm

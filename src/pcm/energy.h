// First-order PCM energy accounting.
//
// The paper does not evaluate energy beyond noting that one PCM-refresh
// costs one row read plus one row write; this model makes that statement
// quantitative and feeds the Flip-N-Write ablation. Per-bit pulse energies
// default to the values commonly used in the PCM architecture literature
// (Lee et al., ISCA 2009): RESET 19.2 pJ/bit, SET 13.5 pJ/bit, and a
// sensing cost of ~2 pJ/bit for reads.
//
// The timing simulator carries no data payloads, so pulse counts are
// estimated from the write class: a RESET-only write touches on average
// half of the coded bits with RESET pulses; an alpha or conventional write
// sets half and resets half of the bits it programs.
//
// Accumulation is bucketed per channel (select_channel() picks the bucket
// each access charges) and the getters fold the buckets in channel order.
// Floating-point addition does not commute, so a fixed per-channel
// accumulation order plus a fixed fold order is what makes a sharded run —
// where each channel accumulates on its own worker — bit-identical to the
// serial event loop. A single-channel (or unconfigured) instance has one
// bucket and reads exactly like the plain accumulator it replaces.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace wompcm {

struct EnergyParams {
  double set_pj_per_bit = 13.5;
  double reset_pj_per_bit = 19.2;
  double read_pj_per_bit = 2.0;
};

class EnergyCounters {
 public:
  explicit EnergyCounters(EnergyParams params = {})
      : p_(params), buckets_(1) {}

  // Sizes one accumulation bucket per channel. Call before any accounting;
  // resets every bucket and the cursor.
  void configure_channels(unsigned channels);
  // Selects the bucket subsequent on_read/on_write/on_refresh/add_pulses
  // calls charge. No-op cheap; called once per planned access.
  void select_channel(unsigned channel) { cur_ = channel; }

  // Demand accesses program/read `bits` array bits.
  void on_read(std::uint64_t bits);
  void on_write(WriteClass cls, std::uint64_t bits);
  // A refresh re-initializes `bits` bits: one row read plus one row write
  // whose pulses are all SETs (erasing an inverted-code row raises bits).
  void on_refresh(std::uint64_t bits);

  // Exact-pulse interface for callers that know the real counts (PageCodec).
  void add_pulses(std::uint64_t set_pulses, std::uint64_t reset_pulses);

  // Folds the per-channel buckets in channel order (see header comment).
  double total_pj() const { return read_pj() + write_pj() + refresh_pj(); }
  double read_pj() const;
  double write_pj() const;
  double refresh_pj() const;
  std::uint64_t set_pulses() const;
  std::uint64_t reset_pulses() const;

  // Adds `o`'s buckets element-wise into this instance's (bucket counts
  // must match). Used to fold per-channel architecture replicas back into
  // one set of books after a sharded run; replica c only ever charged
  // bucket c, so the merged buckets equal the serial run's exactly.
  void merge_from(const EnergyCounters& o);

 private:
  struct Bucket {
    double read_pj = 0;
    double write_pj = 0;
    double refresh_pj = 0;
    std::uint64_t set_pulses = 0;
    std::uint64_t reset_pulses = 0;
  };

  EnergyParams p_;
  std::vector<Bucket> buckets_;
  unsigned cur_ = 0;
};

}  // namespace wompcm

// PCM timing parameters.
//
// Defaults follow the paper's simulation setup (Section 5), which extends
// DRAMSim2 with PCM latencies from Bheda et al.: row read 27 ns, row write
// 150 ns, RESET 40 ns, SET 150 ns, PCM-refresh period 4000 ns. The data bus
// follows DDR3 conventions: a burst of 8 beats occupies L_burst/2 = 4 ns of
// bus time. One simulator tick is one nanosecond.
#pragma once

#include <string>

#include "common/types.h"

namespace wompcm {

struct PcmTiming {
  Tick row_read_ns = 27;    // array row -> row buffer (activate)
  Tick row_write_ns = 150;  // conventional full-row program (SET-bound)
  Tick reset_ns = 40;       // RESET-only row program (the WOM fast path)
  Tick set_ns = 150;        // SET pulse duration (alpha-write erase phase)
  Tick col_read_ns = 13;    // column access from an open row buffer (CAS)
  unsigned burst_length = 8;  // DDR3 burst beats

  Tick refresh_period_ns = 4000;  // PCM-refresh controller check period
  Tick tag_check_ns = 2;          // WOM-cache tag comparison (1-2 cycles)
  Tick pause_resume_ns = 5;       // write-pausing preempt/resume penalty

  // Data bus occupancy of one burst: L_burst / 2 bus ticks (DDR).
  Tick burst_ns() const { return burst_length / 2; }

  // Latency of programming a full row, by write class.
  Tick program_ns(WriteClass c) const {
    return c == WriteClass::kResetOnly ? reset_ns : row_write_ns;
  }

  // Burst-mode PCM-refresh of one rank (Section 3.2):
  // t_WR + N_bank * L_burst / 2.
  Tick refresh_op_ns(unsigned banks_per_rank) const {
    return row_write_ns + static_cast<Tick>(banks_per_rank) * burst_ns();
  }

  bool valid(std::string* why = nullptr) const;
};

}  // namespace wompcm

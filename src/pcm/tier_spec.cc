#include "pcm/tier_spec.h"

namespace wompcm {

const char* to_string(TierWritePolicy p) {
  return p == TierWritePolicy::kWriteback ? "writeback" : "writethrough";
}

bool tier_write_policy_from_string(const std::string& s,
                                   TierWritePolicy* out) {
  if (s == "writeback") {
    *out = TierWritePolicy::kWriteback;
  } else if (s == "writethrough") {
    *out = TierWritePolicy::kWritethrough;
  } else {
    return false;
  }
  return true;
}

bool TierSpec::valid(std::string* why) const {
  const auto fail = [&](const char* msg) {
    if (why != nullptr) *why = msg;
    return false;
  };
  if (!enabled) return true;
  if (sets == 0) return fail("tier.sets must be positive");
  if (ways == 0) return fail("tier.ways must be positive");
  if (replacement == ReplacementKind::kBankTag) {
    return fail(
        "tier.replacement: bank_tag is the WOM cache's row/bank scheme and "
        "needs the cache composition (cache.enabled=true); the tier takes "
        "lru, fifo or random");
  }
  if (timing.hit_read_ns == 0 || timing.hit_write_ns == 0) {
    return fail("tier hit latencies must be positive");
  }
  if (fault.frame_fail_rate < 0.0 || fault.frame_fail_rate > 1.0) {
    return fail("tier.fault.rate must be within [0, 1]");
  }
  return true;
}

}  // namespace wompcm

#include "pcm/fault_model.h"

#include <cmath>

namespace wompcm {

namespace {

// SplitMix64 finalizer: full-avalanche mixing (same constants as the
// FlatMap64 hash and the Rng seeding path).
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x;
}

// Uniform draw in (0, 1] from a mixed word (never 0, so log() is safe).
double to_unit(std::uint64_t h) {
  return (static_cast<double>(h >> 11) + 1.0) * 0x1.0p-53;
}

// Domain tags keep the per-line and per-event streams disjoint.
constexpr std::uint64_t kLineDomain = 0x6c696e65ULL;    // "line"
constexpr std::uint64_t kEventDomain = 0x65766e74ULL;   // "evnt"

}  // namespace

bool FaultConfig::valid(std::string* why) const {
  const auto fail = [&](const char* msg) {
    if (why != nullptr) *why = msg;
    return false;
  };
  if (!(endurance > 0.0)) return fail("fault.endurance must be > 0");
  if (!(sigma >= 0.0)) return fail("fault.sigma must be >= 0");
  if (!(initial_wear >= 0.0)) return fail("fault.initial_wear must be >= 0");
  if (max_retries < 1) return fail("fault.max_retries must be >= 1");
  if (read_disturb < 0.0 || read_disturb > 1.0) {
    return fail("fault.read_disturb must be in [0, 1]");
  }
  return true;
}

FaultModel::FaultModel(const FaultConfig& cfg, unsigned lines_per_row,
                       unsigned channels)
    : cfg_(cfg),
      lines_(lines_per_row == 0 ? 1 : lines_per_row),
      events_(channels == 0 ? 1 : channels, 0) {
  state_.reserve(1 << 12);
}

double FaultModel::line_endurance(RowKey row, unsigned line) const {
  if (cfg_.sigma <= 0.0) return cfg_.endurance;
  const std::uint64_t h =
      mix64(cfg_.seed ^ mix64(line_key(row, line) ^ kLineDomain));
  // Box-Muller: two uniforms from one stateless hash chain.
  const double u1 = to_unit(h);
  const double u2 = to_unit(mix64(h));
  const double z =
      std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  return cfg_.endurance * std::exp(cfg_.sigma * z);
}

FaultModel::LineState FaultModel::classify(RowKey row, unsigned line,
                                           double wear, bool pre_aged) const {
  const double effective =
      wear + (pre_aged ? cfg_.initial_wear * cfg_.endurance : 0.0);
  const double budget = line_endurance(row, line);
  if (effective >= budget * kDeadWearFactor) return LineState::kDead;
  if (effective >= budget) return LineState::kDegraded;
  return LineState::kHealthy;
}

FaultModel::Observation FaultModel::observe_write(RowKey row, unsigned line,
                                                  double wear, bool pre_aged) {
  Observation obs;
  std::uint8_t& recorded = state_[line_key(row, line)];
  obs.previous = static_cast<LineState>(recorded);
  const LineState computed = classify(row, line, wear, pre_aged);
  // Sticky: wear only grows, but the recorded state also survives a row
  // retirement (the dead row is never healed by being abandoned).
  obs.state = computed > obs.previous ? computed : obs.previous;
  obs.transitioned = obs.state > obs.previous;
  recorded = static_cast<std::uint8_t>(obs.state);
  return obs;
}

std::uint64_t FaultModel::next_event_hash(unsigned channel) {
  // Per-channel event streams: the channel index is folded into the domain
  // tag above the 32-bit "evnt" constant, so streams never collide and
  // channel 0's stream is bit-for-bit the legacy global one. Keying the
  // draw by (channel, per-channel count) instead of one global count makes
  // it independent of how the channels' issue streams interleave — the
  // property the sharded runner's bit-identity rests on.
  const std::uint64_t domain =
      kEventDomain + (static_cast<std::uint64_t>(channel) << 32);
  return mix64(cfg_.seed ^ mix64(++events_[channel] ^ domain));
}

unsigned FaultModel::retry_draw(unsigned channel) {
  return 1 + static_cast<unsigned>(next_event_hash(channel) %
                                   cfg_.max_retries);
}

bool FaultModel::read_disturbed(unsigned channel) {
  if (cfg_.read_disturb <= 0.0) return false;
  return to_unit(next_event_hash(channel)) <= cfg_.read_disturb;
}

}  // namespace wompcm

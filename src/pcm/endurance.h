// PCM cell-wear accounting.
//
// The paper explicitly leaves endurance open ("their impact on the
// endurance of PCM is not explicitly addressed"); this tracker quantifies
// it. Every programming pulse cycles the chalcogenide; a PCM cell survives
// on the order of 1e8 SET/RESET cycles. We track expected pulses *per cell*
// at line granularity:
//   - a RESET-only (WOM fast-path) write flips about half the coded cells:
//     0.5 pulses/cell;
//   - an alpha/conventional write erases and reprograms: ~1.0 pulses/cell;
//   - a PCM-refresh re-initializes a row: ~0.5 pulses/cell on every line.
// The hottest line bounds the array lifetime (without wear leveling).
#pragma once

#include <cstdint>
#include <unordered_map>

#include "common/types.h"

namespace wompcm {

inline constexpr double kResetOnlyWearPerCell = 0.5;
inline constexpr double kAlphaWearPerCell = 1.0;
inline constexpr double kRefreshWearPerCell = 0.5;

// Typical PCM endurance (cycles per cell) used by the lifetime estimate.
inline constexpr double kDefaultCellEndurance = 1e8;

class WearTracker {
 public:
  explicit WearTracker(unsigned lines_per_row) : lines_(lines_per_row) {}

  void on_write(RowKey row, unsigned line, WriteClass cls) {
    add(row, line,
        cls == WriteClass::kResetOnly ? kResetOnlyWearPerCell
                                      : kAlphaWearPerCell);
  }

  // A refresh cycles every line of the row.
  void on_refresh(RowKey row) {
    for (unsigned l = 0; l < lines_; ++l) add(row, l, kRefreshWearPerCell);
  }

  // Explicit pulse count for schemes with their own write model
  // (e.g. Flip-N-Write's at-most-half-the-bits guarantee).
  void on_write_pulses(RowKey row, unsigned line, double pulses_per_cell) {
    add(row, line, pulses_per_cell);
  }

  double total_wear() const { return total_; }
  double max_line_wear() const { return max_; }
  std::size_t touched_lines() const { return wear_.size(); }
  double mean_line_wear() const {
    return wear_.empty() ? 0.0 : total_ / static_cast<double>(wear_.size());
  }

  // Lifetime until the hottest line exhausts `cell_endurance` cycles, if
  // the observed wear rate over `elapsed_ns` continues. Returns +inf when
  // nothing wore.
  double lifetime_seconds(Tick elapsed_ns,
                          double cell_endurance = kDefaultCellEndurance) const;
  double lifetime_years(Tick elapsed_ns,
                        double cell_endurance = kDefaultCellEndurance) const {
    return lifetime_seconds(elapsed_ns, cell_endurance) / (365.25 * 86400.0);
  }

 private:
  void add(RowKey row, unsigned line, double pulses) {
    double& w = wear_[row * lines_ + line];
    w += pulses;
    total_ += pulses;
    if (w > max_) max_ = w;
  }

  unsigned lines_;
  std::unordered_map<std::uint64_t, double> wear_;
  double total_ = 0.0;
  double max_ = 0.0;
};

}  // namespace wompcm

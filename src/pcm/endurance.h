// PCM cell-wear accounting.
//
// The paper explicitly leaves endurance open ("their impact on the
// endurance of PCM is not explicitly addressed"); this tracker quantifies
// it. Every programming pulse cycles the chalcogenide; a PCM cell survives
// on the order of 1e8 SET/RESET cycles. We track expected pulses *per cell*
// at line granularity:
//   - a RESET-only (WOM fast-path) write flips about half the coded cells:
//     0.5 pulses/cell;
//   - an alpha/conventional write erases and reprograms: ~1.0 pulses/cell;
//   - a PCM-refresh re-initializes a row: ~0.5 pulses/cell on every line.
// The hottest line bounds the array lifetime (without wear leveling).
#pragma once

#include <cstdint>
#include <vector>

#include "common/flat_map.h"
#include "common/types.h"

namespace wompcm {

inline constexpr double kResetOnlyWearPerCell = 0.5;
inline constexpr double kAlphaWearPerCell = 1.0;
inline constexpr double kRefreshWearPerCell = 0.5;

// Typical PCM endurance (cycles per cell) used by the lifetime estimate.
inline constexpr double kDefaultCellEndurance = 1e8;

class WearTracker {
 public:
  explicit WearTracker(unsigned lines_per_row) : lines_(lines_per_row) {
    // The row index is only ever keyed (never iterated), so pre-sizing
    // cannot change any reported value; it just avoids rehash churn on the
    // per-write hot path.
    slab_of_.reserve(1 << 14);
  }

  void on_write(RowKey row, unsigned line, WriteClass cls) {
    add(row, line,
        cls == WriteClass::kResetOnly ? kResetOnlyWearPerCell
                                      : kAlphaWearPerCell);
  }

  // A refresh cycles every line of the row. The row's lines live in one
  // contiguous slab, so this is one hash probe plus a sequential walk
  // instead of lines_per_row independent lookups.
  void on_refresh(RowKey row) {
    double* s = slab(row);
    for (unsigned l = 0; l < lines_; ++l) bump(s[l], kRefreshWearPerCell);
  }

  // Explicit pulse count for schemes with their own write model
  // (e.g. Flip-N-Write's at-most-half-the-bits guarantee).
  void on_write_pulses(RowKey row, unsigned line, double pulses_per_cell) {
    add(row, line, pulses_per_cell);
  }

  double total_wear() const { return total_; }
  double max_line_wear() const { return max_; }

  // Accumulated wear of one line (0 for a line never touched). Const and
  // allocation-free: safe on the fault model's per-write classification path.
  double line_wear(RowKey row, unsigned line) const {
    const std::uint32_t* id = slab_of_.find(row);
    if (id == nullptr || *id == 0) return 0.0;
    const double w =
        wear_[static_cast<std::size_t>(*id - 1) * lines_ + line];
    return w == kUntouched ? 0.0 : w;
  }

  std::size_t touched_lines() const { return touched_; }
  double mean_line_wear() const {
    return touched_ == 0 ? 0.0 : total_ / static_cast<double>(touched_);
  }

  // Lifetime until the hottest line exhausts `cell_endurance` cycles, if
  // the observed wear rate over `elapsed_ns` continues. Returns +inf when
  // nothing wore.
  double lifetime_seconds(Tick elapsed_ns,
                          double cell_endurance = kDefaultCellEndurance) const;
  double lifetime_years(Tick elapsed_ns,
                        double cell_endurance = kDefaultCellEndurance) const {
    return lifetime_seconds(elapsed_ns, cell_endurance) / (365.25 * 86400.0);
  }

  // Folds another tracker's aggregate figures (total / touched / max) into
  // this one, for summing per-channel architecture replicas after a sharded
  // run. Per-line slabs are not transferred — the merged instance answers
  // the end-of-run aggregate queries only, which is all publish_metrics
  // reads. Exactness: every wear increment is a small dyadic rational
  // (0.25/0.5/1.0 and integer multiples), so partial double sums are exact
  // and summing per-channel totals equals the serial interleaved total
  // bit-for-bit; max and touched are order-independent outright.
  void merge_from(const WearTracker& o) {
    total_ += o.total_;
    touched_ += o.touched_;
    if (o.max_ > max_) max_ = o.max_;
  }

 private:
  // Sentinel for a line never written nor refreshed. Real wear is always
  // >= 0, and a first touch replaces the sentinel outright, so the stored
  // values (and every total/max/mean derived from them) are bit-identical
  // to a plain per-line accumulator starting at zero. touched_ counts
  // first touches, matching the per-(row,line) key count a map would hold.
  static constexpr double kUntouched = -1.0;

  // The row's wear slab (lines_ doubles), allocated on first touch. The
  // returned pointer is invalidated by the next slab allocation.
  double* slab(RowKey row) {
    std::uint32_t& id = slab_of_[row];
    if (id == 0) {  // 1-based so the map's default 0 means "no slab yet"
      wear_.resize(wear_.size() + lines_, kUntouched);
      id = static_cast<std::uint32_t>(wear_.size() / lines_);
    }
    return wear_.data() + static_cast<std::size_t>(id - 1) * lines_;
  }

  void bump(double& w, double pulses) {
    if (w == kUntouched) {
      w = pulses;
      ++touched_;
    } else {
      w += pulses;
    }
    total_ += pulses;
    if (w > max_) max_ = w;
  }

  void add(RowKey row, unsigned line, double pulses) {
    bump(slab(row)[line], pulses);
  }

  unsigned lines_;
  FlatMap64<std::uint32_t> slab_of_;  // row key -> 1-based slab id
  std::vector<double> wear_;          // slabs of lines_ per-line totals
  std::size_t touched_ = 0;
  double total_ = 0.0;
  double max_ = 0.0;
};

}  // namespace wompcm

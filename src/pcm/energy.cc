#include "pcm/energy.h"

namespace wompcm {

void EnergyCounters::on_read(std::uint64_t bits) {
  read_pj_ += p_.read_pj_per_bit * static_cast<double>(bits);
}

void EnergyCounters::on_write(WriteClass cls, std::uint64_t bits) {
  const double b = static_cast<double>(bits);
  if (cls == WriteClass::kResetOnly) {
    // Half the coded bits flip on average, all with RESET pulses.
    const double flipped = b / 2.0;
    write_pj_ += p_.reset_pj_per_bit * flipped;
    reset_pulses_ += static_cast<std::uint64_t>(flipped);
  } else {
    // Erase (SET) plus program (RESET), half the bits each on average.
    write_pj_ += (p_.set_pj_per_bit + p_.reset_pj_per_bit) * (b / 2.0);
    set_pulses_ += static_cast<std::uint64_t>(b / 2.0);
    reset_pulses_ += static_cast<std::uint64_t>(b / 2.0);
  }
}

void EnergyCounters::on_refresh(std::uint64_t bits) {
  const double b = static_cast<double>(bits);
  // One row read plus a row write that raises roughly half the bits back to
  // the erased (all-ones) inverted-code state.
  refresh_pj_ += p_.read_pj_per_bit * b + p_.set_pj_per_bit * (b / 2.0);
  set_pulses_ += static_cast<std::uint64_t>(b / 2.0);
}

void EnergyCounters::add_pulses(std::uint64_t set_pulses,
                                std::uint64_t reset_pulses) {
  set_pulses_ += set_pulses;
  reset_pulses_ += reset_pulses;
  write_pj_ += p_.set_pj_per_bit * static_cast<double>(set_pulses) +
               p_.reset_pj_per_bit * static_cast<double>(reset_pulses);
}

}  // namespace wompcm

#include "pcm/energy.h"

namespace wompcm {

void EnergyCounters::configure_channels(unsigned channels) {
  buckets_.assign(channels == 0 ? 1 : channels, Bucket{});
  cur_ = 0;
}

void EnergyCounters::on_read(std::uint64_t bits) {
  buckets_[cur_].read_pj += p_.read_pj_per_bit * static_cast<double>(bits);
}

void EnergyCounters::on_write(WriteClass cls, std::uint64_t bits) {
  Bucket& bk = buckets_[cur_];
  const double b = static_cast<double>(bits);
  if (cls == WriteClass::kResetOnly) {
    // Half the coded bits flip on average, all with RESET pulses.
    const double flipped = b / 2.0;
    bk.write_pj += p_.reset_pj_per_bit * flipped;
    bk.reset_pulses += static_cast<std::uint64_t>(flipped);
  } else {
    // Erase (SET) plus program (RESET), half the bits each on average.
    bk.write_pj += (p_.set_pj_per_bit + p_.reset_pj_per_bit) * (b / 2.0);
    bk.set_pulses += static_cast<std::uint64_t>(b / 2.0);
    bk.reset_pulses += static_cast<std::uint64_t>(b / 2.0);
  }
}

void EnergyCounters::on_refresh(std::uint64_t bits) {
  Bucket& bk = buckets_[cur_];
  const double b = static_cast<double>(bits);
  // One row read plus a row write that raises roughly half the bits back to
  // the erased (all-ones) inverted-code state.
  bk.refresh_pj += p_.read_pj_per_bit * b + p_.set_pj_per_bit * (b / 2.0);
  bk.set_pulses += static_cast<std::uint64_t>(b / 2.0);
}

void EnergyCounters::add_pulses(std::uint64_t set_pulses,
                                std::uint64_t reset_pulses) {
  Bucket& bk = buckets_[cur_];
  bk.set_pulses += set_pulses;
  bk.reset_pulses += reset_pulses;
  bk.write_pj += p_.set_pj_per_bit * static_cast<double>(set_pulses) +
                 p_.reset_pj_per_bit * static_cast<double>(reset_pulses);
}

double EnergyCounters::read_pj() const {
  double v = 0;
  for (const Bucket& b : buckets_) v += b.read_pj;
  return v;
}

double EnergyCounters::write_pj() const {
  double v = 0;
  for (const Bucket& b : buckets_) v += b.write_pj;
  return v;
}

double EnergyCounters::refresh_pj() const {
  double v = 0;
  for (const Bucket& b : buckets_) v += b.refresh_pj;
  return v;
}

std::uint64_t EnergyCounters::set_pulses() const {
  std::uint64_t v = 0;
  for (const Bucket& b : buckets_) v += b.set_pulses;
  return v;
}

std::uint64_t EnergyCounters::reset_pulses() const {
  std::uint64_t v = 0;
  for (const Bucket& b : buckets_) v += b.reset_pulses;
  return v;
}

void EnergyCounters::merge_from(const EnergyCounters& o) {
  if (o.buckets_.size() > buckets_.size()) {
    buckets_.resize(o.buckets_.size());
  }
  for (std::size_t i = 0; i < o.buckets_.size(); ++i) {
    buckets_[i].read_pj += o.buckets_[i].read_pj;
    buckets_[i].write_pj += o.buckets_[i].write_pj;
    buckets_[i].refresh_pj += o.buckets_[i].refresh_pj;
    buckets_[i].set_pulses += o.buckets_[i].set_pulses;
    buckets_[i].reset_pulses += o.buckets_[i].reset_pulses;
  }
}

}  // namespace wompcm

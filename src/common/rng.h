// Deterministic random number generation for synthetic workloads.
//
// All stochastic components of the simulator take an explicit 64-bit seed so
// that every experiment is bit-reproducible. The generator is xoshiro256**,
// seeded through SplitMix64 per the reference implementation.
#pragma once

#include <array>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

namespace wompcm {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    // SplitMix64 expansion of the seed into the xoshiro state.
    std::uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) {
    assert(bound > 0);
    // Lemire's multiply-shift rejection method.
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    std::uint64_t l = static_cast<std::uint64_t>(m);
    if (l < bound) {
      const std::uint64_t t = -bound % bound;
      while (l < t) {
        x = next_u64();
        m = static_cast<__uint128_t>(x) * bound;
        l = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  // Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  bool next_bool(double p_true) { return next_double() < p_true; }

  // Geometric inter-arrival style gap with the given mean (>= 0 result).
  std::uint64_t next_exponential(double mean) {
    if (mean <= 0.0) return 0;
    double u = next_double();
    if (u >= 1.0) u = 0.9999999999;
    const double v = -mean * std::log(1.0 - u);
    return static_cast<std::uint64_t>(v);
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_{};
};

// Zipf(alpha) sampler over {0, 1, ..., n-1} using rejection-inversion
// (W. Hormann, G. Derflinger, "Rejection-inversion to generate variates
// from monotone discrete distributions"). O(1) per sample, no O(n) tables,
// so it scales to working sets of millions of pages.
class ZipfSampler {
 public:
  ZipfSampler(std::uint64_t n, double alpha) : n_(n), alpha_(alpha) {
    assert(n >= 1);
    assert(alpha >= 0.0);
    h_x1_ = h(1.5) - 1.0;
    h_n_ = h(static_cast<double>(n_) + 0.5);
    s_ = 2.0 - h_inv(h(2.5) - std::pow(2.0, -alpha_));
    if (alpha_ > 0.0) {
      const std::uint64_t cap = n_ < kAcceptTableCap ? n_ : kAcceptTableCap;
      accept_.assign(static_cast<std::size_t>(cap) + 1, kUnfilled);
    }
  }

  std::uint64_t sample(Rng& rng) {
    if (alpha_ == 0.0) return rng.next_below(n_);
    while (true) {
      const double u = h_n_ + rng.next_double() * (h_x1_ - h_n_);
      const double x = h_inv(u);
      double k = std::floor(x + 0.5);
      if (k < 1.0) k = 1.0;
      if (k > static_cast<double>(n_)) k = static_cast<double>(n_);
      if (k - x <= s_ || u >= accept_threshold(k)) {
        return static_cast<std::uint64_t>(k) - 1;  // 0-based
      }
    }
  }

 private:
  // h(k + 0.5) - k^-alpha, the rejection test's acceptance bound. It only
  // depends on the integer k, and Zipf draws concentrate on small k, so the
  // transcendental evaluations are memoized. The cached value comes from
  // the exact expression the uncached path uses, so sampling (and every
  // synthetic trace built on it) is bit-identical with or without the
  // cache.
  double accept_threshold(double k) {
    const auto ki = static_cast<std::size_t>(k);
    if (ki < accept_.size()) {
      double& v = accept_[ki];
      if (std::isnan(v)) v = h(k + 0.5) - std::pow(k, -alpha_);
      return v;
    }
    return h(k + 0.5) - std::pow(k, -alpha_);
  }

  double h(double x) const {
    if (alpha_ == 1.0) return std::log(x);
    return (std::pow(x, 1.0 - alpha_) - 1.0) / (1.0 - alpha_);
  }
  double h_inv(double u) const {
    if (alpha_ == 1.0) return std::exp(u);
    return std::pow(1.0 + u * (1.0 - alpha_), 1.0 / (1.0 - alpha_));
  }

  // NaN marks an unfilled cell: the bound is finite for every valid k.
  static constexpr double kUnfilled =
      std::numeric_limits<double>::quiet_NaN();
  static constexpr std::uint64_t kAcceptTableCap = 1ull << 16;

  std::uint64_t n_;
  double alpha_;
  double h_x1_;
  double h_n_;
  double s_;
  std::vector<double> accept_;  // lazily-filled acceptance bounds
};

}  // namespace wompcm

#include "common/perf.h"

#include <chrono>

namespace wompcm::perf {

namespace {
thread_local std::uint64_t t_codec_ns = 0;
}  // namespace

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::uint64_t codec_ns() { return t_codec_ns; }

void add_codec_ns(std::uint64_t ns) { t_codec_ns += ns; }

}  // namespace wompcm::perf

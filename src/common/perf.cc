#include "common/perf.h"

#include <chrono>

namespace wompcm::perf {

namespace {

std::uint64_t chrono_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

#if defined(__x86_64__)
// TSC fast path. now_ns() sits on the per-access hot path (two calls per
// fetched transaction, two per codec invocation), and a steady_clock read
// costs about twice an rdtsc here. Modern x86_64 TSCs are invariant
// (constant rate across cores and power states), so one startup calibration
// against the steady clock turns rdtsc into a monotonic nanosecond source.
// The phase totals are diagnostics; the calibration's ~0.1% error does not
// matter, and a failed calibration falls back to the steady clock.
struct TscClock {
  std::uint64_t base_tsc = 0;
  std::uint64_t base_ns = 0;
  std::uint64_t scale_q32 = 0;  // ns per tick, 32.32 fixed point
  bool ok = false;

  TscClock() {
    const std::uint64_t t0 = chrono_now_ns();
    const std::uint64_t c0 = __rdtsc();
    std::uint64_t t1 = t0;
    while (t1 - t0 < 2'000'000) t1 = chrono_now_ns();  // ~2 ms window
    const std::uint64_t c1 = __rdtsc();
    if (c1 > c0) {
      scale_q32 = static_cast<std::uint64_t>(
          (static_cast<__uint128_t>(t1 - t0) << 32) / (c1 - c0));
      base_tsc = c1;
      base_ns = t1;
      ok = scale_q32 != 0;
    }
  }

  std::uint64_t now() const {
    const std::uint64_t d = __rdtsc() - base_tsc;
    return base_ns + static_cast<std::uint64_t>(
                         (static_cast<__uint128_t>(d) * scale_q32) >> 32);
  }

  std::uint64_t to_ns(std::uint64_t ticks) const {
    return static_cast<std::uint64_t>(
        (static_cast<__uint128_t>(ticks) * scale_q32) >> 32);
  }
};

const TscClock& tsc_clock() {
  static const TscClock tsc;
  return tsc;
}
#endif

}  // namespace

std::uint64_t now_ns() {
#if defined(__x86_64__)
  const TscClock& tsc = tsc_clock();
  if (tsc.ok) return tsc.now();
#endif
  return chrono_now_ns();
}

std::uint64_t ticks_to_ns(std::uint64_t ticks) {
#if defined(__x86_64__)
  const TscClock& tsc = tsc_clock();
  // With a failed calibration the scale is unknown; return the raw count
  // (phase totals are diagnostics, and this path is effectively unreachable
  // on hardware with a working TSC).
  return tsc.ok ? tsc.to_ns(ticks) : ticks;
#else
  return ticks;  // now_ticks() already counts nanoseconds
#endif
}

std::uint64_t codec_ns() { return ticks_to_ns(detail::t_codec_ticks); }

}  // namespace wompcm::perf

// Lightweight wall-clock phase accounting for the simulation hot path.
//
// The simulator attributes run time to three phases — trace generation,
// controller ticking, and the WOM codec — and surfaces the totals in
// SimResult::phases. Codec time is accumulated in a thread-local counter
// because the codec is called from deep inside the architecture layer;
// each sweep cell runs entirely on one thread (the serial caller or one
// pool worker), so the per-run delta is race-free by construction.
#pragma once

#include <cstdint>

namespace wompcm::perf {

// Monotonic nanosecond timestamp (steady clock).
std::uint64_t now_ns();

// Current thread's accumulated codec time.
std::uint64_t codec_ns();
void add_codec_ns(std::uint64_t ns);

// RAII accumulator: adds its lifetime to the calling thread's codec total.
class ScopedCodecTimer {
 public:
  ScopedCodecTimer() : start_(now_ns()) {}
  ~ScopedCodecTimer() { add_codec_ns(now_ns() - start_); }
  ScopedCodecTimer(const ScopedCodecTimer&) = delete;
  ScopedCodecTimer& operator=(const ScopedCodecTimer&) = delete;

 private:
  std::uint64_t start_;
};

}  // namespace wompcm::perf

// Lightweight wall-clock phase accounting for the simulation hot path.
//
// The simulator attributes run time to three phases — trace generation,
// controller ticking, and the WOM codec — and surfaces the totals in
// SimResult::phases. Codec time is accumulated in a thread-local counter
// because the codec is called from deep inside the architecture layer;
// each sweep cell runs entirely on one thread (the serial caller or one
// pool worker), so the per-run delta is race-free by construction.
//
// Two timestamp granularities are exposed:
//  - now_ns(): a calibrated monotonic nanosecond clock, for phase totals
//    read a handful of times per run.
//  - now_ticks() + ticks_to_ns(): a raw TSC read for per-access interval
//    accumulation. Deltas are summed in ticks and converted once at read
//    time, so the per-sample cost is a single rdtsc instead of a scaled
//    clock read on both ends of every interval.
#pragma once

#include <cstdint>

#if defined(__x86_64__)
#include <x86intrin.h>
#endif

namespace wompcm::perf {

// Monotonic nanosecond timestamp (steady clock).
std::uint64_t now_ns();

// Raw monotonic timestamp for interval accumulation: TSC ticks on x86_64,
// nanoseconds on the fallback path. Only deltas are meaningful; convert
// accumulated deltas with ticks_to_ns().
inline std::uint64_t now_ticks() {
#if defined(__x86_64__)
  return __rdtsc();
#else
  return now_ns();
#endif
}

// Converts a now_ticks() delta (or a sum of deltas) to nanoseconds.
std::uint64_t ticks_to_ns(std::uint64_t ticks);

namespace detail {
inline thread_local std::uint64_t t_codec_ticks = 0;
}

// Current thread's accumulated codec time.
std::uint64_t codec_ns();

// RAII accumulator: adds its lifetime to the calling thread's codec total.
class ScopedCodecTimer {
 public:
  ScopedCodecTimer() : start_(now_ticks()) {}
  ~ScopedCodecTimer() { detail::t_codec_ticks += now_ticks() - start_; }
  ScopedCodecTimer(const ScopedCodecTimer&) = delete;
  ScopedCodecTimer& operator=(const ScopedCodecTimer&) = delete;

 private:
  std::uint64_t start_;
};

}  // namespace wompcm::perf

#include "common/bitvec.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <stdexcept>

namespace wompcm {

BitVec::BitVec(std::size_t nbits, bool value) : nbits_(nbits) {
  words_.assign(word_count(), value ? ~std::uint64_t{0} : 0);
  mask_tail();
}

BitVec BitVec::from_string(const std::string& bits) {
  BitVec v(bits.size());
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (bits[i] != '0' && bits[i] != '1') {
      throw std::invalid_argument("BitVec::from_string: bad character");
    }
    v.set(i, bits[i] == '1');
  }
  return v;
}

bool BitVec::get(std::size_t i) const {
  assert(i < nbits_);
  return (words_[i / kWordBits] >> (i % kWordBits)) & 1;
}

void BitVec::set(std::size_t i, bool value) {
  assert(i < nbits_);
  const std::uint64_t mask = std::uint64_t{1} << (i % kWordBits);
  if (value) {
    words_[i / kWordBits] |= mask;
  } else {
    words_[i / kWordBits] &= ~mask;
  }
}

void BitVec::set_all(bool value) {
  for (auto& w : words_) w = value ? ~std::uint64_t{0} : 0;
  mask_tail();
}

std::size_t BitVec::popcount() const {
  // Four independent accumulators per iteration: breaks the loop-carried
  // add chain so the popcnt units pipeline instead of serializing on one
  // sum (codec inner loops call this per codeword).
  const std::size_t words = words_.size();
  const std::uint64_t* w = words_.data();
  std::size_t a = 0, b = 0, c = 0, d = 0;
  std::size_t i = 0;
  for (; i + 4 <= words; i += 4) {
    a += static_cast<std::size_t>(std::popcount(w[i]));
    b += static_cast<std::size_t>(std::popcount(w[i + 1]));
    c += static_cast<std::size_t>(std::popcount(w[i + 2]));
    d += static_cast<std::size_t>(std::popcount(w[i + 3]));
  }
  for (; i < words; ++i) a += static_cast<std::size_t>(std::popcount(w[i]));
  return a + b + c + d;
}

void BitVec::mask_tail() {
  const std::size_t rem = nbits_ % kWordBits;
  if (rem != 0 && !words_.empty()) {
    words_.back() &= (std::uint64_t{1} << rem) - 1;
  }
}

BitVec BitVec::operator~() const {
  BitVec r = *this;
  for (auto& w : r.words_) w = ~w;
  r.mask_tail();
  return r;
}

BitVec BitVec::operator&(const BitVec& o) const {
  assert(nbits_ == o.nbits_);
  BitVec r = *this;
  for (std::size_t i = 0; i < words_.size(); ++i) r.words_[i] &= o.words_[i];
  return r;
}

BitVec BitVec::operator|(const BitVec& o) const {
  assert(nbits_ == o.nbits_);
  BitVec r = *this;
  for (std::size_t i = 0; i < words_.size(); ++i) r.words_[i] |= o.words_[i];
  return r;
}

BitVec BitVec::operator^(const BitVec& o) const {
  assert(nbits_ == o.nbits_);
  BitVec r = *this;
  for (std::size_t i = 0; i < words_.size(); ++i) r.words_[i] ^= o.words_[i];
  return r;
}

bool BitVec::operator==(const BitVec& o) const {
  return nbits_ == o.nbits_ && words_ == o.words_;
}

void BitVec::append(const BitVec& o) {
  const std::size_t base = nbits_;
  nbits_ += o.nbits_;
  words_.resize(word_count(), 0);
  for (std::size_t i = 0; i < o.nbits_; ++i) set(base + i, o.get(i));
}

BitVec BitVec::slice(std::size_t begin, std::size_t len) const {
  BitVec r;
  slice_into(begin, len, r);
  return r;
}

void BitVec::slice_into(std::size_t begin, std::size_t len, BitVec& out) const {
  assert(begin + len <= nbits_);
  out.nbits_ = len;
  out.words_.resize((len + kWordBits - 1) / kWordBits);
  for (std::size_t i = 0; i < out.words_.size(); ++i) {
    const std::size_t off = i * kWordBits;
    out.words_[i] = extract_word(begin + off, std::min(kWordBits, len - off));
  }
}

void BitVec::assign_from(const BitVec& o) {
  nbits_ = o.nbits_;
  words_.resize(o.words_.size());
  std::copy(o.words_.begin(), o.words_.end(), words_.begin());
}

std::uint64_t BitVec::extract_word(std::size_t begin, std::size_t len) const {
  assert(len <= kWordBits && begin + len <= nbits_);
  if (len == 0) return 0;
  const std::size_t w = begin / kWordBits;
  const std::size_t off = begin % kWordBits;
  std::uint64_t v = words_[w] >> off;
  if (off != 0 && w + 1 < words_.size()) {
    v |= words_[w + 1] << (kWordBits - off);
  }
  if (len < kWordBits) v &= (std::uint64_t{1} << len) - 1;
  return v;
}

void BitVec::deposit_word(std::size_t begin, std::size_t len,
                          std::uint64_t bits) {
  assert(len <= kWordBits && begin + len <= nbits_);
  if (len == 0) return;
  if (len < kWordBits) bits &= (std::uint64_t{1} << len) - 1;
  const std::size_t w = begin / kWordBits;
  const std::size_t off = begin % kWordBits;
  const std::size_t low = std::min(len, kWordBits - off);
  const std::uint64_t low_mask =
      (low == kWordBits) ? ~std::uint64_t{0}
                         : ((std::uint64_t{1} << low) - 1) << off;
  words_[w] = (words_[w] & ~low_mask) | ((bits << off) & low_mask);
  if (low < len) {
    const std::size_t high = len - low;
    const std::uint64_t high_mask = (std::uint64_t{1} << high) - 1;
    words_[w + 1] = (words_[w + 1] & ~high_mask) | ((bits >> low) & high_mask);
  }
}

std::size_t BitVec::set_transitions_to(const BitVec& next) const {
  assert(nbits_ == next.nbits_);
  // Same 4-way accumulator split as popcount(): these two counters are the
  // write-classing inner loop of every codec comparison.
  const std::size_t words = words_.size();
  const std::uint64_t* cur = words_.data();
  const std::uint64_t* nxt = next.words_.data();
  std::size_t a = 0, b = 0, c = 0, d = 0;
  std::size_t i = 0;
  for (; i + 4 <= words; i += 4) {
    a += static_cast<std::size_t>(std::popcount(~cur[i] & nxt[i]));
    b += static_cast<std::size_t>(std::popcount(~cur[i + 1] & nxt[i + 1]));
    c += static_cast<std::size_t>(std::popcount(~cur[i + 2] & nxt[i + 2]));
    d += static_cast<std::size_t>(std::popcount(~cur[i + 3] & nxt[i + 3]));
  }
  for (; i < words; ++i) {
    a += static_cast<std::size_t>(std::popcount(~cur[i] & nxt[i]));
  }
  return a + b + c + d;
}

std::size_t BitVec::reset_transitions_to(const BitVec& next) const {
  assert(nbits_ == next.nbits_);
  const std::size_t words = words_.size();
  const std::uint64_t* cur = words_.data();
  const std::uint64_t* nxt = next.words_.data();
  std::size_t a = 0, b = 0, c = 0, d = 0;
  std::size_t i = 0;
  for (; i + 4 <= words; i += 4) {
    a += static_cast<std::size_t>(std::popcount(cur[i] & ~nxt[i]));
    b += static_cast<std::size_t>(std::popcount(cur[i + 1] & ~nxt[i + 1]));
    c += static_cast<std::size_t>(std::popcount(cur[i + 2] & ~nxt[i + 2]));
    d += static_cast<std::size_t>(std::popcount(cur[i + 3] & ~nxt[i + 3]));
  }
  for (; i < words; ++i) {
    a += static_cast<std::size_t>(std::popcount(cur[i] & ~nxt[i]));
  }
  return a + b + c + d;
}

bool BitVec::monotone_decreasing_to(const BitVec& next) const {
  return set_transitions_to(next) == 0;
}

bool BitVec::monotone_increasing_to(const BitVec& next) const {
  return reset_transitions_to(next) == 0;
}

std::string BitVec::to_string() const {
  std::string s(nbits_, '0');
  for (std::size_t i = 0; i < nbits_; ++i) s[i] = get(i) ? '1' : '0';
  return s;
}

}  // namespace wompcm

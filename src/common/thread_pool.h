// A fixed-size worker pool with future-returning task submission.
//
// Backbone of the parallel sweep engine: each (architecture, benchmark)
// cell of an experiment sweep is submitted as one task. The pool is
// deliberately minimal — a locked deque and a condition variable — because
// sweep cells are seconds-long; queue overhead is irrelevant.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <type_traits>
#include <vector>

namespace wompcm {

class ThreadPool {
 public:
  // Spawns `workers` threads (at least 1).
  explicit ThreadPool(unsigned workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  // One worker per hardware thread; 1 if the runtime cannot tell.
  static unsigned hardware_workers();

  // Schedules `f` and returns a future for its result. Exceptions thrown by
  // the task are captured and rethrown from future::get().
  template <typename F>
  auto submit(F&& f) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) {
        throw std::runtime_error("ThreadPool: submit after shutdown");
      }
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

}  // namespace wompcm

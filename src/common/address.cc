#include "common/address.h"

#include <cassert>

namespace wompcm {

bool is_pow2(std::size_t n) { return n != 0 && (n & (n - 1)) == 0; }

unsigned log2_exact(std::size_t n) {
  assert(is_pow2(n));
  unsigned b = 0;
  while ((std::size_t{1} << b) < n) ++b;
  return b;
}

const char* to_string(AddressMapping m) {
  switch (m) {
    case AddressMapping::kRowRankBankCol:
      return "row:rank:bank:col";
    case AddressMapping::kRowBankRankCol:
      return "row:bank:rank:col";
    case AddressMapping::kRankBankRowCol:
      return "rank:bank:row:col";
  }
  return "?";
}

bool MemoryGeometry::valid(std::string* why) const {
  auto fail = [&](const char* msg) {
    if (why != nullptr) *why = msg;
    return false;
  };
  if (channels == 0 || ranks == 0 || banks_per_rank == 0 ||
      rows_per_bank == 0 || cols_per_row == 0 || bits_per_col == 0 ||
      devices_per_rank == 0 || burst_length == 0) {
    return fail("all geometry fields must be non-zero");
  }
  if (!is_pow2(channels) || !is_pow2(ranks) || !is_pow2(banks_per_rank) ||
      !is_pow2(rows_per_bank)) {
    return fail("channels/ranks/banks/rows must be powers of two");
  }
  if (data_width_bits() % 8 != 0) {
    return fail("data width must be byte aligned");
  }
  if (row_bytes() % line_bytes() != 0) {
    return fail("row size must be a whole number of burst lines");
  }
  if (!is_pow2(lines_per_row()) || !is_pow2(line_bytes())) {
    return fail("lines per row and line size must be powers of two");
  }
  return true;
}

AddressMapper::AddressMapper(const MemoryGeometry& geom) : geom_(geom) {
  std::string why;
  (void)why;
  assert(geom_.valid(&why));
  offset_bits_ = log2_exact(geom_.line_bytes());
  col_bits_ = log2_exact(geom_.lines_per_row());
  bank_bits_ = log2_exact(geom_.banks_per_rank);
  rank_bits_ = log2_exact(geom_.ranks);
  row_bits_ = log2_exact(geom_.rows_per_bank);
  channel_bits_ = log2_exact(geom_.channels);
}

namespace {

// Extracts `bits` bits of `addr` starting at `*shift`, advancing the shift.
unsigned take(Addr addr, unsigned bits, unsigned* shift) {
  const unsigned v =
      static_cast<unsigned>((addr >> *shift) & ((Addr{1} << bits) - 1));
  *shift += bits;
  return v;
}

// Inserts `value` into `*addr` at `*shift`, advancing the shift.
void put(Addr* addr, unsigned value, unsigned bits, unsigned* shift) {
  *addr |= (static_cast<Addr>(value) & ((Addr{1} << bits) - 1)) << *shift;
  *shift += bits;
}

}  // namespace

DecodedAddr AddressMapper::decode(Addr addr) const {
  DecodedAddr d;
  unsigned shift = offset_bits_;
  switch (geom_.mapping) {
    case AddressMapping::kRowRankBankCol:
      d.col = take(addr, col_bits_, &shift);
      d.bank = take(addr, bank_bits_, &shift);
      d.rank = take(addr, rank_bits_, &shift);
      break;
    case AddressMapping::kRowBankRankCol:
      d.col = take(addr, col_bits_, &shift);
      d.rank = take(addr, rank_bits_, &shift);
      d.bank = take(addr, bank_bits_, &shift);
      break;
    case AddressMapping::kRankBankRowCol:
      d.col = take(addr, col_bits_, &shift);
      break;
  }
  if (geom_.mapping == AddressMapping::kRankBankRowCol) {
    d.row = take(addr, row_bits_, &shift);
    d.bank = take(addr, bank_bits_, &shift);
    d.rank = take(addr, rank_bits_, &shift);
  } else {
    d.row = take(addr, row_bits_, &shift);
  }
  d.channel = take(addr, channel_bits_, &shift);
  // Addresses beyond the configured capacity wrap; the row mask above already
  // guarantees coordinates are in range.
  return d;
}

Addr AddressMapper::encode(const DecodedAddr& d) const {
  Addr addr = 0;
  unsigned shift = offset_bits_;
  switch (geom_.mapping) {
    case AddressMapping::kRowRankBankCol:
      put(&addr, d.col, col_bits_, &shift);
      put(&addr, d.bank, bank_bits_, &shift);
      put(&addr, d.rank, rank_bits_, &shift);
      put(&addr, d.row, row_bits_, &shift);
      break;
    case AddressMapping::kRowBankRankCol:
      put(&addr, d.col, col_bits_, &shift);
      put(&addr, d.rank, rank_bits_, &shift);
      put(&addr, d.bank, bank_bits_, &shift);
      put(&addr, d.row, row_bits_, &shift);
      break;
    case AddressMapping::kRankBankRowCol:
      put(&addr, d.col, col_bits_, &shift);
      put(&addr, d.row, row_bits_, &shift);
      put(&addr, d.bank, bank_bits_, &shift);
      put(&addr, d.rank, rank_bits_, &shift);
      break;
  }
  put(&addr, d.channel, channel_bits_, &shift);
  return addr;
}

unsigned AddressMapper::flat_bank(const DecodedAddr& d) const {
  return (d.channel * geom_.ranks + d.rank) * geom_.banks_per_rank + d.bank;
}

unsigned AddressMapper::num_flat_banks() const {
  return geom_.channels * geom_.ranks * geom_.banks_per_rank;
}

}  // namespace wompcm

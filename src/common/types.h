// Core scalar types shared across the womcode-pcm libraries.
#pragma once

#include <cstdint>
#include <string>

namespace wompcm {

// Simulation time. One tick equals one nanosecond: the paper quotes all PCM
// latencies in nanoseconds, so no clock-domain conversion is needed.
using Tick = std::uint64_t;

// Physical byte address as seen by the memory controller.
using Addr = std::uint64_t;

// Flat row identifier (bank-and-row folded into one key) used by the WOM
// generation tracker and the wear tracker.
using RowKey = std::uint64_t;

// Sentinel for "no scheduled time".
inline constexpr Tick kNeverTick = ~Tick{0};

enum class AccessType : std::uint8_t { kRead, kWrite };

inline const char* to_string(AccessType t) {
  return t == AccessType::kRead ? "read" : "write";
}

// Classification of a row programming operation, which determines its
// latency under a WOM-coded architecture (Section 3 of the paper).
enum class WriteClass : std::uint8_t {
  kResetOnly,  // rewrite within the WOM budget: RESET pulses only (fast)
  kAlpha,      // first write after the rewrite limit: needs SET (slow)
};

inline const char* to_string(WriteClass c) {
  return c == WriteClass::kResetOnly ? "reset-only" : "alpha";
}

// How the extra capacity for WOM-encoded data is provisioned (Section 3.1).
enum class WomOrganization : std::uint8_t {
  kWideColumn,  // columns widened to hold the encoded bits in place
  kHiddenPage,  // controller-managed hidden pages hold the upper bits
};

inline const char* to_string(WomOrganization o) {
  return o == WomOrganization::kWideColumn ? "wide-column" : "hidden-page";
}

}  // namespace wompcm

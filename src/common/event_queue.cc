#include "common/event_queue.h"

namespace wompcm {

Tick EventQueue::next_after(Tick now) {
  while (!heap_.empty() && heap_.front() <= now) {
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<Tick>{});
    heap_.pop_back();
  }
  return heap_.empty() ? kNeverTick : heap_.front();
}

bool Clock::advance(std::initializer_list<Tick> candidates) {
  Tick t = kNeverTick;
  for (const Tick c : candidates) t = earliest(t, c);
  if (t == kNeverTick) return false;
  if (t > now_) now_ = t;
  return true;
}

}  // namespace wompcm

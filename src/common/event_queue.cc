#include "common/event_queue.h"

namespace wompcm {

void EventQueue::schedule(Tick t) {
  if (t != kNeverTick) q_.push(t);
}

Tick EventQueue::next_after(Tick now) {
  while (!q_.empty() && q_.top() <= now) q_.pop();
  return q_.empty() ? kNeverTick : q_.top();
}

bool Clock::advance(std::initializer_list<Tick> candidates) {
  Tick t = kNeverTick;
  for (const Tick c : candidates) t = earliest(t, c);
  if (t == kNeverTick) return false;
  if (t > now_) now_ = t;
  return true;
}

}  // namespace wompcm

// The shared event kernel of the simulator.
//
// Every layer of the memory system is event-stepped: work happens at
// discrete instants, and between instants each component only needs to
// answer "when could anything next happen?". Two small types capture that
// protocol in one place:
//
//  - EventQueue: a min-heap of future instants. Components push completion
//    and wakeup times as they schedule work; next_after(now) discards
//    everything already reached and reports the earliest pending instant
//    (kNeverTick when quiescent). The heap is a plain vector so callers on
//    the hot path can reserve() once and stay off the allocator, and
//    peek() exposes the earliest scheduled instant without popping.
//  - Clock: the monotone simulation clock of a driving loop. advance()
//    jumps to the earliest of the candidate instants offered by the layers
//    below (arrivals, controller events, ...) and refuses to move when all
//    of them are kNeverTick — the loop's quiescence condition.
#pragma once

#include <algorithm>
#include <functional>
#include <initializer_list>
#include <vector>

#include "common/types.h"

namespace wompcm {

class EventQueue {
 public:
  // Schedules an instant. kNeverTick is accepted and ignored, so callers
  // can forward "maybe a time" values without branching.
  void schedule(Tick t) {
    if (t == kNeverTick) return;
    heap_.push_back(t);
    std::push_heap(heap_.begin(), heap_.end(), std::greater<Tick>{});
  }

  // Earliest scheduled instant strictly in the future of `now`; instants
  // at or before `now` are dropped (they were handled by the tick that
  // advanced the clock there). Returns kNeverTick when nothing is pending.
  Tick next_after(Tick now);

  // Earliest scheduled instant, including ones at or before the current
  // time (kNeverTick when empty). Does not modify the queue.
  Tick peek() const { return heap_.empty() ? kNeverTick : heap_.front(); }

  // Pre-sizes the backing store so steady-state scheduling never allocates.
  void reserve(std::size_t n) { heap_.reserve(n); }

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

 private:
  std::vector<Tick> heap_;  // binary min-heap via std::push_heap/pop_heap
};

// Earliest of two instants (kNeverTick is the identity).
inline Tick earliest(Tick a, Tick b) { return a < b ? a : b; }

class Clock {
 public:
  Tick now() const { return now_; }

  // Advances to the earliest candidate instant (clamped to never move
  // backwards). Returns false and stays put when every candidate is
  // kNeverTick: nothing can ever happen again.
  bool advance(std::initializer_list<Tick> candidates);

 private:
  Tick now_ = 0;
};

}  // namespace wompcm

#include "common/thread_pool.h"

#include <algorithm>

namespace wompcm {

ThreadPool::ThreadPool(unsigned workers) {
  workers = std::max(1u, workers);
  workers_.reserve(workers);
  for (unsigned i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

unsigned ThreadPool::hardware_workers() {
  return std::max(1u, std::thread::hardware_concurrency());
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

}  // namespace wompcm

// A small key=value configuration store used by the examples and bench
// harnesses to override simulation parameters from the command line
// ("ranks=4 banks=8 code=rs23 seed=7").
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace wompcm {

class KeyValueConfig {
 public:
  KeyValueConfig() = default;

  // Parses argv-style tokens of the form key=value. Tokens without '=' are
  // collected as positional arguments. Later keys override earlier ones.
  static KeyValueConfig from_args(int argc, const char* const* argv);
  static KeyValueConfig from_tokens(const std::vector<std::string>& tokens);

  void set(const std::string& key, const std::string& value);
  bool has(const std::string& key) const;

  std::optional<std::string> get_string(const std::string& key) const;
  std::optional<std::int64_t> get_int(const std::string& key) const;
  std::optional<double> get_double(const std::string& key) const;
  std::optional<bool> get_bool(const std::string& key) const;

  std::string get_string_or(const std::string& key,
                            const std::string& fallback) const;
  std::int64_t get_int_or(const std::string& key, std::int64_t fallback) const;
  double get_double_or(const std::string& key, double fallback) const;
  bool get_bool_or(const std::string& key, bool fallback) const;

  const std::vector<std::string>& positional() const { return positional_; }
  const std::map<std::string, std::string>& entries() const { return map_; }

 private:
  std::map<std::string, std::string> map_;
  std::vector<std::string> positional_;
};

}  // namespace wompcm

// Insert-only open-addressing hash map with 64-bit keys.
//
// The wear and WOM-generation trackers key sparse per-row state by flat
// row ids on the per-write hot path (and 256 times per refreshed row), and
// never erase or iterate. For that access pattern a linear-probe table
// with a strong mixing hash beats std::unordered_map by several times per
// lookup: one cache line per probe, no chained nodes, no allocator traffic
// after reserve(). The trade-offs this makes — no erase(), no iteration,
// pointer/reference invalidation on growth — match those trackers exactly.
//
// Replacing std::unordered_map with this table cannot change any reported
// statistic: values, update order, and size() are identical; only the
// lookup mechanics differ.
#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace wompcm {

template <typename V>
class FlatMap64 {
 public:
  FlatMap64() { rehash(kMinCapacity); }

  // Pre-sizes the table for `n` entries without exceeding the load limit.
  void reserve(std::size_t n) {
    std::size_t cap = kMinCapacity;
    while (cap / 2 < n) cap *= 2;
    if (cap > cells_.size()) rehash(cap);
  }

  // Value for `key`, default-constructed and inserted if absent.
  // References stay valid until the next insertion that grows the table.
  V& operator[](std::uint64_t key) {
    Cell* c = probe(key);
    if (c->used) return c->value;
    if (used_ + 1 > cells_.size() / 2) {  // max load factor 1/2
      rehash(cells_.size() * 2);
      c = probe(key);
    }
    c->used = true;
    c->key = key;
    ++used_;
    return c->value;
  }

  const V* find(std::uint64_t key) const {
    const Cell* c = probe(key);
    return c->used ? &c->value : nullptr;
  }
  V* find(std::uint64_t key) {
    Cell* c = probe(key);
    return c->used ? &c->value : nullptr;
  }

  std::size_t size() const { return used_; }
  bool empty() const { return used_ == 0; }

 private:
  static constexpr std::size_t kMinCapacity = 64;  // power of two

  struct Cell {
    std::uint64_t key = 0;
    V value{};
    bool used = false;
  };

  // SplitMix64 finalizer: full-avalanche mixing so sequential row keys
  // spread across the table.
  static std::size_t hash(std::uint64_t k) {
    k ^= k >> 30;
    k *= 0xbf58476d1ce4e5b9ULL;
    k ^= k >> 27;
    k *= 0x94d049bb133111ebULL;
    k ^= k >> 31;
    return static_cast<std::size_t>(k);
  }

  // First cell holding `key`, or the empty cell where it would go.
  const Cell* probe(std::uint64_t key) const {
    std::size_t i = hash(key) & mask_;
    while (cells_[i].used && cells_[i].key != key) i = (i + 1) & mask_;
    return &cells_[i];
  }
  Cell* probe(std::uint64_t key) {
    return const_cast<Cell*>(std::as_const(*this).probe(key));
  }

  void rehash(std::size_t cap) {
    std::vector<Cell> old = std::move(cells_);
    cells_.assign(cap, Cell{});
    mask_ = cap - 1;
    for (Cell& c : old) {
      if (!c.used) continue;
      std::size_t i = hash(c.key) & mask_;
      while (cells_[i].used) i = (i + 1) & mask_;
      cells_[i] = std::move(c);
    }
  }

  std::vector<Cell> cells_;
  std::size_t mask_ = 0;
  std::size_t used_ = 0;
};

}  // namespace wompcm

// A compact dynamic bit vector used to hold WOM wit arrays and row images.
//
// Besides the usual set/get operations it provides the transition counters
// the PCM cell model needs: how many bits a programming step takes 0->1
// (SET pulses) versus 1->0 (RESET pulses).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace wompcm {

class BitVec {
 public:
  BitVec() = default;
  explicit BitVec(std::size_t nbits, bool value = false);

  // Builds from a string of '0'/'1' characters, most significant bit first.
  static BitVec from_string(const std::string& bits);

  std::size_t size() const { return nbits_; }
  bool empty() const { return nbits_ == 0; }

  bool get(std::size_t i) const;
  void set(std::size_t i, bool value);
  void set_all(bool value);

  // Number of 1 bits.
  std::size_t popcount() const;

  // Bitwise operators; operands must be the same size.
  BitVec operator~() const;
  BitVec operator&(const BitVec& o) const;
  BitVec operator|(const BitVec& o) const;
  BitVec operator^(const BitVec& o) const;
  bool operator==(const BitVec& o) const;

  // Appends the bits of `o` after the current contents.
  void append(const BitVec& o);
  // Returns bits [begin, begin+len).
  BitVec slice(std::size_t begin, std::size_t len) const;

  // In-place variants for hot paths: once `out` (or *this) has seen the
  // target size, repeated calls perform no heap allocation.
  //
  // Copies bits [begin, begin+len) into `out`, resizing it to `len`.
  void slice_into(std::size_t begin, std::size_t len, BitVec& out) const;
  // Makes *this a copy of `o`, reusing existing word storage when possible.
  void assign_from(const BitVec& o);

  // Word-level views for codeword groups of up to 64 bits: bit j of the
  // returned word is bit begin+j of the vector (the same index mapping as
  // get/set, so from_string("110") extracts as 0b011).
  std::uint64_t extract_word(std::size_t begin, std::size_t len) const;
  // Overwrites bits [begin, begin+len) with the low `len` bits of `bits`.
  void deposit_word(std::size_t begin, std::size_t len, std::uint64_t bits);

  // Transition counts for programming this vector into `next` state.
  // set_transitions: bits going 0 -> 1 (PCM SET, slow).
  // reset_transitions: bits going 1 -> 0 (PCM RESET, fast).
  std::size_t set_transitions_to(const BitVec& next) const;
  std::size_t reset_transitions_to(const BitVec& next) const;

  // True if programming to `next` never raises a bit (0 -> 1), i.e. the
  // write is RESET-only and can complete at RESET latency.
  bool monotone_decreasing_to(const BitVec& next) const;
  // True if programming to `next` never lowers a bit (conventional WOM).
  bool monotone_increasing_to(const BitVec& next) const;

  // Most significant bit first, e.g. "0110".
  std::string to_string() const;

 private:
  static constexpr std::size_t kWordBits = 64;
  std::size_t word_count() const { return (nbits_ + kWordBits - 1) / kWordBits; }
  void mask_tail();

  std::size_t nbits_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace wompcm

// Memory geometry and physical-address decomposition.
//
// The paper's configuration (Section 5): 1 channel, 16 ranks, 32 banks/rank,
// 32768 rows/bank, 2048 columns/row, 4 bits per column per device, and 16
// devices ganged for a 64-bit data bus. A column access therefore moves
// 64 bits per beat and a DDR3 burst of 8 beats moves a 64-byte line.
#pragma once

#include <cstddef>
#include <string>

#include "common/types.h"

namespace wompcm {

// Order in which address bits are assigned to the memory coordinates,
// from least significant (after the line offset) to most significant.
enum class AddressMapping : std::uint8_t {
  kRowRankBankCol,  // row : rank : bank : col : offset  (bank interleaved)
  kRowBankRankCol,  // row : bank : rank : col : offset  (rank interleaved)
  kRankBankRowCol,  // rank : bank : row : col : offset  (region per rank)
};

const char* to_string(AddressMapping m);

struct MemoryGeometry {
  unsigned channels = 1;
  unsigned ranks = 16;
  unsigned banks_per_rank = 32;
  unsigned rows_per_bank = 32768;
  unsigned cols_per_row = 2048;    // device columns per row
  unsigned bits_per_col = 4;       // per device
  unsigned devices_per_rank = 16;  // ganged for the 64-bit data bus
  unsigned burst_length = 8;       // DDR3 burst of 8 beats

  AddressMapping mapping = AddressMapping::kRowRankBankCol;

  // Bus width in bits: one beat moves this much data.
  unsigned data_width_bits() const { return bits_per_col * devices_per_rank; }
  // Bytes moved by one full burst (the transaction granularity, 64B here).
  unsigned line_bytes() const {
    return data_width_bits() * burst_length / 8;
  }
  // Bytes stored in one row across all devices of the rank.
  std::size_t row_bytes() const {
    return static_cast<std::size_t>(cols_per_row) * bits_per_col *
           devices_per_rank / 8;
  }
  // Number of burst-sized lines per row (the column coordinate range).
  unsigned lines_per_row() const {
    return static_cast<unsigned>(row_bytes() / line_bytes());
  }
  std::size_t rows_total() const {
    return static_cast<std::size_t>(channels) * ranks * banks_per_rank *
           rows_per_bank;
  }
  std::size_t capacity_bytes() const { return rows_total() * row_bytes(); }

  // True if all fields are power-of-two sized and non-zero (required for
  // bit-sliced address decomposition).
  bool valid(std::string* why = nullptr) const;
};

// A fully decoded physical address.
struct DecodedAddr {
  unsigned channel = 0;
  unsigned rank = 0;
  unsigned bank = 0;
  unsigned row = 0;
  unsigned col = 0;  // line index within the row

  bool operator==(const DecodedAddr&) const = default;
};

// Bit-sliced address codec for a given geometry + mapping.
class AddressMapper {
 public:
  explicit AddressMapper(const MemoryGeometry& geom);

  DecodedAddr decode(Addr addr) const;
  Addr encode(const DecodedAddr& d) const;

  // A flat, unique index for the (channel, rank, bank) triple.
  unsigned flat_bank(const DecodedAddr& d) const;
  unsigned num_flat_banks() const;

  const MemoryGeometry& geometry() const { return geom_; }

 private:
  MemoryGeometry geom_;
  unsigned offset_bits_;
  unsigned col_bits_;
  unsigned bank_bits_;
  unsigned rank_bits_;
  unsigned row_bits_;
  unsigned channel_bits_;
};

// Number of bits needed to address `n` items; `n` must be a power of two.
unsigned log2_exact(std::size_t n);
bool is_pow2(std::size_t n);

}  // namespace wompcm

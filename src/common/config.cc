#include "common/config.h"

#include <cstdlib>

namespace wompcm {

KeyValueConfig KeyValueConfig::from_args(int argc, const char* const* argv) {
  std::vector<std::string> tokens;
  tokens.reserve(static_cast<std::size_t>(argc > 1 ? argc - 1 : 0));
  for (int i = 1; i < argc; ++i) tokens.emplace_back(argv[i]);
  return from_tokens(tokens);
}

KeyValueConfig KeyValueConfig::from_tokens(
    const std::vector<std::string>& tokens) {
  KeyValueConfig cfg;
  for (const auto& tok : tokens) {
    const auto eq = tok.find('=');
    if (eq == std::string::npos || eq == 0) {
      cfg.positional_.push_back(tok);
    } else {
      cfg.map_[tok.substr(0, eq)] = tok.substr(eq + 1);
    }
  }
  return cfg;
}

void KeyValueConfig::set(const std::string& key, const std::string& value) {
  map_[key] = value;
}

bool KeyValueConfig::has(const std::string& key) const {
  return map_.count(key) != 0;
}

std::optional<std::string> KeyValueConfig::get_string(
    const std::string& key) const {
  const auto it = map_.find(key);
  if (it == map_.end()) return std::nullopt;
  return it->second;
}

std::optional<std::int64_t> KeyValueConfig::get_int(
    const std::string& key) const {
  const auto s = get_string(key);
  if (!s) return std::nullopt;
  char* end = nullptr;
  const long long v = std::strtoll(s->c_str(), &end, 0);
  if (end == s->c_str() || *end != '\0') return std::nullopt;
  return static_cast<std::int64_t>(v);
}

std::optional<double> KeyValueConfig::get_double(const std::string& key) const {
  const auto s = get_string(key);
  if (!s) return std::nullopt;
  char* end = nullptr;
  const double v = std::strtod(s->c_str(), &end);
  if (end == s->c_str() || *end != '\0') return std::nullopt;
  return v;
}

std::optional<bool> KeyValueConfig::get_bool(const std::string& key) const {
  const auto s = get_string(key);
  if (!s) return std::nullopt;
  if (*s == "1" || *s == "true" || *s == "yes" || *s == "on") return true;
  if (*s == "0" || *s == "false" || *s == "no" || *s == "off") return false;
  return std::nullopt;
}

std::string KeyValueConfig::get_string_or(const std::string& key,
                                          const std::string& fallback) const {
  return get_string(key).value_or(fallback);
}

std::int64_t KeyValueConfig::get_int_or(const std::string& key,
                                        std::int64_t fallback) const {
  return get_int(key).value_or(fallback);
}

double KeyValueConfig::get_double_or(const std::string& key,
                                     double fallback) const {
  return get_double(key).value_or(fallback);
}

bool KeyValueConfig::get_bool_or(const std::string& key, bool fallback) const {
  return get_bool(key).value_or(fallback);
}

}  // namespace wompcm

// Functional page-level WOM codec.
//
// Models the actual wit image of one memory row (page) encoded under a
// WOM-code: data is split into k-bit symbols, each stored in its own n-wit
// group. Tracks the write generation, classifies each write as RESET-only
// or alpha (re-initialization needed), and counts the SET/RESET pulses a
// programming step requires — the inputs to the energy model.
//
// The timing simulator does not carry data payloads (the inverted code makes
// write latency data-independent); this codec is the bit-exact reference
// used by the examples, tests, and the energy ablations.
//
// The symbol loop is allocation-free in steady state: symbols are encoded
// through the code's shared EncodeLut (two array lookups per symbol) when
// the code is narrow enough, the next image and the pre-erased image live in
// reusable member buffers, and data bits move through word-level BitVec
// views. Codes too wide for a table fall back to the virtual encode path.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/types.h"
#include "wom/encode_lut.h"
#include "wom/wom_code.h"

namespace wompcm {

struct PageWriteResult {
  WriteClass write_class = WriteClass::kResetOnly;
  std::size_t set_pulses = 0;    // bits driven 0 -> 1 (slow, high energy)
  std::size_t reset_pulses = 0;  // bits driven 1 -> 0 (fast)
  unsigned generation_after = 0;
};

class PageCodec {
 public:
  // data_bits must be a positive multiple of code->data_bits().
  PageCodec(WomCodePtr code, std::size_t data_bits);

  std::size_t data_bits() const { return data_bits_; }
  std::size_t wit_bits() const { return image_.size(); }
  const WomCode& code() const { return *code_; }

  // Generation of the next write (0 after initialization / refresh).
  unsigned generation() const { return generation_; }
  bool at_rewrite_limit() const {
    return generation_ == code_->max_writes();
  }

  // Writes `data` (data_bits() bits) into the page. If the page is at its
  // rewrite limit, this is an alpha-write: the image is re-initialized
  // (costing SET pulses for an inverted code) and the data is stored as a
  // fresh first write.
  PageWriteResult write(const BitVec& data);

  // Decodes the current image back into data bits. Must not be called on a
  // page that has never been written since the last (re-)initialization.
  BitVec read() const;
  // In-place variant: resizes `out` to data_bits() on first use, then
  // decodes without allocating.
  void read_into(BitVec& out) const;

  // Pre-erases the page to the code's initial state (the PCM-refresh
  // operation). Returns the number of SET pulses spent re-initializing.
  std::size_t refresh();

  const BitVec& image() const { return image_; }

 private:
  void encode_symbols(const BitVec& data);

  WomCodePtr code_;
  std::shared_ptr<const EncodeLut> lut_;  // nullptr for wide codes
  std::size_t data_bits_;
  std::size_t symbols_;
  unsigned generation_ = 0;
  BitVec image_;
  BitVec fresh_;        // the pre-erased image, built once
  BitVec next_;         // scratch: image after the write in progress
  mutable BitVec sym_;  // scratch: one symbol's wits (virtual path only)
  std::vector<std::uint16_t> bitrev_;  // k-bit MSB-first <-> word reversal
};

}  // namespace wompcm

// Functional page-level WOM codec.
//
// Models the actual wit image of one memory row (page) encoded under a
// sectioned block codec: data is split into fixed-width sections, each
// stored in its own wit group with its own write generation. Classifies
// each page write as RESET-only or alpha (a page is RESET-only iff every
// touched section is), and counts the SET/RESET pulses a programming step
// requires — the inputs to the energy model.
//
// The timing simulator does not carry data payloads (the inverted code makes
// write latency data-independent); this codec is the bit-exact reference
// used by the examples, tests, and the energy ablations.
//
// PageCodec is a thin streaming client of BlockCodec: the section loop,
// the EncodeLut fast path, and the pulse accounting all live in the codec
// implementations (wom/sectioned_codec.h and friends). The loop is
// allocation-free in steady state — section scratch buffers are codec
// members — which womcode_pcm_alloc_tests enforces.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/types.h"
#include "wom/block_codec.h"
#include "wom/wom_code.h"

namespace wompcm {

struct PageWriteResult {
  WriteClass write_class = WriteClass::kResetOnly;
  std::size_t set_pulses = 0;    // bits driven 0 -> 1 (slow, high energy)
  std::size_t reset_pulses = 0;  // bits driven 1 -> 0 (fast)
  unsigned generation_after = 0;
};

class PageCodec {
 public:
  // Wraps `code` in a SectionedCodec (one symbol per section).
  // data_bits must be a positive multiple of code->data_bits().
  PageCodec(WomCodePtr code, std::size_t data_bits);
  // Streams through an explicit block codec. data_bits must be a positive
  // multiple of block->section_data_bits().
  PageCodec(BlockCodecPtr block, std::size_t data_bits);

  std::size_t data_bits() const { return data_bits_; }
  std::size_t wit_bits() const { return image_.size(); }
  std::size_t sections() const { return sections_; }
  const BlockCodec& block() const { return *block_; }
  // The wrapped WomCode; only valid for the WomCodePtr constructor.
  const WomCode& code() const { return *code_; }

  // Generation of the next write (0 after initialization / refresh). Full-
  // page writes keep every section's generation in lockstep, so the page
  // generation is any section's.
  unsigned generation() const { return gens_.empty() ? 0 : gens_[0]; }
  bool at_rewrite_limit() const {
    return generation() == block_->max_writes();
  }

  // Writes `data` (data_bits() bits) into the page. Sections at their
  // rewrite limit take an alpha-write: they are re-initialized (costing SET
  // pulses for an inverted code) and store the data as a fresh first write;
  // the page write is alpha iff any section's was.
  PageWriteResult write(const BitVec& data);

  // Decodes the current image back into data bits. Must not be called on a
  // page that has never been written since the last (re-)initialization.
  BitVec read() const;
  // In-place variant: resizes `out` to data_bits() on first use, then
  // decodes without allocating.
  void read_into(BitVec& out) const;

  // Pre-erases the page to the codec's initial state (the PCM-refresh
  // operation). Returns the number of SET pulses spent re-initializing.
  std::size_t refresh();

  const BitVec& image() const { return image_; }

  // How many write() calls ran the two-lookup EncodeLut path versus the
  // virtual/structural fallback (the observability counters the arch layer
  // publishes as codec.lut_hits / codec.lut_fallbacks).
  std::uint64_t lut_hits() const { return lut_hits_; }
  std::uint64_t lut_fallbacks() const { return lut_fallbacks_; }

 private:
  BlockCodecPtr block_;
  WomCodePtr code_;  // non-null only for the WomCodePtr constructor
  std::size_t data_bits_ = 0;
  std::size_t sections_ = 0;
  std::vector<unsigned> gens_;  // per-section write generation
  BitVec image_;
  std::uint64_t lut_hits_ = 0;
  std::uint64_t lut_fallbacks_ = 0;
};

}  // namespace wompcm

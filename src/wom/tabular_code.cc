#include "wom/tabular_code.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace wompcm {

bool validate_wom_table(unsigned data_bits,
                        const std::vector<std::vector<BitVec>>& table,
                        std::string* why) {
  auto fail = [&](const std::string& msg) {
    if (why != nullptr) *why = msg;
    return false;
  };
  if (table.empty()) return fail("no generations");
  const unsigned v = 1u << data_bits;
  std::size_t n = 0;
  for (const auto& gen : table) {
    if (gen.size() != v) return fail("generation with wrong value count");
    for (const auto& p : gen) {
      if (n == 0) n = p.size();
      if (p.size() != n || n == 0) return fail("inconsistent wit count");
    }
  }
  // Decode consistency: a pattern may appear in several generations, but it
  // must always represent the same value.
  std::vector<std::pair<std::string, unsigned>> seen;
  for (const auto& gen : table) {
    for (unsigned x = 0; x < v; ++x) {
      const std::string key = gen[x].to_string();
      for (const auto& [k2, v2] : seen) {
        if (k2 == key && v2 != x) {
          return fail("pattern decodes to two different values: " + key);
        }
      }
      seen.emplace_back(key, x);
    }
  }
  // Within a generation, patterns of distinct values must differ.
  for (const auto& gen : table) {
    for (unsigned x = 0; x < v; ++x) {
      for (unsigned y = x + 1; y < v; ++y) {
        if (gen[x] == gen[y]) return fail("duplicate pattern in generation");
      }
    }
  }
  // First write must be reachable from the erased (all-zero) state.
  const BitVec erased(n, false);
  for (unsigned x = 0; x < v; ++x) {
    if (!erased.monotone_increasing_to(table[0][x])) {
      return fail("first write not reachable from erased state");
    }
  }
  // Monotone transitions between any earlier and later generation for
  // distinct values. (Same value keeps the current pattern, so it needs no
  // reachable successor.)
  for (std::size_t g1 = 0; g1 < table.size(); ++g1) {
    for (std::size_t g2 = g1 + 1; g2 < table.size(); ++g2) {
      for (unsigned x = 0; x < v; ++x) {
        for (unsigned y = 0; y < v; ++y) {
          if (x == y) continue;
          if (!table[g1][x].monotone_increasing_to(table[g2][y])) {
            return fail("non-monotone transition g" + std::to_string(g1) +
                        "[" + std::to_string(x) + "] -> g" +
                        std::to_string(g2) + "[" + std::to_string(y) + "]");
          }
        }
      }
    }
  }
  return true;
}

TabularCode::TabularCode(std::string name, unsigned data_bits,
                         std::vector<std::vector<BitVec>> table)
    : name_(std::move(name)), k_(data_bits), table_(std::move(table)) {
  std::string why;
  if (!validate_wom_table(k_, table_, &why)) {
    throw std::invalid_argument("TabularCode " + name_ + ": " + why);
  }
  n_ = static_cast<unsigned>(table_[0][0].size());
  for (const auto& gen : table_) {
    for (unsigned x = 0; x < gen.size(); ++x) {
      const std::string key = gen[x].to_string();
      const auto it = std::find_if(
          decode_map_.begin(), decode_map_.end(),
          [&](const auto& e) { return e.first == key; });
      if (it == decode_map_.end()) decode_map_.emplace_back(key, x);
    }
  }
}

BitVec TabularCode::encode(unsigned value, unsigned generation,
                           const BitVec& current) const {
  if (value >= values()) {
    throw std::invalid_argument(name_ + ": value out of range");
  }
  if (generation >= max_writes()) {
    throw std::invalid_argument(name_ + ": generation exceeds rewrite limit");
  }
  if (generation == 0) return table_[0][value];
  if (decode(current) == value) return current;
  return table_[generation][value];
}

unsigned TabularCode::decode(const BitVec& w) const {
  const std::string key = w.to_string();
  for (const auto& [k2, v2] : decode_map_) {
    if (k2 == key) return v2;
  }
  throw std::invalid_argument(name_ + ": pattern is not a codeword: " + key);
}

WomCodePtr make_marker_code(unsigned data_bits, unsigned writes) {
  assert(data_bits >= 1 && data_bits <= 8);
  assert(writes >= 1 && writes <= 16);
  const unsigned k = data_bits;
  const unsigned v = 1u << k;
  const unsigned group = k + 1;  // marker wit + k data wits
  const unsigned n = writes * group;
  std::vector<std::vector<BitVec>> table(writes);
  for (unsigned g = 0; g < writes; ++g) {
    table[g].reserve(v);
    for (unsigned x = 0; x < v; ++x) {
      BitVec p(n, false);
      // Groups before g are fully burned (marker + all data wits set).
      for (unsigned i = 0; i < g * group; ++i) p.set(i, true);
      // Group g: marker set, data wits hold x (MSB first).
      p.set(g * group, true);
      for (unsigned b = 0; b < k; ++b) {
        p.set(g * group + 1 + b, (x >> (k - 1 - b)) & 1);
      }
      table[g].push_back(std::move(p));
    }
  }
  return std::make_shared<TabularCode>(
      "marker-k" + std::to_string(k) + "t" + std::to_string(writes), k,
      std::move(table));
}

WomCodePtr make_parity_code(unsigned writes) {
  assert(writes >= 1 && writes <= 32);
  const unsigned n = 2 * writes - 1;
  std::vector<std::vector<BitVec>> table(writes);
  for (unsigned g = 0; g < writes; ++g) {
    for (unsigned x = 0; x < 2; ++x) {
      // Prefix of ones whose length has parity x; length 2g + x fits and is
      // monotone across generations.
      const unsigned len = 2 * g + x;
      BitVec p(n, false);
      for (unsigned i = 0; i < len; ++i) p.set(i, true);
      table[g].push_back(std::move(p));
    }
  }
  return std::make_shared<TabularCode>("parity-t" + std::to_string(writes), 1,
                                       std::move(table));
}

}  // namespace wompcm

// Memoized WOM-code encode/decode tables.
//
// For codes with few wits (every code the paper evaluates: rs23 has 3,
// marker/parity families stay small) the whole transition function
// (value x generation x current-state) -> next-state fits in a dense table
// indexed by the codeword's wit state packed into a machine word. PageCodec
// uses it to encode a symbol with two array lookups instead of a virtual
// call plus several BitVec allocations.
//
// Tables are built once per code and shared: EncodeLut::for_code() keeps a
// process-wide cache keyed by the code's name (code names are fully
// parameterized, so a name always denotes the same code). The cache is
// mutex-guarded because sweep cells run on pool workers concurrently.
#pragma once

#include <cassert>
#include <cstdint>
#include <memory>
#include <vector>

#include "wom/wom_code.h"

namespace wompcm {

class EncodeLut {
 public:
  // Dense tables are 2^wits x 2^data_bits wide per generation; cap both the
  // packing width and the total footprint (kMaxEntries u32 = 16 MiB).
  static constexpr unsigned kMaxWits = 16;
  static constexpr std::uint64_t kMaxEntries = std::uint64_t{1} << 22;
  static constexpr std::uint32_t kInvalid = 0xFFFFFFFFu;

  static bool eligible(const WomCode& code) {
    if (code.wits() > kMaxWits) return false;
    const std::uint64_t entries = std::uint64_t{code.max_writes()}
                                  << (code.wits() + code.data_bits());
    return entries <= kMaxEntries;
  }

  // Shared, cached table for `code`; nullptr if the code is too wide.
  static std::shared_ptr<const EncodeLut> for_code(const WomCodePtr& code);

  unsigned data_bits() const { return k_; }
  unsigned wits() const { return n_; }
  unsigned max_writes() const { return t_; }
  // Wit state of an erased symbol, packed with bit j = wit j.
  std::uint32_t initial_word() const { return init_; }

  // Next wit state after writing `value` as the `generation`-th write into
  // state `cur`. Only states the code itself can produce are populated; the
  // codec never holds any other state.
  std::uint32_t encode(unsigned value, unsigned generation,
                       std::uint32_t cur) const {
    assert(value < values_ && generation < t_ && cur < states_);
    const std::uint32_t next =
        enc_[(static_cast<std::size_t>(generation) * states_ + cur) * values_ +
             value];
    assert(next != kInvalid);
    return next;
  }

  // Stored value of a (reachable) wit state.
  unsigned decode(std::uint32_t state) const {
    assert(state < states_);
    const std::uint32_t v = dec_[state];
    assert(v != kInvalid);
    return v;
  }

 private:
  explicit EncodeLut(const WomCode& code);

  unsigned k_ = 0;
  unsigned n_ = 0;
  unsigned t_ = 0;
  std::uint32_t values_ = 0;
  std::uint32_t states_ = 0;
  std::uint32_t init_ = 0;
  std::vector<std::uint32_t> enc_;  // [generation][state][value] -> state
  std::vector<std::uint32_t> dec_;  // [state] -> value
};

}  // namespace wompcm

// A WOM-code defined by explicit per-generation pattern tables.
//
// table[g][x] is the absolute wit state after writing value x as the g-th
// write. Construction validates the WOM property: for any two generations
// g1 < g2 and values x != y, the transition table[g1][x] -> table[g2][y]
// only raises bits, and every pattern decodes to a unique value. Rewriting
// the value a symbol already holds leaves the wits untouched.
//
// Two constructive families are provided:
//   make_marker_code(k, t)  — <2^k>^t / t*(k+1): each write burns a fresh
//     group of k data wits plus a marker wit; decode reads the last marked
//     group. Arbitrary t at overhead t*(k+1)/k.
//   make_parity_code(t)     — <2>^t / (2t-1): one data bit stored as the
//     parity of the number of set wits in a prefix-of-ones pattern.
#pragma once

#include <vector>

#include "wom/wom_code.h"

namespace wompcm {

class TabularCode final : public WomCode {
 public:
  // Throws std::invalid_argument if the tables violate the WOM property.
  TabularCode(std::string name, unsigned data_bits,
              std::vector<std::vector<BitVec>> table);

  std::string name() const override { return name_; }
  unsigned data_bits() const override { return k_; }
  unsigned wits() const override { return n_; }
  unsigned max_writes() const override {
    return static_cast<unsigned>(table_.size());
  }

  BitVec initial_state() const override { return BitVec(n_, false); }
  bool raises_bits() const override { return true; }

  BitVec encode(unsigned value, unsigned generation,
                const BitVec& current) const override;
  unsigned decode(const BitVec& wits) const override;

  const std::vector<std::vector<BitVec>>& table() const { return table_; }

 private:
  std::string name_;
  unsigned k_;
  unsigned n_;
  std::vector<std::vector<BitVec>> table_;
  // decode map: wit pattern (as string) -> value
  std::vector<std::pair<std::string, unsigned>> decode_map_;
};

// Validates the tables without constructing; returns false and fills `why`
// on the first violation. Used by the code search and by tests.
bool validate_wom_table(unsigned data_bits,
                        const std::vector<std::vector<BitVec>>& table,
                        std::string* why);

WomCodePtr make_marker_code(unsigned data_bits, unsigned writes);
WomCodePtr make_parity_code(unsigned writes);

}  // namespace wompcm

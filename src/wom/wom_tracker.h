// WOM write-generation tracking for the timing simulator.
//
// Encoding is per column (Section 3.1: "memory data is encoded in the unit
// of a column"), so each burst-sized line of a row carries its own n-wit
// codeword and its own rewrite budget; PCM-refresh re-initializes a whole
// row at once (Section 3.2). The controller only needs each line's
// *generation* to classify a write as RESET-only (fast) or alpha (slow):
// the inverted code makes the classification data independent.
//
// Line generation semantics (t = code rewrite limit):
//   unknown      : never written since power-on. The array state is
//                  arbitrary, so the first write needs SET pulses -> alpha.
//   gen 0        : erased by PCM-refresh; next write is RESET-only.
//   0 < gen < t  : in budget; next write is RESET-only.
//   gen == t     : at the rewrite limit; the next write is the alpha-write,
//                  which re-initializes the codeword and leaves it at gen 1.
//
// Rows are tracked lazily in a hash map keyed by a flat row id.
#pragma once

#include <cstdint>
#include <vector>

#include "common/flat_map.h"
#include "common/types.h"

namespace wompcm {

class WomStateTracker {
 public:
  // erased_start: lines of untouched rows count as erased (generation 0)
  // rather than unknown. Used for the WOM-cache, whose small array is
  // formatted at boot and cycles through refresh continuously; main-memory
  // trackers keep the conservative unknown-start semantics.
  WomStateTracker(unsigned max_writes, unsigned lines_per_row,
                  bool erased_start = false);

  unsigned max_writes() const { return t_; }
  unsigned lines_per_row() const { return lines_; }

  struct WriteRecord {
    WriteClass cls = WriteClass::kResetOnly;
    bool cold = false;  // alpha on a never-touched line (not refreshable)
  };

  // Records a demand write to line `line` of `row` and returns its class.
  WriteRecord record_write(RowKey row, unsigned line);

  // Records a demand write touching lines [first, first + count) of `row`
  // at once — the sectioned-codec form, where one burst line spans several
  // independently budgeted sections. Each section advances (or alpha
  // re-initializes) on its own, the write counts once, and the combined
  // class is RESET-only iff every touched section's was (cold if any
  // section was never touched). count == 1 is exactly record_write.
  WriteRecord record_write_range(RowKey row, unsigned first, unsigned count);

  // Classifies what the next write to (row, line) would be, without
  // recording it.
  WriteClass peek_write(RowKey row, unsigned line) const;

  // Generation of one line; kUnknownGen if never written nor refreshed.
  static constexpr unsigned kUnknownGen = 0xFF;
  unsigned generation(RowKey row, unsigned line) const;

  // True if any line of `row` is at the rewrite limit (the row belongs in
  // the refresh row-address table).
  bool row_has_limit_lines(RowKey row) const;

  // PCM-refresh: pre-erases every codeword of the row so subsequent writes
  // take the RESET-only path. Returns true if the row still had lines at
  // the rewrite limit (i.e. the refresh was useful).
  bool refresh(RowKey row);

  // Statistics.
  std::uint64_t writes() const { return writes_; }
  std::uint64_t alpha_writes() const { return alpha_writes_; }
  std::uint64_t cold_alpha_writes() const { return cold_alpha_writes_; }
  std::uint64_t refreshes() const { return refreshes_; }
  std::size_t tracked_rows() const { return rows_.size(); }

 private:
  // Per-row state lives in parallel slab arrays indexed by a 1-based slab
  // id (the row index map's default 0 means "no state yet"): generations
  // are lines_ contiguous bytes in gen_, the at-limit line count a single
  // entry in at_limit_. One hash probe per operation; a refresh resets the
  // row with one sequential fill.
  std::size_t slab_id(RowKey row);  // allocates on first touch
  std::uint8_t* gen_slab(std::size_t id) {
    return gen_.data() + (id - 1) * lines_;
  }
  const std::uint8_t* gen_slab(std::size_t id) const {
    return gen_.data() + (id - 1) * lines_;
  }

  unsigned t_;
  unsigned lines_;
  bool erased_start_;
  FlatMap64<std::uint32_t> rows_;     // row key -> 1-based slab id
  std::vector<std::uint8_t> gen_;     // slabs of lines_ generations
  std::vector<unsigned> at_limit_;    // per slab: lines at generation t
  std::uint64_t writes_ = 0;
  std::uint64_t alpha_writes_ = 0;
  std::uint64_t cold_alpha_writes_ = 0;
  std::uint64_t refreshes_ = 0;
};

}  // namespace wompcm

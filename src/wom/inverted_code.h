// Inverted-WOM adapter (Fig. 1b of the paper).
//
// Wraps any conventional WOM-code and complements its wit patterns so that
// every in-budget write only lowers bits (1 -> 0). In PCM, lowering a bit is
// the fast RESET operation, so rewrites under an inverted code complete at
// RESET latency; only the re-initialization (the alpha-write) needs SET.
// The inversion is applied off-line to the code tables, so encode/decode
// cost is identical to the wrapped code and no per-bitline inverters
// (Fig. 1a) are required.
#pragma once

#include "wom/wom_code.h"

namespace wompcm {

class InvertedCode final : public WomCode {
 public:
  explicit InvertedCode(WomCodePtr base);

  std::string name() const override { return base_->name() + "-inv"; }
  unsigned data_bits() const override { return base_->data_bits(); }
  unsigned wits() const override { return base_->wits(); }
  unsigned max_writes() const override { return base_->max_writes(); }

  BitVec initial_state() const override {
    return ~base_->initial_state();
  }
  bool raises_bits() const override { return false; }

  BitVec encode(unsigned value, unsigned generation,
                const BitVec& current) const override {
    return ~base_->encode(value, generation, ~current);
  }
  unsigned decode(const BitVec& wits) const override {
    return base_->decode(~wits);
  }

  const WomCode& base() const { return *base_; }

 private:
  WomCodePtr base_;
};

// Convenience: wraps `base` unless it is already inverted.
WomCodePtr invert(WomCodePtr base);

}  // namespace wompcm

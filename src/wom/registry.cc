#include "wom/registry.h"

#include <cstdlib>

#include "wom/code_search.h"
#include "wom/encode_lut.h"
#include "wom/identity_code.h"
#include "wom/inverted_code.h"
#include "wom/polar_code.h"
#include "wom/rs_code.h"
#include "wom/sectioned_codec.h"
#include "wom/tabular_code.h"
#include "wom/ts_constrained_code.h"

namespace wompcm {

namespace {

// Parses a decimal number following `prefix` inside `s` at position `pos`.
bool parse_num(const std::string& s, std::size_t* pos, unsigned* out) {
  if (*pos >= s.size() || !isdigit(static_cast<unsigned char>(s[*pos]))) {
    return false;
  }
  unsigned v = 0;
  while (*pos < s.size() && isdigit(static_cast<unsigned char>(s[*pos]))) {
    v = v * 10 + static_cast<unsigned>(s[*pos] - '0');
    ++*pos;
  }
  *out = v;
  return true;
}

WomCodePtr make_base_code(const std::string& name) {
  if (name == "rs23") return std::make_shared<RivestShamirCode>();
  if (name.rfind("identity-k", 0) == 0) {
    std::size_t pos = 10;
    unsigned k = 0;
    if (!parse_num(name, &pos, &k) || pos != name.size()) return nullptr;
    if (k < 1 || k > 16) return nullptr;
    return std::make_shared<IdentityCode>(k);
  }
  if (name.rfind("marker-k", 0) == 0) {
    std::size_t pos = 8;
    unsigned k = 0, t = 0;
    if (!parse_num(name, &pos, &k)) return nullptr;
    if (pos >= name.size() || name[pos] != 't') return nullptr;
    ++pos;
    if (!parse_num(name, &pos, &t) || pos != name.size()) return nullptr;
    if (k < 1 || k > 8 || t < 1 || t > 16) return nullptr;
    return make_marker_code(k, t);
  }
  if (name.rfind("parity-t", 0) == 0) {
    std::size_t pos = 8;
    unsigned t = 0;
    if (!parse_num(name, &pos, &t) || pos != name.size()) return nullptr;
    if (t < 1 || t > 32) return nullptr;
    return make_parity_code(t);
  }
  if (name.rfind("search-k", 0) == 0) {
    // On-demand brute-force construction, e.g. "search-k2n5t3" builds the
    // <2^2>^3/5 code the DFS discovers. Deterministic (the search is), so
    // the name always denotes the same code.
    std::size_t pos = 8;
    CodeSearchParams p;
    if (!parse_num(name, &pos, &p.data_bits)) return nullptr;
    if (pos >= name.size() || name[pos] != 'n') return nullptr;
    ++pos;
    if (!parse_num(name, &pos, &p.wits)) return nullptr;
    if (pos >= name.size() || name[pos] != 't') return nullptr;
    ++pos;
    if (!parse_num(name, &pos, &p.writes) || pos != name.size()) {
      return nullptr;
    }
    const auto found = search_wom_code(p);
    return found ? found->code : nullptr;
  }
  return nullptr;
}

// "polar-m<M>[-inv]": the inversion is native to the block code (a flag,
// not an InvertedCode wrapper) so the streaming encode stays in-place.
WomCodePtr make_polar_code(const std::string& name) {
  std::size_t pos = 7;  // past "polar-m"
  unsigned m = 0;
  if (!parse_num(name, &pos, &m)) return nullptr;
  bool inverted = false;
  if (pos != name.size()) {
    if (name.compare(pos, std::string::npos, "-inv") != 0) return nullptr;
    inverted = true;
  }
  if (m < PolarWomCode::kMinM || m > PolarWomCode::kMaxM) return nullptr;
  return std::make_shared<PolarWomCode>(m, inverted);
}

}  // namespace

WomCodePtr make_code(const std::string& name) {
  if (name.rfind("polar-m", 0) == 0) {
    WomCodePtr polar = make_polar_code(name);
    if (polar == nullptr) return nullptr;
    EncodeLut::for_code(polar);  // always a miss, but keeps the contract
    return polar;
  }
  const bool inverted =
      name.size() > 4 && name.compare(name.size() - 4, 4, "-inv") == 0;
  const std::string base_name =
      inverted ? name.substr(0, name.size() - 4) : name;
  WomCodePtr base = make_base_code(base_name);
  if (base == nullptr) return nullptr;
  WomCodePtr code = inverted ? invert(std::move(base)) : base;
  // Build (or fetch) the shared encode table now, so every PageCodec for
  // this code starts with the memoized hot path already warm.
  EncodeLut::for_code(code);
  return code;
}

BlockCodecPtr make_block_codec(const std::string& name) {
  if (name.rfind("tsc-", 0) == 0) {
    // "tsc-<base>x<R>[-inv]": the trailing "-inv" belongs to the base.
    std::string rest = name.substr(4);
    std::string suffix;
    if (rest.size() > 4 &&
        rest.compare(rest.size() - 4, 4, "-inv") == 0) {
      suffix = "-inv";
      rest.resize(rest.size() - 4);
    }
    const std::size_t x = rest.rfind('x');
    if (x == std::string::npos || x == 0) return nullptr;
    std::size_t pos = x + 1;
    unsigned replicas = 0;
    if (!parse_num(rest, &pos, &replicas) || pos != rest.size()) {
      return nullptr;
    }
    if (replicas < TsConstrainedCodec::kMinReplicas ||
        replicas > TsConstrainedCodec::kMaxReplicas) {
      return nullptr;
    }
    WomCodePtr base = make_code(rest.substr(0, x) + suffix);
    if (base == nullptr) return nullptr;
    return std::make_unique<TsConstrainedCodec>(std::move(base), replicas);
  }
  WomCodePtr code = make_code(name);
  if (code == nullptr) return nullptr;
  return std::make_unique<SectionedCodec>(std::move(code));
}

CodeInfo code_info(const std::string& name) {
  CodeInfo info;
  const BlockCodecPtr codec = make_block_codec(name);
  if (codec == nullptr) return info;
  info.valid = true;
  info.name = codec->name();
  info.data_bits = codec->section_data_bits();
  info.wits = codec->section_wits();
  info.max_writes = codec->max_writes();
  info.overhead = codec->overhead();
  info.wear_bound = codec->wear_bound();
  info.lut = codec->lut_backed();
  info.inverted = !codec->raises_bits();
  return info;
}

std::vector<std::string> known_code_names() {
  return {"rs23",        "rs23-inv",        "identity-k2", "identity-k4",
          "marker-k2t2", "marker-k2t4-inv", "parity-t3",   "parity-t4-inv",
          "polar-m5",    "polar-m7-inv"};
}

std::vector<std::string> known_block_codec_names() {
  std::vector<std::string> names = known_code_names();
  names.push_back("tsc-rs23x4-inv");
  names.push_back("tsc-marker-k2t4x2-inv");
  return names;
}

}  // namespace wompcm

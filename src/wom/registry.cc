#include "wom/registry.h"

#include <cstdlib>

#include "wom/code_search.h"
#include "wom/encode_lut.h"
#include "wom/identity_code.h"
#include "wom/inverted_code.h"
#include "wom/rs_code.h"
#include "wom/tabular_code.h"

namespace wompcm {

namespace {

// Parses a decimal number following `prefix` inside `s` at position `pos`.
bool parse_num(const std::string& s, std::size_t* pos, unsigned* out) {
  if (*pos >= s.size() || !isdigit(static_cast<unsigned char>(s[*pos]))) {
    return false;
  }
  unsigned v = 0;
  while (*pos < s.size() && isdigit(static_cast<unsigned char>(s[*pos]))) {
    v = v * 10 + static_cast<unsigned>(s[*pos] - '0');
    ++*pos;
  }
  *out = v;
  return true;
}

WomCodePtr make_base_code(const std::string& name) {
  if (name == "rs23") return std::make_shared<RivestShamirCode>();
  if (name.rfind("identity-k", 0) == 0) {
    std::size_t pos = 10;
    unsigned k = 0;
    if (!parse_num(name, &pos, &k) || pos != name.size()) return nullptr;
    if (k < 1 || k > 16) return nullptr;
    return std::make_shared<IdentityCode>(k);
  }
  if (name.rfind("marker-k", 0) == 0) {
    std::size_t pos = 8;
    unsigned k = 0, t = 0;
    if (!parse_num(name, &pos, &k)) return nullptr;
    if (pos >= name.size() || name[pos] != 't') return nullptr;
    ++pos;
    if (!parse_num(name, &pos, &t) || pos != name.size()) return nullptr;
    if (k < 1 || k > 8 || t < 1 || t > 16) return nullptr;
    return make_marker_code(k, t);
  }
  if (name.rfind("parity-t", 0) == 0) {
    std::size_t pos = 8;
    unsigned t = 0;
    if (!parse_num(name, &pos, &t) || pos != name.size()) return nullptr;
    if (t < 1 || t > 32) return nullptr;
    return make_parity_code(t);
  }
  if (name.rfind("search-k", 0) == 0) {
    // On-demand brute-force construction, e.g. "search-k2n5t3" builds the
    // <2^2>^3/5 code the DFS discovers. Deterministic (the search is), so
    // the name always denotes the same code.
    std::size_t pos = 8;
    CodeSearchParams p;
    if (!parse_num(name, &pos, &p.data_bits)) return nullptr;
    if (pos >= name.size() || name[pos] != 'n') return nullptr;
    ++pos;
    if (!parse_num(name, &pos, &p.wits)) return nullptr;
    if (pos >= name.size() || name[pos] != 't') return nullptr;
    ++pos;
    if (!parse_num(name, &pos, &p.writes) || pos != name.size()) {
      return nullptr;
    }
    const auto found = search_wom_code(p);
    return found ? found->code : nullptr;
  }
  return nullptr;
}

}  // namespace

WomCodePtr make_code(const std::string& name) {
  const bool inverted =
      name.size() > 4 && name.compare(name.size() - 4, 4, "-inv") == 0;
  const std::string base_name =
      inverted ? name.substr(0, name.size() - 4) : name;
  WomCodePtr base = make_base_code(base_name);
  if (base == nullptr) return nullptr;
  WomCodePtr code = inverted ? invert(std::move(base)) : base;
  // Build (or fetch) the shared encode table now, so every PageCodec for
  // this code starts with the memoized hot path already warm.
  EncodeLut::for_code(code);
  return code;
}

std::vector<std::string> known_code_names() {
  return {"rs23",       "rs23-inv",      "identity-k2", "identity-k4",
          "marker-k2t2", "marker-k2t4-inv", "parity-t3",   "parity-t4-inv"};
}

}  // namespace wompcm

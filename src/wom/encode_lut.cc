#include "wom/encode_lut.h"

#include <map>
#include <mutex>
#include <string>

namespace wompcm {

EncodeLut::EncodeLut(const WomCode& code)
    : k_(code.data_bits()),
      n_(code.wits()),
      t_(code.max_writes()),
      values_(1u << code.data_bits()),
      states_(1u << code.wits()) {
  enc_.assign(static_cast<std::size_t>(t_) * states_ * values_, kInvalid);
  dec_.assign(states_, kInvalid);
  init_ = static_cast<std::uint32_t>(code.initial_state().extract_word(0, n_));

  // Breadth-first over the states the code can actually reach: generation g
  // only ever sees states produced by g-1 (or the erased state for g = 0).
  // Enumerating blindly would feed encode() wit patterns that are not
  // codewords, which codes are allowed to reject.
  std::vector<std::uint32_t> frontier = {init_};
  BitVec cur(n_);
  for (unsigned g = 0; g < t_; ++g) {
    std::vector<bool> in_next(states_, false);
    std::vector<std::uint32_t> next_frontier;
    for (const std::uint32_t s : frontier) {
      cur.deposit_word(0, n_, s);
      for (std::uint32_t v = 0; v < values_; ++v) {
        const BitVec out = code.encode(v, g, cur);
        const auto w =
            static_cast<std::uint32_t>(out.extract_word(0, n_));
        enc_[(static_cast<std::size_t>(g) * states_ + s) * values_ + v] = w;
        dec_[w] = v;
        if (!in_next[w]) {
          in_next[w] = true;
          next_frontier.push_back(w);
        }
      }
    }
    frontier = std::move(next_frontier);
  }
}

std::shared_ptr<const EncodeLut> EncodeLut::for_code(const WomCodePtr& code) {
  if (code == nullptr || !eligible(*code)) return nullptr;
  static std::mutex mu;
  static std::map<std::string, std::shared_ptr<const EncodeLut>> cache;
  const std::string key = code->name();
  std::lock_guard<std::mutex> lock(mu);
  auto it = cache.find(key);
  if (it == cache.end()) {
    it = cache.emplace(key, std::shared_ptr<const EncodeLut>(
                                new EncodeLut(*code)))
             .first;
  }
  return it->second;
}

}  // namespace wompcm

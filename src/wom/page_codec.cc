#include "wom/page_codec.h"

#include <cassert>
#include <stdexcept>

#include "common/perf.h"

namespace wompcm {

namespace {

BitVec initial_image(const WomCode& code, std::size_t symbols) {
  BitVec img;
  const BitVec init = code.initial_state();
  for (std::size_t s = 0; s < symbols; ++s) img.append(init);
  return img;
}

}  // namespace

PageCodec::PageCodec(WomCodePtr code, std::size_t data_bits)
    : code_(std::move(code)), data_bits_(data_bits) {
  if (code_ == nullptr) throw std::invalid_argument("PageCodec: null code");
  if (data_bits_ == 0 || data_bits_ % code_->data_bits() != 0) {
    throw std::invalid_argument(
        "PageCodec: data_bits must be a positive multiple of the symbol size");
  }
  symbols_ = data_bits_ / code_->data_bits();
  fresh_ = initial_image(*code_, symbols_);
  image_ = fresh_;
  next_ = fresh_;
  lut_ = EncodeLut::for_code(code_);
  // Data packs symbols MSB-first while word views are LSB-first; a k-bit
  // reversal table converts between the two in O(1) per symbol.
  const unsigned k = code_->data_bits();
  bitrev_.resize(std::size_t{1} << k);
  for (std::uint32_t v = 0; v < bitrev_.size(); ++v) {
    std::uint16_t r = 0;
    for (unsigned b = 0; b < k; ++b) {
      r = static_cast<std::uint16_t>(r | (((v >> b) & 1u) << (k - 1 - b)));
    }
    bitrev_[v] = r;
  }
}

void PageCodec::encode_symbols(const BitVec& data) {
  const unsigned k = code_->data_bits();
  const unsigned n = code_->wits();
  if (lut_ != nullptr) {
    for (std::size_t s = 0; s < symbols_; ++s) {
      const unsigned value = bitrev_[data.extract_word(s * k, k)];
      const auto cur =
          static_cast<std::uint32_t>(image_.extract_word(s * n, n));
      next_.deposit_word(s * n, n, lut_->encode(value, generation_, cur));
    }
    return;
  }
  // Wide-code fallback: the virtual encode still allocates its result, but
  // the current-symbol view reuses the scratch buffer.
  for (std::size_t s = 0; s < symbols_; ++s) {
    const unsigned value = bitrev_[data.extract_word(s * k, k)];
    image_.slice_into(s * n, n, sym_);
    const BitVec enc = code_->encode(value, generation_, sym_);
    for (unsigned b = 0; b < n; ++b) next_.set(s * n + b, enc.get(b));
  }
}

PageWriteResult PageCodec::write(const BitVec& data) {
  perf::ScopedCodecTimer codec_timer;
  if (data.size() != data_bits_) {
    throw std::invalid_argument("PageCodec::write: wrong data size");
  }
  PageWriteResult r;
  if (at_rewrite_limit()) {
    // Alpha-write: re-initialize, then program as a fresh first write.
    r.write_class = WriteClass::kAlpha;
    r.set_pulses += image_.set_transitions_to(fresh_);
    r.reset_pulses += image_.reset_transitions_to(fresh_);
    image_.assign_from(fresh_);
    generation_ = 0;
  }
  encode_symbols(data);
  r.set_pulses += image_.set_transitions_to(next_);
  r.reset_pulses += image_.reset_transitions_to(next_);
  // In-budget writes under an inverted code must be RESET-only.
  assert(code_->raises_bits() || r.write_class == WriteClass::kAlpha ||
         image_.set_transitions_to(next_) == 0);
  image_.assign_from(next_);
  ++generation_;
  r.generation_after = generation_;
  return r;
}

void PageCodec::read_into(BitVec& out) const {
  perf::ScopedCodecTimer codec_timer;
  if (generation_ == 0) {
    throw std::logic_error("PageCodec::read: page has no written data");
  }
  const unsigned k = code_->data_bits();
  const unsigned n = code_->wits();
  if (out.size() != data_bits_) out = BitVec(data_bits_);
  for (std::size_t s = 0; s < symbols_; ++s) {
    unsigned value;
    if (lut_ != nullptr) {
      value = lut_->decode(
          static_cast<std::uint32_t>(image_.extract_word(s * n, n)));
    } else {
      image_.slice_into(s * n, n, sym_);
      value = code_->decode(sym_);
    }
    out.deposit_word(s * k, k, bitrev_[value]);
  }
}

BitVec PageCodec::read() const {
  BitVec out;
  read_into(out);
  return out;
}

std::size_t PageCodec::refresh() {
  perf::ScopedCodecTimer codec_timer;
  const std::size_t sets = image_.set_transitions_to(fresh_);
  image_.assign_from(fresh_);
  generation_ = 0;
  return sets;
}

}  // namespace wompcm

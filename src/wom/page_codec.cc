#include "wom/page_codec.h"

#include <cassert>
#include <stdexcept>

namespace wompcm {

namespace {

BitVec initial_image(const WomCode& code, std::size_t symbols) {
  BitVec img;
  const BitVec init = code.initial_state();
  for (std::size_t s = 0; s < symbols; ++s) img.append(init);
  return img;
}

}  // namespace

PageCodec::PageCodec(WomCodePtr code, std::size_t data_bits)
    : code_(std::move(code)), data_bits_(data_bits) {
  if (code_ == nullptr) throw std::invalid_argument("PageCodec: null code");
  if (data_bits_ == 0 || data_bits_ % code_->data_bits() != 0) {
    throw std::invalid_argument(
        "PageCodec: data_bits must be a positive multiple of the symbol size");
  }
  symbols_ = data_bits_ / code_->data_bits();
  image_ = initial_image(*code_, symbols_);
}

PageWriteResult PageCodec::write(const BitVec& data) {
  if (data.size() != data_bits_) {
    throw std::invalid_argument("PageCodec::write: wrong data size");
  }
  PageWriteResult r;
  const unsigned k = code_->data_bits();
  const unsigned n = code_->wits();

  if (at_rewrite_limit()) {
    // Alpha-write: re-initialize, then program as a fresh first write.
    r.write_class = WriteClass::kAlpha;
    const BitVec fresh = initial_image(*code_, symbols_);
    r.set_pulses += image_.set_transitions_to(fresh);
    r.reset_pulses += image_.reset_transitions_to(fresh);
    image_ = fresh;
    generation_ = 0;
  }

  BitVec next(image_.size());
  for (std::size_t s = 0; s < symbols_; ++s) {
    unsigned value = 0;
    for (unsigned b = 0; b < k; ++b) {
      value = (value << 1) | static_cast<unsigned>(data.get(s * k + b));
    }
    const BitVec cur = image_.slice(s * n, n);
    const BitVec enc = code_->encode(value, generation_, cur);
    for (unsigned b = 0; b < n; ++b) next.set(s * n + b, enc.get(b));
  }
  r.set_pulses += image_.set_transitions_to(next);
  r.reset_pulses += image_.reset_transitions_to(next);
  // In-budget writes under an inverted code must be RESET-only.
  assert(code_->raises_bits() || r.write_class == WriteClass::kAlpha ||
         image_.set_transitions_to(next) == 0);
  image_ = next;
  ++generation_;
  r.generation_after = generation_;
  return r;
}

BitVec PageCodec::read() const {
  if (generation_ == 0) {
    throw std::logic_error("PageCodec::read: page has no written data");
  }
  const unsigned k = code_->data_bits();
  const unsigned n = code_->wits();
  BitVec data(data_bits_);
  for (std::size_t s = 0; s < symbols_; ++s) {
    const unsigned value = code_->decode(image_.slice(s * n, n));
    for (unsigned b = 0; b < k; ++b) {
      data.set(s * k + b, (value >> (k - 1 - b)) & 1);
    }
  }
  return data;
}

std::size_t PageCodec::refresh() {
  const BitVec fresh = initial_image(*code_, symbols_);
  const std::size_t sets = image_.set_transitions_to(fresh);
  image_ = fresh;
  generation_ = 0;
  return sets;
}

}  // namespace wompcm

#include "wom/page_codec.h"

#include <stdexcept>
#include <utility>

#include "common/perf.h"
#include "wom/sectioned_codec.h"

namespace wompcm {

PageCodec::PageCodec(WomCodePtr code, std::size_t data_bits)
    : code_(code) {
  if (code_ == nullptr) throw std::invalid_argument("PageCodec: null code");
  block_ = std::make_unique<SectionedCodec>(std::move(code));
  data_bits_ = data_bits;
  if (data_bits_ == 0 || data_bits_ % block_->section_data_bits() != 0) {
    throw std::invalid_argument(
        "PageCodec: data_bits must be a positive multiple of the symbol size");
  }
  sections_ = data_bits_ / block_->section_data_bits();
  gens_.assign(sections_, 0);
  image_ = BitVec(sections_ * block_->section_wits());
  for (std::size_t s = 0; s < sections_; ++s) block_->erase_section(image_, s);
}

PageCodec::PageCodec(BlockCodecPtr block, std::size_t data_bits)
    : block_(std::move(block)), data_bits_(data_bits) {
  if (block_ == nullptr) throw std::invalid_argument("PageCodec: null code");
  if (data_bits_ == 0 || data_bits_ % block_->section_data_bits() != 0) {
    throw std::invalid_argument(
        "PageCodec: data_bits must be a positive multiple of the symbol size");
  }
  sections_ = data_bits_ / block_->section_data_bits();
  gens_.assign(sections_, 0);
  image_ = BitVec(sections_ * block_->section_wits());
  for (std::size_t s = 0; s < sections_; ++s) block_->erase_section(image_, s);
}

PageWriteResult PageCodec::write(const BitVec& data) {
  perf::ScopedCodecTimer codec_timer;
  if (data.size() != data_bits_) {
    throw std::invalid_argument("PageCodec::write: wrong data size");
  }
  PageWriteResult r;
  for (std::size_t s = 0; s < sections_; ++s) {
    const SectionWrite w = block_->write_section(image_, data, s, &gens_[s]);
    if (w.alpha) r.write_class = WriteClass::kAlpha;
    r.set_pulses += w.set_pulses;
    r.reset_pulses += w.reset_pulses;
  }
  r.generation_after = gens_[0];
  if (block_->lut_backed()) {
    ++lut_hits_;
  } else {
    ++lut_fallbacks_;
  }
  return r;
}

void PageCodec::read_into(BitVec& out) const {
  perf::ScopedCodecTimer codec_timer;
  if (generation() == 0) {
    throw std::logic_error("PageCodec::read: page has no written data");
  }
  if (out.size() != data_bits_) out = BitVec(data_bits_);
  for (std::size_t s = 0; s < sections_; ++s) {
    block_->read_section(image_, s, gens_[s], out);
  }
}

BitVec PageCodec::read() const {
  BitVec out;
  read_into(out);
  return out;
}

std::size_t PageCodec::refresh() {
  perf::ScopedCodecTimer codec_timer;
  std::size_t sets = 0;
  for (std::size_t s = 0; s < sections_; ++s) {
    sets += block_->erase_section(image_, s).set_pulses;
    gens_[s] = 0;
  }
  return sets;
}

}  // namespace wompcm

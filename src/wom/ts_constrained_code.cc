#include "wom/ts_constrained_code.h"

#include <bit>
#include <cassert>
#include <stdexcept>

namespace wompcm {

namespace {

inline unsigned word_popcount(std::uint64_t w) {
  return static_cast<unsigned>(std::popcount(w));
}

}  // namespace

TsConstrainedCodec::TsConstrainedCodec(WomCodePtr base, unsigned replicas)
    : base_(std::move(base)), replicas_(replicas) {
  if (base_ == nullptr) {
    throw std::invalid_argument("TsConstrainedCodec: null base code");
  }
  if (replicas_ < kMinReplicas || replicas_ > kMaxReplicas) {
    throw std::invalid_argument(
        "TsConstrainedCodec: replicas must be in [2, 8]");
  }
  lut_ = EncodeLut::for_code(base_);
  replica_wits_ = kGroup * base_->wits();
  const BitVec sym_init = base_->initial_state();
  for (unsigned i = 0; i < replicas_ * kGroup; ++i) init_.append(sym_init);
  const unsigned k = base_->data_bits();
  bitrev_.resize(std::size_t{1} << k);
  for (std::uint32_t v = 0; v < bitrev_.size(); ++v) {
    std::uint16_t r = 0;
    for (unsigned b = 0; b < k; ++b) {
      r = static_cast<std::uint16_t>(r | (((v >> b) & 1u) << (k - 1 - b)));
    }
    bitrev_[v] = r;
  }
}

std::string TsConstrainedCodec::name() const {
  // "tsc-<base>x<R>" with any "-inv" of the base kept as the final suffix,
  // matching the registry's parse ("tsc-rs23x4-inv" = 4x inverted rs23).
  std::string stem = base_->name();
  std::string suffix;
  if (stem.size() > 4 && stem.compare(stem.size() - 4, 4, "-inv") == 0) {
    suffix = "-inv";
    stem.resize(stem.size() - 4);
  }
  return "tsc-" + stem + "x" + std::to_string(replicas_) + suffix;
}

SectionWrite TsConstrainedCodec::erase_section(BitVec& image,
                                               std::size_t section) const {
  const unsigned n = section_wits();
  const std::size_t base_off = section * n;
  SectionWrite r;
  for (unsigned off = 0; off < n; off += 64) {
    const unsigned w = n - off < 64 ? n - off : 64;
    const std::uint64_t cur = image.extract_word(base_off + off, w);
    const std::uint64_t fresh = init_.extract_word(off, w);
    r.set_pulses += word_popcount(fresh & ~cur);
    r.reset_pulses += word_popcount(cur & ~fresh);
    image.deposit_word(base_off + off, w, fresh);
  }
  return r;
}

SectionWrite TsConstrainedCodec::write_section(BitVec& image,
                                               const BitVec& data,
                                               std::size_t section,
                                               unsigned* generation) {
  const unsigned k = base_->data_bits();
  const unsigned n = base_->wits();
  const unsigned t_base = base_->max_writes();
  SectionWrite r;
  if (*generation == max_writes()) {
    r = erase_section(image, section);
    r.alpha = true;
    *generation = 0;
  }
  // Writes rotate through the replicas: replica q absorbs base generations
  // [0, t_base) while every other replica's cells stay untouched.
  const unsigned q = *generation / t_base;
  const unsigned base_gen = *generation % t_base;
  const std::size_t wit_off =
      section * section_wits() + static_cast<std::size_t>(q) * replica_wits_;
  const std::size_t data_off = section * section_data_bits();
  std::size_t encode_sets = 0;
  for (unsigned g = 0; g < kGroup; ++g) {
    const unsigned value = bitrev_[data.extract_word(data_off + g * k, k)];
    const std::size_t at = wit_off + g * n;
    if (lut_ != nullptr) {
      const auto cur = static_cast<std::uint32_t>(image.extract_word(at, n));
      const std::uint32_t next = lut_->encode(value, base_gen, cur);
      encode_sets += word_popcount(next & ~cur);
      r.reset_pulses += word_popcount(cur & ~std::uint64_t{next});
      image.deposit_word(at, n, next);
    } else {
      image.slice_into(at, n, sym_);
      base_->encode_into(value, base_gen, sym_, enc_);
      for (unsigned off = 0; off < n; off += 64) {
        const unsigned w = n - off < 64 ? n - off : 64;
        const std::uint64_t cur = image.extract_word(at + off, w);
        const std::uint64_t next = enc_.extract_word(off, w);
        encode_sets += word_popcount(next & ~cur);
        r.reset_pulses += word_popcount(cur & ~next);
        image.deposit_word(at + off, w, next);
      }
    }
  }
  r.set_pulses += encode_sets;
  assert(base_->raises_bits() || encode_sets == 0);
  (void)encode_sets;
  ++*generation;
  return r;
}

void TsConstrainedCodec::read_section(const BitVec& image,
                                      std::size_t section, unsigned generation,
                                      BitVec& data) const {
  if (generation == 0) {
    throw std::logic_error(
        "TsConstrainedCodec::read_section: section has no written data");
  }
  const unsigned k = base_->data_bits();
  const unsigned n = base_->wits();
  // The live replica is the one the most recent write landed in.
  const unsigned q = (generation - 1) / base_->max_writes();
  const std::size_t wit_off =
      section * section_wits() + static_cast<std::size_t>(q) * replica_wits_;
  const std::size_t data_off = section * section_data_bits();
  for (unsigned g = 0; g < kGroup; ++g) {
    const std::size_t at = wit_off + g * n;
    unsigned value;
    if (lut_ != nullptr) {
      value = lut_->decode(static_cast<std::uint32_t>(image.extract_word(at, n)));
    } else {
      image.slice_into(at, n, sym_);
      value = base_->decode(sym_);
    }
    data.deposit_word(data_off + g * k, k, bitrev_[value]);
  }
}

}  // namespace wompcm

#include "wom/sectioned_codec.h"

#include <bit>
#include <cassert>
#include <stdexcept>

namespace wompcm {

namespace {

inline unsigned word_popcount(std::uint64_t w) {
  return static_cast<unsigned>(std::popcount(w));
}

}  // namespace

SectionedCodec::SectionedCodec(WomCodePtr code) : code_(std::move(code)) {
  if (code_ == nullptr) {
    throw std::invalid_argument("SectionedCodec: null code");
  }
  lut_ = EncodeLut::for_code(code_);
  init_ = code_->initial_state();
  // Data packs symbols MSB-first while word views are LSB-first; a k-bit
  // reversal table converts between the two in O(1) per section.
  const unsigned k = code_->data_bits();
  bitrev_.resize(std::size_t{1} << k);
  for (std::uint32_t v = 0; v < bitrev_.size(); ++v) {
    std::uint16_t r = 0;
    for (unsigned b = 0; b < k; ++b) {
      r = static_cast<std::uint16_t>(r | (((v >> b) & 1u) << (k - 1 - b)));
    }
    bitrev_[v] = r;
  }
}

SectionWrite SectionedCodec::erase_section(BitVec& image,
                                           std::size_t section) const {
  const unsigned n = code_->wits();
  const std::size_t base = section * n;
  SectionWrite r;
  for (unsigned off = 0; off < n; off += 64) {
    const unsigned w = n - off < 64 ? n - off : 64;
    const std::uint64_t cur = image.extract_word(base + off, w);
    const std::uint64_t fresh = init_.extract_word(off, w);
    r.set_pulses += word_popcount(fresh & ~cur);
    r.reset_pulses += word_popcount(cur & ~fresh);
    image.deposit_word(base + off, w, fresh);
  }
  return r;
}

SectionWrite SectionedCodec::write_section(BitVec& image, const BitVec& data,
                                           std::size_t section,
                                           unsigned* generation) {
  const unsigned k = code_->data_bits();
  const unsigned n = code_->wits();
  SectionWrite r;
  if (*generation == code_->max_writes()) {
    // Alpha-write: re-initialize, then program as a fresh first write.
    r = erase_section(image, section);
    r.alpha = true;
    *generation = 0;
  }
  const unsigned value =
      bitrev_[data.extract_word(section * k, k)];
  std::size_t encode_sets = 0;
  if (lut_ != nullptr) {
    const auto cur =
        static_cast<std::uint32_t>(image.extract_word(section * n, n));
    const std::uint32_t next = lut_->encode(value, *generation, cur);
    encode_sets = word_popcount(next & ~cur);
    r.reset_pulses += word_popcount(cur & ~std::uint64_t{next});
    image.deposit_word(section * n, n, next);
  } else {
    // Wide-code path: virtual encode into member scratch, then a chunked
    // word loop counts pulses and writes the section back.
    image.slice_into(section * n, n, sym_);
    code_->encode_into(value, *generation, sym_, enc_);
    for (unsigned off = 0; off < n; off += 64) {
      const unsigned w = n - off < 64 ? n - off : 64;
      const std::uint64_t cur = image.extract_word(section * n + off, w);
      const std::uint64_t next = enc_.extract_word(off, w);
      encode_sets += word_popcount(next & ~cur);
      r.reset_pulses += word_popcount(cur & ~next);
      image.deposit_word(section * n + off, w, next);
    }
  }
  r.set_pulses += encode_sets;
  // In-budget writes under an inverted code must be RESET-only.
  assert(code_->raises_bits() || encode_sets == 0);
  (void)encode_sets;
  ++*generation;
  return r;
}

void SectionedCodec::read_section(const BitVec& image, std::size_t section,
                                  unsigned generation, BitVec& data) const {
  (void)generation;  // symbol decode is generation oblivious
  const unsigned k = code_->data_bits();
  const unsigned n = code_->wits();
  unsigned value;
  if (lut_ != nullptr) {
    value = lut_->decode(
        static_cast<std::uint32_t>(image.extract_word(section * n, n)));
  } else {
    image.slice_into(section * n, n, sym_);
    value = code_->decode(sym_);
  }
  data.deposit_word(section * k, k, bitrev_[value]);
}

}  // namespace wompcm

// The <2^2>^2/3 Rivest-Shamir WOM-code (Table 1 of the paper).
//
// Two data bits are stored in three wits and can be written twice. The first
// write of value x stores pattern r(x); a second write of y != x stores
// r'(y), the bitwise complement of r(y). Decoding is by XOR: for a pattern
// "abc", u = b ^ c and v = a ^ c recover the value x = "uv".
#pragma once

#include <array>

#include "wom/wom_code.h"

namespace wompcm {

class RivestShamirCode final : public WomCode {
 public:
  RivestShamirCode() = default;

  std::string name() const override { return "rs23"; }
  unsigned data_bits() const override { return 2; }
  unsigned wits() const override { return 3; }
  unsigned max_writes() const override { return 2; }

  BitVec initial_state() const override { return BitVec(3, false); }
  bool raises_bits() const override { return true; }

  BitVec encode(unsigned value, unsigned generation,
                const BitVec& current) const override;
  unsigned decode(const BitVec& wits) const override;

  // The raw table patterns, exposed for tests and the Table 1 bench.
  // first_pattern(x) == r(x); second_pattern(x) == r'(x).
  static BitVec first_pattern(unsigned value);
  static BitVec second_pattern(unsigned value);
};

}  // namespace wompcm

// Brute-force search for small <2^k>^t/n WOM-codes.
//
// Enumerates per-generation pattern tables by depth-first search under the
// WOM validity constraints (monotone cross-generation transitions, unique
// decode). Practical for symbol sizes up to ~6 wits; used to discover codes
// beyond the hand-built families (e.g. a 2-bit 3-write code) and as a test
// oracle for the validation logic.
#pragma once

#include <cstdint>
#include <optional>

#include "wom/tabular_code.h"

namespace wompcm {

struct CodeSearchParams {
  unsigned data_bits = 2;
  unsigned wits = 3;
  unsigned writes = 2;
  // DFS node budget; the search gives up (returns nullopt) once exhausted.
  std::uint64_t max_nodes = 50'000'000;
};

struct CodeSearchResult {
  WomCodePtr code;           // a valid TabularCode
  std::uint64_t nodes = 0;   // DFS nodes visited
};

// Returns a valid code with the requested parameters, or nullopt if none
// exists (or the node budget ran out).
std::optional<CodeSearchResult> search_wom_code(const CodeSearchParams& p);

}  // namespace wompcm

#include "wom/rs_code.h"

#include <cassert>
#include <stdexcept>

namespace wompcm {

namespace {

// Table 1 of the paper: value -> first write pattern "abc".
// Index 0 of the BitVec is wit 'a'.
constexpr std::array<std::array<bool, 3>, 4> kFirst = {{
    {false, false, false},  // 00 -> 000
    {true, false, false},   // 01 -> 100
    {false, true, false},   // 10 -> 010
    {false, false, true},   // 11 -> 001
}};

BitVec make_pattern(const std::array<bool, 3>& bits) {
  BitVec v(3);
  for (std::size_t i = 0; i < 3; ++i) v.set(i, bits[i]);
  return v;
}

}  // namespace

BitVec RivestShamirCode::first_pattern(unsigned value) {
  assert(value < 4);
  return make_pattern(kFirst[value]);
}

BitVec RivestShamirCode::second_pattern(unsigned value) {
  // r'(x) is the bitwise complement of r(x).
  return ~first_pattern(value);
}

BitVec RivestShamirCode::encode(unsigned value, unsigned generation,
                                const BitVec& current) const {
  if (value >= 4) throw std::invalid_argument("rs23: value out of range");
  if (generation >= max_writes()) {
    throw std::invalid_argument("rs23: generation exceeds rewrite limit");
  }
  if (generation == 0) {
    // First write into an erased symbol.
    assert(current == initial_state());
    return first_pattern(value);
  }
  // Second write. Rewriting the same value keeps the wits unchanged (the
  // r' pattern of the same value is not reachable monotonically, and no
  // change is needed anyway).
  if (decode(current) == value) return current;
  return second_pattern(value);
}

unsigned RivestShamirCode::decode(const BitVec& w) const {
  if (w.size() != 3) throw std::invalid_argument("rs23: expected 3 wits");
  const bool a = w.get(0);
  const bool b = w.get(1);
  const bool c = w.get(2);
  const unsigned u = static_cast<unsigned>(b ^ c);
  const unsigned v = static_cast<unsigned>(a ^ c);
  return (u << 1) | v;
}

}  // namespace wompcm

// Time-space constrained WOM codec (after Qin, Yaakobi & Siegel, "Time-
// space constrained codes for phase-change memories").
//
// Bounds the per-cell write frequency by time-multiplexing R replicas of a
// base WOM code: each section holds R physical copies of a 16-symbol group,
// and successive writes rotate through the replicas — writes
// [q*t_base, (q+1)*t_base) land in replica q, so any individual cell is
// programmed during at most a 1/R fraction of the section's life. That
// budget is surfaced to the fault model as wear_bound() = 1/R: the same
// write traffic ages each cell R times slower, trading capacity (overhead
// grows R-fold) for endurance — the paper's space axis of the time-space
// constraint.
//
// The rotation also multiplies the rewrite budget: a section survives
// t = R * t_base writes before an alpha re-initialization, so with an
// inverted base code the RESET-only run between alphas grows from
// t_base - 1 to R * t_base - 1.
//
// Decode is generation-AWARE — the live replica is (writes-1) / t_base —
// which is exactly what the whole-page WomCode interface cannot express and
// the BlockCodec seam exists to carry. Encode per base symbol reuses the
// base code's EncodeLut when one exists.
#pragma once

#include <cstdint>
#include <vector>

#include "wom/block_codec.h"
#include "wom/encode_lut.h"
#include "wom/wom_code.h"

namespace wompcm {

class TsConstrainedCodec final : public BlockCodec {
 public:
  static constexpr unsigned kMinReplicas = 2;
  static constexpr unsigned kMaxReplicas = 8;
  // Base symbols grouped per section; keeps sections line-divisible for
  // every registry base code (16 * k_base data bits per section).
  static constexpr unsigned kGroup = 16;

  TsConstrainedCodec(WomCodePtr base, unsigned replicas);

  std::string name() const override;
  unsigned section_data_bits() const override {
    return kGroup * base_->data_bits();
  }
  unsigned section_wits() const override { return replicas_ * replica_wits_; }
  unsigned max_writes() const override {
    return replicas_ * base_->max_writes();
  }
  bool raises_bits() const override { return base_->raises_bits(); }
  bool lut_backed() const override { return lut_ != nullptr; }
  double wear_bound() const override { return 1.0 / replicas_; }

  SectionWrite erase_section(BitVec& image,
                             std::size_t section) const override;
  SectionWrite write_section(BitVec& image, const BitVec& data,
                             std::size_t section,
                             unsigned* generation) override;
  void read_section(const BitVec& image, std::size_t section,
                    unsigned generation, BitVec& data) const override;

  const WomCodePtr& base() const { return base_; }
  unsigned replicas() const { return replicas_; }

 private:
  WomCodePtr base_;
  std::shared_ptr<const EncodeLut> lut_;  // base-code table, if narrow enough
  unsigned replicas_ = 0;
  unsigned replica_wits_ = 0;             // kGroup * base wits
  BitVec init_;                           // one section's erased wit state
  mutable BitVec sym_;                    // scratch: one symbol (virtual)
  BitVec enc_;                            // scratch: encoded wits (virtual)
  std::vector<std::uint16_t> bitrev_;     // base-k MSB-first <-> word
};

}  // namespace wompcm

#include "wom/inverted_code.h"

#include <cassert>
#include <stdexcept>

namespace wompcm {

InvertedCode::InvertedCode(WomCodePtr base) : base_(std::move(base)) {
  if (base_ == nullptr) {
    throw std::invalid_argument("InvertedCode: null base code");
  }
  if (!base_->raises_bits()) {
    throw std::invalid_argument("InvertedCode: base code is already inverted");
  }
}

WomCodePtr invert(WomCodePtr base) {
  assert(base != nullptr);
  if (!base->raises_bits()) return base;
  return std::make_shared<InvertedCode>(std::move(base));
}

}  // namespace wompcm

// BlockCodec adapter over any WomCode: one symbol per section.
//
// This is the streaming form of the historical PageCodec symbol loop and is
// bit-identical to it: the per-section SET/RESET pulse counts sum to exactly
// the whole-page transition counts the old page-level accounting produced
// (sections occupy disjoint bit ranges), and alpha re-initialization happens
// per section at the same generations the whole-page limit used to trigger
// it (full-page writes keep every section's generation in lockstep).
//
// Codes narrow enough for an EncodeLut keep the two-lookup fast path, now
// applied per section; wide codes stream through the virtual encode path
// with member scratch buffers so the steady state allocates only if the
// wrapped code's encode_into does.
#pragma once

#include <cstdint>
#include <vector>

#include "wom/block_codec.h"
#include "wom/encode_lut.h"
#include "wom/wom_code.h"

namespace wompcm {

class SectionedCodec final : public BlockCodec {
 public:
  explicit SectionedCodec(WomCodePtr code);

  std::string name() const override { return code_->name(); }
  unsigned section_data_bits() const override { return code_->data_bits(); }
  unsigned section_wits() const override { return code_->wits(); }
  unsigned max_writes() const override { return code_->max_writes(); }
  bool raises_bits() const override { return code_->raises_bits(); }
  bool lut_backed() const override { return lut_ != nullptr; }

  SectionWrite erase_section(BitVec& image,
                             std::size_t section) const override;
  SectionWrite write_section(BitVec& image, const BitVec& data,
                             std::size_t section,
                             unsigned* generation) override;
  void read_section(const BitVec& image, std::size_t section,
                    unsigned generation, BitVec& data) const override;

  const WomCodePtr& code() const { return code_; }

 private:
  WomCodePtr code_;
  std::shared_ptr<const EncodeLut> lut_;  // nullptr for wide codes
  BitVec init_;                           // one symbol's erased wit state
  mutable BitVec sym_;                    // scratch: current wits (virtual)
  BitVec enc_;                            // scratch: encoded wits (virtual)
  std::vector<std::uint16_t> bitrev_;     // k-bit MSB-first <-> word reversal
};

}  // namespace wompcm

#include "wom/polar_code.h"

#include <bit>
#include <stdexcept>

namespace wompcm {

namespace {

// Syndrome column of cell j: bit i (< m) is set iff index j has bit i
// clear; the all-ones kernel row contributes bit m for every cell.
inline unsigned column_vector(unsigned j, unsigned m, unsigned n) {
  return (~j & (n - 1)) | (1u << m);
}

}  // namespace

PolarWomCode::PolarWomCode(unsigned m, bool inverted)
    : m_(m), inverted_(inverted) {
  if (m < kMinM || m > kMaxM) {
    throw std::invalid_argument("PolarWomCode: m must be in [4, 8]");
  }
  n_ = 1u << m_;
  k_ = m_ + 1;
  // Each write programs at most k cells; the syndrome former keeps full
  // rank while fewer than d_min = 2^(m-1) cells are programmed.
  t_ = ((1u << (m_ - 1)) - 1) / k_ + 1;
  words_ = (n_ + 63) / 64;
  for (unsigned i = 0; i < k_; ++i) {
    for (unsigned j = 0; j < n_; ++j) {
      if ((column_vector(j, m_, n_) >> i) & 1u) {
        mask_[i][j / 64] |= std::uint64_t{1} << (j % 64);
      }
    }
  }
}

std::string PolarWomCode::name() const {
  std::string s = "polar-m" + std::to_string(m_);
  if (inverted_) s += "-inv";
  return s;
}

unsigned PolarWomCode::syndrome(const BitVec& wits,
                                std::uint64_t* prog) const {
  for (unsigned w = 0; w < words_; ++w) {
    const unsigned off = w * 64;
    const unsigned len = n_ - off < 64 ? n_ - off : 64;
    std::uint64_t bits = wits.extract_word(off, len);
    if (inverted_) {
      bits = ~bits;
      if (len < 64) bits &= (std::uint64_t{1} << len) - 1;
    }
    prog[w] = bits;
  }
  unsigned s = 0;
  for (unsigned i = 0; i < k_; ++i) {
    unsigned parity = 0;
    for (unsigned w = 0; w < words_; ++w) {
      parity ^= static_cast<unsigned>(std::popcount(prog[w] & mask_[i][w]));
    }
    s |= (parity & 1u) << i;
  }
  return s;
}

unsigned PolarWomCode::decode(const BitVec& wits) const {
  if (wits.size() != n_) {
    throw std::invalid_argument("PolarWomCode::decode: wrong wit count");
  }
  std::uint64_t prog[kMaxWords];
  return syndrome(wits, prog);
}

void PolarWomCode::encode_into(unsigned value, unsigned generation,
                               const BitVec& current, BitVec& out) const {
  if (value >= values()) {
    throw std::invalid_argument("PolarWomCode::encode: value out of range");
  }
  if (generation >= t_) {
    throw std::invalid_argument("PolarWomCode::encode: generation exhausted");
  }
  if (current.size() != n_) {
    throw std::invalid_argument("PolarWomCode::encode: wrong wit count");
  }
  std::uint64_t prog[kMaxWords];
  const unsigned residual = value ^ syndrome(current, prog);
  out.assign_from(current);
  if (residual == 0) return;  // rewriting the stored value keeps the wits

  // Successive elimination over the unprogrammed cells in index order:
  // build at most k pivots, each remembering the XOR-set of founding cells
  // it is made of, so the correction set below touches at most k cells.
  unsigned piv_vec[kMaxK] = {};
  std::uint64_t piv_cells[kMaxK][kMaxWords] = {};
  bool piv_used[kMaxK] = {};
  unsigned found = 0;
  for (unsigned j = 0; j < n_ && found < k_; ++j) {
    if ((prog[j / 64] >> (j % 64)) & 1u) continue;  // already programmed
    unsigned v = column_vector(j, m_, n_);
    std::uint64_t cells[kMaxWords] = {};
    cells[j / 64] = std::uint64_t{1} << (j % 64);
    for (unsigned b = 0; b < k_ && v != 0; ++b) {
      if (((v >> b) & 1u) == 0) continue;
      if (piv_used[b]) {
        v ^= piv_vec[b];
        for (unsigned w = 0; w < words_; ++w) cells[w] ^= piv_cells[b][w];
      } else {
        piv_vec[b] = v;
        for (unsigned w = 0; w < words_; ++w) piv_cells[b][w] = cells[w];
        piv_used[b] = true;
        ++found;
        break;
      }
    }
  }

  // Express the residual syndrome in the pivot basis; each pivot's lowest
  // set bit is its slot, so one ascending pass clears the residual.
  std::uint64_t delta[kMaxWords] = {};
  unsigned r = residual;
  for (unsigned b = 0; b < k_; ++b) {
    if (((r >> b) & 1u) == 0) continue;
    if (!piv_used[b]) {
      // Unreachable within the write budget: fewer than d_min cells are
      // programmed, so the available columns span the syndrome space.
      throw std::logic_error("PolarWomCode::encode: block exhausted");
    }
    r ^= piv_vec[b];
    for (unsigned w = 0; w < words_; ++w) delta[w] ^= piv_cells[b][w];
  }

  // Program the correction set in the code's monotone direction.
  for (unsigned w = 0; w < words_; ++w) {
    if (delta[w] == 0) continue;
    const unsigned off = w * 64;
    const unsigned len = n_ - off < 64 ? n_ - off : 64;
    std::uint64_t bits = out.extract_word(off, len);
    bits = inverted_ ? bits & ~delta[w] : bits | delta[w];
    out.deposit_word(off, len, bits);
  }
}

BitVec PolarWomCode::encode(unsigned value, unsigned generation,
                            const BitVec& current) const {
  BitVec out;
  encode_into(value, generation, current, out);
  return out;
}

}  // namespace wompcm

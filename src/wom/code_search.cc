#include "wom/code_search.h"

#include <algorithm>
#include <bit>
#include <vector>

namespace wompcm {

namespace {

using Mask = std::uint32_t;

struct Searcher {
  unsigned k, n, t, v;
  std::uint64_t budget;
  std::uint64_t nodes = 0;
  // assignment[g * v + x] = chosen mask; filled in DFS order.
  std::vector<Mask> assignment;
  // candidate masks ordered by popcount (prefer cheap early writes).
  std::vector<Mask> ordered_masks;
  bool found = false;

  bool decode_consistent(unsigned upto, Mask m, unsigned x) const {
    for (unsigned i = 0; i < upto; ++i) {
      if (assignment[i] == m && (i % v) != x) return false;
    }
    return true;
  }

  bool dfs(unsigned slot) {
    if (++nodes > budget) return false;
    if (slot == t * v) {
      found = true;
      return true;
    }
    const unsigned g = slot / v;
    const unsigned x = slot % v;
    for (const Mask m : ordered_masks) {
      // Distinct within the generation.
      bool dup = false;
      for (unsigned y = 0; y < x; ++y) {
        if (assignment[g * v + y] == m) {
          dup = true;
          break;
        }
      }
      if (dup) continue;
      // Monotone from every earlier generation's pattern of another value.
      bool ok = true;
      for (unsigned g1 = 0; g1 < g && ok; ++g1) {
        for (unsigned y = 0; y < v; ++y) {
          if (y == x) continue;
          if ((assignment[g1 * v + y] & ~m) != 0) {
            ok = false;
            break;
          }
        }
      }
      if (!ok) continue;
      if (!decode_consistent(slot, m, x)) continue;
      assignment[slot] = m;
      if (dfs(slot + 1)) return true;
      if (nodes > budget) return false;
    }
    return false;
  }
};

}  // namespace

std::optional<CodeSearchResult> search_wom_code(const CodeSearchParams& p) {
  if (p.data_bits == 0 || p.data_bits > 4 || p.wits == 0 || p.wits > 20 ||
      p.writes == 0) {
    return std::nullopt;
  }
  Searcher s;
  s.k = p.data_bits;
  s.n = p.wits;
  s.t = p.writes;
  s.v = 1u << p.data_bits;
  s.budget = p.max_nodes;
  s.assignment.assign(static_cast<std::size_t>(s.t) * s.v, 0);
  s.ordered_masks.resize(std::size_t{1} << s.n);
  for (Mask m = 0; m < s.ordered_masks.size(); ++m) s.ordered_masks[m] = m;
  std::stable_sort(s.ordered_masks.begin(), s.ordered_masks.end(),
                   [](Mask a, Mask b) {
                     return std::popcount(a) < std::popcount(b);
                   });

  if (!s.dfs(0)) return std::nullopt;

  // Convert the assignment into BitVec tables and a TabularCode.
  std::vector<std::vector<BitVec>> table(s.t);
  for (unsigned g = 0; g < s.t; ++g) {
    for (unsigned x = 0; x < s.v; ++x) {
      BitVec pat(s.n);
      const Mask m = s.assignment[g * s.v + x];
      for (unsigned b = 0; b < s.n; ++b) pat.set(b, (m >> b) & 1);
      table[g].push_back(std::move(pat));
    }
  }
  CodeSearchResult r;
  r.nodes = s.nodes;
  r.code = std::make_shared<TabularCode>(
      "search-k" + std::to_string(s.k) + "n" + std::to_string(s.n) + "t" +
          std::to_string(s.t),
      s.k, std::move(table));
  return r;
}

}  // namespace wompcm

// Polar-kernel WOM code (after Burshtein & Strugatski, "Polar write-once-
// memory codes").
//
// The code works over one length n = 2^m cell block per symbol. Its data map
// is a syndrome (coset) code built from the m+1 highest-weight rows of the
// polar kernel G_n = F^{(x)m}, F = [[1,0],[1,1]] — the rows with Hamming
// weight >= 2^(m-1), i.e. the first-order Reed-Muller subcode polar codes
// freeze last. A stored block's value is the k = m+1 bit syndrome of its
// programmed-cell set; writing a new value programs (in the code's monotone
// direction) a correction set found by successive elimination over the
// still-unprogrammed cells, mirroring the successive-cancellation schedule:
// cells are consumed in natural index order and each data bit is satisfied
// by the first available pivot.
//
// Because the syndrome former has minimum distance 2^(m-1) and each write
// programs at most k cells, the code guarantees
//     t = (2^(m-1) - 1) / k + 1
// writes per block: polar-m7 stores 8 bits in 128 cells for 8 writes. The
// rate per write is low but the *total* rate t*k/n approaches the WOM
// capacity region as m grows, which is the frontier the paper's hand-built
// <2^2>^2/3 tables cannot reach.
//
// Block lengths blow past EncodeLut::kMaxWits, so this family always takes
// the streaming encode path; encode_into is allocation-free (fixed scratch
// for m <= 8). The inverted (RESET-only) variant is native — a flag flips
// the programming direction — so no wrapper allocation sneaks into the hot
// path.
#pragma once

#include <cstdint>

#include "wom/wom_code.h"

namespace wompcm {

class PolarWomCode final : public WomCode {
 public:
  static constexpr unsigned kMinM = 4;
  static constexpr unsigned kMaxM = 8;

  // n = 2^m cells, k = m+1 data bits; `inverted` writes lower bits (the
  // PCM-friendly direction).
  explicit PolarWomCode(unsigned m, bool inverted = false);

  std::string name() const override;
  unsigned data_bits() const override { return k_; }
  unsigned wits() const override { return n_; }
  unsigned max_writes() const override { return t_; }
  BitVec initial_state() const override { return BitVec(n_, inverted_); }
  bool raises_bits() const override { return !inverted_; }

  BitVec encode(unsigned value, unsigned generation,
                const BitVec& current) const override;
  void encode_into(unsigned value, unsigned generation, const BitVec& current,
                   BitVec& out) const override;
  unsigned decode(const BitVec& wits) const override;

 private:
  static constexpr unsigned kMaxWords = (1u << kMaxM) / 64;  // 4
  static constexpr unsigned kMaxK = kMaxM + 1;

  // Packs the programmed-cell indicator of `wits` into `prog` and returns
  // the k-bit syndrome.
  unsigned syndrome(const BitVec& wits, std::uint64_t* prog) const;

  unsigned m_ = 0;
  unsigned n_ = 0;
  unsigned k_ = 0;
  unsigned t_ = 0;
  unsigned words_ = 0;
  bool inverted_ = false;
  // mask_[i]: cells participating in syndrome bit i. For i < m that is
  // every cell whose index has bit i clear; bit m sums all cells.
  std::uint64_t mask_[kMaxK][kMaxWords] = {};
};

}  // namespace wompcm

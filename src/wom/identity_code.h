// The trivial "code": k data bits stored directly in k wits, one write.
// Used as the no-WOM reference point in tests and code-level ablations.
#pragma once

#include "wom/wom_code.h"

namespace wompcm {

class IdentityCode final : public WomCode {
 public:
  explicit IdentityCode(unsigned data_bits);

  std::string name() const override;
  unsigned data_bits() const override { return k_; }
  unsigned wits() const override { return k_; }
  unsigned max_writes() const override { return 1; }

  BitVec initial_state() const override { return BitVec(k_, false); }
  bool raises_bits() const override { return true; }

  BitVec encode(unsigned value, unsigned generation,
                const BitVec& current) const override;
  unsigned decode(const BitVec& wits) const override;

 private:
  unsigned k_;
};

}  // namespace wompcm

#include "wom/identity_code.h"

#include <cassert>
#include <stdexcept>

namespace wompcm {

IdentityCode::IdentityCode(unsigned data_bits) : k_(data_bits) {
  assert(k_ >= 1 && k_ <= 16);
}

std::string IdentityCode::name() const {
  return "identity-k" + std::to_string(k_);
}

BitVec IdentityCode::encode(unsigned value, unsigned generation,
                            const BitVec& current) const {
  (void)current;
  if (value >= values()) {
    throw std::invalid_argument("identity: value out of range");
  }
  if (generation >= 1) {
    throw std::invalid_argument("identity: only one write supported");
  }
  BitVec w(k_);
  for (unsigned i = 0; i < k_; ++i) w.set(i, (value >> (k_ - 1 - i)) & 1);
  return w;
}

unsigned IdentityCode::decode(const BitVec& w) const {
  if (w.size() != k_) throw std::invalid_argument("identity: bad wit count");
  unsigned v = 0;
  for (unsigned i = 0; i < k_; ++i) {
    v = (v << 1) | static_cast<unsigned>(w.get(i));
  }
  return v;
}

}  // namespace wompcm

#include "wom/wom_tracker.h"

#include <cassert>

#include "common/perf.h"

namespace wompcm {

WomStateTracker::WomStateTracker(unsigned max_writes, unsigned lines_per_row,
                                 bool erased_start)
    : t_(max_writes), lines_(lines_per_row), erased_start_(erased_start) {
  assert(t_ >= 1);
  assert(t_ < kUnknownGen);
  assert(lines_ >= 1);
}

WomStateTracker::RowState& WomStateTracker::row_state(RowKey row) {
  RowState& rs = rows_[row];
  if (rs.gen.empty()) {
    rs.gen.assign(lines_, static_cast<std::uint8_t>(
                              erased_start_ ? 0 : kUnknownGen));
  }
  return rs;
}

unsigned WomStateTracker::generation(RowKey row, unsigned line) const {
  assert(line < lines_);
  const auto it = rows_.find(row);
  if (it == rows_.end()) return erased_start_ ? 0 : kUnknownGen;
  return it->second.gen[line];
}

WriteClass WomStateTracker::peek_write(RowKey row, unsigned line) const {
  const unsigned g = generation(row, line);
  return (g == kUnknownGen || g == t_) ? WriteClass::kAlpha
                                       : WriteClass::kResetOnly;
}

WomStateTracker::WriteRecord WomStateTracker::record_write(RowKey row,
                                                           unsigned line) {
  // Counted as codec time: this is the timing simulator's stand-in for the
  // per-line encode step (SimResult::phases.codec_ns).
  perf::ScopedCodecTimer codec_timer;
  assert(line < lines_);
  ++writes_;
  RowState& rs = row_state(row);
  std::uint8_t& g = rs.gen[line];
  if (g == kUnknownGen || g == t_) {
    // Alpha-write: re-initialize the codeword (SET) and store the data as a
    // fresh first write. Unknown lines are alpha too: an arbitrary array
    // state cannot be programmed with RESET pulses alone.
    ++alpha_writes_;
    const bool cold = g == kUnknownGen;
    if (cold) {
      ++cold_alpha_writes_;
    } else {
      --rs.at_limit;
    }
    g = 1;
    if (t_ == 1) ++rs.at_limit;  // with t=1, a fresh write is already at limit
    return {WriteClass::kAlpha, cold};
  }
  ++g;
  if (g == t_) ++rs.at_limit;
  return {WriteClass::kResetOnly, false};
}

bool WomStateTracker::row_has_limit_lines(RowKey row) const {
  const auto it = rows_.find(row);
  return it != rows_.end() && it->second.at_limit > 0;
}

bool WomStateTracker::refresh(RowKey row) {
  const auto it = rows_.find(row);
  if (it == rows_.end()) return false;
  RowState& rs = it->second;
  const bool useful = rs.at_limit > 0;
  rs.gen.assign(lines_, 0);
  rs.at_limit = 0;
  ++refreshes_;
  return useful;
}

}  // namespace wompcm

#include "wom/wom_tracker.h"

#include <cassert>

#include "common/perf.h"

namespace wompcm {

WomStateTracker::WomStateTracker(unsigned max_writes, unsigned lines_per_row,
                                 bool erased_start)
    : t_(max_writes), lines_(lines_per_row), erased_start_(erased_start) {
  assert(t_ >= 1);
  assert(t_ < kUnknownGen);
  assert(lines_ >= 1);
  // rows_ is only ever keyed (never iterated), so pre-sizing cannot change
  // any reported value; it just avoids rehash churn on the write hot path.
  rows_.reserve(1 << 12);
}

std::size_t WomStateTracker::slab_id(RowKey row) {
  std::uint32_t& id = rows_[row];
  if (id == 0) {
    gen_.resize(gen_.size() + lines_, static_cast<std::uint8_t>(
                                          erased_start_ ? 0 : kUnknownGen));
    at_limit_.push_back(0);
    id = static_cast<std::uint32_t>(at_limit_.size());
  }
  return id;
}

unsigned WomStateTracker::generation(RowKey row, unsigned line) const {
  assert(line < lines_);
  const std::uint32_t* id = rows_.find(row);
  if (id == nullptr) return erased_start_ ? 0 : kUnknownGen;
  return gen_slab(*id)[line];
}

WriteClass WomStateTracker::peek_write(RowKey row, unsigned line) const {
  const unsigned g = generation(row, line);
  return (g == kUnknownGen || g == t_) ? WriteClass::kAlpha
                                       : WriteClass::kResetOnly;
}

WomStateTracker::WriteRecord WomStateTracker::record_write(RowKey row,
                                                           unsigned line) {
  // Counted as codec time: this is the timing simulator's stand-in for the
  // per-line encode step (SimResult::phases.codec_ns).
  perf::ScopedCodecTimer codec_timer;
  assert(line < lines_);
  ++writes_;
  const std::size_t id = slab_id(row);
  std::uint8_t& g = gen_slab(id)[line];
  unsigned& at_limit = at_limit_[id - 1];
  if (g == kUnknownGen || g == t_) {
    // Alpha-write: re-initialize the codeword (SET) and store the data as a
    // fresh first write. Unknown lines are alpha too: an arbitrary array
    // state cannot be programmed with RESET pulses alone.
    ++alpha_writes_;
    const bool cold = g == kUnknownGen;
    if (cold) {
      ++cold_alpha_writes_;
    } else {
      --at_limit;
    }
    g = 1;
    if (t_ == 1) ++at_limit;  // with t=1, a fresh write is already at limit
    return {WriteClass::kAlpha, cold};
  }
  ++g;
  if (g == t_) ++at_limit;
  return {WriteClass::kResetOnly, false};
}

WomStateTracker::WriteRecord WomStateTracker::record_write_range(
    RowKey row, unsigned first, unsigned count) {
  assert(count >= 1);
  assert(first + count <= lines_);
  if (count == 1) return record_write(row, first);
  perf::ScopedCodecTimer codec_timer;
  ++writes_;
  const std::size_t id = slab_id(row);
  std::uint8_t* gens = gen_slab(id);
  unsigned& at_limit = at_limit_[id - 1];
  WriteRecord r;
  for (unsigned l = first; l < first + count; ++l) {
    std::uint8_t& g = gens[l];
    if (g == kUnknownGen || g == t_) {
      // Per-section alpha re-init: only the exhausted (or never-touched)
      // sections pay the SET cost; the page write is alpha if any did.
      r.cls = WriteClass::kAlpha;
      if (g == kUnknownGen) {
        r.cold = true;
      } else {
        --at_limit;
      }
      g = 1;
      if (t_ == 1) ++at_limit;
    } else {
      ++g;
      if (g == t_) ++at_limit;
    }
  }
  if (r.cls == WriteClass::kAlpha) {
    ++alpha_writes_;
    if (r.cold) ++cold_alpha_writes_;
  }
  return r;
}

bool WomStateTracker::row_has_limit_lines(RowKey row) const {
  const std::uint32_t* id = rows_.find(row);
  return id != nullptr && at_limit_[*id - 1] > 0;
}

bool WomStateTracker::refresh(RowKey row) {
  const std::uint32_t* id = rows_.find(row);
  if (id == nullptr) return false;
  unsigned& at_limit = at_limit_[*id - 1];
  const bool useful = at_limit > 0;
  std::uint8_t* g = gen_slab(*id);
  for (unsigned l = 0; l < lines_; ++l) g[l] = 0;
  at_limit = 0;
  ++refreshes_;
  return useful;
}

}  // namespace wompcm

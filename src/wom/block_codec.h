// Sectioned streaming codec seam.
//
// A BlockCodec encodes, decodes, and classifies one fixed-width *section* of
// a page at a time, with per-section write generations and per-section pulse
// accounting. A page image is a concatenation of equally sized sections; the
// caller (PageCodec, or an architecture's per-line generation tracker) owns
// the section -> generation map and streams sections through the codec.
//
// Two kinds of implementations exist:
//   - SectionedCodec wraps any WomCode, one symbol per section, and is
//     bit-identical to the historical whole-page symbol loop (it keeps the
//     two-lookup EncodeLut fast path per section).
//   - Native block codes whose structure does not fit the symbol-at-a-time
//     WomCode interface, e.g. the time-space constrained family whose decode
//     is generation-aware (the stored replica depends on the write count).
//
// Sections are independent: writing section s touches image bits
// [s*section_wits(), (s+1)*section_wits()) and nothing else, so per-section
// pulse counts sum to exactly the whole-page transition counts.
//
// write_section is non-const: implementations keep reusable scratch buffers
// as members so the steady state stays allocation-free (enforced by
// womcode_pcm_alloc_tests).
#pragma once

#include <cstddef>
#include <memory>
#include <string>

#include "common/bitvec.h"

namespace wompcm {

// Outcome of one section-level operation: how the write was classed and the
// SET/RESET pulses it cost (the inputs to the energy model).
struct SectionWrite {
  bool alpha = false;            // section was re-initialized first
  std::size_t set_pulses = 0;    // bits driven 0 -> 1 (slow, high energy)
  std::size_t reset_pulses = 0;  // bits driven 1 -> 0 (fast)
};

class BlockCodec {
 public:
  virtual ~BlockCodec() = default;

  virtual std::string name() const = 0;

  // k: data bits stored per section.
  virtual unsigned section_data_bits() const = 0;
  // n: wits occupied per section.
  virtual unsigned section_wits() const = 0;
  // t: guaranteed writes per section before it needs re-initialization.
  virtual unsigned max_writes() const = 0;

  // True if in-budget writes raise bits (conventional WOM); false if they
  // lower bits (inverted, the PCM-friendly direction).
  virtual bool raises_bits() const = 0;

  // True if the section encode runs through a dense EncodeLut (two array
  // lookups); false if it takes the virtual/structural encode path.
  virtual bool lut_backed() const = 0;

  // Fraction of the section's cells an in-budget write may touch, in [0, 1].
  // Time-space constrained codes bound per-cell write frequency, which the
  // fault model consumes as a wear bound; unconstrained codes return 1.
  virtual double wear_bound() const { return 1.0; }

  // Capacity overhead relative to uncoded storage, e.g. 0.5 for <2^2>^2/3.
  double overhead() const {
    return static_cast<double>(section_wits()) / section_data_bits() - 1.0;
  }

  // Re-initializes section `section` of `image` to the erased state and
  // returns the pulses spent (SET-heavy for inverted codes).
  virtual SectionWrite erase_section(BitVec& image,
                                     std::size_t section) const = 0;

  // Writes this section's slice of `data` (bits [section*k, (section+1)*k))
  // into `image` (bits [section*n, (section+1)*n)) as the *generation-th
  // write. If the section is at its rewrite limit (*generation ==
  // max_writes()), it is re-initialized first and the result is an
  // alpha-write. *generation is advanced past the write.
  virtual SectionWrite write_section(BitVec& image, const BitVec& data,
                                     std::size_t section,
                                     unsigned* generation) = 0;

  // Decodes section `section` of `image`, written `generation` >= 1 times
  // since initialization, into bits [section*k, (section+1)*k) of `data`.
  // `data` must already be sized. Decoding may be generation-aware (the
  // time-space constrained family stores the live replica by write count).
  virtual void read_section(const BitVec& image, std::size_t section,
                            unsigned generation, BitVec& data) const = 0;
};

using BlockCodecPtr = std::unique_ptr<BlockCodec>;

}  // namespace wompcm

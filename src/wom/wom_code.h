// Write-once-memory (WOM) code framework.
//
// A "<v>^t/n WOM-code" (Rivest & Shamir, 1982) stores one of v = 2^k values
// in n wits and supports t successive writes, where each write may only move
// wits in one direction. Conventional WOM raises bits (0 -> 1); the paper's
// *inverted* codes (Fig. 1b) lower bits (1 -> 0) so that every in-budget PCM
// rewrite consists purely of fast RESET pulses.
#pragma once

#include <memory>
#include <string>

#include "common/bitvec.h"

namespace wompcm {

class WomCode {
 public:
  virtual ~WomCode() = default;

  virtual std::string name() const = 0;

  // k: number of data bits stored per symbol.
  virtual unsigned data_bits() const = 0;
  // n: number of wits used per symbol.
  virtual unsigned wits() const = 0;
  // t: number of guaranteed writes before the symbol must be re-initialized.
  virtual unsigned max_writes() const = 0;

  // v = 2^k distinct values per write.
  unsigned values() const { return 1u << data_bits(); }

  // Capacity overhead relative to uncoded storage, e.g. 0.5 for <2^2>^2/3.
  double overhead() const {
    return static_cast<double>(wits()) / data_bits() - 1.0;
  }

  // Wit state of a freshly initialized (erased) symbol: all zeros for
  // conventional WOM, all ones for inverted codes.
  virtual BitVec initial_state() const = 0;

  // True if writes raise bits (conventional WOM); false if writes lower bits
  // (inverted, the PCM-friendly direction).
  virtual bool raises_bits() const = 0;

  // Encodes `value` as the `generation`-th write (0-based, < max_writes())
  // into a symbol whose current wit state is `current`. Returns the new wit
  // state. Writing the value the symbol already holds leaves it unchanged.
  //
  // Postcondition: the transition current -> result is monotone in the
  // code's direction (only 0->1 for conventional, only 1->0 for inverted).
  virtual BitVec encode(unsigned value, unsigned generation,
                        const BitVec& current) const = 0;

  // In-place encode for hot paths: writes the new wit state into `out`
  // (sized on first use). Codes wide enough to miss the EncodeLut cutoff
  // should override this allocation-free; the default delegates to the
  // allocating encode().
  virtual void encode_into(unsigned value, unsigned generation,
                           const BitVec& current, BitVec& out) const {
    out.assign_from(encode(value, generation, current));
  }

  // Recovers the stored value from a wit state. Decoding is generation
  // oblivious: the same wit pattern always decodes to the same value.
  virtual unsigned decode(const BitVec& wits) const = 0;
};

using WomCodePtr = std::shared_ptr<const WomCode>;

}  // namespace wompcm

// Name-based WOM-code factory for CLI tools, examples, and benches.
//
// Recognized symbol-code names:
//   rs23               the <2^2>^2/3 Rivest-Shamir code (Table 1)
//   identity-k<K>      K data bits, 1 write (no WOM)
//   marker-k<K>t<T>    the marker-group family, K bits, T writes
//   parity-t<T>        the parity family, 1 bit, T writes
//   search-k<K>n<N>t<T> brute-force-discovered code with those parameters
//   polar-m<M>         polar-kernel WOM block code, n = 2^M cells, M+1 bits
// Any name may carry an "-inv" suffix to get the PCM-friendly inverted
// variant (e.g. "rs23-inv"), which is what the architectures use.
//
// Block-codec names cover every symbol code above (wrapped in a
// SectionedCodec) plus the native sectioned families:
//   tsc-<base>x<R>     time-space constrained: R replicas of <base>, e.g.
//                      "tsc-rs23x4-inv" = 4 rotating copies of rs23-inv
#pragma once

#include <string>
#include <vector>

#include "wom/block_codec.h"
#include "wom/wom_code.h"

namespace wompcm {

// Returns the named code, or nullptr if the name is not recognized.
WomCodePtr make_code(const std::string& name);

// Returns the named block codec — any make_code() name (sectioned) or a
// native block-codec name such as "tsc-rs23x4-inv" — or nullptr.
BlockCodecPtr make_block_codec(const std::string& name);

// Parameter sheet of a registered code, for discovery surfaces
// (womd --list-codes) and config validation.
struct CodeInfo {
  bool valid = false;
  std::string name;
  unsigned data_bits = 0;   // k per section
  unsigned wits = 0;        // n per section
  unsigned max_writes = 0;  // t
  double overhead = 0.0;    // n/k - 1
  double wear_bound = 1.0;  // fraction of cells an in-budget write may touch
  bool lut = false;         // dense EncodeLut fast path available
  bool inverted = false;    // writes lower bits (RESET-only rewrites)
};

// Info for any make_block_codec() name; .valid is false for unknown names.
CodeInfo code_info(const std::string& name);

// Names with one representative parameterization each, for enumeration in
// tests and help text. known_code_names() lists symbol codes only;
// known_block_codec_names() adds the native sectioned families.
std::vector<std::string> known_code_names();
std::vector<std::string> known_block_codec_names();

}  // namespace wompcm

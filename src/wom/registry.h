// Name-based WOM-code factory for CLI tools, examples, and benches.
//
// Recognized names:
//   rs23               the <2^2>^2/3 Rivest-Shamir code (Table 1)
//   identity-k<K>      K data bits, 1 write (no WOM)
//   marker-k<K>t<T>    the marker-group family, K bits, T writes
//   parity-t<T>        the parity family, 1 bit, T writes
// Any name may carry an "-inv" suffix to get the PCM-friendly inverted
// variant (e.g. "rs23-inv"), which is what the architectures use.
#pragma once

#include <string>
#include <vector>

#include "wom/wom_code.h"

namespace wompcm {

// Returns the named code, or nullptr if the name is not recognized.
WomCodePtr make_code(const std::string& name);

// Names with one representative parameterization each, for enumeration in
// tests and help text.
std::vector<std::string> known_code_names();

}  // namespace wompcm

// WOM-code PCM with PCM-refresh (Section 3.2).
//
// Extends WomPcm with the per-bank row address table (RAT): a small ring of
// the most recent rows that reached the rewrite limit. The controller's
// refresh engine periodically picks an idle rank and issues a burst-mode
// refresh command; this class pops one RAT entry per bank and pre-erases
// those rows so their next write takes the RESET-only fast path.
#pragma once

#include <deque>
#include <vector>

#include "arch/wom_pcm.h"

namespace wompcm {

class RefreshWomPcm final : public WomPcm {
 public:
  RefreshWomPcm(const MemoryGeometry& geom, const PcmTiming& timing,
                WomCodePtr code, WomOrganization organization,
                unsigned rat_entries);

  std::string name() const override;

  bool refresh_enabled() const override { return true; }
  double refresh_pending_fraction(unsigned channel,
                                  unsigned rank) const override;
  RefreshWork perform_refresh(
      unsigned channel, unsigned rank,
      const std::function<bool(unsigned)>& unit_ready) override;

  // Test access: pending rows in one bank's RAT.
  std::size_t rat_size(unsigned flat_bank_idx) const {
    return rat_[flat_bank_idx].size();
  }

 protected:
  void on_row_at_limit(const DecodedAddr& dec, std::uint64_t key) override;

 private:
  unsigned rat_entries_;
  // Per main bank: rows (keys) at the rewrite limit, most recent last.
  std::vector<std::deque<std::uint64_t>> rat_;
  // Lazily-bound counter slots (see Architecture::bump).
  std::uint64_t* ctr_rat_insert_ = nullptr;
  std::uint64_t* ctr_rat_evict_ = nullptr;
  std::uint64_t* ctr_rat_stale_pop_ = nullptr;
  std::uint64_t* ctr_refresh_rows_ = nullptr;
};

}  // namespace wompcm

#include "arch/coding_policy.h"

#include <stdexcept>

#include "arch/coding_policies.h"
#include "wom/registry.h"

namespace wompcm {

WomCodePtr resolve_inverted_wom_code(const std::string& name) {
  WomCodePtr code = make_code(name);
  if (code == nullptr) {
    throw std::invalid_argument("unknown WOM-code: " + name);
  }
  if (code->raises_bits()) {
    throw std::invalid_argument(
        "WOM architectures need an inverted code (RESET-only rewrites); "
        "use e.g. \"" +
        name + "-inv\"");
  }
  return code;
}

std::unique_ptr<CodingPolicy> make_coding_policy(
    CodingKind kind, const RegionContext& ctx, WomCodePtr code,
    unsigned lines_per_row, bool erased_start, double fnw_fast_fraction,
    std::uint64_t seed) {
  switch (kind) {
    case CodingKind::kRaw:
      return std::make_unique<RawCoding>(ctx);
    case CodingKind::kSymmetric:
      return std::make_unique<SymmetricCoding>(ctx);
    case CodingKind::kFlipNWrite:
      return std::make_unique<FnwCoding>(ctx, fnw_fast_fraction, seed);
    case CodingKind::kWomWide:
    case CodingKind::kWomHidden:
      return std::make_unique<WomCoding>(ctx, std::move(code),
                                         kind == CodingKind::kWomHidden,
                                         lines_per_row, erased_start);
  }
  throw std::invalid_argument("unknown coding kind");
}

}  // namespace wompcm

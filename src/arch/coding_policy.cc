#include "arch/coding_policy.h"

#include <stdexcept>

#include "arch/coding_policies.h"
#include "wom/encode_lut.h"
#include "wom/registry.h"

namespace wompcm {

namespace {

// Family defaults for the sectioned kinds when no main.code=/cache.code=
// override is given (the legacy code= key stays with the classic kinds).
const char* kPolarDefault = "polar-m7-inv";
const char* kTsDefault = "tsc-rs23x4-inv";

std::string known_names_hint() {
  std::string hint;
  for (const std::string& n : known_block_codec_names()) {
    if (!hint.empty()) hint += ", ";
    hint += n;
  }
  return hint;
}

}  // namespace

WomCodePtr resolve_inverted_wom_code(const std::string& name) {
  WomCodePtr code = make_code(name);
  if (code == nullptr) {
    throw std::invalid_argument("unknown WOM-code: " + name);
  }
  if (code->raises_bits()) {
    throw std::invalid_argument(
        "WOM architectures need an inverted code (RESET-only rewrites); "
        "use e.g. \"" +
        name + "-inv\"");
  }
  return code;
}

RegionCode resolve_region_code(CodingKind kind,
                               const std::string& override_name,
                               const std::string& legacy_code,
                               std::uint64_t line_bits) {
  RegionCode rc;
  if (!is_wom_coding(kind)) return rc;

  const bool sectioned =
      kind == CodingKind::kPolar || kind == CodingKind::kTsConstrained;
  std::string name = override_name;
  if (name.empty()) {
    if (kind == CodingKind::kPolar) {
      name = kPolarDefault;
    } else if (kind == CodingKind::kTsConstrained) {
      name = kTsDefault;
    } else {
      name = legacy_code;
    }
  }

  // Family membership first, so a mismatched name gets a pointer to the
  // coding kind that would accept it instead of a generic parse error.
  const bool is_polar_name = name.rfind("polar-", 0) == 0;
  const bool is_ts_name = name.rfind("tsc-", 0) == 0;
  if (kind == CodingKind::kPolar && !is_polar_name) {
    throw std::invalid_argument(
        "code \"" + name +
        "\" is not a polar-family code; coding=polar takes e.g. "
        "polar-m7-inv (use coding=wom-wide for symbol codes)");
  }
  if (kind == CodingKind::kTsConstrained && !is_ts_name) {
    throw std::invalid_argument(
        "code \"" + name +
        "\" is not a time-space constrained code; coding=ts-constrained "
        "takes e.g. tsc-rs23x4-inv (tsc-<base>x<replicas>)");
  }
  if (!sectioned && is_ts_name) {
    throw std::invalid_argument(
        "code \"" + name +
        "\" is a time-space constrained code; select it with "
        "coding=ts-constrained");
  }
  if (!sectioned && is_polar_name) {
    throw std::invalid_argument(
        "code \"" + name +
        "\" is a polar block code; select it with coding=polar");
  }

  const CodeInfo info = code_info(name);
  if (!info.valid) {
    throw std::invalid_argument("unknown WOM-code: " + name +
                                " (known: " + known_names_hint() + ")");
  }
  if (!info.inverted) {
    throw std::invalid_argument(
        "WOM architectures need an inverted code (RESET-only rewrites); "
        "use e.g. \"" +
        name + "-inv\"");
  }
  if (line_bits % info.data_bits != 0) {
    throw std::invalid_argument(
        "code " + name + " stores " + std::to_string(info.data_bits) +
        " bits per section, which does not divide the " +
        std::to_string(line_bits) + "-bit line; pick a code whose section "
        "size divides the line (e.g. " +
        (kind == CodingKind::kPolar ? kPolarDefault : kTsDefault) + ")");
  }

  rc.name = info.name;
  rc.data_bits = info.data_bits;
  rc.wits = info.wits;
  rc.max_writes = info.max_writes;
  rc.wear_bound = info.wear_bound;
  rc.lut = info.lut;
  rc.sections_per_line =
      sectioned ? static_cast<unsigned>(line_bits / info.data_bits) : 1;
  if (kind != CodingKind::kTsConstrained) {
    // The classic kinds (and polar) are symbol codes; keep the shared
    // pointer for name()/diagnostic surfaces and the reference codecs.
    rc.code = resolve_inverted_wom_code(name);
  }
  return rc;
}

std::unique_ptr<CodingPolicy> make_coding_policy(
    CodingKind kind, const RegionContext& ctx, RegionCode code,
    unsigned lines_per_row, bool erased_start, double fnw_fast_fraction,
    std::uint64_t seed) {
  switch (kind) {
    case CodingKind::kRaw:
      return std::make_unique<RawCoding>(ctx);
    case CodingKind::kSymmetric:
      return std::make_unique<SymmetricCoding>(ctx);
    case CodingKind::kFlipNWrite:
      return std::make_unique<FnwCoding>(ctx, fnw_fast_fraction, seed);
    case CodingKind::kWomWide:
    case CodingKind::kWomHidden:
    case CodingKind::kPolar:
    case CodingKind::kTsConstrained:
      return std::make_unique<WomCoding>(ctx, kind, std::move(code),
                                         lines_per_row, erased_start);
  }
  throw std::invalid_argument("unknown coding kind");
}

}  // namespace wompcm

// Conventional PCM: every row write is SET-bound (the paper's baseline).
#pragma once

#include "arch/arch.h"

namespace wompcm {

class BaselinePcm final : public Architecture {
 public:
  BaselinePcm(const MemoryGeometry& geom, const PcmTiming& timing)
      : Architecture(geom, timing) {}

  std::string name() const override { return "pcm"; }

  IssuePlan plan(const DecodedAddr& dec, AccessType type, bool internal,
                 Tick now) override;
};

// Hypothetical symmetric-write memory: SET as fast as RESET (S = 1). Not a
// buildable PCM — it is the latency upper bound the WOM-code architectures
// approach, used as a reference line in the benches.
class SymmetricPcm final : public Architecture {
 public:
  SymmetricPcm(const MemoryGeometry& geom, const PcmTiming& timing)
      : Architecture(geom, timing) {}

  std::string name() const override { return "symmetric-ideal"; }

  IssuePlan plan(const DecodedAddr& dec, AccessType type, bool internal,
                 Tick now) override;
};

}  // namespace wompcm

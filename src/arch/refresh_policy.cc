#include "arch/refresh_policy.h"

#include <algorithm>

namespace wompcm {

RatRefreshPolicy::RatRefreshPolicy(unsigned units, unsigned entries,
                                   ServeOrder order, CounterSet* counters)
    : entries_(entries == 0 ? 1 : entries),
      order_(order),
      rat_(units),
      counters_(counters) {}

void RatRefreshPolicy::touch(unsigned unit, std::uint64_t entry) {
  auto& q = rat_[unit];
  const auto it = std::find(q.begin(), q.end(), entry);
  if (it != q.end()) {
    q.erase(it);
  } else {
    bump(ctr_insert_, "rat.insert");
  }
  q.push_back(entry);
  if (q.size() > entries_) {
    q.pop_front();
    bump(ctr_evict_, "rat.evict");
  }
}

bool RatRefreshPolicy::refresh_one(
    unsigned unit, const std::function<bool(std::uint64_t)>& refresh_entry) {
  auto& q = rat_[unit];
  while (!q.empty()) {
    std::uint64_t entry;
    if (order_ == ServeOrder::kNewestFirst) {
      entry = q.back();
      q.pop_back();
    } else {
      entry = q.front();
      q.pop_front();
    }
    if (refresh_entry(entry)) return true;
    bump(ctr_stale_pop_, "rat.stale_pop");
  }
  return false;
}

}  // namespace wompcm

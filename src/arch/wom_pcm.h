// WOM-code PCM (Section 3.1).
//
// Rows are stored under an inverted WOM-code, so a write to a row whose
// write generation is within the code's budget needs only RESET pulses and
// completes at RESET latency. Once a row reaches the rewrite limit, the next
// write is the alpha-write: the row is re-initialized (SET) and reprogrammed
// at the full row-write latency.
//
// The organization determines where the encoded overhead bits live:
//  - wide-column: columns are 1.5x wide, the whole codeword is programmed in
//    one array operation (no extra latency);
//  - hidden-page: the upper 0.5x of the codeword lives in a controller-
//    reserved hidden row, so every access issues a dependent second row
//    access (activate + program for writes, activate + column read for
//    reads).
#pragma once

#include "arch/arch.h"
#include "wom/wom_code.h"
#include "wom/wom_tracker.h"

namespace wompcm {

class WomPcm : public Architecture {
 public:
  WomPcm(const MemoryGeometry& geom, const PcmTiming& timing, WomCodePtr code,
         WomOrganization organization);

  std::string name() const override;

  IssuePlan plan(const DecodedAddr& dec, AccessType type, bool internal,
                 Tick now) override;

  double capacity_overhead() const override { return code_->overhead(); }

  const WomCode& code() const { return *code_; }
  WomOrganization organization() const { return organization_; }
  const WomStateTracker& tracker() const { return tracker_; }

 protected:
  // Hook for RefreshWomPcm: called when a write leaves `row` at the limit.
  virtual void on_row_at_limit(const DecodedAddr& dec, std::uint64_t key) {
    (void)dec;
    (void)key;
  }

  // Coded bits programmed per line write, for the energy model.
  std::uint64_t coded_line_bits() const;

  WomCodePtr code_;
  WomOrganization organization_;
  WomStateTracker tracker_;

 private:
  // Lazily-bound counter slots for the per-access hot path (see
  // Architecture::bump).
  std::uint64_t* ctr_writes_alpha_ = nullptr;
  std::uint64_t* ctr_writes_alpha_cold_ = nullptr;
  std::uint64_t* ctr_writes_fast_ = nullptr;
  std::uint64_t* ctr_reads_ = nullptr;
  std::uint64_t* ctr_hidden_writes_ = nullptr;
  std::uint64_t* ctr_hidden_reads_ = nullptr;
};

}  // namespace wompcm

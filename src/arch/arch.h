// Architecture interface: the policy layer the memory controller consults.
//
// The controller owns the timing machinery (queues, banks, bus, refresh
// engine); an Architecture decides *where* an access goes (which bank-like
// resource), *how long* its array phase takes (the WOM fast path vs the
// alpha-write), and what side work it creates (WCPCM victim write-backs).
//
// Resource indexing: main banks occupy flat indices
// [0, channels*ranks*banks_per_rank); architectures with per-rank WOM-cache
// arrays (WCPCM) append one resource per rank after the main banks.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/address.h"
#include "common/types.h"
#include "controller/remap_table.h"
#include "controller/wear_leveling.h"
#include "pcm/endurance.h"
#include "pcm/fault_model.h"
#include "pcm/energy.h"
#include "pcm/timing.h"
#include "stats/metrics.h"
#include "stats/stats.h"

namespace wompcm {

// An internal write the controller must enqueue on behalf of the
// architecture (e.g. a WOM-cache victim flushed to PCM main memory).
struct SpawnedWrite {
  DecodedAddr dec;
};

// The issue-time decision for one demand or internal access.
struct IssuePlan {
  unsigned resource = 0;  // bank-like resource the access occupies
  unsigned row = 0;       // row latched in that resource's row buffer
  Tick pre_ns = 0;        // before the array phase: tag checks, pauses
  Tick program_ns = 0;    // write programming latency (0 for reads)
  Tick post_ns = 0;       // after the array phase: hidden-page second access
  WriteClass write_class = WriteClass::kResetOnly;  // diagnostics
  std::vector<SpawnedWrite> spawned;  // internal writes to enqueue
};

enum class ArchKind : std::uint8_t {
  kBaseline,       // conventional PCM, every write is SET-bound
  kWomPcm,         // WOM-code PCM (Section 3.1)
  kRefreshWomPcm,  // WOM-code PCM + PCM-refresh (Section 3.2)
  kWcpcm,          // WOM-code cached PCM (Section 4)
  kFlipNWrite,     // Flip-N-Write coding baseline (ablation)
  kSymmetric,      // hypothetical S=1 memory (every write at RESET latency):
                   // the upper bound all the WOM machinery chases
};

const char* to_string(ArchKind k);

// ---- Composable architecture description ----
//
// Every architecture is a composition of orthogonal policies: a coding
// scheme for the main-memory region, an optional per-rank WOM-cache front
// end with its own coding scheme, and a refresh policy that attaches to
// each WOM-coded region. The five legacy ArchKinds are points in this
// space (see canonical_composition); the cross-product admits designs the
// paper never evaluated (Flip-N-Write behind a WOM-cache, hidden-page +
// refresh, a symmetric-latency cache as an upper bound).

// How one region stores its lines.
enum class CodingKind : std::uint8_t {
  kRaw,         // uncoded: every write is SET-bound (conventional PCM)
  kWomWide,     // inverted WOM code, wide-column organization (Section 3.1)
  kWomHidden,   // inverted WOM code, hidden-page organization (Section 3.1)
  kFlipNWrite,  // Flip-N-Write coding (Cho & Lee, MICRO 2009)
  kSymmetric,   // hypothetical S=1 memory: every write at RESET latency
  kPolar,       // polar-kernel WOM block code, sectioned (wide columns)
  kTsConstrained,  // time-space constrained replica rotation, sectioned
};

enum class RefreshKind : std::uint8_t {
  kNone,
  kRat,  // row-address tables + burst re-initialization (Section 3.2)
};

const char* to_string(CodingKind k);
const char* to_string(RefreshKind k);
// Parsers for the config keys (main.coding= / cache.coding= / refresh=).
// Return false on an unknown name.
bool coding_kind_from_string(const std::string& s, CodingKind* out);
bool refresh_kind_from_string(const std::string& s, RefreshKind* out);

inline bool is_wom_coding(CodingKind k) {
  return k == CodingKind::kWomWide || k == CodingKind::kWomHidden ||
         k == CodingKind::kPolar || k == CodingKind::kTsConstrained;
}

struct Composition {
  CodingKind main_coding = CodingKind::kRaw;
  bool cache_enabled = false;
  // Coding of the per-rank WOM-cache arrays; meaningful only when
  // cache_enabled (normalized to kWomWide otherwise so compositions that
  // differ only in a disabled cache's coding compare equal).
  CodingKind cache_coding = CodingKind::kWomWide;
  RefreshKind refresh = RefreshKind::kNone;

  bool operator==(const Composition&) const = default;
};

// The composition each legacy ArchKind is shorthand for. Architectures
// built from a kind and from its canonical composition are bit-identical.
Composition canonical_composition(ArchKind kind, WomOrganization org);

// Validates and normalizes a composition. Returns false (with an
// actionable message in *why) for combinations with no meaning: refresh
// without a WOM-coded region, a hidden-page-coded cache, ...
bool composition_valid(const Composition& c, std::string* why = nullptr);
// As above but throwing std::invalid_argument; returns the normalized
// composition.
Composition validate_composition(Composition c);

struct ArchConfig {
  ArchKind kind = ArchKind::kBaseline;
  // Explicit policy composition. When set it takes precedence over `kind`
  // (which the legacy call sites keep using as shorthand); when unset the
  // kind's canonical composition applies. See resolved_composition().
  std::optional<Composition> composition;
  // WOM-code used by every WOM-coded region; must be an inverted code.
  std::string code = "rs23-inv";
  // Per-region code overrides (config keys main.code= / cache.code=).
  // Empty means "derive": classic WOM kinds fall back to `code`, the
  // sectioned families (polar / ts-constrained) to their family default.
  std::string main_code;
  std::string cache_code;
  WomOrganization organization = WomOrganization::kWideColumn;
  // Row-address-table capacity per refresh unit (Section 3.2 uses 5).
  unsigned rat_entries = 5;
  // Flip-N-Write: probability that a write needs no SET pulse at all.
  double fnw_fast_fraction = 0.0;
  std::uint64_t seed = 1;
  // Optional Start-Gap wear leveling on the main-memory rows (endurance
  // extension; the paper leaves endurance open). One gap move per
  // `start_gap_interval` writes per bank. Not applied when a cache front
  // end is enabled: the cache index is the row address, so remapping main
  // rows would desynchronize the tags.
  bool start_gap = false;
  unsigned start_gap_interval = 128;

  // The composition this config builds: `composition` if set, else the
  // kind's canonical one. Throws std::invalid_argument (with the reason)
  // on an invalid explicit composition.
  Composition resolved_composition() const;
};

class Architecture {
 public:
  Architecture(const MemoryGeometry& geom, const PcmTiming& timing);
  virtual ~Architecture() = default;

  virtual std::string name() const = 0;

  // Total bank-like resources (main banks + any per-rank cache arrays).
  virtual unsigned num_resources() const;

  // Resource an access will occupy. Pure routing: must not mutate state.
  virtual unsigned route(const DecodedAddr& dec, AccessType type,
                         bool internal) const;

  // True when route() for demand reads can change while the read waits in
  // a queue (WCPCM probes mutable cache tags). Controllers must not cache
  // the routing of such reads at enqueue time; every other access class is
  // required to route identically for the lifetime of the transaction.
  virtual bool read_route_dynamic() const { return false; }

  // Monotone stamp that advances whenever route() could start returning a
  // different resource for some queued demand read (tag state mutated).
  // While the stamp is unchanged, schedulers may reuse a dynamic read's
  // previously computed route instead of re-probing every scan.
  virtual std::uint64_t route_version() const { return 0; }

  // Channel that owns a bank-like resource. Resources never span channels;
  // per-channel controllers use this to claim exactly their own banks.
  virtual unsigned resource_channel(unsigned resource) const;

  // True for auxiliary cache arrays (e.g. the per-rank WOM-cache), false
  // for main-memory banks. Drives the per-class utilization/row-hit split.
  virtual bool is_cache_resource(unsigned resource) const {
    (void)resource;
    return false;
  }

  // Commits the access at issue time (updates WOM generations, cache tags,
  // energy) and returns its plan. Called exactly once per issued access.
  virtual IssuePlan plan(const DecodedAddr& dec, AccessType type,
                         bool internal, Tick now) = 0;

  // ---- PCM-refresh hooks (Section 3.2) ----

  // Work done by one burst-mode refresh command.
  struct RefreshWork {
    std::vector<unsigned> resources;  // units that streamed a row
    unsigned rows = 0;                // rows re-initialized
  };

  virtual bool refresh_enabled() const { return false; }
  // Fraction of this rank's refreshable units that have at least one row
  // pending re-initialization (compared against r_th by the engine).
  virtual double refresh_pending_fraction(unsigned channel,
                                          unsigned rank) const;
  // Executes one burst-mode refresh command against the units of
  // (channel, rank) for which `unit_ready` is true (idle banks: demand on
  // the other banks proceeds untouched, which is what write pausing buys).
  // Pops pending rows from the row address tables and re-initializes them.
  virtual RefreshWork perform_refresh(
      unsigned channel, unsigned rank,
      const std::function<bool(unsigned)>& unit_ready);
  // Resources a refresh of (channel, rank) may touch.
  virtual std::vector<unsigned> refresh_resources(unsigned channel,
                                                  unsigned rank) const;

  // Capacity overhead of the architecture relative to uncoded PCM
  // (e.g. 0.5 for full <2^2>^2/3 WOM-code PCM, 1.5/32 for WCPCM).
  virtual double capacity_overhead() const { return 0.0; }

  const CounterSet& counters() const { return counters_; }
  const EnergyCounters& energy() const { return energy_; }
  const WearTracker& wear() const { return wear_; }
  const MemoryGeometry& geometry() const { return geom_; }

  // Publishes the architecture's end-of-run scalars (energy, wear,
  // capacity overhead) into the unified registry. `end_time` is the last
  // completion instant, needed for the lifetime projection.
  void publish_metrics(MetricsRegistry& reg, Tick end_time) const;

  // Folds another instance's accounting (counters, energy buckets, wear
  // aggregates, per-channel fault tallies) into this one. The sharded
  // runner builds one architecture replica per channel — replica c only
  // ever services channel c — and merges replicas 1..N-1 into replica 0
  // before the single publish_metrics() call, reproducing the books the
  // shared serial instance keeps. Call only after the run is complete; the
  // donor must be built from the same configuration.
  void merge_accounting_from(const Architecture& o);

  // Enables Start-Gap wear leveling on the main-memory banks. Must be
  // called before the first plan().
  void enable_start_gap(unsigned interval);
  bool start_gap_enabled() const { return !start_gap_.empty(); }

  // Installs the fault-injection model (pcm/fault_model.h). A disabled
  // config is a no-op, keeping the off-path bit-identical to a build
  // without faults. Must be called before the first plan();
  // make_architecture() does it. Throws std::invalid_argument on a bad
  // fault config.
  void configure_faults(const FaultConfig& fault);
  bool faults_enabled() const { return fault_ != nullptr; }
  // Test/diagnostic access; null while faults are off.
  const SpareRowRemapper* remapper() const { return remap_.get(); }
  const FaultModel* fault_model() const { return fault_.get(); }

 protected:
  unsigned main_banks() const { return mapper_.num_flat_banks(); }
  unsigned flat_bank(const DecodedAddr& dec) const {
    return mapper_.flat_bank(dec);
  }
  std::uint64_t row_key(const DecodedAddr& dec) const {
    return static_cast<std::uint64_t>(flat_bank(dec)) * geom_.rows_per_bank +
           dec.row;
  }
  std::uint64_t row_key_for(unsigned bank, unsigned row) const {
    // Physical rows may include the Start-Gap spare (== rows_per_bank) and,
    // with faults enabled, the bank's fault spares — the stride widens to
    // cover them (see configure_faults), so keys never collide across
    // banks. With faults off the stride is rows_per_bank + 1, unchanged.
    return static_cast<std::uint64_t>(bank) * row_key_stride_ + row;
  }
  std::uint64_t line_bits() const { return geom_.line_bytes() * 8ull; }

  // Physical row backing this access. With Start-Gap enabled, writes may
  // trigger a gap move whose row-copy cost is charged to `plan->post_ns`.
  // With faults enabled, rows retired to spares resolve through the remap
  // table afterwards.
  unsigned physical_row(const DecodedAddr& dec, AccessType type,
                        IssuePlan* plan);

  // Bad-row chain only (no Start-Gap): for paths that address main memory
  // directly by decoded row (WCPCM victims / bypasses).
  unsigned resolved_row(unsigned bank, unsigned row) const {
    return remap_ == nullptr ? row : remap_->resolve(bank, row);
  }

  // ---- Fault pipeline (no-ops while faults are off) ----

  struct FaultOutcome {
    bool demoted = false;       // fast-path write demoted to alpha
    bool remapped = false;      // row retired; plan->row moved to a spare
    bool dead_unmapped = false; // line dead but not remappable here (cache
                                // rows, exhausted spares): caller degrades
  };

  // Write-path hook. Call after plan->row / write_class / program_ns are
  // settled and *before* energy/wear accounting, so demotion and remapping
  // are charged at the rates the cells actually saw. `keyed_bank` is the
  // row_key_for bank index (a cache array index for WCPCM cache rows);
  // `allow_remap` is false for rows with no spare pool behind them.
  FaultOutcome fault_on_write(unsigned keyed_bank, unsigned channel,
                              unsigned line, bool allow_remap, IssuePlan* p);

  // Read-path hook: transient read-disturb draw; a disturbed read pays one
  // corrective re-read.
  void fault_on_read(unsigned channel, IssuePlan* p);

  // Cached counter increment for per-access hot paths: binds `slot` on the
  // first call and skips the string-keyed map lookup afterwards. Equivalent
  // to counters_.inc(name, by), including key creation on the first call.
  void bump(std::uint64_t*& slot, const char* name, std::uint64_t by = 1) {
    if (slot == nullptr) slot = counters_.slot(name);
    *slot += by;
  }

  // Per-channel fault bookkeeping, summed into fault.* metrics and also
  // published per channel (ch<N>.fault.*).
  struct FaultTally {
    std::uint64_t injected = 0;       // healthy -> degraded/dead transitions
    std::uint64_t retries = 0;        // extra write-verify programming pulses
    std::uint64_t demoted = 0;        // fast-path writes demoted to alpha
    std::uint64_t remapped = 0;       // rows retired to spares
    std::uint64_t dead_rows = 0;      // rows declared dead (pre-remap)
    std::uint64_t read_disturbs = 0;  // transient read upsets
    std::uint64_t exhausted = 0;      // retirements denied: spare pool empty
  };

  MemoryGeometry geom_;
  AddressMapper mapper_;
  PcmTiming timing_;
  CounterSet counters_;
  EnergyCounters energy_;
  WearTracker wear_;
  std::vector<StartGapRemapper> start_gap_;  // per main bank; empty = off
  std::unique_ptr<FaultModel> fault_;        // null = faults off
  std::unique_ptr<SpareRowRemapper> remap_;  // null = no spare pool
  std::vector<FaultTally> fault_by_channel_;
  unsigned row_key_stride_;  // rows_per_bank + 1 (+ fault spares)
};

// Factory. Throws std::invalid_argument on bad configuration (unknown code
// name, non-inverted code for a WOM architecture, ...).
std::unique_ptr<Architecture> make_architecture(const ArchConfig& cfg,
                                                const MemoryGeometry& geom,
                                                const PcmTiming& timing);
// As above, plus fault injection (configure_faults is called before the
// architecture is returned; a disabled FaultConfig is exactly the 3-arg
// overload).
std::unique_ptr<Architecture> make_architecture(const ArchConfig& cfg,
                                                const MemoryGeometry& geom,
                                                const PcmTiming& timing,
                                                const FaultConfig& fault);

}  // namespace wompcm

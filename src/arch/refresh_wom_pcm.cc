#include "arch/refresh_wom_pcm.h"

#include <algorithm>

namespace wompcm {

RefreshWomPcm::RefreshWomPcm(const MemoryGeometry& geom,
                             const PcmTiming& timing, WomCodePtr code,
                             WomOrganization organization,
                             unsigned rat_entries)
    : WomPcm(geom, timing, std::move(code), organization),
      rat_entries_(rat_entries == 0 ? 1 : rat_entries),
      rat_(main_banks()) {}

std::string RefreshWomPcm::name() const {
  return std::string("pcm-refresh[") + code_->name() + "," +
         to_string(organization_) + "]";
}

void RefreshWomPcm::on_row_at_limit(const DecodedAddr& dec,
                                    std::uint64_t key) {
  auto& q = rat_[flat_bank(dec)];
  // The RAT records the most recent rows at the limit; re-touching a row
  // moves it to the back, and the oldest entry falls off when full.
  const auto it = std::find(q.begin(), q.end(), key);
  if (it != q.end()) {
    q.erase(it);
  } else {
    bump(ctr_rat_insert_, "rat.insert");
  }
  q.push_back(key);
  if (q.size() > rat_entries_) {
    q.pop_front();
    bump(ctr_rat_evict_, "rat.evict");
  }
}

double RefreshWomPcm::refresh_pending_fraction(unsigned channel,
                                               unsigned rank) const {
  const unsigned base = (channel * geom_.ranks + rank) * geom_.banks_per_rank;
  unsigned pending = 0;
  for (unsigned b = 0; b < geom_.banks_per_rank; ++b) {
    if (!rat_[base + b].empty()) ++pending;
  }
  return static_cast<double>(pending) /
         static_cast<double>(geom_.banks_per_rank);
}

Architecture::RefreshWork RefreshWomPcm::perform_refresh(
    unsigned channel, unsigned rank,
    const std::function<bool(unsigned)>& unit_ready) {
  const unsigned base = (channel * geom_.ranks + rank) * geom_.banks_per_rank;
  RefreshWork work;
  for (unsigned b = 0; b < geom_.banks_per_rank; ++b) {
    const unsigned resource = base + b;
    if (!unit_ready(resource)) continue;  // demand in flight: skip the bank
    auto& q = rat_[resource];
    // Serve the most recently recorded row first: it is the hottest and the
    // most likely to take its alpha-write soon. Pop until a row that is
    // still at the limit is found: a demand alpha-write may have reset a
    // listed row in the meantime.
    while (!q.empty()) {
      const std::uint64_t key = q.back();
      q.pop_back();
      if (tracker_.refresh(key)) {
        ++work.rows;
        work.resources.push_back(resource);
        energy_.on_refresh(coded_line_bits());
        wear_.on_refresh(key);
        break;
      }
      bump(ctr_rat_stale_pop_, "rat.stale_pop");
    }
  }
  // Unconditional (by may be 0), matching the original inc()'s key creation.
  bump(ctr_refresh_rows_, "refresh.rows", work.rows);
  return work;
}

}  // namespace wompcm

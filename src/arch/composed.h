// The one Architecture implementation: a composition of orthogonal policies.
//
// A ComposedArchitecture wires a main-memory CodingPolicy, an optional
// per-rank WOM-cache CacheLayer (with its own CodingPolicy), and per-region
// RatRefreshPolicy instances into the Architecture interface the controller
// consumes. The five legacy monolithic classes (BaselinePcm, WomPcm,
// RefreshWomPcm, Wcpcm, FlipNWritePcm/SymmetricPcm) are canonical points in
// this space — make_architecture builds them as compositions, bit-identical
// to the originals — and the cross-product admits designs the paper never
// evaluated (Flip-N-Write behind a WOM-cache, hidden-page + refresh, a
// symmetric-latency cache).
#pragma once

#include <memory>

#include "arch/arch.h"
#include "arch/cache_layer.h"
#include "arch/coding_policy.h"
#include "arch/refresh_policy.h"

namespace wompcm {

class ComposedArchitecture final : public Architecture {
 public:
  // Resolves cfg.resolved_composition() and builds the policy stack. Throws
  // std::invalid_argument on an invalid composition or (when a WOM-coded
  // region exists) an unknown / non-inverted cfg.code.
  ComposedArchitecture(const MemoryGeometry& geom, const PcmTiming& timing,
                       const ArchConfig& cfg);

  std::string name() const override;

  unsigned num_resources() const override;
  unsigned route(const DecodedAddr& dec, AccessType type,
                 bool internal) const override;
  // With a cache front end, demand reads probe the mutable cache tags: a
  // queued read's destination can flip between main memory and the
  // WOM-cache while it waits.
  bool read_route_dynamic() const override { return cache_ != nullptr; }
  std::uint64_t route_version() const override {
    return cache_ == nullptr ? 0 : cache_->route_version();
  }
  unsigned resource_channel(unsigned resource) const override;
  bool is_cache_resource(unsigned resource) const override {
    return cache_ != nullptr && resource >= main_banks();
  }
  IssuePlan plan(const DecodedAddr& dec, AccessType type, bool internal,
                 Tick now) override;

  bool refresh_enabled() const override {
    return main_rat_ != nullptr || cache_rat_ != nullptr;
  }
  double refresh_pending_fraction(unsigned channel,
                                  unsigned rank) const override;
  RefreshWork perform_refresh(
      unsigned channel, unsigned rank,
      const std::function<bool(unsigned)>& unit_ready) override;
  std::vector<unsigned> refresh_resources(unsigned channel,
                                          unsigned rank) const override;

  // Sum of the regions' overheads: the main coding's expansion plus, with a
  // cache, one coded bank's worth of rows per rank.
  double capacity_overhead() const override;

  const Composition& composition() const { return comp_; }
  const CodingPolicy& main_coding() const { return *main_coding_; }
  // Null without a cache front end.
  const CacheLayer* cache() const { return cache_.get(); }
  // The WOM code shared by the WOM-coded regions; null when none exists.
  const WomCode* code() const { return code_.get(); }

  // Test access: pending rows in one main bank's / one cache array's RAT.
  std::size_t rat_size(unsigned flat_bank_idx) const {
    return main_rat_ == nullptr ? 0 : main_rat_->size(flat_bank_idx);
  }
  std::size_t cache_rat_size(unsigned cache_idx) const {
    return cache_rat_ == nullptr ? 0 : cache_rat_->size(cache_idx);
  }
  double write_hit_rate() const;
  double read_hit_rate() const;

 private:
  unsigned cache_resource(unsigned channel, unsigned rank) const {
    return main_banks() + cache_->index(channel, rank);
  }
  // Wear/fault row key for a cache row, disjoint from main-memory keys
  // (cache arrays are keyed as banks appended after the main banks).
  std::uint64_t cache_wear_key(unsigned cache_idx, unsigned row) const {
    return row_key_for(main_banks() + cache_idx, row);
  }
  IssuePlan plan_main_write(const DecodedAddr& dec, bool internal,
                            IssuePlan p);
  IssuePlan plan_cache_write(const DecodedAddr& dec, IssuePlan p);

  Composition comp_;
  // Channel of the access currently being planned (or rank being
  // refreshed). Set at the top of plan()/perform_refresh() and aliased by
  // the coding policies' RegionContext::channel, it keys every per-channel
  // stream — energy buckets, the FNW draw RNGs — so per-channel accounting
  // stays exact whether channels run interleaved (serial) or each on its
  // own worker against its own replica (sharded).
  unsigned active_channel_ = 0;
  WomCodePtr code_;  // symbol code behind a WOM-coded region; null when
                     // none exists or the region runs a native block family
  std::string main_code_name_;   // empty when main memory is not WOM-coded
  std::string cache_code_name_;  // empty without a WOM-coded cache
  std::unique_ptr<CodingPolicy> main_coding_;
  std::unique_ptr<CacheLayer> cache_;             // null = no front end
  std::unique_ptr<RatRefreshPolicy> main_rat_;    // null = not attached
  std::unique_ptr<RatRefreshPolicy> cache_rat_;   // null = not attached

  // Lazily-bound counter slots for the per-access hot path (see
  // Architecture::bump).
  std::uint64_t* ctr_reads_ = nullptr;
  std::uint64_t* ctr_write_hits_ = nullptr;
  std::uint64_t* ctr_write_misses_ = nullptr;
  std::uint64_t* ctr_victims_ = nullptr;
  std::uint64_t* ctr_read_hits_ = nullptr;
  std::uint64_t* ctr_read_misses_ = nullptr;
  std::uint64_t* ctr_dead_rows_ = nullptr;
  std::uint64_t* ctr_bypass_writes_ = nullptr;
  std::uint64_t* ctr_refresh_rows_ = nullptr;
};

}  // namespace wompcm

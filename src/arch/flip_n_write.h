// Flip-N-Write coding baseline (Cho & Lee, MICRO 2009) — ablation.
//
// Flip-N-Write stores each word either directly or complemented (plus a flip
// bit), guaranteeing at most half the bits are programmed per write. That
// bounds write *energy and endurance*, but a write completes at RESET
// latency only if the chosen encoding needs no SET pulse anywhere in the
// line — which for realistic data is rare. The paper's Section 1 makes this
// point against latency-aware coding schemes [16, 17]: they "need to SET a
// minimum number of PCM bits in each write operation".
//
// The timing model carries no data payloads, so the probability that a
// write turns out SET-free is an explicit parameter (default 0); energy is
// modelled with the halved programmed-bit guarantee.
#pragma once

#include "arch/arch.h"
#include "common/rng.h"

namespace wompcm {

class FlipNWritePcm final : public Architecture {
 public:
  FlipNWritePcm(const MemoryGeometry& geom, const PcmTiming& timing,
                double fast_fraction, std::uint64_t seed);

  std::string name() const override { return "flip-n-write"; }

  IssuePlan plan(const DecodedAddr& dec, AccessType type, bool internal,
                 Tick now) override;

  // One flip bit per data word.
  double capacity_overhead() const override { return 1.0 / 64.0; }

 private:
  double fast_fraction_;
  Rng rng_;
};

}  // namespace wompcm

// Generic set-associative tag state with pluggable replacement.
//
// A TagArray owns only the tag/valid/dirty bookkeeping of sets x ways
// frames; payloads live with the caller, keyed by the dense frame index
// slot(set, way). Victim selection is delegated to a replacement scheme so
// the same array serves both the paper's N_bank-way bank-tag WOM cache
// (bank_tag: a 1-way array whose "policy" is the direct-mapped occupant)
// and the DRAM-timing front tier (lru / fifo / random).
//
// Dispatch strategy: the replacement schemes form a *closed* set, so the
// hot hooks (touch / install / victim / invalidate) are an enum-switch over
// inline state (ReplacementState) that the compiler flattens into the
// callers — TagArray probes inline into CacheLayer and TierFront with no
// indirect call per access. The virtual ReplacementPolicy interface below
// is kept as the straight-line reference implementation: construction-time
// factory, the dispatch-equivalence suite, and WOMPCM_REFERENCE_DISPATCH
// builds (which route every TagArray hook through the virtuals, mirroring
// the scan_mode=reference pattern) are its only callers.
#pragma once

#include <cassert>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"

namespace wompcm {

// Replacement schemes a TagArray can be built with. kBankTag is the WOM
// cache's legacy scheme: one way per set, the set index is the row and the
// tag is the bank, so "replacement" is simply overwriting the occupant.
enum class ReplacementKind : std::uint8_t {
  kBankTag,
  kLru,
  kFifo,
  kRandom,
};

const char* to_string(ReplacementKind kind);
bool replacement_kind_from_string(const std::string& s, ReplacementKind* out);

// Victim-selection strategy for one TagArray: the reference (virtual)
// implementation of the closed scheme set. Implementations keep only
// recency/order metadata; validity and tags stay in the TagArray, which
// always prefers an invalid way before consulting victim().
class ReplacementPolicy {
 public:
  virtual ~ReplacementPolicy() = default;
  virtual const char* name() const = 0;
  // A lookup hit on (set, way).
  virtual void touch(unsigned set, unsigned way) = 0;
  // A fill installed a new tag into (set, way).
  virtual void install(unsigned set, unsigned way) = 0;
  // The way to evict from a full set. May mutate internal state (the
  // random policy draws from its RNG), so calls must be deterministic in
  // program order.
  virtual unsigned victim(unsigned set) = 0;
  // (set, way) was invalidated; it will be preferred for the next fill.
  virtual void invalidate(unsigned set, unsigned way) = 0;
};

// Reference factory. The seed only matters for kRandom; other kinds ignore
// it. Throws std::invalid_argument for bank_tag with ways != 1.
std::unique_ptr<ReplacementPolicy> make_replacement_policy(
    ReplacementKind kind, unsigned sets, unsigned ways, std::uint64_t seed);

// The monomorphized replacement state: one value type closed over the four
// schemes, dispatched by enum-switch so every hook inlines into the tag
// probe that calls it. Call-for-call identical to the ReplacementPolicy
// reference classes (tests/test_dispatch_equivalence.cc drives both with
// the same sequences and compares victim streams).
class ReplacementState {
 public:
  // Throws std::invalid_argument for bank_tag with ways != 1 (the set
  // index is the row and the tag is the bank; there is nothing to choose).
  ReplacementState(ReplacementKind kind, unsigned sets, unsigned ways,
                   std::uint64_t seed);

  ReplacementKind kind() const { return kind_; }
  const char* name() const { return to_string(kind_); }

  void touch(unsigned set, unsigned way) {
    // Only exact LRU refreshes a line's position on a hit.
    if (kind_ == ReplacementKind::kLru) mark(set, way);
  }

  void install(unsigned set, unsigned way) {
    // LRU and FIFO both stamp installs; FIFO simply never re-stamps.
    if (kind_ == ReplacementKind::kLru || kind_ == ReplacementKind::kFifo) {
      mark(set, way);
    }
  }

  unsigned victim(unsigned set) {
    switch (kind_) {
      case ReplacementKind::kBankTag:
        return 0;  // 1-way: the only possible victim is the occupant
      case ReplacementKind::kLru:
      case ReplacementKind::kFifo:
        return min_stamp_way(set);
      case ReplacementKind::kRandom:
        return static_cast<unsigned>(rng_.next_below(ways_));
    }
    return 0;
  }

  void invalidate(unsigned set, unsigned way) {
    if (kind_ == ReplacementKind::kLru || kind_ == ReplacementKind::kFifo) {
      stamp_[static_cast<std::size_t>(set) * ways_ + way] = 0;
    }
  }

 private:
  void mark(unsigned set, unsigned way) {
    stamp_[static_cast<std::size_t>(set) * ways_ + way] = ++clock_;
  }
  unsigned min_stamp_way(unsigned set) const {
    const std::uint64_t* base = &stamp_[static_cast<std::size_t>(set) * ways_];
    unsigned best = 0;
    for (unsigned w = 1; w < ways_; ++w) {
      if (base[w] < base[best]) best = w;
    }
    return best;
  }

  ReplacementKind kind_;
  unsigned ways_;
  std::uint64_t clock_ = 0;
  std::vector<std::uint64_t> stamp_;  // lru/fifo use stamps; empty otherwise
  Rng rng_;                           // drawn from by random only
};

class TagArray final {
 public:
  static constexpr unsigned kNoWay = ~0u;

  // The seed only matters for ReplacementKind::kRandom.
  TagArray(unsigned sets, unsigned ways, ReplacementKind repl,
           std::uint64_t seed = 0);

  unsigned sets() const { return sets_; }
  unsigned ways() const { return ways_; }
  ReplacementKind replacement() const { return repl_.kind(); }

  // Dense frame index for caller-side payload vectors.
  unsigned slot(unsigned set, unsigned way) const { return set * ways_ + way; }

  // Pure probe: the way holding `tag` in `set`, or kNoWay. Does not touch
  // replacement state — pair with touch() when the probe is a real access.
  unsigned lookup(unsigned set, std::uint64_t tag) const {
    const WayState* base = &frames_[static_cast<std::size_t>(set) * ways_];
    for (unsigned w = 0; w < ways_; ++w) {
      if (base[w].valid && base[w].tag == tag) return w;
    }
    return kNoWay;
  }

  bool valid(unsigned set, unsigned way) const {
    return frame(set, way).valid;
  }
  std::uint64_t tag(unsigned set, unsigned way) const {
    return frame(set, way).tag;
  }
  bool dirty(unsigned set, unsigned way) const {
    return frame(set, way).dirty;
  }
  void set_dirty(unsigned set, unsigned way, bool dirty) {
    frame(set, way).dirty = dirty;
  }

  // The way a fill into `set` will use: the first invalid way if any,
  // otherwise the policy's victim. Does not mutate tag state (the policy
  // may advance its RNG); follow with install() once the fill commits.
  unsigned fill_way(unsigned set);

  // Record a hit on (set, way) with the policy.
  void touch(unsigned set, unsigned way) {
#if defined(WOMPCM_REFERENCE_DISPATCH)
    ref_->touch(set, way);
#else
    repl_.touch(set, way);
#endif
  }

  // Install `tag` into (set, way), clobbering any previous occupant.
  void install(unsigned set, unsigned way, std::uint64_t tag) {
    WayState& f = frame(set, way);
    f.valid = true;
    f.tag = tag;
    f.dirty = false;
#if defined(WOMPCM_REFERENCE_DISPATCH)
    ref_->install(set, way);
#else
    repl_.install(set, way);
#endif
  }

  void invalidate(unsigned set, unsigned way) {
    WayState& f = frame(set, way);
    f.valid = false;
    f.dirty = false;
#if defined(WOMPCM_REFERENCE_DISPATCH)
    ref_->invalidate(set, way);
#else
    repl_.invalidate(set, way);
#endif
  }

 private:
  struct WayState {
    std::uint64_t tag = 0;
    bool valid = false;
    bool dirty = false;
  };

  WayState& frame(unsigned set, unsigned way) {
    assert(set < sets_ && way < ways_);
    return frames_[static_cast<std::size_t>(set) * ways_ + way];
  }
  const WayState& frame(unsigned set, unsigned way) const {
    assert(set < sets_ && way < ways_);
    return frames_[static_cast<std::size_t>(set) * ways_ + way];
  }

  unsigned sets_;
  unsigned ways_;
  ReplacementState repl_;
#if defined(WOMPCM_REFERENCE_DISPATCH)
  // Reference-dispatch builds route every hook through the virtual policy
  // (repl_ stays untouched), proving the goldens hold on either path.
  std::unique_ptr<ReplacementPolicy> ref_;
#endif
  std::vector<WayState> frames_;
};

}  // namespace wompcm

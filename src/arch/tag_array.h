// Generic set-associative tag state with pluggable replacement.
//
// A TagArray owns only the tag/valid/dirty bookkeeping of sets x ways
// frames; payloads live with the caller, keyed by the dense frame index
// slot(set, way). Victim selection is delegated to a ReplacementPolicy so
// the same array serves both the paper's N_bank-way bank-tag WOM cache
// (bank_tag: a 1-way array whose "policy" is the direct-mapped occupant)
// and the DRAM-timing front tier (lru / fifo / random).
#pragma once

#include <cassert>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace wompcm {

// Replacement schemes a TagArray can be built with. kBankTag is the WOM
// cache's legacy scheme: one way per set, the set index is the row and the
// tag is the bank, so "replacement" is simply overwriting the occupant.
enum class ReplacementKind : std::uint8_t {
  kBankTag,
  kLru,
  kFifo,
  kRandom,
};

const char* to_string(ReplacementKind kind);
bool replacement_kind_from_string(const std::string& s, ReplacementKind* out);

// Victim-selection strategy for one TagArray. Implementations keep only
// recency/order metadata; validity and tags stay in the TagArray, which
// always prefers an invalid way before consulting victim().
class ReplacementPolicy {
 public:
  virtual ~ReplacementPolicy() = default;
  virtual const char* name() const = 0;
  // A lookup hit on (set, way).
  virtual void touch(unsigned set, unsigned way) = 0;
  // A fill installed a new tag into (set, way).
  virtual void install(unsigned set, unsigned way) = 0;
  // The way to evict from a full set. May mutate internal state (the
  // random policy draws from its RNG), so calls must be deterministic in
  // program order.
  virtual unsigned victim(unsigned set) = 0;
  // (set, way) was invalidated; it will be preferred for the next fill.
  virtual void invalidate(unsigned set, unsigned way) = 0;
};

// The seed only matters for kRandom; other kinds ignore it.
std::unique_ptr<ReplacementPolicy> make_replacement_policy(
    ReplacementKind kind, unsigned sets, unsigned ways, std::uint64_t seed);

class TagArray final {
 public:
  static constexpr unsigned kNoWay = ~0u;

  TagArray(unsigned sets, unsigned ways,
           std::unique_ptr<ReplacementPolicy> repl);

  unsigned sets() const { return sets_; }
  unsigned ways() const { return ways_; }
  const ReplacementPolicy& policy() const { return *repl_; }

  // Dense frame index for caller-side payload vectors.
  unsigned slot(unsigned set, unsigned way) const { return set * ways_ + way; }

  // Pure probe: the way holding `tag` in `set`, or kNoWay. Does not touch
  // replacement state — pair with touch() when the probe is a real access.
  unsigned lookup(unsigned set, std::uint64_t tag) const {
    const WayState* base = &frames_[static_cast<std::size_t>(set) * ways_];
    for (unsigned w = 0; w < ways_; ++w) {
      if (base[w].valid && base[w].tag == tag) return w;
    }
    return kNoWay;
  }

  bool valid(unsigned set, unsigned way) const {
    return frame(set, way).valid;
  }
  std::uint64_t tag(unsigned set, unsigned way) const {
    return frame(set, way).tag;
  }
  bool dirty(unsigned set, unsigned way) const {
    return frame(set, way).dirty;
  }
  void set_dirty(unsigned set, unsigned way, bool dirty) {
    frame(set, way).dirty = dirty;
  }

  // The way a fill into `set` will use: the first invalid way if any,
  // otherwise the policy's victim. Does not mutate tag state (the policy
  // may advance its RNG); follow with install() once the fill commits.
  unsigned fill_way(unsigned set);

  // Record a hit on (set, way) with the policy.
  void touch(unsigned set, unsigned way) { repl_->touch(set, way); }

  // Install `tag` into (set, way), clobbering any previous occupant.
  void install(unsigned set, unsigned way, std::uint64_t tag) {
    WayState& f = frame(set, way);
    f.valid = true;
    f.tag = tag;
    f.dirty = false;
    repl_->install(set, way);
  }

  void invalidate(unsigned set, unsigned way) {
    WayState& f = frame(set, way);
    f.valid = false;
    f.dirty = false;
    repl_->invalidate(set, way);
  }

 private:
  struct WayState {
    std::uint64_t tag = 0;
    bool valid = false;
    bool dirty = false;
  };

  WayState& frame(unsigned set, unsigned way) {
    assert(set < sets_ && way < ways_);
    return frames_[static_cast<std::size_t>(set) * ways_ + way];
  }
  const WayState& frame(unsigned set, unsigned way) const {
    assert(set < sets_ && way < ways_);
    return frames_[static_cast<std::size_t>(set) * ways_ + way];
  }

  unsigned sets_;
  unsigned ways_;
  std::unique_ptr<ReplacementPolicy> repl_;
  std::vector<WayState> frames_;
};

}  // namespace wompcm

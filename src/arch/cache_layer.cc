#include "arch/cache_layer.h"

namespace wompcm {

CacheLayer::CacheLayer(const MemoryGeometry& geom,
                       std::unique_ptr<CodingPolicy> coding)
    : ranks_(geom.ranks),
      rows_per_bank_(geom.rows_per_bank),
      lines_per_row_(geom.lines_per_row()),
      coding_(std::move(coding)) {
  const unsigned arrays = geom.channels * geom.ranks;
  tags_.reserve(arrays);
  for (unsigned i = 0; i < arrays; ++i) {
    tags_.emplace_back(geom.rows_per_bank, /*ways=*/1,
                       ReplacementKind::kBankTag);
  }
  lines_.assign(arrays, std::vector<LineBits>(geom.rows_per_bank));
}

bool CacheLayer::probe_read_hit(const DecodedAddr& dec) const {
  const unsigned ci = index(dec.channel, dec.rank);
  return tags_[ci].valid(dec.row, 0) &&
         tags_[ci].tag(dec.row, 0) == dec.bank &&
         line_set(ci, dec.row, dec.col);
}

void CacheLayer::install(unsigned cache_idx, unsigned row, unsigned bank,
                         unsigned line) {
  TagArray& t = tags_[cache_idx];
  if (t.valid(row, 0) && t.tag(row, 0) == bank) {
    t.touch(row, 0);
  } else {
    t.install(row, 0, bank);
  }
  LineBits& bits = lines_[cache_idx][row];
  if (bits.empty()) bits.assign((lines_per_row_ + 63) / 64, 0);
  bits[line / 64] |= std::uint64_t{1} << (line % 64);
}

}  // namespace wompcm

#include "arch/cache_layer.h"

namespace wompcm {

CacheLayer::CacheLayer(const MemoryGeometry& geom,
                       std::unique_ptr<CodingPolicy> coding)
    : ranks_(geom.ranks),
      rows_per_bank_(geom.rows_per_bank),
      coding_(std::move(coding)),
      tags_(geom.channels * geom.ranks,
            std::vector<TagEntry>(geom.rows_per_bank)) {}

bool CacheLayer::probe_read_hit(const DecodedAddr& dec) const {
  const TagEntry& e = tags_[index(dec.channel, dec.rank)][dec.row];
  return e.valid && e.bank == dec.bank && get_line(e, dec.col);
}

void CacheLayer::set_line(TagEntry& e, unsigned line,
                          unsigned lines_per_row) {
  if (e.line_valid.empty()) {
    e.line_valid.assign((lines_per_row + 63) / 64, 0);
  }
  e.line_valid[line / 64] |= std::uint64_t{1} << (line % 64);
}

bool CacheLayer::get_line(const TagEntry& e, unsigned line) {
  if (e.line_valid.empty()) return false;
  return (e.line_valid[line / 64] >> (line % 64)) & 1;
}

}  // namespace wompcm

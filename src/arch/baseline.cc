#include "arch/baseline.h"

namespace wompcm {

IssuePlan BaselinePcm::plan(const DecodedAddr& dec, AccessType type,
                            bool internal, Tick now) {
  (void)internal;
  (void)now;
  IssuePlan p;
  p.resource = flat_bank(dec);
  p.row = physical_row(dec, type, &p);
  if (type == AccessType::kWrite) {
    // A conventional write almost surely needs SET pulses somewhere in the
    // line, so it completes at the full row-write latency.
    p.write_class = WriteClass::kAlpha;
    p.program_ns = timing_.row_write_ns;
    fault_on_write(p.resource, dec.channel, dec.col, /*allow_remap=*/true, &p);
    counters_.inc("writes.slow");
    energy_.on_write(WriteClass::kAlpha, line_bits());
    // A conventional bit-alterable write flips about half the cells.
    wear_.on_write_pulses(row_key_for(p.resource, p.row), dec.col,
                          kResetOnlyWearPerCell);
  } else {
    counters_.inc("reads");
    energy_.on_read(line_bits());
    fault_on_read(dec.channel, &p);
  }
  return p;
}

IssuePlan SymmetricPcm::plan(const DecodedAddr& dec, AccessType type,
                             bool internal, Tick now) {
  (void)internal;
  (void)now;
  IssuePlan p;
  p.resource = flat_bank(dec);
  p.row = physical_row(dec, type, &p);
  if (type == AccessType::kWrite) {
    // The what-if: every write completes at RESET latency.
    p.write_class = WriteClass::kResetOnly;
    p.program_ns = timing_.reset_ns;
    fault_on_write(p.resource, dec.channel, dec.col, /*allow_remap=*/true, &p);
    counters_.inc("writes.fast");
    energy_.on_write(p.write_class, line_bits());
    wear_.on_write_pulses(row_key_for(p.resource, p.row), dec.col,
                          kResetOnlyWearPerCell);
  } else {
    counters_.inc("reads");
    energy_.on_read(line_bits());
    fault_on_read(dec.channel, &p);
  }
  return p;
}

}  // namespace wompcm

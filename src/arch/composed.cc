#include "arch/composed.h"

#include "arch/coding_dispatch.h"

namespace wompcm {

ComposedArchitecture::ComposedArchitecture(const MemoryGeometry& geom,
                                           const PcmTiming& timing,
                                           const ArchConfig& cfg)
    : Architecture(geom, timing), comp_(cfg.resolved_composition()) {
  // Resolve each WOM-coded region's code (main.code= / cache.code=
  // override, else the shared legacy code= key or the family default). A
  // raw/fnw composition must build even with an unresolvable cfg.code,
  // exactly as the monolithic classes ignored it — resolve_region_code
  // returns an empty RegionCode for the non-WOM kinds without looking at
  // the name.
  RegionCode main_rc = resolve_region_code(comp_.main_coding, cfg.main_code,
                                           cfg.code, line_bits());
  RegionCode cache_rc;
  if (comp_.cache_enabled) {
    cache_rc = resolve_region_code(comp_.cache_coding, cfg.cache_code,
                                   cfg.code, line_bits());
  }
  main_code_name_ = main_rc.name;
  cache_code_name_ = cache_rc.name;
  code_ = main_rc.code != nullptr ? main_rc.code : cache_rc.code;
  RegionContext ctx{&timing_, &counters_, &energy_, &wear_, line_bits()};
  ctx.channel = &active_channel_;
  ctx.channels = geom.channels;
  main_coding_ = make_coding_policy(comp_.main_coding, ctx,
                                    std::move(main_rc), geom.lines_per_row(),
                                    /*erased_start=*/false,
                                    cfg.fnw_fast_fraction, cfg.seed);
  if (comp_.cache_enabled) {
    // The cache's small array is formatted at boot and cycles through
    // refresh continuously, so its untouched rows start erased.
    cache_ = std::make_unique<CacheLayer>(
        geom, make_coding_policy(comp_.cache_coding, ctx, std::move(cache_rc),
                                 geom.lines_per_row(), /*erased_start=*/true,
                                 cfg.fnw_fast_fraction, cfg.seed));
  }
  if (comp_.refresh == RefreshKind::kRat) {
    // A RAT attaches to each region whose coding has refreshable
    // generation state (validate_composition guarantees at least one).
    if (main_coding_->refreshable()) {
      // Serve the most recently recorded row first: it is the hottest and
      // the most likely to take its alpha-write soon.
      main_rat_ = std::make_unique<RatRefreshPolicy>(
          main_banks(), cfg.rat_entries, RatRefreshPolicy::ServeOrder::kNewestFirst,
          &counters_);
    }
    if (cache_ != nullptr && cache_->coding().refreshable()) {
      // The cache array cycles continuously through refresh, so its RAT
      // drains in insertion order.
      cache_rat_ = std::make_unique<RatRefreshPolicy>(
          geom.channels * geom.ranks, cfg.rat_entries,
          RatRefreshPolicy::ServeOrder::kOldestFirst, &counters_);
    }
  }
}

std::string ComposedArchitecture::name() const {
  // Canonical compositions keep the legacy names every config, bench and
  // plot already uses.
  const char* org = comp_.main_coding == CodingKind::kWomHidden
                        ? to_string(WomOrganization::kHiddenPage)
                        : to_string(WomOrganization::kWideColumn);
  // The legacy one-region names belong to the classic whole-line kinds; the
  // sectioned families (polar, ts-constrained) always spell themselves out.
  const bool classic_main = comp_.main_coding == CodingKind::kWomWide ||
                            comp_.main_coding == CodingKind::kWomHidden;
  if (cache_ == nullptr) {
    if (comp_.refresh == RefreshKind::kNone) {
      switch (comp_.main_coding) {
        case CodingKind::kRaw:
          return "pcm";
        case CodingKind::kFlipNWrite:
          return "flip-n-write";
        case CodingKind::kSymmetric:
          return "symmetric-ideal";
        case CodingKind::kWomWide:
        case CodingKind::kWomHidden:
          return std::string("wom-pcm[") + main_code_name_ + "," + org + "]";
        case CodingKind::kPolar:
        case CodingKind::kTsConstrained:
          break;
      }
    } else if (classic_main) {
      return std::string("pcm-refresh[") + main_code_name_ + "," + org + "]";
    }
  } else if (comp_ == Composition{CodingKind::kRaw, true, CodingKind::kWomWide,
                                  RefreshKind::kRat}) {
    return std::string("wcpcm[") + cache_code_name_ + "]";
  }
  // Novel compositions spell themselves out.
  std::string s = std::string("composed[main=") + to_string(comp_.main_coding);
  if (cache_ != nullptr) {
    s += std::string(",cache=") + to_string(comp_.cache_coding);
  }
  s += std::string(",refresh=") + to_string(comp_.refresh);
  const bool main_wom = is_wom_coding(comp_.main_coding);
  const bool cache_wom =
      cache_ != nullptr && is_wom_coding(comp_.cache_coding);
  if (main_wom && cache_wom && main_code_name_ != cache_code_name_) {
    s += ",main.code=" + main_code_name_ + ",cache.code=" + cache_code_name_;
  } else if (main_wom || cache_wom) {
    s += ",code=" + (main_wom ? main_code_name_ : cache_code_name_);
  }
  s += "]";
  return s;
}

unsigned ComposedArchitecture::num_resources() const {
  return main_banks() + (cache_ == nullptr ? 0 : cache_->arrays());
}

unsigned ComposedArchitecture::resource_channel(unsigned resource) const {
  if (resource < main_banks()) return Architecture::resource_channel(resource);
  // Cache arrays are appended channel-major by rank (see CacheLayer::index).
  return (resource - main_banks()) / geom_.ranks;
}

unsigned ComposedArchitecture::route(const DecodedAddr& dec, AccessType type,
                                     bool internal) const {
  if (cache_ == nullptr) return flat_bank(dec);
  if (internal) return flat_bank(dec);  // victim write-back to main memory
  if (type == AccessType::kWrite) {
    return main_banks() + cache_->index(dec.channel, dec.rank);
  }
  // Reads probe cache and main memory in parallel; a hit is served by the
  // cache array, a miss by the main bank.
  return cache_->probe_read_hit(dec)
             ? main_banks() + cache_->index(dec.channel, dec.rank)
             : flat_bank(dec);
}

IssuePlan ComposedArchitecture::plan_main_write(const DecodedAddr& dec,
                                                bool internal, IssuePlan p) {
  std::uint64_t key = row_key_for(p.resource, p.row);
  const CodingPolicy::WriteBegin rec =
      coding_begin_write(comp_.main_coding, *main_coding_, key, dec.col, &p);
  const FaultOutcome f =
      fault_on_write(p.resource, dec.channel, dec.col, /*allow_remap=*/true,
                     &p);
  if (f.remapped) {
    // The row moved to a fresh spare: start its generation there so the
    // rewrite budget tracks the cells actually being programmed.
    key = row_key_for(p.resource, p.row);
    coding_note_remap(comp_.main_coding, *main_coding_, key, dec.col);
  }
  const bool at_limit =
      coding_finish_write(comp_.main_coding, *main_coding_, rec, f.demoted,
                          key, key, dec.col, internal, &p);
  if (at_limit && main_rat_ != nullptr) main_rat_->touch(p.resource, key);
  return p;
}

IssuePlan ComposedArchitecture::plan_cache_write(const DecodedAddr& dec,
                                                 IssuePlan p) {
  const unsigned ci = cache_->index(dec.channel, dec.rank);
  p.resource = main_banks() + ci;
  p.pre_ns += timing_.tag_check_ns;
  if (faults_enabled() && cache_->row_dead(ci, dec.row)) {
    // The cache row was retired: the line is latched into the write
    // register (tag check only, no cell programming) and forwarded to PCM
    // main memory as an internal write.
    p.spawned.push_back(SpawnedWrite{dec});
    bump(ctr_bypass_writes_, "wcpcm.bypass_writes");
    return p;
  }
  const bool occupied = cache_->valid(ci, dec.row);
  const unsigned occupant = cache_->installed_bank(ci, dec.row);
  const bool hit = !occupied || occupant == dec.bank;
  // The mutations below change some queued read's probe outcome exactly
  // when the entry is installed, re-banked, or gains a new valid line; a
  // re-write of an already-valid line leaves every probe unchanged.
  if (!occupied || occupant != dec.bank ||
      !cache_->line_set(ci, dec.row, dec.col)) {
    cache_->note_route_change();
  }
  if (hit) {
    bump(ctr_write_hits_, "wcpcm.write_hits");
  } else {
    bump(ctr_write_misses_, "wcpcm.write_misses");
    // Read the victim row out to the register, then hand it to the
    // main-memory write queue; the new install starts with only the
    // written line valid.
    p.pre_ns += timing_.row_read_ns;
    DecodedAddr victim = dec;
    victim.bank = occupant;
    p.spawned.push_back(SpawnedWrite{victim});
    bump(ctr_victims_, "wcpcm.victims");
    cache_->evict_lines(ci, dec.row);
  }
  const std::uint64_t track_key = cache_->row_key(ci, dec.row);
  CodingPolicy& coding = cache_->coding();
  const CodingPolicy::WriteBegin rec =
      coding_begin_write(comp_.cache_coding, coding, track_key, dec.col, &p);
  // No spare pool behind the cache array: a dead verdict is handled below
  // by invalidate-and-bypass.
  const FaultOutcome f = fault_on_write(main_banks() + ci, dec.channel,
                                        dec.col, /*allow_remap=*/false, &p);
  const bool at_limit =
      coding_finish_write(comp_.cache_coding, coding, rec, f.demoted,
                          track_key, cache_wear_key(ci, dec.row), dec.col,
                          /*internal=*/false, &p);
  if (f.dead_unmapped) {
    // The row can no longer be programmed reliably: retire it from cache
    // service. A miss already flushed the previous occupant; on a hit the
    // bypass write below refreshes the same main-memory row, so the entry
    // is invalidated outright and the demand line re-queued to main. The
    // dead set makes every later write bypass before touching the tags.
    cache_->note_route_change();  // invalidation can flip a queued probe
    cache_->invalidate(ci, dec.row);
    cache_->mark_dead(ci, dec.row);
    bump(ctr_dead_rows_, "wcpcm.dead_rows");
    p.spawned.push_back(SpawnedWrite{dec});
    bump(ctr_bypass_writes_, "wcpcm.bypass_writes");
    return p;
  }
  if (at_limit && cache_rat_ != nullptr) cache_rat_->touch(ci, dec.row);
  cache_->install(ci, dec.row, dec.bank, dec.col);
  return p;
}

IssuePlan ComposedArchitecture::plan(const DecodedAddr& dec, AccessType type,
                                     bool internal, Tick now) {
  (void)now;
  // Key every per-channel accounting stream for this access (see the
  // active_channel_ declaration).
  active_channel_ = dec.channel;
  energy_.select_channel(dec.channel);
  IssuePlan p;
  p.row = dec.row;

  if (cache_ != nullptr) {
    if (internal) {
      // Victim write-back (or dead-row bypass) to main memory, through the
      // bank's bad-row chain (never Start-Gap: the cache index is the row
      // address).
      p.resource = flat_bank(dec);
      p.row = resolved_row(p.resource, dec.row);
      return plan_main_write(dec, /*internal=*/true, std::move(p));
    }
    if (type == AccessType::kWrite) {
      return plan_cache_write(dec, std::move(p));
    }
    // Read: parallel probe, tag-comparison penalty either way.
    p.pre_ns += timing_.tag_check_ns;
    if (cache_->probe_read_hit(dec)) {
      bump(ctr_read_hits_, "wcpcm.read_hits");
      p.resource = main_banks() + cache_->index(dec.channel, dec.rank);
      coding_read_energy(comp_.cache_coding, cache_->coding(), &p);
      fault_on_read(dec.channel, &p);
      coding_read_extras(comp_.cache_coding, cache_->coding(), &p);
    } else {
      bump(ctr_read_misses_, "wcpcm.read_misses");
      p.resource = flat_bank(dec);
      p.row = resolved_row(p.resource, dec.row);
      coding_read_energy(comp_.main_coding, *main_coding_, &p);
      fault_on_read(dec.channel, &p);
      coding_read_extras(comp_.main_coding, *main_coding_, &p);
    }
    return p;
  }

  // No cache front end: every access addresses main memory, through wear
  // leveling and the bad-row chain.
  p.resource = flat_bank(dec);
  p.row = physical_row(dec, type, &p);
  if (type == AccessType::kWrite) {
    return plan_main_write(dec, internal, std::move(p));
  }
  bump(ctr_reads_, "reads");
  coding_read_energy(comp_.main_coding, *main_coding_, &p);
  fault_on_read(dec.channel, &p);
  coding_read_extras(comp_.main_coding, *main_coding_, &p);
  return p;
}

double ComposedArchitecture::refresh_pending_fraction(unsigned channel,
                                                      unsigned rank) const {
  unsigned total = 0;
  unsigned pending = 0;
  if (main_rat_ != nullptr) {
    const unsigned base =
        (channel * geom_.ranks + rank) * geom_.banks_per_rank;
    total += geom_.banks_per_rank;
    for (unsigned b = 0; b < geom_.banks_per_rank; ++b) {
      if (main_rat_->pending(base + b)) ++pending;
    }
  }
  if (cache_rat_ != nullptr) {
    total += 1;
    if (cache_rat_->pending(cache_->index(channel, rank))) ++pending;
  }
  return total == 0 ? 0.0
                    : static_cast<double>(pending) / static_cast<double>(total);
}

Architecture::RefreshWork ComposedArchitecture::perform_refresh(
    unsigned channel, unsigned rank,
    const std::function<bool(unsigned)>& unit_ready) {
  RefreshWork work;
  if (main_rat_ == nullptr && cache_rat_ == nullptr) return work;
  // Refresh energy (and any policy draws) charge this rank's channel.
  active_channel_ = channel;
  energy_.select_channel(channel);
  if (main_rat_ != nullptr) {
    const unsigned base =
        (channel * geom_.ranks + rank) * geom_.banks_per_rank;
    for (unsigned b = 0; b < geom_.banks_per_rank; ++b) {
      const unsigned resource = base + b;
      if (!unit_ready(resource)) continue;  // demand in flight: skip the bank
      if (main_rat_->refresh_one(resource, [&](std::uint64_t key) {
            return main_coding_->refresh_row(key, key);
          })) {
        ++work.rows;
        work.resources.push_back(resource);
      }
    }
  }
  if (cache_rat_ != nullptr) {
    // One command streams one pending row of this rank's cache array
    // through the row buffer, mirroring the rank-wide "refresh a page per
    // bank" rule.
    const unsigned resource = cache_resource(channel, rank);
    if (unit_ready(resource)) {
      const unsigned ci = cache_->index(channel, rank);
      if (cache_rat_->refresh_one(ci, [&](std::uint64_t row) {
            const unsigned r = static_cast<unsigned>(row);
            // Retired rows have nothing to refresh.
            if (faults_enabled() && cache_->row_dead(ci, r)) return false;
            return cache_->coding().refresh_row(cache_->row_key(ci, r),
                                                cache_wear_key(ci, r));
          })) {
        ++work.rows;
        work.resources.push_back(resource);
      }
    }
  }
  // Unconditional (by may be 0), matching the original inc()'s key creation.
  bump(ctr_refresh_rows_, "refresh.rows", work.rows);
  return work;
}

std::vector<unsigned> ComposedArchitecture::refresh_resources(
    unsigned channel, unsigned rank) const {
  if (cache_rat_ != nullptr && main_rat_ == nullptr) {
    return {cache_resource(channel, rank)};
  }
  std::vector<unsigned> res = Architecture::refresh_resources(channel, rank);
  if (cache_rat_ != nullptr) res.push_back(cache_resource(channel, rank));
  return res;
}

double ComposedArchitecture::capacity_overhead() const {
  double overhead = main_coding_->overhead();
  if (cache_ != nullptr) {
    // The cache stores one coded bank's worth of rows per rank:
    // (1 + coding overhead) / N_bank of the main capacity.
    overhead += (1.0 + cache_->coding().overhead()) /
                static_cast<double>(geom_.banks_per_rank);
  }
  return overhead;
}

double ComposedArchitecture::write_hit_rate() const {
  const auto h = counters_.get("wcpcm.write_hits");
  const auto m = counters_.get("wcpcm.write_misses");
  return h + m == 0 ? 0.0
                    : static_cast<double>(h) / static_cast<double>(h + m);
}

double ComposedArchitecture::read_hit_rate() const {
  const auto h = counters_.get("wcpcm.read_hits");
  const auto m = counters_.get("wcpcm.read_misses");
  return h + m == 0 ? 0.0
                    : static_cast<double>(h) / static_cast<double>(h + m);
}

}  // namespace wompcm

// The concrete CodingPolicy implementations (a closed set).
//
// These final classes used to live in coding_policy.cc's anonymous
// namespace; they are public so the composed hot path can monomorphize the
// per-access hooks — coding_dispatch.h switches on CodingKind and calls the
// final class's member through a static_cast, which the compiler resolves
// to a direct (inlinable) call. The virtual CodingPolicy interface remains
// the contract for cold paths (construction, describe, refresh) and the
// reference dispatch mode; make_coding_policy (coding_policy.h) is still
// the only way to build one, and guarantees kind() matches the dynamic
// type (kWomWide and kWomHidden are both WomCoding).
#pragma once

#include <stdexcept>
#include <vector>

#include "arch/coding_policy.h"

namespace wompcm {

// Conventional PCM: every write almost surely needs SET pulses somewhere in
// the line, so it completes at the full row-write latency.
class RawCoding final : public CodingPolicy {
 public:
  using CodingPolicy::CodingPolicy;

  CodingKind kind() const override { return CodingKind::kRaw; }
  double overhead() const override { return 0.0; }

  WriteBegin begin_write(std::uint64_t, unsigned, IssuePlan* p) override {
    p->write_class = WriteClass::kAlpha;
    p->program_ns = ctx_.timing->row_write_ns;
    return {WriteClass::kAlpha, false};
  }

  bool finish_write(const WriteBegin&, bool, std::uint64_t,
                    std::uint64_t wear_key, unsigned line, bool internal,
                    IssuePlan*) override {
    if (internal) {
      bump(ctr_victim_, "writes.victim");
    } else {
      bump(ctr_slow_, "writes.slow");
    }
    ctx_.energy->on_write(WriteClass::kAlpha, ctx_.line_bits);
    // A conventional bit-alterable write flips about half the cells.
    ctx_.wear->on_write_pulses(wear_key, line, kResetOnlyWearPerCell);
    return false;
  }

  void read_energy(IssuePlan*) override {
    ctx_.energy->on_read(ctx_.line_bits);
  }

 private:
  std::uint64_t* ctr_slow_ = nullptr;
};

// Hypothetical symmetric-write memory: SET as fast as RESET (S = 1), the
// latency upper bound every WOM scheme chases.
class SymmetricCoding final : public CodingPolicy {
 public:
  using CodingPolicy::CodingPolicy;

  CodingKind kind() const override { return CodingKind::kSymmetric; }
  double overhead() const override { return 0.0; }

  WriteBegin begin_write(std::uint64_t, unsigned, IssuePlan* p) override {
    p->write_class = WriteClass::kResetOnly;
    p->program_ns = ctx_.timing->reset_ns;
    return {WriteClass::kResetOnly, false};
  }

  bool finish_write(const WriteBegin&, bool, std::uint64_t,
                    std::uint64_t wear_key, unsigned line, bool internal,
                    IssuePlan* p) override {
    if (internal) {
      bump(ctr_victim_, "writes.victim");
    } else {
      bump(ctr_fast_, "writes.fast");
    }
    // Post-fault class: a demoted write is charged at the alpha rate.
    ctx_.energy->on_write(p->write_class, ctx_.line_bits);
    ctx_.wear->on_write_pulses(wear_key, line, kResetOnlyWearPerCell);
    return false;
  }

  void read_energy(IssuePlan*) override {
    ctx_.energy->on_read(ctx_.line_bits);
  }

 private:
  std::uint64_t* ctr_fast_ = nullptr;
};

// Flip-N-Write (Cho & Lee, MICRO 2009): at most half the bits programmed
// per write, but RESET-latency completion only when the chosen encoding
// needs no SET pulse anywhere — an explicit probability here, since the
// timing model carries no data payloads.
class FnwCoding final : public CodingPolicy {
 public:
  FnwCoding(const RegionContext& ctx, double fast_fraction, std::uint64_t seed)
      : CodingPolicy(ctx), fast_fraction_(fast_fraction) {
    // One generator per channel, so the fast/slow draw sequence each
    // channel sees depends only on that channel's own write order — not on
    // cross-channel interleaving (the sharded-run determinism contract,
    // mirroring FaultModel's per-channel event streams). Channel 0 seeds
    // exactly as the single shared generator used to, keeping
    // single-channel runs bit-identical.
    rngs_.reserve(ctx.channels == 0 ? 1 : ctx.channels);
    for (unsigned c = 0; c < (ctx.channels == 0 ? 1 : ctx.channels); ++c) {
      rngs_.emplace_back(seed ^ (0x9e3779b97f4a7c15ULL * c));
    }
  }

  CodingKind kind() const override { return CodingKind::kFlipNWrite; }
  // One flip bit per data word.
  double overhead() const override { return 1.0 / 64.0; }

  WriteBegin begin_write(std::uint64_t, unsigned, IssuePlan* p) override {
    Rng& rng = rngs_[active_channel()];
    const bool fast = fast_fraction_ > 0.0 && rng.next_bool(fast_fraction_);
    p->write_class = fast ? WriteClass::kResetOnly : WriteClass::kAlpha;
    p->program_ns = ctx_.timing->program_ns(p->write_class);
    return {p->write_class, false};
  }

  bool finish_write(const WriteBegin& rec, bool, std::uint64_t,
                    std::uint64_t wear_key, unsigned line, bool internal,
                    IssuePlan* p) override {
    if (internal) {
      bump(ctr_victim_, "writes.victim");
    } else if (rec.cls == WriteClass::kResetOnly) {
      bump(ctr_fast_, "writes.fast");
    } else {
      bump(ctr_slow_, "writes.slow");
    }
    // Flip-N-Write programs at most half the line's bits.
    ctx_.energy->on_write(p->write_class, ctx_.line_bits / 2);
    ctx_.wear->on_write_pulses(wear_key, line, kResetOnlyWearPerCell / 2);
    return false;
  }

  void read_energy(IssuePlan*) override {
    ctx_.energy->on_read(ctx_.line_bits);
  }

 private:
  double fast_fraction_;
  std::vector<Rng> rngs_;  // one per channel, indexed by active_channel()
  std::uint64_t* ctr_fast_ = nullptr;
  std::uint64_t* ctr_slow_ = nullptr;
};

// Inverted WOM-code region (Section 3.1): rewrites within the code's budget
// are RESET-only; a row at the limit takes the alpha-write. The hidden-page
// organization pays a dependent second access per demand read and write.
//
// One class serves all four WOM kinds. The classic kinds (wide, hidden)
// budget whole lines: one tracker slot per line, alpha when the line's
// generation is exhausted. The sectioned kinds (polar, ts-constrained)
// budget rc.sections_per_line independent sections per line: the tracker
// holds one slot per section, a line write advances every section's
// generation, and the write is RESET-only iff *all* touched sections still
// had budget (partial re-init pays the alpha latency for the whole line —
// the slow sections gate completion).
class WomCoding final : public CodingPolicy {
 public:
  WomCoding(const RegionContext& ctx, CodingKind kind, RegionCode rc,
            unsigned lines_per_row, bool erased_start)
      : CodingPolicy(ctx),
        kind_(kind),
        code_(std::move(rc.code)),
        name_(std::move(rc.name)),
        data_bits_(rc.data_bits),
        wits_(rc.wits),
        max_writes_(rc.max_writes),
        wear_bound_(rc.wear_bound),
        lut_(rc.lut),
        spl_(rc.sections_per_line),
        hidden_(kind == CodingKind::kWomHidden),
        tracker_(rc.max_writes >= 1 ? rc.max_writes : 1,
                 lines_per_row * (rc.sections_per_line >= 1
                                      ? rc.sections_per_line
                                      : 1),
                 erased_start) {
    if (!is_wom_coding(kind)) {
      throw std::invalid_argument("WomCoding: non-WOM coding kind");
    }
    if (data_bits_ == 0 || wits_ == 0 || max_writes_ == 0 || spl_ == 0) {
      throw std::invalid_argument("WomCoding: null code");
    }
  }

  CodingKind kind() const override { return kind_; }
  double overhead() const override {
    return static_cast<double>(wits_) / data_bits_ - 1.0;
  }
  const WomCode* code() const override { return code_.get(); }
  const std::string& code_name() const { return name_; }
  const WomStateTracker& tracker() const { return tracker_; }
  unsigned sections_per_line() const { return spl_; }

  WriteBegin begin_write(std::uint64_t track_key, unsigned line,
                         IssuePlan* p) override {
    const auto rec =
        spl_ == 1 ? tracker_.record_write(track_key, line)
                  : tracker_.record_write_range(track_key, line * spl_, spl_);
    p->write_class = rec.cls;
    p->program_ns = ctx_.timing->program_ns(rec.cls);
    return {rec.cls, rec.cold};
  }

  void note_remap(std::uint64_t track_key, unsigned line) override {
    if (spl_ == 1) {
      tracker_.record_write(track_key, line);
    } else {
      tracker_.record_write_range(track_key, line * spl_, spl_);
    }
  }

  bool finish_write(const WriteBegin& rec, bool demoted,
                    std::uint64_t track_key, std::uint64_t wear_key,
                    unsigned line, bool internal, IssuePlan* p) override {
    if (internal) {
      bump(ctr_victim_, "writes.victim");
    } else if (p->write_class == WriteClass::kAlpha) {
      bump(ctr_alpha_, "writes.alpha");
      // A cold alpha was alpha-classed before the fault pipeline ran, so it
      // can never also be a demotion; the guard keeps that invariant local.
      if (rec.cold && !demoted) bump(ctr_alpha_cold_, "writes.alpha.cold");
    } else {
      bump(ctr_fast_, "writes.fast");
    }
    // Every line write runs the encode once per line; publish whether it
    // took the two-lookup LUT fast path or the per-symbol fallback.
    if (lut_) {
      bump(ctr_lut_hits_, "codec.lut_hits");
    } else {
      bump(ctr_lut_fallbacks_, "codec.lut_fallbacks");
    }
    ctx_.energy->on_write(p->write_class, coded_line_bits());
    if (wear_bound_ == 1.0) {
      ctx_.wear->on_write(wear_key, line, p->write_class);
    } else {
      // A wear-bounded family (time-space constrained) touches at most
      // wear_bound_ of the region's cells per write — scale the per-cell
      // wear rates accordingly.
      ctx_.wear->on_write_pulses(
          wear_key, line,
          (p->write_class == WriteClass::kResetOnly ? kResetOnlyWearPerCell
                                                    : kAlphaWearPerCell) *
              wear_bound_);
    }
    if (hidden_) {
      // The upper half-codeword lives in a hidden page the controller
      // reserves in a parallel bank region, so its program overlaps the
      // main one; the cost is the extra command/data transfer plus the
      // tail of the (half-width) hidden program that outlasts the overlap.
      p->post_ns += ctx_.timing->burst_ns() + ctx_.timing->tag_check_ns;
      bump(ctr_hidden_writes_, "hidden_page.extra_writes");
    }
    return tracker_.row_has_limit_lines(track_key);
  }

  void read_energy(IssuePlan*) override {
    ctx_.energy->on_read(coded_line_bits());
  }

  void read_extras(IssuePlan* p) override {
    if (!hidden_) return;
    // Fetch the hidden half-codeword (parallel bank region) before decode:
    // one extra column access plus its burst.
    p->post_ns += ctx_.timing->col_read_ns + ctx_.timing->burst_ns();
    bump(ctr_hidden_reads_, "hidden_page.extra_reads");
  }

  bool refresh_row(std::uint64_t track_key, std::uint64_t wear_key) override {
    if (!tracker_.refresh(track_key)) return false;
    ctx_.energy->on_refresh(coded_line_bits());
    ctx_.wear->on_refresh(wear_key);
    return true;
  }

  bool refreshable() const override { return true; }

 private:
  // Coded bits programmed per line write, for the energy model.
  std::uint64_t coded_line_bits() const {
    return ctx_.line_bits * wits_ / data_bits_;
  }

  CodingKind kind_;
  WomCodePtr code_;  // symbol code behind the classic kinds; may be null
  std::string name_;
  unsigned data_bits_;
  unsigned wits_;
  unsigned max_writes_;
  double wear_bound_;
  bool lut_;
  unsigned spl_;  // sections per line (1 for the classic whole-line kinds)
  bool hidden_;
  WomStateTracker tracker_;
  std::uint64_t* ctr_alpha_ = nullptr;
  std::uint64_t* ctr_alpha_cold_ = nullptr;
  std::uint64_t* ctr_fast_ = nullptr;
  std::uint64_t* ctr_lut_hits_ = nullptr;
  std::uint64_t* ctr_lut_fallbacks_ = nullptr;
  std::uint64_t* ctr_hidden_writes_ = nullptr;
  std::uint64_t* ctr_hidden_reads_ = nullptr;
};

}  // namespace wompcm

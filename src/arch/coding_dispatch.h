// Monomorphized per-access dispatch over the closed CodingPolicy set.
//
// The composed hot path calls every per-access hook (begin_write,
// note_remap, finish_write, read_energy, read_extras) through these inline
// helpers: a switch on the CodingKind the composition already stores plus a
// static_cast to the final concrete class, which the compiler resolves to a
// direct, inlinable call instead of a vtable load per access. Cold paths
// (construction, describe, refresh) keep the virtual interface.
//
// The cast is sound because make_coding_policy is the only way to build a
// policy and guarantees the kind <-> dynamic-type mapping (kWomWide and
// kWomHidden are both WomCoding). The dispatch-equivalence suite
// (tests/test_dispatch_equivalence.cc) checks these helpers against the
// virtual calls hook-for-hook; building with -DWOMPCM_REFERENCE_DISPATCH=ON
// routes them through the virtuals outright.
#pragma once

#include "arch/coding_policies.h"

namespace wompcm {

inline CodingPolicy::WriteBegin coding_begin_write(CodingKind kind,
                                                   CodingPolicy& pol,
                                                   std::uint64_t track_key,
                                                   unsigned line,
                                                   IssuePlan* p) {
#if defined(WOMPCM_REFERENCE_DISPATCH)
  (void)kind;
  return pol.begin_write(track_key, line, p);
#else
  switch (kind) {
    case CodingKind::kRaw:
      return static_cast<RawCoding&>(pol).begin_write(track_key, line, p);
    case CodingKind::kSymmetric:
      return static_cast<SymmetricCoding&>(pol).begin_write(track_key, line,
                                                            p);
    case CodingKind::kFlipNWrite:
      return static_cast<FnwCoding&>(pol).begin_write(track_key, line, p);
    case CodingKind::kWomWide:
    case CodingKind::kWomHidden:
    case CodingKind::kPolar:
    case CodingKind::kTsConstrained:
      return static_cast<WomCoding&>(pol).begin_write(track_key, line, p);
  }
  return pol.begin_write(track_key, line, p);  // unreachable
#endif
}

inline void coding_note_remap(CodingKind kind, CodingPolicy& pol,
                              std::uint64_t track_key, unsigned line) {
#if defined(WOMPCM_REFERENCE_DISPATCH)
  (void)kind;
  pol.note_remap(track_key, line);
#else
  // Only the WOM tracker has remap state; the others inherit the no-op.
  if (is_wom_coding(kind)) {
    static_cast<WomCoding&>(pol).note_remap(track_key, line);
  }
#endif
}

inline bool coding_finish_write(CodingKind kind, CodingPolicy& pol,
                                const CodingPolicy::WriteBegin& rec,
                                bool demoted, std::uint64_t track_key,
                                std::uint64_t wear_key, unsigned line,
                                bool internal, IssuePlan* p) {
#if defined(WOMPCM_REFERENCE_DISPATCH)
  (void)kind;
  return pol.finish_write(rec, demoted, track_key, wear_key, line, internal,
                          p);
#else
  switch (kind) {
    case CodingKind::kRaw:
      return static_cast<RawCoding&>(pol).finish_write(
          rec, demoted, track_key, wear_key, line, internal, p);
    case CodingKind::kSymmetric:
      return static_cast<SymmetricCoding&>(pol).finish_write(
          rec, demoted, track_key, wear_key, line, internal, p);
    case CodingKind::kFlipNWrite:
      return static_cast<FnwCoding&>(pol).finish_write(
          rec, demoted, track_key, wear_key, line, internal, p);
    case CodingKind::kWomWide:
    case CodingKind::kWomHidden:
    case CodingKind::kPolar:
    case CodingKind::kTsConstrained:
      return static_cast<WomCoding&>(pol).finish_write(
          rec, demoted, track_key, wear_key, line, internal, p);
  }
  return pol.finish_write(rec, demoted, track_key, wear_key, line, internal,
                          p);  // unreachable
#endif
}

inline void coding_read_energy(CodingKind kind, CodingPolicy& pol,
                               IssuePlan* p) {
#if defined(WOMPCM_REFERENCE_DISPATCH)
  (void)kind;
  pol.read_energy(p);
#else
  switch (kind) {
    case CodingKind::kRaw:
      static_cast<RawCoding&>(pol).read_energy(p);
      return;
    case CodingKind::kSymmetric:
      static_cast<SymmetricCoding&>(pol).read_energy(p);
      return;
    case CodingKind::kFlipNWrite:
      static_cast<FnwCoding&>(pol).read_energy(p);
      return;
    case CodingKind::kWomWide:
    case CodingKind::kWomHidden:
    case CodingKind::kPolar:
    case CodingKind::kTsConstrained:
      static_cast<WomCoding&>(pol).read_energy(p);
      return;
  }
  pol.read_energy(p);  // unreachable
#endif
}

inline void coding_read_extras(CodingKind kind, CodingPolicy& pol,
                               IssuePlan* p) {
#if defined(WOMPCM_REFERENCE_DISPATCH)
  (void)kind;
  pol.read_extras(p);
#else
  // Only the hidden-page organization adds read extras (WomCoding's hook
  // early-returns for the non-hidden WOM kinds); the others inherit the
  // no-op.
  if (is_wom_coding(kind)) {
    static_cast<WomCoding&>(pol).read_extras(p);
  }
#endif
}

}  // namespace wompcm

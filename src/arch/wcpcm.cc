#include "arch/wcpcm.h"

#include <algorithm>
#include <stdexcept>

namespace wompcm {

Wcpcm::Wcpcm(const MemoryGeometry& geom, const PcmTiming& timing,
             WomCodePtr code, unsigned rat_entries)
    : Architecture(geom, timing),
      code_(std::move(code)),
      rat_entries_(rat_entries == 0 ? 1 : rat_entries),
      cache_tracker_(code_ != nullptr ? code_->max_writes() : 1,
                     geom.lines_per_row(), /*erased_start=*/true) {
  if (code_ == nullptr) throw std::invalid_argument("Wcpcm: null code");
  if (code_->raises_bits()) {
    throw std::invalid_argument("Wcpcm: code must be inverted (1->0 writes)");
  }
  const unsigned caches = geom_.channels * geom_.ranks;
  tags_.assign(caches, std::vector<TagEntry>(geom_.rows_per_bank));
  rat_.assign(caches, {});
}

std::string Wcpcm::name() const {
  return std::string("wcpcm[") + code_->name() + "]";
}

unsigned Wcpcm::num_resources() const {
  return main_banks() + geom_.channels * geom_.ranks;
}

void Wcpcm::set_line(TagEntry& e, unsigned line, unsigned lines_per_row) {
  if (e.line_valid.empty()) {
    e.line_valid.assign((lines_per_row + 63) / 64, 0);
  }
  e.line_valid[line / 64] |= std::uint64_t{1} << (line % 64);
}

bool Wcpcm::get_line(const TagEntry& e, unsigned line) {
  if (e.line_valid.empty()) return false;
  return (e.line_valid[line / 64] >> (line % 64)) & 1;
}

bool Wcpcm::probe_read_hit(const DecodedAddr& dec) const {
  const TagEntry& e = tags_[cache_index(dec.channel, dec.rank)][dec.row];
  // A read hits only if this bank's row is installed AND the requested
  // line was written since the install; other lines of the row are still
  // current in main memory.
  return e.valid && e.bank == dec.bank && get_line(e, dec.col);
}

unsigned Wcpcm::resource_channel(unsigned resource) const {
  if (resource < main_banks()) return Architecture::resource_channel(resource);
  // Cache arrays are appended channel-major by rank (see cache_index).
  return (resource - main_banks()) / geom_.ranks;
}

unsigned Wcpcm::route(const DecodedAddr& dec, AccessType type,
                      bool internal) const {
  if (internal) return flat_bank(dec);  // victim write-back to main memory
  if (type == AccessType::kWrite) {
    return cache_resource(dec.channel, dec.rank);
  }
  // Reads probe cache and main memory in parallel; a hit is served by the
  // cache array, a miss by the main bank.
  return probe_read_hit(dec) ? cache_resource(dec.channel, dec.rank)
                             : flat_bank(dec);
}

IssuePlan Wcpcm::plan(const DecodedAddr& dec, AccessType type, bool internal,
                      Tick now) {
  (void)now;
  IssuePlan p;
  p.row = dec.row;

  if (internal) {
    // Victim write-back (or dead-row bypass): a conventional (SET-bound)
    // write to main memory, through the bank's bad-row chain.
    p.resource = flat_bank(dec);
    p.row = resolved_row(p.resource, dec.row);
    p.write_class = WriteClass::kAlpha;
    p.program_ns = timing_.row_write_ns;
    fault_on_write(p.resource, dec.channel, dec.col, /*allow_remap=*/true, &p);
    bump(ctr_writes_victim_, "writes.victim");
    energy_.on_write(WriteClass::kAlpha, line_bits());
    wear_.on_write_pulses(row_key_for(p.resource, p.row), dec.col,
                          kResetOnlyWearPerCell);
    return p;
  }

  const unsigned ci = cache_index(dec.channel, dec.rank);

  if (type == AccessType::kWrite) {
    p.resource = cache_resource(dec.channel, dec.rank);
    p.pre_ns += timing_.tag_check_ns;
    if (cache_row_dead(ci, dec.row)) {
      // The cache row was retired: the line is latched into the write
      // register (tag check only, no cell programming) and forwarded to
      // PCM main memory as an internal write.
      p.spawned.push_back(SpawnedWrite{dec});
      bump(ctr_bypass_writes_, "wcpcm.bypass_writes");
      return p;
    }
    TagEntry& e = tags_[ci][dec.row];
    const bool hit = !e.valid || e.bank == dec.bank;
    // The mutations below change some queued read's probe outcome exactly
    // when the entry is installed, re-banked, or gains a new valid line;
    // a re-write of an already-valid line leaves every probe unchanged.
    if (!e.valid || e.bank != dec.bank || !get_line(e, dec.col)) {
      ++route_version_;
    }
    if (hit) {
      bump(ctr_write_hits_, "wcpcm.write_hits");
    } else {
      bump(ctr_write_misses_, "wcpcm.write_misses");
      // Read the victim row out to the register, then hand it to the
      // main-memory write queue; the new install starts with only the
      // written line valid.
      p.pre_ns += timing_.row_read_ns;
      DecodedAddr victim = dec;
      victim.bank = e.bank;
      p.spawned.push_back(SpawnedWrite{victim});
      bump(ctr_victims_, "wcpcm.victims");
      e.line_valid.clear();
    }
    const std::uint64_t key = cache_row_key(ci, dec.row);
    const auto rec = cache_tracker_.record_write(key, dec.col);
    p.write_class = rec.cls;
    p.program_ns = timing_.program_ns(p.write_class);
    // No spare pool behind the cache array: a dead verdict is handled
    // below by invalidate-and-bypass.
    const FaultOutcome f = fault_on_write(main_banks() + ci, dec.channel,
                                          dec.col, /*allow_remap=*/false, &p);
    if (p.write_class == WriteClass::kAlpha) {
      bump(ctr_writes_alpha_, "writes.alpha");
      if (rec.cold) bump(ctr_writes_alpha_cold_, "writes.alpha.cold");
    } else {
      bump(ctr_writes_fast_, "writes.fast");
    }
    energy_.on_write(p.write_class,
                     line_bits() * code_->wits() / code_->data_bits());
    wear_.on_write(cache_wear_key(ci, dec.row), dec.col, p.write_class);
    if (f.dead_unmapped) {
      // The row can no longer be programmed reliably: retire it from cache
      // service. A miss already flushed the previous occupant; on a hit the
      // bypass write below refreshes the same main-memory row, so the entry
      // is invalidated outright and the demand line re-queued to main. The
      // dead set makes every later write bypass before touching the tags.
      ++route_version_;  // invalidation can flip a queued read's probe
      e.valid = false;
      e.line_valid.clear();
      dead_cache_rows_[key] = 1;
      bump(ctr_dead_rows_, "wcpcm.dead_rows");
      p.spawned.push_back(SpawnedWrite{dec});
      bump(ctr_bypass_writes_, "wcpcm.bypass_writes");
      return p;
    }
    if (cache_tracker_.row_has_limit_lines(key)) {
      auto& q = rat_[ci];
      const auto it = std::find(q.begin(), q.end(), dec.row);
      if (it != q.end()) q.erase(it);
      q.push_back(dec.row);
      if (q.size() > rat_entries_) q.pop_front();
    }
    e.valid = true;
    e.bank = dec.bank;
    set_line(e, dec.col, geom_.lines_per_row());
    return p;
  }

  // Read: parallel probe, tag-comparison penalty either way.
  p.pre_ns += timing_.tag_check_ns;
  if (probe_read_hit(dec)) {
    bump(ctr_read_hits_, "wcpcm.read_hits");
    p.resource = cache_resource(dec.channel, dec.rank);
    energy_.on_read(line_bits() * code_->wits() / code_->data_bits());
  } else {
    bump(ctr_read_misses_, "wcpcm.read_misses");
    p.resource = flat_bank(dec);
    p.row = resolved_row(p.resource, dec.row);
    energy_.on_read(line_bits());
  }
  fault_on_read(dec.channel, &p);
  return p;
}

double Wcpcm::refresh_pending_fraction(unsigned channel, unsigned rank) const {
  return rat_[cache_index(channel, rank)].empty() ? 0.0 : 1.0;
}

Architecture::RefreshWork Wcpcm::perform_refresh(
    unsigned channel, unsigned rank,
    const std::function<bool(unsigned)>& unit_ready) {
  // One command streams one pending row of this rank's cache array through
  // the row buffer, mirroring the rank-wide "refresh a page per bank" rule.
  RefreshWork work;
  const unsigned resource = cache_resource(channel, rank);
  if (!unit_ready(resource)) return work;
  const unsigned ci = cache_index(channel, rank);
  auto& q = rat_[ci];
  while (!q.empty() && work.rows == 0) {
    const unsigned row = q.front();
    q.pop_front();
    if (cache_row_dead(ci, row)) continue;  // retired: nothing to refresh
    if (cache_tracker_.refresh(cache_row_key(ci, row))) {
      ++work.rows;
      energy_.on_refresh(line_bits() * code_->wits() / code_->data_bits());
      wear_.on_refresh(cache_wear_key(ci, row));
    }
  }
  if (work.rows > 0) work.resources.push_back(resource);
  counters_.inc("refresh.rows", work.rows);
  return work;
}

std::vector<unsigned> Wcpcm::refresh_resources(unsigned channel,
                                               unsigned rank) const {
  return {cache_resource(channel, rank)};
}

double Wcpcm::write_hit_rate() const {
  const auto h = counters_.get("wcpcm.write_hits");
  const auto m = counters_.get("wcpcm.write_misses");
  return h + m == 0 ? 0.0
                    : static_cast<double>(h) / static_cast<double>(h + m);
}

double Wcpcm::read_hit_rate() const {
  const auto h = counters_.get("wcpcm.read_hits");
  const auto m = counters_.get("wcpcm.read_misses");
  return h + m == 0 ? 0.0
                    : static_cast<double>(h) / static_cast<double>(h + m);
}

}  // namespace wompcm

// Coding policies: how one memory region (main memory or the per-rank
// WOM-cache) stores its lines, classed per write.
//
// A CodingPolicy owns the region's generation tracking, write classing and
// program-latency selection, plus the per-write counter/energy/wear
// accounting. It deliberately does NOT own routing, fault injection or
// refresh scheduling — those stay in ComposedArchitecture so one fault
// pipeline and one refresh engine serve every composition. The write path
// is split around the fault pipeline:
//
//   begin_write()   record the write, settle write_class / program_ns
//   (fault pipeline runs: may demote the fast path, may remap the row)
//   note_remap()    re-record at the spare's key after a remap
//   finish_write()  counters, energy, wear, organization extras
//
// so demotion and remapping are charged at the rates the cells actually
// saw, exactly as in the monolithic architecture classes this replaces.
#pragma once

#include <cstdint>
#include <memory>

#include "arch/arch.h"
#include "common/rng.h"
#include "wom/wom_code.h"
#include "wom/wom_tracker.h"

namespace wompcm {

// The accounting surface a policy publishes into. The pointers alias the
// owning ComposedArchitecture's own state, so both regions of a composition
// write one set of books (as the legacy classes did).
struct RegionContext {
  const PcmTiming* timing = nullptr;
  CounterSet* counters = nullptr;
  EnergyCounters* energy = nullptr;
  WearTracker* wear = nullptr;
  std::uint64_t line_bits = 0;  // uncoded bits per line
  // Channel of the access currently being planned (aliases the owning
  // architecture's cursor, kept current across plan()/perform_refresh()).
  // Stochastic policies draw from a per-channel stream keyed by it, so
  // their draws — like the fault model's — are independent of how the
  // channels' issue streams interleave (the sharded-run determinism
  // contract). Null means "always channel 0" (single-region tests).
  const unsigned* channel = nullptr;
  // Number of channels, for sizing per-channel streams.
  unsigned channels = 1;
};

class CodingPolicy {
 public:
  // The decision made before the fault pipeline runs: the class the coding
  // scheme chose (faults may later demote kResetOnly to kAlpha) and
  // whether it was a cold alpha (first touch of an unknown-state line).
  struct WriteBegin {
    WriteClass cls = WriteClass::kAlpha;
    bool cold = false;
  };

  explicit CodingPolicy(const RegionContext& ctx) : ctx_(ctx) {}
  virtual ~CodingPolicy() = default;

  virtual CodingKind kind() const = 0;
  // Capacity overhead of this coding relative to uncoded storage.
  virtual double overhead() const = 0;

  // Records the write in the region's generation state and settles
  // plan->write_class / plan->program_ns. `track_key` identifies the
  // (bank, row) in the region's tracker key space.
  virtual WriteBegin begin_write(std::uint64_t track_key, unsigned line,
                                 IssuePlan* p) = 0;

  // The fault pipeline moved the row onto a fresh spare: re-record there so
  // the rewrite budget tracks the cells actually being programmed.
  virtual void note_remap(std::uint64_t track_key, unsigned line) {
    (void)track_key;
    (void)line;
  }

  // Counters, energy, wear and organization extras. `demoted` is the fault
  // pipeline's fast-path demotion verdict; `internal` marks controller-
  // spawned writes (cache victims and dead-row bypasses), which count as
  // "writes.victim" instead of the demand classes. `wear_key` is the
  // region's wear/fault key for the row (identical to track_key for main
  // memory; disjoint for the cache, whose tracker keys are array-local).
  // Returns true when the write left the row with lines at the rewrite
  // limit — a refresh candidate.
  virtual bool finish_write(const WriteBegin& rec, bool demoted,
                            std::uint64_t track_key, std::uint64_t wear_key,
                            unsigned line, bool internal, IssuePlan* p) = 0;

  // Read-path energy (the caller owns the read counters) and organization
  // extras (the hidden-page dependent second access), split so the fault
  // pipeline's read hook runs between them exactly as it did in the
  // monolithic classes.
  virtual void read_energy(IssuePlan* p) = 0;
  virtual void read_extras(IssuePlan* p) { (void)p; }

  // PCM-refresh support: re-initializes one row's codewords. Returns false
  // when the scheme has no refreshable generation state, or when the row
  // had no lines at the limit (a stale RAT entry).
  virtual bool refresh_row(std::uint64_t track_key, std::uint64_t wear_key) {
    (void)track_key;
    (void)wear_key;
    return false;
  }
  virtual bool refreshable() const { return false; }

  // The WOM code behind a WOM-coded region; null otherwise.
  virtual const WomCode* code() const { return nullptr; }

 protected:
  // Cached counter increment (same contract as Architecture::bump).
  void bump(std::uint64_t*& slot, const char* name, std::uint64_t by = 1) {
    if (slot == nullptr) slot = ctx_.counters->slot(name);
    *slot += by;
  }

  // Channel of the access being planned (0 when the owner wired no cursor).
  unsigned active_channel() const {
    return ctx_.channel == nullptr ? 0u : *ctx_.channel;
  }

  RegionContext ctx_;
  std::uint64_t* ctr_victim_ = nullptr;
};

// Resolves `name` to an inverted WOM code, throwing std::invalid_argument
// (unknown code / conventional write direction) otherwise.
WomCodePtr resolve_inverted_wom_code(const std::string& name);

// The resolved code parameters one WOM-coded region runs under. The timing
// simulator carries no data payloads, so a region needs only the code's
// section geometry and classification parameters — not the codec itself.
// `code` is the symbol code behind the classic kinds (and the bit-exact
// reference codecs); native sectioned families (ts-constrained) have none.
struct RegionCode {
  std::string name;
  unsigned data_bits = 0;    // k per section
  unsigned wits = 0;         // n per section
  unsigned max_writes = 0;   // t per section
  double wear_bound = 1.0;   // fraction of cells an in-budget write touches
  bool lut = false;          // EncodeLut fast path behind the encode
  unsigned sections_per_line = 1;  // independently budgeted sections / line
  WomCodePtr code;           // null for native block families
};

// Resolves the code a WOM-coded region of `kind` runs: `override_name`
// (the main.code= / cache.code= key) when set, else `legacy_code` (the
// code= key) for the classic kinds or the family default for the sectioned
// ones. Validates family membership, write direction, and that `line_bits`
// splits into whole sections; throws std::invalid_argument with an
// actionable message otherwise. Non-WOM kinds return an empty RegionCode.
RegionCode resolve_region_code(CodingKind kind,
                               const std::string& override_name,
                               const std::string& legacy_code,
                               std::uint64_t line_bits);

// Policy factory. `code` must be resolved (resolve_region_code) for the
// WOM kinds and is ignored by the others; `erased_start` seeds untouched
// rows as erased (the boot-formatted WOM-cache) instead of unknown.
std::unique_ptr<CodingPolicy> make_coding_policy(
    CodingKind kind, const RegionContext& ctx, RegionCode code,
    unsigned lines_per_row, bool erased_start, double fnw_fast_fraction,
    std::uint64_t seed);

}  // namespace wompcm

// WOM-code cached PCM — WCPCM (Section 4).
//
// Each rank carries one WOM-code PCM array (the WOM-cache: wide-column,
// with PCM-refresh) with the same number of rows as a bank. A cache row
// holds the row image of one of the rank's banks, identified by a
// log2(N_bank)-bit tag plus a valid bit, making the cache N_bank-way
// associative by bank address.
//
// Write protocol: demand writes always go to the WOM-cache. On a hit
// (invalid entry or matching tag) the row is programmed in place, normally
// at RESET-only latency. On a miss the victim row is read out to a register
// (one extra row activation) and re-queued as an internal write to PCM main
// memory, then the new row is programmed and the tag updated.
//
// Read protocol: the WOM-cache and main memory are probed in parallel; a
// tag hit returns the cache copy (which is always the freshest), a miss the
// main-memory copy. Reads never change cache contents. Both directions pay
// only the 1-2 cycle tag-comparison penalty.
#pragma once

#include <deque>
#include <vector>

#include "arch/arch.h"
#include "common/flat_map.h"
#include "wom/wom_code.h"
#include "wom/wom_tracker.h"

namespace wompcm {

class Wcpcm final : public Architecture {
 public:
  Wcpcm(const MemoryGeometry& geom, const PcmTiming& timing, WomCodePtr code,
        unsigned rat_entries);

  std::string name() const override;

  unsigned num_resources() const override;
  unsigned route(const DecodedAddr& dec, AccessType type,
                 bool internal) const override;
  // Demand reads probe the mutable cache tags: a queued read's destination
  // can flip between main memory and the WOM-cache while it waits.
  bool read_route_dynamic() const override { return true; }
  // Advanced by plan() on every observable tag mutation (install, bank
  // replacement, new valid line), i.e. exactly when a queued read's
  // probe_read_hit outcome could change.
  std::uint64_t route_version() const override { return route_version_; }
  unsigned resource_channel(unsigned resource) const override;
  // The per-rank WOM-cache arrays appended after the main banks.
  bool is_cache_resource(unsigned resource) const override {
    return resource >= main_banks();
  }
  IssuePlan plan(const DecodedAddr& dec, AccessType type, bool internal,
                 Tick now) override;

  bool refresh_enabled() const override { return true; }
  double refresh_pending_fraction(unsigned channel,
                                  unsigned rank) const override;
  RefreshWork perform_refresh(
      unsigned channel, unsigned rank,
      const std::function<bool(unsigned)>& unit_ready) override;
  std::vector<unsigned> refresh_resources(unsigned channel,
                                          unsigned rank) const override;

  // The WOM-cache stores one coded bank's worth of rows per rank:
  // (1 + code overhead) / N_bank of the main capacity (4.7% at 32 banks).
  double capacity_overhead() const override {
    return (1.0 + code_->overhead()) /
           static_cast<double>(geom_.banks_per_rank);
  }

  const WomCode& code() const { return *code_; }
  double write_hit_rate() const;
  double read_hit_rate() const;

 private:
  struct TagEntry {
    bool valid = false;
    unsigned bank = 0;
    // Per-line dirty/valid bits: the cache row only holds the lines written
    // since this bank's row was installed; reads of other lines are served
    // by PCM main memory (whose copy of those lines is still current).
    std::vector<std::uint64_t> line_valid;
  };

  unsigned cache_index(unsigned channel, unsigned rank) const {
    return channel * geom_.ranks + rank;
  }
  // Wear-tracking row key for a cache row, disjoint from main-memory keys
  // (which use row_key_for's rows_per_bank + 1 stride).
  std::uint64_t cache_wear_key(unsigned cache_idx, unsigned row) const {
    return row_key_for(main_banks() + cache_idx, row);
  }
  unsigned cache_resource(unsigned channel, unsigned rank) const {
    return main_banks() + cache_index(channel, rank);
  }
  bool probe_read_hit(const DecodedAddr& dec) const;
  static void set_line(TagEntry& e, unsigned line, unsigned lines_per_row);
  static bool get_line(const TagEntry& e, unsigned line);
  std::uint64_t cache_row_key(unsigned cache_idx, unsigned row) const {
    return static_cast<std::uint64_t>(cache_idx) * geom_.rows_per_bank + row;
  }
  // Cache rows have no spare pool behind them: a dead row is invalidated
  // and bypassed (writes latch through to main memory) instead of remapped.
  bool cache_row_dead(unsigned cache_idx, unsigned row) const {
    return fault_ != nullptr &&
           dead_cache_rows_.find(cache_row_key(cache_idx, row)) != nullptr;
  }

  WomCodePtr code_;
  unsigned rat_entries_;
  WomStateTracker cache_tracker_;
  // tags_[cache_index][row]
  std::vector<std::vector<TagEntry>> tags_;
  // Rows of each WOM-cache array pending re-initialization.
  std::vector<std::deque<unsigned>> rat_;
  std::uint64_t route_version_ = 0;  // see route_version()
  // Cache rows retired by the fault model (see cache_row_dead). Keyed like
  // cache_row_key; only ever populated while faults are enabled.
  FlatMap64<std::uint8_t> dead_cache_rows_;

  // Lazily-bound counter slots for the per-access hot path (see
  // Architecture::bump).
  std::uint64_t* ctr_writes_victim_ = nullptr;
  std::uint64_t* ctr_write_hits_ = nullptr;
  std::uint64_t* ctr_write_misses_ = nullptr;
  std::uint64_t* ctr_victims_ = nullptr;
  std::uint64_t* ctr_writes_alpha_ = nullptr;
  std::uint64_t* ctr_writes_alpha_cold_ = nullptr;
  std::uint64_t* ctr_writes_fast_ = nullptr;
  std::uint64_t* ctr_read_hits_ = nullptr;
  std::uint64_t* ctr_read_misses_ = nullptr;
  std::uint64_t* ctr_dead_rows_ = nullptr;
  std::uint64_t* ctr_bypass_writes_ = nullptr;
};

}  // namespace wompcm

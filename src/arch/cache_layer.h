// The per-rank WOM-cache front end (Section 4): tag state of one bank-sized
// array per rank, N_bank-way associative by bank address, with per-line
// valid bits and a dead-row set for rows retired by the fault model.
//
// The layer owns the cache's tag/validity bookkeeping and its CodingPolicy;
// the access protocol (victim spawning, bypass, fault pipeline, refresh
// scheduling) lives in ComposedArchitecture, which drives both this layer
// and the backing main region's policy.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "arch/coding_policy.h"
#include "common/address.h"
#include "common/flat_map.h"

namespace wompcm {

class CacheLayer final {
 public:
  struct TagEntry {
    bool valid = false;
    unsigned bank = 0;
    // Per-line dirty/valid bits: the cache row only holds the lines written
    // since this bank's row was installed; reads of other lines are served
    // by PCM main memory (whose copy of those lines is still current).
    std::vector<std::uint64_t> line_valid;
  };

  CacheLayer(const MemoryGeometry& geom, std::unique_ptr<CodingPolicy> coding);

  CodingPolicy& coding() { return *coding_; }
  const CodingPolicy& coding() const { return *coding_; }

  unsigned arrays() const { return static_cast<unsigned>(tags_.size()); }
  unsigned index(unsigned channel, unsigned rank) const {
    return channel * ranks_ + rank;
  }

  TagEntry& entry(unsigned cache_idx, unsigned row) {
    return tags_[cache_idx][row];
  }

  // A read hits only if this bank's row is installed AND the requested line
  // was written since the install; other lines of the row are still current
  // in main memory.
  bool probe_read_hit(const DecodedAddr& dec) const;

  static void set_line(TagEntry& e, unsigned line, unsigned lines_per_row);
  static bool get_line(const TagEntry& e, unsigned line);

  // Tracker key of a cache row — local to the cache arrays (the wear/fault
  // key space is the owning architecture's row_key_for, disjoint from this).
  std::uint64_t row_key(unsigned cache_idx, unsigned row) const {
    return static_cast<std::uint64_t>(cache_idx) * rows_per_bank_ + row;
  }

  // Cache rows have no spare pool behind them: a dead row is invalidated
  // and bypassed (writes latch through to main memory) instead of remapped.
  bool row_dead(unsigned cache_idx, unsigned row) const {
    return dead_rows_.find(row_key(cache_idx, row)) != nullptr;
  }
  void mark_dead(unsigned cache_idx, unsigned row) {
    dead_rows_[row_key(cache_idx, row)] = 1;
  }

  // Monotone stamp advanced on every tag mutation that could flip a queued
  // demand read's probe outcome (install, re-bank, new valid line,
  // invalidation) — see Architecture::route_version.
  std::uint64_t route_version() const { return route_version_; }
  void note_route_change() { ++route_version_; }

 private:
  unsigned ranks_;
  unsigned rows_per_bank_;
  std::unique_ptr<CodingPolicy> coding_;
  // tags_[cache_index][row]
  std::vector<std::vector<TagEntry>> tags_;
  std::uint64_t route_version_ = 0;
  // Keyed like row_key; only ever populated while faults are enabled.
  FlatMap64<std::uint8_t> dead_rows_;
};

}  // namespace wompcm

// The per-rank WOM-cache front end (Section 4): tag state of one bank-sized
// array per rank, N_bank-way associative by bank address, with per-line
// valid bits and a dead-row set for rows retired by the fault model.
//
// Tag/valid/victim bookkeeping lives in a TagArray per (channel, rank) —
// 1-way sets indexed by row, tagged by bank, under the bank_tag
// ReplacementPolicy — so the WOM cache is one point in the same tag-array
// design space as the DRAM front tier. The layer additionally owns the
// per-line valid bitmaps (the cache row only holds the lines written since
// the install) and the cache's CodingPolicy; the access protocol (victim
// spawning, bypass, fault pipeline, refresh scheduling) stays in
// ComposedArchitecture.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "arch/coding_policy.h"
#include "arch/tag_array.h"
#include "common/address.h"
#include "common/flat_map.h"

namespace wompcm {

class CacheLayer final {
 public:
  CacheLayer(const MemoryGeometry& geom, std::unique_ptr<CodingPolicy> coding);

  CodingPolicy& coding() { return *coding_; }
  const CodingPolicy& coding() const { return *coding_; }

  unsigned arrays() const { return static_cast<unsigned>(tags_.size()); }
  unsigned index(unsigned channel, unsigned rank) const {
    return channel * ranks_ + rank;
  }

  // Tag state of the single way of row-set `row` in array `cache_idx`.
  bool valid(unsigned cache_idx, unsigned row) const {
    return tags_[cache_idx].valid(row, 0);
  }
  unsigned installed_bank(unsigned cache_idx, unsigned row) const {
    return static_cast<unsigned>(tags_[cache_idx].tag(row, 0));
  }

  bool line_set(unsigned cache_idx, unsigned row, unsigned line) const {
    const LineBits& bits = lines_[cache_idx][row];
    if (bits.empty()) return false;
    return (bits[line / 64] >> (line % 64)) & 1;
  }

  // A read hits only if this bank's row is installed AND the requested line
  // was written since the install; other lines of the row are still current
  // in main memory (whose copy of those lines is still current).
  bool probe_read_hit(const DecodedAddr& dec) const;

  // Eviction flushed the previous occupant's lines; the tag itself is
  // rewritten by the install() that follows the fault pipeline.
  void evict_lines(unsigned cache_idx, unsigned row) {
    lines_[cache_idx][row].clear();
  }

  // Dead-row retirement: drop the occupant outright.
  void invalidate(unsigned cache_idx, unsigned row) {
    tags_[cache_idx].invalidate(row, 0);
    lines_[cache_idx][row].clear();
  }

  // Commit a write of `line`: (re)install `bank` as the row's occupant and
  // mark the line valid.
  void install(unsigned cache_idx, unsigned row, unsigned bank, unsigned line);

  // Tracker key of a cache row — local to the cache arrays (the wear/fault
  // key space is the owning architecture's row_key_for, disjoint from this).
  std::uint64_t row_key(unsigned cache_idx, unsigned row) const {
    return static_cast<std::uint64_t>(cache_idx) * rows_per_bank_ + row;
  }

  // Cache rows have no spare pool behind them: a dead row is invalidated
  // and bypassed (writes latch through to main memory) instead of remapped.
  bool row_dead(unsigned cache_idx, unsigned row) const {
    return dead_rows_.find(row_key(cache_idx, row)) != nullptr;
  }
  void mark_dead(unsigned cache_idx, unsigned row) {
    dead_rows_[row_key(cache_idx, row)] = 1;
  }

  // Monotone stamp advanced on every tag mutation that could flip a queued
  // demand read's probe outcome (install, re-bank, new valid line,
  // invalidation) — see Architecture::route_version.
  std::uint64_t route_version() const { return route_version_; }
  void note_route_change() { ++route_version_; }

 private:
  using LineBits = std::vector<std::uint64_t>;

  unsigned ranks_;
  unsigned rows_per_bank_;
  unsigned lines_per_row_;
  std::unique_ptr<CodingPolicy> coding_;
  // One 1-way bank_tag TagArray per (channel, rank) cache array, with the
  // per-line valid bitmaps as the slot-parallel payload (slot == row).
  std::vector<TagArray> tags_;
  std::vector<std::vector<LineBits>> lines_;
  std::uint64_t route_version_ = 0;
  // Keyed like row_key; only ever populated while faults are enabled.
  FlatMap64<std::uint8_t> dead_rows_;
};

}  // namespace wompcm

// Refresh policy: the row-address-table (RAT) bookkeeping shared by every
// refreshable region (Section 3.2 main memory, Section 4's WOM-cache).
//
// A RAT is a small per-unit ring of entries pending burst re-initialization
// ("unit" is a main bank or one per-rank cache array; an entry is whatever
// key the region refreshes by — a wear key for main rows, a row index for
// cache rows). Touching an entry moves it to the back; the oldest entry
// falls off when the table is full. The two paper designs drain their
// tables from opposite ends: main memory serves the most recently recorded
// row first (it is the hottest, and the most likely to take its alpha-write
// soon), the WOM-cache re-initializes oldest-first as it cycles the small
// array continuously.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "stats/stats.h"

namespace wompcm {

class RatRefreshPolicy final {
 public:
  enum class ServeOrder : std::uint8_t {
    kNewestFirst,  // pop from the back (main-memory RATs, Section 3.2)
    kOldestFirst,  // pop from the front (the WOM-cache's table, Section 4)
  };

  // `counters` outlives the policy; rat.insert / rat.evict / rat.stale_pop
  // are accounted there.
  RatRefreshPolicy(unsigned units, unsigned entries, ServeOrder order,
                   CounterSet* counters);

  // Records that `entry` of `unit` reached the rewrite limit: re-touching
  // moves it to the back, the oldest entry is evicted when full.
  void touch(unsigned unit, std::uint64_t entry);

  // True when the unit has at least one row pending re-initialization.
  bool pending(unsigned unit) const { return !rat_[unit].empty(); }
  std::size_t size(unsigned unit) const { return rat_[unit].size(); }
  std::size_t units() const { return rat_.size(); }

  // Pops entries in serve order until `refresh_entry` accepts one or the
  // table drains; refused pops (rows a demand alpha-write already reset, or
  // rows retired by the fault model) count as rat.stale_pop. Returns true
  // when an entry was refreshed.
  bool refresh_one(unsigned unit,
                   const std::function<bool(std::uint64_t)>& refresh_entry);

 private:
  void bump(std::uint64_t*& slot, const char* name) {
    if (slot == nullptr) slot = counters_->slot(name);
    ++*slot;
  }

  unsigned entries_;
  ServeOrder order_;
  std::vector<std::deque<std::uint64_t>> rat_;
  CounterSet* counters_;
  // Lazily-bound counter slots (see Architecture::bump).
  std::uint64_t* ctr_insert_ = nullptr;
  std::uint64_t* ctr_evict_ = nullptr;
  std::uint64_t* ctr_stale_pop_ = nullptr;
};

}  // namespace wompcm

#include "arch/wom_pcm.h"

#include <stdexcept>

namespace wompcm {

WomPcm::WomPcm(const MemoryGeometry& geom, const PcmTiming& timing,
               WomCodePtr code, WomOrganization organization)
    : Architecture(geom, timing),
      code_(std::move(code)),
      organization_(organization),
      tracker_(code_ != nullptr ? code_->max_writes() : 1,
               geom.lines_per_row()) {
  if (code_ == nullptr) throw std::invalid_argument("WomPcm: null code");
  if (code_->raises_bits()) {
    throw std::invalid_argument("WomPcm: code must be inverted (1->0 writes)");
  }
}

std::string WomPcm::name() const {
  return std::string("wom-pcm[") + code_->name() + "," +
         to_string(organization_) + "]";
}

std::uint64_t WomPcm::coded_line_bits() const {
  return line_bits() * code_->wits() / code_->data_bits();
}

IssuePlan WomPcm::plan(const DecodedAddr& dec, AccessType type, bool internal,
                       Tick now) {
  (void)internal;
  (void)now;
  IssuePlan p;
  p.resource = flat_bank(dec);
  p.row = physical_row(dec, type, &p);
  if (type == AccessType::kWrite) {
    std::uint64_t key = row_key_for(p.resource, p.row);
    const auto rec = tracker_.record_write(key, dec.col);
    p.write_class = rec.cls;
    p.program_ns = timing_.program_ns(p.write_class);
    const FaultOutcome f =
        fault_on_write(p.resource, dec.channel, dec.col, /*allow_remap=*/true,
                       &p);
    if (f.remapped) {
      // The row moved to a fresh spare: start its WOM generation there so
      // the rewrite budget tracks the cells actually being programmed.
      key = row_key_for(p.resource, p.row);
      tracker_.record_write(key, dec.col);
    }
    if (p.write_class == WriteClass::kAlpha) {
      bump(ctr_writes_alpha_, "writes.alpha");
      if (rec.cold && !f.demoted) bump(ctr_writes_alpha_cold_, "writes.alpha.cold");
    } else {
      bump(ctr_writes_fast_, "writes.fast");
    }
    energy_.on_write(p.write_class, coded_line_bits());
    wear_.on_write(key, dec.col, p.write_class);
    if (organization_ == WomOrganization::kHiddenPage) {
      // The upper half-codeword lives in a hidden page the controller
      // reserves in a parallel bank region, so its program overlaps the
      // main one; the cost is the extra command/data transfer plus the
      // tail of the (half-width) hidden program that outlasts the overlap.
      p.post_ns += timing_.burst_ns() + timing_.tag_check_ns;
      bump(ctr_hidden_writes_, "hidden_page.extra_writes");
    }
    if (tracker_.row_has_limit_lines(key)) on_row_at_limit(dec, key);
  } else {
    bump(ctr_reads_, "reads");
    energy_.on_read(coded_line_bits());
    fault_on_read(dec.channel, &p);
    if (organization_ == WomOrganization::kHiddenPage) {
      // Fetch the hidden half-codeword (parallel bank region) before
      // decode: one extra column access plus its burst.
      p.post_ns += timing_.col_read_ns + timing_.burst_ns();
      bump(ctr_hidden_reads_, "hidden_page.extra_reads");
    }
  }
  return p;
}

}  // namespace wompcm

#include "arch/arch.h"

#include <stdexcept>

#include "arch/composed.h"

namespace wompcm {

const char* to_string(ArchKind k) {
  switch (k) {
    case ArchKind::kBaseline:
      return "pcm";
    case ArchKind::kWomPcm:
      return "wom-pcm";
    case ArchKind::kRefreshWomPcm:
      return "pcm-refresh";
    case ArchKind::kWcpcm:
      return "wcpcm";
    case ArchKind::kFlipNWrite:
      return "flip-n-write";
    case ArchKind::kSymmetric:
      return "symmetric-ideal";
  }
  return "?";
}

const char* to_string(CodingKind k) {
  switch (k) {
    case CodingKind::kRaw:
      return "raw";
    case CodingKind::kWomWide:
      return "wom-wide";
    case CodingKind::kWomHidden:
      return "wom-hidden";
    case CodingKind::kFlipNWrite:
      return "fnw";
    case CodingKind::kSymmetric:
      return "symmetric";
    case CodingKind::kPolar:
      return "polar";
    case CodingKind::kTsConstrained:
      return "ts-constrained";
  }
  return "?";
}

const char* to_string(RefreshKind k) {
  return k == RefreshKind::kRat ? "rat" : "none";
}

bool coding_kind_from_string(const std::string& s, CodingKind* out) {
  if (s == "raw") {
    *out = CodingKind::kRaw;
  } else if (s == "wom-wide") {
    *out = CodingKind::kWomWide;
  } else if (s == "wom-hidden") {
    *out = CodingKind::kWomHidden;
  } else if (s == "fnw") {
    *out = CodingKind::kFlipNWrite;
  } else if (s == "symmetric") {
    *out = CodingKind::kSymmetric;
  } else if (s == "polar") {
    *out = CodingKind::kPolar;
  } else if (s == "ts-constrained") {
    *out = CodingKind::kTsConstrained;
  } else {
    return false;
  }
  return true;
}

bool refresh_kind_from_string(const std::string& s, RefreshKind* out) {
  if (s == "none") {
    *out = RefreshKind::kNone;
  } else if (s == "rat") {
    *out = RefreshKind::kRat;
  } else {
    return false;
  }
  return true;
}

Composition canonical_composition(ArchKind kind, WomOrganization org) {
  const CodingKind wom = org == WomOrganization::kHiddenPage
                             ? CodingKind::kWomHidden
                             : CodingKind::kWomWide;
  Composition c;
  switch (kind) {
    case ArchKind::kBaseline:
      c.main_coding = CodingKind::kRaw;
      break;
    case ArchKind::kWomPcm:
      c.main_coding = wom;
      break;
    case ArchKind::kRefreshWomPcm:
      c.main_coding = wom;
      c.refresh = RefreshKind::kRat;
      break;
    case ArchKind::kWcpcm:
      c.main_coding = CodingKind::kRaw;
      c.cache_enabled = true;
      c.cache_coding = CodingKind::kWomWide;
      c.refresh = RefreshKind::kRat;
      break;
    case ArchKind::kFlipNWrite:
      c.main_coding = CodingKind::kFlipNWrite;
      break;
    case ArchKind::kSymmetric:
      c.main_coding = CodingKind::kSymmetric;
      break;
  }
  return c;
}

bool composition_valid(const Composition& c, std::string* why) {
  if (c.cache_enabled && c.cache_coding == CodingKind::kWomHidden) {
    if (why != nullptr) {
      *why =
          "cache.coding=wom-hidden has no meaning: the WOM-cache is its own "
          "per-rank array with no hidden page region to pair with; use "
          "cache.coding=wom-wide";
    }
    return false;
  }
  if (c.refresh == RefreshKind::kRat && !is_wom_coding(c.main_coding) &&
      !(c.cache_enabled && is_wom_coding(c.cache_coding))) {
    if (why != nullptr) {
      *why =
          "refresh=rat needs at least one WOM-coded region (row-address "
          "tables track WOM rewrite limits, which raw/fnw/symmetric codings "
          "do not have); set main.coding=wom-wide or wom-hidden, enable a "
          "WOM-coded cache (cache.enabled=on cache.coding=wom-wide), or set "
          "refresh=none";
    }
    return false;
  }
  return true;
}

Composition validate_composition(Composition c) {
  if (!c.cache_enabled) c.cache_coding = CodingKind::kWomWide;  // normalize
  std::string why;
  if (!composition_valid(c, &why)) {
    throw std::invalid_argument("bad composition: " + why);
  }
  return c;
}

Composition ArchConfig::resolved_composition() const {
  if (composition.has_value()) return validate_composition(*composition);
  return canonical_composition(kind, organization);
}

Architecture::Architecture(const MemoryGeometry& geom, const PcmTiming& timing)
    : geom_(geom),
      mapper_(geom),
      timing_(timing),
      wear_(geom.lines_per_row()),
      row_key_stride_(geom.rows_per_bank + 1) {
  // One energy bucket per channel: accumulation order within a channel plus
  // a channel-ordered fold is what keeps a sharded run's energy bit-equal
  // to serial (see pcm/energy.h). Single-channel geometries get one bucket
  // and behave exactly like the plain accumulator.
  energy_.configure_channels(geom.channels);
}

unsigned Architecture::num_resources() const { return main_banks(); }

void Architecture::enable_start_gap(unsigned interval) {
  start_gap_.clear();
  start_gap_.reserve(main_banks());
  for (unsigned b = 0; b < main_banks(); ++b) {
    start_gap_.emplace_back(geom_.rows_per_bank, interval);
  }
}

void Architecture::configure_faults(const FaultConfig& fault) {
  std::string why;
  if (!fault.valid(&why)) {
    throw std::invalid_argument("bad fault config: " + why);
  }
  if (!fault.enabled) return;
  fault_ =
      std::make_unique<FaultModel>(fault, geom_.lines_per_row(), geom_.channels);
  // Three physical-row populations per bank: the logical rows, the
  // Start-Gap spare (rows_per_bank), then the fault spares. Widen the
  // wear-key stride so spares never alias the next bank's keys; with
  // faults off the stride (and thus every key) is unchanged.
  row_key_stride_ = geom_.rows_per_bank + 1 + fault.spare_rows;
  if (fault.spare_rows > 0) {
    remap_ = std::make_unique<SpareRowRemapper>(
        main_banks(), fault.spare_rows, geom_.rows_per_bank + 1);
  }
  fault_by_channel_.assign(geom_.channels, FaultTally{});
}

unsigned Architecture::physical_row(const DecodedAddr& dec, AccessType type,
                                    IssuePlan* plan) {
  unsigned row = dec.row;
  if (!start_gap_.empty()) {
    StartGapRemapper& sg = start_gap_[flat_bank(dec)];
    if (type == AccessType::kWrite && sg.on_write()) {
      // Gap move: the bank copies one row (read + write) before servicing
      // further accesses.
      plan->post_ns += timing_.row_read_ns + timing_.row_write_ns;
      counters_.inc("wl.gap_moves");
    }
    row = sg.remap(dec.row);
  }
  // Retired rows resolve through the bad-row chain after wear leveling:
  // Start-Gap rotates logical rows, the remap table patches dead physical
  // rows out from under the rotation.
  return resolved_row(flat_bank(dec), row);
}

Architecture::FaultOutcome Architecture::fault_on_write(unsigned keyed_bank,
                                                        unsigned channel,
                                                        unsigned line,
                                                        bool allow_remap,
                                                        IssuePlan* p) {
  FaultOutcome out;
  if (fault_ == nullptr) return out;
  FaultTally& tally = fault_by_channel_[channel];
  const std::uint64_t key = row_key_for(keyed_bank, p->row);
  // Original array rows carry the configured initial wear; the Start-Gap
  // spare and the fault spares (row >= rows_per_bank) are fresh stock.
  const bool pre_aged = p->row < geom_.rows_per_bank;
  const FaultModel::Observation obs =
      fault_->observe_write(key, line, wear_.line_wear(key, line), pre_aged);
  if (obs.transitioned) ++tally.injected;
  if (obs.state == FaultModel::LineState::kHealthy) return out;
  // Stuck cells break the monotone 0->1 WOM rewrite: a fast-path write is
  // demoted to a full alpha re-program before verify has a chance.
  if (p->write_class == WriteClass::kResetOnly) {
    p->write_class = WriteClass::kAlpha;
    p->program_ns = timing_.program_ns(WriteClass::kAlpha);
    ++tally.demoted;
    out.demoted = true;
  }
  // Write-verify with bounded retry: each retry re-programs the line and
  // reads it back. A dead line burns the full budget and still fails.
  const bool dead = obs.state == FaultModel::LineState::kDead;
  const unsigned retries =
      dead ? fault_->config().max_retries : fault_->retry_draw(channel);
  p->post_ns += retries * (p->program_ns + timing_.col_read_ns);
  tally.retries += retries;
  wear_.on_write_pulses(key, line, retries * kAlphaWearPerCell);
  if (!dead) return out;
  if (obs.transitioned) ++tally.dead_rows;
  if (!allow_remap || remap_ == nullptr) {
    out.dead_unmapped = true;
    return out;
  }
  if (std::optional<unsigned> spare = remap_->retire(keyed_bank, p->row)) {
    // Retirement migrates the row: stream the dead row out (its data is
    // still correctable) and program it into the fresh spare.
    p->post_ns += timing_.row_read_ns + timing_.row_write_ns;
    p->row = *spare;
    ++tally.remapped;
    out.remapped = true;
  } else {
    ++tally.exhausted;
    out.dead_unmapped = true;
  }
  return out;
}

void Architecture::fault_on_read(unsigned channel, IssuePlan* p) {
  if (fault_ == nullptr) return;
  if (!fault_->read_disturbed(channel)) return;
  FaultTally& tally = fault_by_channel_[channel];
  ++tally.read_disturbs;
  ++tally.injected;
  // A disturbed read is caught by ECC and pays one corrective re-read.
  p->post_ns += timing_.col_read_ns;
}

unsigned Architecture::route(const DecodedAddr& dec, AccessType type,
                             bool internal) const {
  (void)type;
  (void)internal;
  return mapper_.flat_bank(dec);
}

unsigned Architecture::resource_channel(unsigned resource) const {
  // Main banks are flat-indexed channel-major (see AddressMapper::flat_bank);
  // architectures that append extra resources override this.
  return resource / (geom_.ranks * geom_.banks_per_rank);
}

void Architecture::publish_metrics(MetricsRegistry& reg, Tick end_time) const {
  reg.set_gauge("arch.capacity_overhead", capacity_overhead());
  reg.set_gauge("energy.read_pj", energy_.read_pj());
  reg.set_gauge("energy.write_pj", energy_.write_pj());
  reg.set_gauge("energy.refresh_pj", energy_.refresh_pj());
  reg.set_gauge("wear.max_line", wear_.max_line_wear());
  reg.set_gauge("wear.mean_line", wear_.mean_line_wear());
  reg.set_gauge("wear.lifetime_years", wear_.lifetime_years(end_time));
  if (fault_ != nullptr) {
    // Published only when the fault model is installed, so the off-path
    // registry stays bit-identical to a build without faults.
    FaultTally sum;
    for (unsigned c = 0; c < geom_.channels; ++c) {
      const FaultTally& t = fault_by_channel_[c];
      sum.injected += t.injected;
      sum.retries += t.retries;
      sum.demoted += t.demoted;
      sum.remapped += t.remapped;
      sum.dead_rows += t.dead_rows;
      sum.read_disturbs += t.read_disturbs;
      sum.exhausted += t.exhausted;
      reg.set_counter(channel_metric(c, "fault.injected"), t.injected);
      reg.set_counter(channel_metric(c, "fault.retries"), t.retries);
      reg.set_counter(channel_metric(c, "fault.demoted_writes"), t.demoted);
      reg.set_counter(channel_metric(c, "fault.remapped_rows"), t.remapped);
    }
    reg.set_counter("fault.injected", sum.injected);
    reg.set_counter("fault.retries", sum.retries);
    reg.set_counter("fault.demoted_writes", sum.demoted);
    reg.set_counter("fault.remapped_rows", sum.remapped);
    reg.set_counter("fault.dead_rows", sum.dead_rows);
    reg.set_counter("fault.read_disturbs", sum.read_disturbs);
    reg.set_counter("fault.remap_exhausted", sum.exhausted);
    reg.set_counter("fault.spare_rows_per_bank",
                    remap_ == nullptr ? 0 : remap_->spare_rows());
  }
}

void Architecture::merge_accounting_from(const Architecture& o) {
  counters_.merge(o.counters_);
  energy_.merge_from(o.energy_);
  wear_.merge_from(o.wear_);
  if (fault_by_channel_.size() < o.fault_by_channel_.size()) {
    fault_by_channel_.resize(o.fault_by_channel_.size());
  }
  for (std::size_t c = 0; c < o.fault_by_channel_.size(); ++c) {
    const FaultTally& t = o.fault_by_channel_[c];
    FaultTally& d = fault_by_channel_[c];
    d.injected += t.injected;
    d.retries += t.retries;
    d.demoted += t.demoted;
    d.remapped += t.remapped;
    d.dead_rows += t.dead_rows;
    d.read_disturbs += t.read_disturbs;
    d.exhausted += t.exhausted;
  }
}

double Architecture::refresh_pending_fraction(unsigned, unsigned) const {
  return 0.0;
}

Architecture::RefreshWork Architecture::perform_refresh(
    unsigned, unsigned, const std::function<bool(unsigned)>&) {
  return {};
}

std::vector<unsigned> Architecture::refresh_resources(unsigned channel,
                                                      unsigned rank) const {
  std::vector<unsigned> res;
  res.reserve(geom_.banks_per_rank);
  const unsigned base =
      (channel * geom_.ranks + rank) * geom_.banks_per_rank;
  for (unsigned b = 0; b < geom_.banks_per_rank; ++b) res.push_back(base + b);
  return res;
}

std::unique_ptr<Architecture> make_architecture(const ArchConfig& cfg,
                                                const MemoryGeometry& geom,
                                                const PcmTiming& timing) {
  return make_architecture(cfg, geom, timing, FaultConfig{});
}

std::unique_ptr<Architecture> make_architecture(const ArchConfig& cfg,
                                                const MemoryGeometry& geom,
                                                const PcmTiming& timing,
                                                const FaultConfig& fault) {
  std::string why;
  if (!geom.valid(&why)) {
    throw std::invalid_argument("bad geometry: " + why);
  }
  if (!timing.valid(&why)) {
    throw std::invalid_argument("bad timing: " + why);
  }
  auto arch = std::make_unique<ComposedArchitecture>(geom, timing, cfg);
  if (cfg.start_gap && !arch->composition().cache_enabled) {
    // The WOM-cache index is the row address, so remapping main rows would
    // desynchronize the cache; Start-Gap covers the row-addressed
    // compositions.
    arch->enable_start_gap(cfg.start_gap_interval);
  }
  arch->configure_faults(fault);
  return arch;
}

}  // namespace wompcm

#include "arch/arch.h"

#include <stdexcept>

#include "arch/baseline.h"
#include "arch/flip_n_write.h"
#include "arch/refresh_wom_pcm.h"
#include "arch/wcpcm.h"
#include "arch/wom_pcm.h"
#include "wom/registry.h"

namespace wompcm {

const char* to_string(ArchKind k) {
  switch (k) {
    case ArchKind::kBaseline:
      return "pcm";
    case ArchKind::kWomPcm:
      return "wom-pcm";
    case ArchKind::kRefreshWomPcm:
      return "pcm-refresh";
    case ArchKind::kWcpcm:
      return "wcpcm";
    case ArchKind::kFlipNWrite:
      return "flip-n-write";
    case ArchKind::kSymmetric:
      return "symmetric-ideal";
  }
  return "?";
}

Architecture::Architecture(const MemoryGeometry& geom, const PcmTiming& timing)
    : geom_(geom),
      mapper_(geom),
      timing_(timing),
      wear_(geom.lines_per_row()) {}

unsigned Architecture::num_resources() const { return main_banks(); }

void Architecture::enable_start_gap(unsigned interval) {
  start_gap_.clear();
  start_gap_.reserve(main_banks());
  for (unsigned b = 0; b < main_banks(); ++b) {
    start_gap_.emplace_back(geom_.rows_per_bank, interval);
  }
}

unsigned Architecture::physical_row(const DecodedAddr& dec, AccessType type,
                                    IssuePlan* plan) {
  if (start_gap_.empty()) return dec.row;
  StartGapRemapper& sg = start_gap_[flat_bank(dec)];
  if (type == AccessType::kWrite && sg.on_write()) {
    // Gap move: the bank copies one row (read + write) before servicing
    // further accesses.
    plan->post_ns += timing_.row_read_ns + timing_.row_write_ns;
    counters_.inc("wl.gap_moves");
  }
  return sg.remap(dec.row);
}

unsigned Architecture::route(const DecodedAddr& dec, AccessType type,
                             bool internal) const {
  (void)type;
  (void)internal;
  return mapper_.flat_bank(dec);
}

unsigned Architecture::resource_channel(unsigned resource) const {
  // Main banks are flat-indexed channel-major (see AddressMapper::flat_bank);
  // architectures that append extra resources override this.
  return resource / (geom_.ranks * geom_.banks_per_rank);
}

void Architecture::publish_metrics(MetricsRegistry& reg, Tick end_time) const {
  reg.set_gauge("arch.capacity_overhead", capacity_overhead());
  reg.set_gauge("energy.read_pj", energy_.read_pj());
  reg.set_gauge("energy.write_pj", energy_.write_pj());
  reg.set_gauge("energy.refresh_pj", energy_.refresh_pj());
  reg.set_gauge("wear.max_line", wear_.max_line_wear());
  reg.set_gauge("wear.mean_line", wear_.mean_line_wear());
  reg.set_gauge("wear.lifetime_years", wear_.lifetime_years(end_time));
}

double Architecture::refresh_pending_fraction(unsigned, unsigned) const {
  return 0.0;
}

Architecture::RefreshWork Architecture::perform_refresh(
    unsigned, unsigned, const std::function<bool(unsigned)>&) {
  return {};
}

std::vector<unsigned> Architecture::refresh_resources(unsigned channel,
                                                      unsigned rank) const {
  std::vector<unsigned> res;
  res.reserve(geom_.banks_per_rank);
  const unsigned base =
      (channel * geom_.ranks + rank) * geom_.banks_per_rank;
  for (unsigned b = 0; b < geom_.banks_per_rank; ++b) res.push_back(base + b);
  return res;
}

namespace {

WomCodePtr resolve_inverted_code(const std::string& name) {
  WomCodePtr code = make_code(name);
  if (code == nullptr) {
    throw std::invalid_argument("unknown WOM-code: " + name);
  }
  if (code->raises_bits()) {
    throw std::invalid_argument(
        "WOM architectures need an inverted code (RESET-only rewrites); "
        "use e.g. \"" +
        name + "-inv\"");
  }
  return code;
}

}  // namespace

std::unique_ptr<Architecture> make_architecture(const ArchConfig& cfg,
                                                const MemoryGeometry& geom,
                                                const PcmTiming& timing) {
  std::string why;
  if (!geom.valid(&why)) {
    throw std::invalid_argument("bad geometry: " + why);
  }
  if (!timing.valid(&why)) {
    throw std::invalid_argument("bad timing: " + why);
  }
  std::unique_ptr<Architecture> arch;
  switch (cfg.kind) {
    case ArchKind::kBaseline:
      arch = std::make_unique<BaselinePcm>(geom, timing);
      break;
    case ArchKind::kWomPcm:
      arch = std::make_unique<WomPcm>(geom, timing,
                                      resolve_inverted_code(cfg.code),
                                      cfg.organization);
      break;
    case ArchKind::kRefreshWomPcm:
      arch = std::make_unique<RefreshWomPcm>(geom, timing,
                                             resolve_inverted_code(cfg.code),
                                             cfg.organization,
                                             cfg.rat_entries);
      break;
    case ArchKind::kWcpcm:
      arch = std::make_unique<Wcpcm>(geom, timing,
                                     resolve_inverted_code(cfg.code),
                                     cfg.rat_entries);
      break;
    case ArchKind::kFlipNWrite:
      arch = std::make_unique<FlipNWritePcm>(geom, timing,
                                             cfg.fnw_fast_fraction, cfg.seed);
      break;
    case ArchKind::kSymmetric:
      arch = std::make_unique<SymmetricPcm>(geom, timing);
      break;
  }
  if (arch == nullptr) throw std::invalid_argument("unknown architecture");
  if (cfg.start_gap && cfg.kind != ArchKind::kWcpcm) {
    // The WOM-cache index is the row address, so remapping main rows would
    // desynchronize the cache; Start-Gap covers the row-addressed kinds.
    arch->enable_start_gap(cfg.start_gap_interval);
  }
  return arch;
}

}  // namespace wompcm

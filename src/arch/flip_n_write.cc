#include "arch/flip_n_write.h"

namespace wompcm {

FlipNWritePcm::FlipNWritePcm(const MemoryGeometry& geom,
                             const PcmTiming& timing, double fast_fraction,
                             std::uint64_t seed)
    : Architecture(geom, timing), fast_fraction_(fast_fraction), rng_(seed) {}

IssuePlan FlipNWritePcm::plan(const DecodedAddr& dec, AccessType type,
                              bool internal, Tick now) {
  (void)internal;
  (void)now;
  IssuePlan p;
  p.resource = flat_bank(dec);
  p.row = physical_row(dec, type, &p);
  if (type == AccessType::kWrite) {
    const bool fast = fast_fraction_ > 0.0 && rng_.next_bool(fast_fraction_);
    p.write_class = fast ? WriteClass::kResetOnly : WriteClass::kAlpha;
    p.program_ns = timing_.program_ns(p.write_class);
    fault_on_write(p.resource, dec.channel, dec.col, /*allow_remap=*/true, &p);
    counters_.inc(fast ? "writes.fast" : "writes.slow");
    // Flip-N-Write programs at most half the line's bits.
    energy_.on_write(p.write_class, line_bits() / 2);
    wear_.on_write_pulses(row_key_for(p.resource, p.row), dec.col,
                          kResetOnlyWearPerCell / 2);
  } else {
    counters_.inc("reads");
    energy_.on_read(line_bits());
    fault_on_read(dec.channel, &p);
  }
  return p;
}

}  // namespace wompcm

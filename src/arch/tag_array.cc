#include "arch/tag_array.h"

#include <algorithm>
#include <stdexcept>

namespace wompcm {

const char* to_string(ReplacementKind kind) {
  switch (kind) {
    case ReplacementKind::kBankTag:
      return "bank_tag";
    case ReplacementKind::kLru:
      return "lru";
    case ReplacementKind::kFifo:
      return "fifo";
    case ReplacementKind::kRandom:
      return "random";
  }
  return "?";
}

bool replacement_kind_from_string(const std::string& s, ReplacementKind* out) {
  if (s == "bank_tag") {
    *out = ReplacementKind::kBankTag;
  } else if (s == "lru") {
    *out = ReplacementKind::kLru;
  } else if (s == "fifo") {
    *out = ReplacementKind::kFifo;
  } else if (s == "random") {
    *out = ReplacementKind::kRandom;
  } else {
    return false;
  }
  return true;
}

namespace {

void require_bank_tag_one_way(ReplacementKind kind, unsigned ways) {
  if (kind == ReplacementKind::kBankTag && ways != 1) {
    throw std::invalid_argument(
        "bank_tag replacement requires 1-way sets (the set index is the "
        "row and the tag is the bank)");
  }
}

// The WOM cache's scheme: 1-way sets indexed by row, tagged by bank. The
// only possible victim is the occupant, so every hook is a no-op.
class BankTagPolicy final : public ReplacementPolicy {
 public:
  const char* name() const override { return "bank_tag"; }
  void touch(unsigned, unsigned) override {}
  void install(unsigned, unsigned) override {}
  unsigned victim(unsigned) override { return 0; }
  void invalidate(unsigned, unsigned) override {}
};

// Exact LRU via per-frame use stamps from one monotone clock; the victim
// is the least recently stamped way.
class LruPolicy final : public ReplacementPolicy {
 public:
  LruPolicy(unsigned sets, unsigned ways)
      : ways_(ways),
        stamp_(static_cast<std::size_t>(sets) * ways, 0) {}
  const char* name() const override { return "lru"; }
  void touch(unsigned set, unsigned way) override { mark(set, way); }
  void install(unsigned set, unsigned way) override { mark(set, way); }
  unsigned victim(unsigned set) override {
    const std::uint64_t* base = &stamp_[static_cast<std::size_t>(set) * ways_];
    return static_cast<unsigned>(
        std::min_element(base, base + ways_) - base);
  }
  void invalidate(unsigned set, unsigned way) override {
    stamp_[static_cast<std::size_t>(set) * ways_ + way] = 0;
  }

 private:
  void mark(unsigned set, unsigned way) {
    stamp_[static_cast<std::size_t>(set) * ways_ + way] = ++clock_;
  }
  unsigned ways_;
  std::uint64_t clock_ = 0;
  std::vector<std::uint64_t> stamp_;
};

// FIFO: per-frame install stamps only; hits do not refresh a line's
// position in the eviction order.
class FifoPolicy final : public ReplacementPolicy {
 public:
  FifoPolicy(unsigned sets, unsigned ways)
      : ways_(ways),
        stamp_(static_cast<std::size_t>(sets) * ways, 0) {}
  const char* name() const override { return "fifo"; }
  void touch(unsigned, unsigned) override {}
  void install(unsigned set, unsigned way) override {
    stamp_[static_cast<std::size_t>(set) * ways_ + way] = ++clock_;
  }
  unsigned victim(unsigned set) override {
    const std::uint64_t* base = &stamp_[static_cast<std::size_t>(set) * ways_];
    return static_cast<unsigned>(
        std::min_element(base, base + ways_) - base);
  }
  void invalidate(unsigned set, unsigned way) override {
    stamp_[static_cast<std::size_t>(set) * ways_ + way] = 0;
  }

 private:
  unsigned ways_;
  std::uint64_t clock_ = 0;
  std::vector<std::uint64_t> stamp_;
};

// Uniform random victim from a seeded xoshiro stream: deterministic for a
// given (seed, call sequence), so serial and sharded runs that make the
// same per-channel call sequence pick the same victims.
class RandomPolicy final : public ReplacementPolicy {
 public:
  RandomPolicy(unsigned ways, std::uint64_t seed) : ways_(ways), rng_(seed) {}
  const char* name() const override { return "random"; }
  void touch(unsigned, unsigned) override {}
  void install(unsigned, unsigned) override {}
  unsigned victim(unsigned) override {
    return static_cast<unsigned>(rng_.next_below(ways_));
  }
  void invalidate(unsigned, unsigned) override {}

 private:
  unsigned ways_;
  Rng rng_;
};

}  // namespace

std::unique_ptr<ReplacementPolicy> make_replacement_policy(
    ReplacementKind kind, unsigned sets, unsigned ways, std::uint64_t seed) {
  switch (kind) {
    case ReplacementKind::kBankTag:
      require_bank_tag_one_way(kind, ways);
      return std::make_unique<BankTagPolicy>();
    case ReplacementKind::kLru:
      return std::make_unique<LruPolicy>(sets, ways);
    case ReplacementKind::kFifo:
      return std::make_unique<FifoPolicy>(sets, ways);
    case ReplacementKind::kRandom:
      return std::make_unique<RandomPolicy>(ways, seed);
  }
  throw std::invalid_argument("unknown replacement kind");
}

ReplacementState::ReplacementState(ReplacementKind kind, unsigned sets,
                                   unsigned ways, std::uint64_t seed)
    : kind_(kind), ways_(ways), rng_(seed) {
  require_bank_tag_one_way(kind, ways);
  if (kind == ReplacementKind::kLru || kind == ReplacementKind::kFifo) {
    stamp_.assign(static_cast<std::size_t>(sets) * ways, 0);
  }
}

TagArray::TagArray(unsigned sets, unsigned ways, ReplacementKind repl,
                   std::uint64_t seed)
    : sets_(sets), ways_(ways), repl_(repl, sets, ways, seed) {
  if (sets_ == 0 || ways_ == 0) {
    throw std::invalid_argument("TagArray: sets and ways must be positive");
  }
#if defined(WOMPCM_REFERENCE_DISPATCH)
  ref_ = make_replacement_policy(repl, sets, ways, seed);
#endif
  frames_.resize(static_cast<std::size_t>(sets_) * ways_);
}

unsigned TagArray::fill_way(unsigned set) {
  const WayState* base = &frames_[static_cast<std::size_t>(set) * ways_];
  for (unsigned w = 0; w < ways_; ++w) {
    if (!base[w].valid) return w;
  }
#if defined(WOMPCM_REFERENCE_DISPATCH)
  return ref_->victim(set);
#else
  return repl_.victim(set);
#endif
}

}  // namespace wompcm

#include "sim/memory_system.h"

#include "common/event_queue.h"

namespace wompcm {

MemorySystem::MemorySystem(const MemorySystemConfig& cfg, Architecture& arch,
                           SimStats& stats)
    : arch_(arch),
      dispatch_all_(cfg.sched.scan_mode == ScanMode::kReference) {
  channels_.reserve(cfg.geom.channels);
  for (unsigned c = 0; c < cfg.geom.channels; ++c) {
    ControllerConfig ccfg;
    ccfg.geom = cfg.geom;
    ccfg.timing = cfg.timing;
    ccfg.sched = cfg.sched;
    ccfg.refresh = cfg.refresh;
    ccfg.row_policy = cfg.row_policy;
    ccfg.channel = c;
    ccfg.queue_capacity = cfg.queue_capacity;
    ccfg.read_forwarding = cfg.read_forwarding;
    ccfg.tier = cfg.tier;
    channels_.push_back(
        std::make_unique<MemoryController>(ccfg, arch, stats));
  }
}

bool MemorySystem::can_accept(const DecodedAddr& dec) const {
  return channels_[dec.channel]->can_accept();
}

void MemorySystem::enqueue(const Transaction& tx) {
  channels_[tx.dec.channel]->enqueue(tx);
}

Tick MemorySystem::next_event_after(Tick now) {
  Tick t = kNeverTick;
  for (const auto& c : channels_) t = earliest(t, c->next_event_after(now));
  return t;
}

void MemorySystem::tick(Tick now) {
  if (dispatch_all_) {
    for (const auto& c : channels_) c->tick(now);
    return;
  }
  // Controllers are quiescent between their own scheduled events (every
  // wake condition — arrival, bank finish, bus free, refresh check or
  // completion — has a pushed event), so a channel with nothing due at
  // `now` would tick to no effect: skip it.
  for (const auto& c : channels_) {
    if (c->pending_event() <= now) c->tick(now);
  }
}

bool MemorySystem::drained() const {
  for (const auto& c : channels_) {
    if (!c->drained()) return false;
  }
  return true;
}

Tick MemorySystem::last_completion() const {
  Tick t = 0;
  for (const auto& c : channels_) {
    if (c->last_completion() > t) t = c->last_completion();
  }
  return t;
}

std::vector<MemorySystem::BankSnapshot> MemorySystem::banks() const {
  std::vector<BankSnapshot> out;
  const unsigned total = arch_.num_resources();
  out.reserve(total);
  for (unsigned r = 0; r < total; ++r) {
    const MemoryController& c = *channels_[arch_.resource_channel(r)];
    out.push_back(BankSnapshot{&c.bank(r), arch_.is_cache_resource(r)});
  }
  return out;
}

void MemorySystem::publish_metrics(MetricsRegistry& reg) const {
  reg.set_counter("sim.end_time", last_completion());
  for (const auto& c : channels_) c->publish_metrics(reg);
}

}  // namespace wompcm
